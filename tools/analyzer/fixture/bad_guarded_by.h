// Fixture: trips guarded-by — fields written under a held sibling mutex
// without a GUARDED_BY annotation.  (Not compiled; parsed by
// papyrus_analyze --self-test.)
#pragma once

#include <cstdint>

#define GUARDED_BY(x)
#define REQUIRES(x)

namespace fixture {

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

class Counter {
 public:
  void Bump() {
    MutexLock lock(&mu_);
    hits_ += 1;        // BAD: hits_ has no GUARDED_BY(mu_)
    peak_ = hits_;     // BAD: peak_ has no GUARDED_BY(mu_)
  }

  void BumpManual() {
    mu_.Lock();
    hits_ = 0;         // BAD: manual lock region, still unannotated
    mu_.Unlock();
  }

  void BumpLocked() REQUIRES(mu_) {
    hits_++;           // BAD: REQUIRES proves mu_ held at entry
  }

  void Touch() {
    // No lock held: writing an unannotated field here is NOT a finding.
    cold_ = 7;
  }

 private:
  Mutex mu_;
  uint64_t hits_ = 0;
  uint64_t peak_ = 0;
  uint64_t good_ GUARDED_BY(mu_) = 0;
  int cold_ = 0;
};

}  // namespace fixture
