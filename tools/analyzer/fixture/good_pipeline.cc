// Fixture: must stay clean — the pipeline cycle reaches only bounded
// waits (RecvFor), never the blocking call set.
namespace fixture {

class Mailbox {
 public:
  bool RecvFor(int* msg, long micros);
};

class AsyncPipeline {
 public:
  void ProcessCycle();

 private:
  void PollCompletions();
  Mailbox mail_;
};

void AsyncPipeline::ProcessCycle() {
  PollCompletions();
}

void AsyncPipeline::PollCompletions() {
  int msg = 0;
  mail_.RecvFor(&msg, 100);
}

}  // namespace fixture
