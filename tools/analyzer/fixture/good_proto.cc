// Fixture: must stay clean — every would-be protocol finding carries an
// analyze:allow-<rule> escape with its why.  A regression that stops
// honoring the protocol escapes turns this file red.
#include <string>

namespace fixture {

enum WireOp : int {
  kOpApply = 1,
  // analyze:allow-proto-handler: reserved for the next wire version;
  // mixed-version peers may already name it
  kOpReserved = 2,
};

inline constexpr int kOpMax = kOpReserved;

inline constexpr int kDynamicRespTagBase = 100;

struct Slice {};
struct Message {
  int tag = 0;
  Slice payload;
};

class Comm {
 public:
  void Send(int dst, int tag, const Slice& payload);
  Message Recv(int src, int tag);
  bool RecvFor(int src, int tag, long timeout_us, Message* out);
  void Barrier();
  void Allgather(const Slice& mine, Slice* all);
};

// [u32 dbid][u32 resp_tag][lp record]
std::string EncodeApply(int dbid, int resp_tag, const Slice& rec);
bool DecodeApply(const Slice& in, int* dbid, int* resp_tag);

class Node {
 public:
  void Apply(int dst) {
    int tag = AllocRespTag();
    req_comm_.Send(dst, kOpApply, Encoded(EncodeApply(0, tag, Slice())));
    Message ack;
    resp_comm_.RecvFor(dst, tag, 1000, &ack);
  }

  void HandlerLoop() {
    Message m;
    while (req_comm_.RecvFor(-1, -1, 1000, &m)) {
      switch (m.tag) {
        case kOpApply:
          HandleApply(m);
          break;
        // analyze:allow-proto-handler: serviced for mixed-version peers
        // only; new code never sends it
        case kOpReserved:
          break;
        default:
          break;
      }
    }
  }

  Message DrainLoopback(int tag) {
    // The message is self-addressed on the loopback path (never dropped),
    // so the wait is bounded by construction.
    // analyze:allow-proto-deadlock: loopback-only — the send above cannot
    // be lost, so this recv always completes
    return resp_comm_.Recv(0, tag);
  }

  void SurvivorSync(int rank) {
    Slice mine, all;
    // A crashed rank's survivors run the same collective sequence as the
    // main path; the branch only changes the payload they contribute.
    // analyze:allow-proto-deadlock: both sides pair Barrier+Allgather in
    // the same order; the branch differs only in payload staging
    if (rank == 0) {
      comm_.Barrier();
      comm_.Allgather(mine, &all);
      comm_.Barrier();
    } else {
      comm_.Barrier();
      comm_.Allgather(mine, &all);
    }
  }

 private:
  void HandleApply(const Message& m) {
    int dbid = 0, resp_tag = 0;
    DecodeApply(m.payload, &dbid, &resp_tag);
    resp_comm_.Send(m.tag, resp_tag, Slice());
  }
  int AllocRespTag();
  Slice Encoded(const std::string& s);

  Comm req_comm_;
  Comm resp_comm_;
  Comm comm_;
};

}  // namespace fixture
