// Fixture: trips pipeline-blocking — an unbounded Recv is reachable
// from ProcessCycle through a helper one call-graph hop away.
namespace fixture {

class Mailbox {
 public:
  bool Recv(int* msg);
  bool RecvFor(int* msg, long micros);
};

class AsyncPipeline {
 public:
  void ProcessCycle();

 private:
  void DrainCompletions();
  Mailbox mail_;
};

void AsyncPipeline::ProcessCycle() {
  DrainCompletions();
}

void AsyncPipeline::DrainCompletions() {
  int msg = 0;
  mail_.Recv(&msg);  // BAD: unbounded receive on the pipeline thread
}

}  // namespace fixture
