// Fixture: proto-deadlock (collective-order) must trip — the two sides of
// a rank-dependent branch issue collectives in different orders, so the
// rank taking the `if` side meets Barrier while everyone else sits in
// Allgather, and both sides wedge.
namespace fixture {

struct Slice {};

class Comm {
 public:
  void Barrier();
  void Allgather(const Slice& mine, Slice* all);
};

class Node {
 public:
  void Exchange(int rank) {
    Slice mine, all;
    if (rank == 0) {
      comm_.Barrier();
      comm_.Allgather(mine, &all);
    } else {
      comm_.Allgather(mine, &all);
      comm_.Barrier();
    }
  }

 private:
  Comm comm_;
};

}  // namespace fixture
