// Fixture: must stay clean — every field written under a lock is
// annotated, atomics are exempt, and lock-free writes need nothing.
#pragma once

#include <atomic>
#include <cstdint>

#define GUARDED_BY(x)
#define REQUIRES(x)

namespace fixture {

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

class Counter {
 public:
  void Bump() {
    MutexLock lock(&mu_);
    hits_ += 1;
    peak_ = hits_;
  }

  void BumpLocked() REQUIRES(mu_) {
    hits_++;
  }

  void Relax() {
    // Atomic: self-synchronizing, exempt even under the lock.
    MutexLock lock(&mu_);
    spins_.fetch_add(1);
    approx_ = 1;
  }

  void Touch() {
    cold_ = 7;  // no lock held — nothing required
  }

 private:
  Mutex mu_;
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t peak_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> spins_{0};
  std::atomic<int> approx_{0};
  int cold_ = 0;
};

}  // namespace fixture
