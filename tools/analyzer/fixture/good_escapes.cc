// Fixture: must stay clean — every would-be finding carries either the
// mandated why-comment or an analyze:allow-<rule> escape.  A regression
// that stops honoring escapes turns this file red.
#include <cstdint>

#define GUARDED_BY(x)

namespace fixture {

struct Status {
  static Status OK();
  void IgnoreError() const {}
};

Status Flush();
Status Migrate(int rank);

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

class Counter {
 public:
  void Bump() {
    MutexLock lock(&mu_);
    // analyze:allow-guarded-by: metrics scratch, racy-read tolerated
    hits_ += 1;
  }

 private:
  Mutex mu_;  // lint:unguarded-ok (fixture: the escape above is the point)
  uint64_t hits_ = 0;
};

void Justified() {
  // Shutdown path: the store is already gone, nothing to do on failure.
  (void)Flush();
  Flush().IgnoreError();  // close() retries; this is the best-effort pass
  Migrate(3);  // analyze:allow-status-discard: fixture escape check
}

// analyze:allow-pipeline-blocking: fixture — not the real pipeline
void ProcessCycleHelper();

}  // namespace fixture
