// Fixture for the wire-version rule: EncodeFrame is a versioned frame
// codec (its body emits kBatchVersion).  The canned diffs
// bad_wire_version.diff / good_wire_version.diff edit it with and
// without touching the version byte.
#include <cstdint>
#include <string>

namespace fixture {

constexpr uint8_t kBatchVersion = 3;

void PutFixed32(std::string* out, uint32_t v);

void EncodeFrame(uint32_t dbid, std::string* out) {
  out->push_back(static_cast<char>(kBatchVersion));
  PutFixed32(out, dbid);
  PutFixed32(out, 0);
}

}  // namespace fixture
