// Fixture: proto-deadlock (unbounded-recv) must trip — both ranks send a
// request and then park in a blocking Recv for the peer's reply.  If
// either message is lost (or the peer dies first), neither Recv has a
// timeout-bounded edge out of the wait: the classic send->recv cycle.
namespace fixture {

struct Slice {};
struct Message {
  int tag = 0;
  Slice payload;
};

class Comm {
 public:
  void Send(int dst, int tag, const Slice& payload);
  Message Recv(int src, int tag);
};

class Node {
 public:
  Message ExchangeWithPeer(int peer, int tag) {
    req_comm_.Send(peer, tag, Slice());
    return resp_comm_.Recv(peer, tag);
  }

 private:
  Comm req_comm_;
  Comm resp_comm_;
};

}  // namespace fixture
