// Fixture: must stay clean — metric pointers are resolved once in
// Configure (which may take the registry mutex; it is not on the tick
// path), and SampleOnce only reads the cached lock-free atomics.
namespace fixture {

class Counter {
 public:
  unsigned long long Value() const;
};

class Registry {
 public:
  Counter& GetCounter(const char* name);
};

class TimelineSampler {
 public:
  void Configure(Registry* reg);
  void SampleOnce();

 private:
  unsigned long long ReadCounters();
  Counter* c_puts_ = nullptr;
};

void TimelineSampler::Configure(Registry* reg) {
  c_puts_ = &reg->GetCounter("kv.puts");  // lookup off the tick path: fine
}

void TimelineSampler::SampleOnce() {
  ReadCounters();
}

unsigned long long TimelineSampler::ReadCounters() {
  return c_puts_->Value();
}

}  // namespace fixture
