// Fixture: trips status-discard — uncommented (void) casts, bare
// .IgnoreError(), and a silently dropped Status-returning call.
#include <cstddef>

namespace fixture {

struct Status {
  static Status OK();
  bool ok() const;
  void IgnoreError() const {}
};

Status Flush();
Status Migrate(int rank);
int Plain(int x);

void Bad() {
  (void)Flush();             // BAD: no why-comment anywhere nearby
  Flush().IgnoreError();     // BAD: bare IgnoreError, no justification
  Migrate(3);                // BAD: Status silently dropped
  Plain(3);                  // fine: not a Status-returning function
}

}  // namespace fixture
