// Fixture: a coherent miniature wire protocol for the proto-spec-drift
// check.  With good_proto_spec.json (generated from this file via
// protocol_model.build_spec) every check is clean; with
// bad_proto_spec.json (a stale copy that still names a removed opcode)
// proto-spec-drift must trip.
#include <string>

namespace fixture {

enum WireOp : int {
  kOpWrite = 1,
  kOpRead = 2,
};

inline constexpr int kOpMax = kOpRead;

enum RespTag : int {
  kTagRestartAck = 10,
};

inline constexpr int kDynamicRespTagBase = 100;

struct Slice {};
struct Message {
  int tag = 0;
  Slice payload;
};

class Comm {
 public:
  void Send(int dst, int tag, const Slice& payload);
  bool RecvFor(int src, int tag, long timeout_us, Message* out);
};

// [u32 dbid][u32 resp_tag][lp key][lp value]
std::string EncodeWrite(int dbid, int resp_tag, const Slice& kv);
bool DecodeWrite(const Slice& in, int* dbid, int* resp_tag);

// [u32 dbid][u32 resp_tag][lp key]
std::string EncodeRead(int dbid, int resp_tag, const Slice& key);
bool DecodeRead(const Slice& in, int* dbid, int* resp_tag);

class Node {
 public:
  void Write(int dst) {
    int tag = AllocRespTag();
    Slice payload = Encoded(EncodeWrite(0, tag, Slice()));
    Message ack;
    bool acked = false;
    for (int attempt = 0; attempt < 3 && !acked; ++attempt) {
      req_comm_.Send(dst, kOpWrite, payload);
      acked = resp_comm_.RecvFor(dst, tag, 1000, &ack);
    }
  }

  void Read(int dst) {
    int tag = AllocRespTag();
    req_comm_.Send(dst, kOpRead, Encoded(EncodeRead(0, tag, Slice())));
    Message resp;
    resp_comm_.RecvFor(dst, tag, 1000, &resp);
  }

  void HandlerLoop() {
    Message m;
    while (req_comm_.RecvFor(-1, -1, 1000, &m)) {
      switch (m.tag) {
        case kOpWrite:
          HandleWrite(m);
          break;
        case kOpRead:
          HandleRead(m);
          break;
        default:
          break;
      }
    }
  }

 private:
  void HandleWrite(const Message& m) {
    int dbid = 0, resp_tag = 0;
    DecodeWrite(m.payload, &dbid, &resp_tag);
    resp_comm_.Send(m.tag, resp_tag, Slice());
  }
  void HandleRead(const Message& m) {
    int dbid = 0, resp_tag = 0;
    DecodeRead(m.payload, &dbid, &resp_tag);
    resp_comm_.Send(m.tag, resp_tag, Slice());
  }
  int AllocRespTag();
  Slice Encoded(const std::string& s);

  Comm req_comm_;
  Comm resp_comm_;
};

}  // namespace fixture
