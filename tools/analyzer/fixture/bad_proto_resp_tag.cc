// Fixture: proto-resp-tag must trip — (1) the fixed tag space collides
// with both the dynamic range and the opcode values, and (2) a request
// frame retried in a bounded loop carries a fixed kTag* resp_tag, so a
// late reply to the first attempt aliases the retry's reply.
#include <string>

namespace fixture {

enum WireOp : int {
  kOpStore = 1,
  kOpFetch = 2,
};

enum RespTag : int {
  kTagStoreAck = 1,    // aliases kOpStore
  kTagFetchResp = 120,  // inside [kDynamicRespTagBase, inf)
};

inline constexpr int kOpMax = kOpFetch;
inline constexpr int kDynamicRespTagBase = 100;

struct Slice {};
struct Message {
  int tag = 0;
  Slice payload;
};

class Comm {
 public:
  void Send(int dst, int tag, const Slice& payload);
  bool RecvFor(int src, int tag, long timeout_us, Message* out);
};

std::string EncodeStore(int dbid, int resp_tag);
bool DecodeStore(const Slice& in, int* dbid, int* resp_tag);

class Node {
 public:
  void StoreWithRetry(int dst) {
    Slice payload = Encoded(EncodeStore(0, kTagStoreAck));
    Message ack;
    bool acked = false;
    for (int attempt = 0; attempt < 3 && !acked; ++attempt) {
      req_comm_.Send(dst, kOpStore, payload);
      acked = resp_comm_.RecvFor(dst, kTagStoreAck, 1000, &ack);
    }
  }

  void HandlerLoop() {
    Message m;
    while (req_comm_.RecvFor(-1, -1, 1000, &m)) {
      switch (m.tag) {
        case kOpStore:
          HandleStore(m);
          break;
        case kOpFetch:
          HandleFetch(m);
          break;
        default:
          break;
      }
    }
  }

  void Fetch(int dst) { req_comm_.Send(dst, kOpFetch, Slice()); }

 private:
  void HandleStore(const Message& m) {
    int dbid = 0, resp_tag = 0;
    DecodeStore(m.payload, &dbid, &resp_tag);
  }
  void HandleFetch(const Message& m);
  Slice Encoded(const std::string& s);

  Comm req_comm_;
  Comm resp_comm_;
};

}  // namespace fixture
