// Fixture: must stay clean — symmetric Encode/Decode pair with the
// decoded count capped through ReserveBound before pre-allocation.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

struct Slice {
  bool empty() const;
  void remove_prefix(size_t n);
};

void PutFixed32(std::string* out, uint32_t v);
void PutFixed64(std::string* out, uint64_t v);
void PutLengthPrefixed(std::string* out, const std::string& s);
bool GetFixed32(Slice* in, uint32_t* v);
bool GetFixed64(Slice* in, uint64_t* v);
bool GetLengthPrefixed(Slice* in, std::string* s);
size_t ReserveBound(uint64_t count, const Slice& in, size_t per);

struct Req {
  uint32_t dbid;
  std::string key;
  std::vector<uint64_t> ids;
};

void EncodeReq(const Req& r, std::string* outp) {
  std::string out;
  PutFixed32(&out, r.dbid);
  PutLengthPrefixed(&out, r.key);
  PutFixed32(&out, static_cast<uint32_t>(r.ids.size()));
  for (uint64_t id : r.ids) PutFixed64(&out, id);
  outp->assign(out);
}

bool DecodeReq(Slice in, Req* r) {
  uint32_t n = 0;
  if (!GetFixed32(&in, &r->dbid)) return false;
  if (!GetLengthPrefixed(&in, &r->key)) return false;
  if (!GetFixed32(&in, &n)) return false;
  r->ids.reserve(ReserveBound(n, in, 8));
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t v = 0;
    if (!GetFixed64(&in, &v)) return false;
    r->ids.push_back(v);
  }
  return true;
}

}  // namespace fixture
