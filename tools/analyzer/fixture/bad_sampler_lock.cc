// Fixture: trips pipeline-blocking twice on the sampler walk — an RAII
// lock guard in a helper reached from SampleOnce, and a registry lookup
// (GetCounter takes the registry mutex) one more hop away.
namespace fixture {

#define GUARDED_BY(x)

class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

class Counter {
 public:
  unsigned long long Value() const;
};

class Registry {
 public:
  Counter& GetCounter(const char* name);
};

class TimelineSampler {
 public:
  void SampleOnce();

 private:
  unsigned long long ReadCounters();
  unsigned long long LookupFresh();
  Registry* reg_;
  Mutex mu_;
  unsigned long long ticks_ GUARDED_BY(mu_) = 0;
};

void TimelineSampler::SampleOnce() {
  ReadCounters();
}

unsigned long long TimelineSampler::ReadCounters() {
  MutexLock lock(&mu_);  // BAD: tick stalls behind any writer holding mu_
  return LookupFresh();
}

unsigned long long TimelineSampler::LookupFresh() {
  return reg_->GetCounter("kv.puts").Value();  // BAD: registry mutex
}

}  // namespace fixture
