// Fixture: trips codec-symmetry — an Encode/Decode pair with flipped
// field order, and an uncapped pre-allocation from a decoded count.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

struct Slice {
  bool empty() const;
  void remove_prefix(size_t n);
};

void PutFixed32(std::string* out, uint32_t v);
void PutFixed64(std::string* out, uint64_t v);
void PutLengthPrefixed(std::string* out, const std::string& s);
bool GetFixed32(Slice* in, uint32_t* v);
bool GetFixed64(Slice* in, uint64_t* v);
bool GetLengthPrefixed(Slice* in, std::string* s);

struct Req {
  uint32_t dbid;
  uint64_t seq;
  std::string key;
  std::vector<uint64_t> ids;
};

void EncodeReq(const Req& r, std::string* outp) {
  std::string out;
  PutFixed32(&out, r.dbid);
  PutFixed64(&out, r.seq);
  PutLengthPrefixed(&out, r.key);
  outp->assign(out);
}

bool DecodeReq(Slice in, Req* r) {
  // BAD: consumes seq before dbid — field order flipped vs EncodeReq.
  if (!GetFixed64(&in, &r->seq)) return false;
  if (!GetFixed32(&in, &r->dbid)) return false;
  if (!GetLengthPrefixed(&in, &r->key)) return false;
  return true;
}

void EncodeIds(const Req& r, std::string* outp) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(r.ids.size()));
  for (uint64_t id : r.ids) PutFixed64(&out, id);
  outp->assign(out);
}

bool DecodeIds(Slice in, Req* r) {
  uint32_t n = 0;
  if (!GetFixed32(&in, &n)) return false;
  r->ids.resize(n);  // BAD: uncapped pre-allocation from a wire count
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t v = 0;
    if (!GetFixed64(&in, &v)) return false;
    r->ids[i] = v;
  }
  return true;
}

}  // namespace fixture
