// Fixture: proto-handler must trip — kOpPong is sent but has no dispatch
// arm, kOpDead is declared but neither sent nor dispatched (orphan), and
// the kOpStop arm's handler decodes a different frame than the sender
// encodes (frame mismatch).
#include <string>

namespace fixture {

enum WireOp : int {
  kOpPing = 1,
  kOpStop = 2,
  kOpPong = 3,
  kOpDead = 4,
};

struct Slice {};
struct Message {
  int tag = 0;
  Slice payload;
};

class Comm {
 public:
  void Send(int dst, int tag, const Slice& payload);
  bool RecvFor(int src, int tag, long timeout_us, Message* out);
};

std::string EncodePing(int seq, int resp_tag);
bool DecodePing(const Slice& in, int* seq, int* resp_tag);
std::string EncodeHalt(int seq, int resp_tag);
bool DecodeStop(const Slice& in, int* resp_tag);

class Node {
 public:
  void SendAll() {
    int tag = AllocRespTag();
    req_comm_.Send(1, kOpPing, Encoded(EncodePing(7, tag)));
    req_comm_.Send(1, kOpStop, Encoded(EncodeHalt(0, tag)));
    req_comm_.Send(1, kOpPong, Slice());
  }

  void HandlerLoop() {
    Message m;
    while (req_comm_.RecvFor(-1, -1, 1000, &m)) {
      switch (m.tag) {
        case kOpPing:
          HandlePing(m);
          break;
        case kOpStop:
          HandleStop(m);
          break;
        default:
          break;
      }
    }
  }

 private:
  void HandlePing(const Message& m) {
    int seq = 0, resp_tag = 0;
    DecodePing(m.payload, &seq, &resp_tag);
  }
  void HandleStop(const Message& m) {
    int resp_tag = 0;
    DecodeStop(m.payload, &resp_tag);
  }
  int AllocRespTag();
  Slice Encoded(const std::string& s);

  Comm req_comm_;
};

}  // namespace fixture
