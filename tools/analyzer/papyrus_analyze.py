#!/usr/bin/env python3
"""papyrus_analyze — semantic analyzer for the PapyrusKV tree.

Five repo-specific checks the regex lint (tools/papyrus_lint.py) cannot
express: guarded-by completeness, status-discard discipline, codec
symmetry, pipeline-blocking reachability, and wire-version discipline.
See tools/analyzer/checks.py for the rule catalog and DESIGN.md §10 for
the workflow.

Frontend seam: the analyzer always runs on the built-in structural C++
frontend (cxx_model.py — a real tokenizer/scoper, not line regexes).
When python clang bindings AND a compile_commands.json are available
(`--frontend clang`, or `auto` when importable), clang.cindex refines the
Status-returning-function set with true type information; everything
else is frontend-independent.  The container gate therefore never skips
this stage — clang only sharpens it.

Usage:
  papyrus_analyze.py [paths...]            analyze (default roots: src)
  papyrus_analyze.py --self-test           run the fixture suite
  papyrus_analyze.py --diff-base REF       also run wire-version vs git REF
  papyrus_analyze.py --diff-file F         wire-version against a saved diff
  papyrus_analyze.py --baseline FILE       suppress known findings
  papyrus_analyze.py --write-baseline      rewrite baseline from findings
  papyrus_analyze.py --frontend auto|text|clang

Exit codes: 0 clean, 1 violations, 2 usage/environment error.

Escapes: `// analyze:allow-<rule>[: reason]` on the violating line or the
immediately preceding pure-comment line.
"""

import argparse
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import checks
import cxx_model

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "fixture")
DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "baseline.txt")
DEFAULT_ROOTS = ("src",)


def load_baseline(path):
    keys = set()
    if not os.path.exists(path):
        return keys
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                keys.add(line)
    return keys


def write_baseline(path, violations):
    with open(path, "w", encoding="utf-8") as f:
        f.write("# papyrus_analyze baseline — one `rule|path|token` per "
                "line.\n")
        f.write("# Findings listed here are suppressed; burn this file "
                "down, don't grow it.\n")
        for v in sorted(violations, key=lambda v: v.key):
            f.write(v.key + "\n")


def resolve_frontend(requested):
    """Returns (name, refine_fn or None).  clang refinement is optional
    and additive; 'text' is always available."""
    if requested == "text":
        return "text", None
    try:
        import clang_frontend
        if clang_frontend.available():
            return "clang", clang_frontend.refine
        if requested == "clang":
            print("papyrus_analyze: --frontend clang requested but "
                  "clang.cindex or compile_commands.json is unavailable",
                  file=sys.stderr)
            sys.exit(2)
    except Exception as exc:  # pragma: no cover - defensive
        if requested == "clang":
            print("papyrus_analyze: clang frontend failed: %s" % exc,
                  file=sys.stderr)
            sys.exit(2)
    return "text", None


def git_diff(base):
    try:
        proc = subprocess.run(
            ["git", "-C", REPO_ROOT, "diff", base, "--", "src", "tests"],
            capture_output=True, text=True, timeout=60, check=False)
    except (OSError, subprocess.TimeoutExpired) as exc:
        print("papyrus_analyze: git diff %s failed: %s" % (base, exc),
              file=sys.stderr)
        sys.exit(2)
    if proc.returncode != 0:
        print("papyrus_analyze: git diff %s failed:\n%s"
              % (base, proc.stderr.strip()), file=sys.stderr)
        sys.exit(2)
    return proc.stdout


def analyze(paths, diff_text, refine):
    model = cxx_model.build_model(paths, REPO_ROOT)
    if refine is not None:
        try:
            refine(model, REPO_ROOT)
        except Exception as exc:  # refinement must never break the run
            print("papyrus_analyze: clang refinement failed (%s); "
                  "continuing with text frontend" % exc, file=sys.stderr)
    return checks.run_all(model, diff_text)


# ---------------------------------------------------------------------------
# Self-test: every rule trips on its bad_ fixture, good_ fixtures and
# escapes stay clean — same contract as papyrus_lint.py --self-test.
# ---------------------------------------------------------------------------

def self_test():
    if not os.path.isdir(FIXTURE_DIR):
        print("papyrus_analyze: fixture dir missing: %s" % FIXTURE_DIR,
              file=sys.stderr)
        return 2

    def run_one(name, diff_name=None):
        path = os.path.join(FIXTURE_DIR, name)
        diff_text = None
        if diff_name:
            with open(os.path.join(FIXTURE_DIR, diff_name),
                      encoding="utf-8") as f:
                diff_text = f.read()
        model = cxx_model.build_model([path], FIXTURE_DIR)
        return checks.run_all(model, diff_text)

    failures = []

    # (fixture, optional diff, rules that MUST trip in it)
    bad_cases = [
        ("bad_guarded_by.h", None, {"guarded-by"}),
        ("bad_status_discard.cc", None, {"status-discard"}),
        ("bad_codec_asym.cc", None, {"codec-symmetry"}),
        ("bad_pipeline_block.cc", None, {"pipeline-blocking"}),
        ("wire_fixture.cc", "bad_wire_version.diff", {"wire-version"}),
    ]
    # fixtures that must NOT produce any finding
    good_cases = [
        ("good_annotated.h", None),
        ("good_escapes.cc", None),
        ("good_codec.cc", None),
        ("good_pipeline.cc", None),
        ("wire_fixture.cc", "good_wire_version.diff"),
    ]

    for name, diff, want in bad_cases:
        got = {v.rule for v in run_one(name, diff)}
        missing = want - got
        if missing:
            failures.append("fixture %s: expected rule(s) %s did not trip "
                            "(got: %s)" % (name, sorted(missing),
                                           sorted(got) or "nothing"))
    for name, diff in good_cases:
        vs = run_one(name, diff)
        if diff is None and name.startswith("wire_"):
            continue
        if vs:
            failures.append("fixture %s: expected clean, got:\n  %s"
                            % (name, "\n  ".join(str(v) for v in vs)))

    # The escape fixture must actually contain escapes for >=3 rules, so a
    # regression that stops honoring escapes cannot silently pass.
    escape_path = os.path.join(FIXTURE_DIR, "good_escapes.cc")
    with open(escape_path, encoding="utf-8") as f:
        escape_text = f.read()
    escape_rules = {r for r in checks.ALL_CHECKS
                    if "analyze:allow-" + r in escape_text}
    if len(escape_rules) < 3:
        failures.append("good_escapes.cc must exercise escapes for >=3 "
                        "rules, found %s" % sorted(escape_rules))

    if failures:
        print("papyrus_analyze --self-test FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    n_rules = len(checks.ALL_CHECKS)
    print("papyrus_analyze --self-test OK (%d rules, %d bad fixtures, "
          "%d good fixtures)" % (n_rules, len(bad_cases), len(good_cases)))
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(prog="papyrus_analyze.py",
                                 description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: src)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture suite and exit")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="suppression file (default: %(default)s)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite the baseline file from current findings")
    ap.add_argument("--diff-base", metavar="REF",
                    help="run wire-version against `git diff REF`")
    ap.add_argument("--diff-file", metavar="FILE",
                    help="run wire-version against a saved unified diff")
    ap.add_argument("--frontend", choices=("auto", "text", "clang"),
                    default="auto",
                    help="C++ frontend (default: auto — clang refinement "
                         "when available, text otherwise)")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()

    roots = args.paths or [os.path.join(REPO_ROOT, r)
                           for r in DEFAULT_ROOTS]
    for r in roots:
        if not os.path.exists(r):
            print("papyrus_analyze: no such path: %s" % r, file=sys.stderr)
            return 2

    diff_text = None
    if args.diff_file:
        with open(args.diff_file, encoding="utf-8") as f:
            diff_text = f.read()
    elif args.diff_base:
        diff_text = git_diff(args.diff_base)

    frontend, refine = resolve_frontend(args.frontend)
    violations = analyze(roots, diff_text, refine)

    if args.write_baseline:
        write_baseline(args.baseline, violations)
        print("papyrus_analyze: wrote %d suppression(s) to %s"
              % (len(violations), args.baseline))
        return 0

    baseline = load_baseline(args.baseline)
    fresh = [v for v in violations if v.key not in baseline]
    stale = baseline - {v.key for v in violations}

    for v in fresh:
        print(v)
    if stale:
        print("papyrus_analyze: %d stale baseline entr%s (fixed — remove "
              "from %s):" % (len(stale), "y" if len(stale) == 1 else "ies",
                             os.path.relpath(args.baseline, REPO_ROOT)),
              file=sys.stderr)
        for k in sorted(stale):
            print("  " + k, file=sys.stderr)
    if fresh:
        print("papyrus_analyze: %d violation(s) [frontend: %s]"
              % (len(fresh), frontend), file=sys.stderr)
        return 1
    print("papyrus_analyze: clean (%d file(s), frontend: %s, %d "
          "baseline-suppressed)" % (
              len({f for f in
                   cxx_model.iter_sources(roots)}),
              frontend, len(violations) - len(fresh)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
