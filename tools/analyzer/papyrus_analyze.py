#!/usr/bin/env python3
"""papyrus_analyze — semantic analyzer for the PapyrusKV tree.

Nine repo-specific checks the regex lint (tools/papyrus_lint.py) cannot
express.  Intra-process (checks.py, DESIGN.md §10): guarded-by
completeness, status-discard discipline, codec symmetry,
pipeline-blocking reachability, wire-version discipline.  Message-flow
(protocol_checks.py, DESIGN.md §11): proto-handler opcode coverage,
proto-resp-tag discipline, proto-deadlock shapes, and proto-spec-drift
against the committed PROTOCOL.json / docs/PROTOCOL.md.

Frontend seam: the analyzer always runs on the built-in structural C++
frontend (cxx_model.py — a real tokenizer/scoper, not line regexes).
When python clang bindings AND a compile_commands.json are available
(`--frontend clang`, or `auto` when importable), clang.cindex refines the
Status-returning-function set with true type information; everything
else is frontend-independent.  The container gate therefore never skips
this stage — clang only sharpens it.

Usage:
  papyrus_analyze.py [paths...]            analyze (default roots: src)
  papyrus_analyze.py --self-test           run the full fixture suite
  papyrus_analyze.py --self-test-protocol  protocol fixtures only
  papyrus_analyze.py --diff-base REF       also run wire-version vs git REF
  papyrus_analyze.py --diff-file F         wire-version against a saved diff
  papyrus_analyze.py --baseline FILE       suppress known findings
  papyrus_analyze.py --write-baseline      rewrite baseline from findings
  papyrus_analyze.py --write-spec          regenerate PROTOCOL.json + docs
  papyrus_analyze.py --json FILE           also write findings as JSON
  papyrus_analyze.py --frontend auto|text|clang

Exit codes: 0 clean, 1 violations, 2 usage/environment error (stable —
CI and the --json archive rely on them).

Escapes: `// analyze:allow-<rule>[: reason]` on the violating line or the
immediately preceding pure-comment line.
"""

import argparse
import json
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import checks
import cxx_model
import protocol_checks
import protocol_model

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "fixture")
DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "baseline.txt")
DEFAULT_ROOTS = ("src",)
SPEC_JSON = os.path.join(REPO_ROOT, "PROTOCOL.json")
SPEC_MD = os.path.join(REPO_ROOT, "docs", "PROTOCOL.md")
# The spec-drift gate only makes sense on a model that actually contains
# the wire layer; path-scoped runs (papyrus_analyze.py src/obs) skip it.
SPEC_SOURCE = "src/core/wire.h"


def load_baseline(path):
    keys = set()
    if not os.path.exists(path):
        return keys
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                keys.add(line)
    return keys


def write_baseline(path, violations):
    with open(path, "w", encoding="utf-8") as f:
        f.write("# papyrus_analyze baseline — one `rule|path|token` per "
                "line.\n")
        f.write("# Findings listed here are suppressed; burn this file "
                "down, don't grow it.\n")
        for v in sorted(violations, key=lambda v: v.key):
            f.write(v.key + "\n")


def resolve_frontend(requested):
    """Returns (name, refine_fn or None).  clang refinement is optional
    and additive; 'text' is always available."""
    if requested == "text":
        return "text", None
    try:
        import clang_frontend
        if clang_frontend.available():
            return "clang", clang_frontend.refine
        if requested == "clang":
            print("papyrus_analyze: --frontend clang requested but "
                  "clang.cindex or compile_commands.json is unavailable",
                  file=sys.stderr)
            sys.exit(2)
    except Exception as exc:  # pragma: no cover - defensive
        if requested == "clang":
            print("papyrus_analyze: clang frontend failed: %s" % exc,
                  file=sys.stderr)
            sys.exit(2)
    return "text", None


def git_diff(base):
    try:
        proc = subprocess.run(
            ["git", "-C", REPO_ROOT, "diff", base, "--", "src", "tests"],
            capture_output=True, text=True, timeout=60, check=False)
    except (OSError, subprocess.TimeoutExpired) as exc:
        print("papyrus_analyze: git diff %s failed: %s" % (base, exc),
              file=sys.stderr)
        sys.exit(2)
    if proc.returncode != 0:
        print("papyrus_analyze: git diff %s failed:\n%s"
              % (base, proc.stderr.strip()), file=sys.stderr)
        sys.exit(2)
    return proc.stdout


def analyze(paths, diff_text, refine):
    model = cxx_model.build_model(paths, REPO_ROOT)
    if refine is not None:
        try:
            refine(model, REPO_ROOT)
        except Exception as exc:  # refinement must never break the run
            print("papyrus_analyze: clang refinement failed (%s); "
                  "continuing with text frontend" % exc, file=sys.stderr)
    violations = checks.run_all(model, diff_text)
    proto = protocol_model.build_protocol_model(model)
    has_wire = SPEC_SOURCE in model.files
    violations.extend(protocol_checks.run_all(
        model, proto,
        spec_json_path=SPEC_JSON if has_wire else None,
        spec_md_path=SPEC_MD if has_wire else None))
    return violations


def write_spec(paths, refine):
    model = cxx_model.build_model(paths, REPO_ROOT)
    if refine is not None:
        try:
            refine(model, REPO_ROOT)
        except Exception:
            pass
    if SPEC_SOURCE not in model.files:
        print("papyrus_analyze: --write-spec needs %s in the analyzed "
              "paths (run without path arguments)" % SPEC_SOURCE,
              file=sys.stderr)
        return 2
    proto = protocol_model.build_protocol_model(model)
    spec = protocol_model.build_spec(proto)
    with open(SPEC_JSON, "w", encoding="utf-8") as f:
        f.write(protocol_model.canonical_json(spec))
    os.makedirs(os.path.dirname(SPEC_MD), exist_ok=True)
    with open(SPEC_MD, "w", encoding="utf-8") as f:
        f.write(protocol_model.render_markdown(spec) + "\n")
    print("papyrus_analyze: wrote %s and %s (%d opcodes, %d frames)"
          % (os.path.relpath(SPEC_JSON, REPO_ROOT),
             os.path.relpath(SPEC_MD, REPO_ROOT),
             len(spec["opcodes"]), len(spec["frames"])))
    return 0


def write_json(path, violations, frontend):
    report = {
        "version": 1,
        "frontend": frontend,
        "count": len(violations),
        "findings": [
            {"rule": v.rule, "file": v.relpath, "line": v.line,
             "token": v.token, "message": v.msg, "key": v.key}
            for v in sorted(violations, key=lambda v: v.key)],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")


# ---------------------------------------------------------------------------
# Self-test: every rule trips on its bad_ fixture, good_ fixtures and
# escapes stay clean — same contract as papyrus_lint.py --self-test.
# ---------------------------------------------------------------------------

def _fixture_run(name, diff_name=None, spec_json=None, spec_md=None):
    """Runs both check families over one fixture file."""
    path = os.path.join(FIXTURE_DIR, name)
    diff_text = None
    if diff_name:
        with open(os.path.join(FIXTURE_DIR, diff_name),
                  encoding="utf-8") as f:
            diff_text = f.read()
    model = cxx_model.build_model([path], FIXTURE_DIR)
    vs = checks.run_all(model, diff_text)
    proto = protocol_model.build_protocol_model(model)
    vs.extend(protocol_checks.run_all(
        model, proto,
        spec_json_path=os.path.join(FIXTURE_DIR, spec_json)
        if spec_json else None,
        spec_md_path=os.path.join(FIXTURE_DIR, spec_md)
        if spec_md else None))
    return vs


# (fixture, optional diff, optional spec json, rules that MUST trip)
INTRA_BAD_CASES = [
    ("bad_guarded_by.h", None, None, {"guarded-by"}),
    ("bad_status_discard.cc", None, None, {"status-discard"}),
    ("bad_codec_asym.cc", None, None, {"codec-symmetry"}),
    ("bad_pipeline_block.cc", None, None, {"pipeline-blocking"}),
    ("bad_sampler_lock.cc", None, None, {"pipeline-blocking"}),
    ("wire_fixture.cc", "bad_wire_version.diff", None, {"wire-version"}),
]
PROTO_BAD_CASES = [
    ("bad_proto_orphan.cc", None, None, {"proto-handler"}),
    ("bad_proto_resp_tag.cc", None, None, {"proto-resp-tag"}),
    ("bad_proto_collective.cc", None, None, {"proto-deadlock"}),
    ("bad_proto_recv_cycle.cc", None, None, {"proto-deadlock"}),
    ("proto_fixture.cc", None, "bad_proto_spec.json",
     {"proto-spec-drift"}),
]
INTRA_GOOD_CASES = [
    ("good_annotated.h", None, None),
    ("good_escapes.cc", None, None),
    ("good_codec.cc", None, None),
    ("good_pipeline.cc", None, None),
    ("good_sampler.cc", None, None),
    ("wire_fixture.cc", "good_wire_version.diff", None),
]
PROTO_GOOD_CASES = [
    ("good_proto.cc", None, None),
    ("proto_fixture.cc", None, "good_proto_spec.json"),
]


def self_test(protocol_only=False):
    if not os.path.isdir(FIXTURE_DIR):
        print("papyrus_analyze: fixture dir missing: %s" % FIXTURE_DIR,
              file=sys.stderr)
        return 2

    failures = []
    bad_cases = PROTO_BAD_CASES if protocol_only \
        else INTRA_BAD_CASES + PROTO_BAD_CASES
    good_cases = PROTO_GOOD_CASES if protocol_only \
        else INTRA_GOOD_CASES + PROTO_GOOD_CASES

    for name, diff, spec, want in bad_cases:
        got = {v.rule for v in _fixture_run(name, diff, spec)}
        missing = want - got
        if missing:
            failures.append("fixture %s: expected rule(s) %s did not trip "
                            "(got: %s)" % (name, sorted(missing),
                                           sorted(got) or "nothing"))
    for name, diff, spec in good_cases:
        vs = _fixture_run(name, diff, spec)
        if vs:
            failures.append("fixture %s: expected clean, got:\n  %s"
                            % (name, "\n  ".join(str(v) for v in vs)))

    # The escape fixtures must actually contain escapes — for >=3
    # intra-process rules and >=2 protocol rules — so a regression that
    # stops honoring escapes cannot silently pass.
    if not protocol_only:
        with open(os.path.join(FIXTURE_DIR, "good_escapes.cc"),
                  encoding="utf-8") as f:
            escape_text = f.read()
        escape_rules = {r for r in checks.ALL_CHECKS
                        if "analyze:allow-" + r in escape_text}
        if len(escape_rules) < 3:
            failures.append("good_escapes.cc must exercise escapes for >=3 "
                            "rules, found %s" % sorted(escape_rules))
    with open(os.path.join(FIXTURE_DIR, "good_proto.cc"),
              encoding="utf-8") as f:
        proto_escape_text = f.read()
    proto_escape_rules = {r for r in protocol_checks.PROTO_CHECKS
                          if "analyze:allow-" + r in proto_escape_text}
    if len(proto_escape_rules) < 2:
        failures.append("good_proto.cc must exercise escapes for >=2 "
                        "protocol rules, found %s"
                        % sorted(proto_escape_rules))

    if failures:
        print("papyrus_analyze --self-test FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    n_rules = (len(protocol_checks.PROTO_CHECKS) if protocol_only
               else len(checks.ALL_CHECKS)
               + len(protocol_checks.PROTO_CHECKS))
    print("papyrus_analyze --self-test%s OK (%d rules, %d bad fixtures, "
          "%d good fixtures)" % ("-protocol" if protocol_only else "",
                                 n_rules, len(bad_cases), len(good_cases)))
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(prog="papyrus_analyze.py",
                                 description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: src)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture suite and exit")
    ap.add_argument("--self-test-protocol", action="store_true",
                    help="run only the protocol fixture suite and exit")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="suppression file (default: %(default)s)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite the baseline file from current findings")
    ap.add_argument("--write-spec", action="store_true",
                    help="regenerate PROTOCOL.json + docs/PROTOCOL.md "
                         "from the source and exit")
    ap.add_argument("--json", metavar="FILE",
                    help="also write findings (rule, file, line, message) "
                         "as JSON to FILE")
    ap.add_argument("--diff-base", metavar="REF",
                    help="run wire-version against `git diff REF`")
    ap.add_argument("--diff-file", metavar="FILE",
                    help="run wire-version against a saved unified diff")
    ap.add_argument("--frontend", choices=("auto", "text", "clang"),
                    default="auto",
                    help="C++ frontend (default: auto — clang refinement "
                         "when available, text otherwise)")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.self_test_protocol:
        return self_test(protocol_only=True)

    roots = args.paths or [os.path.join(REPO_ROOT, r)
                           for r in DEFAULT_ROOTS]
    for r in roots:
        if not os.path.exists(r):
            print("papyrus_analyze: no such path: %s" % r, file=sys.stderr)
            return 2

    diff_text = None
    if args.diff_file:
        with open(args.diff_file, encoding="utf-8") as f:
            diff_text = f.read()
    elif args.diff_base:
        diff_text = git_diff(args.diff_base)

    frontend, refine = resolve_frontend(args.frontend)
    if args.write_spec:
        return write_spec(roots, refine)
    violations = analyze(roots, diff_text, refine)

    if args.json:
        write_json(args.json, violations, frontend)

    if args.write_baseline:
        write_baseline(args.baseline, violations)
        print("papyrus_analyze: wrote %d suppression(s) to %s"
              % (len(violations), args.baseline))
        return 0

    baseline = load_baseline(args.baseline)
    fresh = [v for v in violations if v.key not in baseline]
    stale = baseline - {v.key for v in violations}

    for v in fresh:
        print(v)
    if stale:
        print("papyrus_analyze: %d stale baseline entr%s (fixed — remove "
              "from %s):" % (len(stale), "y" if len(stale) == 1 else "ies",
                             os.path.relpath(args.baseline, REPO_ROOT)),
              file=sys.stderr)
        for k in sorted(stale):
            print("  " + k, file=sys.stderr)
    if fresh:
        print("papyrus_analyze: %d violation(s) [frontend: %s]"
              % (len(fresh), frontend), file=sys.stderr)
        return 1
    print("papyrus_analyze: clean (%d file(s), frontend: %s, %d "
          "baseline-suppressed)" % (
              len({f for f in
                   cxx_model.iter_sources(roots)}),
              frontend, len(violations) - len(fresh)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
