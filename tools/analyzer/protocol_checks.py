"""protocol_checks — the four papyrus_analyze message-flow rules.

Each check consumes the ProtocolModel from protocol_model.py (plus the
cxx_model Model for escapes/comments) and yields checks.Violation objects.
Escape grammar is shared with the intra-process rules:
`// analyze:allow-<rule>[: reason]` on the line or the contiguous
pure-comment block above it.

Rules:
  proto-handler     Every opcode sent on the request communicator must
                    have a dispatch arm in the handler switch whose decode
                    frame matches an encode in the sending function; arms
                    without a send site and opcodes that are neither sent
                    nor dispatched (orphans) are flagged; two enumerators
                    sharing a value shadow each other.
  proto-resp-tag    A request frame's resp_tag reachable from a retry
                    path must come from AllocRespTag(); fixed kTag*
                    values are allowed only at the allowlisted
                    single-file restart sites, and the fixed-tag space
                    must be statically disjoint from the dynamic range
                    [kDynamicRespTagBase, inf) and from the opcode space.
  proto-deadlock    (a) an unbounded Recv/RecvInternal outside the comm
                    module can wedge a rank forever — the classic MPI
                    wait-cycle edge with no timeout bound; (b) sibling
                    branches conditioned on rank-dependent state (rank,
                    crashed(), IsSuspect) must issue the same collective
                    sequence in the same order, or ranks diverge into
                    different collectives and deadlock.
  proto-spec-drift  The committed PROTOCOL.json / docs/PROTOCOL.md must
                    match what the extractor reads from the source —
                    regenerate with `papyrus_analyze.py --write-spec`.
"""

import json
import os
import re

import protocol_model
from checks import Violation

# Files allowed to use fixed kTag* response tags: the restart/
# redistribution task runs single-file with no retry (DESIGN.md §8).
FIXED_TAG_ALLOWLIST = ("src/core/checkpoint.cc",)

PROTO_CHECKS = ("proto-handler", "proto-resp-tag", "proto-deadlock",
                "proto-spec-drift")


def _fm(model, fn):
    return model.files[fn.relpath]


# ---------------------------------------------------------------------------
# Rule A: handler coverage.
# ---------------------------------------------------------------------------

def check_handler_coverage(model, proto):
    out = []
    if not proto.opcodes or proto.handler is None:
        # No dispatcher in this source set (e.g. a fixture without one):
        # nothing to cover.
        return out
    sent = {}
    for s in proto.sends:
        if s.channel != "request":
            continue
        for tok in s.op_tokens:
            sent.setdefault(tok, []).append(s)

    # Shadowed opcodes: two enumerators with the same value.
    by_value = {}
    for name, (value, relpath, line) in sorted(proto.opcodes.items()):
        if value is None:
            continue
        if value in by_value:
            out.append(Violation(
                "proto-handler", relpath, line, "shadow:%s" % name,
                "opcode %s aliases %s (both = %d) — the dispatch switch "
                "can only serve one of them" % (name, by_value[value],
                                                value)))
        else:
            by_value[value] = name

    for tok, sites in sorted(sent.items()):
        if tok not in proto.opcodes:
            continue
        if tok not in proto.arms:
            for s in sites:
                fm = _fm(model, s.fn)
                if fm.escape(s.line, "proto-handler"):
                    continue
                out.append(Violation(
                    "proto-handler", s.fn.relpath, s.line,
                    "unhandled:%s" % tok,
                    "%s sends %s on the request communicator but the "
                    "handler switch (%s) has no arm for it — the message "
                    "would hit the unknown-opcode default" %
                    (s.fn.qualname, tok,
                     proto.handler.qualname)))
            continue
        # Frame match: the sending function's Encode frames must include
        # one of the frames the arm decodes (skipped when the payload is
        # built elsewhere — no Encode call in the sender to compare).
        arm = proto.arms[tok]
        if not arm.decoders:
            continue
        for s in sites:
            enc_frames = {e.frame for e in proto.encode_calls
                          if e.fn is s.fn}
            enc_frames.update(
                re.findall(r"\bEncode(\w+)\s*\(",
                           " ".join(t for _, t in s.fn.body)))
            if not enc_frames:
                continue
            if not enc_frames & set(arm.decoders):
                fm = _fm(model, s.fn)
                if fm.escape(s.line, "proto-handler"):
                    continue
                out.append(Violation(
                    "proto-handler", s.fn.relpath, s.line,
                    "frame-mismatch:%s" % tok,
                    "%s sends %s with Encode frame(s) [%s] but the arm "
                    "decodes [%s] — encode and decode must agree on the "
                    "frame" % (s.fn.qualname, tok,
                               ", ".join(sorted(enc_frames)),
                               ", ".join(arm.decoders))))

    hfm = model.files[proto.handler.relpath]
    for tok, arm in sorted(proto.arms.items()):
        if tok not in sent and not hfm.escape(arm.line, "proto-handler"):
            out.append(Violation(
                "proto-handler", proto.handler.relpath, arm.line,
                "no-sender:%s" % tok,
                "dispatch arm for %s has no in-tree send site — dead "
                "opcode, or a sender the extractor cannot see (escape "
                "with why if intentional)" % tok))
    for name, (value, relpath, line) in sorted(proto.opcodes.items()):
        if name in sent or name in proto.arms:
            continue
        efm = model.files.get(relpath)
        if efm is not None and efm.escape(line, "proto-handler"):
            continue
        out.append(Violation(
            "proto-handler", relpath, line, "orphan:%s" % name,
            "opcode %s is declared but never sent and never dispatched — "
            "orphan wire surface" % name))
    return out


# ---------------------------------------------------------------------------
# Rule B: resp-tag discipline.
# ---------------------------------------------------------------------------

def check_resp_tag(model, proto,
                   fixed_allowlist=FIXED_TAG_ALLOWLIST):
    out = []
    # Static tag-space partition (enum level).
    if proto.resp_tags and proto.dynamic_base is not None:
        opvals = proto.opcode_values()
        for name, (value, relpath, line) in sorted(proto.resp_tags.items()):
            if value is None:
                continue
            fm = model.files.get(relpath)
            if fm is not None and fm.escape(line, "proto-resp-tag"):
                continue
            if value >= proto.dynamic_base:
                out.append(Violation(
                    "proto-resp-tag", relpath, line,
                    "range:%s" % name,
                    "fixed tag %s = %d collides with the dynamic "
                    "response-tag range [%d, inf) — AllocRespTag() can "
                    "hand out the same value" % (name, value,
                                                 proto.dynamic_base)))
            if value in opvals:
                out.append(Violation(
                    "proto-resp-tag", relpath, line,
                    "op-alias:%s" % name,
                    "fixed tag %s = %d aliases an opcode value — a "
                    "response tag numerically equal to an opcode makes "
                    "misrouted messages undetectable" % (name, value)))
    if proto.op_max is not None and proto.dynamic_base is not None and \
            proto.op_max >= proto.dynamic_base and proto.enum_relpath:
        out.append(Violation(
            "proto-resp-tag", proto.enum_relpath, 1, "opmax-range",
            "kOpMax (%d) reaches into the dynamic response-tag range "
            "(base %d)" % (proto.op_max, proto.dynamic_base)))

    # Call-site discipline.
    for e in proto.encode_calls:
        fm = _fm(model, e.fn)
        if fm.escape(e.line, "proto-resp-tag"):
            continue
        if e.tag_source == "dynamic":
            continue
        if e.tag_source == "fixed":
            if e.in_retry:
                out.append(Violation(
                    "proto-resp-tag", e.fn.relpath, e.line,
                    "fixed-retried:%s:%s" % (e.fn.name, e.frame),
                    "Encode%s in %s uses fixed resp_tag %s on a retried "
                    "path — a late reply to the first attempt aliases the "
                    "retry; use AllocRespTag()" %
                    (e.frame, e.fn.qualname, e.tag_text.strip())))
            elif e.fn.relpath not in fixed_allowlist:
                out.append(Violation(
                    "proto-resp-tag", e.fn.relpath, e.line,
                    "fixed:%s:%s" % (e.fn.name, e.frame),
                    "Encode%s in %s uses fixed resp_tag %s outside the "
                    "allowlisted restart sites (%s) — use AllocRespTag() "
                    "or escape with why" %
                    (e.frame, e.fn.qualname, e.tag_text.strip(),
                     ", ".join(fixed_allowlist))))
        else:  # unknown
            out.append(Violation(
                "proto-resp-tag", e.fn.relpath, e.line,
                "unknown:%s:%s" % (e.fn.name, e.frame),
                "Encode%s in %s sources resp_tag from '%s' which the "
                "analyzer cannot trace to AllocRespTag() — route the tag "
                "through a local assigned from AllocRespTag(), or escape "
                "with why" % (e.frame, e.fn.qualname, e.tag_text.strip())))
    return out


# ---------------------------------------------------------------------------
# Rule C: deadlock shapes.
# ---------------------------------------------------------------------------

def _branch_blocks(joined):
    """Yields (conds_text, [(char_lo, char_hi), ...sibling blocks]) for
    every if/else chain in the joined body text, by character-level brace
    matching (line depths cannot split `} else {`).  When an if-block with
    no else exits early (return/continue/break), the rest of the function
    is the implicit sibling."""
    for m in re.finditer(r"\bif\s*\(", joined):
        head = joined[:m.start()].rstrip()
        if head.endswith("else"):
            continue  # chain tail — walked from its head `if`
        conds = []
        blocks = []
        pos = m.start()
        while True:
            ci = joined.find("(", pos)
            if ci < 0:
                break
            cend = protocol_model.match_paren(joined, ci)
            conds.append(joined[ci + 1:cend])
            # Branch body: brace block or single statement.
            j = cend + 1
            while j < len(joined) and joined[j].isspace():
                j += 1
            if j < len(joined) and joined[j] == "{":
                bend = protocol_model.match_paren(joined, j, "{", "}")
            else:
                bend = joined.find(";", j)
                bend = len(joined) - 1 if bend < 0 else bend
            blocks.append((j, bend))
            # else / else-if chain?
            k = bend + 1
            while k < len(joined) and joined[k].isspace():
                k += 1
            if not joined.startswith("else", k):
                break
            k += 4
            while k < len(joined) and joined[k].isspace():
                k += 1
            if joined.startswith("if", k):
                pos = k  # else-if: loop parses its cond + body
                continue
            if joined[k:k + 1] == "{":
                bend2 = protocol_model.match_paren(joined, k, "{", "}")
            else:
                bend2 = joined.find(";", k)
                bend2 = len(joined) - 1 if bend2 < 0 else bend2
            blocks.append((k, bend2))
            break
        if len(blocks) == 1:
            lo, hi = blocks[0]
            if re.search(r"\b(?:return|continue|break)\b",
                         joined[lo:hi + 1]):
                blocks.append((hi + 1, len(joined) - 1))
        if len(blocks) >= 2:
            yield " ".join(conds), blocks


def check_deadlock(model, proto):
    out = []
    # (a) unbounded receives outside the comm module.
    for r in proto.recvs:
        if r.bounded or r.name not in ("Recv", "RecvInternal",
                                       "RecvResponse"):
            continue
        if r.name == "RecvResponse" and r.fn.name == "RecvResponse":
            continue  # flagged at the definition's inner Recv instead
        fm = _fm(model, r.fn)
        if fm.escape(r.line, "proto-deadlock"):
            continue
        out.append(Violation(
            "proto-deadlock", r.fn.relpath, r.line,
            "unbounded-recv:%s@%d" % (r.fn.name, r.line),
            "unbounded %s in %s — a lost message or dead peer wedges this "
            "rank forever (no timeout-bounded edge out of the wait); use "
            "RecvFor/RequestReply or escape with why blocking is safe" %
            (r.name, r.fn.qualname)))

    # (b) rank-divergent collective ordering between sibling branches.
    for fn in model.functions:
        sites = proto.collectives.get(fn.qualname)
        if not sites:
            continue
        fm = _fm(model, fn)
        joined, index, starts = protocol_model._joined_body(
            fn, with_starts=True)
        idx_of_line = {ln: i for i, (ln, _) in enumerate(fn.body)}
        site_pos = []  # (char_offset, lineno, name), program order
        for ln, name in sites:
            i = idx_of_line.get(ln)
            if i is None:
                continue
            col = fn.body[i][1].find(name)
            site_pos.append((starts[i] + max(col, 0), ln, name))
        for cond, blocks in _branch_blocks(joined):
            if not protocol_model._RANK_COND_RE.search(cond):
                continue
            seqs = [[name for off, _, name in site_pos if a <= off <= b]
                    for a, b in blocks]
            if not any(seqs):
                continue
            if any(seq != seqs[0] for seq in seqs[1:]):
                bidx = index[min(blocks[0][0], len(index) - 1)]
                line = fn.body[bidx][0]
                if fm.escape(line, "proto-deadlock"):
                    continue
                out.append(Violation(
                    "proto-deadlock", fn.relpath, line,
                    "collective-order:%s@%d" % (fn.name, line),
                    "%s issues different collective sequences (%s) in "
                    "sibling branches of rank-dependent condition (%s) — "
                    "ranks taking different branches meet different "
                    "collectives and deadlock" %
                    (fn.qualname,
                     " vs ".join("[%s]" % " -> ".join(s) for s in seqs),
                     " ".join(cond.split())[:60])))
    return out


# ---------------------------------------------------------------------------
# Rule D: spec drift.
# ---------------------------------------------------------------------------

def check_spec_drift(proto, spec_json_path, spec_md_path=None):
    out = []
    rel_json = os.path.basename(spec_json_path)
    gen = protocol_model.build_spec(proto)
    if not os.path.exists(spec_json_path):
        out.append(Violation(
            "proto-spec-drift", rel_json, 1, "missing",
            "committed protocol spec %s is missing — generate it with "
            "`python3 tools/analyzer/papyrus_analyze.py --write-spec`"
            % rel_json))
        return out
    try:
        with open(spec_json_path, encoding="utf-8") as f:
            committed = json.load(f)
    except ValueError as exc:
        out.append(Violation(
            "proto-spec-drift", rel_json, 1, "unparseable",
            "%s is not valid JSON (%s) — regenerate with --write-spec"
            % (rel_json, exc)))
        return out
    if json.dumps(committed, sort_keys=True) != \
            json.dumps(gen, sort_keys=True):
        diff_keys = sorted(
            k for k in set(gen) | set(committed)
            if json.dumps(gen.get(k), sort_keys=True) !=
            json.dumps(committed.get(k), sort_keys=True))
        out.append(Violation(
            "proto-spec-drift", rel_json, 1, "drift",
            "source message flow drifted from the committed %s (sections: "
            "%s) — regenerate with `python3 tools/analyzer/"
            "papyrus_analyze.py --write-spec` and review the diff"
            % (rel_json, ", ".join(diff_keys))))
        return out
    if spec_md_path is not None:
        gen_md = protocol_model.render_markdown(gen)
        committed_md = ""
        if os.path.exists(spec_md_path):
            with open(spec_md_path, encoding="utf-8") as f:
                committed_md = f.read()
        if committed_md.strip() != gen_md.strip():
            out.append(Violation(
                "proto-spec-drift", os.path.basename(spec_md_path), 1,
                "md-drift",
                "generated docs/PROTOCOL.md is out of date — regenerate "
                "with `python3 tools/analyzer/papyrus_analyze.py "
                "--write-spec`"))
    return out


def run_all(model, proto, spec_json_path=None, spec_md_path=None):
    out = []
    out.extend(check_handler_coverage(model, proto))
    out.extend(check_resp_tag(model, proto))
    out.extend(check_deadlock(model, proto))
    if spec_json_path is not None:
        out.extend(check_spec_drift(proto, spec_json_path, spec_md_path))
    return out
