"""cxx_model — the analyzer's built-in structural C++ frontend.

Produces the micro-AST ("Model") that the semantic checks in checks.py
consume: classes with their fields, thread-safety annotations and mutex
members; function definitions (free, qualified out-of-line, and inline
methods) with their body lines, brace-depth profile and call tokens; and a
per-line comment side table (escape comments and why-comments live in
comments, which the code view strips).

This frontend is deliberately *structural*, not a full parser: it
tokenizes accurately enough for the five papyrus_analyze checks (string/
char/comment-safe brace matching, statement accumulation, one level of
class nesting) and leans on the repo's own conventions (member fields end
in `_`, locking goes through papyrus::Mutex + MutexLock).  When python
clang bindings and a compile_commands.json are available,
clang_frontend.py refines the type-sensitive facts (see papyrus_analyze
--frontend); everything else runs on this model alone, so the gate works
on toolchain-poor builders too.
"""

import os
import re

HEADER_EXTS = (".h", ".hpp")
SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp")

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "assert",
    "alignof", "decltype", "throw", "new", "delete", "defined", "not",
}

CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
CALL_EX_RE = re.compile(r"(?:\b(\w+)\s*(\.|->|::)\s*)?\b([A-Za-z_]\w*)\s*\(")


class FileModel:
    """One sanitized source file: code lines + comment side table."""

    def __init__(self, path, relpath):
        self.path = path
        self.relpath = relpath
        self.code = []       # code with comments/strings blanked, 0-indexed
        self.comments = {}   # lineno (1-based) -> comment text on that line

    def comment(self, lineno):
        return self.comments.get(lineno, "")

    def has_comment(self, lineno):
        """True if `lineno` carries a comment (same line) or the previous
        line is a pure comment line — the two spellings the why-comment
        mandate in core/papyruskv.h accepts."""
        if self.comments.get(lineno, "").strip():
            return True
        prev = lineno - 1
        if prev >= 1 and self.comments.get(prev, "").strip():
            # Pure comment line: no code besides whitespace.
            if prev - 1 < len(self.code) and not self.code[prev - 1].strip():
                return True
        return False

    def escape(self, lineno, tag):
        """True if `// analyze:allow-<tag>` appears on the line or in the
        contiguous block of pure-comment lines immediately above it (a
        multi-line justification counts as one escape)."""
        needle = "analyze:allow-" + tag
        if needle in self.comments.get(lineno, ""):
            return True
        prev = lineno - 1
        while (prev >= 1 and prev - 1 < len(self.code)
               and not self.code[prev - 1].strip()
               and self.comments.get(prev, "").strip()):
            if needle in self.comments[prev]:
                return True
            prev -= 1
        return False


class Field:
    def __init__(self, name, decl_text, line):
        self.name = name
        self.decl_text = decl_text
        self.line = line
        self.guarded_by = None   # mutex name from GUARDED_BY/PT_GUARDED_BY
        m = re.search(r"\b(?:PT_)?GUARDED_BY\s*\(\s*([\w.\->]+)\s*\)",
                      decl_text)
        if m:
            self.guarded_by = m.group(1).split(".")[-1].split(">")[-1]

    @property
    def annotated(self):
        return self.guarded_by is not None

    @property
    def is_atomic(self):
        return "atomic" in self.decl_text


class ClassModel:
    def __init__(self, name, relpath, line):
        self.name = name
        self.relpath = relpath
        self.line = line
        self.fields = {}          # name -> Field
        self.mutexes = set()      # names of Mutex/SharedMutex members
        self.method_annots = {}   # method name -> {"requires": [...],
        #                           "release": [...], "acquire": [...]}

    def merge(self, other):
        """Same class seen in another file (fwd decl / reopen): merge."""
        self.fields.update(other.fields)
        self.mutexes.update(other.mutexes)
        for k, v in other.method_annots.items():
            self.method_annots.setdefault(k, v)


class FunctionModel:
    def __init__(self, name, class_name, relpath, decl_text, start_line):
        self.name = name                  # unqualified
        self.class_name = class_name      # enclosing/qualifying class or None
        self.relpath = relpath
        self.decl_text = decl_text        # header text up to the opening {
        self.start_line = start_line      # line of the opening {
        self.end_line = start_line
        self.body = []                    # [(lineno, code_text)]
        self.depth = []                   # brace depth at start of each body line
        self._calls = None

    @property
    def qualname(self):
        return (self.class_name + "::" + self.name) if self.class_name \
            else self.name

    @property
    def returns_status(self):
        # Return type = decl text before the (qualified) function name.
        idx = self.decl_text.find(self.name + "(")
        if idx < 0:
            idx = self.decl_text.find(self.name)
        head = self.decl_text[:idx] if idx >= 0 else self.decl_text
        return re.search(r"\bStatus\b", head) is not None

    def calls(self):
        """Ordered (lineno, callee_token) pairs, keyword-filtered."""
        if self._calls is None:
            self._calls = []
            for lineno, text in self.body:
                for m in CALL_RE.finditer(text):
                    tok = m.group(1)
                    if tok not in _KEYWORDS:
                        self._calls.append((lineno, tok))
        return self._calls

    def calls_ex(self):
        """Receiver-aware call sites: (lineno, name, kind, receiver).

        kind is one of:
          plain    unqualified call (`Foo(...)`, `this->Foo(...)`)
          member   `recv.Foo(...)` / `recv->Foo(...)` with an identifier
                   receiver (resolvable when recv is a typed member field)
          scope    `Cls::Foo(...)`
          unknown  call on a computed expression (`x.a().Foo(...)`)
        """
        out = []
        for lineno, text in self.body:
            for m in CALL_EX_RE.finditer(text):
                name = m.group(3)
                if name in _KEYWORDS:
                    continue
                recv, sep = m.group(1), m.group(2)
                if sep == "::":
                    kind = "scope"
                elif sep in (".", "->"):
                    if recv == "this":
                        kind, recv = "plain", None
                    else:
                        kind = "member"
                else:
                    before = text[:m.start()].rstrip()
                    if before.endswith((".", "->", "::", ")")):
                        kind, recv = "unknown", None
                    else:
                        kind, recv = "plain", None
                out.append((lineno, name, kind, recv))
        return out


class Model:
    def __init__(self):
        self.files = {}       # relpath -> FileModel
        self.classes = {}     # class name -> ClassModel
        self.functions = []   # [FunctionModel]
        self.by_name = {}     # simple function name -> [FunctionModel]
        # Function names whose every known declaration returns Status
        # (refined to a precise set by clang_frontend when available).
        self.status_fn_names = set()
        self._status_yes = {}
        self._status_no = set()

    def add_function(self, fn):
        self.functions.append(fn)
        self.by_name.setdefault(fn.name, []).append(fn)

    def note_return_type(self, name, returns_status):
        if returns_status:
            self._status_yes[name] = True
        else:
            self._status_no.add(name)

    def finalize(self):
        for fn in self.functions:
            self.note_return_type(fn.name, fn.returns_status)
        # Unambiguous only: every sighting of the name returns Status.
        self.status_fn_names = {
            n for n in self._status_yes if n not in self._status_no}


# ---------------------------------------------------------------------------
# Sanitizer: strip comments / strings / preprocessor, keep a comment table.
# ---------------------------------------------------------------------------

def sanitize(text):
    """Returns (code_lines, comments) where code_lines have comments,
    string/char literal contents and preprocessor lines blanked (line
    structure preserved) and comments maps 1-based line -> comment text."""
    code = []
    comments = {}
    i = 0
    n = len(text)
    line = []
    comment_buf = []
    lineno = 1
    state = "code"  # code | line_comment | block_comment | string | char

    def flush_line():
        nonlocal line, comment_buf, lineno
        code.append("".join(line))
        if comment_buf:
            comments[lineno] = comments.get(lineno, "") + "".join(comment_buf)
        line = []
        comment_buf = []
        lineno += 1

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            if state == "line_comment":
                state = "code"
            flush_line()
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                line.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                line.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                line.append("'")
                i += 1
                continue
            line.append(c)
            i += 1
        elif state == "line_comment":
            comment_buf.append(c)
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                line.append("  ")
                i += 2
            else:
                comment_buf.append(c)
                line.append(" ")
                i += 1
        elif state == "string":
            if c == "\\":
                line.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                line.append('"')
                i += 1
            else:
                line.append(" ")
                i += 1
        elif state == "char":
            if c == "\\":
                line.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                line.append("'")
                i += 1
            else:
                line.append(" ")
                i += 1
    if line or comment_buf:
        flush_line()
    # Blank preprocessor lines (a #define with an unbalanced brace would
    # desynchronize the structural scan).
    for idx, ln in enumerate(code):
        if re.match(r"\s*#", ln):
            code[idx] = ""
    return code, comments


# ---------------------------------------------------------------------------
# Structural scan.
# ---------------------------------------------------------------------------

_MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:papyrus::)?(?:common::)?(?:Shared)?Mutex\s+(\w+)")
_FIELD_RE = re.compile(r"\b(\w+_)\s*(?:GUARDED_BY|PT_GUARDED_BY|=|\{|;|$)")
_METHOD_NAME_RE = re.compile(r"(~?\w+)\s*\($")
_FN_HEAD_RE = re.compile(
    r"(?:(\w+)\s*::\s*)?(~?\w+)\s*\(")


_ANNOTATION_MACRO_RE = re.compile(
    r"\b(?:(?:PT_)?GUARDED_BY|REQUIRES(?:_SHARED)?|ACQUIRE(?:_SHARED)?"
    r"|RELEASE(?:_SHARED|_GENERIC)?|TRY_ACQUIRE(?:_SHARED)?|EXCLUDES"
    r"|ASSERT_CAPABILITY|RETURN_CAPABILITY|LOCKABLE|SCOPED_LOCKABLE"
    r"|NO_THREAD_SAFETY_ANALYSIS)\s*(?:\([^)]*\))?")


def _strip_annotations(text):
    """Removes thread-safety annotation macros so their parens don't make
    a field declaration look like a method declaration."""
    return _ANNOTATION_MACRO_RE.sub("", text)


def _method_annotations(decl_text):
    out = {"requires": [], "release": [], "acquire": []}
    for kind, key in (("REQUIRES(?:_SHARED)?", "requires"),
                      ("RELEASE(?:_SHARED|_GENERIC)?", "release"),
                      ("ACQUIRE(?:_SHARED)?", "acquire")):
        for m in re.finditer(r"\b%s\s*\(([^)]*)\)" % kind, decl_text):
            for ident in re.findall(r"[\w.\->]+", m.group(1)):
                out[key].append(ident.split(".")[-1].split(">")[-1])
    return out


class _Scanner:
    """Single pass over sanitized lines, classifying every `{` it meets."""

    def __init__(self, fm, model):
        self.fm = fm
        self.model = model
        self.lines = fm.code
        self.pos_line = 0   # 0-based
        self.pos_col = 0

    def _next_char(self):
        """Yields (lineno0, col, char) over the code, or None at EOF.
        Emits a synthetic space at each end-of-line so multi-line
        statements don't glue adjacent tokens together."""
        while self.pos_line < len(self.lines):
            ln = self.lines[self.pos_line]
            if self.pos_col < len(ln):
                c = ln[self.pos_col]
                pos = (self.pos_line, self.pos_col, c)
                self.pos_col += 1
                return pos
            pos = (self.pos_line, self.pos_col, " ")
            self.pos_line += 1
            self.pos_col = 0
            return pos
        return None

    def scan(self):
        self._scan_region(class_ctx=None, stop_at_close=False)

    def _skip_balanced(self, fn=None):
        """Consumes chars until the brace opened just before balances.
        If fn is given, records body lines/depths into it."""
        depth = 1
        start_line = self.pos_line
        if fn is not None:
            fn.depth_at = {}
        while True:
            nxt = self._next_char()
            if nxt is None:
                return
            lnum, _, c = nxt
            if fn is not None and lnum != start_line:
                pass
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    if fn is not None:
                        fn.end_line = lnum + 1
                    return

    def _capture_function(self, fn, open_line0):
        """Captures body lines with per-line brace depth (depth relative to
        the function body; opening { is depth 0 -> 1)."""
        depth = 1
        cur_line = open_line0
        fn.body = []
        fn.depth = []
        line_start_depth = depth
        # Remainder of the opening line after '{' is part of the body.
        buf = []
        while True:
            nxt = self._next_char()
            if nxt is None:
                break
            lnum, _, c = nxt
            if lnum != cur_line:
                fn.body.append((cur_line + 1, "".join(buf)))
                fn.depth.append(line_start_depth)
                # Any skipped (empty) lines keep the model line-accurate.
                for skipped in range(cur_line + 1, lnum):
                    fn.body.append((skipped + 1, ""))
                    fn.depth.append(depth)
                cur_line = lnum
                buf = []
                line_start_depth = depth
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    fn.body.append((cur_line + 1, "".join(buf)))
                    fn.depth.append(line_start_depth)
                    fn.end_line = cur_line + 1
                    return
            buf.append(c)

    def _scan_region(self, class_ctx, stop_at_close):
        """Scans a namespace/global or class body, dispatching on braces."""
        stmt = []          # accumulated header text since last ; { }
        stmt_line = None   # 1-based line where the accumulation started
        while True:
            nxt = self._next_char()
            if nxt is None:
                return
            lnum, _, c = nxt
            if c == ";":
                if stmt:
                    if class_ctx is not None:
                        self._class_member(class_ctx, "".join(stmt),
                                           stmt_line or lnum + 1)
                    else:
                        self._free_decl(" ".join("".join(stmt).split()))
                stmt = []
                stmt_line = None
                continue
            if c == "}":
                if stop_at_close:
                    return
                stmt = []
                stmt_line = None
                continue
            if c == "{":
                text = " ".join("".join(stmt).split())
                line1 = stmt_line or (lnum + 1)
                stmt = []
                stmt_line = None
                self._dispatch_brace(text, line1, lnum, class_ctx)
                continue
            if not c.isspace() and stmt_line is None:
                stmt_line = lnum + 1
            stmt.append(c)

    def _dispatch_brace(self, text, decl_line, open_line0, class_ctx):
        # namespace / extern "C" -> recurse transparently
        if re.match(r"(?:inline\s+)?namespace\b", text) or \
                text.startswith("extern"):
            self._scan_region(class_ctx, stop_at_close=True)
            return
        # enum: skip entirely
        if re.match(r"(?:typedef\s+)?enum\b", text):
            self._skip_balanced()
            return
        # class/struct/union definition (not a fn returning struct ptr):
        m = re.match(
            r"(?:template\s*<[^{]*>\s*)?(?:typedef\s+)?"
            r"(?:class|struct|union)\s+(?:alignas\s*\([^)]*\)\s*)?(\w+)",
            text)
        if m and "(" not in text.split(":", 1)[0]:
            cname = m.group(1)
            cm = ClassModel(cname, self.fm.relpath, decl_line)
            if cname in self.model.classes:
                self.model.classes[cname].merge(cm)
                cm = self.model.classes[cname]
            else:
                self.model.classes[cname] = cm
            self._scan_region(cm, stop_at_close=True)
            return
        # Inside a class, a brace that is not a method body is a member's
        # brace initializer (`Mutex mu_{"name"};`): consume it and record
        # the member from the accumulated decl text.
        if class_ctx is not None and "(" not in _strip_annotations(text):
            self._skip_balanced()
            if text:
                self._class_member(class_ctx, text, decl_line)
            return
        # function definition: header text contains a parameter list
        fh = self._parse_fn_head(text, class_ctx)
        if fh is not None:
            name, qual_class = fh
            fn = FunctionModel(name, qual_class, self.fm.relpath, text,
                               decl_line)
            self._capture_function(fn, open_line0)
            self.model.add_function(fn)
            if class_ctx is not None:
                class_ctx.method_annots.setdefault(
                    name, _method_annotations(text))
            return
        # anything else (array init, lambda-ish, control at odd scope): skip
        self._skip_balanced()

    def _parse_fn_head(self, text, class_ctx):
        if "(" not in text:
            return None
        if re.match(r"(?:if|for|while|switch|do)\b", text):
            return None
        # Strip trailing annotations/specifiers after the param list:
        #   void F(int x) const noexcept REQUIRES(mu_) -> find name before (
        # Take the identifier directly before the FIRST '(' that follows the
        # (optionally qualified) name; constructor init lists follow ')'.
        m = _FN_HEAD_RE.search(text)
        if not m:
            return None
        qual, name = m.group(1), m.group(2)
        if name in _KEYWORDS:
            return None
        # `= [](...)` lambdas or assignments are not definitions.
        if "=" in text.split("(", 1)[0]:
            return None
        cls = qual if qual else (class_ctx.name if class_ctx else None)
        return name, cls

    def _free_decl(self, text):
        """Namespace-scope statement ending in ';' — if it reads as a free
        function declaration, record its return type so status_fn_names
        covers declared-but-not-defined-here functions too."""
        stripped = _strip_annotations(text)
        if "(" not in stripped:
            return
        fh = self._parse_fn_head(stripped, None)
        if fh is None:
            return
        name, _ = fh
        head = stripped.split(name + "(", 1)[0] if name + "(" in stripped \
            else stripped.split("(", 1)[0]
        self.model.note_return_type(
            name, re.search(r"\bStatus\b", head) is not None)

    def _class_member(self, cm, text, line):
        text = " ".join(text.split())
        # Access labels are not statement separators; shed them.
        text = re.sub(r"^(?:public|private|protected)\s*:\s*", "", text)
        if not text or text.startswith(("public", "private", "protected",
                                        "friend", "using", "typedef",
                                        "static_assert", "template")):
            return
        mm = _MUTEX_MEMBER_RE.match(text)
        if mm:
            cm.mutexes.add(mm.group(1))
            cm.fields[mm.group(1)] = Field(mm.group(1), text, line)
            return
        # Pure method declaration (no body in this file): record its
        # annotations and return type.  Annotation macros carry parens of
        # their own, so the method test runs on the stripped text.
        if "(" in _strip_annotations(text):
            fh = self._parse_fn_head(_strip_annotations(text), cm)
            if fh is not None:
                name, _ = fh
                cm.method_annots.setdefault(name, _method_annotations(text))
                head = text.split(name + "(", 1)[0] if name + "(" in text \
                    else text.split("(", 1)[0]
                self.model.note_return_type(
                    name, re.search(r"\bStatus\b", head) is not None)
            return
        fm = _FIELD_RE.search(_strip_annotations(text) + " ")
        if fm:
            name = fm.group(1)
            cm.fields[name] = Field(name, text, line)


# ---------------------------------------------------------------------------
# Public entry points.
# ---------------------------------------------------------------------------

def parse_file(path, relpath, model):
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    fm = FileModel(path, relpath)
    fm.code, fm.comments = sanitize(text)
    model.files[relpath] = fm
    _Scanner(fm, model).scan()
    return fm


def iter_sources(roots, skip_dirs=("build", ".git", "fixture",
                                   "lint_fixture")):
    for root in roots:
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames
                           if d not in skip_dirs and not d.startswith("build")]
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, fn)


def build_model(roots, repo_root):
    model = Model()
    for path in iter_sources(roots):
        parse_file(path, os.path.relpath(path, repo_root), model)
    model.finalize()
    return model
