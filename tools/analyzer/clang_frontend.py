"""clang_frontend — optional clang.cindex refinement for papyrus_analyze.

The analyzer's checks run on the structural text frontend (cxx_model).
When python clang bindings and a CMake-exported compile_commands.json
exist (set CMAKE_EXPORT_COMPILE_COMMANDS=ON, already on in the top-level
CMakeLists), this module sharpens the one input that benefits from true
type information: the set of function names whose return type is Status
(used by the status-discard dropped-call subrule).  The text frontend
derives that set from declarations it can see; libclang derives it from
the type system, catching auto-returns, typedefs, and out-of-tree decls.

Everything here is best-effort: `available()` gates the import, and
`refine()` failures are caught by the caller — the analyzer never fails
or skips because clang tooling is missing.
"""

import glob
import os


def _find_compdb(repo_root):
    for cand in (os.path.join(repo_root, "build", "compile_commands.json"),
                 os.path.join(repo_root, "compile_commands.json")):
        if os.path.exists(cand):
            return os.path.dirname(cand)
    hits = glob.glob(os.path.join(repo_root, "build*",
                                  "compile_commands.json"))
    return os.path.dirname(hits[0]) if hits else None


def available():
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        return False
    try:
        clang.cindex.Index.create()
    except Exception:
        return False
    return True


def refine(model, repo_root):
    """Augments model.status_fn_names with functions libclang proves
    return papyrus::Status.  Additive only — the text-frontend set stays."""
    import clang.cindex as ci

    compdb_dir = _find_compdb(repo_root)
    if compdb_dir is None:
        return
    compdb = ci.CompilationDatabase.fromDirectory(compdb_dir)
    index = ci.Index.create()
    seen_files = set()
    for relpath in sorted(model.files):
        path = os.path.join(repo_root, relpath)
        if not path.endswith((".cc", ".cpp")):
            continue
        cmds = compdb.getCompileCommands(path)
        if not cmds:
            continue
        argv = [a for a in list(cmds[0].arguments)[1:]
                if a not in ("-c", "-o") and not a.endswith(".o")]
        if path in seen_files:
            continue
        seen_files.add(path)
        try:
            tu = index.parse(path, args=argv)
        except ci.TranslationUnitLoadError:
            continue
        _walk(tu.cursor, model, repo_root)


def _walk(cursor, model, repo_root):
    import clang.cindex as ci
    for c in cursor.walk_preorder():
        if c.kind in (ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD):
            rt = c.result_type.spelling
            if rt.endswith("Status") and "StatusOr" not in rt:
                model.status_fn_names.add(c.spelling)
