"""protocol_model — whole-program message-flow model for the wire layer.

Built on top of the cxx_model structural frontend (which deliberately skips
enum bodies, so the two wire enums are re-parsed here from the sanitized
code lines).  The model captures everything protocol_checks.py needs:

  * the WireOp opcode space and the fixed RespTag space (names, values,
    declaration sites), plus kOpMax / kDynamicRespTagBase;
  * every send site, classified by channel (request / response / signal /
    other) from the receiver communicator name or the runtime helper used
    (SendRequest / SendResponse / RequestReply), with the opcode tokens the
    call carries and whether the site sits inside a retry loop;
  * every receive site (Recv / RecvInternal / TryRecv / RecvFor /
    RecvResponseFor / BarrierFor), with its boundedness;
  * the KvRuntime-style handler dispatch switch (switch on a message tag
    with >= 2 opcode case arms), each arm's handler functions and the
    Decode<Frame> frames they consume;
  * every Encode<Frame> call whose codec declaration carries a resp_tag
    parameter, with the tag argument classified as dynamic
    (AllocRespTag-sourced), fixed (a kTag* enumerator), or unknown;
  * every collective call site (receiver-typed for the generic names), in
    program order per function, for the sibling-branch ordering check;
  * the per-frame wire layout, read from the structured comment block that
    precedes each Encode* declaration in src/core/wire.h.

`build_spec()` flattens the model into the committed PROTOCOL.json /
docs/PROTOCOL.md artifacts.  The spec is deliberately line-number-free
(sites are identified by function qualname + file) so it only drifts when
the message flow itself changes, not when unrelated edits move code.
"""

import json
import re

# ---------------------------------------------------------------------------
# Repo conventions (fixtures rely on the same ones).
# ---------------------------------------------------------------------------

# The comm module implements the primitives; its internal sends/recvs are
# transport, not protocol.
COMM_MODULE_FILES = ("src/net/comm.h", "src/net/comm.cc")

# Collective operations.  The generic comm names require a communicator
# receiver (so `store.Barrier()` / `db->Barrier()` — KV-level fences — stay
# out); the runtime's own bounded wrappers are collectives by name.
COLLECTIVE_COMM_NAMES = frozenset({
    "Barrier", "BarrierFor", "Bcast", "Allgather",
    "AllreduceSum", "AllreduceMax",
})
COLLECTIVE_PLAIN_NAMES = frozenset({"CollectiveBarrier", "RestartBarrier"})

# A branch condition that can evaluate differently on different ranks.
# (negative lookbehind keeps `nranks`/`snap_nranks` — SPMD-uniform counts —
# from matching).
_RANK_COND_RE = re.compile(
    r"(?<![A-Za-z0-9_])(?:my_)?rank(?:_\b|\b|\s*\()"
    r"|\bcrashed\s*\(|\bIsSuspect\s*\(|\bsuspect", re.IGNORECASE)

_ENUM_RE = re.compile(r"\benum\s+(?:class\s+)?(\w+)\s*(?::[^{]*)?\{")
_ENUM_ENTRY_RE = re.compile(r"^\s*(k\w+)\s*(?:=\s*([^,}]+))?\s*(?:,|$)")
_CONSTEXPR_INT_RE = re.compile(
    r"\bconstexpr\s+(?:int|uint32_t|uint8_t)\s+(\w+)\s*=\s*([\w']+)\s*;")
_LOOP_RE = re.compile(r"^\s*(?:for|while)\s*\(")
_CASE_RE = re.compile(r"\bcase\s+(?:\w+::)*(\w+)\s*:")
_SWITCH_RE = re.compile(r"\bswitch\s*\(\s*([\w.\->]+)\s*\)")
_ALLOC_TAG_RE = re.compile(
    r"([\w.\->\[\]]+)\s*=\s*(?:[\w.\->]*\.|->)?\s*(?:\w+\s*\.\s*|\w+\s*->\s*)?"
    r"AllocRespTag\s*\(")
_OP_TOKEN_RE = re.compile(r"\bkOp\w+\b")
_TAG_TOKEN_RE = re.compile(r"\bkTag\w+\b")


class SendSite:
    def __init__(self, fn, line, channel, op_tokens, in_retry, via):
        self.fn = fn              # FunctionModel
        self.line = line
        self.channel = channel    # request | response | signal | other
        self.op_tokens = op_tokens
        self.in_retry = in_retry
        self.via = via            # call name used (Send/SendRequest/...)


class RecvSite:
    def __init__(self, fn, line, name, receiver, bounded):
        self.fn = fn
        self.line = line
        self.name = name
        self.receiver = receiver
        self.bounded = bounded


class EncodeCall:
    def __init__(self, fn, line, frame, tag_source, tag_text, in_retry):
        self.fn = fn
        self.line = line
        self.frame = frame          # e.g. "PutBatch"
        self.tag_source = tag_source  # dynamic | fixed | unknown
        self.tag_text = tag_text
        self.in_retry = in_retry


class HandlerArm:
    def __init__(self, op_token, line, callees, decoders):
        self.op_token = op_token
        self.line = line
        self.callees = callees      # called handler function names
        self.decoders = decoders    # Decode frame suffixes consumed


class ProtocolModel:
    def __init__(self):
        self.opcodes = {}       # name -> (value, relpath, line)
        self.resp_tags = {}     # name -> (value, relpath, line)
        self.op_max = None
        self.dynamic_base = None
        self.enum_relpath = None
        self.sends = []         # [SendSite]
        self.recvs = []         # [RecvSite]
        self.encode_calls = []  # [EncodeCall]
        self.handler = None     # FunctionModel of the dispatch loop
        self.arms = {}          # op_token -> HandlerArm
        self.collectives = {}   # fn.qualname -> [(body_idx, line, name)]
        self.frame_layouts = {}  # frame -> layout string (from wire.h)
        self.resp_tag_encoders = set()  # Encode frames carrying a resp_tag

    def opcode_values(self):
        return {v[0] for v in self.opcodes.values() if v[0] is not None}


# ---------------------------------------------------------------------------
# Enum + constant parsing (cxx_model skips enum bodies by design).
# ---------------------------------------------------------------------------

def _parse_enums(fm, proto):
    names = None
    value = 0
    in_enum = None
    known = {}
    for idx, text in enumerate(fm.code):
        lineno = idx + 1
        if in_enum is None:
            m = _ENUM_RE.search(text)
            if m and m.group(1) in ("WireOp", "RespTag"):
                in_enum = m.group(1)
                names = (proto.opcodes if in_enum == "WireOp"
                         else proto.resp_tags)
                value = 0
                proto.enum_relpath = fm.relpath
            continue
        if "}" in text:
            in_enum = None
            continue
        m = _ENUM_ENTRY_RE.match(text)
        if not m:
            continue
        name, expr = m.group(1), m.group(2)
        if expr is not None:
            expr = expr.strip()
            try:
                value = int(expr, 0)
            except ValueError:
                value = known.get(expr)
        names[name] = (value, fm.relpath, lineno)
        known[name] = value
        if value is not None:
            value += 1
    # Named integer constants the tag-space checks need.
    joined = "\n".join(fm.code)
    for m in _CONSTEXPR_INT_RE.finditer(joined):
        name, expr = m.group(1), m.group(2)
        try:
            v = int(expr, 0)
        except ValueError:
            v = known.get(expr)
            if v is None and name == "kOpMax" and expr in proto.opcodes:
                v = proto.opcodes[expr][0]
        if name == "kOpMax":
            proto.op_max = v
        elif name == "kDynamicRespTagBase":
            proto.dynamic_base = v
        known[name] = v


# ---------------------------------------------------------------------------
# Function-body helpers.
# ---------------------------------------------------------------------------

def loop_regions(fn):
    """Body-index ranges [(start, end)] covered by for/while loops."""
    regions = []
    n = len(fn.body)
    for i, (_, text) in enumerate(fn.body):
        if not _LOOP_RE.match(text):
            continue
        d = fn.depth[i]
        end = i
        for j in range(i + 1, n):
            if fn.depth[j] <= d and fn.body[j][1].strip():
                end = j - 1
                break
        else:
            end = n - 1
        regions.append((i, max(end, i)))
    return regions


def _in_regions(idx, regions):
    return any(a <= idx <= b for a, b in regions)


def _joined_body(fn, with_starts=False):
    """Body text joined on one line with a char-offset -> body-index map
    (and optionally a body-index -> char-offset map)."""
    parts = []
    index = []
    starts = []
    off = 0
    for i, (_, text) in enumerate(fn.body):
        starts.append(off)
        parts.append(text)
        index.extend([i] * (len(text) + 1))
        parts.append(" ")
        off += len(text) + 1
    joined = "".join(parts)
    if with_starts:
        return joined, index, starts
    return joined, index


def match_paren(text, open_idx, open_ch="(", close_ch=")"):
    """Index of the bracket closing the one at open_idx, or len(text)."""
    depth = 0
    for j in range(open_idx, len(text)):
        if text[j] == open_ch:
            depth += 1
        elif text[j] == close_ch:
            depth -= 1
            if depth == 0:
                return j
    return len(text)


def _balanced_args(text, open_idx):
    """Argument text of the call whose '(' is at open_idx."""
    depth = 0
    for j in range(open_idx, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_idx + 1:j]
    return text[open_idx + 1:]


# ---------------------------------------------------------------------------
# Extraction passes.
# ---------------------------------------------------------------------------

def _channel_of(name, recv):
    recv = recv or ""
    if name in ("SendRequest", "RequestReply"):
        return "request"
    if name == "SendResponse":
        return "response"
    if name == "Send" and "comm" in recv.lower():
        if "req" in recv:
            return "request"
        if "resp" in recv:
            return "response"
        if "signal" in recv:
            return "signal"
        return "other"
    return None


def _scan_sends_recvs(proto, model):
    for fn in model.functions:
        if fn.relpath in COMM_MODULE_FILES:
            continue
        regions = loop_regions(fn)
        joined, index = _joined_body(fn)
        body_line = {i: ln for i, (ln, _) in enumerate(fn.body)}
        for m in re.finditer(
                r"(?:\b([\w]+)\s*(?:\.|->)\s*)?"
                r"\b(Send|SendRequest|SendResponse|RequestReply|Recv|"
                r"RecvInternal|TryRecv|RecvFor|RecvResponseFor|RecvResponse)"
                r"\s*\(", joined):
            recv_name, call = m.group(1), m.group(2)
            open_idx = m.end() - 1
            bidx = index[min(m.start(2), len(index) - 1)]
            line = body_line.get(bidx, fn.start_line)
            args = _balanced_args(joined, open_idx)
            if call in ("Send", "SendRequest", "SendResponse",
                        "RequestReply"):
                channel = _channel_of(call, recv_name)
                if channel is None:
                    continue
                ops = sorted(set(_OP_TOKEN_RE.findall(args)))
                proto.sends.append(SendSite(
                    fn, line, channel, ops, _in_regions(bidx, regions),
                    call))
                # RequestReply also waits for the reply (bounded).
                if call == "RequestReply":
                    proto.recvs.append(RecvSite(fn, line, call, recv_name,
                                                bounded=True))
            else:
                bounded = call in ("TryRecv", "RecvFor", "RecvResponseFor")
                proto.recvs.append(RecvSite(fn, line, call, recv_name,
                                            bounded))


def _scan_handler(proto, model):
    """Finds the dispatch switch: switch on a *.tag with >= 2 opcode arms."""
    for fn in model.functions:
        joined, index = _joined_body(fn)
        sw = _SWITCH_RE.search(joined)
        if not sw or not sw.group(1).endswith("tag"):
            continue
        # Case arms with opcode tokens, in order; the arm region runs to the
        # next case/default label.
        labels = []
        for m in _CASE_RE.finditer(joined):
            if m.group(1) in proto.opcodes:
                labels.append((m.start(), m.group(1)))
        if len(labels) < 2:
            continue
        default = joined.find("default")
        bounds = [p for p, _ in labels] + \
            [default if default >= 0 else len(joined)]
        body_line = {i: ln for i, (ln, _) in enumerate(fn.body)}
        for li, (pos, tok) in enumerate(labels):
            arm_text = joined[pos:bounds[li + 1]]
            callees = [c for c in re.findall(r"\b([A-Z]\w+)\s*\(", arm_text)
                       if c in model.by_name]
            decoders = set()
            for c in callees:
                for target in model.by_name[c]:
                    for _, t in target.body:
                        decoders.update(
                            re.findall(r"\bDecode(\w+)\s*\(", t))
            decoders.update(re.findall(r"\bDecode(\w+)\s*\(", arm_text))
            line = body_line.get(index[min(pos, len(index) - 1)],
                                 fn.start_line)
            proto.arms[tok] = HandlerArm(tok, line, callees,
                                         sorted(decoders))
        proto.handler = fn
        return


def _scan_encodes(proto, model):
    """Encode<Frame> calls for frames whose codec carries a resp_tag.

    The resp_tag-carrying frames are discovered from the Encode
    declarations/definitions themselves (a `resp_tag` parameter name)."""
    for fn in model.functions:
        m = re.match(r"Encode(\w+)$", fn.name)
        if m and "resp_tag" in fn.decl_text:
            proto.resp_tag_encoders.add(m.group(1))
    for fm in model.files.values():
        joined = "\n".join(fm.code)
        for m in re.finditer(
                r"\bEncode(\w+)\s*\(([^;{]*?resp_tag[^;{]*?)\)\s*;", joined):
            proto.resp_tag_encoders.add(m.group(1))

    for fn in model.functions:
        if fn.name.startswith(("Encode", "Decode")):
            continue
        regions = loop_regions(fn)
        joined, index = _joined_body(fn)
        body_line = {i: ln for i, (ln, _) in enumerate(fn.body)}
        # lvalues assigned from AllocRespTag() anywhere in this function —
        # normalized to their last path component (f.tag -> tag).
        dynamic = set()
        for am in _ALLOC_TAG_RE.finditer(joined):
            lhs = am.group(1)
            dynamic.add(re.split(r"\.|->", lhs)[-1])
        for m in re.finditer(r"\bEncode(\w+)\s*\(", joined):
            frame = m.group(1)
            if frame not in proto.resp_tag_encoders:
                continue
            args = _balanced_args(joined, m.end() - 1)
            # resp_tag is the 2nd parameter of every resp-tag codec.
            parts = _split_args(args)
            tag_text = parts[1].strip() if len(parts) > 1 else ""
            if "AllocRespTag" in tag_text:
                source = "dynamic"
            elif _TAG_TOKEN_RE.search(tag_text):
                source = "fixed"
            else:
                idents = re.findall(r"\w+", tag_text)
                source = ("dynamic"
                          if any(i in dynamic for i in idents) else "unknown")
            bidx = index[min(m.start(), len(index) - 1)]
            # "Reachable from a retry path": the encode's tag is re-sent by
            # any retry loop in the same function, or the function sends
            # inside a loop at all.
            retried = _in_regions(bidx, regions) or any(
                s.fn is fn and s.in_retry and s.channel == "request"
                for s in proto.sends)
            proto.encode_calls.append(EncodeCall(
                fn, body_line.get(bidx, fn.start_line), frame, source,
                tag_text, retried))


def _split_args(args):
    # `->` would unbalance the <> depth tracking (the `>` has no opener);
    # the arrow is just a member access here, so flatten it to `.`.
    args = args.replace("->", ".")
    out = []
    depth = 0
    cur = []
    for c in args:
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth -= 1
        if c == "," and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    out.append("".join(cur))
    return out


def _scan_collectives(proto, model):
    for fn in model.functions:
        if fn.relpath in COMM_MODULE_FILES:
            continue
        sites = []
        for lineno, name, kind, recv in fn.calls_ex():
            if name in COLLECTIVE_PLAIN_NAMES:
                sites.append((lineno, name))
            elif name in COLLECTIVE_COMM_NAMES and \
                    recv and "comm" in recv.lower():
                sites.append((lineno, name))
        if sites:
            proto.collectives[fn.qualname] = sites


_LAYOUT_LINE_RE = re.compile(r"^\s*\[")


def _scan_frame_layouts(proto, model):
    """Reads `// [trace hdr?][u32 dbid]...` comment blocks above Encode
    declarations in the enum-bearing header."""
    fm = model.files.get(proto.enum_relpath)
    if fm is None:
        return
    joined = "\n".join(fm.code)
    for m in re.finditer(r"\bEncode(\w+)\s*\(", joined):
        frame = m.group(1)
        if frame in proto.frame_layouts:
            continue
        decl_line = joined[:m.start()].count("\n") + 1
        # The layout comment sits above the declaration, possibly separated
        # from it by helper structs/constants (GetResp, GetMultiOp).  Search
        # upward for the nearest `[...]` line, bounded by the previous
        # Encode declaration.
        start = None
        for ln in range(decl_line - 1, max(0, decl_line - 30), -1):
            if re.search(r"\bEncode\w+\s*\(", fm.code[ln - 1]):
                break
            if _LAYOUT_LINE_RE.match(fm.comments.get(ln, "")):
                start = ln
                while (start > 1 and
                       _LAYOUT_LINE_RE.match(fm.comments.get(start - 1, ""))):
                    start -= 1
                break
        if start is None:
            continue
        layout = []
        for c in range(start, decl_line):
            text = fm.comments.get(c, "")
            if _LAYOUT_LINE_RE.match(text) or (layout and
                                               text.strip().startswith(
                                                   ("count", "["))):
                layout.append(" ".join(text.split()))
            elif layout:
                break
        if layout:
            proto.frame_layouts[frame] = " ".join(layout)


# ---------------------------------------------------------------------------
# Entry point + spec emission.
# ---------------------------------------------------------------------------

def build_protocol_model(model):
    proto = ProtocolModel()
    for fm in model.files.values():
        if "WireOp" in "\n".join(fm.code):
            _parse_enums(fm, proto)
    _scan_sends_recvs(proto, model)
    _scan_handler(proto, model)
    _scan_encodes(proto, model)
    _scan_collectives(proto, model)
    _scan_frame_layouts(proto, model)
    return proto


def build_spec(proto):
    """Flattens the model into the committed PROTOCOL.json structure.
    Line-number-free: sites are (file, function) so the spec drifts only
    when the message flow changes."""
    ops = {}
    for name, (value, relpath, _) in sorted(proto.opcodes.items()):
        arm = proto.arms.get(name)
        senders = sorted({
            "%s (%s)" % (s.fn.qualname, s.fn.relpath)
            for s in proto.sends
            if s.channel == "request" and name in s.op_tokens})
        ops[name] = {
            "value": value,
            "senders": senders,
            "handler": {
                "dispatch": proto.handler.qualname if proto.handler else None,
                "callees": sorted(set(arm.callees)) if arm else [],
                "decodes": arm.decoders if arm else [],
            } if arm else None,
        }
    frames = {f: proto.frame_layouts.get(f, "")
              for f in sorted(set(proto.frame_layouts)
                              | proto.resp_tag_encoders)}
    collectives = {qn: [name for _, name in sites]
                   for qn, sites in sorted(proto.collectives.items())}
    retry_fns = sorted({
        "%s (%s)" % (s.fn.qualname, s.fn.relpath)
        for s in proto.sends if s.in_retry and s.channel == "request"})
    return {
        "version": 1,
        "opcodes": ops,
        "op_max": proto.op_max,
        "tag_spaces": {
            "fixed_resp_tags": {
                n: v[0] for n, v in sorted(proto.resp_tags.items())},
            "dynamic_resp_tag_base": proto.dynamic_base,
        },
        "frames": frames,
        "retry_paths": retry_fns,
        "collectives": collectives,
    }


def canonical_json(spec):
    return json.dumps(spec, sort_keys=True, indent=2) + "\n"


def render_markdown(spec):
    """docs/PROTOCOL.md — generated; regenerate with --write-spec."""
    out = []
    w = out.append
    w("# PapyrusKV wire protocol")
    w("")
    w("<!-- GENERATED FILE — do not edit by hand.")
    w("     Regenerate with: python3 tools/analyzer/papyrus_analyze.py "
      "--write-spec -->")
    w("")
    w("Requests travel on the request communicator with `tag = opcode`; "
      "responses on the response communicator with the tag the requester "
      "wrote into the request header (see `src/core/wire.h`).")
    w("")
    w("## Tag spaces")
    w("")
    w("| space | range |")
    w("|---|---|")
    w("| opcodes | 1 .. %s |" % spec["op_max"])
    fixed = spec["tag_spaces"]["fixed_resp_tags"]
    if fixed:
        w("| fixed response tags | %s .. %s |"
          % (min(fixed.values()), max(fixed.values())))
    w("| dynamic response tags | %s .. (AllocRespTag) |"
      % spec["tag_spaces"]["dynamic_resp_tag_base"])
    w("")
    if fixed:
        w("Fixed response tags (restart-only, single-file paths):")
        w("")
        for name, value in sorted(fixed.items(), key=lambda kv: kv[1]):
            w("- `%s` = %d" % (name, value))
        w("")
    w("## Opcodes")
    w("")
    for name, info in sorted(spec["opcodes"].items(),
                             key=lambda kv: (kv[1]["value"] or 0, kv[0])):
        w("### `%s` = %s" % (name, info["value"]))
        w("")
        if info["senders"]:
            w("Senders:")
            w("")
            for s in info["senders"]:
                w("- `%s`" % s)
        else:
            w("Senders: none in-tree (legacy / mixed-version only).")
        w("")
        h = info["handler"]
        if h:
            w("Dispatch: `%s` -> %s" % (
                h["dispatch"],
                ", ".join("`%s`" % c for c in h["callees"]) or "(inline)"))
            if h["decodes"]:
                w("")
                w("Decodes: %s" % ", ".join(
                    "`Decode%s`" % d for d in h["decodes"]))
        else:
            w("Dispatch: none (no handler arm).")
        w("")
    w("## Frame layouts")
    w("")
    for frame, layout in sorted(spec["frames"].items()):
        w("- `%s`: `%s`" % (frame, layout or "(opaque)"))
    w("")
    w("## Retry paths (request senders inside bounded retry loops)")
    w("")
    for fn in spec["retry_paths"]:
        w("- `%s`" % fn)
    w("")
    w("## Collective call sites (program order per function)")
    w("")
    for qn, names in sorted(spec["collectives"].items()):
        w("- `%s`: %s" % (qn, " -> ".join(names)))
    w("")
    w("## Flow")
    w("")
    w("```")
    w("app/dispatcher/pipeline          owner rank")
    w("        |  req_comm tag=kOp*        |")
    w("        |-------------------------->| HandlerLoop switch(tag)")
    w("        |                           |   -> Handle* -> Decode*")
    w("        |  resp_comm tag=resp_tag   |")
    w("        |<--------------------------| SendResponse(Encode*)")
    w("```")
    w("")
    return "\n".join(out)
