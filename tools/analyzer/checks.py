"""checks — the five papyrus_analyze semantic rules.

Each check takes the Model from cxx_model (optionally refined by
clang_frontend) and yields Violation objects.  Every rule has a per-line
escape comment `// analyze:allow-<rule>[: reason]`, honored on the
violating line or the immediately preceding pure-comment line.

Rules:
  guarded-by         A member field directly written while a *sibling*
                     papyrus::Mutex/SharedMutex is held must carry
                     GUARDED_BY/PT_GUARDED_BY.  Clang TSA only checks
                     fields that are annotated; this closes the
                     annotation-gap blind spot.  Atomic fields are exempt
                     (self-synchronizing); only direct writes (=, op=,
                     ++/--) are considered, so false positives stay near
                     zero at the cost of missing container mutations.
  status-discard     (a) `(void)` discards and (b) `.IgnoreError()` calls
                     need a why-comment on the same or previous line (the
                     core/papyruskv.h mandate); (c) a bare expression
                     statement calling a function that every known
                     declaration says returns Status is a silent drop.
  codec-symmetry     Every EncodeX/DecodeX pair in one file must append/
                     consume the same field sequence in the same order
                     (loops compared as groups), and every decoded count
                     that flows into reserve()/resize() must pass through
                     ReserveBound (the fuzz-found bad_alloc class).
  pipeline-blocking  Call-graph reachability: no blocking call (Recv,
                     any Barrier, Drain, Wait, ...) may be reachable from
                     AsyncPipeline::ProcessCycle — the pipeline thread
                     must never block on collectives or its own fence.
                     The same walk also covers the timeline sampler tick
                     (TimelineSampler::SampleOnce) with a stricter ban:
                     no lock acquisition at all — no raw Lock/ReaderLock,
                     no RAII lock guards, and no registry lookups
                     (GetCounter/GetGauge/GetHistogram take the registry
                     mutex; resolve pointers at Configure time instead).
  wire-version       A diff that edits the body of a versioned wire-frame
                     codec must also touch the version byte or the
                     byte-pin tests (run with --diff-base/--diff-file).
"""

import re

# ---------------------------------------------------------------------------
# Repo-specific configuration (fixture self-tests override via parameters).
# ---------------------------------------------------------------------------

# Roots of the pipeline-blocking reachability walk.
PIPELINE_ROOTS = ("ProcessCycle",)

# Call names that block (or deadlock) when reached from the pipeline
# thread: unbounded receives, every barrier flavor (bounded or not — a
# collective from the pipeline thread deadlocks the rank), the pipeline's
# own completion fence, and completion-handle waits.
BLOCKING_CALLS = frozenset({
    "Recv", "RecvInternal", "RecvResponse",
    "Barrier", "BarrierFor", "CollectiveBarrier", "RestartBarrier",
    "SignalWait", "WaitEvent", "WaitAsyncOp", "Wait",
    "WaitMigrationsDrained", "WaitFlushesDrained",
    "Drain", "Fence",
})

# Roots of the sampler-tick reachability walk.  The timeline sampler's
# tick runs at a fixed cadence on a thread the store never waits for, so
# it must stay lock-free end to end: everything in BLOCKING_CALLS is
# banned, and so is anything that merely *takes a lock* — a tick stalled
# behind a writer skews every window after it.
SAMPLER_ROOTS = ("SampleOnce",)

# Lock-taking calls banned on the sampling path (in addition to
# BLOCKING_CALLS): raw mutex acquisition, the registry-wide snapshot, and
# the registry lookups (GetCounter/GetGauge/GetHistogram take the registry
# mutex — sampler code must resolve metric pointers once at Configure time
# and read the cached atomics from the tick).
LOCKING_CALLS = frozenset({
    "Lock", "ReaderLock", "TakeSnapshot",
    "GetCounter", "GetGauge", "GetHistogram",
})

# Files whose change "proves version awareness" for wire-version, plus the
# token that marks the version byte itself.
WIRE_GUARD_FILES = ("src/core/wire.h", "tests/async/batch_wire_test.cc")
WIRE_VERSION_TOKEN = "kBatchVersion"


class Violation:
    def __init__(self, rule, relpath, line, token, msg):
        self.rule = rule
        self.relpath = relpath
        self.line = line
        self.token = token   # stable identity for baseline matching
        self.msg = msg

    @property
    def key(self):
        return "%s|%s|%s" % (self.rule, self.relpath, self.token)

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.relpath, self.line, self.rule,
                                   self.msg)


# ---------------------------------------------------------------------------
# Rule 1: guarded-by completeness.
# ---------------------------------------------------------------------------

_RAII_LOCK_RE = re.compile(
    r"\b(?:MutexLock|WriterMutexLock|ReaderMutexLock)\s+\w+\s*"
    r"[({]\s*&\s*([\w.\->]+)\s*[)}]")
_MANUAL_LOCK_RE = re.compile(r"\b([\w]+)\s*(?:\.|->)\s*(?:Reader)?Lock\s*\(")
_MANUAL_UNLOCK_RE = re.compile(
    r"\b([\w]+)\s*(?:\.|->)\s*(?:Reader)?Unlock\s*\(")
_WRITE_RE = re.compile(
    r"(?:^|[^\w.>:&])(\w+_)\s*"
    r"(?:=(?![=])|\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=|\+\+|--)")
_INC_PRE_RE = re.compile(r"(?:\+\+|--)\s*(\w+_)\b")


def _member_name(expr):
    """`&shard.mu` -> mu (non-sibling; filtered by class membership),
    `&mu_` -> mu_, `&obj->m_` -> m_."""
    return re.split(r"\.|->", expr)[-1]


def check_guarded_by(model):
    out = []
    for fn in model.functions:
        cls = model.classes.get(fn.class_name) if fn.class_name else None
        if cls is None or not cls.mutexes:
            continue
        fm = model.files[fn.relpath]
        annots = cls.method_annots.get(fn.name, {})
        # Mutexes held at entry: REQUIRES(...) and RELEASE(...) (a RELEASE
        # function enters with the lock held and drops it itself).
        entry_held = {m for m in annots.get("requires", [])
                      if m in cls.mutexes}
        entry_held |= {m for m in annots.get("release", [])
                       if m in cls.mutexes}

        # Per-line held-set computation over the body.
        n = len(fn.body)
        held_at = [set() for _ in range(n)]
        manual = dict.fromkeys(entry_held, 0)  # mutex -> acquire line idx
        raii = []  # (mutex, start_idx, end_idx)
        for i, (lineno, text) in enumerate(fn.body):
            for m in _RAII_LOCK_RE.finditer(text):
                mu = _member_name(m.group(1))
                if mu in cls.mutexes:
                    # Scope: until depth drops below this line's depth.
                    d = fn.depth[i]
                    end = n - 1
                    for j in range(i + 1, n):
                        if fn.depth[j] < d:
                            end = j - 1
                            break
                    raii.append((mu, i, end))
            for m in _MANUAL_LOCK_RE.finditer(text):
                mu = m.group(1)
                if mu in cls.mutexes:
                    manual[mu] = i
            for m in _MANUAL_UNLOCK_RE.finditer(text):
                mu = m.group(1)
                if mu in manual:
                    for j in range(manual[mu], i + 1):
                        held_at[j].add(mu)
                    del manual[mu]
        for mu, start in manual.items():
            for j in range(start, n):
                held_at[j].add(mu)
        for mu, start, end in raii:
            for j in range(start, end + 1):
                held_at[j].add(mu)

        for i, (lineno, text) in enumerate(fn.body):
            if not held_at[i]:
                continue
            targets = {m.group(1) for m in _WRITE_RE.finditer(text)}
            targets |= {m.group(1) for m in _INC_PRE_RE.finditer(text)}
            for name in sorted(targets):
                field = cls.fields.get(name)
                if field is None or name in cls.mutexes:
                    continue
                if field.annotated or field.is_atomic:
                    continue
                if fm.escape(lineno, "guarded-by"):
                    continue
                decl_fm = model.files.get(cls.relpath)
                if decl_fm and decl_fm.escape(field.line, "guarded-by"):
                    continue
                out.append(Violation(
                    "guarded-by", fn.relpath, lineno,
                    "%s.%s" % (cls.name, name),
                    "field '%s' written in %s while %s held but its "
                    "declaration (%s:%d) has no GUARDED_BY — TSA cannot "
                    "check what is not annotated" %
                    (name, fn.qualname, "/".join(sorted(held_at[i])),
                     cls.relpath, field.line)))
    return out


# ---------------------------------------------------------------------------
# Rule 2: status discards.
# ---------------------------------------------------------------------------

_VOID_CAST_RE = re.compile(r"\(\s*void\s*\)\s*[\w(]")
_IGNORE_ERROR_RE = re.compile(r"(?:\.|->)\s*IgnoreError\s*\(")
_BARE_CALL_RE = re.compile(
    r"^\s*(?:[\w:]+(?:\.|->))?(\w+)\s*\(.*\)\s*;\s*$")


def check_status_discard(model):
    out = []
    for relpath, fm in sorted(model.files.items()):
        for idx, text in enumerate(fm.code):
            lineno = idx + 1
            if _VOID_CAST_RE.search(text):
                if not fm.has_comment(lineno) and \
                        not fm.escape(lineno, "status-discard"):
                    out.append(Violation(
                        "status-discard", relpath, lineno,
                        "void-cast@%d" % lineno,
                        "(void) discard without a why-comment — "
                        "core/papyruskv.h mandates \"cast to (void) only "
                        "with a comment saying why\""))
            if _IGNORE_ERROR_RE.search(text):
                if not fm.has_comment(lineno) and \
                        not fm.escape(lineno, "status-discard"):
                    out.append(Violation(
                        "status-discard", relpath, lineno,
                        "ignore-error@%d" % lineno,
                        ".IgnoreError() without a why-comment — say what "
                        "makes this drop safe (or handle/log the failure)"))
            # Lines already using (void)/IgnoreError are covered by the
            # two subrules above — don't double-flag them as bare drops.
            if _VOID_CAST_RE.search(text) or _IGNORE_ERROR_RE.search(text):
                continue
            m = _BARE_CALL_RE.match(text)
            if m and m.group(1) in model.status_fn_names:
                if not fm.escape(lineno, "status-discard"):
                    out.append(Violation(
                        "status-discard", relpath, lineno,
                        "dropped-call:%s@%d" % (m.group(1), lineno),
                        "result of Status-returning '%s' is silently "
                        "discarded — handle it, or (void)/IgnoreError it "
                        "with a why-comment" % m.group(1)))
    return out


# ---------------------------------------------------------------------------
# Rule 3: codec symmetry.
# ---------------------------------------------------------------------------

_ENC_OPS = (
    (re.compile(r"\bPutTraceCtx\s*\("), "trace"),
    (re.compile(r"\bout\s*[.\-]>?\s*push_back\s*\([^;)]*[Vv]ersion"), "ver"),
    (re.compile(r"\bPutFixed32\s*\("), "u32"),
    (re.compile(r"\bPutFixed64\s*\("), "u64"),
    (re.compile(r"\bPutLengthPrefixed\s*\("), "lp"),
    (re.compile(r"\bout\s*\.\s*push_back\s*\("), "u8"),
)
_DEC_OPS = (
    (re.compile(r"\bGetTraceCtx\s*\("), "trace"),
    (re.compile(r"\bGetBatchVersion\s*\("), "ver"),
    (re.compile(r"\bGetFixed32\s*\("), "u32"),
    (re.compile(r"\bGetFixed64\s*\("), "u64"),
    (re.compile(r"\bGetLengthPrefixed\s*\("), "lp"),
    (re.compile(r"\bremove_prefix\s*\(\s*(\d+)\s*\)"), "u8xN"),
)
_LOOP_RE = re.compile(r"^\s*(?:for|while)\s*\(")
_DECODED_VAR_RE = re.compile(
    r"\bGet(?:Fixed32|Fixed64|Varint32|Varint64)\s*\(\s*&?\w+\s*,\s*&(\w+)\s*\)")
_RESERVE_RE = re.compile(r"(?:\.|->)\s*(reserve|resize)\s*\(([^;]*)\)")


def _codec_sequence(fn, ops, is_decode):
    """Flattened op list; ops inside a loop body become one ('rep', [...])
    group.  A single-line `for (...) Op(...);` counts as a loop too."""
    seq = []
    n = len(fn.body)
    loop_end = -1  # body index until which we are inside a loop
    group = None
    for i, (lineno, text) in enumerate(fn.body):
        in_loop = i <= loop_end
        if _LOOP_RE.match(text) and i > loop_end:
            d = fn.depth[i]
            end = i
            for j in range(i + 1, n):
                if fn.depth[j] <= d and not fn.body[j][1].strip() == "":
                    # Loop body ends when depth returns to the loop line's
                    # depth (the closing brace line) — or same-line loop.
                    if fn.depth[j] <= d:
                        end = j - 1
                        break
            else:
                end = n - 1
            if end < i:
                end = i
            # Braceless single-line loop: ops sit on the loop line itself.
            loop_end = max(end, i)
            group = []
            seq.append(("rep", group))
            in_loop = True
        line_ops = []
        for rx, kind in ops:
            for m in rx.finditer(text):
                if kind == "ver" and not is_decode:
                    pass
                if kind == "u8xN":
                    line_ops.append((m.start(), ["u8"] * int(m.group(1))))
                elif kind == "u8" and "ersion" in text:
                    # the version byte push_back is matched by the "ver"
                    # pattern; don't double-count it as a raw byte
                    if re.search(r"push_back\s*\([^;)]*[Vv]ersion", text):
                        continue
                    line_ops.append((m.start(), [kind]))
                else:
                    line_ops.append((m.start(), [kind]))
        line_ops.sort(key=lambda p: p[0])
        flat = [k for _, kinds in line_ops for k in kinds]
        if in_loop and group is not None:
            group.extend(flat)
        else:
            seq.extend(flat)
        if i > loop_end:
            group = None
    return seq


def _seq_str(seq):
    parts = []
    for item in seq:
        if isinstance(item, tuple) and item[0] == "rep":
            parts.append("N*[%s]" % " ".join(item[1]))
        else:
            parts.append(item)
    return " ".join(parts) if parts else "(empty)"


def check_codec_symmetry(model):
    out = []
    # Pair Encode<X>/Decode<X> per file.
    by_file = {}
    for fn in model.functions:
        m = re.match(r"(Encode|Decode)(\w+)$", fn.name)
        if m and fn.class_name is None:
            by_file.setdefault(fn.relpath, {}).setdefault(
                m.group(2), {})[m.group(1)] = fn
    for relpath, pairs in sorted(by_file.items()):
        fm = model.files[relpath]
        for what, sides in sorted(pairs.items()):
            enc, dec = sides.get("Encode"), sides.get("Decode")
            if enc is None or dec is None:
                continue
            if fm.escape(enc.start_line, "codec-symmetry") or \
                    fm.escape(dec.start_line, "codec-symmetry"):
                continue
            eseq = _codec_sequence(enc, _ENC_OPS, is_decode=False)
            dseq = _codec_sequence(dec, _DEC_OPS, is_decode=True)
            if _normalize(eseq) != _normalize(dseq):
                out.append(Violation(
                    "codec-symmetry", relpath, dec.start_line,
                    "pair:%s" % what,
                    "Encode%s appends [%s] but Decode%s consumes [%s] — "
                    "the wire sequences must match field-for-field" %
                    (what, _seq_str(eseq), what, _seq_str(dseq))))
    # Reserve-cap subrule: decoded counts must be capped before
    # pre-allocation.
    for fn in model.functions:
        if not fn.name.startswith("Decode"):
            continue
        fm = model.files[fn.relpath]
        decoded = set()
        for lineno, text in fn.body:
            for m in _DECODED_VAR_RE.finditer(text):
                decoded.add(m.group(1))
            for m in _RESERVE_RE.finditer(text):
                arg = m.group(2)
                used = {w for w in re.findall(r"\w+", arg) if w in decoded}
                if used and "ReserveBound" not in arg:
                    if fm.escape(lineno, "codec-symmetry"):
                        continue
                    out.append(Violation(
                        "codec-symmetry", fn.relpath, lineno,
                        "uncapped:%s:%s" % (fn.name, "/".join(sorted(used))),
                        "%s(%s) pre-allocates from untrusted decoded count "
                        "'%s' without a ReserveBound cap — a lying count "
                        "throws bad_alloc before the element loop can "
                        "reject it" % (m.group(1), arg.strip(),
                                       "/".join(sorted(used)))))
    return out


def _normalize(seq):
    """Collapses consecutive plain ops and rep groups to comparable form."""
    out = []
    for item in seq:
        if isinstance(item, tuple):
            out.append(("rep", tuple(item[1])))
        else:
            out.append(item)
    return out


# ---------------------------------------------------------------------------
# Rule 4: pipeline blocking.
# ---------------------------------------------------------------------------

def _field_type_class(model, cls, recv):
    """Class name a member-field receiver resolves to, if the field's
    declaration text mentions a modeled class (covers T, T*, unique_ptr<T>,
    shared_ptr<T>)."""
    field = cls.fields.get(recv) if cls else None
    if field is None:
        return None
    for w in re.findall(r"[A-Za-z_]\w*", field.decl_text):
        if w != field.name and w in model.classes:
            return w
    return None


def _resolve_edges(model, fn, name, kind, recv):
    """Call-graph targets for one call site.  Receiver-aware to keep
    collision edges (every `x.count()` linking to some class's count())
    out of the reachability walk:
      - repo convention: traversed functions are PascalCase (lowercase
        names are accessors/std calls — never part of the blocking graph)
      - scope calls resolve within the named class
      - member calls resolve through the receiver field's declared type
      - plain calls resolve to the caller's own class and free functions
      - computed/untypeable receivers resolve only when the name has
        exactly one definition repo-wide (unambiguous)."""
    if not name[0].isupper():
        return ()
    cands = model.by_name.get(name, ())
    if not cands:
        return ()
    if kind == "scope":
        return [t for t in cands if t.class_name == recv]
    if kind == "member":
        tc = _field_type_class(
            model, model.classes.get(fn.class_name) if fn.class_name
            else None, recv)
        if tc is not None:
            return [t for t in cands if t.class_name == tc]
        return cands if len(cands) == 1 else ()
    if kind == "plain":
        return [t for t in cands
                if t.class_name == fn.class_name or t.class_name is None]
    return cands if len(cands) == 1 else ()  # unknown receiver


def check_pipeline_blocking(model, roots=PIPELINE_ROOTS,
                            blocking=BLOCKING_CALLS,
                            sampler_roots=SAMPLER_ROOTS,
                            locking=LOCKING_CALLS):
    out = []
    # Two walks under one rule: the pipeline thread must never *block*;
    # the sampler tick additionally must never *take a lock* (a tick
    # stalled behind a writer skews every window after it), so its walk
    # also bans LOCKING_CALLS and flags RAII lock guards in any reached
    # body.
    walks = [(roots, blocking, "pipeline thread", False),
             (sampler_roots, blocking | locking, "sampler tick", True)]
    for walk_roots, banned, who, scan_raii in walks:
        root_fns = [fn for fn in model.functions if fn.name in walk_roots]
        for root in root_fns:
            seen = set()
            # stack entries: (fn, chain) where chain is the qualname path
            stack = [(root, (root.qualname,))]
            while stack:
                fn, chain = stack.pop()
                if fn.qualname in seen:
                    continue
                seen.add(fn.qualname)
                fm = model.files[fn.relpath]
                if scan_raii:
                    for lineno, text in fn.body:
                        m = _RAII_LOCK_RE.search(text)
                        if m is None:
                            continue
                        if fm.escape(lineno, "pipeline-blocking"):
                            continue
                        out.append(Violation(
                            "pipeline-blocking", fn.relpath, lineno,
                            "%s->raii:%s" % (root.qualname, m.group(1)),
                            "RAII lock on '%s' in %s (via %s) — the %s "
                            "must stay lock-free; resolve shared state "
                            "into atomics or pointers before the tick" %
                            (m.group(1), fn.qualname, " -> ".join(chain),
                             who)))
                for lineno, callee, kind, recv in fn.calls_ex():
                    if callee in banned:
                        if fm.escape(lineno, "pipeline-blocking"):
                            continue
                        out.append(Violation(
                            "pipeline-blocking", fn.relpath, lineno,
                            "%s->%s" % (root.qualname, callee),
                            "blocking call '%s' reachable from %s via %s — "
                            "the %s must never block on receives, barriers, "
                            "fences, completion waits, or lock acquisition" %
                            (callee, root.qualname, " -> ".join(
                                chain + (callee,)), who)))
                        continue
                    for target in _resolve_edges(model, fn, callee, kind,
                                                 recv):
                        if target.qualname not in seen:
                            stack.append(
                                (target, chain + (target.qualname,)))
    return out


# ---------------------------------------------------------------------------
# Rule 5: wire-version discipline.
# ---------------------------------------------------------------------------

_HUNK_RE = re.compile(r"^@@ -\d+(?:,\d+)? \+(\d+)(?:,(\d+))? @@")


def parse_unified_diff(diff_text):
    """Returns {new_path: (set(new_line_numbers_touched),
    [changed_line_contents])}."""
    files = {}
    cur = None
    new_line = 0
    for raw in diff_text.splitlines():
        if raw.startswith("+++ "):
            path = raw[4:].strip()
            if path.startswith("b/"):
                path = path[2:]
            cur = files.setdefault(path, (set(), []))
            continue
        if cur is None:
            continue
        m = _HUNK_RE.match(raw)
        if m:
            new_line = int(m.group(1))
            continue
        if raw.startswith("+") and not raw.startswith("+++"):
            cur[0].add(new_line)
            cur[1].append(raw[1:])
            new_line += 1
        elif raw.startswith("-") and not raw.startswith("---"):
            # Deletion: the surrounding new-file position is touched.
            cur[0].add(new_line)
            cur[1].append(raw[1:])
        elif not raw.startswith("\\"):
            new_line += 1
    return files


def check_wire_version(model, diff_text, guard_files=WIRE_GUARD_FILES,
                       version_token=WIRE_VERSION_TOKEN):
    out = []
    if not diff_text:
        return out
    touched = parse_unified_diff(diff_text)
    # Version-aware edits: a guard file changed, or any changed line
    # mentions the version token, or an explicit escape rides the diff.
    aware = any(g in touched for g in guard_files)
    for _, (_, contents) in touched.items():
        for line in contents:
            if version_token in line or "analyze:allow-wire-version" in line:
                aware = True
    if aware:
        return out
    # Versioned codec bodies: functions that consume/emit the version byte.
    for fn in model.functions:
        if fn.relpath not in touched:
            continue
        body_text = " ".join(t for _, t in fn.body)
        if version_token not in body_text and \
                "GetBatchVersion" not in body_text:
            continue
        lines, _ = touched[fn.relpath]
        hit = sorted(ln for ln in lines
                     if fn.start_line <= ln <= fn.end_line)
        if hit:
            out.append(Violation(
                "wire-version", fn.relpath, hit[0],
                "versioned:%s" % fn.name,
                "diff edits versioned frame codec %s (line %d) without "
                "touching %s or the byte-pin tests (%s) — bump the "
                "version byte or re-pin the bytes" %
                (fn.name, hit[0], version_token,
                 ", ".join(guard_files))))
    return out


ALL_CHECKS = ("guarded-by", "status-discard", "codec-symmetry",
              "pipeline-blocking", "wire-version")


def run_all(model, diff_text=None):
    out = []
    out.extend(check_guarded_by(model))
    out.extend(check_status_discard(model))
    out.extend(check_codec_symmetry(model))
    out.extend(check_pipeline_blocking(model))
    out.extend(check_wire_version(model, diff_text))
    return out
