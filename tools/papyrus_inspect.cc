// papyrus_inspect — offline inspection of a PapyrusKV rank directory.
//
//   papyrus_inspect <rank dir>               # catalog: live SSTables
//   papyrus_inspect <rank dir> --ssid=N      # dump one table's records
//   papyrus_inspect <rank dir> --verify      # CRC-check every record
//   papyrus_inspect --stats <stats.json>     # render a PAPYRUSKV_STATS dump
//   papyrus_inspect --trace-merge <trace.json> [out.json]
//                                            # merge per-rank traces
//   papyrus_inspect --timeline <timeline.json> [--flight=..] [--out=..]
//                                            # merge per-rank time series
//
// Works on any directory produced by the library (a repository's
// <group>/<db>/rank<k>, or a checkpoint's rank<k> snapshot directory) —
// the same recovery scan the zero-copy reopen uses.  --stats reads the
// JSON a run wrote when PAPYRUSKV_STATS=path was set (per-rank or the
// rank-0 aggregate) and prints it as tables.  --trace-merge takes the
// PAPYRUSKV_TRACE base path, merges every trace.rank<k>.json into one
// Perfetto-loadable timeline (all ranks share one steady clock, so events
// concatenate without rebasing), and prints a per-op critical-path table
// built from the trace/span/parent ids each span carries.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/timeline.h"
#include "sim/storage.h"
#include "store/format.h"
#include "store/manifest.h"
#include "store/sstable.h"

using namespace papyrus;

namespace {

// Renders bytes printably; non-ASCII as \xNN, truncated with an ellipsis.
std::string Printable(const std::string& s, size_t limit = 48) {
  std::string out;
  for (size_t i = 0; i < s.size() && out.size() < limit; ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c >= 0x20 && c < 0x7f) {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[8];
      snprintf(buf, sizeof(buf), "\\x%02x", c);
      out += buf;
    }
  }
  if (out.size() >= limit) out += "…";
  return out;
}

int Catalog(store::Manifest& manifest) {
  const auto live = manifest.LiveSsids();
  printf("%zu live SSTable(s), latest SSID %llu\n", live.size(),
         static_cast<unsigned long long>(manifest.LatestSsid()));
  printf("%8s  %10s  %12s  %12s\n", "SSID", "records", "SSData B",
         "SSIndex B");
  for (uint64_t ssid : live) {
    store::SSTablePtr reader;
    Status s = manifest.GetReader(ssid, &reader);
    // Missing/unreadable files report as size 0 in the listing.
    uint64_t data_size = 0, index_size = 0;
    sim::Storage::GetFileSize(
        manifest.dir() + "/" + store::SsDataName(ssid), &data_size)
        .IgnoreError();
    sim::Storage::GetFileSize(
        manifest.dir() + "/" + store::SsIndexName(ssid), &index_size)
        .IgnoreError();
    if (s.ok()) {
      printf("%8llu  %10zu  %12llu  %12llu\n",
             static_cast<unsigned long long>(ssid), reader->count(),
             static_cast<unsigned long long>(data_size),
             static_cast<unsigned long long>(index_size));
    } else {
      printf("%8llu  <unreadable: %s>\n",
             static_cast<unsigned long long>(ssid), s.ToString().c_str());
    }
  }
  return 0;
}

int Dump(store::Manifest& manifest, uint64_t ssid) {
  store::SSTablePtr reader;
  Status s = manifest.GetReader(ssid, &reader);
  if (!s.ok()) {
    fprintf(stderr, "cannot open ssid %llu: %s\n",
            static_cast<unsigned long long>(ssid), s.ToString().c_str());
    return 1;
  }
  printf("SSTable %llu: %zu records\n",
         static_cast<unsigned long long>(ssid), reader->count());
  for (size_t i = 0; i < reader->count(); ++i) {
    std::string key, value;
    uint8_t flags = 0;
    s = reader->ReadEntry(i, &key, &value, &flags);
    if (!s.ok()) {
      printf("%6zu  <error: %s>\n", i, s.ToString().c_str());
      continue;
    }
    printf("%6zu  %s%s = [%zu B] %s\n", i, Printable(key).c_str(),
           (flags & store::kFlagTombstone) ? " (TOMBSTONE)" : "",
           value.size(), Printable(value).c_str());
  }
  return 0;
}

int Verify(store::Manifest& manifest) {
  int bad = 0;
  uint64_t records = 0;
  for (uint64_t ssid : manifest.LiveSsids()) {
    store::SSTablePtr reader;
    Status s = manifest.GetReader(ssid, &reader);
    if (!s.ok()) {
      printf("ssid %llu: OPEN FAILED: %s\n",
             static_cast<unsigned long long>(ssid), s.ToString().c_str());
      ++bad;
      continue;
    }
    std::string prev_key;
    for (size_t i = 0; i < reader->count(); ++i) {
      std::string key, value;
      s = reader->ReadEntry(i, &key, &value, nullptr);
      if (!s.ok()) {
        printf("ssid %llu record %zu: %s\n",
               static_cast<unsigned long long>(ssid), i,
               s.ToString().c_str());
        ++bad;
        continue;
      }
      if (i > 0 && key <= prev_key) {
        printf("ssid %llu record %zu: SORT ORDER VIOLATION\n",
               static_cast<unsigned long long>(ssid), i);
        ++bad;
      }
      prev_key = std::move(key);
      ++records;
    }
  }
  printf("verified %llu record(s), %d problem(s)\n",
         static_cast<unsigned long long>(records), bad);
  return bad == 0 ? 0 : 1;
}

int ShowStats(const std::string& path) {
  std::string text;
  // Stats dumps are host-side files (written with plain stdio), but
  // ReadFileToString works on any readable path.
  Status s = sim::Storage::ReadFileToString(path, &text);
  if (!s.ok()) {
    fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
            s.ToString().c_str());
    return 1;
  }
  obs::Snapshot snap;
  obs::StatsMeta meta;
  if (!obs::ParseStatsJson(text, &snap, &meta)) {
    fprintf(stderr, "%s is not a PapyrusKV stats-v1 dump\n", path.c_str());
    return 1;
  }
  if (meta.aggregated) {
    printf("aggregated stats over %d rank(s)\n", meta.nranks);
  } else {
    printf("stats for rank %d of %d\n", meta.rank, meta.nranks);
  }
  if (!snap.histograms.empty()) {
    // Percentiles re-derived from the parsed log2 buckets (not the dump's
    // precomputed fields), so aggregated dumps get the same treatment; the
    // p99.9/max tail columns are where transients hide.
    printf("\n%-34s %10s %10s %10s %10s %10s %10s %12s\n", "histogram (us)",
           "count", "mean", "p50", "p95", "p99", "p99.9", "max");
    for (const auto& [name, h] : snap.histograms) {
      printf("%-34s %10llu %10.1f %10.1f %10.1f %10.1f %10.1f %12llu\n",
             name.c_str(), static_cast<unsigned long long>(h.count), h.Mean(),
             h.Percentile(50), h.Percentile(95), h.Percentile(99),
             h.Percentile(99.9), static_cast<unsigned long long>(h.max));
    }
  }
  if (!snap.counters.empty()) {
    printf("\n%-42s %16s\n", "counter", "value");
    for (const auto& [name, v] : snap.counters) {
      printf("%-42s %16llu\n", name.c_str(),
             static_cast<unsigned long long>(v));
    }
  }
  if (!snap.gauges.empty()) {
    printf("\n%-42s %16s\n", "gauge", "value");
    for (const auto& [name, v] : snap.gauges) {
      printf("%-42s %16lld\n", name.c_str(), static_cast<long long>(v));
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --trace-merge
// ---------------------------------------------------------------------------

// One X span pulled out of a per-rank trace file, keyed by the causal ids
// the runtime wrote into its args.
struct MergedSpan {
  std::string name;
  int rank = 0;
  uint64_t ts = 0;
  uint64_t dur = 0;
  std::string span;    // "0x..." ids, compared as strings ("0x0" = none)
  std::string parent;
};

std::string ArgId(const obs::JsonValue& ev, const char* key) {
  const obs::JsonValue* args = ev.Find("args");
  if (!args) return "0x0";
  const obs::JsonValue* id = args->Find(key);
  return id && !id->str.empty() ? id->str : "0x0";
}

// Inserts ".merged" before the extension: trace.json → trace.merged.json.
std::string DefaultMergedPath(const std::string& base) {
  const size_t dot = base.find_last_of('.');
  const size_t slash = base.find_last_of('/');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return base + ".merged.json";
  return base.substr(0, dot) + ".merged" + base.substr(dot);
}

// Mean-of-column helper for the critical-path table.
struct OpStats {
  uint64_t count = 0;
  double total = 0, queue = 0, service = 0, search = 0;
};

int TraceMerge(const std::string& base, const std::string& out_path) {
  // Collect every per-rank file the run produced (rank files are dense
  // from 0, so the first gap ends the scan).
  std::vector<std::string> texts;
  std::vector<int> ranks;
  for (int r = 0;; ++r) {
    const std::string path = obs::StatsPathForRank(base, r);
    if (!sim::Storage::FileExists(path)) break;
    std::string text;
    Status s = sim::Storage::ReadFileToString(path, &text);
    if (!s.ok()) {
      fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
              s.ToString().c_str());
      return 1;
    }
    texts.push_back(std::move(text));
    ranks.push_back(r);
  }
  if (texts.empty()) {
    fprintf(stderr, "no per-rank traces found for %s (expected %s, ...)\n",
            base.c_str(), obs::StatsPathForRank(base, 0).c_str());
    return 1;
  }

  // Merge by splicing each file's traceEvents array verbatim — every event
  // already carries its rank as pid and absolute timestamps.
  std::string merged = "{\"traceEvents\": [";
  bool first = true;
  for (const std::string& text : texts) {
    const size_t lb = text.find('[');
    const size_t rb = text.rfind(']');
    if (lb == std::string::npos || rb == std::string::npos || rb <= lb) {
      fprintf(stderr, "malformed trace file (rank %d)\n",
              ranks[&text - texts.data()]);
      return 1;
    }
    std::string inner = text.substr(lb + 1, rb - lb - 1);
    // Trim whitespace so empty arrays contribute nothing.
    const size_t b = inner.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) continue;
    inner = inner.substr(b, inner.find_last_not_of(" \t\r\n") - b + 1);
    if (!first) merged += ",\n";
    first = false;
    merged += inner;
  }
  merged += "\n]}\n";
  FILE* f = fopen(out_path.c_str(), "w");
  if (!f) {
    fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  const size_t n = fwrite(merged.data(), 1, merged.size(), f);
  fclose(f);
  if (n != merged.size()) {
    fprintf(stderr, "short write to %s\n", out_path.c_str());
    return 1;
  }

  // Critical-path analysis: index every span by id, then walk the caller
  // RPC spans (*.rpc) to their owner-side service span (parent == rpc id)
  // and its queue.wait / search.* children.
  std::vector<MergedSpan> spans;
  for (size_t i = 0; i < texts.size(); ++i) {
    obs::JsonValue v;
    if (!obs::ParseJson(texts[i], &v)) {
      fprintf(stderr, "cannot parse trace file for rank %d\n", ranks[i]);
      return 1;
    }
    const obs::JsonValue* events = v.Find("traceEvents");
    if (!events) continue;
    for (const obs::JsonValue& ev : events->array) {
      const obs::JsonValue* ph = ev.Find("ph");
      if (!ph || ph->str != "X") continue;
      MergedSpan s;
      s.name = ev.Find("name")->str;
      s.rank = ranks[i];
      s.ts = static_cast<uint64_t>(ev.Find("ts")->number);
      s.dur = static_cast<uint64_t>(ev.Find("dur")->number);
      s.span = ArgId(ev, "span");
      s.parent = ArgId(ev, "parent");
      spans.push_back(std::move(s));
    }
  }
  // children[parent span id] = indices into spans.
  std::map<std::string, std::vector<size_t>> children;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent != "0x0") children[spans[i].parent].push_back(i);
  }

  std::map<std::string, OpStats> per_op;
  for (const MergedSpan& rpc : spans) {
    const size_t suffix = rpc.name.rfind(".rpc");
    if (suffix == std::string::npos ||
        suffix + 4 != rpc.name.size() || rpc.span == "0x0") {
      continue;
    }
    OpStats& os = per_op[rpc.name.substr(0, suffix)];
    ++os.count;
    os.total += static_cast<double>(rpc.dur);
    auto it = children.find(rpc.span);
    if (it == children.end()) continue;
    for (size_t ci : it->second) {
      const MergedSpan& svc = spans[ci];
      if (svc.name.rfind("handle.", 0) != 0) continue;
      os.service += static_cast<double>(svc.dur);
      auto grand = children.find(svc.span);
      if (grand == children.end()) continue;
      for (size_t gi : grand->second) {
        const MergedSpan& child = spans[gi];
        if (child.name == "queue.wait") {
          os.queue += static_cast<double>(child.dur);
        } else if (child.name.rfind("search.", 0) == 0) {
          os.search += static_cast<double>(child.dur);
        }
      }
    }
  }

  printf("merged %zu rank trace(s), %zu span(s) -> %s\n", texts.size(),
         spans.size(), out_path.c_str());
  if (per_op.empty()) {
    printf("no cross-rank operations recorded (all traffic was local?)\n");
    return 0;
  }
  printf("\nper-op critical path, mean us per request\n");
  printf("%-16s %8s %10s %10s %10s %10s %10s\n", "op", "count", "total",
         "queue", "service", "search", "wire+ack");
  for (const auto& [op, os] : per_op) {
    const double n_ops = static_cast<double>(os.count);
    const double wire = os.total - os.queue - os.service;
    printf("%-16s %8llu %10.1f %10.1f %10.1f %10.1f %10.1f\n", op.c_str(),
           static_cast<unsigned long long>(os.count), os.total / n_ops,
           os.queue / n_ops, os.service / n_ops, os.search / n_ops,
           wire / n_ops);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --timeline
// ---------------------------------------------------------------------------

// Flight-recorder kinds worth drawing on a throughput timeline: the state
// transitions (crash/promote/degraded/quarantine/suspect/resync) and the
// timeouts that explain a dip — not the per-op begin/end chatter.
bool OverlayKind(const std::string& kind) {
  return kind == "crash" || kind == "promote" || kind == "degraded" ||
         kind == "quarantine" || kind == "suspect" || kind == "timeout" ||
         kind == "repl_resync";
}

int TimelineMode(const std::string& base, const std::string& flight_base,
                 const std::string& out_path) {
  // Collect every per-rank timeline the run produced (rank files are dense
  // from 0, so the first gap ends the scan).
  std::vector<obs::TimelineDoc> docs;
  for (int r = 0;; ++r) {
    const std::string path = obs::StatsPathForRank(base, r);
    if (!sim::Storage::FileExists(path)) break;
    std::string text;
    Status s = sim::Storage::ReadFileToString(path, &text);
    if (!s.ok()) {
      fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
              s.ToString().c_str());
      return 1;
    }
    obs::TimelineDoc doc;
    if (!obs::ParseTimelineJson(text, &doc)) {
      fprintf(stderr, "%s is not a PapyrusKV timeline-v1 dump\n",
              path.c_str());
      return 1;
    }
    docs.push_back(std::move(doc));
  }
  if (docs.empty()) {
    fprintf(stderr,
            "no per-rank timelines found for %s (expected %s, ...)\n"
            "was the run started with PAPYRUSKV_TIMELINE_MS set?\n",
            base.c_str(), obs::StatsPathForRank(base, 0).c_str());
    return 1;
  }

  // Flight-event overlay: --flight=<base> wins, else flight.json next to
  // the timeline base (the runtime's default dump location).  Absence is
  // fine — the lanes render without annotations.
  std::string fbase = flight_base;
  if (fbase.empty()) {
    const size_t slash = base.find_last_of('/');
    fbase = (slash == std::string::npos ? std::string()
                                        : base.substr(0, slash + 1)) +
            "flight.json";
  }
  std::vector<obs::TimelineEvent> events;
  int flight_files = 0;
  for (int r = 0;; ++r) {
    const std::string path = obs::StatsPathForRank(fbase, r);
    if (!sim::Storage::FileExists(path)) break;
    std::string text;
    if (!sim::Storage::ReadFileToString(path, &text).ok()) break;
    std::vector<obs::TimelineEvent> evs;
    if (obs::ParseFlightEvents(text, &evs)) {
      ++flight_files;
      for (obs::TimelineEvent& e : evs) {
        if (OverlayKind(e.kind)) events.push_back(std::move(e));
      }
    }
  }

  const obs::MergedTimeline merged =
      obs::MergeTimelines(docs, std::move(events));
  const std::string json = obs::MergedTimelineToJson(merged);
  FILE* f = fopen(out_path.c_str(), "w");
  if (!f) {
    fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  const size_t n = fwrite(json.data(), 1, json.size(), f);
  fclose(f);
  if (n != json.size()) {
    fprintf(stderr, "short write to %s\n", out_path.c_str());
    return 1;
  }

  printf("merged %zu rank timeline(s), %d flight dump(s) -> %s\n",
         docs.size(), flight_files, out_path.c_str());
  fputs(obs::RenderTimelineTables(merged).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && strcmp(argv[1], "--stats") == 0) {
    return ShowStats(argv[2]);
  }
  if (argc >= 3 && strcmp(argv[1], "--timeline") == 0) {
    const std::string base = argv[2];
    std::string flight_base, out_path;
    for (int i = 3; i < argc; ++i) {
      if (strncmp(argv[i], "--flight=", 9) == 0) {
        flight_base = argv[i] + 9;
      } else if (strncmp(argv[i], "--out=", 6) == 0) {
        out_path = argv[i] + 6;
      } else {
        fprintf(stderr, "unknown --timeline flag: %s\n", argv[i]);
        return 2;
      }
    }
    if (out_path.empty()) out_path = DefaultMergedPath(base);
    return TimelineMode(base, flight_base, out_path);
  }
  if ((argc == 3 || argc == 4) && strcmp(argv[1], "--trace-merge") == 0) {
    const std::string base = argv[2];
    return TraceMerge(base, argc == 4 ? argv[3] : DefaultMergedPath(base));
  }
  if (argc < 2) {
    fprintf(stderr,
            "usage: %s <rank dir> [--ssid=N | --verify]\n"
            "       %s --stats <stats.json>\n"
            "       %s --trace-merge <trace.json> [out.json]\n"
            "       %s --timeline <timeline.json> [--flight=<flight.json>]"
            " [--out=<merged.json>]\n"
            "  inspects the SSTables of one rank of a PapyrusKV database,\n"
            "  renders a PAPYRUSKV_STATS metrics dump, merges the per-rank\n"
            "  PAPYRUSKV_TRACE files into one Perfetto timeline, or merges\n"
            "  the per-rank PAPYRUSKV_TIMELINE series into aligned lanes\n"
            "  with flight-recorder event overlays\n",
            argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  if (!sim::Storage::FileExists(dir)) {
    fprintf(stderr, "no such directory: %s\n", dir.c_str());
    return 2;
  }

  store::Manifest manifest(dir);
  Status s = manifest.Open();
  if (!s.ok()) {
    fprintf(stderr, "cannot open %s: %s\n", dir.c_str(),
            s.ToString().c_str());
    return 1;
  }

  for (int i = 2; i < argc; ++i) {
    if (strncmp(argv[i], "--ssid=", 7) == 0) {
      return Dump(manifest, strtoull(argv[i] + 7, nullptr, 10));
    }
    if (strcmp(argv[i], "--verify") == 0) {
      return Verify(manifest);
    }
    fprintf(stderr, "unknown flag: %s\n", argv[i]);
    return 2;
  }
  return Catalog(manifest);
}
