// papyrus_inspect — offline inspection of a PapyrusKV rank directory.
//
//   papyrus_inspect <rank dir>               # catalog: live SSTables
//   papyrus_inspect <rank dir> --ssid=N      # dump one table's records
//   papyrus_inspect <rank dir> --verify      # CRC-check every record
//   papyrus_inspect --stats <stats.json>     # render a PAPYRUSKV_STATS dump
//
// Works on any directory produced by the library (a repository's
// <group>/<db>/rank<k>, or a checkpoint's rank<k> snapshot directory) —
// the same recovery scan the zero-copy reopen uses.  --stats reads the
// JSON a run wrote when PAPYRUSKV_STATS=path was set (per-rank or the
// rank-0 aggregate) and prints it as tables.
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/export.h"
#include "sim/storage.h"
#include "store/format.h"
#include "store/manifest.h"
#include "store/sstable.h"

using namespace papyrus;

namespace {

// Renders bytes printably; non-ASCII as \xNN, truncated with an ellipsis.
std::string Printable(const std::string& s, size_t limit = 48) {
  std::string out;
  for (size_t i = 0; i < s.size() && out.size() < limit; ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c >= 0x20 && c < 0x7f) {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[8];
      snprintf(buf, sizeof(buf), "\\x%02x", c);
      out += buf;
    }
  }
  if (out.size() >= limit) out += "…";
  return out;
}

int Catalog(store::Manifest& manifest) {
  const auto live = manifest.LiveSsids();
  printf("%zu live SSTable(s), latest SSID %llu\n", live.size(),
         static_cast<unsigned long long>(manifest.LatestSsid()));
  printf("%8s  %10s  %12s  %12s\n", "SSID", "records", "SSData B",
         "SSIndex B");
  for (uint64_t ssid : live) {
    store::SSTablePtr reader;
    Status s = manifest.GetReader(ssid, &reader);
    // Missing/unreadable files report as size 0 in the listing.
    uint64_t data_size = 0, index_size = 0;
    sim::Storage::GetFileSize(
        manifest.dir() + "/" + store::SsDataName(ssid), &data_size)
        .IgnoreError();
    sim::Storage::GetFileSize(
        manifest.dir() + "/" + store::SsIndexName(ssid), &index_size)
        .IgnoreError();
    if (s.ok()) {
      printf("%8llu  %10zu  %12llu  %12llu\n",
             static_cast<unsigned long long>(ssid), reader->count(),
             static_cast<unsigned long long>(data_size),
             static_cast<unsigned long long>(index_size));
    } else {
      printf("%8llu  <unreadable: %s>\n",
             static_cast<unsigned long long>(ssid), s.ToString().c_str());
    }
  }
  return 0;
}

int Dump(store::Manifest& manifest, uint64_t ssid) {
  store::SSTablePtr reader;
  Status s = manifest.GetReader(ssid, &reader);
  if (!s.ok()) {
    fprintf(stderr, "cannot open ssid %llu: %s\n",
            static_cast<unsigned long long>(ssid), s.ToString().c_str());
    return 1;
  }
  printf("SSTable %llu: %zu records\n",
         static_cast<unsigned long long>(ssid), reader->count());
  for (size_t i = 0; i < reader->count(); ++i) {
    std::string key, value;
    uint8_t flags = 0;
    s = reader->ReadEntry(i, &key, &value, &flags);
    if (!s.ok()) {
      printf("%6zu  <error: %s>\n", i, s.ToString().c_str());
      continue;
    }
    printf("%6zu  %s%s = [%zu B] %s\n", i, Printable(key).c_str(),
           (flags & store::kFlagTombstone) ? " (TOMBSTONE)" : "",
           value.size(), Printable(value).c_str());
  }
  return 0;
}

int Verify(store::Manifest& manifest) {
  int bad = 0;
  uint64_t records = 0;
  for (uint64_t ssid : manifest.LiveSsids()) {
    store::SSTablePtr reader;
    Status s = manifest.GetReader(ssid, &reader);
    if (!s.ok()) {
      printf("ssid %llu: OPEN FAILED: %s\n",
             static_cast<unsigned long long>(ssid), s.ToString().c_str());
      ++bad;
      continue;
    }
    std::string prev_key;
    for (size_t i = 0; i < reader->count(); ++i) {
      std::string key, value;
      s = reader->ReadEntry(i, &key, &value, nullptr);
      if (!s.ok()) {
        printf("ssid %llu record %zu: %s\n",
               static_cast<unsigned long long>(ssid), i,
               s.ToString().c_str());
        ++bad;
        continue;
      }
      if (i > 0 && key <= prev_key) {
        printf("ssid %llu record %zu: SORT ORDER VIOLATION\n",
               static_cast<unsigned long long>(ssid), i);
        ++bad;
      }
      prev_key = std::move(key);
      ++records;
    }
  }
  printf("verified %llu record(s), %d problem(s)\n",
         static_cast<unsigned long long>(records), bad);
  return bad == 0 ? 0 : 1;
}

int ShowStats(const std::string& path) {
  std::string text;
  // Stats dumps are host-side files (written with plain stdio), but
  // ReadFileToString works on any readable path.
  Status s = sim::Storage::ReadFileToString(path, &text);
  if (!s.ok()) {
    fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
            s.ToString().c_str());
    return 1;
  }
  obs::Snapshot snap;
  obs::StatsMeta meta;
  if (!obs::ParseStatsJson(text, &snap, &meta)) {
    fprintf(stderr, "%s is not a PapyrusKV stats-v1 dump\n", path.c_str());
    return 1;
  }
  if (meta.aggregated) {
    printf("aggregated stats over %d rank(s)\n", meta.nranks);
  } else {
    printf("stats for rank %d of %d\n", meta.rank, meta.nranks);
  }
  if (!snap.histograms.empty()) {
    printf("\n%-34s %10s %10s %10s %10s %10s\n", "histogram (us)", "count",
           "mean", "p50", "p95", "p99");
    for (const auto& [name, h] : snap.histograms) {
      printf("%-34s %10llu %10.1f %10.1f %10.1f %10.1f\n", name.c_str(),
             static_cast<unsigned long long>(h.count), h.Mean(),
             h.Percentile(50), h.Percentile(95), h.Percentile(99));
    }
  }
  if (!snap.counters.empty()) {
    printf("\n%-42s %16s\n", "counter", "value");
    for (const auto& [name, v] : snap.counters) {
      printf("%-42s %16llu\n", name.c_str(),
             static_cast<unsigned long long>(v));
    }
  }
  if (!snap.gauges.empty()) {
    printf("\n%-42s %16s\n", "gauge", "value");
    for (const auto& [name, v] : snap.gauges) {
      printf("%-42s %16lld\n", name.c_str(), static_cast<long long>(v));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && strcmp(argv[1], "--stats") == 0) {
    return ShowStats(argv[2]);
  }
  if (argc < 2) {
    fprintf(stderr,
            "usage: %s <rank dir> [--ssid=N | --verify]\n"
            "       %s --stats <stats.json>\n"
            "  inspects the SSTables of one rank of a PapyrusKV database,\n"
            "  or renders a PAPYRUSKV_STATS metrics dump\n",
            argv[0], argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  if (!sim::Storage::FileExists(dir)) {
    fprintf(stderr, "no such directory: %s\n", dir.c_str());
    return 2;
  }

  store::Manifest manifest(dir);
  Status s = manifest.Open();
  if (!s.ok()) {
    fprintf(stderr, "cannot open %s: %s\n", dir.c_str(),
            s.ToString().c_str());
    return 1;
  }

  for (int i = 2; i < argc; ++i) {
    if (strncmp(argv[i], "--ssid=", 7) == 0) {
      return Dump(manifest, strtoull(argv[i] + 7, nullptr, 10));
    }
    if (strcmp(argv[i], "--verify") == 0) {
      return Verify(manifest);
    }
    fprintf(stderr, "unknown flag: %s\n", argv[i]);
    return 2;
  }
  return Catalog(manifest);
}
