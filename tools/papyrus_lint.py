#!/usr/bin/env python3
"""papyrus_lint — the repo-wide correctness lint gate.

Rules (each can be silenced per line with the named escape comment):

  raw-mutex          Raw synchronization primitives (std::mutex,
                     std::shared_mutex, pthread_mutex_t, std::lock_guard,
                     std::unique_lock, std::scoped_lock, std::shared_lock,
                     std::condition_variable, or including <mutex> /
                     <shared_mutex>) anywhere outside the annotated wrapper
                     in src/common/mutex.{h,cc}.  All locking must go
                     through papyrus::Mutex so the thread-safety analysis
                     and the lock-order validator see it.
                     Escape: // lint:allow-raw-mutex

  unguarded-mutex    A Mutex/SharedMutex data member that no thread-safety
                     annotation (GUARDED_BY / PT_GUARDED_BY / REQUIRES /
                     ACQUIRE / RELEASE / EXCLUDES / ...) in the same file
                     references.  A mutex nothing is annotated against
                     protects nothing the compiler can check.
                     Escape: // lint:unguarded-ok

  using-namespace    `using namespace` at namespace scope in a header —
                     it leaks into every includer.

  include-guard      A header without `#pragma once`.

  naked-recv         A blocking Recv()/RecvInternal() call in src/ outside
                     the comm module (src/net/comm.{h,cc}).  Unbounded
                     receives hang forever when a peer dies or a message is
                     lost; production code must use the deadline variants
                     (RecvFor / BarrierFor) or the runtime's retry helpers
                     (RequestReply).  Tests, benches, examples and tools
                     are exempt — they run under a watchdog.
                     Escape: // lint:allow-blocking-recv, or the protocol
                     analyzer's // analyze:allow-proto-deadlock (one escape
                     vocabulary for both tools), on the flagged line or in
                     the comment block directly above it.

  direct-send        A direct Communicator Send (receiver named *comm*) in
                     src/core/ or src/repl/ outside the async pipeline.
                     Remote requests from the KV layer must go through the
                     submission/completion pipeline (src/async/) or the
                     runtime's SendRequest/SendResponse helpers so they get
                     batching, per-op metrics, flight-recorder events and
                     bounded retries; a raw Send gets none of those — and a
                     replication frame sent raw would race the pipeline's
                     per-destination ordering.
                     Escape: // lint:allow-direct-send

  trace-add          A direct TraceBuffer Add/AddEvent call (receiver named
                     *trace*) outside src/obs/.  Raw Add bypasses the span
                     machinery: no trace/span/parent ids, no TLS context,
                     no flow events — the event merges as an orphan.
                     Instrumentation must go through obs::OpSpan,
                     obs::TraceSpan or obs::RecordSpan.  Tests of the
                     buffer itself live in tests/obs and are exempt.
                     Escape: // lint:allow-trace-add

Usage:
  tools/papyrus_lint.py [paths...]      # default: src tests tools bench examples
  tools/papyrus_lint.py --self-test     # run against the seeded fixture

Exit status: 0 clean, 1 violations found, 2 usage/internal error.
"""

import os
import re
import sys

HEADER_EXTS = (".h", ".hpp")
SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp")

# The annotated wrapper itself is the one place raw primitives may live.
RAW_MUTEX_ALLOWLIST = (
    os.path.join("src", "common", "mutex.h"),
    os.path.join("src", "common", "mutex.cc"),
)

RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|shared_|timed_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|\bpthread_(?:mutex|rwlock|cond)_t\b"
    r"|#\s*include\s*<(?:mutex|shared_mutex)>"
)

# `Mutex foo_;` / `mutable SharedMutex mu_{"name"};` data-member declarations.
MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:papyrus::)?(?:Shared)?Mutex\s+(\w+)\s*(?:\{|;|=)"
)

# Any thread-safety annotation that can reference a mutex member.
TSA_ANNOTATION_RE = re.compile(
    r"\b(?:PT_)?GUARDED_BY\s*\(([^)]*)\)"
    r"|\bREQUIRES(?:_SHARED)?\s*\(([^)]*)\)"
    r"|\bACQUIRE(?:_SHARED)?\s*\(([^)]*)\)"
    r"|\bRELEASE(?:_SHARED|_GENERIC)?\s*\(([^)]*)\)"
    r"|\bTRY_ACQUIRE(?:_SHARED)?\s*\([^,]*,\s*([^)]*)\)"
    r"|\bEXCLUDES\s*\(([^)]*)\)"
    r"|\bASSERT_CAPABILITY\s*\(([^)]*)\)"
    r"|\bRETURN_CAPABILITY\s*\(([^)]*)\)"
)

USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+[\w:]+\s*;")

# Blocking receives.  \b keeps RecvFor/TryRecv/RecvResponse out: the word
# boundary only matches when "Recv(" / "RecvInternal(" stands alone.
NAKED_RECV_RE = re.compile(r"\b(?:Recv|RecvInternal)\s*\(")

# The comm module defines Recv and may call it internally.
NAKED_RECV_ALLOWLIST = (
    os.path.join("src", "net", "comm.h"),
    os.path.join("src", "net", "comm.cc"),
)

# First path components where blocking receives are acceptable (test code
# runs under ctest timeouts; tools/benches are interactive).
NAKED_RECV_EXEMPT_ROOTS = ("tests", "bench", "examples", "tools")

# Direct Communicator sends: a Send call whose receiver mentions "comm"
# (req_comm_, resp_comm_, barrier_comm(), ...).  Receiver-name matching
# keeps pipeline.Send-alikes and unrelated Send methods out of scope.
DIRECT_SEND_RE = re.compile(
    r"\b\w*[Cc]omm\w*\s*(?:\(\s*\))?\s*(?:\.|->)\s*Send\s*\(")

# Only the KV core and the replication layer are constrained; the async
# pipeline and the net layer are the two legitimate senders.  src/repl/ is
# in scope because a replication frame that skips the pipeline loses the
# per-destination ordering its epoch/seq protocol depends on.
DIRECT_SEND_SCOPE_PREFIXES = (
    os.path.join("src", "core") + os.sep,
    os.path.join("src", "repl") + os.sep,
)

# Direct TraceBuffer writes: an Add/AddEvent call whose receiver mentions
# "trace" (trace_, trace(), tls_trace, CurrentTrace(), ...).  Receiver-name
# matching keeps builder.Add / bloom.Add / gauge.Add out of scope.
TRACE_ADD_RE = re.compile(
    r"\b\w*[Tt]race\w*\s*(?:\(\s*\))?\s*(?:\.|->)\s*Add(?:Event)?\s*\(")

# The span machinery itself, and the unit tests that poke the buffer raw.
TRACE_ADD_EXEMPT_PREFIXES = (
    os.path.join("src", "obs") + os.sep,
    os.path.join("tests", "obs") + os.sep,
)

COMMENT_LINE_RE = re.compile(r"^\s*(?://|\*)")

# The lint and the protocol analyzer (tools/analyzer/protocol_checks.py)
# share one escape vocabulary for blocking receives: either the lint's own
# tag or the analyzer's deadlock escape silences naked-recv, on the flagged
# line or in the contiguous pure-comment block directly above it.
RECV_ESCAPE_TOKENS = ("lint:allow-blocking-recv",
                      "analyze:allow-proto-deadlock")


def recv_escaped(lines, i, comment):
    """True when line i (1-based) carries a blocking-recv escape."""
    if any(tok in comment for tok in RECV_ESCAPE_TOKENS):
        return True
    j = i - 1
    while j >= 1 and COMMENT_LINE_RE.match(lines[j - 1]):
        if any(tok in lines[j - 1] for tok in RECV_ESCAPE_TOKENS):
            return True
        j -= 1
    return False


def strip_block_comments(text):
    """Blanks /* ... */ spans (keeps line structure for line numbers)."""
    out = []
    in_block = False
    for line in text.splitlines():
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append("")
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
        out.append(line)
    return out


def lint_file(path, relpath):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [(relpath, 0, "io", str(e))]

    violations = []
    lines = strip_block_comments(text)

    # include-guard: headers need #pragma once.
    if relpath.endswith(HEADER_EXTS):
        if not any(re.match(r"^\s*#\s*pragma\s+once\b", ln) for ln in lines):
            violations.append(
                (relpath, 1, "include-guard", "header missing #pragma once"))

    in_raw_allowlist = any(relpath.endswith(p) for p in RAW_MUTEX_ALLOWLIST)
    recv_exempt = (
        any(relpath.endswith(p) for p in NAKED_RECV_ALLOWLIST)
        or relpath.split(os.sep)[0] in NAKED_RECV_EXEMPT_ROOTS)
    trace_add_exempt = any(
        relpath.startswith(p) for p in TRACE_ADD_EXEMPT_PREFIXES)
    direct_send_scoped = (relpath.startswith(DIRECT_SEND_SCOPE_PREFIXES)
                          or os.sep not in relpath)  # fixture files

    mutex_decls = {}       # member name -> line number
    annotated_names = set()  # identifiers referenced by any TSA annotation

    for i, line in enumerate(lines, start=1):
        code, _, comment = line.partition("//")

        # raw-mutex ------------------------------------------------------
        if (not in_raw_allowlist
                and "lint:allow-raw-mutex" not in comment
                and not COMMENT_LINE_RE.match(line)):
            m = RAW_MUTEX_RE.search(code)
            if m:
                violations.append(
                    (relpath, i, "raw-mutex",
                     "raw primitive '%s' — use papyrus::Mutex "
                     "(src/common/mutex.h)" % m.group(0).strip()))

        # naked-recv -----------------------------------------------------
        if (not recv_exempt
                and not COMMENT_LINE_RE.match(line)
                and NAKED_RECV_RE.search(code)
                and not recv_escaped(lines, i, comment)):
            violations.append(
                (relpath, i, "naked-recv",
                 "blocking Recv without a deadline — use RecvFor/"
                 "BarrierFor or RequestReply (src/net/comm.h)"))

        # direct-send ----------------------------------------------------
        if (direct_send_scoped
                and "lint:allow-direct-send" not in comment
                and not COMMENT_LINE_RE.match(line)
                and DIRECT_SEND_RE.search(code)):
            violations.append(
                (relpath, i, "direct-send",
                 "direct Communicator Send from core — route through the "
                 "async pipeline (src/async/pipeline.h) or the runtime's "
                 "SendRequest/SendResponse"))

        # trace-add ------------------------------------------------------
        if (not trace_add_exempt
                and "lint:allow-trace-add" not in comment
                and not COMMENT_LINE_RE.match(line)
                and TRACE_ADD_RE.search(code)):
            violations.append(
                (relpath, i, "trace-add",
                 "direct TraceBuffer Add bypasses span machinery — use "
                 "obs::OpSpan / obs::TraceSpan / obs::RecordSpan "
                 "(src/obs/trace.h)"))

        # using-namespace (headers only) ---------------------------------
        if relpath.endswith(HEADER_EXTS) and USING_NAMESPACE_RE.match(code):
            violations.append(
                (relpath, i, "using-namespace",
                 "'using namespace' in a header leaks into every includer"))

        # collect Mutex member declarations and annotation references ----
        if not COMMENT_LINE_RE.match(line):
            dm = MUTEX_DECL_RE.match(code)
            if dm and "lint:unguarded-ok" not in comment:
                # Only class members / globals follow the trailing-underscore
                # or named-lock convention; locals in functions still match,
                # so require the declaration to look like a member (ends in _)
                # or carry a brace initializer with a name string.
                name = dm.group(1)
                if name.endswith("_") or "{\"" in code:
                    mutex_decls[name] = i
            for am in TSA_ANNOTATION_RE.finditer(code):
                for group in am.groups():
                    if group:
                        for ident in re.findall(r"[\w.]+", group):
                            annotated_names.add(ident.split(".")[-1])

    # unguarded-mutex ----------------------------------------------------
    for name, lineno in sorted(mutex_decls.items(), key=lambda kv: kv[1]):
        if name not in annotated_names:
            violations.append(
                (relpath, lineno, "unguarded-mutex",
                 "Mutex '%s' is never referenced by a thread-safety "
                 "annotation (GUARDED_BY/REQUIRES/...) in this file" % name))

    return violations


def iter_sources(roots):
    for root in roots:
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames
                           if d not in ("build", ".git", "lint_fixture")
                           and not d.startswith("build-")]
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, fn)


def run(roots, repo_root):
    all_violations = []
    nfiles = 0
    for path in iter_sources(roots):
        nfiles += 1
        rel = os.path.relpath(path, repo_root)
        all_violations.extend(lint_file(path, rel))
    for rel, lineno, rule, msg in all_violations:
        print("%s:%d: [%s] %s" % (rel, lineno, rule, msg))
    print("papyrus_lint: %d file(s), %d violation(s)"
          % (nfiles, len(all_violations)))
    return all_violations


def self_test(repo_root):
    """The seeded fixture must trip every rule; the escapes must not."""
    fixture = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "lint_fixture")
    expected = {
        ("bad_raw_mutex.cc", "raw-mutex"),
        ("bad_unguarded.h", "unguarded-mutex"),
        ("bad_header.h", "using-namespace"),
        ("bad_header.h", "include-guard"),
        ("bad_naked_recv.cc", "naked-recv"),
        ("bad_trace_add.cc", "trace-add"),
        ("bad_direct_send.cc", "direct-send"),
    }
    got = set()
    escaped_files = set()
    for path in iter_sources([fixture]):
        base = os.path.basename(path)
        vs = lint_file(path, base)
        for rel, _, rule, _ in vs:
            got.add((rel, rule))
        if base.startswith("good_") and vs:
            print("self-test FAIL: %s should be clean, got %s" % (base, vs))
            return 1
        if base.startswith("good_"):
            escaped_files.add(base)
    missing = expected - got
    extra = {g for g in got if g not in expected
             and not g[0].startswith("good_")}
    if missing:
        print("self-test FAIL: rules not triggered: %s" % sorted(missing))
        return 1
    if extra:
        print("self-test FAIL: unexpected violations: %s" % sorted(extra))
        return 1
    if len(escaped_files) < 2:
        print("self-test FAIL: expected >=2 good_ escape fixtures, saw %s"
              % sorted(escaped_files))
        return 1
    print("papyrus_lint self-test: OK (%d seeded rules, %d escape files)"
          % (len(expected), len(escaped_files)))
    return 0


def main(argv):
    repo_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if len(argv) > 1 and argv[1] == "--self-test":
        return self_test(repo_root)
    if len(argv) > 1:
        roots = [os.path.join(repo_root, a) if not os.path.isabs(a) else a
                 for a in argv[1:]]
    else:
        roots = [os.path.join(repo_root, d)
                 for d in ("src", "tests", "tools", "bench", "examples")]
    for r in roots:
        if not os.path.exists(r):
            print("papyrus_lint: no such path: %s" % r, file=sys.stderr)
            return 2
    violations = run(roots, repo_root)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
