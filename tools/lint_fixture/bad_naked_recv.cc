// Seeded lint fixture: a blocking receive with no deadline must trip the
// naked-recv rule (a dead peer would hang this loop forever).
#include "net/comm.h"

namespace fixture {

void DrainForever(papyrus::net::Communicator& comm) {
  for (;;) {
    papyrus::net::Message m =
        comm.Recv(papyrus::net::kAnySource, papyrus::net::kAnyTag);
    if (m.tag < 0) return;
  }
}

}  // namespace fixture
