// Seeded lint fixture: header with no include guard and a namespace leak.

#include <string>

using namespace std;

namespace fixture {

inline string Greeting() { return "hello"; }

}  // namespace fixture
