// Seeded lint fixture: a Mutex member no annotation references.
#pragma once

#include "common/mutex.h"

namespace fixture {

class Registry {
 public:
  void Add(int v);

 private:
  papyrus::Mutex mu_{"fixture_registry_mu"};
  int count_ = 0;  // should be GUARDED_BY(mu_) — and mu_ is never referenced
};

}  // namespace fixture
