// Seeded lint fixture: the intended idiom — annotated wrapper, guarded
// field, include guard, no namespace leak.  Must lint clean.
#pragma once

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fixture {

class Guarded {
 public:
  void Bump() {
    papyrus::MutexLock lock(&mu_);
    ++count_;
  }

 private:
  papyrus::Mutex mu_{"fixture_guarded_mu"};
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
