// Seeded lint fixture: a direct Communicator Send from the KV core.  Must
// trip the direct-send rule — remote requests belong on the async
// pipeline (batching, retries, flight-recorder events), not on a raw Send.
#include "net/comm.h"

namespace fixture {

void BypassesPipeline(papyrus::net::Communicator& req_comm, int dst) {
  req_comm.Send(dst, /*tag=*/2, papyrus::Slice("k", 1));
}

}  // namespace fixture
