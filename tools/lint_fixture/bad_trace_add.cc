// Seeded violation: writing straight into the trace buffer from outside
// src/obs/ — the event carries no trace/span ids and merges as an orphan.
#include "obs/trace.h"

namespace fixture {

void InstrumentedBadly() {
  if (auto* trace = papyrus::obs::CurrentTrace()) {
    trace->Add("flush", "store", 0, 10);
  }
}

}  // namespace fixture
