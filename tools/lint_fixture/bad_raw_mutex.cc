// Seeded lint fixture: raw primitives that must trip the raw-mutex rule.
// Never compiled; exercised by `tools/papyrus_lint.py --self-test`.
#include <mutex>

namespace fixture {

struct Counter {
  std::mutex mu;
  int n = 0;
  void Bump() {
    std::lock_guard<std::mutex> lock(mu);
    ++n;
  }
};

}  // namespace fixture
