// Seeded lint fixture: every rule silenced by its escape comment — this
// file must lint clean.
#include <mutex>  // lint:allow-raw-mutex

#include "common/mutex.h"

namespace fixture {

class Wrapped {
 public:
  void Touch();

 private:
  std::mutex raw_mu_;  // lint:allow-raw-mutex
  papyrus::Mutex aux_mu_{"fixture_aux_mu"};  // lint:unguarded-ok
};

}  // namespace fixture
