// Seeded lint fixture: every rule silenced by its escape comment — this
// file must lint clean.
#include <mutex>  // lint:allow-raw-mutex

#include "common/mutex.h"

namespace fixture {

class Wrapped {
 public:
  void Touch();

 private:
  std::mutex raw_mu_;  // lint:allow-raw-mutex
  papyrus::Mutex aux_mu_{"fixture_aux_mu"};  // lint:unguarded-ok
};

void EscapedTraceAdd(papyrus::obs::TraceBuffer* trace_buf) {
  // Approved raw write: replaying a pre-recorded interval whose ids are
  // attached by hand downstream.
  trace_buf->Add("replay", "tool", 0, 1);  // lint:allow-trace-add
}

void EscapedSend(papyrus::net::Communicator& resp_comm, int dst) {
  // Approved raw send: a response to an already-pipelined request carries
  // its own tag and needs no batching or retry machinery.
  resp_comm.Send(dst, 100, papyrus::Slice("v", 1));  // lint:allow-direct-send
}

void EscapedRecv(papyrus::net::Communicator& comm) {
  // Approved blocking site: shutdown is a self-addressed message, so this
  // receive cannot outlive its sender.
  net::Message m = comm.Recv(0, 0);  // lint:allow-blocking-recv
  (void)m;
}

}  // namespace fixture
