# Empty compiler generated dependencies file for kmer_analysis.
# This may be replaced when dependencies are built.
