file(REMOVE_RECURSE
  "CMakeFiles/kmer_analysis.dir/kmer_analysis.cpp.o"
  "CMakeFiles/kmer_analysis.dir/kmer_analysis.cpp.o.d"
  "kmer_analysis"
  "kmer_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmer_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
