
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/coupled_workflow.cpp" "examples/CMakeFiles/coupled_workflow.dir/coupled_workflow.cpp.o" "gcc" "examples/CMakeFiles/coupled_workflow.dir/coupled_workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/papyrus_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/papyrus_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/papyruskv.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/papyrus_store.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/papyrus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/papyrus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/papyrus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
