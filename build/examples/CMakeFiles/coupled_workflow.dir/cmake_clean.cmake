file(REMOVE_RECURSE
  "CMakeFiles/coupled_workflow.dir/coupled_workflow.cpp.o"
  "CMakeFiles/coupled_workflow.dir/coupled_workflow.cpp.o.d"
  "coupled_workflow"
  "coupled_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupled_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
