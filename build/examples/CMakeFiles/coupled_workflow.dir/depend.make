# Empty dependencies file for coupled_workflow.
# This may be replaced when dependencies are built.
