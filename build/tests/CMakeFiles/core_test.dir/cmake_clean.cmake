file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/kv_basic_test.cc.o"
  "CMakeFiles/core_test.dir/core/kv_basic_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/kv_consistency_test.cc.o"
  "CMakeFiles/core_test.dir/core/kv_consistency_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/kv_cpp_wrapper_test.cc.o"
  "CMakeFiles/core_test.dir/core/kv_cpp_wrapper_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/kv_fault_test.cc.o"
  "CMakeFiles/core_test.dir/core/kv_fault_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/kv_persistence_test.cc.o"
  "CMakeFiles/core_test.dir/core/kv_persistence_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/kv_property_test.cc.o"
  "CMakeFiles/core_test.dir/core/kv_property_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/kv_storage_group_test.cc.o"
  "CMakeFiles/core_test.dir/core/kv_storage_group_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/kv_stress_test.cc.o"
  "CMakeFiles/core_test.dir/core/kv_stress_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
