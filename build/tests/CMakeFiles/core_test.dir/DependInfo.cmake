
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/kv_basic_test.cc" "tests/CMakeFiles/core_test.dir/core/kv_basic_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/kv_basic_test.cc.o.d"
  "/root/repo/tests/core/kv_consistency_test.cc" "tests/CMakeFiles/core_test.dir/core/kv_consistency_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/kv_consistency_test.cc.o.d"
  "/root/repo/tests/core/kv_cpp_wrapper_test.cc" "tests/CMakeFiles/core_test.dir/core/kv_cpp_wrapper_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/kv_cpp_wrapper_test.cc.o.d"
  "/root/repo/tests/core/kv_fault_test.cc" "tests/CMakeFiles/core_test.dir/core/kv_fault_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/kv_fault_test.cc.o.d"
  "/root/repo/tests/core/kv_persistence_test.cc" "tests/CMakeFiles/core_test.dir/core/kv_persistence_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/kv_persistence_test.cc.o.d"
  "/root/repo/tests/core/kv_property_test.cc" "tests/CMakeFiles/core_test.dir/core/kv_property_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/kv_property_test.cc.o.d"
  "/root/repo/tests/core/kv_storage_group_test.cc" "tests/CMakeFiles/core_test.dir/core/kv_storage_group_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/kv_storage_group_test.cc.o.d"
  "/root/repo/tests/core/kv_stress_test.cc" "tests/CMakeFiles/core_test.dir/core/kv_stress_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/kv_stress_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/papyruskv.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/papyrus_store.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/papyrus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/papyrus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/papyrus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
