
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/store/bloom_test.cc" "tests/CMakeFiles/store_test.dir/store/bloom_test.cc.o" "gcc" "tests/CMakeFiles/store_test.dir/store/bloom_test.cc.o.d"
  "/root/repo/tests/store/cache_test.cc" "tests/CMakeFiles/store_test.dir/store/cache_test.cc.o" "gcc" "tests/CMakeFiles/store_test.dir/store/cache_test.cc.o.d"
  "/root/repo/tests/store/compactor_test.cc" "tests/CMakeFiles/store_test.dir/store/compactor_test.cc.o" "gcc" "tests/CMakeFiles/store_test.dir/store/compactor_test.cc.o.d"
  "/root/repo/tests/store/manifest_test.cc" "tests/CMakeFiles/store_test.dir/store/manifest_test.cc.o" "gcc" "tests/CMakeFiles/store_test.dir/store/manifest_test.cc.o.d"
  "/root/repo/tests/store/memtable_test.cc" "tests/CMakeFiles/store_test.dir/store/memtable_test.cc.o" "gcc" "tests/CMakeFiles/store_test.dir/store/memtable_test.cc.o.d"
  "/root/repo/tests/store/sstable_test.cc" "tests/CMakeFiles/store_test.dir/store/sstable_test.cc.o" "gcc" "tests/CMakeFiles/store_test.dir/store/sstable_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/papyruskv.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/papyrus_store.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/papyrus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/papyrus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/papyrus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
