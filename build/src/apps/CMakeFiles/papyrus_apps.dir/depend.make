# Empty dependencies file for papyrus_apps.
# This may be replaced when dependencies are built.
