file(REMOVE_RECURSE
  "CMakeFiles/papyrus_apps.dir/genome.cc.o"
  "CMakeFiles/papyrus_apps.dir/genome.cc.o.d"
  "CMakeFiles/papyrus_apps.dir/meraculous.cc.o"
  "CMakeFiles/papyrus_apps.dir/meraculous.cc.o.d"
  "CMakeFiles/papyrus_apps.dir/ufx.cc.o"
  "CMakeFiles/papyrus_apps.dir/ufx.cc.o.d"
  "libpapyrus_apps.a"
  "libpapyrus_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papyrus_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
