file(REMOVE_RECURSE
  "libpapyrus_apps.a"
)
