file(REMOVE_RECURSE
  "CMakeFiles/papyrus_common.dir/crc32.cc.o"
  "CMakeFiles/papyrus_common.dir/crc32.cc.o.d"
  "CMakeFiles/papyrus_common.dir/env.cc.o"
  "CMakeFiles/papyrus_common.dir/env.cc.o.d"
  "CMakeFiles/papyrus_common.dir/logging.cc.o"
  "CMakeFiles/papyrus_common.dir/logging.cc.o.d"
  "CMakeFiles/papyrus_common.dir/status.cc.o"
  "CMakeFiles/papyrus_common.dir/status.cc.o.d"
  "libpapyrus_common.a"
  "libpapyrus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papyrus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
