# Empty compiler generated dependencies file for papyrus_common.
# This may be replaced when dependencies are built.
