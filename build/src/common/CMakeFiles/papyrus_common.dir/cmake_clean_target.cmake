file(REMOVE_RECURSE
  "libpapyrus_common.a"
)
