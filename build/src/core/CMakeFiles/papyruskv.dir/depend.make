# Empty dependencies file for papyruskv.
# This may be replaced when dependencies are built.
