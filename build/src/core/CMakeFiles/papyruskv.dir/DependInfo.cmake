
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cc" "src/core/CMakeFiles/papyruskv.dir/checkpoint.cc.o" "gcc" "src/core/CMakeFiles/papyruskv.dir/checkpoint.cc.o.d"
  "/root/repo/src/core/db_shard.cc" "src/core/CMakeFiles/papyruskv.dir/db_shard.cc.o" "gcc" "src/core/CMakeFiles/papyruskv.dir/db_shard.cc.o.d"
  "/root/repo/src/core/layout.cc" "src/core/CMakeFiles/papyruskv.dir/layout.cc.o" "gcc" "src/core/CMakeFiles/papyruskv.dir/layout.cc.o.d"
  "/root/repo/src/core/papyruskv.cc" "src/core/CMakeFiles/papyruskv.dir/papyruskv.cc.o" "gcc" "src/core/CMakeFiles/papyruskv.dir/papyruskv.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/papyruskv.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/papyruskv.dir/runtime.cc.o.d"
  "/root/repo/src/core/wire.cc" "src/core/CMakeFiles/papyruskv.dir/wire.cc.o" "gcc" "src/core/CMakeFiles/papyruskv.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/papyrus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/papyrus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/papyrus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/papyrus_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
