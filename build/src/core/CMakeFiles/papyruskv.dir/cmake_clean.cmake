file(REMOVE_RECURSE
  "CMakeFiles/papyruskv.dir/checkpoint.cc.o"
  "CMakeFiles/papyruskv.dir/checkpoint.cc.o.d"
  "CMakeFiles/papyruskv.dir/db_shard.cc.o"
  "CMakeFiles/papyruskv.dir/db_shard.cc.o.d"
  "CMakeFiles/papyruskv.dir/layout.cc.o"
  "CMakeFiles/papyruskv.dir/layout.cc.o.d"
  "CMakeFiles/papyruskv.dir/papyruskv.cc.o"
  "CMakeFiles/papyruskv.dir/papyruskv.cc.o.d"
  "CMakeFiles/papyruskv.dir/runtime.cc.o"
  "CMakeFiles/papyruskv.dir/runtime.cc.o.d"
  "CMakeFiles/papyruskv.dir/wire.cc.o"
  "CMakeFiles/papyruskv.dir/wire.cc.o.d"
  "libpapyruskv.a"
  "libpapyruskv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papyruskv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
