file(REMOVE_RECURSE
  "libpapyruskv.a"
)
