file(REMOVE_RECURSE
  "libpapyrus_net.a"
)
