file(REMOVE_RECURSE
  "CMakeFiles/papyrus_net.dir/comm.cc.o"
  "CMakeFiles/papyrus_net.dir/comm.cc.o.d"
  "CMakeFiles/papyrus_net.dir/runtime.cc.o"
  "CMakeFiles/papyrus_net.dir/runtime.cc.o.d"
  "libpapyrus_net.a"
  "libpapyrus_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papyrus_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
