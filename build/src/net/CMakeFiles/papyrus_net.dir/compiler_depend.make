# Empty compiler generated dependencies file for papyrus_net.
# This may be replaced when dependencies are built.
