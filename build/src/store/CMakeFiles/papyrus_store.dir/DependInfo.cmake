
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/bloom.cc" "src/store/CMakeFiles/papyrus_store.dir/bloom.cc.o" "gcc" "src/store/CMakeFiles/papyrus_store.dir/bloom.cc.o.d"
  "/root/repo/src/store/cache.cc" "src/store/CMakeFiles/papyrus_store.dir/cache.cc.o" "gcc" "src/store/CMakeFiles/papyrus_store.dir/cache.cc.o.d"
  "/root/repo/src/store/compactor.cc" "src/store/CMakeFiles/papyrus_store.dir/compactor.cc.o" "gcc" "src/store/CMakeFiles/papyrus_store.dir/compactor.cc.o.d"
  "/root/repo/src/store/manifest.cc" "src/store/CMakeFiles/papyrus_store.dir/manifest.cc.o" "gcc" "src/store/CMakeFiles/papyrus_store.dir/manifest.cc.o.d"
  "/root/repo/src/store/memtable.cc" "src/store/CMakeFiles/papyrus_store.dir/memtable.cc.o" "gcc" "src/store/CMakeFiles/papyrus_store.dir/memtable.cc.o.d"
  "/root/repo/src/store/sstable.cc" "src/store/CMakeFiles/papyrus_store.dir/sstable.cc.o" "gcc" "src/store/CMakeFiles/papyrus_store.dir/sstable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/papyrus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/papyrus_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
