file(REMOVE_RECURSE
  "CMakeFiles/papyrus_store.dir/bloom.cc.o"
  "CMakeFiles/papyrus_store.dir/bloom.cc.o.d"
  "CMakeFiles/papyrus_store.dir/cache.cc.o"
  "CMakeFiles/papyrus_store.dir/cache.cc.o.d"
  "CMakeFiles/papyrus_store.dir/compactor.cc.o"
  "CMakeFiles/papyrus_store.dir/compactor.cc.o.d"
  "CMakeFiles/papyrus_store.dir/manifest.cc.o"
  "CMakeFiles/papyrus_store.dir/manifest.cc.o.d"
  "CMakeFiles/papyrus_store.dir/memtable.cc.o"
  "CMakeFiles/papyrus_store.dir/memtable.cc.o.d"
  "CMakeFiles/papyrus_store.dir/sstable.cc.o"
  "CMakeFiles/papyrus_store.dir/sstable.cc.o.d"
  "libpapyrus_store.a"
  "libpapyrus_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papyrus_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
