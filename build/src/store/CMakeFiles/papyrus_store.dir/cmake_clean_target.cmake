file(REMOVE_RECURSE
  "libpapyrus_store.a"
)
