# Empty dependencies file for papyrus_store.
# This may be replaced when dependencies are built.
