# Empty dependencies file for papyrus_baseline.
# This may be replaced when dependencies are built.
