file(REMOVE_RECURSE
  "CMakeFiles/papyrus_baseline.dir/dsm.cc.o"
  "CMakeFiles/papyrus_baseline.dir/dsm.cc.o.d"
  "CMakeFiles/papyrus_baseline.dir/mdhim.cc.o"
  "CMakeFiles/papyrus_baseline.dir/mdhim.cc.o.d"
  "CMakeFiles/papyrus_baseline.dir/minidb.cc.o"
  "CMakeFiles/papyrus_baseline.dir/minidb.cc.o.d"
  "libpapyrus_baseline.a"
  "libpapyrus_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papyrus_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
