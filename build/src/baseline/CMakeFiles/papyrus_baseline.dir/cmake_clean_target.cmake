file(REMOVE_RECURSE
  "libpapyrus_baseline.a"
)
