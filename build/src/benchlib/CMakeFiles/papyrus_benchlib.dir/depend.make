# Empty dependencies file for papyrus_benchlib.
# This may be replaced when dependencies are built.
