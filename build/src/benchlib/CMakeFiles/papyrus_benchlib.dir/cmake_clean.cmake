file(REMOVE_RECURSE
  "CMakeFiles/papyrus_benchlib.dir/report.cc.o"
  "CMakeFiles/papyrus_benchlib.dir/report.cc.o.d"
  "CMakeFiles/papyrus_benchlib.dir/workload.cc.o"
  "CMakeFiles/papyrus_benchlib.dir/workload.cc.o.d"
  "libpapyrus_benchlib.a"
  "libpapyrus_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papyrus_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
