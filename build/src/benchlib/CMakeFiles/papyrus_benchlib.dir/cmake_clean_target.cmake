file(REMOVE_RECURSE
  "libpapyrus_benchlib.a"
)
