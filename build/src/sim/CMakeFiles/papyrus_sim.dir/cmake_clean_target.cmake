file(REMOVE_RECURSE
  "libpapyrus_sim.a"
)
