file(REMOVE_RECURSE
  "CMakeFiles/papyrus_sim.dir/device_model.cc.o"
  "CMakeFiles/papyrus_sim.dir/device_model.cc.o.d"
  "CMakeFiles/papyrus_sim.dir/interconnect.cc.o"
  "CMakeFiles/papyrus_sim.dir/interconnect.cc.o.d"
  "CMakeFiles/papyrus_sim.dir/storage.cc.o"
  "CMakeFiles/papyrus_sim.dir/storage.cc.o.d"
  "libpapyrus_sim.a"
  "libpapyrus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papyrus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
