# Empty dependencies file for papyrus_sim.
# This may be replaced when dependencies are built.
