# Empty dependencies file for papyrus_inspect.
# This may be replaced when dependencies are built.
