file(REMOVE_RECURSE
  "CMakeFiles/papyrus_inspect.dir/papyrus_inspect.cc.o"
  "CMakeFiles/papyrus_inspect.dir/papyrus_inspect.cc.o.d"
  "papyrus_inspect"
  "papyrus_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papyrus_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
