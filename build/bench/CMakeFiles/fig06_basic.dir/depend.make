# Empty dependencies file for fig06_basic.
# This may be replaced when dependencies are built.
