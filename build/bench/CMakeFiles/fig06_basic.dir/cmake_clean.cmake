file(REMOVE_RECURSE
  "CMakeFiles/fig06_basic.dir/fig06_basic.cc.o"
  "CMakeFiles/fig06_basic.dir/fig06_basic.cc.o.d"
  "fig06_basic"
  "fig06_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
