file(REMOVE_RECURSE
  "CMakeFiles/fig10_checkpoint.dir/fig10_checkpoint.cc.o"
  "CMakeFiles/fig10_checkpoint.dir/fig10_checkpoint.cc.o.d"
  "fig10_checkpoint"
  "fig10_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
