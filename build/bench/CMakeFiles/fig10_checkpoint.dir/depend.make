# Empty dependencies file for fig10_checkpoint.
# This may be replaced when dependencies are built.
