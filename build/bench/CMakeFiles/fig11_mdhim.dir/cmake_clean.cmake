file(REMOVE_RECURSE
  "CMakeFiles/fig11_mdhim.dir/fig11_mdhim.cc.o"
  "CMakeFiles/fig11_mdhim.dir/fig11_mdhim.cc.o.d"
  "fig11_mdhim"
  "fig11_mdhim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_mdhim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
