# Empty compiler generated dependencies file for fig11_mdhim.
# This may be replaced when dependencies are built.
