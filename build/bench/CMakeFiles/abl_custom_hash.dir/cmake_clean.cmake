file(REMOVE_RECURSE
  "CMakeFiles/abl_custom_hash.dir/abl_custom_hash.cc.o"
  "CMakeFiles/abl_custom_hash.dir/abl_custom_hash.cc.o.d"
  "abl_custom_hash"
  "abl_custom_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_custom_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
