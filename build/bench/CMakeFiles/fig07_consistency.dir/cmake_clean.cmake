file(REMOVE_RECURSE
  "CMakeFiles/fig07_consistency.dir/fig07_consistency.cc.o"
  "CMakeFiles/fig07_consistency.dir/fig07_consistency.cc.o.d"
  "fig07_consistency"
  "fig07_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
