# Empty dependencies file for fig07_consistency.
# This may be replaced when dependencies are built.
