file(REMOVE_RECURSE
  "CMakeFiles/fig13_meraculous.dir/fig13_meraculous.cc.o"
  "CMakeFiles/fig13_meraculous.dir/fig13_meraculous.cc.o.d"
  "fig13_meraculous"
  "fig13_meraculous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_meraculous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
