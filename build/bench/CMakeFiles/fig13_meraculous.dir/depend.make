# Empty dependencies file for fig13_meraculous.
# This may be replaced when dependencies are built.
