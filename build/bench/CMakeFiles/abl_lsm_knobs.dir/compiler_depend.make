# Empty compiler generated dependencies file for abl_lsm_knobs.
# This may be replaced when dependencies are built.
