file(REMOVE_RECURSE
  "CMakeFiles/abl_lsm_knobs.dir/abl_lsm_knobs.cc.o"
  "CMakeFiles/abl_lsm_knobs.dir/abl_lsm_knobs.cc.o.d"
  "abl_lsm_knobs"
  "abl_lsm_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lsm_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
