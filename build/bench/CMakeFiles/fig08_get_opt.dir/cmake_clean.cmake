file(REMOVE_RECURSE
  "CMakeFiles/fig08_get_opt.dir/fig08_get_opt.cc.o"
  "CMakeFiles/fig08_get_opt.dir/fig08_get_opt.cc.o.d"
  "fig08_get_opt"
  "fig08_get_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_get_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
