# Empty compiler generated dependencies file for fig08_get_opt.
# This may be replaced when dependencies are built.
