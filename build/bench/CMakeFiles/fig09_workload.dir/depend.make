# Empty dependencies file for fig09_workload.
# This may be replaced when dependencies are built.
