file(REMOVE_RECURSE
  "CMakeFiles/fig09_workload.dir/fig09_workload.cc.o"
  "CMakeFiles/fig09_workload.dir/fig09_workload.cc.o.d"
  "fig09_workload"
  "fig09_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
