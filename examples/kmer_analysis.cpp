// Genome assembly on PapyrusKV (paper §5.2, Figures 12–13): the Meraculous
// de Bruijn graph as a PapyrusKV database — k-mers as keys, two-letter
// extension codes as values, with the application's own hash installed for
// thread-data affinity.
//
//   $ ./build/examples/kmer_analysis
//
// Generates a synthetic genome, builds the distributed k-mer graph,
// traverses it into contigs, and verifies the assembly is exact.
#include <cstdio>
#include <cstdlib>

#include "apps/genome.h"
#include "apps/meraculous.h"
#include "core/papyruskv.h"
#include "net/runtime.h"

namespace {

// Aborts on an unexpected error code; examples should fail loudly.
void Check(int rc, const char* what) {
  if (rc != PAPYRUSKV_SUCCESS) {
    fprintf(stderr, "%s failed: %d\n", what, rc);
    abort();
  }
}

}  // namespace

int main() {
  using namespace papyrus;
  using namespace papyrus::apps;

  GenomeSpec spec;
  spec.k = 21;
  spec.contigs = 12;
  spec.contig_len = 600;
  spec.seed = 7;
  const SyntheticGenome genome = GenerateGenome(spec);
  printf("synthetic genome: %zu contigs, %zu k-mers (k=%d)\n",
         genome.segments.size(), genome.ufx.size(), spec.k);

  net::RunRanks(4, [&](net::RankContext& ctx) {
    Check(papyruskv_init(nullptr, nullptr, "nvme:/tmp/papyrus_kmer"), "papyruskv_init");

    std::unique_ptr<PapyrusKmerStore> store;
    if (!PapyrusKmerStore::Open("debruijn", &store).ok()) {
      fprintf(stderr, "open failed\n");
      return;
    }

    AssemblyResult result;
    Status s = AssembleRank(ctx, *store, genome, &result);
    if (!s.ok()) {
      fprintf(stderr, "[rank %d] assembly failed: %s\n", ctx.rank,
              s.ToString().c_str());
      return;
    }
    printf(
        "[rank %d] inserted %llu k-mers (%.3fs), traversed %zu contigs "
        "with %llu lookups (%.3fs)\n",
        ctx.rank, static_cast<unsigned long long>(result.kmers_inserted),
        result.construct_seconds, result.contigs.size(),
        static_cast<unsigned long long>(result.lookups),
        result.traverse_seconds);

    const bool ok = VerifyAssembly(ctx, genome, result.contigs);
    if (ctx.rank == 0) {
      printf("assembly %s ground truth\n",
             ok ? "MATCHES" : "DOES NOT MATCH");
    }

    store.reset();  // closes the database
    Check(papyruskv_finalize(), "papyruskv_finalize");
  });
  return 0;
}
