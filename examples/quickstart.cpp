// Quickstart: the PapyrusKV basics on an emulated 4-rank job.
//
//   $ ./build/examples/quickstart
//
// Demonstrates: init/finalize, open/close, put/get/delete, owner hashing,
// and the barrier that makes relaxed-mode writes globally visible.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/papyruskv.h"
#include "net/runtime.h"

namespace {

// Aborts on an unexpected error code; examples should fail loudly.
void Check(int rc, const char* what) {
  if (rc != PAPYRUSKV_SUCCESS) {
    fprintf(stderr, "%s failed: %d\n", what, rc);
    abort();
  }
}

}  // namespace

int main() {
  papyrus::net::RunRanks(4, [](papyrus::net::RankContext& ctx) {
    // Every rank initializes the runtime against the same repository.  The
    // "nvme:" prefix mounts the directory with the NVMe performance model
    // (no prefix = plain directory, no simulated delays).
    if (papyruskv_init(nullptr, nullptr, "nvme:/tmp/papyrus_quickstart")) {
      fprintf(stderr, "init failed\n");
      return;
    }

    // Collective open; all ranks get the same descriptor.
    papyruskv_db_t db;
    Check(papyruskv_open("quickstart", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR, nullptr,
                   &db), "papyruskv_open");

    // Each rank inserts a few pairs.  Keys are hashed to owner ranks, so a
    // put may stay local or stage for migration to a remote owner.
    for (int i = 0; i < 4; ++i) {
      const std::string key =
          "rank" + std::to_string(ctx.rank) + "/key" + std::to_string(i);
      const std::string value = "hello from rank " + std::to_string(ctx.rank);
      Check(papyruskv_put(db, key.data(), key.size(), value.data(), value.size()), "papyruskv_put");
    }

    // Relaxed consistency (the default): writes become globally visible at
    // synchronization points.  The barrier migrates and applies everything.
    Check(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), "papyruskv_barrier");

    // Now any rank can read any rank's pairs.
    const std::string peer_key =
        "rank" + std::to_string((ctx.rank + 1) % ctx.size()) + "/key0";
    char* value = nullptr;  // null → allocated from the PapyrusKV pool
    size_t vallen = 0;
    if (papyruskv_get(db, peer_key.data(), peer_key.size(), &value,
                      &vallen) == PAPYRUSKV_SUCCESS) {
      int owner = -1;
      Check(papyruskv_hash(db, peer_key.data(), peer_key.size(), &owner), "papyruskv_hash");
      printf("[rank %d] %s (owner rank %d) -> \"%.*s\"\n", ctx.rank,
             peer_key.c_str(), owner, static_cast<int>(vallen), value);
      Check(papyruskv_free(db, value), "papyruskv_free");
    }

    // Deletes are puts of a tombstone; they follow the same consistency
    // rules.
    const std::string my_key = "rank" + std::to_string(ctx.rank) + "/key0";
    Check(papyruskv_delete(db, my_key.data(), my_key.size()), "papyruskv_delete");
    Check(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), "papyruskv_barrier");

    char* gone = nullptr;
    size_t gone_len = 0;
    const int rc =
        papyruskv_get(db, peer_key.data(), peer_key.size(), &gone, &gone_len);
    if (ctx.rank == 0) {
      printf("[rank 0] after delete, get(%s) returns %s\n", peer_key.c_str(),
             papyrus::ErrorName(rc));
    }

    Check(papyruskv_close(db), "papyruskv_close");
    Check(papyruskv_finalize(), "papyruskv_finalize");
  });
  printf("quickstart done\n");
  return 0;
}
