// Asynchronous checkpoint/restart with redistribution (paper §4.2,
// Figure 5b–c).
//
//   $ ./build/examples/checkpoint_restart
//
// Job 1 (4 ranks): a "solver" fills a database, checkpoints it to the
// Lustre model *asynchronously* — it keeps iterating while the compaction
// thread drains the snapshot — then "crashes".
// Job 2 (3 ranks — the replacement allocation is smaller): restarts from
// the snapshot; because the rank count changed, the runtime redistributes
// every pair by replaying puts in parallel.
#include <cstdio>
#include <string>

#include "core/papyruskv.h"
#include "net/runtime.h"

namespace {

constexpr int kItems = 120;
const char* kSnapshot = "lustre:/tmp/papyrus_cr_snapshot";

std::string Key(int i) { return "particle/" + std::to_string(i); }
std::string Value(int i, int step) {
  return "pos=" + std::to_string(i * 3 + step) + ",vel=" +
         std::to_string(i % 7);
}

void Job1(papyrus::net::RankContext& ctx) {
  papyruskv_init(nullptr, nullptr, "nvme:/tmp/papyrus_cr_job1");
  papyruskv_db_t db;
  papyruskv_open("particles", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR, nullptr,
                 &db);

  // Step 0: each rank owns a contiguous block of particles.
  for (int i = ctx.rank; i < kItems; i += ctx.size()) {
    const std::string k = Key(i), v = Value(i, 0);
    papyruskv_put(db, k.data(), k.size(), v.data(), v.size());
  }

  // Asynchronous checkpoint: returns an event immediately.
  papyruskv_event_t ev;
  papyruskv_checkpoint(db, kSnapshot, &ev);

  // The solver keeps working while the snapshot drains in the background —
  // these step-1 updates are NOT part of the snapshot.
  for (int i = ctx.rank; i < kItems; i += ctx.size()) {
    const std::string k = Key(i), v = Value(i, 1);
    papyruskv_put(db, k.data(), k.size(), v.data(), v.size());
  }

  papyruskv_wait(db, ev);
  if (ctx.rank == 0) {
    printf("[job1] checkpoint complete; simulating a crash now\n");
  }
  // "Crash": tear down without another checkpoint.
  papyruskv_close(db);
  papyruskv_finalize();
}

void Job2(papyrus::net::RankContext& ctx) {
  papyruskv_init(nullptr, nullptr, "nvme:/tmp/papyrus_cr_job2");

  papyruskv_db_t db;
  papyruskv_event_t ev;
  // 3 ranks now vs 4 in the snapshot: the runtime detects the mismatch and
  // redistributes by replaying every pair through the put path, hashed
  // over the *new* rank count.
  papyruskv_restart(kSnapshot, "particles", PAPYRUSKV_RDWR, nullptr, &db,
                    &ev);
  papyruskv_wait(db, ev);

  int restored = 0, stale = 0;
  for (int i = ctx.rank; i < kItems; i += ctx.size()) {
    const std::string k = Key(i);
    char* value = nullptr;
    size_t vallen = 0;
    if (papyruskv_get(db, k.data(), k.size(), &value, &vallen) ==
        PAPYRUSKV_SUCCESS) {
      ++restored;
      // The snapshot must hold step-0 state: step-1 ran after the barrier.
      if (std::string(value, vallen) != Value(i, 0)) ++stale;
      papyruskv_free(db, value);
    }
  }
  printf("[job2 rank %d of %d] restored %d particles (%d stale)\n", ctx.rank,
         ctx.size(), restored, stale);

  papyruskv_close(db);
  papyruskv_finalize();
}

}  // namespace

int main() {
  printf("job 1: 4 ranks, checkpoint to %s\n", kSnapshot);
  papyrus::net::RunRanks(4, Job1);
  printf("job 2: 3 ranks, restart with redistribution\n");
  papyrus::net::RunRanks(3, Job2);
  printf("checkpoint/restart done\n");
  return 0;
}
