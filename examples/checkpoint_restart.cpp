// Asynchronous checkpoint/restart with redistribution (paper §4.2,
// Figure 5b–c).
//
//   $ ./build/examples/checkpoint_restart
//
// Job 1 (4 ranks): a "solver" fills a database, checkpoints it to the
// Lustre model *asynchronously* — it keeps iterating while the compaction
// thread drains the snapshot — then "crashes".
// Job 2 (3 ranks — the replacement allocation is smaller): restarts from
// the snapshot; because the rank count changed, the runtime redistributes
// every pair by replaying puts in parallel.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/papyruskv.h"
#include "net/runtime.h"

namespace {

// Aborts on an unexpected error code; examples should fail loudly.
void Check(int rc, const char* what) {
  if (rc != PAPYRUSKV_SUCCESS) {
    fprintf(stderr, "%s failed: %d\n", what, rc);
    abort();
  }
}

constexpr int kItems = 120;
const char* kSnapshot = "lustre:/tmp/papyrus_cr_snapshot";

std::string Key(int i) { return "particle/" + std::to_string(i); }
std::string Value(int i, int step) {
  return "pos=" + std::to_string(i * 3 + step) + ",vel=" +
         std::to_string(i % 7);
}

void Job1(papyrus::net::RankContext& ctx) {
  Check(papyruskv_init(nullptr, nullptr, "nvme:/tmp/papyrus_cr_job1"), "papyruskv_init");
  papyruskv_db_t db;
  Check(papyruskv_open("particles", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR, nullptr,
                 &db), "papyruskv_open");

  // Step 0: each rank owns a contiguous block of particles.
  for (int i = ctx.rank; i < kItems; i += ctx.size()) {
    const std::string k = Key(i), v = Value(i, 0);
    Check(papyruskv_put(db, k.data(), k.size(), v.data(), v.size()), "papyruskv_put");
  }

  // Asynchronous checkpoint: returns an event immediately.
  papyruskv_event_t ev;
  Check(papyruskv_checkpoint(db, kSnapshot, &ev), "papyruskv_checkpoint");

  // The solver keeps working while the snapshot drains in the background —
  // these step-1 updates are NOT part of the snapshot.
  for (int i = ctx.rank; i < kItems; i += ctx.size()) {
    const std::string k = Key(i), v = Value(i, 1);
    Check(papyruskv_put(db, k.data(), k.size(), v.data(), v.size()), "papyruskv_put");
  }

  Check(papyruskv_wait(db, ev), "papyruskv_wait");
  if (ctx.rank == 0) {
    printf("[job1] checkpoint complete; simulating a crash now\n");
  }
  // "Crash": tear down without another checkpoint.
  Check(papyruskv_close(db), "papyruskv_close");
  Check(papyruskv_finalize(), "papyruskv_finalize");
}

void Job2(papyrus::net::RankContext& ctx) {
  Check(papyruskv_init(nullptr, nullptr, "nvme:/tmp/papyrus_cr_job2"), "papyruskv_init");

  papyruskv_db_t db;
  papyruskv_event_t ev;
  // 3 ranks now vs 4 in the snapshot: the runtime detects the mismatch and
  // redistributes by replaying every pair through the put path, hashed
  // over the *new* rank count.
  Check(papyruskv_restart(kSnapshot, "particles", PAPYRUSKV_RDWR, nullptr, &db,
                    &ev), "papyruskv_restart");
  Check(papyruskv_wait(db, ev), "papyruskv_wait");

  int restored = 0, stale = 0;
  for (int i = ctx.rank; i < kItems; i += ctx.size()) {
    const std::string k = Key(i);
    char* value = nullptr;
    size_t vallen = 0;
    if (papyruskv_get(db, k.data(), k.size(), &value, &vallen) ==
        PAPYRUSKV_SUCCESS) {
      ++restored;
      // The snapshot must hold step-0 state: step-1 ran after the barrier.
      if (std::string(value, vallen) != Value(i, 0)) ++stale;
      Check(papyruskv_free(db, value), "papyruskv_free");
    }
  }
  printf("[job2 rank %d of %d] restored %d particles (%d stale)\n", ctx.rank,
         ctx.size(), restored, stale);

  Check(papyruskv_close(db), "papyruskv_close");
  Check(papyruskv_finalize(), "papyruskv_finalize");
}

}  // namespace

int main() {
  printf("job 1: 4 ranks, checkpoint to %s\n", kSnapshot);
  papyrus::net::RunRanks(4, Job1);
  printf("job 2: 3 ranks, restart with redistribution\n");
  papyrus::net::RunRanks(3, Job2);
  printf("checkpoint/restart done\n");
  return 0;
}
