// Zero-copy workflow (paper §4.1, Figure 5a): two coupled applications in
// one job share a database through the SSTables retained on NVM — the
// consumer re-composes the database by name with no data movement.
//
//   $ ./build/examples/coupled_workflow
//
// The "producer" is a simulation step writing per-cell state; the
// "consumer" is an analysis step reading it back.  In a real HPC workflow
// these would be two executables launched back-to-back in one job
// allocation; here they are two phases of the same rank function,
// separated by a full close.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/papyruskv.h"
#include "net/runtime.h"

namespace {

// Aborts on an unexpected error code; examples should fail loudly.
void Check(int rc, const char* what) {
  if (rc != PAPYRUSKV_SUCCESS) {
    fprintf(stderr, "%s failed: %d\n", what, rc);
    abort();
  }
}

constexpr int kRanks = 4;
constexpr int kCellsPerRank = 32;

std::string CellKey(int cell) { return "cell/" + std::to_string(cell); }

// Application 1: produce per-cell results.
void Producer(papyrus::net::RankContext& ctx) {
  papyruskv_db_t db;
  Check(papyruskv_open("simulation_state", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR,
                 nullptr, &db), "papyruskv_open");
  // A write-only phase: declaring it lets the runtime skip local-cache
  // maintenance (§3.2).
  Check(papyruskv_protect(db, PAPYRUSKV_WRONLY), "papyruskv_protect");

  for (int i = 0; i < kCellsPerRank; ++i) {
    const int cell = ctx.rank * kCellsPerRank + i;
    const std::string key = CellKey(cell);
    const std::string value =
        "state(cell=" + std::to_string(cell) + ", energy=" +
        std::to_string(cell * 0.5) + ")";
    Check(papyruskv_put(db, key.data(), key.size(), value.data(), value.size()), "papyruskv_put");
  }

  Check(papyruskv_protect(db, PAPYRUSKV_RDWR), "papyruskv_protect");
  // Close flushes all MemTables to SSTables: the database's on-NVM image
  // is complete and persists for the rest of the job.
  Check(papyruskv_close(db), "papyruskv_close");
  if (ctx.rank == 0) {
    printf("[producer] wrote %d cells and closed the database\n",
           kRanks * kCellsPerRank);
  }
}

// Application 2: reopen by name — zero copy — and analyze.
void Consumer(papyrus::net::RankContext& ctx) {
  papyruskv_db_t db;
  // No PAPYRUSKV_CREATE: the data must already be there.
  Check(papyruskv_open("simulation_state", PAPYRUSKV_RDWR, nullptr, &db), "papyruskv_open");
  // A read-only phase: enables the remote cache for repeated remote reads
  // (§3.2).
  Check(papyruskv_protect(db, PAPYRUSKV_RDONLY), "papyruskv_protect");

  int found = 0;
  // Every rank scans a strided slice of the global cell space.
  for (int cell = ctx.rank; cell < kRanks * kCellsPerRank; cell += kRanks) {
    const std::string key = CellKey(cell);
    char* value = nullptr;
    size_t vallen = 0;
    if (papyruskv_get(db, key.data(), key.size(), &value, &vallen) ==
        PAPYRUSKV_SUCCESS) {
      ++found;
      Check(papyruskv_free(db, value), "papyruskv_free");
    }
  }
  printf("[consumer rank %d] read %d cells produced by the previous app\n",
         ctx.rank, found);

  Check(papyruskv_protect(db, PAPYRUSKV_RDWR), "papyruskv_protect");
  Check(papyruskv_close(db), "papyruskv_close");
}

}  // namespace

int main() {
  papyrus::net::RunRanks(kRanks, [](papyrus::net::RankContext& ctx) {
    Check(papyruskv_init(nullptr, nullptr, "nvme:/tmp/papyrus_workflow"), "papyruskv_init");
    Producer(ctx);
    ctx.comm.Barrier();  // the job scheduler's gap between applications
    Consumer(ctx);
    Check(papyruskv_finalize(), "papyruskv_finalize");
  });
  printf("coupled workflow done\n");
  return 0;
}
