// Zero-copy workflow (paper §4.1, Figure 5a): two coupled applications in
// one job share a database through the SSTables retained on NVM — the
// consumer re-composes the database by name with no data movement.
//
//   $ ./build/examples/coupled_workflow
//
// The "producer" is a simulation step writing per-cell state; the
// "consumer" is an analysis step reading it back.  In a real HPC workflow
// these would be two executables launched back-to-back in one job
// allocation; here they are two phases of the same rank function,
// separated by a full close.
#include <cstdio>
#include <string>

#include "core/papyruskv.h"
#include "net/runtime.h"

namespace {

constexpr int kRanks = 4;
constexpr int kCellsPerRank = 32;

std::string CellKey(int cell) { return "cell/" + std::to_string(cell); }

// Application 1: produce per-cell results.
void Producer(papyrus::net::RankContext& ctx) {
  papyruskv_db_t db;
  papyruskv_open("simulation_state", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR,
                 nullptr, &db);
  // A write-only phase: declaring it lets the runtime skip local-cache
  // maintenance (§3.2).
  papyruskv_protect(db, PAPYRUSKV_WRONLY);

  for (int i = 0; i < kCellsPerRank; ++i) {
    const int cell = ctx.rank * kCellsPerRank + i;
    const std::string key = CellKey(cell);
    const std::string value =
        "state(cell=" + std::to_string(cell) + ", energy=" +
        std::to_string(cell * 0.5) + ")";
    papyruskv_put(db, key.data(), key.size(), value.data(), value.size());
  }

  papyruskv_protect(db, PAPYRUSKV_RDWR);
  // Close flushes all MemTables to SSTables: the database's on-NVM image
  // is complete and persists for the rest of the job.
  papyruskv_close(db);
  if (ctx.rank == 0) {
    printf("[producer] wrote %d cells and closed the database\n",
           kRanks * kCellsPerRank);
  }
}

// Application 2: reopen by name — zero copy — and analyze.
void Consumer(papyrus::net::RankContext& ctx) {
  papyruskv_db_t db;
  // No PAPYRUSKV_CREATE: the data must already be there.
  papyruskv_open("simulation_state", PAPYRUSKV_RDWR, nullptr, &db);
  // A read-only phase: enables the remote cache for repeated remote reads
  // (§3.2).
  papyruskv_protect(db, PAPYRUSKV_RDONLY);

  int found = 0;
  // Every rank scans a strided slice of the global cell space.
  for (int cell = ctx.rank; cell < kRanks * kCellsPerRank; cell += kRanks) {
    const std::string key = CellKey(cell);
    char* value = nullptr;
    size_t vallen = 0;
    if (papyruskv_get(db, key.data(), key.size(), &value, &vallen) ==
        PAPYRUSKV_SUCCESS) {
      ++found;
      papyruskv_free(db, value);
    }
  }
  printf("[consumer rank %d] read %d cells produced by the previous app\n",
         ctx.rank, found);

  papyruskv_protect(db, PAPYRUSKV_RDWR);
  papyruskv_close(db);
}

}  // namespace

int main() {
  papyrus::net::RunRanks(kRanks, [](papyrus::net::RankContext& ctx) {
    papyruskv_init(nullptr, nullptr, "nvme:/tmp/papyrus_workflow");
    Producer(ctx);
    ctx.comm.Barrier();  // the job scheduler's gap between applications
    Consumer(ctx);
    papyruskv_finalize();
  });
  printf("coupled workflow done\n");
  return 0;
}
