#include "sim/interconnect.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/timer.h"
#include "sim/device_model.h"

namespace papyrus::sim {
namespace {

class InterconnectTest : public ::testing::Test {
 protected:
  void SetUp() override { SetTimeScale(0.0); }
  void TearDown() override { SetTimeScale(0.0); }
};

TEST_F(InterconnectTest, TopologyMapsRanksToNodes) {
  Topology topo{.nranks = 10, .ranks_per_node = 4};
  EXPECT_EQ(topo.NumNodes(), 3);
  EXPECT_EQ(topo.NodeOf(0), 0);
  EXPECT_EQ(topo.NodeOf(3), 0);
  EXPECT_EQ(topo.NodeOf(4), 1);
  EXPECT_EQ(topo.NodeOf(9), 2);
  EXPECT_TRUE(topo.SameNode(0, 3));
  EXPECT_FALSE(topo.SameNode(3, 4));
}

TEST_F(InterconnectTest, CountsMessagesAndBytes) {
  Topology topo{.nranks = 4, .ranks_per_node = 2};
  Interconnect net(topo);
  net.Charge(0, 1, 100);
  net.Charge(0, 3, 200);
  EXPECT_EQ(net.messages(), 2u);
  EXPECT_EQ(net.bytes(), 300u);
  net.ResetCounters();
  EXPECT_EQ(net.messages(), 0u);
}

TEST_F(InterconnectTest, FreeAtZeroScale) {
  Topology topo{.nranks = 2, .ranks_per_node = 1};
  Interconnect net(topo);
  const uint64_t t0 = NowMicros();
  for (int i = 0; i < 1000; ++i) net.Charge(0, 1, 1 << 20);
  EXPECT_LT(NowMicros() - t0, 100000u);
}

TEST_F(InterconnectTest, IntraNodeCheaperThanInterNode) {
  SetTimeScale(4.0);
  Topology topo{.nranks = 4, .ranks_per_node = 2};
  Interconnect net(topo);

  // Delivery (propagation) delay: the returned value, in microseconds.
  const uint64_t intra_delay = net.Charge(0, 1, 64);  // same node
  const uint64_t inter_delay = net.Charge(0, 2, 64);  // cross node
  EXPECT_LT(intra_delay, inter_delay);
  // Sender-side occupancy for a large transfer: intra-node link is the
  // faster one.
  const uint64_t t0 = NowMicros();
  net.Charge(0, 1, 64 << 20);
  const uint64_t intra_us = NowMicros() - t0;
  const uint64_t t1 = NowMicros();
  net.Charge(0, 2, 64 << 20);
  const uint64_t inter_us = NowMicros() - t1;
  EXPECT_LT(intra_us, inter_us);
}

TEST_F(InterconnectTest, SenderDoesNotPayPropagationLatency) {
  // Fire-and-forget semantics: the sender's cost for a tiny message is the
  // injection overhead, orders of magnitude below the returned propagation
  // delay at a large scale.
  SetTimeScale(100000.0);  // latency 150ms, injection 30ms
  Topology topo{.nranks = 2, .ranks_per_node = 1};
  Interconnect net(topo);
  const uint64_t t0 = NowMicros();
  const uint64_t delay = net.Charge(0, 1, 8);
  const uint64_t sender_us = NowMicros() - t0;
  EXPECT_GE(delay, 140000u);      // ~150ms propagation returned
  EXPECT_LT(sender_us, 100000u);  // sender slept far less (≈30ms + noise)
}

TEST_F(InterconnectTest, NicCongestionSerializesBurst) {
  SetTimeScale(1.0);
  Topology topo{.nranks = 8, .ranks_per_node = 1};
  Interconnect net(topo);

  // Sequential: one 32 MB message from rank 1 to rank 0 ≈ 3.2ms transfer —
  // large enough that scheduler noise cannot blur the comparison below.
  const uint64_t t0 = NowMicros();
  net.Charge(1, 0, 32 << 20);
  const uint64_t single_us = NowMicros() - t0;

  // Burst: 7 ranks send 32 MB to rank 0 at once — its NIC serializes them,
  // so the slowest sender waits ≈ 7 × single.
  const uint64_t t1 = NowMicros();
  std::vector<std::thread> senders;
  for (int r = 1; r < 8; ++r) {
    senders.emplace_back([&, r] { net.Charge(r, 0, 32 << 20); });
  }
  for (auto& t : senders) t.join();
  const uint64_t burst_us = NowMicros() - t1;

  // 7 concurrent senders serialize on the receiver NIC; even with
  // scheduler noise the burst must take well over twice a single send.
  EXPECT_GT(burst_us, single_us * 2);
}

TEST_F(InterconnectTest, SelfSendIsFree) {
  SetTimeScale(1.0);
  Topology topo{.nranks = 2, .ranks_per_node = 1};
  Interconnect net(topo);
  const uint64_t t0 = NowMicros();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(net.Charge(1, 1, 8 << 20), 0u);
  }
  EXPECT_LT(NowMicros() - t0, 20000u);
}

}  // namespace
}  // namespace papyrus::sim
