#include "sim/storage.h"

#include <gtest/gtest.h>

#include "../util/temp_dir.h"

namespace papyrus::sim {
namespace {

using papyrus::testutil::TempDir;

TEST(StorageTest, WriteAndReadBack) {
  TempDir tmp;
  const std::string path = tmp.path() + "/f";
  ASSERT_TRUE(Storage::WriteStringToFile(path, "hello world").ok());
  std::string out;
  ASSERT_TRUE(Storage::ReadFileToString(path, &out).ok());
  EXPECT_EQ(out, "hello world");
}

TEST(StorageTest, AppendAccumulates) {
  TempDir tmp;
  const std::string path = tmp.path() + "/f";
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(Storage::NewWritableFile(path, &f).ok());
  ASSERT_TRUE(f->Append("abc").ok());
  ASSERT_TRUE(f->Append("def").ok());
  EXPECT_EQ(f->bytes_written(), 6u);
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Close().ok());
  std::string out;
  ASSERT_TRUE(Storage::ReadFileToString(path, &out).ok());
  EXPECT_EQ(out, "abcdef");
}

TEST(StorageTest, RandomAccessReads) {
  TempDir tmp;
  const std::string path = tmp.path() + "/f";
  ASSERT_TRUE(Storage::WriteStringToFile(path, "0123456789").ok());
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(Storage::NewRandomAccessFile(path, &f).ok());
  EXPECT_EQ(f->size(), 10u);
  char buf[4];
  Slice got;
  ASSERT_TRUE(f->Read(3, 4, buf, &got).ok());
  EXPECT_EQ(got.ToString(), "3456");
  // Read past EOF is short, not an error.
  ASSERT_TRUE(f->Read(8, 4, buf, &got).ok());
  EXPECT_EQ(got.ToString(), "89");
}

TEST(StorageTest, MissingFileErrors) {
  TempDir tmp;
  std::unique_ptr<RandomAccessFile> f;
  EXPECT_EQ(Storage::NewRandomAccessFile(tmp.path() + "/nope", &f).code(),
            PAPYRUSKV_IO_ERROR);
  std::string out;
  EXPECT_FALSE(Storage::ReadFileToString(tmp.path() + "/nope", &out).ok());
  EXPECT_FALSE(Storage::FileExists(tmp.path() + "/nope"));
}

TEST(StorageTest, CreateDirsIsRecursiveAndIdempotent) {
  TempDir tmp;
  const std::string deep = tmp.path() + "/a/b/c/d";
  ASSERT_TRUE(Storage::CreateDirs(deep).ok());
  ASSERT_TRUE(Storage::CreateDirs(deep).ok());
  ASSERT_TRUE(Storage::WriteStringToFile(deep + "/f", "x").ok());
  EXPECT_TRUE(Storage::FileExists(deep + "/f"));
}

TEST(StorageTest, ListDirSorted) {
  TempDir tmp;
  for (const char* n : {"charlie", "alpha", "bravo"}) {
    ASSERT_TRUE(Storage::WriteStringToFile(tmp.path() + "/" + n, "x").ok());
  }
  std::vector<std::string> names;
  ASSERT_TRUE(Storage::ListDir(tmp.path(), &names).ok());
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "bravo");
  EXPECT_EQ(names[2], "charlie");
}

TEST(StorageTest, RemoveDirRecursive) {
  TempDir tmp;
  const std::string sub = tmp.path() + "/sub";
  ASSERT_TRUE(Storage::CreateDirs(sub + "/nested").ok());
  ASSERT_TRUE(Storage::WriteStringToFile(sub + "/f1", "x").ok());
  ASSERT_TRUE(Storage::WriteStringToFile(sub + "/nested/f2", "y").ok());
  ASSERT_TRUE(Storage::RemoveDirRecursive(sub).ok());
  EXPECT_FALSE(Storage::FileExists(sub));
  // Removing a non-existent tree is OK (idempotent restarts).
  EXPECT_TRUE(Storage::RemoveDirRecursive(sub).ok());
}

TEST(StorageTest, RenameAndFileSize) {
  TempDir tmp;
  ASSERT_TRUE(Storage::WriteStringToFile(tmp.path() + "/a", "12345").ok());
  ASSERT_TRUE(Storage::RenameFile(tmp.path() + "/a", tmp.path() + "/b").ok());
  EXPECT_FALSE(Storage::FileExists(tmp.path() + "/a"));
  uint64_t size = 0;
  ASSERT_TRUE(Storage::GetFileSize(tmp.path() + "/b", &size).ok());
  EXPECT_EQ(size, 5u);
}

TEST(StorageTest, CopyFilePreservesContent) {
  TempDir tmp;
  std::string big(3 << 20, 'z');  // multiple 1 MB chunks
  big[0] = 'a';
  big[big.size() - 1] = 'b';
  ASSERT_TRUE(Storage::WriteStringToFile(tmp.path() + "/src", big).ok());
  ASSERT_TRUE(
      Storage::CopyFile(tmp.path() + "/src", tmp.path() + "/dst").ok());
  std::string out;
  ASSERT_TRUE(Storage::ReadFileToString(tmp.path() + "/dst", &out).ok());
  EXPECT_EQ(out, big);
}

}  // namespace
}  // namespace papyrus::sim
