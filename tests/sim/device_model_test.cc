#include "sim/device_model.h"

#include <gtest/gtest.h>

#include "common/timer.h"

namespace papyrus::sim {
namespace {

class DeviceModelTest : public ::testing::Test {
 protected:
  void SetUp() override { SetTimeScale(0.0); }
  void TearDown() override {
    SetTimeScale(0.0);
    DeviceRegistry::Instance().Clear();
  }
};

TEST_F(DeviceModelTest, ClassNamesRoundTrip) {
  for (DeviceClass c :
       {DeviceClass::kDram, DeviceClass::kNvme, DeviceClass::kSataSsd,
        DeviceClass::kBurstBuffer, DeviceClass::kLustre}) {
    EXPECT_EQ(ParseDeviceClass(DeviceClassName(c)), c);
  }
  EXPECT_EQ(ParseDeviceClass("unknown"), DeviceClass::kDram);
}

TEST_F(DeviceModelTest, CalibrationOrdering) {
  // The relations the reproduction depends on (DESIGN.md §1).
  const DevicePerf nvme = PerfFor(DeviceClass::kNvme);
  const DevicePerf ssd = PerfFor(DeviceClass::kSataSsd);
  const DevicePerf bb = PerfFor(DeviceClass::kBurstBuffer);
  const DevicePerf lustre = PerfFor(DeviceClass::kLustre);

  // Local NVM latency is far below Lustre's.
  EXPECT_LT(nvme.read_latency_us * 10, lustre.read_latency_us);
  EXPECT_LT(ssd.read_latency_us * 5, lustre.read_latency_us);
  // Striped targets have aggregate write bandwidth above a single SSD.
  EXPECT_GT(lustre.write_bw_mbps * lustre.stripes, ssd.write_bw_mbps);
  EXPECT_GT(bb.write_bw_mbps * bb.stripes, ssd.write_bw_mbps);
  // Burst buffer is network-attached: slower per-op than local NVMe.
  EXPECT_GT(bb.read_latency_us, nvme.read_latency_us);
}

TEST_F(DeviceModelTest, NoDelayAtZeroScale) {
  Device dev(DeviceClass::kLustre);
  const uint64_t t0 = NowMicros();
  for (int i = 0; i < 100; ++i) dev.ChargeRead(1 << 20);
  EXPECT_LT(NowMicros() - t0, 50000u);  // effectively free
  EXPECT_EQ(dev.read_ops(), 100u);
  EXPECT_EQ(dev.bytes_read(), 100u << 20);
}

TEST_F(DeviceModelTest, DelayScalesWithLatency) {
  SetTimeScale(1.0);
  Device lustre(DeviceClass::kLustre);
  Device nvme(DeviceClass::kNvme);

  const uint64_t t0 = NowMicros();
  for (int i = 0; i < 20; ++i) nvme.ChargeRead(64);
  const uint64_t nvme_us = NowMicros() - t0;

  const uint64_t t1 = NowMicros();
  for (int i = 0; i < 20; ++i) lustre.ChargeRead(64);
  const uint64_t lustre_us = NowMicros() - t1;

  // 20 small reads: ~200us on NVMe vs ~30ms on Lustre.
  EXPECT_GT(lustre_us, nvme_us * 5);
}

TEST_F(DeviceModelTest, BandwidthContention) {
  SetTimeScale(1.0);
  Device dev(DeviceClass::kSataSsd);  // 1 stripe, 400 MB/s write
  // Two 4 MB writes serialized on one channel ≈ 2 × 10ms.
  const uint64_t t0 = NowMicros();
  std::thread t([&] { dev.ChargeWrite(4 << 20); });
  dev.ChargeWrite(4 << 20);
  t.join();
  const uint64_t elapsed = NowMicros() - t0;
  EXPECT_GT(elapsed, 15000u);  // both paid: serialized, not parallel
}

TEST_F(DeviceModelTest, RegistrySharesDevicePerRoot) {
  auto& reg = DeviceRegistry::Instance();
  auto a = reg.GetOrCreate("/tmp/x", DeviceClass::kNvme);
  auto b = reg.GetOrCreate("/tmp/x", DeviceClass::kLustre);  // first wins
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(b->cls(), DeviceClass::kNvme);

  auto c = reg.GetOrCreate("/tmp/y", DeviceClass::kLustre);
  EXPECT_NE(a.get(), c.get());
}

TEST_F(DeviceModelTest, LookupUsesLongestPrefix) {
  auto& reg = DeviceRegistry::Instance();
  auto outer = reg.GetOrCreate("/tmp/repo", DeviceClass::kNvme);
  auto inner = reg.GetOrCreate("/tmp/repo/group1", DeviceClass::kLustre);
  EXPECT_EQ(reg.Lookup("/tmp/repo/group1/db/rank0/sst_1.data").get(),
            inner.get());
  EXPECT_EQ(reg.Lookup("/tmp/repo/group2/db").get(), outer.get());
  // Unregistered path → DRAM (no delay) device.
  EXPECT_EQ(reg.Lookup("/somewhere/else")->cls(), DeviceClass::kDram);
}

}  // namespace
}  // namespace papyrus::sim
