#include "apps/ufx.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../util/temp_dir.h"

namespace papyrus::apps {
namespace {

using papyrus::testutil::TempDir;

std::vector<UfxRecord> SortedByKmer(std::vector<UfxRecord> v) {
  std::sort(v.begin(), v.end(),
            [](const UfxRecord& a, const UfxRecord& b) {
              return a.kmer < b.kmer;
            });
  return v;
}

TEST(UfxTest, WriteReadRoundTrip) {
  TempDir tmp;
  GenomeSpec spec;
  spec.k = 15;
  spec.contigs = 4;
  spec.contig_len = 200;
  const SyntheticGenome g = GenerateGenome(spec);

  const std::string path = tmp.path() + "/test.ufx.bin";
  ASSERT_TRUE(WriteUfx(path, g.k, g.ufx).ok());

  int k = 0;
  std::vector<UfxRecord> loaded;
  ASSERT_TRUE(ReadUfx(path, &k, &loaded).ok());
  EXPECT_EQ(k, g.k);
  ASSERT_EQ(loaded.size(), g.ufx.size());
  const auto a = SortedByKmer(g.ufx);
  const auto b = SortedByKmer(loaded);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kmer, b[i].kmer);
    EXPECT_EQ(a[i].left, b[i].left);
    EXPECT_EQ(a[i].right, b[i].right);
  }
}

TEST(UfxTest, RejectsCorruption) {
  TempDir tmp;
  GenomeSpec spec;
  spec.k = 13;
  spec.contigs = 2;
  spec.contig_len = 100;
  const SyntheticGenome g = GenerateGenome(spec);
  const std::string path = tmp.path() + "/corrupt.ufx.bin";
  ASSERT_TRUE(WriteUfx(path, g.k, g.ufx).ok());

  std::string raw;
  ASSERT_TRUE(sim::Storage::ReadFileToString(path, &raw).ok());
  // Flip a base in some record.
  std::string flipped = raw;
  flipped[40] = flipped[40] == 'A' ? 'C' : 'A';
  ASSERT_TRUE(sim::Storage::WriteStringToFile(path, flipped).ok());
  int k;
  std::vector<UfxRecord> records;
  EXPECT_EQ(ReadUfx(path, &k, &records).code(), PAPYRUSKV_CORRUPTED);

  // Truncated file.
  ASSERT_TRUE(sim::Storage::WriteStringToFile(
      path, Slice(raw.data(), raw.size() / 2)).ok());
  EXPECT_FALSE(ReadUfx(path, &k, &records).ok());

  // Bad magic.
  std::string bad = raw;
  bad[0] ^= 0x20;
  ASSERT_TRUE(sim::Storage::WriteStringToFile(path, bad).ok());
  EXPECT_EQ(ReadUfx(path, &k, &records).code(), PAPYRUSKV_CORRUPTED);
}

TEST(UfxTest, WriterValidatesInput) {
  TempDir tmp;
  const std::string path = tmp.path() + "/bad.ufx.bin";
  std::vector<UfxRecord> records{{"ACGTA", 'X', 'C'}};
  // k mismatch.
  EXPECT_EQ(WriteUfx(path, 7, records).code(), PAPYRUSKV_INVALID_ARG);
  // Bad extension code.
  records[0] = {"ACGTA", 'Q', 'C'};
  EXPECT_EQ(WriteUfx(path, 5, records).code(), PAPYRUSKV_INVALID_ARG);
  // Bad k.
  EXPECT_EQ(WriteUfx(path, 0, records).code(), PAPYRUSKV_INVALID_ARG);
}

TEST(UfxTest, LoadOrGenerateCachesOnDisk) {
  TempDir tmp;
  const std::string path = tmp.path() + "/cached.ufx.bin";
  GenomeSpec spec;
  spec.k = 15;
  spec.contigs = 3;
  spec.contig_len = 150;
  spec.seed = 77;

  SyntheticGenome first;
  ASSERT_TRUE(LoadOrGenerateUfx(path, spec, &first).ok());
  EXPECT_TRUE(sim::Storage::FileExists(path));
  ASSERT_EQ(first.segments.size(), 3u);

  // Second call loads the file; segments are reconstructed by traversal
  // and must equal the generated ones as a set.
  SyntheticGenome second;
  ASSERT_TRUE(LoadOrGenerateUfx(path, spec, &second).ok());
  EXPECT_EQ(second.k, first.k);
  EXPECT_EQ(second.ufx.size(), first.ufx.size());
  auto a = first.segments, b = second.segments;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace papyrus::apps
