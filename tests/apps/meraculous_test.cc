#include "apps/meraculous.h"

#include <gtest/gtest.h>

#include "../util/temp_dir.h"
#include "common/mutex.h"
#include "core/papyruskv.h"
#include "net/runtime.h"
#include "sim/device_model.h"

namespace papyrus::apps {
namespace {

using papyrus::testutil::TempDir;

SyntheticGenome SmallGenome(uint64_t seed = 3) {
  GenomeSpec spec;
  spec.k = 15;
  spec.contigs = 6;
  spec.contig_len = 250;
  spec.seed = seed;
  return GenerateGenome(spec);
}

class MeraculousTest : public ::testing::Test {
 protected:
  void SetUp() override { sim::SetTimeScale(0.0); }
  void TearDown() override { sim::DeviceRegistry::Instance().Clear(); }
};

TEST_F(MeraculousTest, AssemblesExactlyOnPapyrusKv) {
  TempDir tmp{"meraculous_pkv"};
  const SyntheticGenome genome = SmallGenome();
  net::RunRanks(4, [&](net::RankContext& ctx) {
    ASSERT_EQ(papyruskv_init(nullptr, nullptr, tmp.path().c_str()),
              PAPYRUSKV_SUCCESS);
    std::unique_ptr<PapyrusKmerStore> store;
    ASSERT_TRUE(PapyrusKmerStore::Open("kmers", &store).ok());
    AssemblyResult result;
    ASSERT_TRUE(AssembleRank(ctx, *store, genome, &result).ok());
    EXPECT_GT(result.kmers_inserted, 0u);
    EXPECT_TRUE(VerifyAssembly(ctx, genome, result.contigs));
    store.reset();
    ASSERT_EQ(papyruskv_finalize(), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(MeraculousTest, AssemblesExactlyOnDsm) {
  const SyntheticGenome genome = SmallGenome(8);
  net::RunRanks(4, [&](net::RankContext& ctx) {
    std::unique_ptr<DsmKmerStore> store;
    ASSERT_TRUE(DsmKmerStore::Open(ctx, &store).ok());
    AssemblyResult result;
    ASSERT_TRUE(AssembleRank(ctx, *store, genome, &result).ok());
    EXPECT_TRUE(VerifyAssembly(ctx, genome, result.contigs));
  });
}

TEST_F(MeraculousTest, BothBackendsProduceIdenticalContigSets) {
  TempDir tmp{"meraculous_both"};
  const SyntheticGenome genome = SmallGenome(11);
  std::vector<std::string> pkv_contigs, dsm_contigs;
  Mutex mu("meraculous_test_mu");

  net::RunRanks(3, [&](net::RankContext& ctx) {
    ASSERT_EQ(papyruskv_init(nullptr, nullptr, tmp.path().c_str()),
              PAPYRUSKV_SUCCESS);
    std::unique_ptr<PapyrusKmerStore> pkv;
    ASSERT_TRUE(PapyrusKmerStore::Open("kmers2", &pkv).ok());
    AssemblyResult r1;
    ASSERT_TRUE(AssembleRank(ctx, *pkv, genome, &r1).ok());
    pkv.reset();

    std::unique_ptr<DsmKmerStore> dsm;
    ASSERT_TRUE(DsmKmerStore::Open(ctx, &dsm).ok());
    AssemblyResult r2;
    ASSERT_TRUE(AssembleRank(ctx, *dsm, genome, &r2).ok());

    {
      MutexLock lock(&mu);
      pkv_contigs.insert(pkv_contigs.end(), r1.contigs.begin(),
                         r1.contigs.end());
      dsm_contigs.insert(dsm_contigs.end(), r2.contigs.begin(),
                         r2.contigs.end());
    }
    ASSERT_EQ(papyruskv_finalize(), PAPYRUSKV_SUCCESS);
  });

  std::sort(pkv_contigs.begin(), pkv_contigs.end());
  std::sort(dsm_contigs.begin(), dsm_contigs.end());
  EXPECT_EQ(pkv_contigs, dsm_contigs);
  EXPECT_EQ(pkv_contigs.size(), genome.segments.size());
}

TEST_F(MeraculousTest, SingleRankAssembly) {
  TempDir tmp{"meraculous_single"};
  const SyntheticGenome genome = SmallGenome(13);
  net::RunRanks(1, [&](net::RankContext& ctx) {
    ASSERT_EQ(papyruskv_init(nullptr, nullptr, tmp.path().c_str()),
              PAPYRUSKV_SUCCESS);
    std::unique_ptr<PapyrusKmerStore> store;
    ASSERT_TRUE(PapyrusKmerStore::Open("kmers3", &store).ok());
    AssemblyResult result;
    ASSERT_TRUE(AssembleRank(ctx, *store, genome, &result).ok());
    EXPECT_EQ(result.contigs.size(), genome.segments.size());
    EXPECT_TRUE(VerifyAssembly(ctx, genome, result.contigs));
    store.reset();
    ASSERT_EQ(papyruskv_finalize(), PAPYRUSKV_SUCCESS);
  });
}

}  // namespace
}  // namespace papyrus::apps
