#include "apps/genome.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

namespace papyrus::apps {
namespace {

TEST(GenomeTest, GeneratesRequestedShape) {
  GenomeSpec spec;
  spec.k = 15;
  spec.contigs = 8;
  spec.contig_len = 300;
  const SyntheticGenome g = GenerateGenome(spec);
  EXPECT_EQ(g.k, 15);
  EXPECT_EQ(g.segments.size(), 8u);
  for (const auto& seg : g.segments) {
    EXPECT_EQ(seg.size(), 300u);
    for (char c : seg) {
      EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T') << c;
    }
  }
  // One UFX record per k-mer position.
  EXPECT_EQ(g.ufx.size(), 8u * (300 - 15 + 1));
}

TEST(GenomeTest, KmersAreGloballyUnique) {
  GenomeSpec spec;
  spec.k = 17;
  spec.contigs = 10;
  spec.contig_len = 400;
  const SyntheticGenome g = GenerateGenome(spec);
  std::unordered_set<std::string> seen;
  for (const auto& rec : g.ufx) {
    EXPECT_EQ(rec.kmer.size(), 17u);
    EXPECT_TRUE(seen.insert(rec.kmer).second) << "duplicate " << rec.kmer;
  }
}

TEST(GenomeTest, ExtensionCodesLinkTheGraph) {
  GenomeSpec spec;
  spec.k = 13;
  spec.contigs = 4;
  spec.contig_len = 200;
  const SyntheticGenome g = GenerateGenome(spec);
  std::unordered_map<std::string, const UfxRecord*> table;
  for (const auto& rec : g.ufx) table[rec.kmer] = &rec;

  // Exactly one seed ('X' left extension) per contig, and walking right
  // from each seed must reproduce the segment.
  const auto seeds = SeedRecords(g);
  ASSERT_EQ(seeds.size(), g.segments.size());
  std::unordered_set<std::string> truth(g.segments.begin(),
                                        g.segments.end());
  for (const UfxRecord* seed : seeds) {
    std::string contig = seed->kmer;
    std::string cur = seed->kmer;
    char right = seed->right;
    while (right != 'X') {
      cur.erase(0, 1);
      cur.push_back(right);
      contig.push_back(right);
      auto it = table.find(cur);
      ASSERT_NE(it, table.end()) << "broken chain at " << cur;
      right = it->second->right;
    }
    EXPECT_TRUE(truth.count(contig)) << "assembled contig not in genome";
  }
}

TEST(GenomeTest, DeterministicPerSeed) {
  GenomeSpec spec;
  spec.seed = 5;
  const SyntheticGenome a = GenerateGenome(spec);
  const SyntheticGenome b = GenerateGenome(spec);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i], b.segments[i]);
  }
  spec.seed = 6;
  const SyntheticGenome c = GenerateGenome(spec);
  EXPECT_NE(a.segments[0], c.segments[0]);
}

TEST(GenomeTest, UfxIsShuffled) {
  GenomeSpec spec;
  spec.contigs = 2;
  spec.contig_len = 500;
  const SyntheticGenome g = GenerateGenome(spec);
  // If records were in genome order, every consecutive pair would chain;
  // after shuffling only a tiny fraction should.
  int chained = 0;
  for (size_t i = 1; i < g.ufx.size(); ++i) {
    if (g.ufx[i].kmer.compare(0, g.ufx[i].kmer.size() - 1,
                              g.ufx[i - 1].kmer, 1,
                              g.ufx[i - 1].kmer.size() - 1) == 0) {
      ++chained;
    }
  }
  EXPECT_LT(chained, static_cast<int>(g.ufx.size() / 10));
}

}  // namespace
}  // namespace papyrus::apps
