// Test helper: a unique temporary directory removed on destruction.
#pragma once

#include <atomic>
#include <cstdlib>
#include <string>

#include "sim/storage.h"

namespace papyrus::testutil {

class TempDir {
 public:
  explicit TempDir(const std::string& tag = "papyrus") {
    static std::atomic<uint64_t> counter{0};
    const char* base = std::getenv("TMPDIR");
    path_ = std::string(base && *base ? base : "/tmp") + "/" + tag + "_" +
            std::to_string(getpid()) + "_" +
            std::to_string(counter.fetch_add(1));
    sim::Storage::RemoveDirRecursive(path_).IgnoreError();
    sim::Storage::CreateDirs(path_).IgnoreError();
  }

  // Best-effort cleanup; a leftover temp dir is not a test failure.
  ~TempDir() { sim::Storage::RemoveDirRecursive(path_).IgnoreError(); }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace papyrus::testutil
