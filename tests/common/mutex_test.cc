// Tests for the annotated Mutex layer and the runtime lock-order
// validator (common/mutex.h).  tests/CMakeLists.txt compiles this file
// with PAPYRUS_LOCK_ORDER_DEBUG=1 so the validator is active under every
// build type — the death tests below are the proof that an acquisition-
// order inversion aborts instead of deadlocking in production.
#include "common/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace papyrus {
namespace {

class MutexTest : public ::testing::Test {
 protected:
  // The order graph is process-global; start every test from a clean one
  // so edges recorded by a previous test cannot leak in.
  void SetUp() override { lockorder::ResetForTest(); }
  void TearDown() override { lockorder::ResetForTest(); }
};

TEST_F(MutexTest, MutexLockExcludesConcurrentCriticalSections) {
  Mutex mu("test_counter_mu");
  int counter = 0;  // guarded by mu (local, so annotated by comment only)
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 4000);
}

TEST_F(MutexTest, ConsistentAcquisitionOrderPasses) {
  // A→B→C taken in the same order from several threads: the validator
  // records the edges once and stays silent.
  Mutex a("order_a"), b("order_b"), c("order_c");
  std::vector<std::thread> threads;
  threads.reserve(3);
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        MutexLock la(&a);
        MutexLock lb(&b);
        MutexLock lc(&c);
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST_F(MutexTest, TryLockReflectsContention) {
  Mutex mu("trylock_mu");
  ASSERT_TRUE(mu.TryLock());
  std::thread contender([&] { EXPECT_FALSE(mu.TryLock()); });
  contender.join();
  mu.Unlock();
}

TEST_F(MutexTest, SharedMutexAllowsParallelReaders) {
  SharedMutex mu("rw_mu");
  std::atomic<int> readers_inside{0};
  std::atomic<bool> all_overlapped{false};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      ReaderMutexLock lock(&mu);
      readers_inside.fetch_add(1);
      // Wait (bounded) until every reader is inside the shared section at
      // once — possible only if the lock admits parallel readers.  An
      // exclusive lock would admit one thread at a time and the count
      // would never reach 4.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (std::chrono::steady_clock::now() < deadline) {
        if (readers_inside.load() == 4) {
          all_overlapped = true;
          break;
        }
        std::this_thread::yield();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(all_overlapped) << "readers never overlapped — not shared?";
}

TEST_F(MutexTest, CondVarWaitWakesOnNotify) {
  Mutex mu("cv_mu");
  CondVar cv;
  bool ready = false;  // guarded by mu
  std::thread waker([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    EXPECT_TRUE(ready);
  }
  waker.join();
}

TEST_F(MutexTest, CondVarWaitForMicrosTimesOut) {
  Mutex mu("cv_timeout_mu");
  CondVar cv;
  MutexLock lock(&mu);
  // Nobody notifies, so every wait must eventually time out; tolerate a
  // bounded number of spurious wakeups (which report as signals).
  bool signalled = cv.WaitForMicros(&mu, 1000);
  for (int i = 0; signalled && i < 10; ++i) {
    signalled = cv.WaitForMicros(&mu, 1000);
  }
  EXPECT_FALSE(signalled);
}

#if PAPYRUS_LOCK_ORDER_DEBUG && defined(GTEST_HAS_DEATH_TEST)

using MutexDeathTest = MutexTest;

// EXPECT_DEATH is a macro: top-level commas (e.g. `Mutex a, b;`) split its
// arguments, so each death body lives in a helper function.
void InversionAB() {
  Mutex a("inv_a");
  Mutex b("inv_b");
  {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  {
    MutexLock lb(&b);
    MutexLock la(&a);  // inversion
  }
}

TEST_F(MutexDeathTest, AcquisitionOrderInversionAborts) {
  // Record A-then-B, then take B-then-A: the second order closes a cycle — a real
  // deadlock under the right interleaving — and must abort loudly even
  // though this single-threaded schedule would survive.
  EXPECT_DEATH(InversionAB(), "lock acquisition order inversion");
}

void InversionNamed() {
  Mutex rotate("diag_rotate_mu");
  Mutex table("diag_table_mu");
  {
    MutexLock lr(&rotate);
    MutexLock lt(&table);
  }
  {
    MutexLock lt(&table);
    MutexLock lr(&rotate);
  }
}

TEST_F(MutexDeathTest, InversionDiagnosticNamesBothOrders) {
  // The report must show the conflicting order with the mutex names so the
  // fix (reorder to the canonical order) is obvious from the log alone.
  EXPECT_DEATH(InversionNamed(), "diag_rotate_mu");
}

void RecursiveAcquire() {
  Mutex mu("recursive_mu");
  mu.Lock();
  mu.Lock();
}

TEST_F(MutexDeathTest, RecursiveAcquisitionAborts) {
  // std::mutex would deadlock silently here; the validator reports instead.
  EXPECT_DEATH(RecursiveAcquire(), "re-acquires mutex");
}

void ThreeLockCycle() {
  Mutex a("cyc_a");
  Mutex b("cyc_b");
  Mutex c("cyc_c");
  {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  {
    MutexLock lb(&b);
    MutexLock lc(&c);
  }
  {
    MutexLock lc(&c);
    MutexLock la(&a);  // closes the a -> b -> c -> a cycle
  }
}

TEST_F(MutexDeathTest, ThreeLockCycleAborts) {
  // Cycles longer than two locks are caught by the same path search.
  EXPECT_DEATH(ThreeLockCycle(), "lock acquisition order inversion");
}

#endif  // PAPYRUS_LOCK_ORDER_DEBUG && GTEST_HAS_DEATH_TEST

TEST_F(MutexTest, DestroyedMutexDropsItsOrderEdges) {
  // A destroyed mutex's address may be reused; its edges must not outlive
  // it.  Take A→B, destroy both, then a fresh pair at (potentially) the
  // same addresses in the opposite order must pass.
  auto* a = new Mutex("reuse_a");
  auto* b = new Mutex("reuse_b");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  delete b;
  delete a;
  Mutex c("reuse_c"), d("reuse_d");
  {
    MutexLock ld(&d);
    MutexLock lc(&c);  // any order is fine: the old edges are gone
  }
}

}  // namespace
}  // namespace papyrus
