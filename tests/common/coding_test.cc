#include "common/coding.h"

#include <gtest/gtest.h>

namespace papyrus {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  for (uint32_t v : {0u, 1u, 0x12345678u, 0xffffffffu}) {
    char buf[4];
    EncodeFixed32(buf, v);
    EXPECT_EQ(DecodeFixed32(buf), v);
  }
}

TEST(CodingTest, Fixed32IsLittleEndian) {
  char buf[4];
  EncodeFixed32(buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[1], 0x03);
  EXPECT_EQ(buf[2], 0x02);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(CodingTest, Fixed64RoundTrip) {
  for (uint64_t v : {0ull, 1ull, 0x123456789abcdef0ull, ~0ull}) {
    char buf[8];
    EncodeFixed64(buf, v);
    EXPECT_EQ(DecodeFixed64(buf), v);
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("alpha"));
  PutLengthPrefixed(&buf, Slice(""));
  PutLengthPrefixed(&buf, Slice("b\0c", 3));

  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a.ToString(), "alpha");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.ToString(), std::string("b\0c", 3));
  EXPECT_TRUE(in.empty());
  EXPECT_FALSE(GetLengthPrefixed(&in, &a));  // exhausted
}

TEST(CodingTest, TruncationDetected) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("payload"));
  // Chop the payload: the reader must reject, not over-read.
  Slice in(buf.data(), buf.size() - 3);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
  // Chop inside the length header.
  Slice in2(buf.data(), 2);
  EXPECT_FALSE(GetLengthPrefixed(&in2, &out));
}

TEST(CodingTest, GetFixedAdvances) {
  std::string buf;
  PutFixed32(&buf, 7);
  PutFixed64(&buf, 9);
  Slice in(buf);
  uint32_t a = 0;
  uint64_t b = 0;
  ASSERT_TRUE(GetFixed32(&in, &a));
  ASSERT_TRUE(GetFixed64(&in, &b));
  EXPECT_EQ(a, 7u);
  EXPECT_EQ(b, 9u);
  EXPECT_TRUE(in.empty());
}

}  // namespace
}  // namespace papyrus
