#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace papyrus {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32C check value for "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xe3069283u);
  // Empty input.
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32Test, Incremental) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  const uint32_t part1 = Crc32c(data.data(), 10);
  const uint32_t part2 = Crc32c(data.data() + 10, data.size() - 10, part1);
  EXPECT_EQ(whole, part2);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(256, 'x');
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t bit : {0u, 7u, 1000u, 2047u}) {
    std::string mutated = data;
    mutated[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    EXPECT_NE(Crc32c(mutated.data(), mutated.size()), clean) << bit;
  }
}

TEST(Crc32Test, MaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);
  }
}

}  // namespace
}  // namespace papyrus
