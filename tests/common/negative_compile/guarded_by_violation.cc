// Negative-compile fixture: this file must FAIL to compile under Clang
// with -Werror=thread-safety (tests/CMakeLists.txt registers it as a
// WILL_FAIL ctest when that toolchain is available).  If it ever starts
// compiling, the GUARDED_BY enforcement is silently off and the whole
// annotation layer is decorative.
//
// Under GCC the annotations are no-ops, so this file is never built there.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  // BUG (deliberate): writes balance_ without holding mu_.
  void Deposit(int amount) { balance_ += amount; }

  int Read() {
    papyrus::MutexLock lock(&mu_);
    return balance_;
  }

 private:
  papyrus::Mutex mu_{"negative_account_mu"};
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int NegativeCompileEntry() {
  Account a;
  a.Deposit(1);
  return a.Read();
}
