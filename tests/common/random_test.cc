#include "common/random.h"

#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <vector>

namespace papyrus {
namespace {

TEST(RandomTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    EXPECT_NE(va, c.Next());  // overwhelmingly likely
  }
}

TEST(RandomTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliFrequency) {
  Rng rng(3);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(RandomTest, RandomKeyAlphabetMatchesPaper) {
  // §5.2: random strings of letters and digits.
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const std::string key = RandomKey(rng, 16);
    ASSERT_EQ(key.size(), 16u);
    for (char c : key) {
      EXPECT_TRUE(isalnum(static_cast<unsigned char>(c))) << c;
    }
  }
}

TEST(RandomTest, RandomKeysMostlyDistinct) {
  Rng rng(5);
  std::set<std::string> keys;
  for (int i = 0; i < 1000; ++i) keys.insert(RandomKey(rng, 16));
  EXPECT_EQ(keys.size(), 1000u);
}

TEST(RandomTest, PatternValueDeterministic) {
  EXPECT_EQ(PatternValue(9, 64), PatternValue(9, 64));
  EXPECT_NE(PatternValue(9, 64), PatternValue(10, 64));
  EXPECT_EQ(PatternValue(9, 64).size(), 64u);
  EXPECT_EQ(PatternValue(9, 0).size(), 0u);
}


TEST(RandomTest, ZipfianRangeAndSkew) {
  Rng rng(6);
  Zipfian zipf(100, 0.99);
  std::vector<int> counts(100, 0);
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 100u);
    counts[v]++;
  }
  // The hottest item dominates; the head outweighs the tail heavily.
  EXPECT_GT(counts[0], counts[50] * 5);
  int head = 0, tail = 0;
  for (int i = 0; i < 10; ++i) head += counts[i];
  for (int i = 90; i < 100; ++i) tail += counts[i];
  EXPECT_GT(head, tail * 4);
}

TEST(RandomTest, ZipfianLowThetaIsFlatter) {
  Rng rng(7);
  Zipfian steep(50, 0.99), flat(50, 0.2);
  int steep_top = 0, flat_top = 0;
  for (int i = 0; i < 20000; ++i) {
    if (steep.Next(rng) == 0) ++steep_top;
    if (flat.Next(rng) == 0) ++flat_top;
  }
  EXPECT_GT(steep_top, flat_top);
}

}  // namespace
}  // namespace papyrus
