#include "common/ring_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace papyrus {
namespace {

TEST(RingQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(RingQueue<int>(1).capacity(), 1u);
  EXPECT_EQ(RingQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(RingQueue<int>(8).capacity(), 8u);
  EXPECT_EQ(RingQueue<int>(9).capacity(), 16u);
}

TEST(RingQueueTest, FifoOrder) {
  RingQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(i));
  for (int i = 0; i < 8; ++i) {
    auto v = q.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(RingQueueTest, FullAndEmpty) {
  RingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: fixed size, paper §2.4
  EXPECT_EQ(*q.TryPop(), 1);
  EXPECT_TRUE(q.TryPush(3));   // slot freed
  EXPECT_EQ(*q.TryPop(), 2);
  EXPECT_EQ(*q.TryPop(), 3);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(RingQueueTest, WrapsAroundManyTimes) {
  RingQueue<int> q(4);
  for (int round = 0; round < 1000; ++round) {
    EXPECT_TRUE(q.TryPush(round));
    auto v = q.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, round);
  }
}

TEST(RingQueueTest, MoveOnlyPayload) {
  RingQueue<std::unique_ptr<int>> q(4);
  EXPECT_TRUE(q.TryPush(std::make_unique<int>(42)));
  auto v = q.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

TEST(RingQueueTest, ConcurrentProducersConsumers) {
  // MPMC smoke test: every pushed value is popped exactly once.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 20000;
  RingQueue<uint64_t> q(64);
  std::atomic<uint64_t> pop_sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t v = static_cast<uint64_t>(p) * kPerProducer + i + 1;
        while (!q.TryPush(v)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        if (popped.load() >= kProducers * kPerProducer) break;
        auto v = q.TryPop();
        if (!v) {
          std::this_thread::yield();
          continue;
        }
        pop_sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Drain stragglers (consumers may exit early once the count is reached).
  while (auto v = q.TryPop()) {
    pop_sum.fetch_add(*v);
    popped.fetch_add(1);
  }

  const uint64_t n = static_cast<uint64_t>(kProducers) * kPerProducer;
  EXPECT_EQ(popped.load(), static_cast<int>(n));
  EXPECT_EQ(pop_sum.load(), n * (n + 1) / 2);
}

TEST(BlockingRingQueueTest, PushBlocksUntilSlotFrees) {
  BlockingRingQueue<int> q(1);
  q.Push(1);
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    q.Push(2);  // must block: capacity 1
    second_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(q.Pop(), 1);  // frees the slot
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.Pop(), 2);
}

TEST(BlockingRingQueueTest, PopForTimesOut) {
  BlockingRingQueue<int> q(4);
  auto v = q.PopFor(std::chrono::milliseconds(20));
  EXPECT_FALSE(v.has_value());
  q.Push(9);
  v = q.PopFor(std::chrono::milliseconds(20));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
}

TEST(BlockingRingQueueTest, ProducerConsumerHandoff) {
  BlockingRingQueue<int> q(4);
  constexpr int kN = 10000;
  std::thread consumer([&] {
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(q.Pop(), i);
    }
  });
  for (int i = 0; i < kN; ++i) q.Push(i);
  consumer.join();
}

}  // namespace
}  // namespace papyrus
