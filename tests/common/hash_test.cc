#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace papyrus {
namespace {

TEST(HashTest, Fnv1aKnownVector) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ull);
  // Deterministic and input-sensitive.
  EXPECT_EQ(Fnv1a64("a", 1), Fnv1a64("a", 1));
  EXPECT_NE(Fnv1a64("a", 1), Fnv1a64("b", 1));
  EXPECT_NE(Fnv1a64("ab", 2), Fnv1a64("ba", 2));
}

TEST(HashTest, Mix64IsBijectiveLooking) {
  // Distinct inputs should stay distinct after mixing (spot check).
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 1000; ++i) outs.insert(Mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

TEST(HashTest, OwnerDistributionIsRoughlyUniform) {
  // Owner-rank assignment (hash % nranks) should spread random 16B keys
  // evenly — the paper's load-balance premise for uniform keys.
  constexpr int kRanks = 16;
  constexpr int kKeys = 16000;
  int counts[kRanks] = {};
  Rng rng(42);
  for (int i = 0; i < kKeys; ++i) {
    std::string key = RandomKey(rng, 16);
    counts[BuiltinKeyHash(key.data(), key.size()) % kRanks]++;
  }
  const double expected = static_cast<double>(kKeys) / kRanks;
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_GT(counts[r], expected * 0.8) << "rank " << r;
    EXPECT_LT(counts[r], expected * 1.2) << "rank " << r;
  }
}

TEST(HashTest, CustomHashSignatureIsUsable) {
  KeyHashFn fn = +[](const char* key, size_t keylen) -> uint64_t {
    // A "first byte" affinity hash like an application might install.
    return keylen == 0 ? 0 : static_cast<uint64_t>(key[0]);
  };
  EXPECT_EQ(fn("A", 1), 65u);
}

}  // namespace
}  // namespace papyrus
