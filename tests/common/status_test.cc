#include "common/status.h"

#include <gtest/gtest.h>

namespace papyrus {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), PAPYRUSKV_SUCCESS);
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, NotFoundRoundTrip) {
  Status s = Status::NotFound("key k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), PAPYRUSKV_NOT_FOUND);
  EXPECT_EQ(s.ToString(), "PAPYRUSKV_NOT_FOUND: key k");
}

TEST(StatusTest, ToStringWithoutMessage) {
  EXPECT_EQ(Status(PAPYRUSKV_IO_ERROR).ToString(), "PAPYRUSKV_IO_ERROR");
}

TEST(StatusTest, ErrorNameCoversAllCodes) {
  for (int32_t code = -12; code <= 0; ++code) {
    EXPECT_STRNE(ErrorName(code), "PAPYRUSKV_UNKNOWN") << code;
  }
  EXPECT_STREQ(ErrorName(-999), "PAPYRUSKV_UNKNOWN");
}

TEST(StatusTest, FactoryHelpersCarryCodes) {
  EXPECT_EQ(Status::InvalidArg("x").code(), PAPYRUSKV_INVALID_ARG);
  EXPECT_EQ(Status::IOError("x").code(), PAPYRUSKV_IO_ERROR);
  EXPECT_EQ(Status::Corrupted("x").code(), PAPYRUSKV_CORRUPTED);
  EXPECT_EQ(Status::Network("x").code(), PAPYRUSKV_NETWORK_ERROR);
  EXPECT_EQ(Status::Protected("x").code(), PAPYRUSKV_PROTECTED);
}

}  // namespace
}  // namespace papyrus
