#include "common/slice.h"

#include <gtest/gtest.h>

namespace papyrus {
namespace {

TEST(SliceTest, ConstructionForms) {
  EXPECT_EQ(Slice().size(), 0u);
  EXPECT_TRUE(Slice().empty());
  std::string s = "hello";
  EXPECT_EQ(Slice(s).size(), 5u);
  EXPECT_EQ(Slice("abc").size(), 3u);
  EXPECT_EQ(Slice("abc\0def", 7).size(), 7u);  // embedded NULs preserved
}

TEST(SliceTest, CompareIsByteLexicographic) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(Slice("ab").compare(Slice("ab")), 0);
  // Prefix sorts first.
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("abc").compare(Slice("ab")), 0);
  // Unsigned byte comparison: 0xFF > 0x00.
  const char hi[] = {static_cast<char>(0xff)};
  const char lo[] = {0x01};
  EXPECT_GT(Slice(hi, 1).compare(Slice(lo, 1)), 0);
}

TEST(SliceTest, EqualityAndOrdering) {
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
  EXPECT_TRUE(Slice("a") < Slice("b"));
}

TEST(SliceTest, RemovePrefix) {
  Slice s("abcdef");
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
  s.remove_prefix(4);
  EXPECT_TRUE(s.empty());
}

TEST(SliceTest, StartsWith) {
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_TRUE(Slice("abc").starts_with(Slice("")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
}

}  // namespace
}  // namespace papyrus
