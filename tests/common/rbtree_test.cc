// Property tests for the red-black tree backing the MemTable (paper §2.4).
// Each random operation sequence is cross-checked against std::map and the
// red-black invariants are re-verified.
#include "common/rbtree.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"

namespace papyrus {
namespace {

TEST(RbTreeTest, EmptyTree) {
  RbTree<int, int> t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.Find(1), nullptr);
  EXPECT_FALSE(t.Erase(1));
  EXPECT_FALSE(t.Begin().Valid());
  EXPECT_GE(t.CheckInvariants(), 0);
}

TEST(RbTreeTest, InsertFindErase) {
  RbTree<int, std::string> t;
  EXPECT_TRUE(t.InsertOrAssign(2, "two"));
  EXPECT_TRUE(t.InsertOrAssign(1, "one"));
  EXPECT_TRUE(t.InsertOrAssign(3, "three"));
  EXPECT_EQ(t.size(), 3u);
  ASSERT_NE(t.Find(2), nullptr);
  EXPECT_EQ(*t.Find(2), "two");
  EXPECT_TRUE(t.Erase(2));
  EXPECT_EQ(t.Find(2), nullptr);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_GE(t.CheckInvariants(), 0);
}

TEST(RbTreeTest, InsertOrAssignReplaces) {
  RbTree<std::string, int> t;
  EXPECT_TRUE(t.InsertOrAssign("k", 1));
  EXPECT_FALSE(t.InsertOrAssign("k", 2));  // replacement, not insertion
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.Find("k"), 2);
}

TEST(RbTreeTest, InOrderIterationIsSorted) {
  RbTree<int, int> t;
  for (int v : {5, 3, 8, 1, 4, 7, 9, 2, 6}) t.InsertOrAssign(v, v * 10);
  int expect = 1;
  for (auto it = t.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key(), expect);
    EXPECT_EQ(it.value(), expect * 10);
    ++expect;
  }
  EXPECT_EQ(expect, 10);
}

TEST(RbTreeTest, LowerBound) {
  RbTree<int, int> t;
  for (int v : {10, 20, 30}) t.InsertOrAssign(v, v);
  EXPECT_EQ(t.LowerBound(5).key(), 10);
  EXPECT_EQ(t.LowerBound(10).key(), 10);
  EXPECT_EQ(t.LowerBound(11).key(), 20);
  EXPECT_EQ(t.LowerBound(30).key(), 30);
  EXPECT_FALSE(t.LowerBound(31).Valid());
}

TEST(RbTreeTest, AscendingInsertStaysBalanced) {
  // The classic degenerate case for unbalanced BSTs.
  RbTree<int, int> t;
  constexpr int kN = 4096;
  for (int i = 0; i < kN; ++i) {
    t.InsertOrAssign(i, i);
  }
  const int black_height = t.CheckInvariants();
  ASSERT_GT(black_height, 0);
  // Height of an RB tree is <= 2*log2(n+1); black height <= log2(n)+1.
  EXPECT_LE(black_height, 14);
}

TEST(RbTreeTest, MoveConstructor) {
  RbTree<int, int> a;
  a.InsertOrAssign(1, 10);
  a.InsertOrAssign(2, 20);
  RbTree<int, int> b(std::move(a));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(*b.Find(1), 10);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): documented
  EXPECT_GE(b.CheckInvariants(), 0);
}

// Randomized differential test against std::map, re-checking invariants.
class RbTreeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RbTreeFuzzTest, MatchesStdMapUnderRandomOps) {
  Rng rng(GetParam());
  RbTree<uint32_t, uint32_t> tree;
  std::map<uint32_t, uint32_t> ref;
  constexpr int kOps = 4000;
  constexpr uint32_t kKeySpace = 512;  // small space → many collisions

  for (int i = 0; i < kOps; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.Uniform(kKeySpace));
    const uint32_t val = static_cast<uint32_t>(rng.Next());
    switch (rng.Uniform(3)) {
      case 0: {  // insert/assign
        const bool fresh = tree.InsertOrAssign(key, val);
        const bool expect_fresh = ref.find(key) == ref.end();
        ref[key] = val;
        EXPECT_EQ(fresh, expect_fresh);
        break;
      }
      case 1: {  // erase
        EXPECT_EQ(tree.Erase(key), ref.erase(key) > 0);
        break;
      }
      case 2: {  // lookup
        auto it = ref.find(key);
        uint32_t* got = tree.Find(key);
        if (it == ref.end()) {
          EXPECT_EQ(got, nullptr);
        } else {
          ASSERT_NE(got, nullptr);
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
    }
    if (i % 500 == 0) {
      ASSERT_GE(tree.CheckInvariants(), 0) << "violated at op " << i;
    }
  }

  ASSERT_GE(tree.CheckInvariants(), 0);
  EXPECT_EQ(tree.size(), ref.size());
  // Full in-order comparison.
  auto expect = ref.begin();
  for (auto it = tree.Begin(); it.Valid(); it.Next(), ++expect) {
    ASSERT_NE(expect, ref.end());
    EXPECT_EQ(it.key(), expect->first);
    EXPECT_EQ(it.value(), expect->second);
  }
  EXPECT_EQ(expect, ref.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbTreeFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace papyrus
