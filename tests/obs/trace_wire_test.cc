// Wire-format compatibility for the optional trace-context header
// (core/wire.h): payloads written without a context must stay
// byte-identical to the pre-trace encoding (so old traces of bytes decode
// unchanged), payloads with a context must round-trip it through all four
// message kinds, and a truncated header must be rejected rather than
// misparsed as a legacy body.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/coding.h"
#include "core/wire.h"

namespace papyrus::core {
namespace {

obs::TraceContext MakeCtx() {
  obs::TraceContext ctx;
  ctx.trace_id = 0x0002000000000007ull;  // rank-1-salted ids
  ctx.span_id = 0x0002000000000009ull;
  ctx.sampled = true;
  return ctx;
}

std::vector<KvRecord> SampleRecords() {
  std::vector<KvRecord> records(2);
  records[0].key = "alpha";
  records[0].value = "value-a";
  records[1].key = "beta";
  records[1].tombstone = true;
  return records;
}

// Hand-built legacy GetReq body, exactly what the pre-trace encoder wrote.
std::string LegacyGetReq(uint32_t dbid, uint32_t resp_tag,
                         uint32_t caller_group, const std::string& key) {
  std::string out;
  PutFixed32(&out, dbid);
  PutFixed32(&out, resp_tag);
  PutFixed32(&out, caller_group);
  PutLengthPrefixed(&out, key);
  return out;
}

TEST(TraceWireTest, NoContextEncodingIsLegacyByteIdentical) {
  // Default (invalid) context: the encoder must add nothing.
  const std::string wire = EncodeGetReq(7, 101, 2, "k1");
  EXPECT_EQ(wire, LegacyGetReq(7, 101, 2, "k1"));
  // An explicitly invalid context behaves the same.
  obs::TraceContext invalid;
  EXPECT_EQ(EncodeGetReq(7, 101, 2, "k1", invalid), wire);
}

TEST(TraceWireTest, LegacyPayloadDecodesWithInvalidContext) {
  // Old writer → new reader: a legacy body decodes and reports no context.
  const std::string wire = LegacyGetReq(3, 200, 0xffffffffu, "needle");
  uint32_t dbid = 0, resp_tag = 0, caller_group = 0;
  std::string key;
  obs::TraceContext ctx = MakeCtx();  // must be reset by the decoder
  ASSERT_TRUE(DecodeGetReq(wire, &dbid, &resp_tag, &caller_group, &key,
                           &ctx));
  EXPECT_EQ(dbid, 3u);
  EXPECT_EQ(resp_tag, 200u);
  EXPECT_EQ(caller_group, 0xffffffffu);
  EXPECT_EQ(key, "needle");
  EXPECT_FALSE(ctx.valid());
}

TEST(TraceWireTest, ContextRoundTripsThroughEveryMessageKind) {
  const obs::TraceContext ctx = MakeCtx();

  {
    const auto records = SampleRecords();
    const std::string wire = EncodeMigrateChunk(4, 120, records, ctx);
    uint32_t dbid = 0, resp_tag = 0;
    std::vector<KvRecord> out;
    obs::TraceContext got;
    ASSERT_TRUE(DecodeMigrateChunk(wire, &dbid, &resp_tag, &out, &got));
    EXPECT_EQ(dbid, 4u);
    EXPECT_EQ(resp_tag, 120u);
    ASSERT_EQ(out.size(), records.size());
    EXPECT_EQ(out[0].key, "alpha");
    EXPECT_EQ(out[0].value, "value-a");
    EXPECT_TRUE(out[1].tombstone);
    EXPECT_TRUE(got.valid());
    EXPECT_EQ(got.trace_id, ctx.trace_id);
    EXPECT_EQ(got.span_id, ctx.span_id);
  }
  {
    const std::string wire = EncodeGetReq(9, 130, 1, "key", ctx);
    uint32_t dbid = 0, resp_tag = 0, caller_group = 0;
    std::string key;
    obs::TraceContext got;
    ASSERT_TRUE(
        DecodeGetReq(wire, &dbid, &resp_tag, &caller_group, &key, &got));
    EXPECT_EQ(key, "key");
    EXPECT_EQ(got.trace_id, ctx.trace_id);
    EXPECT_EQ(got.span_id, ctx.span_id);
  }
  {
    GetResp resp;
    resp.found = true;
    resp.same_group = true;
    resp.latest_ssid = 42;
    resp.ssids = {42, 41};
    resp.value = "payload";
    const std::string wire = EncodeGetResp(resp, ctx);
    GetResp out;
    obs::TraceContext got;
    ASSERT_TRUE(DecodeGetResp(wire, &out, &got));
    EXPECT_TRUE(out.found);
    EXPECT_TRUE(out.same_group);
    EXPECT_EQ(out.ssids, resp.ssids);
    EXPECT_EQ(out.value, "payload");
    EXPECT_EQ(got.trace_id, ctx.trace_id);
    EXPECT_EQ(got.span_id, ctx.span_id);
  }
}

TEST(TraceWireTest, DecodersAcceptNullContextOut) {
  // New payload, context-oblivious caller (the pre-trace call signature):
  // the header is consumed and the body still decodes.
  const std::string wire = EncodeGetReq(5, 140, 0, "k", MakeCtx());
  uint32_t dbid = 0, resp_tag = 0, caller_group = 0;
  std::string key;
  ASSERT_TRUE(DecodeGetReq(wire, &dbid, &resp_tag, &caller_group, &key));
  EXPECT_EQ(dbid, 5u);
  EXPECT_EQ(key, "k");
}

TEST(TraceWireTest, HeaderFirstByteCannotCollideWithLegacyBodies) {
  // The magic's little-endian first byte is 0xff; legacy MigrateChunk and
  // GetReq bodies start with a small dbid and GetResp with a 0/1 flag, so
  // the sniff in GetTraceCtx is unambiguous.
  const std::string with_ctx = EncodeGetReq(1, 100, 0, "k", MakeCtx());
  EXPECT_EQ(static_cast<unsigned char>(with_ctx[0]), 0xffu);
  const std::string legacy = EncodeGetReq(1, 100, 0, "k");
  EXPECT_NE(static_cast<unsigned char>(legacy[0]), 0xffu);
}

TEST(TraceWireTest, TruncatedTraceHeaderIsRejected) {
  const std::string wire = EncodeGetReq(5, 150, 0, "key", MakeCtx());
  // Any prefix that contains the magic but not the full header must fail
  // loudly instead of sliding the cursor into garbage.
  for (size_t len = 4; len < 21; ++len) {
    Slice in(wire.data(), len);
    obs::TraceContext ctx;
    EXPECT_FALSE(GetTraceCtx(&in, &ctx)) << "prefix length " << len;
  }
}

TEST(TraceWireTest, UnsampledContextEncodesNothing) {
  obs::TraceContext ctx = MakeCtx();
  ctx.sampled = false;
  EXPECT_EQ(EncodeGetReq(2, 160, 0, "k", ctx), EncodeGetReq(2, 160, 0, "k"));
}

}  // namespace
}  // namespace papyrus::core
