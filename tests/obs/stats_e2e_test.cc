// End-to-end observability tests: a real multi-rank run with
// PAPYRUSKV_STATS / PAPYRUSKV_TRACE set must produce parseable dumps with
// non-zero operation, network, and device metrics, and the live
// papyruskv_stats C API must honor its buffer contract.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "../util/temp_dir.h"
#include "core/papyruskv.h"
#include "net/runtime.h"
#include "obs/export.h"
#include "sim/device_model.h"
#include "sim/storage.h"

namespace papyrus {
namespace {

class ObsE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Scrub();
    sim::SetTimeScale(0.0);
  }
  void TearDown() override {
    Scrub();
    sim::DeviceRegistry::Instance().Clear();
  }
  static void Scrub() {
    for (const char* var :
         {"PAPYRUSKV_REPOSITORY", "PAPYRUSKV_GROUP_SIZE",
          "PAPYRUSKV_CONSISTENCY", "PAPYRUSKV_MEMTABLE_SIZE",
          "PAPYRUSKV_STATS", "PAPYRUSKV_TRACE"}) {
      unsetenv(var);
    }
  }

  // Sums every counter whose name starts with `prefix` and contains `infix`.
  static uint64_t SumCounters(const obs::Snapshot& snap,
                              const std::string& prefix,
                              const std::string& infix = "") {
    uint64_t total = 0;
    for (const auto& [name, v] : snap.counters) {
      if (name.rfind(prefix, 0) == 0 &&
          (infix.empty() || name.find(infix) != std::string::npos)) {
        total += v;
      }
    }
    return total;
  }

  // A small workload over a shared keyspace: with 2 ranks roughly half the
  // keys are remote, so puts/gets exercise the network path, and the
  // SSTABLE barrier forces flushes (device writes + trace spans).
  static void Workload(int rank) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("edb", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR,
                             nullptr, &db),
              PAPYRUSKV_SUCCESS);
    const std::string value(64, 'v');
    for (int i = 0; i < 200; ++i) {
      const std::string key = "r" + std::to_string(rank) + "k" +
                              std::to_string(i);
      ASSERT_EQ(papyruskv_put(db, key.data(), key.size(), value.data(),
                              value.size()),
                PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);
    for (int i = 0; i < 50; ++i) {
      const std::string key = "r" + std::to_string(1 - rank) + "k" +
                              std::to_string(i);
      char* out = nullptr;
      size_t outlen = 0;
      ASSERT_EQ(papyruskv_get(db, key.data(), key.size(), &out, &outlen),
                PAPYRUSKV_SUCCESS);
      ASSERT_EQ(papyruskv_free(db, out), PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  }

  testutil::TempDir tmp_{"papyruskv_obs"};
};

TEST_F(ObsE2eTest, StatsEnvProducesPerRankAndAggregateDumps) {
  const std::string stats = tmp_.path() + "/stats.json";
  setenv("PAPYRUSKV_STATS", stats.c_str(), 1);
  const std::string repo = tmp_.path() + "/repo";

  net::RunRanks(2, [&](net::RankContext& ctx) {
    ASSERT_EQ(papyruskv_init(nullptr, nullptr, repo.c_str()),
              PAPYRUSKV_SUCCESS);
    Workload(ctx.rank);
    ASSERT_EQ(papyruskv_finalize(), PAPYRUSKV_SUCCESS);
  });

  // Per-rank dumps, one per rank, each tagged with its rank.
  for (int r = 0; r < 2; ++r) {
    const std::string path = obs::StatsPathForRank(stats, r);
    std::string text;
    ASSERT_TRUE(sim::Storage::ReadFileToString(path, &text).ok()) << path;
    obs::Snapshot snap;
    obs::StatsMeta meta;
    ASSERT_TRUE(obs::ParseStatsJson(text, &snap, &meta)) << path;
    EXPECT_EQ(meta.rank, r);
    EXPECT_EQ(meta.nranks, 2);
    EXPECT_FALSE(meta.aggregated);
    // Each rank issued exactly 200 puts and 50 gets.
    EXPECT_EQ(snap.histograms.at("kv.put_us").count, 200u);
    EXPECT_EQ(snap.histograms.at("kv.get_us").count, 50u);
  }

  // The rank-0 aggregate at the exact PAPYRUSKV_STATS path.
  std::string text;
  ASSERT_TRUE(sim::Storage::ReadFileToString(stats, &text).ok());
  obs::Snapshot agg;
  obs::StatsMeta meta;
  ASSERT_TRUE(obs::ParseStatsJson(text, &agg, &meta));
  EXPECT_TRUE(meta.aggregated);
  EXPECT_EQ(meta.nranks, 2);

  // Operation latency histograms cover both ranks and report percentiles.
  const obs::HistogramData& put = agg.histograms.at("kv.put_us");
  EXPECT_EQ(put.count, 400u);
  EXPECT_GE(put.Percentile(99), put.Percentile(50));
  EXPECT_EQ(agg.histograms.at("kv.get_us").count, 100u);
  EXPECT_GT(agg.histograms.at("kv.barrier_us").count, 0u);
  EXPECT_GT(agg.histograms.at("store.flush_us").count, 0u);

  // Database counters: all 400 puts are accounted for somewhere.
  EXPECT_EQ(SumCounters(agg, "db.edb.puts_"), 400u);
  EXPECT_GT(agg.counters.at("db.edb.flushes"), 0u);

  // Network: the shared keyspace forced remote traffic.
  EXPECT_GT(agg.counters.at("sim.net.messages"), 0u);
  EXPECT_GT(agg.counters.at("sim.net.bytes"), 0u);
  EXPECT_GT(SumCounters(agg, "net.req.", ".msgs"), 0u);

  // Device I/O: the SSTABLE barrier flushed MemTables to the simulated NVM.
  EXPECT_GT(SumCounters(agg, "sim.dev.", ".write_ops"), 0u);
  EXPECT_GT(SumCounters(agg, "sim.dev.", ".bytes_written"), 0u);
}

TEST_F(ObsE2eTest, TraceEnvProducesChromeTrace) {
  const std::string trace = tmp_.path() + "/trace.json";
  setenv("PAPYRUSKV_TRACE", trace.c_str(), 1);
  const std::string repo = tmp_.path() + "/repo";

  net::RunRanks(2, [&](net::RankContext& ctx) {
    ASSERT_EQ(papyruskv_init(nullptr, nullptr, repo.c_str()),
              PAPYRUSKV_SUCCESS);
    Workload(ctx.rank);
    ASSERT_EQ(papyruskv_finalize(), PAPYRUSKV_SUCCESS);
  });

  // Every rank flushed, so every rank recorded at least one span.
  for (int r = 0; r < 2; ++r) {
    const std::string path = obs::StatsPathForRank(trace, r);
    std::string text;
    ASSERT_TRUE(sim::Storage::ReadFileToString(path, &text).ok()) << path;
    obs::JsonValue v;
    ASSERT_TRUE(obs::ParseJson(text, &v)) << path;
    const obs::JsonValue* events = v.Find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_GT(events->array.size(), 0u);
    bool saw_flush = false;
    bool saw_named_thread = false;
    bool saw_dropped_counter = false;
    for (const auto& ev : events->array) {
      const std::string& ph = ev.Find("ph")->str;
      EXPECT_TRUE(ph == "X" || ph == "M" || ph == "C" || ph == "s" ||
                  ph == "f")
          << ph;
      EXPECT_DOUBLE_EQ(ev.Find("pid")->number, r);
      const std::string& name = ev.Find("name")->str;
      if (ph == "X" && name == "flush") saw_flush = true;
      if (ph == "M" && name == "thread_name") {
        const obs::JsonValue* args = ev.Find("args");
        ASSERT_NE(args, nullptr);
        const std::string& lane = args->Find("name")->str;
        // Lanes carry role names, not raw tid hashes.
        EXPECT_TRUE(lane == "app" || lane == "compaction" ||
                    lane == "dispatcher" || lane == "handler" ||
                    lane == "aux" || lane == "async" ||
                    lane == "async_repl")
            << lane;
        saw_named_thread = true;
      }
      if (ph == "C" && name == "trace.dropped") saw_dropped_counter = true;
    }
    EXPECT_TRUE(saw_flush) << path;
    EXPECT_TRUE(saw_named_thread) << path;
    EXPECT_TRUE(saw_dropped_counter) << path;
  }
}

TEST_F(ObsE2eTest, StatsApiBufferContract) {
  const std::string repo = tmp_.path() + "/repo";
  net::RunRanks(1, [&](net::RankContext&) {
    ASSERT_EQ(papyruskv_init(nullptr, nullptr, repo.c_str()),
              PAPYRUSKV_SUCCESS);
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("edb", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR,
                             nullptr, &db),
              PAPYRUSKV_SUCCESS);
    const std::string key = "k", value = "v";
    ASSERT_EQ(papyruskv_put(db, key.data(), key.size(), value.data(),
                            value.size()),
              PAPYRUSKV_SUCCESS);

    // Size query.
    size_t len = 0;
    ASSERT_EQ(papyruskv_stats(-1, nullptr, &len), PAPYRUSKV_SUCCESS);
    ASSERT_GT(len, 0u);

    // Too-small buffer: error, required size reported.
    std::string buf(8, 0);
    size_t small = buf.size();
    EXPECT_EQ(papyruskv_stats(-1, buf.data(), &small), PAPYRUSKV_INVALID_ARG);
    EXPECT_EQ(small, len);

    // Exact-size buffer: the document, and it parses.
    buf.assign(len, 0);
    size_t got = buf.size();
    ASSERT_EQ(papyruskv_stats(db, buf.data(), &got), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(got, len);
    obs::Snapshot snap;
    obs::StatsMeta meta;
    ASSERT_TRUE(obs::ParseStatsJson(buf, &snap, &meta));
    EXPECT_EQ(meta.nranks, 1);
    EXPECT_EQ(snap.histograms.at("kv.put_us").count, 1u);

    // Bad arguments.
    EXPECT_EQ(papyruskv_stats(db + 1000, nullptr, &len),
              PAPYRUSKV_INVALID_DB);
    EXPECT_EQ(papyruskv_stats(-1, nullptr, nullptr), PAPYRUSKV_INVALID_ARG);

    // Reset zeroes the live registry; the next dump reflects it.
    ASSERT_EQ(papyruskv_stats_reset(), PAPYRUSKV_SUCCESS);
    size_t len2 = 0;
    ASSERT_EQ(papyruskv_stats(-1, nullptr, &len2), PAPYRUSKV_SUCCESS);
    buf.assign(len2, 0);
    ASSERT_EQ(papyruskv_stats(-1, buf.data(), &len2), PAPYRUSKV_SUCCESS);
    ASSERT_TRUE(obs::ParseStatsJson(buf, &snap, &meta));
    EXPECT_EQ(snap.histograms.at("kv.put_us").count, 0u);

    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_finalize(), PAPYRUSKV_SUCCESS);
  });

  // Outside any runtime the API reports the closed state.
  size_t len = 0;
  EXPECT_EQ(papyruskv_stats(-1, nullptr, &len), PAPYRUSKV_CLOSED);
  EXPECT_EQ(papyruskv_stats_reset(), PAPYRUSKV_CLOSED);
}

}  // namespace
}  // namespace papyrus
