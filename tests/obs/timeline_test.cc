// Timeline sampler tests (DESIGN.md §13): window-delta correctness, the
// papyruskv_stats_reset race (deltas must stay monotone-safe — never the
// 2^64 underflow spike), timeline-v1 round-trip, the byte-pinned
// timeline-merged-v1 golden for the merge tool, and the papyruskv_health
// C API end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "../util/temp_dir.h"
#include "common/timer.h"
#include "core/papyruskv.h"
#include "net/runtime.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sim/device_model.h"
#include "sim/storage.h"

namespace papyrus {
namespace {

obs::TimelineSchema SmallSchema() {
  obs::TimelineSchema s;
  s.counters = {"t.ops"};
  s.gauges = {"t.depth"};
  s.histograms = {"t.lat_us"};
  return s;
}

TEST(TimelineSamplerTest, WindowDeltasSumToTotals) {
  obs::Registry reg;
  obs::Counter& ops = reg.GetCounter("t.ops");
  obs::Gauge& depth = reg.GetGauge("t.depth");
  obs::Histogram& lat = reg.GetHistogram("t.lat_us");

  obs::TimelineSampler sampler(&reg);
  sampler.Configure(SmallSchema(), 2000);
  sampler.Start();
  for (int burst = 0; burst < 5; ++burst) {
    for (int i = 0; i < 100; ++i) {
      ops.Inc();
      lat.Record(10 + i % 50);
    }
    depth.Set(burst);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  sampler.Stop();  // tail-flush: the final partial window is sampled too

  const std::vector<obs::TimelineSample> samples = sampler.Samples();
  ASSERT_FALSE(samples.empty());
  uint64_t ops_sum = 0, hist_sum = 0, prev_t = 0;
  for (const obs::TimelineSample& s : samples) {
    ASSERT_EQ(s.counters.size(), 1u);
    ASSERT_EQ(s.gauges.size(), 1u);
    ASSERT_EQ(s.hists.size(), 1u);
    EXPECT_GT(s.t_us, prev_t);  // strictly ordered on the shared clock
    prev_t = s.t_us;
    ops_sum += s.counters[0];
    hist_sum += s.hists[0].count;
    if (s.hists[0].count > 0) {
      EXPECT_GE(s.hists[0].p99, s.hists[0].p50);
    }
  }
  // No sample was dropped (ring holds 4096), so window deltas partition
  // the cumulative totals exactly.
  EXPECT_EQ(ops_sum, 500u);
  EXPECT_EQ(hist_sum, 500u);
  EXPECT_EQ(samples.back().gauges[0], 4);
  obs::TimelineSample last;
  ASSERT_TRUE(sampler.Latest(&last));
  EXPECT_EQ(last.seq, samples.back().seq);
}

TEST(TimelineSamplerTest, StatsResetRaceKeepsDeltasMonotoneSafe) {
  obs::Registry reg;
  obs::Counter& ops = reg.GetCounter("t.ops");
  obs::Histogram& lat = reg.GetHistogram("t.lat_us");

  obs::TimelineSampler sampler(&reg);
  sampler.Configure(SmallSchema(), 1000);
  sampler.Start();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ops.Inc();
      lat.Record(25);
    }
  });
  // Race papyruskv_stats_reset's registry wipe against the live sampler.
  const uint64_t until = NowMicros() + 50 * 1000;
  while (NowMicros() < until) {
    reg.Reset();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  sampler.Stop();

  // A reset observed mid-window restarts the baseline at zero.  An
  // underflowing delta would be ~1.8e19; anything near that is the bug.
  const std::vector<obs::TimelineSample> samples = sampler.Samples();
  ASSERT_FALSE(samples.empty());
  for (const obs::TimelineSample& s : samples) {
    EXPECT_LT(s.counters[0], uint64_t{1} << 32) << "underflowed delta";
    EXPECT_LT(s.hists[0].count, uint64_t{1} << 32) << "underflowed window";
  }
}

TEST(TimelineSamplerTest, DisabledSamplerIsInert) {
  obs::Registry reg;
  obs::TimelineSampler sampler(&reg);
  sampler.Configure(SmallSchema(), 0);  // interval 0 = off
  EXPECT_FALSE(sampler.enabled());
  sampler.Start();
  sampler.Stop();
  EXPECT_EQ(sampler.samples_taken(), 0u);
  obs::TimelineSample s;
  EXPECT_FALSE(sampler.Latest(&s));
}

TEST(TimelineJsonTest, DocRoundTrips) {
  obs::Registry reg;
  reg.GetCounter("t.ops").Inc(7);
  reg.GetGauge("t.depth").Set(-3);
  reg.GetHistogram("t.lat_us").Record(100);

  obs::TimelineSampler sampler(&reg);
  sampler.Configure(SmallSchema(), 1000);
  sampler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  sampler.Stop();

  const obs::TimelineDoc doc = sampler.Doc(/*rank=*/1, /*nranks=*/4);
  const std::string json = obs::TimelineDocToJson(doc);
  obs::TimelineDoc back;
  ASSERT_TRUE(obs::ParseTimelineJson(json, &back)) << json;
  EXPECT_EQ(back.rank, 1);
  EXPECT_EQ(back.nranks, 4);
  EXPECT_EQ(back.interval_us, 1000u);
  EXPECT_EQ(back.samples_taken, doc.samples_taken);
  EXPECT_EQ(back.schema.counters, doc.schema.counters);
  EXPECT_EQ(back.schema.gauges, doc.schema.gauges);
  EXPECT_EQ(back.schema.histograms, doc.schema.histograms);
  ASSERT_EQ(back.samples.size(), doc.samples.size());
  for (size_t i = 0; i < doc.samples.size(); ++i) {
    EXPECT_EQ(back.samples[i].t_us, doc.samples[i].t_us);
    EXPECT_EQ(back.samples[i].counters, doc.samples[i].counters);
    EXPECT_EQ(back.samples[i].gauges, doc.samples[i].gauges);
    EXPECT_EQ(back.samples[i].hists[0].count, doc.samples[i].hists[0].count);
  }
  // Gauges survive a negative level (bitcast through the u64 slot word).
  EXPECT_EQ(back.samples.back().gauges[0], -3);

  obs::TimelineDoc reject;
  EXPECT_FALSE(obs::ParseTimelineJson("{\"papyruskv\": \"stats-v1\"}",
                                      &reject));
}

// Hand-built two-rank merge, byte-pinned: any change to the
// timeline-merged-v1 serialization must be deliberate (rev the version
// string and this golden together).
TEST(TimelineMergeTest, MergedJsonGolden) {
  obs::TimelineSchema schema;
  schema.counters = {"c.x"};
  schema.gauges = {};
  schema.histograms = {"kv.put_us"};

  auto sample = [](uint64_t seq, uint64_t t_us, uint64_t dt_us, uint64_t c,
                   uint64_t n, uint64_t p50, uint64_t p99) {
    obs::TimelineSample s;
    s.seq = seq;
    s.t_us = t_us;
    s.dt_us = dt_us;
    s.counters = {c};
    s.hists = {{n, p50, p99}};
    return s;
  };
  obs::TimelineDoc r0;
  r0.rank = 0;
  r0.nranks = 2;
  r0.interval_us = 1000;
  r0.samples_taken = 2;
  r0.schema = schema;
  r0.samples = {sample(1, 2000, 1000, 10, 5, 30, 90),
                sample(2, 3000, 1000, 20, 8, 40, 120)};
  obs::TimelineDoc r1;
  r1.rank = 1;
  r1.nranks = 2;
  r1.interval_us = 1000;
  r1.samples_taken = 1;
  r1.schema = schema;
  r1.samples = {sample(1, 2500, 1000, 4, 2, 50, 60)};

  std::vector<obs::TimelineEvent> events(1);
  events[0].rank = 1;
  events[0].ts_us = 2600;
  events[0].kind = "crash";
  events[0].what = "rank.crash";
  events[0].a = 1;

  const obs::MergedTimeline m = obs::MergeTimelines({r0, r1}, events);
  EXPECT_EQ(m.window_us, 1000u);
  EXPECT_EQ(m.lanes.size(), 2u);

  const std::string golden =
      "{\"papyruskv\": \"timeline-merged-v1\", \"nranks\": 2,\n"
      " \"t0_us\": 1000, \"window_us\": 1000, \"windows\": 2,\n"
      " \"counters\": [\"c.x\"],\n"
      " \"gauges\": [],\n"
      " \"histograms\": [\"kv.put_us\"],\n"
      " \"lanes\": [\n"
      "  {\"rank\": 0, \"samples\": [\n"
      "   {\"w\": 0, \"t_us\": 2000, \"dt_us\": 1000, \"c\": [10], "
      "\"g\": [], \"h\": [[5, 30, 90]]},\n"
      "   {\"w\": 1, \"t_us\": 3000, \"dt_us\": 1000, \"c\": [20], "
      "\"g\": [], \"h\": [[8, 40, 120]]}\n"
      "  ]},\n"
      "  {\"rank\": 1, \"samples\": [\n"
      "   {\"w\": 1, \"t_us\": 2500, \"dt_us\": 1000, \"c\": [4], "
      "\"g\": [], \"h\": [[2, 50, 60]]}\n"
      "  ]}\n"
      " ],\n"
      " \"events\": [\n"
      "  {\"w\": 1, \"rank\": 1, \"ts_us\": 2600, \"kind\": \"crash\", "
      "\"what\": \"rank.crash\", \"a\": 1, \"b\": 0}\n"
      " ]}\n";
  EXPECT_EQ(obs::MergedTimelineToJson(m), golden);

  // The render sees one rank-1 put lane die after its only window and the
  // crash annotated on its window.
  const std::string tables = obs::RenderTimelineTables(m);
  EXPECT_NE(tables.find("r1:crash"), std::string::npos) << tables;
  const std::vector<double> ops = obs::WindowOpsPerSec(m);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_DOUBLE_EQ(ops[0], 5 / 1e-3 /*5 ops over 1ms*/);
  EXPECT_DOUBLE_EQ(ops[1], (8 + 2) / 1e-3);
}

// ---------------------------------------------------------------------------
// End-to-end: env-driven export and the papyruskv_health C API.
// ---------------------------------------------------------------------------

class TimelineE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Scrub();
    sim::SetTimeScale(0.0);
  }
  void TearDown() override {
    Scrub();
    sim::DeviceRegistry::Instance().Clear();
  }
  static void Scrub() {
    for (const char* var :
         {"PAPYRUSKV_REPOSITORY", "PAPYRUSKV_GROUP_SIZE",
          "PAPYRUSKV_CONSISTENCY", "PAPYRUSKV_MEMTABLE_SIZE",
          "PAPYRUSKV_STATS", "PAPYRUSKV_TRACE", "PAPYRUSKV_TIMELINE",
          "PAPYRUSKV_TIMELINE_MS", "PAPYRUSKV_FLIGHT",
          "PAPYRUSKV_REPLICAS"}) {
      unsetenv(var);
    }
  }

  testutil::TempDir tmp_{"papyruskv_timeline"};
};

TEST_F(TimelineE2eTest, TimelineExportsNextToStats) {
  const std::string stats = tmp_.path() + "/stats.json";
  setenv("PAPYRUSKV_STATS", stats.c_str(), 1);
  setenv("PAPYRUSKV_TIMELINE_MS", "5", 1);
  const std::string repo = tmp_.path() + "/repo";

  net::RunRanks(2, [&](net::RankContext& ctx) {
    ASSERT_EQ(papyruskv_init(nullptr, nullptr, repo.c_str()),
              PAPYRUSKV_SUCCESS);
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("tdb", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR,
                             nullptr, &db),
              PAPYRUSKV_SUCCESS);
    const std::string value(32, 'v');
    for (int i = 0; i < 100; ++i) {
      const std::string key = "r" + std::to_string(ctx.rank) + "k" +
                              std::to_string(i);
      ASSERT_EQ(papyruskv_put(db, key.data(), key.size(), value.data(),
                              value.size()),
                PAPYRUSKV_SUCCESS);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(12));
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_finalize(), PAPYRUSKV_SUCCESS);
  });

  // timeline.rank<k>.json lands next to the stats dumps, one per rank.
  const std::string base = tmp_.path() + "/timeline.json";
  for (int r = 0; r < 2; ++r) {
    const std::string path = obs::StatsPathForRank(base, r);
    std::string text;
    ASSERT_TRUE(sim::Storage::ReadFileToString(path, &text).ok()) << path;
    obs::TimelineDoc doc;
    ASSERT_TRUE(obs::ParseTimelineJson(text, &doc)) << path;
    EXPECT_EQ(doc.rank, r);
    EXPECT_EQ(doc.nranks, 2);
    EXPECT_EQ(doc.interval_us, 5000u);
    EXPECT_EQ(doc.schema.counters, obs::TimelineSchema::Default().counters);
    ASSERT_FALSE(doc.samples.empty());
    // The run's puts all land somewhere in this rank's kv.put_us lane.
    const int put = obs::SeriesIndex(doc.schema.histograms, "kv.put_us");
    ASSERT_GE(put, 0);
    uint64_t puts = 0;
    for (const obs::TimelineSample& s : doc.samples) {
      puts += s.hists[put].count;
    }
    EXPECT_EQ(puts, 100u);
  }
}

TEST_F(TimelineE2eTest, HealthSnapshotLive) {
  setenv("PAPYRUSKV_TIMELINE_MS", "5", 1);
  const std::string repo = tmp_.path() + "/repo";

  net::RunRanks(2, [&](net::RankContext& ctx) {
    ASSERT_EQ(papyruskv_init(nullptr, nullptr, repo.c_str()),
              PAPYRUSKV_SUCCESS);
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("hdb", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR,
                             nullptr, &db),
              PAPYRUSKV_SUCCESS);
    const std::string value(32, 'v');
    for (int i = 0; i < 200; ++i) {
      const std::string key = "k" + std::to_string(i);
      ASSERT_EQ(papyruskv_put(db, key.data(), key.size(), value.data(),
                              value.size()),
                PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_health(nullptr), PAPYRUSKV_INVALID_ARG);
    papyruskv_health_t h;
    ASSERT_EQ(papyruskv_health(&h), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(h.rank, ctx.rank);
    EXPECT_EQ(h.nranks, 2);
    EXPECT_EQ(h.crashed, 0);
    EXPECT_EQ(h.degraded, 0);
    EXPECT_EQ(h.suspect_peers, 0);
    EXPECT_GE(h.pipeline_queue_depth, 0);
    EXPECT_GE(h.repl_lag_ops, 0);
    EXPECT_GT(h.uptime_us, 0u);
    // Sampler on: rates come from the latest window (its measured length,
    // not the configured interval — the first tick fires early).
    EXPECT_GT(h.window_us, 0u);
    // Rank 0 owns the whole "k..." keyspace half the time at most; both
    // ranks issued puts, so the store-wide put percentiles are live.
    EXPECT_GE(h.put_rate, 0.0);
    EXPECT_GE(h.put_p99_us, 0.0);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_finalize(), PAPYRUSKV_SUCCESS);
  });

  // Outside any runtime the health call reports the store closed.
  papyruskv_health_t h;
  EXPECT_EQ(papyruskv_health(&h), PAPYRUSKV_CLOSED);
}

}  // namespace
}  // namespace papyrus
