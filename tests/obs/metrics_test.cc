// Unit tests for the metrics primitives: log2 bucketing, percentile
// extraction, merge semantics, and the lock-free counter/gauge/histogram
// update paths under concurrency (run under TSan by scripts/check.sh).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace papyrus::obs {
namespace {

// ---------------------------------------------------------------------------
// Bucketing
// ---------------------------------------------------------------------------

TEST(HistogramBucketTest, BucketOfEdgeCases) {
  EXPECT_EQ(HistogramBucketOf(0), 0u);
  EXPECT_EQ(HistogramBucketOf(1), 1u);
  EXPECT_EQ(HistogramBucketOf(2), 2u);
  EXPECT_EQ(HistogramBucketOf(3), 2u);
  EXPECT_EQ(HistogramBucketOf(4), 3u);
  EXPECT_EQ(HistogramBucketOf(7), 3u);
  EXPECT_EQ(HistogramBucketOf(8), 4u);
  EXPECT_EQ(HistogramBucketOf(uint64_t{1} << 20), 21u);
  EXPECT_EQ(HistogramBucketOf(~uint64_t{0}), 64u);
}

TEST(HistogramBucketTest, UpperBoundsMatchBuckets) {
  EXPECT_EQ(HistogramBucketUpper(0), 0u);
  EXPECT_EQ(HistogramBucketUpper(1), 1u);
  EXPECT_EQ(HistogramBucketUpper(2), 3u);
  EXPECT_EQ(HistogramBucketUpper(3), 7u);
  EXPECT_EQ(HistogramBucketUpper(64), ~uint64_t{0});
  // Every value must lie at or below its bucket's upper bound and above the
  // previous bucket's.
  for (uint64_t v : {uint64_t{1}, uint64_t{5}, uint64_t{1023}, uint64_t{1024},
                     uint64_t{123456789}, ~uint64_t{0} >> 1}) {
    const size_t b = HistogramBucketOf(v);
    EXPECT_LE(v, HistogramBucketUpper(b)) << v;
    EXPECT_GT(v, HistogramBucketUpper(b - 1)) << v;
  }
}

// ---------------------------------------------------------------------------
// Histogram statistics
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyIsAllZero) {
  Histogram h;
  const HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.sum, 0u);
  EXPECT_EQ(d.min, 0u);
  EXPECT_EQ(d.max, 0u);
  EXPECT_EQ(d.Mean(), 0.0);
  EXPECT_EQ(d.Percentile(50), 0.0);
}

TEST(HistogramTest, SingleValueIsExactEverywhere) {
  Histogram h;
  h.Record(100);
  const HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, 1u);
  EXPECT_EQ(d.sum, 100u);
  EXPECT_EQ(d.min, 100u);
  EXPECT_EQ(d.max, 100u);
  // min/max clamping makes any percentile of a single value exact despite
  // the 2x-wide bucket.
  EXPECT_EQ(d.Percentile(0), 100.0);
  EXPECT_EQ(d.Percentile(50), 100.0);
  EXPECT_EQ(d.Percentile(99), 100.0);
}

TEST(HistogramTest, ZerosLandInBucketZero) {
  Histogram h;
  h.Record(0);
  h.Record(0);
  const HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, 2u);
  EXPECT_EQ(d.buckets[0], 2u);
  EXPECT_EQ(d.min, 0u);
  EXPECT_EQ(d.max, 0u);
  EXPECT_EQ(d.Percentile(50), 0.0);
}

TEST(HistogramTest, UniformDistributionPercentiles) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, 1000u);
  EXPECT_EQ(d.sum, 500500u);
  EXPECT_EQ(d.min, 1u);
  EXPECT_EQ(d.max, 1000u);
  EXPECT_DOUBLE_EQ(d.Mean(), 500.5);
  // In-bucket interpolation recovers a uniform distribution closely.
  EXPECT_NEAR(d.Percentile(50), 500, 100);
  EXPECT_NEAR(d.Percentile(95), 950, 100);
  EXPECT_GE(d.Percentile(99), 900);
  EXPECT_LE(d.Percentile(99), 1000);  // clamped to observed max
  EXPECT_LE(d.Percentile(100), 1000);
  EXPECT_GE(d.Percentile(0), 1);  // clamped to observed min
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h;
  for (uint64_t v : {3u, 17u, 120u, 4000u, 4001u, 90000u}) h.Record(v);
  const HistogramData d = h.Snapshot();
  double prev = -1;
  for (double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    const double v = d.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
}

TEST(HistogramTest, MergeCombinesEverything) {
  Histogram a, b;
  a.Record(10);
  a.Record(20);
  b.Record(5);
  b.Record(1000);
  HistogramData da = a.Snapshot();
  const HistogramData db = b.Snapshot();
  da.Merge(db);
  EXPECT_EQ(da.count, 4u);
  EXPECT_EQ(da.sum, 1035u);
  EXPECT_EQ(da.min, 5u);
  EXPECT_EQ(da.max, 1000u);

  // Merging an empty histogram is a no-op (and must not clobber min).
  HistogramData empty;
  da.Merge(empty);
  EXPECT_EQ(da.count, 4u);
  EXPECT_EQ(da.min, 5u);
  // Merging INTO an empty one adopts the other side's min.
  HistogramData target;
  target.Merge(da);
  EXPECT_EQ(target.min, 5u);
  EXPECT_EQ(target.max, 1000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  const HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.min, 0u);
  EXPECT_EQ(d.max, 0u);
  h.Record(7);  // usable after reset
  EXPECT_EQ(h.Snapshot().min, 7u);
}

// ---------------------------------------------------------------------------
// Counter / Gauge under concurrency
// ---------------------------------------------------------------------------

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIters = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIters; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  // Sharded relaxed atomics still never lose an increment.
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kIters);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, IncByDelta) {
  Counter c;
  c.Inc(10);
  c.Inc(32);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, ConcurrentAddsBalance) {
  Gauge g;
  g.Set(5);
  EXPECT_EQ(g.Value(), 5);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 10000; ++i) {
        g.Add(3);
        g.Add(-3);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.Value(), 5);
}

TEST(HistogramTest, ConcurrentRecordsKeepTotals) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kIters; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(d.min, 1u);
  EXPECT_EQ(d.max, 3001u);
}

// ---------------------------------------------------------------------------
// Registry + thread-local current
// ---------------------------------------------------------------------------

TEST(RegistryTest, GetOrCreateReturnsStableReferences) {
  Registry reg;
  Counter& a = reg.GetCounter("x");
  Counter& b = reg.GetCounter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &reg.GetCounter("y"));
  Histogram& h1 = reg.GetHistogram("h");
  EXPECT_EQ(&h1, &reg.GetHistogram("h"));
}

TEST(RegistryTest, SnapshotAndReset) {
  Registry reg;
  reg.GetCounter("c").Inc(3);
  reg.GetGauge("g").Set(-7);
  reg.GetHistogram("h").Record(16);
  Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("c"), 3u);
  EXPECT_EQ(snap.gauges.at("g"), -7);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);

  reg.Reset();
  snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("c"), 0u);
  EXPECT_EQ(snap.gauges.at("g"), 0);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
}

TEST(RegistryTest, SnapshotMergeSumsAcrossRanks) {
  Snapshot a, b;
  a.counters["n"] = 2;
  b.counters["n"] = 3;
  b.counters["only_b"] = 1;
  a.gauges["g"] = 4;
  b.gauges["g"] = -1;
  a.histograms["h"].count = 1;
  a.histograms["h"].sum = 10;
  a.histograms["h"].min = 10;
  a.histograms["h"].max = 10;
  a.histograms["h"].buckets[HistogramBucketOf(10)] = 1;
  a.Merge(b);
  EXPECT_EQ(a.counters["n"], 5u);
  EXPECT_EQ(a.counters["only_b"], 1u);
  EXPECT_EQ(a.gauges["g"], 3);
  EXPECT_EQ(a.histograms["h"].count, 1u);
}

TEST(RegistryTest, CurrentFallsBackToProcessRegistry) {
  EXPECT_EQ(&Current(), &Registry::Process());
  Registry mine;
  SetCurrentRegistry(&mine);
  EXPECT_EQ(&Current(), &mine);
  // The install is thread-local: other threads still see the process one.
  std::thread([&] { EXPECT_EQ(&Current(), &Registry::Process()); }).join();
  SetCurrentRegistry(nullptr);
  EXPECT_EQ(&Current(), &Registry::Process());
}

TEST(ScopedLatencyTest, RecordsOneSample) {
  Histogram h;
  { ScopedLatency lat(&h); }
  EXPECT_EQ(h.Snapshot().count, 1u);
  { ScopedLatency lat(nullptr); }  // null histogram disables recording
}

}  // namespace
}  // namespace papyrus::obs
