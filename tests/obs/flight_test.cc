// Flight recorder: ring semantics, flight-v1 JSON dumps, and the
// end-to-end promise that a request timeout or a simulated rank crash
// leaves a post-mortem file naming the failing op and peer — under a
// canned fault profile, with no cooperation from the failing code path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "../fault/fault_test_util.h"
#include "core/db_shard.h"
#include "core/runtime.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "sim/storage.h"

namespace papyrus::testutil {
namespace {

using obs::FlightKind;
using obs::FlightRecorder;

TEST(FlightRecorderTest, RecordsInOrder) {
  FlightRecorder flight(16);
  flight.Record(FlightKind::kOpBegin, "get_req", /*a=*/1, /*b=*/4);
  flight.Record(FlightKind::kRetry, "get_req", 1, 2);
  flight.Record(FlightKind::kOpEnd, "get_req", 1);
  const auto events = flight.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].kind, FlightKind::kOpBegin);
  EXPECT_STREQ(events[0].what, "get_req");
  EXPECT_EQ(events[0].a, 1);
  EXPECT_EQ(events[0].b, 4);
  EXPECT_EQ(events[1].kind, FlightKind::kRetry);
  EXPECT_EQ(events[2].seq, 3u);
  EXPECT_EQ(flight.recorded(), 3u);
}

TEST(FlightRecorderTest, WrapKeepsTheNewestWindow) {
  FlightRecorder flight(8);
  for (int i = 0; i < 20; ++i) {
    flight.Record(FlightKind::kFlush, "flush_immutable", i);
  }
  const auto events = flight.Snapshot();
  ASSERT_LE(events.size(), 8u);
  ASSERT_FALSE(events.empty());
  // Oldest-first, ending with the most recent record.
  EXPECT_EQ(events.back().seq, 20u);
  EXPECT_EQ(events.back().a, 19);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
}

TEST(FlightRecorderTest, KindNamesAreStable) {
  EXPECT_STREQ(FlightKindName(FlightKind::kOpBegin), "op_begin");
  EXPECT_STREQ(FlightKindName(FlightKind::kTimeout), "timeout");
  EXPECT_STREQ(FlightKindName(FlightKind::kSuspect), "suspect");
  EXPECT_STREQ(FlightKindName(FlightKind::kFailpoint), "failpoint");
  EXPECT_STREQ(FlightKindName(FlightKind::kQuarantine), "quarantine");
}

TEST(FlightRecorderTest, TriggerDumpWritesFlightV1Json) {
  TempDir tmp("flight_unit");
  const std::string path = tmp.path() + "/flight.json";
  FlightRecorder flight(32);
  flight.ConfigureDump(path, /*rank=*/3);
  flight.Record(FlightKind::kOpBegin, "put_sync", 1, 4, 0xabcdull);
  flight.Record(FlightKind::kTimeout, "put_sync", 1, 4);
  ASSERT_TRUE(flight.TriggerDump("unit test").ok());

  std::string text;
  ASSERT_TRUE(sim::Storage::ReadFileToString(path, &text).ok());
  obs::JsonValue v;
  ASSERT_TRUE(obs::ParseJson(text, &v)) << text;
  ASSERT_NE(v.Find("papyruskv"), nullptr);
  EXPECT_EQ(v.Find("papyruskv")->str, "flight-v1");
  EXPECT_DOUBLE_EQ(v.Find("rank")->number, 3);
  EXPECT_EQ(v.Find("reason")->str, "unit test");
  const obs::JsonValue* events = v.Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  EXPECT_EQ(events->array[0].Find("kind")->str, "op_begin");
  EXPECT_EQ(events->array[0].Find("what")->str, "put_sync");
  EXPECT_EQ(events->array[0].Find("trace")->str, "0xabcd");
  EXPECT_EQ(events->array[1].Find("kind")->str, "timeout");
  EXPECT_DOUBLE_EQ(events->array[1].Find("a")->number, 1);
}

TEST(FlightRecorderTest, DumpWithoutDestinationIsANoOp) {
  FlightRecorder flight(8);
  flight.Record(FlightKind::kCrash, "rank", 0);
  EXPECT_TRUE(flight.TriggerDump("nowhere").ok());
}

// ---------------------------------------------------------------------------
// End-to-end: fault paths auto-dump
// ---------------------------------------------------------------------------

class FlightE2eTest : public FaultTest {
 protected:
  void SetUp() override {
    FaultTest::SetUp();
    for (const char* var :
         {"PAPYRUSKV_FLIGHT", "PAPYRUSKV_STATS", "PAPYRUSKV_TRACE"}) {
      unsetenv(var);
    }
  }
  void TearDown() override {
    for (const char* var :
         {"PAPYRUSKV_FLIGHT", "PAPYRUSKV_STATS", "PAPYRUSKV_TRACE"}) {
      unsetenv(var);
    }
    FaultTest::TearDown();
  }

  // Parses the flight dump for `rank`, asserting it exists.
  void ReadDump(const std::string& base, int rank, obs::JsonValue* v) {
    const std::string path = obs::StatsPathForRank(base, rank);
    ASSERT_TRUE(sim::Storage::FileExists(path)) << path;
    std::string text;
    ASSERT_TRUE(sim::Storage::ReadFileToString(path, &text).ok());
    ASSERT_TRUE(obs::ParseJson(text, v)) << path;
  }

  // True if any event matches kind (and, when non-null, what).
  static bool HasEvent(const obs::JsonValue& v, const std::string& kind,
                       const char* what, double* a_out = nullptr) {
    const obs::JsonValue* events = v.Find("events");
    if (!events) return false;
    for (const auto& ev : events->array) {
      if (ev.Find("kind")->str != kind) continue;
      if (what && ev.Find("what")->str != what) continue;
      if (a_out) *a_out = ev.Find("a")->number;
      return true;
    }
    return false;
  }
};

// Keys owned by `owner` under the db's hash (local twin of the helper in
// tests/fault/net_fault_test.cc).
std::vector<std::string> KeysOwnedBy(const core::DbShardPtr& shard, int owner,
                                     int want) {
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < static_cast<size_t>(want); ++i) {
    std::string k = "fk" + std::to_string(i);
    if (shard->OwnerOf(k) == owner) keys.push_back(std::move(k));
  }
  return keys;
}

TEST_F(FlightE2eTest, RequestTimeoutDumpsFailingOpAndPeer) {
  const std::string base = tmp_.path() + "/flight.json";
  setenv("PAPYRUSKV_FLIGHT", base.c_str(), 1);
  setenv("PAPYRUSKV_TIMEOUT_MS", "50", 1);
  setenv("PAPYRUSKV_RETRY_MAX", "2", 1);
  const std::string repo = tmp_.path() + "/repo";
  RunKv(2, repo, [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("flightdb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    auto shard = papyrus::core::DbHandle(db);
    ctx.comm.Barrier();
    if (ctx.rank == 0) {
      Arm("net.msg.drop=rank0:1.0");
      const auto keys = KeysOwnedBy(shard, 1, 1);
      EXPECT_EQ(PutStr(db, keys[0], "lost"), PAPYRUSKV_ERR_TIMEOUT);
      fault::Registry::Instance().DisableAll();

      // The timeout path dumped synchronously — the file is already there,
      // ending in the begin/retry/timeout story of the failed batched put
      // (sequential puts ride the async pipeline as put_batch frames).
      obs::JsonValue v;
      ReadDump(base, 0, &v);
      EXPECT_EQ(v.Find("reason")->str, "request timeout");
      double peer = -1;
      EXPECT_TRUE(HasEvent(v, "op_begin", "put_batch"));
      EXPECT_TRUE(HasEvent(v, "retry", "put_batch"));
      ASSERT_TRUE(HasEvent(v, "timeout", "put_batch", &peer));
      EXPECT_EQ(peer, 1);  // the peer that never answered
      EXPECT_TRUE(HasEvent(v, "suspect", "peer", &peer));
      EXPECT_EQ(peer, 1);
      // The dropped sends fired the net.msg.drop failpoint on this rank.
      EXPECT_TRUE(HasEvent(v, "failpoint", "net.msg.drop"));
    }
    ctx.comm.Barrier();
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(FlightE2eTest, SimulatedCrashDumpsBeforeTheRankGoesDark) {
  const std::string base = tmp_.path() + "/flight.json";
  setenv("PAPYRUSKV_FLIGHT", base.c_str(), 1);
  // A crashed rank is fail-stop silent, so rank 0's puts to it run the
  // timeout ladder; keep it short or this test takes real minutes.
  setenv("PAPYRUSKV_TIMEOUT_MS", "50", 1);
  setenv("PAPYRUSKV_RETRY_MAX", "2", 1);
  const std::string repo = tmp_.path() + "/repo";
  RunKv(2, repo, [&](net::RankContext& ctx) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("crashdb", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    ctx.comm.Barrier();
    if (ctx.rank == 0) Arm("rank.crash=rank1@op3");
    ctx.comm.Barrier();
    int errors = 0;
    for (int i = 0; i < 10; ++i) {
      const std::string k = "c" + std::to_string(ctx.rank) + "." +
                            std::to_string(i);
      if (PutStr(db, k, "v") != PAPYRUSKV_SUCCESS) ++errors;
    }
    if (ctx.rank == 1) {
      EXPECT_GT(errors, 0) << "rank 1 never hit its injected crash";
      obs::JsonValue v;
      ReadDump(base, 1, &v);
      EXPECT_EQ(v.Find("reason")->str, "simulated crash");
      double rank = -1;
      ASSERT_TRUE(HasEvent(v, "crash", "rank", &rank));
      EXPECT_EQ(rank, 1);
      EXPECT_TRUE(HasEvent(v, "failpoint", "rank.crash"));
    }
    ctx.comm.Barrier();
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

}  // namespace
}  // namespace papyrus::testutil
