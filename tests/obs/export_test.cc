// Round-trip tests for the export formats: the stats-v1 JSON dump, the
// compact Allgather wire form, and the Chrome trace_event output.
#include <gtest/gtest.h>

#include "../util/temp_dir.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "sim/storage.h"

namespace papyrus::obs {
namespace {

Snapshot MakeSample() {
  Snapshot s;
  s.counters["kv.puts_local"] = 123;
  s.counters["sim.net.bytes"] = 0;
  s.gauges["net.flush_queue_depth"] = -2;
  HistogramData& h = s.histograms["kv.put_us"];
  for (uint64_t v : {0u, 1u, 3u, 100u, 100u, 5000u}) {
    h.buckets[HistogramBucketOf(v)] += 1;
    h.count += 1;
    h.sum += v;
    h.max = std::max(h.max, v);
  }
  h.min = 0;
  return s;
}

TEST(WireFormatTest, SerializeDeserializeRoundTrip) {
  const Snapshot in = MakeSample();
  Snapshot out;
  ASSERT_TRUE(DeserializeSnapshot(SerializeSnapshot(in), &out));
  EXPECT_EQ(out.counters, in.counters);
  EXPECT_EQ(out.gauges, in.gauges);
  ASSERT_EQ(out.histograms.size(), 1u);
  const HistogramData& a = in.histograms.at("kv.put_us");
  const HistogramData& b = out.histograms.at("kv.put_us");
  EXPECT_EQ(b.count, a.count);
  EXPECT_EQ(b.sum, a.sum);
  EXPECT_EQ(b.min, a.min);
  EXPECT_EQ(b.max, a.max);
  EXPECT_EQ(b.buckets, a.buckets);
}

TEST(WireFormatTest, RejectsGarbage) {
  Snapshot out;
  EXPECT_FALSE(DeserializeSnapshot("not a snapshot\n", &out));
}

TEST(JsonDumpTest, StatsRoundTrip) {
  const Snapshot in = MakeSample();
  StatsMeta meta_in;
  meta_in.rank = 3;
  meta_in.nranks = 8;
  const std::string json = SnapshotToJson(in, meta_in);

  Snapshot out;
  StatsMeta meta_out;
  ASSERT_TRUE(ParseStatsJson(json, &out, &meta_out));
  EXPECT_EQ(meta_out.rank, 3);
  EXPECT_EQ(meta_out.nranks, 8);
  EXPECT_FALSE(meta_out.aggregated);
  EXPECT_EQ(out.counters, in.counters);
  EXPECT_EQ(out.gauges, in.gauges);
  const HistogramData& a = in.histograms.at("kv.put_us");
  const HistogramData& b = out.histograms.at("kv.put_us");
  EXPECT_EQ(b.count, a.count);
  EXPECT_EQ(b.sum, a.sum);
  EXPECT_EQ(b.min, a.min);
  EXPECT_EQ(b.max, a.max);
  // The dump carries only non-empty buckets but reconstructs them exactly,
  // so percentiles computed offline match the live ones.
  EXPECT_EQ(b.buckets, a.buckets);
  EXPECT_DOUBLE_EQ(b.Percentile(50), a.Percentile(50));
}

TEST(JsonDumpTest, AggregatedFlagRoundTrips) {
  StatsMeta meta;
  meta.nranks = 4;
  meta.aggregated = true;
  Snapshot out;
  StatsMeta meta_out;
  ASSERT_TRUE(
      ParseStatsJson(SnapshotToJson(Snapshot{}, meta), &out, &meta_out));
  EXPECT_TRUE(meta_out.aggregated);
  EXPECT_EQ(meta_out.nranks, 4);
}

TEST(JsonDumpTest, ParserRejectsNonStatsJson) {
  Snapshot out;
  StatsMeta meta;
  EXPECT_FALSE(ParseStatsJson("{}", &out, &meta));
  EXPECT_FALSE(ParseStatsJson("[1,2,3]", &out, &meta));
  EXPECT_FALSE(ParseStatsJson("{\"papyruskv\": \"other\"}", &out, &meta));
}

TEST(JsonParserTest, HandlesNestingAndEscapes) {
  JsonValue v;
  ASSERT_TRUE(ParseJson(
      R"({"a": [1, 2.5, -3], "b": {"s": "x\"y\\z"}, "t": true, "n": null})",
      &v));
  ASSERT_EQ(v.type, JsonValue::Type::kObject);
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(a->array[2].number, -3);
  EXPECT_EQ(v.Find("b")->Find("s")->str, "x\"y\\z");
  EXPECT_TRUE(v.Find("t")->boolean);
  EXPECT_EQ(v.Find("n")->type, JsonValue::Type::kNull);
  EXPECT_FALSE(ParseJson("{\"unterminated\": ", &v));
}

TEST(PathTest, StatsPathForRank) {
  EXPECT_EQ(StatsPathForRank("/tmp/stats.json", 3), "/tmp/stats.rank3.json");
  EXPECT_EQ(StatsPathForRank("stats.json", 0), "stats.rank0.json");
  EXPECT_EQ(StatsPathForRank("/tmp/dump", 2), "/tmp/dump.rank2");
}

TEST(WriteTextFileTest, WritesAndFails) {
  testutil::TempDir tmp("obs_export");
  const std::string path = tmp.path() + "/out.txt";
  ASSERT_TRUE(WriteTextFile(path, "hello").ok());
  std::string back;
  ASSERT_TRUE(sim::Storage::ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "hello");
  EXPECT_FALSE(WriteTextFile(tmp.path() + "/no/such/dir/x", "y").ok());
}

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

TEST(TraceBufferTest, DisabledRecordsNothing) {
  TraceBuffer buf(4);
  buf.Add("flush", "store", 10, 5);
  EXPECT_EQ(buf.size(), 0u);
  { TraceSpan span(&buf, "store", "flush"); }
  EXPECT_EQ(buf.size(), 0u);
}

TEST(TraceBufferTest, RingOverwritesOldest) {
  TraceBuffer buf(3);
  buf.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    buf.Add("ev" + std::to_string(i), "t", 100 + i, 1);
  }
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.dropped(), 2u);
  const auto events = buf.Events();
  ASSERT_EQ(events.size(), 3u);
  // Oldest-first, with the two earliest overwritten.
  EXPECT_EQ(events[0].name, "ev2");
  EXPECT_EQ(events[2].name, "ev4");
}

TEST(TraceBufferTest, SpanRecordsWhenEnabled) {
  TraceBuffer buf(8);
  buf.set_enabled(true);
  { TraceSpan span(&buf, "kv", "checkpoint"); }
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.Events()[0].name, "checkpoint");
  EXPECT_STREQ(buf.Events()[0].cat, "kv");
}

TEST(TraceBufferTest, KvRootsAreSampledButChildrenAndNetRootsAreNot) {
  TraceBuffer buf(64);
  buf.set_enabled(true);
  buf.SetKvSampleEvery(4);
  SetCurrentTrace(&buf);

  // 8 bare kv roots at 1-in-4: exactly 2 recorded.
  for (int i = 0; i < 8; ++i) {
    OpSpan op("kv", "put");
  }
  EXPECT_EQ(buf.size(), 2u);

  // net roots never sample out (every RPC is always traced)...
  for (int i = 0; i < 8; ++i) {
    OpSpan rpc("net", "get_req.rpc");
  }
  EXPECT_EQ(buf.size(), 10u);

  // ...and neither do children of a recorded span, kv or otherwise.
  {
    OpSpan parent("net", "handle.get_req");
    for (int i = 0; i < 8; ++i) {
      OpSpan child("kv", "get");
      EXPECT_TRUE(child.active());
    }
  }
  EXPECT_EQ(buf.size(), 19u);

  // Sample rate 1 = record everything.
  buf.SetKvSampleEvery(1);
  for (int i = 0; i < 4; ++i) {
    OpSpan op("kv", "put");
  }
  EXPECT_EQ(buf.size(), 23u);
  SetCurrentTrace(nullptr);
}

TEST(TraceBufferTest, CurrentTraceIsThreadLocal) {
  EXPECT_EQ(CurrentTrace(), nullptr);
  TraceBuffer buf(8);
  SetCurrentTrace(&buf);
  EXPECT_EQ(CurrentTrace(), &buf);
  std::thread([] { EXPECT_EQ(CurrentTrace(), nullptr); }).join();
  SetCurrentTrace(nullptr);
}

TEST(TraceBufferTest, ChromeTraceOutputParses) {
  testutil::TempDir tmp("obs_trace");
  TraceBuffer buf(8);
  buf.set_enabled(true);
  buf.Add("flush", "store", 1000, 50);
  buf.Add("compaction", "store", 1100, 200);
  const std::string path = tmp.path() + "/trace.json";
  ASSERT_TRUE(buf.WriteChromeTrace(path, 2).ok());

  std::string text;
  ASSERT_TRUE(sim::Storage::ReadFileToString(path, &text).ok());
  JsonValue v;
  ASSERT_TRUE(ParseJson(text, &v));
  const JsonValue* events = v.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Alongside the two spans: process_name metadata and the dropped counter
  // (no threads registered names, so no thread_name rows).
  std::vector<const JsonValue*> spans;
  int meta = 0, counters = 0;
  for (const JsonValue& ev : events->array) {
    const std::string& ph = ev.Find("ph")->str;
    if (ph == "X") spans.push_back(&ev);
    if (ph == "M") ++meta;
    if (ph == "C") ++counters;
  }
  EXPECT_GE(meta, 1);      // process_name for the rank
  EXPECT_EQ(counters, 1);  // trace.dropped
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0]->Find("name")->str, "flush");
  EXPECT_DOUBLE_EQ(spans[0]->Find("pid")->number, 2);
  // Timestamps are absolute (one shared steady clock lets per-rank files
  // merge without rebasing).
  EXPECT_DOUBLE_EQ(spans[0]->Find("ts")->number, 1000);
  EXPECT_DOUBLE_EQ(spans[1]->Find("ts")->number, 1100);
}

}  // namespace
}  // namespace papyrus::obs
