// Storage-layer fault injection end to end: torn/short SSTable writes and
// bit flips must be *detected* by the read-path CRCs (never wrong data),
// an injected ENOSPC must not lose in-memory records, and a corrupt table
// must heal itself from the latest checkpoint copy when one exists.
#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "core/db_shard.h"
#include "fault_test_util.h"
#include "store/format.h"

namespace papyrus::testutil {
namespace {

class StorageFaultTest : public FaultTest {};

// Opens a single-rank db, writes kCount patterned keys, and flushes them.
constexpr int kCount = 24;

std::string Key(int i) { return "key" + std::to_string(i); }
std::string Value(int i) { return PatternValue(1000 + i, 64); }

void Populate(papyruskv_db_t* db, const char* name = "sfault") {
  ASSERT_EQ(papyruskv_open(name, PAPYRUSKV_CREATE | PAPYRUSKV_RDWR, nullptr,
                           db),
            PAPYRUSKV_SUCCESS);
  for (int i = 0; i < kCount; ++i) {
    ASSERT_EQ(PutStr(*db, Key(i), Value(i)), PAPYRUSKV_SUCCESS);
  }
}

// Every key either reads back intact or fails with CORRUPTED — wrong data
// is the one outcome injection must never produce.  Returns the number of
// corrupted reads.
int VerifyIntactOrCorrupted(papyruskv_db_t db) {
  int corrupted = 0;
  for (int i = 0; i < kCount; ++i) {
    std::string out;
    const int rc = GetStr(db, Key(i), &out);
    if (rc == PAPYRUSKV_SUCCESS) {
      EXPECT_EQ(out, Value(i)) << Key(i);
    } else {
      EXPECT_EQ(rc, PAPYRUSKV_CORRUPTED) << Key(i);
      ++corrupted;
    }
  }
  return corrupted;
}

TEST_F(StorageFaultTest, TornWriteCaughtByReadCrc) {
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    Populate(&db);
    Arm("sstable.write.torn=1.0");
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);
    fault::Registry::Instance().DisableAll();

    fault::Point& torn =
        fault::Registry::Instance().GetPoint("sstable.write.torn");
    EXPECT_GT(torn.injected(), 0u);
    EXPECT_GE(VerifyIntactOrCorrupted(db), 1)
        << "a torn write was never detected";
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(StorageFaultTest, BitflipCaughtByReadCrc) {
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    Populate(&db);
    Arm("sstable.write.bitflip=1.0");
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);
    fault::Registry::Instance().DisableAll();

    fault::Point& flip =
        fault::Registry::Instance().GetPoint("sstable.write.bitflip");
    EXPECT_GT(flip.injected(), 0u);
    EXPECT_GE(VerifyIntactOrCorrupted(db), 1)
        << "a flipped bit was never detected";
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(StorageFaultTest, InjectedEnospcKeepsRecordsReadable) {
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    Populate(&db);
    // Every SSTable write fails: the flush errors out, but the sealed
    // MemTable must stay searchable — records are only retired from
    // memory after they are durable.
    Arm("storage.write.enospc=1.0");
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);
    fault::Registry::Instance().DisableAll();

    fault::Point& enospc =
        fault::Registry::Instance().GetPoint("storage.write.enospc");
    EXPECT_GT(enospc.injected(), 0u);
    for (int i = 0; i < kCount; ++i) {
      std::string out;
      ASSERT_EQ(GetStr(db, Key(i), &out), PAPYRUSKV_SUCCESS) << Key(i);
      EXPECT_EQ(out, Value(i));
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

void FlipByteOnDisk(const std::string& path, size_t offset_from_end) {
  std::string raw;
  ASSERT_TRUE(sim::Storage::ReadFileToString(path, &raw).ok());
  ASSERT_GT(raw.size(), offset_from_end);
  raw[raw.size() - 1 - offset_from_end] ^= 0x55;
  ASSERT_TRUE(sim::Storage::WriteStringToFile(path, raw).ok());
}

TEST_F(StorageFaultTest, CorruptTableRepairsItselfFromCheckpoint) {
  TempDir snap{"sfault_snap"};
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    Populate(&db);
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_checkpoint(db, snap.path().c_str(), nullptr),
              PAPYRUSKV_SUCCESS);

    auto shard = papyrus::core::DbHandle(db);
    const auto live = shard->manifest().LiveSsids();
    ASSERT_EQ(live.size(), 1u);
    FlipByteOnDisk(shard->dir() + "/" + store::SsDataName(live[0]), 3);

    // Every key reads back: the first corrupt probe restores the table
    // from the checkpoint copy and re-reads.
    for (int i = 0; i < kCount; ++i) {
      std::string out;
      ASSERT_EQ(GetStr(db, Key(i), &out), PAPYRUSKV_SUCCESS) << Key(i);
      EXPECT_EQ(out, Value(i));
    }
    EXPECT_FALSE(shard->manifest().IsQuarantined(live[0]));
    EXPECT_GE(
        obs::Current().GetCounter("store.repair.success").Value(), 1u);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(StorageFaultTest, UnrepairableTableIsQuarantined) {
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    Populate(&db);  // no checkpoint: nothing to repair from
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);

    auto shard = papyrus::core::DbHandle(db);
    const auto live = shard->manifest().LiveSsids();
    ASSERT_EQ(live.size(), 1u);
    FlipByteOnDisk(shard->dir() + "/" + store::SsDataName(live[0]), 3);

    // "key0" sorts first in the table, so its record is NOT the one the
    // tail flip landed in — yet once any read trips the corruption, the
    // whole table is quarantined and fails fast.
    std::string out;
    int first_bad = -1;
    for (int i = 0; i < kCount && first_bad < 0; ++i) {
      if (GetStr(db, Key(i), &out) == PAPYRUSKV_CORRUPTED) first_bad = i;
    }
    ASSERT_GE(first_bad, 0) << "corruption was never detected";
    EXPECT_TRUE(shard->manifest().IsQuarantined(live[0]));
    EXPECT_EQ(GetStr(db, Key(first_bad), &out), PAPYRUSKV_CORRUPTED);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(StorageFaultTest, TruncatedSnapshotMetaDetected) {
  TempDir snap{"sfault_meta"};
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    Populate(&db, "metadb");
    ASSERT_EQ(papyruskv_checkpoint(db, snap.path().c_str(), nullptr),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);

    // Truncate the trailing CRC footer — the classic torn-write shape.
    const std::string meta = snap.path() + "/metadb/snapshot.meta";
    std::string raw;
    ASSERT_TRUE(sim::Storage::ReadFileToString(meta, &raw).ok());
    ASSERT_GT(raw.size(), 6u);
    ASSERT_TRUE(
        sim::Storage::WriteStringToFile(meta, raw.substr(0, raw.size() - 6))
            .ok());

    // Single checkpoint: no .bak yet, so the corruption must surface.
    papyruskv_db_t db2;
    EXPECT_EQ(papyruskv_restart(snap.path().c_str(), "metadb",
                                PAPYRUSKV_RDWR, nullptr, &db2, nullptr),
              PAPYRUSKV_CORRUPTED);
  });
}

TEST_F(StorageFaultTest, TruncatedSnapshotMetaFallsBackToBak) {
  TempDir snap{"sfault_bak"};
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    Populate(&db, "bakdb");
    // Two checkpoints: the second preserves the first's meta as .bak.
    ASSERT_EQ(papyruskv_checkpoint(db, snap.path().c_str(), nullptr),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_checkpoint(db, snap.path().c_str(), nullptr),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);

    const std::string meta = snap.path() + "/bakdb/snapshot.meta";
    ASSERT_TRUE(sim::Storage::FileExists(meta + ".bak"));
    std::string raw;
    ASSERT_TRUE(sim::Storage::ReadFileToString(meta, &raw).ok());
    ASSERT_TRUE(
        sim::Storage::WriteStringToFile(meta, raw.substr(0, raw.size() / 2))
            .ok());

    // The loader detects the truncation and falls back to the previous
    // consistent meta, so restart succeeds with all data intact.
    papyruskv_db_t db2;
    ASSERT_EQ(papyruskv_restart(snap.path().c_str(), "bakdb",
                                PAPYRUSKV_RDWR, nullptr, &db2, nullptr),
              PAPYRUSKV_SUCCESS);
    for (int i = 0; i < kCount; ++i) {
      std::string out;
      ASSERT_EQ(GetStr(db2, Key(i), &out), PAPYRUSKV_SUCCESS) << Key(i);
      EXPECT_EQ(out, Value(i));
    }
    ASSERT_EQ(papyruskv_close(db2), PAPYRUSKV_SUCCESS);
  });
}

}  // namespace
}  // namespace papyrus::testutil
