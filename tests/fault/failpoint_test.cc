// Failpoint registry unit tests: spec grammar, trigger semantics, rank
// scoping, and seed determinism.  These drive Registry/Point directly —
// no KV runtime — so every behavior is pinned at the source.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault_test_util.h"

namespace papyrus::testutil {
namespace {

using fault::Registry;

class FailpointTest : public FaultTest {};

TEST_F(FailpointTest, DisabledByDefaultAndAfterDisableAll) {
  EXPECT_FALSE(fault::Enabled());
  Arm("sstable.write.torn=1.0");
  EXPECT_TRUE(fault::Enabled());
  Registry::Instance().DisableAll();
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(Registry::Instance().GetPoint("sstable.write.torn").Fire());
}

TEST_F(FailpointTest, SpecGrammarAccepted) {
  Arm("sstable.write.torn=0.01, net.msg.drop=rank1:0.05,"
      "rank.crash=rank2@op500,storage.write.enospc=@op10");
  std::vector<std::string> desc = Registry::Instance().Describe();
  std::sort(desc.begin(), desc.end());
  ASSERT_EQ(desc.size(), 4u);
  EXPECT_EQ(desc[0], "net.msg.drop=rank1:0.05");
  EXPECT_EQ(desc[1], "rank.crash=rank2@op500");
  EXPECT_EQ(desc[2], "sstable.write.torn=0.01");
  EXPECT_EQ(desc[3], "storage.write.enospc=@op10");
}

TEST_F(FailpointTest, MalformedSpecRejectsAndDisarmsEverything) {
  Arm("net.msg.drop=1.0");
  ASSERT_TRUE(fault::Enabled());
  for (const char* bad :
       {"net.msg.drop", "=0.5", "net.msg.drop=1.5", "net.msg.drop=-0.1",
        "net.msg.drop=rank:0.5", "net.msg.drop=rankX:0.5",
        "net.msg.drop=@op0", "net.msg.drop=@opX", "net.msg.drop=abc"}) {
    Status s = Registry::Instance().Configure(bad, 1);
    EXPECT_EQ(s.code(), PAPYRUSKV_INVALID_ARG) << bad;
    // A rejected spec must leave nothing half-armed — including the
    // previously valid configuration.
    EXPECT_FALSE(fault::Enabled()) << bad;
  }
}

TEST_F(FailpointTest, EmptySpecIsValidNoop) {
  Arm("net.msg.drop=1.0");
  ASSERT_TRUE(Registry::Instance().Configure("", 1).ok());
  EXPECT_FALSE(fault::Enabled());
}

TEST_F(FailpointTest, ProbabilityEndpoints) {
  Arm("p.always=1.0,p.never=0.0");
  fault::Point& always = Registry::Instance().GetPoint("p.always");
  fault::Point& never = Registry::Instance().GetPoint("p.never");
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(always.Fire());
    EXPECT_FALSE(never.Fire());
  }
  EXPECT_EQ(always.injected(), 100u);
}

TEST_F(FailpointTest, RankScopingFollowsThreadRank) {
  Arm("p.scoped=rank1:1.0");
  fault::Point& p = Registry::Instance().GetPoint("p.scoped");
  fault::SetThreadRank(0);
  EXPECT_FALSE(p.Fire());
  fault::SetThreadRank(1);
  EXPECT_TRUE(p.Fire());
  fault::SetThreadRank(-1);  // unknown thread never matches a rank scope
  EXPECT_FALSE(p.Fire());
}

TEST_F(FailpointTest, CountTriggerFiresExactlyOnceOnNthHit) {
  Arm("p.nth=@op5");
  fault::Point& p = Registry::Instance().GetPoint("p.nth");
  for (int i = 1; i <= 20; ++i) {
    EXPECT_EQ(p.Fire(), i == 5) << "hit " << i;
  }
  EXPECT_EQ(p.injected(), 1u);
}

TEST_F(FailpointTest, RankScopedCountIgnoresOtherRanksHits) {
  Arm("p.rnth=rank1@op3");
  fault::Point& p = Registry::Instance().GetPoint("p.rnth");
  // Rank 0 hammering the point must not advance rank 1's hit count.
  fault::SetThreadRank(0);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(p.Fire());
  fault::SetThreadRank(1);
  EXPECT_FALSE(p.Fire());
  EXPECT_FALSE(p.Fire());
  EXPECT_TRUE(p.Fire());   // rank 1's 3rd hit
  EXPECT_FALSE(p.Fire());  // once only
  fault::SetThreadRank(-1);
}

TEST_F(FailpointTest, SameSeedSameSpecReproducesFiringSequence) {
  auto sequence = [&](uint64_t seed) {
    EXPECT_TRUE(
        Registry::Instance().Configure("p.det=0.5", seed).ok());
    std::vector<bool> fired;
    fault::Point& p = Registry::Instance().GetPoint("p.det");
    for (int i = 0; i < 64; ++i) fired.push_back(p.Fire());
    return fired;
  };
  const std::vector<bool> a = sequence(42);
  const std::vector<bool> b = sequence(42);
  const std::vector<bool> c = sequence(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 2^-64 collision odds: a fair canary for re-seeding
}

TEST_F(FailpointTest, DistinctPointsDrawIndependentStreams) {
  Arm("p.one=0.5,p.two=0.5", 7);
  std::vector<bool> one, two;
  for (int i = 0; i < 64; ++i) {
    one.push_back(Registry::Instance().GetPoint("p.one").Fire());
    two.push_back(Registry::Instance().GetPoint("p.two").Fire());
  }
  EXPECT_NE(one, two);
}

TEST_F(FailpointTest, RandIsDeterministicPerSeed) {
  Arm("p.rand=1.0", 99);
  std::vector<uint64_t> a;
  for (int i = 0; i < 16; ++i) {
    a.push_back(Registry::Instance().GetPoint("p.rand").Rand(1000));
  }
  Arm("p.rand=1.0", 99);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(Registry::Instance().GetPoint("p.rand").Rand(1000), a[i]);
  }
}

TEST_F(FailpointTest, RetryPolicyEnvOverrides) {
  fault::RetryPolicy def = fault::RetryPolicy::FromEnv();
  EXPECT_EQ(def.max_attempts, 4);
  EXPECT_EQ(def.reply_timeout_us, 10'000'000u);
  EXPECT_EQ(def.barrier_timeout_us, 60'000'000u);

  setenv("PAPYRUSKV_RETRY_MAX", "7", 1);
  setenv("PAPYRUSKV_TIMEOUT_MS", "250", 1);
  setenv("PAPYRUSKV_BARRIER_TIMEOUT_MS", "1500", 1);
  fault::RetryPolicy p = fault::RetryPolicy::FromEnv();
  EXPECT_EQ(p.max_attempts, 7);
  EXPECT_EQ(p.reply_timeout_us, 250'000u);
  EXPECT_EQ(p.barrier_timeout_us, 1'500'000u);
  ScrubFaultEnv();
}

TEST_F(FailpointTest, BackoffIsExponentialAndCapped) {
  fault::RetryPolicy p;  // base 1ms, cap 64ms
  EXPECT_EQ(p.BackoffUs(1), 1'000u);
  EXPECT_EQ(p.BackoffUs(2), 2'000u);
  EXPECT_EQ(p.BackoffUs(3), 4'000u);
  EXPECT_EQ(p.BackoffUs(7), 64'000u);
  EXPECT_EQ(p.BackoffUs(8), 64'000u);   // capped
  EXPECT_EQ(p.BackoffUs(60), 64'000u);  // shift clamped, no UB
}

}  // namespace
}  // namespace papyrus::testutil
