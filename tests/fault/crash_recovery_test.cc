// End-to-end crash/recovery: a rank dies mid-workload (rank.crash
// failpoint — volatile state discarded, NVM survives), the survivors get
// clean errors instead of hangs, and a restart from the last checkpoint
// restores 100% of the committed (checkpointed) key space — including
// redistribution onto a different rank count (§4.2).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "core/db_shard.h"
#include "core/runtime.h"
#include "fault_test_util.h"
#include "obs/metrics.h"

namespace papyrus::testutil {
namespace {

class CrashRecoveryTest : public FaultTest {};

constexpr int kRanksBefore = 3;
constexpr int kRanksAfter = 2;
constexpr int kCommitted = 40;  // batch-A keys per snapshot rank
constexpr int kAfterCkpt = 30;  // batch-B attempts per rank (not verified)

std::string AKey(int rank, int i) {
  return "a." + std::to_string(rank) + "." + std::to_string(i);
}
std::string AValue(int rank, int i) {
  return PatternValue(777 + rank * 1000 + i, 48);
}

TEST_F(CrashRecoveryTest, RankCrashMidWorkloadRestoresCommittedKeys) {
  // Tight retries: a crashed rank answers nothing (fail-stop, §4.2), so
  // survivors' ops to it run the full timeout ladder — with the default
  // 10s × 4 attempts this test would take minutes of wall clock.
  setenv("PAPYRUSKV_TIMEOUT_MS", "50", 1);
  setenv("PAPYRUSKV_RETRY_MAX", "2", 1);
  TempDir snap{"crash_snap"};

  // ---- Run 1: 3 ranks; rank 2 crashes after the checkpoint ----
  RunKv(kRanksBefore, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("crashdb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);

    // Batch A: the committed key space, sealed by a synchronous
    // checkpoint (internally barrier(SSTABLE), so every record is on NVM
    // before the snapshot copies run).
    for (int i = 0; i < kCommitted; ++i) {
      ASSERT_EQ(PutStr(db, AKey(ctx.rank, i), AValue(ctx.rank, i)),
                PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_checkpoint(db, snap.path().c_str(), nullptr),
              PAPYRUSKV_SUCCESS);

    // Arm the crash: rank 2 dies on its 10th public operation from here.
    // (Collective arming — every rank configures the same process-wide
    // registry, so make it idempotent and fence it with a barrier.)
    ctx.comm.Barrier();
    if (ctx.rank == 0) Arm("rank.crash=rank2@op10");
    ctx.comm.Barrier();

    // Batch B: uncommitted tail.  Rank 2's ops start failing at the
    // injected crash; survivors' ops may time out when rank 2 owns the
    // key.  Nothing here may hang, and nothing here is verified later.
    int rank2_errors = 0;
    for (int i = 0; i < kAfterCkpt; ++i) {
      const std::string k =
          "b." + std::to_string(ctx.rank) + "." + std::to_string(i);
      const int rc = PutStr(db, k, "uncommitted");
      if (ctx.rank == 2 && rc != PAPYRUSKV_SUCCESS) {
        EXPECT_EQ(rc, PAPYRUSKV_ERR);
        ++rank2_errors;
      }
    }
    if (ctx.rank == 2) {
      EXPECT_GE(rank2_errors, kAfterCkpt - 10)
          << "rank 2 kept succeeding after its injected crash";
      EXPECT_TRUE(papyrus::core::KvRuntime::Current()->crashed());
      // A crashed rank's API stays dead: even a read fails fast.
      std::string out;
      EXPECT_EQ(GetStr(db, AKey(2, 0), &out), PAPYRUSKV_ERR);
    }

    // Close still completes on every rank — the crashed rank pairs the
    // collectives without contributing data, so survivors cannot wedge.
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
  fault::Registry::Instance().DisableAll();

  // ---- Run 2: restart on 2 ranks from the 3-rank snapshot ----
  TempDir repo2{"crash_repo2"};
  RunKv(kRanksAfter, repo2.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_restart(snap.path().c_str(), "crashdb",
                                PAPYRUSKV_RDWR, nullptr, &db, nullptr),
              PAPYRUSKV_SUCCESS);

    // 100% of the committed key space is back, redistributed 3 → 2.
    for (int rank = 0; rank < kRanksBefore; ++rank) {
      for (int i = 0; i < kCommitted; ++i) {
        std::string out;
        ASSERT_EQ(GetStr(db, AKey(rank, i), &out), PAPYRUSKV_SUCCESS)
            << AKey(rank, i);
        EXPECT_EQ(out, AValue(rank, i)) << AKey(rank, i);
      }
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(CrashRecoveryTest, BatchStraddlingACrashLosesNoFencedKeys) {
  // The async-pipeline variant of the crash story (DESIGN.md §9): every
  // key submitted with papyruskv_put_async and sealed by fence + checkpoint
  // must survive a rank crash that lands mid-batch in the following
  // (unfenced) traffic.  Small batches and tight retries keep the
  // post-crash timeouts bounded.
  setenv("PAPYRUSKV_BATCH_MAX", "8", 1);
  setenv("PAPYRUSKV_TIMEOUT_MS", "50", 1);
  setenv("PAPYRUSKV_RETRY_MAX", "2", 1);
  TempDir snap{"batch_crash_snap"};
  constexpr int kFenced = 24;   // async puts per rank, fenced + checkpointed
  constexpr int kUnfenced = 8;  // post-crash attempts per rank

  RunKv(kRanksBefore, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("batchcrashdb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);

    // Fenced batch: fire-and-forget async puts — several put_batch frames
    // per destination under the 8-op cap — sealed by the completion fence,
    // then checkpointed.
    for (int i = 0; i < kFenced; ++i) {
      const std::string k = "f." + std::to_string(ctx.rank) + "." +
                            std::to_string(i);
      const std::string v = AValue(ctx.rank, i);
      ASSERT_EQ(papyruskv_put_async(db, k.data(), k.size(), v.data(),
                                    v.size(), nullptr),
                PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_fence(db), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_checkpoint(db, snap.path().c_str(), nullptr),
              PAPYRUSKV_SUCCESS);

    ctx.comm.Barrier();
    if (ctx.rank == 0) Arm("rank.crash=rank2@op2");
    ctx.comm.Barrier();

    // Unfenced tail: rank 2 dies mid-stream, so its own submissions start
    // completing with PAPYRUSKV_ERR and survivors' batches to rank 2 time
    // out — every wait must return, nothing may hang, and none of this
    // traffic is verified after restart.
    std::vector<papyruskv_event_t> evs;
    for (int i = 0; i < kUnfenced; ++i) {
      const std::string k = "u." + std::to_string(ctx.rank) + "." +
                            std::to_string(i);
      papyruskv_event_t ev = 0;
      const int rc =
          papyruskv_put_async(db, k.data(), k.size(), "unfenced", 8, &ev);
      if (rc == PAPYRUSKV_SUCCESS) evs.push_back(ev);
    }
    int errors = 0;
    for (papyruskv_event_t ev : evs) {
      if (papyruskv_wait(db, ev) != PAPYRUSKV_SUCCESS) ++errors;
    }
    if (ctx.rank == 2) {
      EXPECT_GT(errors, 0) << "rank 2 kept succeeding after its crash";
      EXPECT_TRUE(papyrus::core::KvRuntime::Current()->crashed());
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
  fault::Registry::Instance().DisableAll();

  // Restart from the snapshot on fewer ranks: 100% of the fenced keys are
  // back; the unfenced tail owes nothing.
  TempDir repo2{"batch_crash_repo2"};
  RunKv(kRanksAfter, repo2.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_restart(snap.path().c_str(), "batchcrashdb",
                                PAPYRUSKV_RDWR, nullptr, &db, nullptr),
              PAPYRUSKV_SUCCESS);
    for (int rank = 0; rank < kRanksBefore; ++rank) {
      for (int i = 0; i < kFenced; ++i) {
        const std::string k =
            "f." + std::to_string(rank) + "." + std::to_string(i);
        std::string out;
        ASSERT_EQ(GetStr(db, k, &out), PAPYRUSKV_SUCCESS) << k;
        EXPECT_EQ(out, AValue(rank, i)) << k;
      }
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(CrashRecoveryTest, ReplicationRestoresCommittedKeysWithoutCheckpoint) {
  // The zero-data-loss failover story (DESIGN.md §12): with k=2 intra-group
  // replication every fenced put is quorum-durable on the primary AND its
  // follower before the fence returns, so a rank crash loses nothing even
  // though no checkpoint was ever taken and nothing reached an SSTable.
  // Survivors detect the dead rank on their first timed-out request, elect
  // and promote its most-caught-up follower (which replays its shadow log),
  // and retry against the new serving rank — all inside the same get, so
  // the reads below assert plain SUCCESS.
  setenv("PAPYRUSKV_REPLICAS", "2", 1);
  setenv("PAPYRUSKV_TIMEOUT_MS", "50", 1);
  setenv("PAPYRUSKV_RETRY_MAX", "2", 1);
  constexpr int kFenced = 32;  // committed keys per rank

  RunKv(kRanksBefore, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("repldb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);

    // The committed key space.  The MEMTABLE barrier is the commit point:
    // it drains replication acks (quorum = both copies at k=2) but flushes
    // nothing — every record is still volatile on every rank.
    for (int i = 0; i < kFenced; ++i) {
      ASSERT_EQ(PutStr(db, AKey(ctx.rank, i), AValue(ctx.rank, i)),
                PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);

    ctx.comm.Barrier();
    if (ctx.rank == 0) Arm("rank.crash=rank2@op2");
    ctx.comm.Barrier();

    // Rank 2 trips the crash on unverified traffic; the raw communicator
    // barrier below still pairs (it bypasses the KV runtime), so the
    // survivors only start reading once rank 2 is really dead.
    if (ctx.rank == 2) {
      std::string out;
      EXPECT_EQ(GetStr(db, AKey(2, 0), &out), PAPYRUSKV_SUCCESS);
      EXPECT_EQ(GetStr(db, AKey(2, 1), &out), PAPYRUSKV_ERR);  // the crash
      EXPECT_TRUE(papyrus::core::KvRuntime::Current()->crashed());
    }
    ctx.comm.Barrier();

    // Survivors read back 100% of the committed key space — including every
    // key whose hash owner is the dead rank, served by the promoted
    // follower's replayed shadow log.  ZERO lost keys, no checkpoint.
    if (ctx.rank != 2) {
      for (int rank = 0; rank < kRanksBefore; ++rank) {
        for (int i = 0; i < kFenced; ++i) {
          std::string out;
          ASSERT_EQ(GetStr(db, AKey(rank, i), &out), PAPYRUSKV_SUCCESS)
              << AKey(rank, i);
          EXPECT_EQ(out, AValue(rank, i)) << AKey(rank, i);
        }
      }
    }
    // Rank 0 is rank 2's only follower at k=2, so it is the rank that
    // promoted (whether it won its own election or rank 1's).
    if (ctx.rank == 0) {
      EXPECT_GT(obs::Current().GetCounter("repl.promotions").Value(), 0u)
          << "dead rank's keys were served without a promotion";
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
  fault::Registry::Instance().DisableAll();
}

TEST_F(CrashRecoveryTest, CrashedRankDropsVolatileButKeepsNvm) {
  // Single rank, no checkpoint: the crash discards MemTables and caches
  // but flushed SSTables survive — exactly the §4.2 failure model.
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("volat", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR,
                             nullptr, &db),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(PutStr(db, "durable", "on-nvm"), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(PutStr(db, "volatile", "in-memtable"), PAPYRUSKV_SUCCESS);

    Arm("rank.crash=@op1");
    std::string out;
    EXPECT_EQ(GetStr(db, "durable", &out), PAPYRUSKV_ERR);  // the crash
    fault::Registry::Instance().DisableAll();

    auto rt = papyrus::core::KvRuntime::Current();
    ASSERT_TRUE(rt->crashed());
    // Still dead after disarming: crashed is a state, not a failpoint.
    EXPECT_EQ(GetStr(db, "durable", &out), PAPYRUSKV_ERR);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });

  // A fresh run over the same repository adopts the surviving SSTables:
  // the flushed key is back, the unflushed one died with the MemTable.
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("volat", PAPYRUSKV_RDWR, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    std::string out;
    ASSERT_EQ(GetStr(db, "durable", &out), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(out, "on-nvm");
    EXPECT_EQ(GetStr(db, "volatile", &out), PAPYRUSKV_NOT_FOUND);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

}  // namespace
}  // namespace papyrus::testutil
