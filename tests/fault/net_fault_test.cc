// Network fault injection: timed receives, bounded retry on drops, dup
// and delay tolerance, and timeout surfacing with suspect-peer marking.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/timer.h"
#include "core/db_shard.h"
#include "core/runtime.h"
#include "fault_test_util.h"

namespace papyrus::testutil {
namespace {

class NetFaultTest : public FaultTest {};

TEST_F(NetFaultTest, RecvForTimesOutWithNoSender) {
  sim::Topology topo;
  topo.nranks = 2;
  topo.ranks_per_node = 2;
  net::RunRanks(topo, [&](net::RankContext& ctx) {
    if (ctx.rank == 0) {
      net::Message m;
      const uint64_t t0 = NowMicros();
      EXPECT_FALSE(ctx.comm.RecvFor(1, 7, 50'000, &m));
      EXPECT_GE(NowMicros() - t0, 50'000u);
    }
    ctx.comm.Barrier();
  });
}

TEST_F(NetFaultTest, RecvForDeliversBeforeDeadline) {
  sim::Topology topo;
  topo.nranks = 2;
  topo.ranks_per_node = 2;
  net::RunRanks(topo, [&](net::RankContext& ctx) {
    if (ctx.rank == 1) {
      ctx.comm.Send(0, 7, "ping");
    } else {
      net::Message m;
      ASSERT_TRUE(ctx.comm.RecvFor(1, 7, 5'000'000, &m));
      EXPECT_EQ(m.payload, "ping");
      EXPECT_EQ(m.src, 1);
    }
    ctx.comm.Barrier();
  });
}

TEST_F(NetFaultTest, BarrierForTimesOutWhenPeerNeverArrives) {
  sim::Topology topo;
  topo.nranks = 2;
  topo.ranks_per_node = 2;
  net::RunRanks(topo, [&](net::RankContext& ctx) {
    if (ctx.rank == 0) {
      EXPECT_FALSE(ctx.comm.BarrierFor(100'000));
    }
    // Rank 1 deliberately never joins.
  });
}

// Keys owned by `owner` under the db's hash, enough for a small workload.
std::vector<std::string> KeysOwnedBy(const core::DbShardPtr& shard, int owner,
                                     int want) {
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < static_cast<size_t>(want); ++i) {
    std::string k = "nk" + std::to_string(i);
    if (shard->OwnerOf(k) == owner) keys.push_back(std::move(k));
  }
  return keys;
}

TEST_F(NetFaultTest, DroppedMessagesAreRetriedToSuccess) {
  // 10% drop on every runtime request/reply; the bounded-retry layer must
  // absorb it completely.  (8 attempts at p=0.1 each way: the chance any
  // single op exhausts its retries is ~1e-6 per the armed seed — and the
  // fixed seed makes the run reproducible regardless.)
  setenv("PAPYRUSKV_TIMEOUT_MS", "100", 1);
  setenv("PAPYRUSKV_RETRY_MAX", "8", 1);
  RunKv(2, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("dropdb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    auto shard = papyrus::core::DbHandle(db);
    const int peer = 1 - ctx.rank;
    const auto keys = KeysOwnedBy(shard, peer, 20);

    ctx.comm.Barrier();
    if (ctx.rank == 0) Arm("net.msg.drop=0.1");
    ctx.comm.Barrier();
    for (const auto& k : keys) {
      ASSERT_EQ(PutStr(db, k, "v:" + k + ":" + std::to_string(ctx.rank)),
                PAPYRUSKV_SUCCESS)
          << k;
    }
    for (const auto& k : keys) {
      std::string out;
      ASSERT_EQ(GetStr(db, k, &out), PAPYRUSKV_SUCCESS) << k;
      EXPECT_EQ(out, "v:" + k + ":" + std::to_string(ctx.rank));
    }
    ctx.comm.Barrier();
    fault::Registry::Instance().DisableAll();

    EXPECT_GT(
        fault::Registry::Instance().GetPoint("net.msg.drop").injected(), 0u);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(NetFaultTest, PersistentDropSurfacesTimeoutAndMarksSuspect) {
  // Rank 0 drops every runtime message it sends: its remote operations
  // must fail with PAPYRUSKV_ERR_TIMEOUT after bounded retries — not hang
  // — and the unreachable peer must be marked suspect.
  setenv("PAPYRUSKV_TIMEOUT_MS", "50", 1);
  setenv("PAPYRUSKV_RETRY_MAX", "2", 1);
  RunKv(2, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("deaddb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    auto shard = papyrus::core::DbHandle(db);
    ctx.comm.Barrier();

    if (ctx.rank == 0) {
      Arm("net.msg.drop=rank0:1.0");
      const auto keys = KeysOwnedBy(shard, 1, 1);
      const uint64_t t0 = NowMicros();
      EXPECT_EQ(PutStr(db, keys[0], "lost"), PAPYRUSKV_ERR_TIMEOUT);
      // Bounded: 2 attempts x 50ms plus backoff, nowhere near a hang.
      EXPECT_LT(NowMicros() - t0, 10'000'000u);
      EXPECT_TRUE(papyrus::core::KvRuntime::Current()->IsSuspect(1));
      fault::Registry::Instance().DisableAll();
    }
    ctx.comm.Barrier();
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(NetFaultTest, DuplicatedMessagesAreHarmless) {
  RunKv(2, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("dupdb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    auto shard = papyrus::core::DbHandle(db);
    const auto keys = KeysOwnedBy(shard, 1 - ctx.rank, 20);

    ctx.comm.Barrier();
    if (ctx.rank == 0) Arm("net.msg.dup=0.5");
    ctx.comm.Barrier();
    for (const auto& k : keys) {
      ASSERT_EQ(PutStr(db, k, "dup:" + std::to_string(ctx.rank)),
                PAPYRUSKV_SUCCESS);
    }
    for (const auto& k : keys) {
      std::string out;
      ASSERT_EQ(GetStr(db, k, &out), PAPYRUSKV_SUCCESS) << k;
      EXPECT_EQ(out, "dup:" + std::to_string(ctx.rank));
    }
    ctx.comm.Barrier();
    fault::Registry::Instance().DisableAll();
    EXPECT_GT(
        fault::Registry::Instance().GetPoint("net.msg.dup").injected(), 0u);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(NetFaultTest, DelayedMessagesStillCorrect) {
  RunKv(2, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("delaydb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    auto shard = papyrus::core::DbHandle(db);
    const auto keys = KeysOwnedBy(shard, 1 - ctx.rank, 10);

    // Every message +1ms (the PAPYRUSKV_FAULT_DELAY_US default): ops get
    // slower, never wrong — and well inside the 10s reply deadline.
    ctx.comm.Barrier();
    if (ctx.rank == 0) Arm("net.msg.delay=1.0");
    ctx.comm.Barrier();
    for (const auto& k : keys) {
      ASSERT_EQ(PutStr(db, k, "slow"), PAPYRUSKV_SUCCESS);
    }
    for (const auto& k : keys) {
      std::string out;
      ASSERT_EQ(GetStr(db, k, &out), PAPYRUSKV_SUCCESS) << k;
      EXPECT_EQ(out, "slow");
    }
    ctx.comm.Barrier();
    fault::Registry::Instance().DisableAll();
    EXPECT_GT(
        fault::Registry::Instance().GetPoint("net.msg.delay").injected(),
        0u);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

}  // namespace
}  // namespace papyrus::testutil
