// Replication failover beyond the basic zero-loss story (DESIGN.md §12):
// degraded-mode writes when a follower dies (quorum proceeds on the
// survivors), rejoin via restart with the replication stream catching the
// returned rank back up, a second failover where the promoted follower
// serves volatile keys from its replayed shadow log AND checkpointed keys
// from the dead rank's group-shared SSTables, and read-from-replica
// scaling on a healthy cluster.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "core/db_shard.h"
#include "core/runtime.h"
#include "fault_test_util.h"
#include "obs/metrics.h"

namespace papyrus::testutil {
namespace {

class ReplFailoverTest : public FaultTest {};

constexpr int kRanks = 4;
constexpr int kPerRank = 24;  // phase-A (checkpointed) keys per rank

std::string AKey(int rank, int i) {
  return "a." + std::to_string(rank) + "." + std::to_string(i);
}
std::string AValue(int rank, int i) {
  return PatternValue(910 + rank * 1000 + i, 40);
}

// Keys from `tag`'s namespace whose hash owner is `owner` — degraded-mode
// phases must steer writes at specific primaries, and the hash doesn't
// cooperate on its own.
std::vector<std::string> KeysOwnedBy(papyruskv_db_t db, const char* tag,
                                     int owner, int count) {
  std::vector<std::string> out;
  for (int n = 0; static_cast<int>(out.size()) < count; ++n) {
    const std::string k =
        std::string(tag) + "." + std::to_string(owner) + "." +
        std::to_string(n);
    int rank = -1;
    EXPECT_EQ(papyruskv_hash(db, k.data(), k.size(), &rank),
              PAPYRUSKV_SUCCESS);
    if (rank == owner) out.push_back(k);
    if (n > 100 * count) break;  // hash pathologically skewed; fail loud
  }
  EXPECT_EQ(static_cast<int>(out.size()), count);
  return out;
}

TEST_F(ReplFailoverTest, DegradedFollowerThenRejoinThenPrimaryFailover) {
  // k=2 inside a 4-rank group: every rank streams to one follower and a
  // quorum needs both copies, so a dead follower puts its primary in
  // degraded mode (acks proceed on the survivors, counted and logged)
  // rather than blocking writes forever.
  setenv("PAPYRUSKV_REPLICAS", "2", 1);
  setenv("PAPYRUSKV_TIMEOUT_MS", "50", 1);
  setenv("PAPYRUSKV_RETRY_MAX", "2", 1);
  constexpr int kDegradedWrites = 8;  // phase-B keys per surviving primary
  constexpr int kRejoinWrites = 8;    // phase-C keys per rank after restart
  TempDir snap{"repl_snap"};

  // ---- Run 1: rank 3 (rank 2's follower) dies; writes keep flowing ----
  RunKv(kRanks, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("degradeddb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);

    // Phase A: the checkpointed key space (replicated AND snapshotted).
    for (int i = 0; i < kPerRank; ++i) {
      ASSERT_EQ(PutStr(db, AKey(ctx.rank, i), AValue(ctx.rank, i)),
                PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_checkpoint(db, snap.path().c_str(), nullptr),
              PAPYRUSKV_SUCCESS);

    ctx.comm.Barrier();
    if (ctx.rank == 0) Arm("rank.crash=rank3@op2");
    ctx.comm.Barrier();
    if (ctx.rank == 3) {
      std::string out;
      EXPECT_EQ(GetStr(db, AKey(3, 0), &out), PAPYRUSKV_SUCCESS);
      EXPECT_EQ(GetStr(db, AKey(3, 1), &out), PAPYRUSKV_ERR);  // the crash
      EXPECT_TRUE(papyrus::core::KvRuntime::Current()->crashed());
    }
    ctx.comm.Barrier();

    // Phase B: each surviving primary writes to its own partition.  Rank
    // 2's follower is the dead rank 3, so its first append gives up, marks
    // the follower down, and writes from then on are quorum-of-survivors —
    // still plain SUCCESS at the API.  No collective KV barrier here: rank
    // 3 cannot participate, so the raw communicator barrier (which a
    // crashed rank still reaches) orders writers before readers instead.
    if (ctx.rank != 3) {
      const auto keys = KeysOwnedBy(db, "b", ctx.rank, kDegradedWrites);
      for (const std::string& k : keys) {
        ASSERT_EQ(PutStr(db, k, "degraded." + k), PAPYRUSKV_SUCCESS) << k;
      }
      // The per-rank fence is the durability point: it waits out the
      // replication quorum for the writes above, which on rank 2 means
      // riding out the doomed append to rank 3 and settling into
      // degraded mode.
      ASSERT_EQ(papyruskv_fence(db), PAPYRUSKV_SUCCESS);
    }
    ctx.comm.Barrier();
    if (ctx.rank != 3) {
      // Cross-check every survivor's degraded-phase writes remotely (a
      // SEQUENTIAL put lands in the owner's MemTable before returning).
      for (int owner = 0; owner < kRanks - 1; ++owner) {
        for (const std::string& k :
             KeysOwnedBy(db, "b", owner, kDegradedWrites)) {
          std::string out;
          ASSERT_EQ(GetStr(db, k, &out), PAPYRUSKV_SUCCESS) << k;
          EXPECT_EQ(out, "degraded." + k) << k;
        }
      }
    }
    if (ctx.rank == 2) {
      EXPECT_GT(obs::Current().GetCounter("repl.degraded").Value(), 0u)
          << "rank 2 never noticed its follower died";
    }
    if (ctx.rank == 0 || ctx.rank == 1) {
      EXPECT_EQ(obs::Current().GetCounter("repl.degraded").Value(), 0u)
          << "a rank with a live follower reported degraded quorum";
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
  fault::Registry::Instance().DisableAll();

  // ---- Run 2: rank 3 rejoins via restart; then the roles flip and a
  // PRIMARY (rank 0) dies with volatile writes in flight ----
  RunKv(kRanks, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_restart(snap.path().c_str(), "degradeddb",
                                PAPYRUSKV_RDWR, &opt, &db, nullptr),
              PAPYRUSKV_SUCCESS);

    // Phase C: volatile writes on every rank, including the rejoined rank
    // 3.  The MEMTABLE fence drains replication acks, so afterwards each
    // primary's stream — rank 2's to the rejoined rank 3 among them — is
    // caught up.
    const auto mine = KeysOwnedBy(db, "c", ctx.rank, kRejoinWrites);
    for (const std::string& k : mine) {
      ASSERT_EQ(PutStr(db, k, "rejoined." + k), PAPYRUSKV_SUCCESS) << k;
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);
    if (ctx.rank == 3) {
      EXPECT_GT(obs::Current().GetCounter("repl.shadow_applies").Value(),
                0u)
          << "rejoined follower received no replication stream";
    }

    ctx.comm.Barrier();
    if (ctx.rank == 1) Arm("rank.crash=rank0@op2");
    ctx.comm.Barrier();
    if (ctx.rank == 0) {
      std::string out;
      EXPECT_EQ(GetStr(db, AKey(0, 0), &out), PAPYRUSKV_SUCCESS);
      EXPECT_EQ(GetStr(db, AKey(0, 1), &out), PAPYRUSKV_ERR);  // the crash
    }
    ctx.comm.Barrier();

    // Survivors read EVERYTHING.  Rank 0's phase-C keys only ever lived in
    // MemTables — the promoted follower (rank 1) serves them from its
    // replayed shadow log; rank 0's phase-A keys come from the dead rank's
    // restored SSTables on the group-shared store.  Zero loss either way.
    if (ctx.rank != 0) {
      for (int owner = 0; owner < kRanks; ++owner) {
        for (int i = 0; i < kPerRank; ++i) {
          std::string out;
          ASSERT_EQ(GetStr(db, AKey(owner, i), &out), PAPYRUSKV_SUCCESS)
              << AKey(owner, i);
          EXPECT_EQ(out, AValue(owner, i)) << AKey(owner, i);
        }
        for (const std::string& k :
             KeysOwnedBy(db, "c", owner, kRejoinWrites)) {
          std::string out;
          ASSERT_EQ(GetStr(db, k, &out), PAPYRUSKV_SUCCESS) << k;
          EXPECT_EQ(out, "rejoined." + k) << k;
        }
      }
    }
    if (ctx.rank == 1) {
      EXPECT_GT(obs::Current().GetCounter("repl.promotions").Value(), 0u)
          << "rank 0's partition was served without a promotion";
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
  fault::Registry::Instance().DisableAll();
}

TEST_F(ReplFailoverTest, ReadFromReplicaServesHealthyGets) {
  // PAPYRUSKV_READ_REPLICAS=1 round-robins remote gets across the owner
  // and its in-sync follower.  On a healthy cluster the follower's shadow
  // MemTable answers directly — same values, counted hits, no failover
  // machinery involved.
  setenv("PAPYRUSKV_REPLICAS", "2", 1);
  setenv("PAPYRUSKV_READ_REPLICAS", "1", 1);
  constexpr int kReplRanks = 3;
  constexpr int kKeys = 16;

  RunKv(kReplRanks, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("rreaddb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_EQ(PutStr(db, AKey(ctx.rank, i), AValue(ctx.rank, i)),
                PAPYRUSKV_SUCCESS);
    }
    // The fence makes every follower's shadow current before any read.
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);
    ctx.comm.Barrier();

    // Two passes so the round-robin lands on the replica slot at least
    // once for every remote key, whatever phase it starts in.
    for (int pass = 0; pass < 2; ++pass) {
      for (int writer = 0; writer < kReplRanks; ++writer) {
        for (int i = 0; i < kKeys; ++i) {
          std::string out;
          ASSERT_EQ(GetStr(db, AKey(writer, i), &out), PAPYRUSKV_SUCCESS)
              << AKey(writer, i);
          EXPECT_EQ(out, AValue(writer, i)) << AKey(writer, i);
        }
      }
    }
    EXPECT_GT(obs::Current().GetCounter("repl.replica_read_hits").Value(),
              0u)
        << "round-robin reads never hit a replica";
    ctx.comm.Barrier();
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

}  // namespace
}  // namespace papyrus::testutil
