// Shared fixture for the fault-injection suite: KvTest plus guaranteed
// failpoint deactivation around every test (a failed ASSERT must never
// leak armed faults into the next test), plus scrubbed fault/retry env.
#pragma once

#include "../core/kv_test_util.h"
#include "fault/failpoint.h"
#include "fault/retry.h"

namespace papyrus::testutil {

inline void ScrubFaultEnv() {
  for (const char* var :
       {"PAPYRUSKV_FAULTS", "PAPYRUSKV_FAULT_SEED",
        "PAPYRUSKV_FAULT_DELAY_US", "PAPYRUSKV_TIMEOUT_MS",
        "PAPYRUSKV_RETRY_MAX", "PAPYRUSKV_BARRIER_TIMEOUT_MS"}) {
    unsetenv(var);
  }
}

class FaultTest : public KvTest {
 protected:
  void SetUp() override {
    KvTest::SetUp();
    ScrubFaultEnv();
    // Burn the first-init env hook now, with a scrubbed environment:
    // otherwise the first papyruskv_init in this process would reconfigure
    // from env and wipe whatever spec the test armed beforehand.
    ASSERT_TRUE(fault::InitFromEnvOnce().ok());
    fault::Registry::Instance().DisableAll();
  }
  void TearDown() override {
    fault::Registry::Instance().DisableAll();
    ScrubFaultEnv();
    KvTest::TearDown();
  }

  // Arms `spec` with a fixed seed; asserts it parsed.
  void Arm(const std::string& spec, uint64_t seed = 1234) {
    ASSERT_TRUE(fault::Registry::Instance().Configure(spec, seed).ok())
        << spec;
  }
};

}  // namespace papyrus::testutil
