#include <gtest/gtest.h>

#include "benchlib/report.h"
#include "benchlib/workload.h"
#include "net/runtime.h"

namespace papyrus::bench {
namespace {

TEST(ReportTest, KrpsAndMbps) {
  EXPECT_DOUBLE_EQ(Krps(10000, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(Mbps(10'000'000, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(Krps(100, 0.0), 0.0);  // no division by zero
}

TEST(ReportTest, HumanSize) {
  EXPECT_EQ(HumanSize(256), "256B");
  EXPECT_EQ(HumanSize(4096), "4KB");
  EXPECT_EQ(HumanSize(128 * 1024), "128KB");
  EXPECT_EQ(HumanSize(1 << 20), "1MB");
  EXPECT_EQ(HumanSize(1000), "1000B");  // not a whole KB
}

TEST(ReportTest, GatherStatsAcrossRanks) {
  net::RunRanks(4, [](net::RankContext& ctx) {
    // rank r contributes r+1.0; avg 2.5, min 1, max 4, same on all ranks.
    const RankStats s =
        GatherStats(ctx.comm, static_cast<double>(ctx.rank) + 1.0);
    EXPECT_DOUBLE_EQ(s.avg, 2.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
  });
}

TEST(WorkloadTest, MakeKeysDeterministicPerRank) {
  const auto a = MakeKeys(0, 10, 16);
  const auto b = MakeKeys(0, 10, 16);
  const auto c = MakeKeys(1, 10, 16);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  ASSERT_EQ(a.size(), 10u);
  EXPECT_EQ(a[0].size(), 16u);
}

TEST(WorkloadTest, ValueBlobCachedBySize) {
  const std::string& a = ValueBlob(1024);
  const std::string& b = ValueBlob(1024);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), 1024u);
  EXPECT_EQ(ValueBlob(64).size(), 64u);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(10.0, 0), "10");
}

}  // namespace
}  // namespace papyrus::bench
