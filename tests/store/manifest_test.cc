#include "store/manifest.h"

#include <gtest/gtest.h>

#include "../util/temp_dir.h"
#include "store/format.h"

namespace papyrus::store {
namespace {

using papyrus::testutil::TempDir;

void BuildSmallTable(const std::string& dir, uint64_t ssid) {
  SSTableBuilder builder(dir, ssid, 2);
  ASSERT_TRUE(builder.Add("a" + std::to_string(ssid), "v", 0).ok());
  ASSERT_TRUE(builder.Add("b" + std::to_string(ssid), "v", 0).ok());
  ASSERT_TRUE(builder.Finish().ok());
}

TEST(ManifestTest, FreshDirectoryStartsEmpty) {
  TempDir tmp;
  Manifest m(tmp.path() + "/rank0");
  ASSERT_TRUE(m.Open().ok());
  EXPECT_EQ(m.TableCount(), 0u);
  EXPECT_EQ(m.LatestSsid(), 0u);
  EXPECT_EQ(m.NextSsid(), 1u);
  EXPECT_EQ(m.NextSsid(), 2u);
}

TEST(ManifestTest, RecoversLiveSsidsFromDirectory) {
  // The zero-copy reopen path (§4.1): state is rebuilt purely by scanning.
  TempDir tmp;
  for (uint64_t ssid : {1, 2, 5}) BuildSmallTable(tmp.path(), ssid);

  Manifest m(tmp.path());
  ASSERT_TRUE(m.Open().ok());
  EXPECT_EQ(m.TableCount(), 3u);
  EXPECT_EQ(m.LatestSsid(), 5u);
  EXPECT_EQ(m.NextSsid(), 6u);  // continues above the highest recovered

  const auto live = m.LiveSsids();
  ASSERT_EQ(live.size(), 3u);
  EXPECT_EQ(live[0], 5u);  // descending: newest first
  EXPECT_EQ(live[1], 2u);
  EXPECT_EQ(live[2], 1u);
}

TEST(ManifestTest, IgnoresForeignFiles) {
  TempDir tmp;
  BuildSmallTable(tmp.path(), 1);
  ASSERT_TRUE(
      sim::Storage::WriteStringToFile(tmp.path() + "/notes.txt", "x").ok());
  ASSERT_TRUE(
      sim::Storage::WriteStringToFile(tmp.path() + "/sst_zz.data", "x").ok());
  Manifest m(tmp.path());
  ASSERT_TRUE(m.Open().ok());
  EXPECT_EQ(m.TableCount(), 1u);
}

TEST(ManifestTest, GetReaderCachesAndValidates) {
  TempDir tmp;
  BuildSmallTable(tmp.path(), 1);
  Manifest m(tmp.path());
  ASSERT_TRUE(m.Open().ok());

  SSTablePtr r1, r2;
  ASSERT_TRUE(m.GetReader(1, &r1).ok());
  ASSERT_TRUE(m.GetReader(1, &r2).ok());
  EXPECT_EQ(r1.get(), r2.get());  // cached

  SSTablePtr r3;
  EXPECT_TRUE(m.GetReader(99, &r3).IsNotFound());
}

TEST(ManifestTest, ReplaceTablesCommitsAndDeletesFiles) {
  TempDir tmp;
  for (uint64_t ssid : {1, 2}) BuildSmallTable(tmp.path(), ssid);
  Manifest m(tmp.path());
  ASSERT_TRUE(m.Open().ok());
  BuildSmallTable(tmp.path(), 3);  // the "merged" output

  ASSERT_TRUE(m.ReplaceTables({1, 2}, {3}).ok());
  EXPECT_EQ(m.TableCount(), 1u);
  EXPECT_EQ(m.LatestSsid(), 3u);
  EXPECT_FALSE(sim::Storage::FileExists(tmp.path() + "/" + SsDataName(1)));
  EXPECT_FALSE(sim::Storage::FileExists(tmp.path() + "/" + SsIndexName(2)));
  EXPECT_TRUE(sim::Storage::FileExists(tmp.path() + "/" + SsDataName(3)));
}

TEST(ManifestTest, OpenForeignReadsAnotherDir) {
  TempDir tmp;
  BuildSmallTable(tmp.path(), 4);
  SSTablePtr reader;
  ASSERT_TRUE(Manifest::OpenForeign(tmp.path(), 4, &reader).ok());
  EXPECT_EQ(reader->count(), 2u);
  EXPECT_TRUE(Manifest::OpenForeign(tmp.path(), 5, &reader).IsNotFound());
}

}  // namespace
}  // namespace papyrus::store
