#include "store/memtable.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/random.h"

namespace papyrus::store {
namespace {

TEST(MemTableTest, PutGetBasic) {
  MemTable mem(MemTable::Kind::kLocal, 1 << 20);
  EXPECT_TRUE(mem.Put("k1", "v1", false, 0));
  std::string value;
  bool tomb = true;
  EXPECT_TRUE(mem.Get("k1", &value, &tomb));
  EXPECT_EQ(value, "v1");
  EXPECT_FALSE(tomb);
  EXPECT_FALSE(mem.Get("absent", &value, &tomb));
  EXPECT_EQ(mem.Count(), 1u);
}

TEST(MemTableTest, ReplaceKeepsSingleEntry) {
  MemTable mem(MemTable::Kind::kLocal, 1 << 20);
  mem.Put("k", "old", false, 0);
  const size_t bytes_one = mem.ApproxBytes();
  mem.Put("k", "newvalue", false, 0);
  EXPECT_EQ(mem.Count(), 1u);
  std::string value;
  bool tomb;
  EXPECT_TRUE(mem.Get("k", &value, &tomb));
  EXPECT_EQ(value, "newvalue");
  // Byte accounting replaced, not accumulated.
  EXPECT_LT(mem.ApproxBytes(), bytes_one * 2);
}

TEST(MemTableTest, TombstoneIsPresence) {
  // §2.5: a delete is a zero-length put with the tombstone bit — the entry
  // must be *found* (so the search stops) but flagged deleted.
  MemTable mem(MemTable::Kind::kLocal, 1 << 20);
  mem.Put("k", "v", false, 0);
  mem.Put("k", "", true, 0);
  std::string value;
  bool tomb = false;
  ASSERT_TRUE(mem.Get("k", &value, &tomb));
  EXPECT_TRUE(tomb);
  EXPECT_TRUE(value.empty());
}

TEST(MemTableTest, OwnerTrackedForRemoteTables) {
  MemTable mem(MemTable::Kind::kRemote, 1 << 20);
  mem.Put("a", "1", false, 3);
  mem.Put("b", "2", false, 7);
  std::string value;
  bool tomb;
  int owner = -1;
  ASSERT_TRUE(mem.Get("a", &value, &tomb, &owner));
  EXPECT_EQ(owner, 3);
  ASSERT_TRUE(mem.Get("b", &value, &tomb, &owner));
  EXPECT_EQ(owner, 7);
}

TEST(MemTableTest, FullAfterCapacity) {
  MemTable mem(MemTable::Kind::kLocal, 1024);
  EXPECT_FALSE(mem.Full());
  int i = 0;
  while (!mem.Full()) {
    mem.Put("key" + std::to_string(i), std::string(100, 'v'), false, 0);
    ++i;
  }
  EXPECT_GE(mem.ApproxBytes(), 1024u);
  EXPECT_LT(i, 100);  // threshold actually limited growth
}

TEST(MemTableTest, SealedRejectsPuts) {
  MemTable mem(MemTable::Kind::kLocal, 1 << 20);
  mem.Put("k", "v", false, 0);
  EXPECT_FALSE(mem.sealed());
  mem.Seal();
  EXPECT_TRUE(mem.sealed());
  EXPECT_FALSE(mem.Put("k2", "v2", false, 0));
  // Reads still served.
  std::string value;
  bool tomb;
  EXPECT_TRUE(mem.Get("k", &value, &tomb));
}

TEST(MemTableTest, ForEachSortedIsKeyOrdered) {
  MemTable mem(MemTable::Kind::kLocal, 1 << 20);
  Rng rng(20);
  for (int i = 0; i < 200; ++i) {
    mem.Put(RandomKey(rng, 16), "v", false, 0);
  }
  mem.Seal();
  std::string prev;
  size_t n = 0;
  mem.ForEachSorted([&](const Slice& key, const MemTable::Entry&) {
    if (n > 0) EXPECT_LT(Slice(prev).compare(key), 0);
    prev = key.ToString();
    ++n;
  });
  EXPECT_EQ(n, mem.Count());
}

TEST(MemTableTest, ConcurrentReadersAndWriter) {
  MemTable mem(MemTable::Kind::kLocal, 64 << 20);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 5000; ++i) {
      mem.Put("key" + std::to_string(i % 100), std::to_string(i), false, 0);
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::string value;
      bool tomb;
      while (!stop.load()) {
        for (int i = 0; i < 100; ++i) {
          if (mem.Get("key" + std::to_string(i), &value, &tomb)) {
            EXPECT_FALSE(value.empty());
          }
        }
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(mem.Count(), 100u);
}

}  // namespace
}  // namespace papyrus::store
