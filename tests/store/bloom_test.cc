#include "store/bloom.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace papyrus::store {
namespace {

TEST(BloomTest, NoFalseNegativesEver) {
  // The structural guarantee of a Bloom filter: every added key must test
  // positive (paper §2.4: "definitely does not exist" only on negatives).
  Rng rng(11);
  BloomFilter bloom(1000);
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back(RandomKey(rng, 16));
    bloom.Add(keys.back());
  }
  for (const auto& k : keys) {
    EXPECT_TRUE(bloom.MayContain(k)) << k;
  }
}

TEST(BloomTest, FalsePositiveRateReasonable) {
  Rng rng(12);
  BloomFilter bloom(2000, /*bits_per_key=*/10);
  for (int i = 0; i < 2000; ++i) bloom.Add(RandomKey(rng, 16));
  int fp = 0;
  constexpr int kProbes = 10000;
  for (int i = 0; i < kProbes; ++i) {
    // Different key length → cannot collide with inserted keys.
    if (bloom.MayContain(RandomKey(rng, 24))) ++fp;
  }
  // 10 bits/key ≈ 0.8% theoretical; allow generous slack.
  EXPECT_LT(fp, kProbes * 3 / 100) << "false-positive rate too high";
}

TEST(BloomTest, FewerBitsMoreFalsePositives) {
  Rng rng(13);
  BloomFilter tight(500, 12), loose(500, 3);
  std::vector<std::string> keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back(RandomKey(rng, 16));
    tight.Add(keys.back());
    loose.Add(keys.back());
  }
  int fp_tight = 0, fp_loose = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::string probe = RandomKey(rng, 20);
    fp_tight += tight.MayContain(probe) ? 1 : 0;
    fp_loose += loose.MayContain(probe) ? 1 : 0;
  }
  EXPECT_LT(fp_tight, fp_loose);
}

TEST(BloomTest, SerializeParseRoundTrip) {
  Rng rng(14);
  BloomFilter bloom(100);
  std::vector<std::string> keys;
  for (int i = 0; i < 100; ++i) {
    keys.push_back(RandomKey(rng, 16));
    bloom.Add(keys.back());
  }
  const std::string bytes = bloom.Serialize();
  BloomFilter parsed;
  ASSERT_TRUE(BloomFilter::Parse(bytes, &parsed).ok());
  EXPECT_EQ(parsed.num_bits(), bloom.num_bits());
  EXPECT_EQ(parsed.num_hashes(), bloom.num_hashes());
  for (const auto& k : keys) EXPECT_TRUE(parsed.MayContain(k));
}

TEST(BloomTest, ParseRejectsCorruption) {
  BloomFilter bloom(10);
  bloom.Add(Slice("k"));
  std::string bytes = bloom.Serialize();
  BloomFilter parsed;

  // Truncated.
  EXPECT_FALSE(
      BloomFilter::Parse(Slice(bytes.data(), 8), &parsed).ok());
  // Bit flip in the vector.
  std::string flipped = bytes;
  flipped[12] ^= 0x40;
  EXPECT_EQ(BloomFilter::Parse(flipped, &parsed).code(), PAPYRUSKV_CORRUPTED);
  // Bad magic.
  std::string bad_magic = bytes;
  bad_magic[0] ^= 0x01;
  EXPECT_EQ(BloomFilter::Parse(bad_magic, &parsed).code(),
            PAPYRUSKV_CORRUPTED);
}

TEST(BloomTest, EmptyFilterStillWellFormed) {
  BloomFilter bloom(0);
  EXPECT_GE(bloom.num_bits(), 64u);  // clamped minimum
  const std::string bytes = bloom.Serialize();
  BloomFilter parsed;
  ASSERT_TRUE(BloomFilter::Parse(bytes, &parsed).ok());
  // Nothing added: overwhelmingly likely negative.
  EXPECT_FALSE(parsed.MayContain(Slice("anything")));
}

}  // namespace
}  // namespace papyrus::store
