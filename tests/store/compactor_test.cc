#include "store/compactor.h"

#include <gtest/gtest.h>

#include <map>

#include "../util/temp_dir.h"
#include "common/random.h"
#include "store/format.h"
#include "store/sstable.h"

namespace papyrus::store {
namespace {

using papyrus::testutil::TempDir;

// Writes a table at manifest.NextSsid() from the given map (values may be
// "" with tombstone=true encoded as value "TOMB").
uint64_t WriteTable(Manifest& m,
                    const std::map<std::string, std::string>& entries) {
  const uint64_t ssid = m.NextSsid();
  SSTableBuilder builder(m.dir(), ssid, entries.size());
  for (const auto& [k, v] : entries) {
    const bool tomb = v == "TOMB";
    EXPECT_TRUE(
        builder.Add(k, tomb ? "" : v, tomb ? kFlagTombstone : 0).ok());
  }
  EXPECT_TRUE(builder.Finish().ok());
  m.AddTable(ssid);
  return ssid;
}

// Full read of a single table into a map, "TOMB" encoding tombstones.
std::map<std::string, std::string> ReadAll(Manifest& m, uint64_t ssid) {
  SSTablePtr reader;
  EXPECT_TRUE(m.GetReader(ssid, &reader).ok());
  std::map<std::string, std::string> out;
  for (size_t i = 0; i < reader->count(); ++i) {
    std::string k, v;
    uint8_t flags = 0;
    EXPECT_TRUE(reader->ReadEntry(i, &k, &v, &flags).ok());
    out[k] = (flags & kFlagTombstone) ? "TOMB" : v;
  }
  return out;
}

TEST(CompactorTest, MergeNewestWins) {
  TempDir tmp;
  Manifest m(tmp.path());
  ASSERT_TRUE(m.Open().ok());
  const uint64_t t1 = WriteTable(m, {{"a", "old"}, {"b", "1"}, {"c", "1"}});
  const uint64_t t2 = WriteTable(m, {{"a", "new"}, {"d", "2"}});

  CompactionStats stats;
  ASSERT_TRUE(MergeTables(m, {t1, t2}, /*drop_tombstones=*/true, 10, &stats)
                  .ok());
  EXPECT_EQ(stats.input_tables, 2u);
  EXPECT_EQ(stats.input_entries, 5u);
  EXPECT_EQ(stats.output_entries, 4u);
  EXPECT_EQ(stats.dropped_stale, 1u);

  ASSERT_EQ(m.TableCount(), 1u);
  const auto merged = ReadAll(m, m.LatestSsid());
  EXPECT_EQ(merged.at("a"), "new");
  EXPECT_EQ(merged.at("b"), "1");
  EXPECT_EQ(merged.at("c"), "1");
  EXPECT_EQ(merged.at("d"), "2");
}

TEST(CompactorTest, FullMergePurgesTombstones) {
  TempDir tmp;
  Manifest m(tmp.path());
  ASSERT_TRUE(m.Open().ok());
  const uint64_t t1 = WriteTable(m, {{"a", "v"}, {"b", "v"}});
  const uint64_t t2 = WriteTable(m, {{"a", "TOMB"}});

  CompactionStats stats;
  ASSERT_TRUE(MergeTables(m, {t1, t2}, true, 10, &stats).ok());
  EXPECT_EQ(stats.dropped_tombstones, 1u);
  const auto merged = ReadAll(m, m.LatestSsid());
  EXPECT_EQ(merged.count("a"), 0u) << "tombstone and shadowed value purged";
  EXPECT_EQ(merged.at("b"), "v");
}

TEST(CompactorTest, PartialMergeKeepsTombstones) {
  // If the merge does not cover all tables, tombstones must survive so
  // they keep shadowing older tables.
  TempDir tmp;
  Manifest m(tmp.path());
  ASSERT_TRUE(m.Open().ok());
  WriteTable(m, {{"a", "ancient"}});  // not part of the merge
  const uint64_t t2 = WriteTable(m, {{"a", "TOMB"}});
  const uint64_t t3 = WriteTable(m, {{"b", "v"}});

  ASSERT_TRUE(MergeTables(m, {t2, t3}, /*drop_tombstones=*/false, 10).ok());
  const auto merged = ReadAll(m, m.LatestSsid());
  EXPECT_EQ(merged.at("a"), "TOMB");
  EXPECT_EQ(merged.at("b"), "v");
}

TEST(CompactorTest, MaybeCompactHonorsTrigger) {
  TempDir tmp;
  Manifest m(tmp.path());
  ASSERT_TRUE(m.Open().ok());
  WriteTable(m, {{"a", "1"}});
  WriteTable(m, {{"b", "2"}});
  WriteTable(m, {{"c", "3"}});

  // ssid 3, trigger 4 → no compaction.
  ASSERT_TRUE(MaybeCompact(m, 3, 4, 10).ok());
  EXPECT_EQ(m.TableCount(), 3u);

  const uint64_t t4 = WriteTable(m, {{"d", "4"}});
  ASSERT_EQ(t4, 4u);
  ASSERT_TRUE(MaybeCompact(m, 4, 4, 10).ok());
  EXPECT_EQ(m.TableCount(), 1u);
  const auto merged = ReadAll(m, m.LatestSsid());
  EXPECT_EQ(merged.size(), 4u);

  // Trigger <= 1 disables compaction entirely.
  WriteTable(m, {{"e", "5"}});
  WriteTable(m, {{"f", "6"}});
  ASSERT_TRUE(MaybeCompact(m, 6, 0, 10).ok());
  EXPECT_EQ(m.TableCount(), 3u);
}

TEST(CompactorTest, RandomizedMergeMatchesReferenceModel) {
  Rng rng(77);
  TempDir tmp;
  Manifest m(tmp.path());
  ASSERT_TRUE(m.Open().ok());

  // Generate 5 generations of overlapping updates/deletes; the reference
  // model applies them in ssid order.
  std::map<std::string, std::string> ref;
  std::vector<uint64_t> ssids;
  for (int gen = 0; gen < 5; ++gen) {
    std::map<std::string, std::string> table;
    for (int i = 0; i < 100; ++i) {
      const std::string key = "k" + std::to_string(rng.Uniform(120));
      const bool tomb = rng.Bernoulli(0.2);
      table[key] = tomb ? "TOMB" : PatternValue(rng.Next(), 16);
    }
    ssids.push_back(WriteTable(m, table));
    for (const auto& [k, v] : table) ref[k] = v;
  }
  // Purge tombstones from the reference (full merge drops them).
  for (auto it = ref.begin(); it != ref.end();) {
    it = it->second == "TOMB" ? ref.erase(it) : std::next(it);
  }

  ASSERT_TRUE(MergeTables(m, ssids, true, 10).ok());
  ASSERT_EQ(m.TableCount(), 1u);
  EXPECT_EQ(ReadAll(m, m.LatestSsid()), ref);
}

}  // namespace
}  // namespace papyrus::store
