#include "store/sstable.h"

#include <gtest/gtest.h>

#include <map>

#include "../util/temp_dir.h"
#include "common/random.h"
#include "store/format.h"

namespace papyrus::store {
namespace {

using papyrus::testutil::TempDir;

// Builds an SSTable with `n` deterministic sorted entries; returns key→value.
std::map<std::string, std::string> BuildTable(const std::string& dir,
                                              uint64_t ssid, int n,
                                              int tomb_every = 0) {
  std::map<std::string, std::string> data;
  for (int i = 0; i < n; ++i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%06d", i);
    data[buf] = PatternValue(static_cast<uint64_t>(i), 40);
  }
  SSTableBuilder builder(dir, ssid, data.size());
  int i = 0;
  for (const auto& [k, v] : data) {
    const bool tomb = tomb_every > 0 && (i % tomb_every) == 0;
    EXPECT_TRUE(builder.Add(k, tomb ? "" : v, tomb ? kFlagTombstone : 0).ok());
    ++i;
  }
  EXPECT_TRUE(builder.Finish().ok());
  return data;
}

class SSTableTest : public ::testing::TestWithParam<SearchMode> {};

TEST_P(SSTableTest, WriteThenGetEveryKey) {
  TempDir tmp;
  auto data = BuildTable(tmp.path(), 1, 500);
  SSTablePtr reader;
  ASSERT_TRUE(SSTableReader::Open(tmp.path(), 1, &reader).ok());
  EXPECT_EQ(reader->count(), 500u);
  for (const auto& [k, v] : data) {
    std::string value;
    bool tomb = true;
    bool found = false;
    ASSERT_TRUE(reader->Get(k, GetParam(), &value, &tomb, &found).ok());
    EXPECT_TRUE(found) << k;
    EXPECT_FALSE(tomb);
    EXPECT_EQ(value, v);
  }
}

TEST_P(SSTableTest, MissingKeysNotFound) {
  TempDir tmp;
  BuildTable(tmp.path(), 1, 100);
  SSTablePtr reader;
  ASSERT_TRUE(SSTableReader::Open(tmp.path(), 1, &reader).ok());
  for (const char* k : {"aaa", "key000050x", "key999999", "zzz"}) {
    std::string value;
    bool tomb;
    bool found = true;
    ASSERT_TRUE(reader->Get(k, GetParam(), &value, &tomb, &found).ok());
    EXPECT_FALSE(found) << k;
  }
}

TEST_P(SSTableTest, TombstonesSurfaceAsFoundDeleted) {
  TempDir tmp;
  BuildTable(tmp.path(), 1, 50, /*tomb_every=*/5);
  SSTablePtr reader;
  ASSERT_TRUE(SSTableReader::Open(tmp.path(), 1, &reader).ok());
  std::string value;
  bool tomb = false;
  bool found = false;
  ASSERT_TRUE(reader->Get("key000000", GetParam(), &value, &tomb, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_TRUE(tomb);
  ASSERT_TRUE(reader->Get("key000001", GetParam(), &value, &tomb, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_FALSE(tomb);
}

INSTANTIATE_TEST_SUITE_P(Modes, SSTableTest,
                         ::testing::Values(SearchMode::kLinear,
                                           SearchMode::kBinary),
                         [](const auto& info) {
                           return info.param == SearchMode::kLinear
                                      ? "Linear"
                                      : "Binary";
                         });

TEST(SSTableFormatTest, ThreeFilesPublished) {
  TempDir tmp;
  BuildTable(tmp.path(), 7, 10);
  EXPECT_TRUE(sim::Storage::FileExists(tmp.path() + "/" + SsDataName(7)));
  EXPECT_TRUE(sim::Storage::FileExists(tmp.path() + "/" + SsIndexName(7)));
  EXPECT_TRUE(sim::Storage::FileExists(tmp.path() + "/" + BloomName(7)));
  // No stray temporaries.
  std::vector<std::string> names;
  ASSERT_TRUE(sim::Storage::ListDir(tmp.path(), &names).ok());
  EXPECT_EQ(names.size(), 3u);
}

TEST(SSTableFormatTest, BuilderRejectsUnsortedKeys) {
  TempDir tmp;
  SSTableBuilder builder(tmp.path(), 1, 10);
  ASSERT_TRUE(builder.Add("b", "v", 0).ok());
  EXPECT_EQ(builder.Add("a", "v", 0).code(), PAPYRUSKV_INVALID_ARG);
  EXPECT_EQ(builder.Add("b", "v", 0).code(), PAPYRUSKV_INVALID_ARG);  // dup
  ASSERT_TRUE(builder.Add("c", "v", 0).ok());
  ASSERT_TRUE(builder.Finish().ok());
}

TEST(SSTableFormatTest, ReadEntrySequential) {
  TempDir tmp;
  auto data = BuildTable(tmp.path(), 1, 64);
  SSTablePtr reader;
  ASSERT_TRUE(SSTableReader::Open(tmp.path(), 1, &reader).ok());
  auto it = data.begin();
  for (size_t i = 0; i < reader->count(); ++i, ++it) {
    std::string key, value;
    uint8_t flags = 0;
    ASSERT_TRUE(reader->ReadEntry(i, &key, &value, &flags).ok());
    EXPECT_EQ(key, it->first);
    EXPECT_EQ(value, it->second);
    EXPECT_EQ(flags, 0);
  }
  std::string k, v;
  EXPECT_EQ(reader->ReadEntry(reader->count(), &k, &v, nullptr).code(),
            PAPYRUSKV_INVALID_ARG);
}

TEST(SSTableFormatTest, BloomSkipsAbsentKeys) {
  TempDir tmp;
  BuildTable(tmp.path(), 1, 200);
  SSTablePtr reader;
  ASSERT_TRUE(SSTableReader::Open(tmp.path(), 1, &reader).ok());
  // Every stored key must pass the filter.
  for (int i = 0; i < 200; ++i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%06d", i);
    EXPECT_TRUE(reader->MayContain(buf));
  }
  // Most absent keys must be rejected without touching SSData.
  Rng rng(5);
  int pass = 0;
  for (int i = 0; i < 1000; ++i) {
    if (reader->MayContain(RandomKey(rng, 16))) ++pass;
  }
  EXPECT_LT(pass, 100);
}

TEST(SSTableFormatTest, CorruptedRecordDetected) {
  TempDir tmp;
  BuildTable(tmp.path(), 1, 20);
  // Flip a byte inside the first record's value region.
  const std::string data_path = tmp.path() + "/" + SsDataName(1);
  std::string raw;
  ASSERT_TRUE(sim::Storage::ReadFileToString(data_path, &raw).ok());
  raw[kRecordHeaderSize + 12] ^= 0x7f;
  ASSERT_TRUE(sim::Storage::WriteStringToFile(data_path, raw).ok());

  SSTablePtr reader;
  ASSERT_TRUE(SSTableReader::Open(tmp.path(), 1, &reader).ok());
  std::string key, value;
  EXPECT_EQ(reader->ReadEntry(0, &key, &value, nullptr).code(),
            PAPYRUSKV_CORRUPTED);
}

TEST(SSTableFormatTest, CorruptedIndexDetected) {
  TempDir tmp;
  BuildTable(tmp.path(), 1, 20);
  const std::string idx_path = tmp.path() + "/" + SsIndexName(1);
  std::string raw;
  ASSERT_TRUE(sim::Storage::ReadFileToString(idx_path, &raw).ok());
  raw[16] ^= 0x01;
  ASSERT_TRUE(sim::Storage::WriteStringToFile(idx_path, raw).ok());

  SSTablePtr reader;
  ASSERT_TRUE(SSTableReader::Open(tmp.path(), 1, &reader).ok());
  std::string value;
  bool tomb, found;
  EXPECT_EQ(
      reader->Get("key000000", SearchMode::kBinary, &value, &tomb, &found)
          .code(),
      PAPYRUSKV_CORRUPTED);
}

TEST(SSTableFormatTest, FlushMemTableRoundTrip) {
  TempDir tmp;
  MemTable mem(MemTable::Kind::kLocal, 1 << 20);
  Rng rng(30);
  std::map<std::string, std::string> ref;
  for (int i = 0; i < 300; ++i) {
    const std::string k = RandomKey(rng, 16);
    const std::string v = PatternValue(i, 64);
    ref[k] = v;
    mem.Put(k, v, false, 0);
  }
  mem.Seal();
  ASSERT_TRUE(FlushMemTable(tmp.path(), 3, mem).ok());

  SSTablePtr reader;
  ASSERT_TRUE(SSTableReader::Open(tmp.path(), 3, &reader).ok());
  EXPECT_EQ(reader->count(), ref.size());
  for (const auto& [k, v] : ref) {
    std::string value;
    bool tomb, found;
    ASSERT_TRUE(
        reader->Get(k, SearchMode::kBinary, &value, &tomb, &found).ok());
    EXPECT_TRUE(found);
    EXPECT_EQ(value, v);
  }
}

TEST(SSTableFormatTest, EmptyValueAndBinaryKeys) {
  TempDir tmp;
  SSTableBuilder builder(tmp.path(), 1, 4);
  const std::string bin_key1("\x00\x01\x02", 3);
  const std::string bin_key2("\x00\x01\x03\xff", 4);
  ASSERT_TRUE(builder.Add(bin_key1, "", 0).ok());
  ASSERT_TRUE(builder.Add(bin_key2, std::string(3, '\0'), 0).ok());
  ASSERT_TRUE(builder.Finish().ok());

  SSTablePtr reader;
  ASSERT_TRUE(SSTableReader::Open(tmp.path(), 1, &reader).ok());
  std::string value;
  bool tomb, found;
  ASSERT_TRUE(reader->Get(bin_key1, SearchMode::kBinary, &value, &tomb,
                          &found).ok());
  EXPECT_TRUE(found);
  EXPECT_TRUE(value.empty());
  ASSERT_TRUE(reader->Get(bin_key2, SearchMode::kLinear, &value, &tomb,
                          &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(value, std::string(3, '\0'));
}

}  // namespace
}  // namespace papyrus::store
