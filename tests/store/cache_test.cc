#include "store/cache.h"

#include <gtest/gtest.h>

namespace papyrus::store {
namespace {

TEST(LruCacheTest, PutGetErase) {
  LruCache cache(1 << 20);
  cache.Put("k", "v", false);
  std::string value;
  bool tomb = true;
  EXPECT_TRUE(cache.Get("k", &value, &tomb));
  EXPECT_EQ(value, "v");
  EXPECT_FALSE(tomb);
  cache.Erase("k");
  EXPECT_FALSE(cache.Get("k", &value, &tomb));
}

TEST(LruCacheTest, NegativeEntries) {
  LruCache cache(1 << 20);
  cache.Put("deleted", "", true);
  std::string value;
  bool tomb = false;
  ASSERT_TRUE(cache.Get("deleted", &value, &tomb));
  EXPECT_TRUE(tomb);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  // Entries charge key+value+64; capacity fits ~3 of these.
  LruCache cache(3 * (1 + 10 + 64));
  cache.Put("a", std::string(10, 'x'), false);
  cache.Put("b", std::string(10, 'x'), false);
  cache.Put("c", std::string(10, 'x'), false);
  // Touch "a" so "b" becomes LRU.
  std::string v;
  bool t;
  EXPECT_TRUE(cache.Get("a", &v, &t));
  cache.Put("d", std::string(10, 'x'), false);
  EXPECT_TRUE(cache.Get("a", &v, &t));
  EXPECT_FALSE(cache.Get("b", &v, &t)) << "LRU should have been evicted";
  EXPECT_TRUE(cache.Get("c", &v, &t));
  EXPECT_TRUE(cache.Get("d", &v, &t));
}

TEST(LruCacheTest, UpdateReplacesCharge) {
  LruCache cache(1 << 10);
  cache.Put("k", std::string(100, 'a'), false);
  const size_t b1 = cache.bytes();
  cache.Put("k", std::string(10, 'b'), false);
  EXPECT_LT(cache.bytes(), b1);
  EXPECT_EQ(cache.count(), 1u);
  std::string v;
  bool t;
  ASSERT_TRUE(cache.Get("k", &v, &t));
  EXPECT_EQ(v, std::string(10, 'b'));
}

TEST(LruCacheTest, DisableClearsAndRejects) {
  // §3.2 WRONLY: the cache is invalidated and disabled.
  LruCache cache(1 << 20);
  cache.Put("k", "v", false);
  cache.set_enabled(false);
  EXPECT_EQ(cache.count(), 0u);
  std::string v;
  bool t;
  EXPECT_FALSE(cache.Get("k", &v, &t));
  cache.Put("k2", "v2", false);  // no-op while disabled
  EXPECT_EQ(cache.count(), 0u);
  cache.set_enabled(true);
  cache.Put("k3", "v3", false);
  EXPECT_TRUE(cache.Get("k3", &v, &t));
}

TEST(LruCacheTest, HitMissCounters) {
  LruCache cache(1 << 20);
  cache.Put("k", "v", false);
  std::string v;
  bool t;
  cache.Get("k", &v, &t);
  cache.Get("k", &v, &t);
  cache.Get("nope", &v, &t);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, ClearEmptiesButKeepsEnabled) {
  LruCache cache(1 << 20);
  cache.Put("k", "v", false);
  cache.Clear();
  EXPECT_EQ(cache.count(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  cache.Put("k2", "v2", false);
  EXPECT_EQ(cache.count(), 1u);
}

TEST(LruCacheTest, OversizedEntryEvictsEverything) {
  LruCache cache(200);
  cache.Put("small", "v", false);
  cache.Put("big", std::string(500, 'x'), false);  // larger than capacity
  // The cache never exceeds capacity: both may be gone, but state is sane.
  EXPECT_LE(cache.count(), 1u);
  std::string v;
  bool t;
  EXPECT_FALSE(cache.Get("small", &v, &t));
}

}  // namespace
}  // namespace papyrus::store
