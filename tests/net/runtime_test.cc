#include "net/runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/mutex.h"

namespace papyrus::net {
namespace {

TEST(RuntimeTest, EveryRankRunsOnceWithDistinctIds) {
  Mutex mu("runtime_test_mu");
  std::set<int> seen;
  RunRanks(6, [&](RankContext& ctx) {
    MutexLock lock(&mu);
    EXPECT_TRUE(seen.insert(ctx.rank).second) << "duplicate rank";
    EXPECT_EQ(ctx.size(), 6);
  });
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RuntimeTest, TopologyOverloadAssignsNodes) {
  sim::Topology topo{.nranks = 6, .ranks_per_node = 2};
  RunRanks(topo, [](RankContext& ctx) {
    EXPECT_EQ(ctx.node(), ctx.rank / 2);
  });
}

TEST(RuntimeTest, CurrentRankContextIsThreadLocal) {
  RunRanks(3, [](RankContext& ctx) {
    RankContext* cur = CurrentRankContext();
    ASSERT_NE(cur, nullptr);
    EXPECT_EQ(cur->rank, ctx.rank);
    // A thread spawned inside a rank has no ambient context until adopted.
    std::thread child([&] {
      EXPECT_EQ(CurrentRankContext(), nullptr);
      SetCurrentRankContext(&ctx);
      EXPECT_EQ(CurrentRankContext()->rank, ctx.rank);
      SetCurrentRankContext(nullptr);
    });
    child.join();
  });
}

TEST(RuntimeTest, RankExceptionPropagates) {
  EXPECT_THROW(
      RunRanks(4,
               [](RankContext& ctx) {
                 if (ctx.rank == 2) throw std::runtime_error("rank 2 died");
               }),
      std::runtime_error);
}

TEST(RuntimeTest, SequentialJobsAreIndependent) {
  // Two jobs back to back: worlds must not leak state between runs.
  for (int job = 0; job < 2; ++job) {
    RunRanks(2, [&](RankContext& ctx) {
      if (ctx.rank == 0) {
        ctx.comm.Send(1, 1, Slice("j" + std::to_string(job)));
      } else {
        EXPECT_EQ(ctx.comm.Recv(0, 1).payload, "j" + std::to_string(job));
        // No stale messages from the previous job.
        Message stale;
        EXPECT_FALSE(ctx.comm.TryRecv(kAnySource, kAnyTag, &stale));
      }
    });
  }
}

}  // namespace
}  // namespace papyrus::net
