#include "net/comm.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/timer.h"
#include "net/runtime.h"
#include "sim/device_model.h"

namespace papyrus::net {
namespace {

// Most communicator behavior is exercised through RunRanks with small rank
// counts — the same way the KVS runtime uses it.

TEST(CommTest, PointToPointDelivery) {
  RunRanks(2, [](RankContext& ctx) {
    if (ctx.rank == 0) {
      ctx.comm.Send(1, 7, Slice("payload"));
    } else {
      Message m = ctx.comm.Recv(0, 7);
      EXPECT_EQ(m.src, 0);
      EXPECT_EQ(m.tag, 7);
      EXPECT_EQ(m.payload, "payload");
    }
  });
}

TEST(CommTest, AnySourceAnyTagMatching) {
  RunRanks(3, [](RankContext& ctx) {
    if (ctx.rank != 0) {
      ctx.comm.Send(0, 10 + ctx.rank, Slice(std::to_string(ctx.rank)));
    } else {
      int seen = 0;
      for (int i = 0; i < 2; ++i) {
        Message m = ctx.comm.Recv(kAnySource, kAnyTag);
        EXPECT_EQ(m.tag, 10 + m.src);
        EXPECT_EQ(m.payload, std::to_string(m.src));
        seen |= 1 << m.src;
      }
      EXPECT_EQ(seen, 0b110);
    }
  });
}

TEST(CommTest, NonOvertakingPerSourceAndTag) {
  RunRanks(2, [](RankContext& ctx) {
    constexpr int kN = 200;
    if (ctx.rank == 0) {
      for (int i = 0; i < kN; ++i) {
        ctx.comm.Send(1, 5, Slice(std::to_string(i)));
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        Message m = ctx.comm.Recv(0, 5);
        EXPECT_EQ(m.payload, std::to_string(i)) << "reordered at " << i;
      }
    }
  });
}

TEST(CommTest, TagSelectiveReceive) {
  RunRanks(2, [](RankContext& ctx) {
    if (ctx.rank == 0) {
      ctx.comm.Send(1, 1, Slice("first"));
      ctx.comm.Send(1, 2, Slice("second"));
    } else {
      // Receive out of send order by selecting the tag.
      Message m2 = ctx.comm.Recv(0, 2);
      EXPECT_EQ(m2.payload, "second");
      Message m1 = ctx.comm.Recv(0, 1);
      EXPECT_EQ(m1.payload, "first");
    }
  });
}

TEST(CommTest, TryRecvNonBlocking) {
  RunRanks(2, [](RankContext& ctx) {
    if (ctx.rank == 0) {
      Message out;
      EXPECT_FALSE(ctx.comm.TryRecv(1, 99, &out));  // nothing yet
      ctx.comm.Send(1, 3, Slice("go"));
      Message m = ctx.comm.Recv(1, 4);
      EXPECT_EQ(m.payload, "done");
    } else {
      Message m = ctx.comm.Recv(0, 3);
      EXPECT_EQ(m.payload, "go");
      ctx.comm.Send(0, 4, Slice("done"));
    }
  });
}

TEST(CommTest, DupIsolatesTraffic) {
  RunRanks(2, [](RankContext& ctx) {
    Communicator dup = ctx.comm.Dup();
    if (ctx.rank == 0) {
      ctx.comm.Send(1, 5, Slice("world"));
      dup.Send(1, 5, Slice("dup"));
    } else {
      // Same (src, tag) on both communicators: each message arrives only
      // on its own communicator.
      Message onDup = dup.Recv(0, 5);
      EXPECT_EQ(onDup.payload, "dup");
      Message onWorld = ctx.comm.Recv(0, 5);
      EXPECT_EQ(onWorld.payload, "world");
    }
  });
}

TEST(CommTest, DupSequenceConsistentAcrossRanks) {
  // Two Dups in the same collective order must pair up rank-to-rank.
  RunRanks(4, [](RankContext& ctx) {
    Communicator a = ctx.comm.Dup();
    Communicator b = ctx.comm.Dup();
    if (ctx.rank == 0) {
      for (int r = 1; r < 4; ++r) a.Send(r, 1, Slice("A"));
      for (int r = 1; r < 4; ++r) b.Send(r, 1, Slice("B"));
    } else {
      EXPECT_EQ(a.Recv(0, 1).payload, "A");
      EXPECT_EQ(b.Recv(0, 1).payload, "B");
    }
  });
}

TEST(CommTest, BarrierSynchronizes) {
  std::atomic<int> counter{0};
  RunRanks(4, [&](RankContext& ctx) {
    counter.fetch_add(1);
    ctx.comm.Barrier();
    // After the barrier every rank must observe all arrivals.
    EXPECT_EQ(counter.load(), 4);
    ctx.comm.Barrier();
  });
}

TEST(CommTest, RepeatedBarriersDontCross) {
  RunRanks(3, [](RankContext& ctx) {
    for (int i = 0; i < 50; ++i) ctx.comm.Barrier();
  });
}

TEST(CommTest, AllgatherCollectsInRankOrder) {
  RunRanks(4, [](RankContext& ctx) {
    std::vector<std::string> all;
    ctx.comm.Allgather(Slice("r" + std::to_string(ctx.rank)), &all);
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(all[static_cast<size_t>(r)], "r" + std::to_string(r));
    }
  });
}

TEST(CommTest, BcastFromNonzeroRoot) {
  RunRanks(4, [](RankContext& ctx) {
    std::string data = ctx.rank == 2 ? "from2" : "";
    ctx.comm.Bcast(&data, 2);
    EXPECT_EQ(data, "from2");
  });
}

TEST(CommTest, AllreduceSumAndMax) {
  RunRanks(5, [](RankContext& ctx) {
    const uint64_t v = static_cast<uint64_t>(ctx.rank) + 1;
    EXPECT_EQ(ctx.comm.AllreduceSum(v), 15u);
    EXPECT_EQ(ctx.comm.AllreduceMax(v), 5u);
  });
}

TEST(CommTest, SingleRankCollectivesAreNoops) {
  RunRanks(1, [](RankContext& ctx) {
    ctx.comm.Barrier();
    std::vector<std::string> all;
    ctx.comm.Allgather(Slice("x"), &all);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0], "x");
    EXPECT_EQ(ctx.comm.AllreduceSum(3), 3u);
  });
}

TEST(CommTest, ConcurrentSendersToOneReceiver) {
  // MPI_THREAD_MULTIPLE-style usage: many ranks hammer rank 0.
  RunRanks(8, [](RankContext& ctx) {
    constexpr int kPer = 100;
    if (ctx.rank == 0) {
      uint64_t sum = 0;
      for (int i = 0; i < 7 * kPer; ++i) {
        Message m = ctx.comm.Recv(kAnySource, 9);
        sum += std::stoull(m.payload);
      }
      // Each rank r sends kPer copies of r.
      uint64_t expect = 0;
      for (int r = 1; r < 8; ++r) expect += static_cast<uint64_t>(r) * kPer;
      EXPECT_EQ(sum, expect);
    } else {
      for (int i = 0; i < kPer; ++i) {
        ctx.comm.Send(0, 9, Slice(std::to_string(ctx.rank)));
      }
    }
  });
}


TEST(CommTest, PropagationDelaysDeliveryNotSender) {
  // With the time scale up, a send returns quickly (injection only) but
  // the message is not receivable until the propagation latency elapses.
  sim::SetTimeScale(20000.0);  // one-way latency = 30ms
  sim::Topology topo{.nranks = 2, .ranks_per_node = 1};
  RunRanks(topo, [](RankContext& ctx) {
    if (ctx.rank == 0) {
      const uint64_t t0 = papyrus::NowMicros();
      ctx.comm.Send(1, 8, Slice(std::to_string(t0)));
      EXPECT_LT(papyrus::NowMicros() - t0, 25000u)
          << "sender paid propagation latency";
    } else {
      // The payload carries the send timestamp (threads share the same
      // steady clock): delivery must land a full propagation later, no
      // matter when this receiver thread got scheduled.
      Message m = ctx.comm.Recv(0, 8);
      const uint64_t sent_at = std::stoull(m.payload);
      EXPECT_GE(papyrus::NowMicros() - sent_at, 25000u)
          << "delivery was not delayed by propagation";
    }
  });
  sim::SetTimeScale(0.0);
}

TEST(CommTest, TryRecvSkipsInFlightMessages) {
  sim::SetTimeScale(50000.0);  // one-way latency = 75ms
  sim::Topology topo{.nranks = 2, .ranks_per_node = 1};
  RunRanks(topo, [](RankContext& ctx) {
    if (ctx.rank == 0) {
      ctx.comm.Send(1, 9, Slice("x"));
      ctx.comm.Send(1, 10, Slice("handshake"));
    } else {
      // Wait for proof both sends happened (tag 10 blocks until visible),
      // then check that an in-flight message earlier would NOT have been
      // TryRecv-able right after its send: by now both are visible, so we
      // instead verify ordering survived the delay machinery.
      Message hs = ctx.comm.Recv(0, 10);
      EXPECT_EQ(hs.payload, "handshake");
      Message out;
      EXPECT_TRUE(ctx.comm.TryRecv(0, 9, &out));
      EXPECT_EQ(out.payload, "x");
    }
  });
  sim::SetTimeScale(0.0);
}

}  // namespace
}  // namespace papyrus::net
