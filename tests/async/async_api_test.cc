// The asynchronous submission/completion pipeline end to end (DESIGN.md §9):
// papyruskv_put_async / get_async / delete_async + papyruskv_wait, fence as
// a completion fence for fire-and-forget submissions, same-destination
// coalescing observable through the async.* metrics, and per-op error
// surfacing out of a partially failed batch (batch.op.fail failpoint).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/db_shard.h"
#include "core/runtime.h"
#include "obs/metrics.h"
#include "../fault/fault_test_util.h"

namespace papyrus::testutil {
namespace {

class AsyncApiTest : public FaultTest {};

// Keys owned by `owner` under the db's hash.
std::vector<std::string> KeysOwnedBy(const core::DbShardPtr& shard, int owner,
                                     int want) {
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < static_cast<size_t>(want); ++i) {
    std::string k = "ak" + std::to_string(i);
    if (shard->OwnerOf(k) == owner) keys.push_back(std::move(k));
  }
  return keys;
}

int PutAsyncStr(papyruskv_db_t db, const std::string& k, const std::string& v,
                papyruskv_event_t* ev) {
  return papyruskv_put_async(db, k.data(), k.size(), v.data(), v.size(), ev);
}

TEST_F(AsyncApiTest, PutGetDeleteRoundTripThroughEvents) {
  RunKv(2, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("asyncdb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    auto shard = papyrus::core::DbHandle(db);
    ctx.comm.Barrier();

    if (ctx.rank == 0) {
      // Remote and local keys take the same API path; only the remote one
      // actually rides the wire.
      const auto remote = KeysOwnedBy(shard, 1, 2);
      const auto local = KeysOwnedBy(shard, 0, 1);

      papyruskv_event_t ev = 0;
      ASSERT_EQ(PutAsyncStr(db, remote[0], "r0", &ev), PAPYRUSKV_SUCCESS);
      EXPECT_GE(ev, papyrus::core::kAsyncEventBase);
      EXPECT_EQ(papyruskv_wait(db, ev), PAPYRUSKV_SUCCESS);
      // An event is consumed by its wait.
      EXPECT_EQ(papyruskv_wait(db, ev), PAPYRUSKV_INVALID_EVENT);

      ASSERT_EQ(PutAsyncStr(db, local[0], "l0", &ev), PAPYRUSKV_SUCCESS);
      EXPECT_EQ(papyruskv_wait(db, ev), PAPYRUSKV_SUCCESS);

      // get_async defers value delivery to the wait.
      char* value = nullptr;
      size_t vallen = 0;
      ASSERT_EQ(papyruskv_get_async(db, remote[0].data(), remote[0].size(),
                                    &value, &vallen, &ev),
                PAPYRUSKV_SUCCESS);
      ASSERT_EQ(papyruskv_wait(db, ev), PAPYRUSKV_SUCCESS);
      EXPECT_EQ(std::string(value, vallen), "r0");
      EXPECT_EQ(papyruskv_free(db, value), PAPYRUSKV_SUCCESS);

      // Missing key surfaces through the event, not the submission.
      value = nullptr;
      vallen = 0;
      ASSERT_EQ(papyruskv_get_async(db, remote[1].data(), remote[1].size(),
                                    &value, &vallen, &ev),
                PAPYRUSKV_SUCCESS);
      EXPECT_EQ(papyruskv_wait(db, ev), PAPYRUSKV_NOT_FOUND);

      // delete_async with an event, then the key is gone.
      ASSERT_EQ(papyruskv_delete_async(db, remote[0].data(), remote[0].size(),
                                       &ev),
                PAPYRUSKV_SUCCESS);
      EXPECT_EQ(papyruskv_wait(db, ev), PAPYRUSKV_SUCCESS);
      std::string out;
      EXPECT_EQ(GetStr(db, remote[0], &out), PAPYRUSKV_NOT_FOUND);
    }
    ctx.comm.Barrier();
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(AsyncApiTest, FenceIsACompletionFenceForFireAndForgetPuts) {
  RunKv(2, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("fencedb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    auto shard = papyrus::core::DbHandle(db);
    ctx.comm.Barrier();

    const int peer = 1 - ctx.rank;
    const auto keys = KeysOwnedBy(shard, peer, 16);
    for (const auto& k : keys) {
      const std::string v = "fv:" + k + ":" + std::to_string(ctx.rank);
      // No event: completion is observed only through the fence.
      ASSERT_EQ(papyruskv_put_async(db, k.data(), k.size(), v.data(),
                                    v.size(), nullptr),
                PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_fence(db), PAPYRUSKV_SUCCESS);
    ctx.comm.Barrier();

    // After fence + barrier every rank reads its own (now local) keys.
    const auto mine = KeysOwnedBy(shard, ctx.rank, 16);
    for (const auto& k : mine) {
      std::string out;
      ASSERT_EQ(GetStr(db, k, &out), PAPYRUSKV_SUCCESS) << k;
      EXPECT_EQ(out, "fv:" + k + ":" + std::to_string(peer));
    }
    ctx.comm.Barrier();
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(AsyncApiTest, RetryCannotReorderSameDestinationFrames) {
  // The SDCB-under-retry hazard: three frames to one destination in one
  // cycle (put k=v1 / get k / put k=v2 — a kind change breaks the frame)
  // with the first frame's message dropped by the fabric.  Frame N+1 must
  // not reach the wire before frame N is acked, so the retry of frame 1
  // cannot re-apply v1 after frame 3 committed v2 — and the get, sitting
  // between the puts, must observe exactly v1.
  setenv("PAPYRUSKV_BATCH_WINDOW_US", "50000", 1);
  setenv("PAPYRUSKV_TIMEOUT_MS", "100", 1);
  RunKv(2, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("orderdb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    auto shard = papyrus::core::DbHandle(db);
    ctx.comm.Barrier();

    if (ctx.rank == 0) {
      const std::string k = KeysOwnedBy(shard, 1, 1)[0];
      // Drop exactly the next fabric message rank 0 sends: the head frame
      // of the pipeline cycle, carrying put(k, v1).
      Arm("net.msg.drop=rank0@op1");
      papyruskv_event_t e1 = 0, e2 = 0, e3 = 0;
      char* value = nullptr;
      size_t vallen = 0;
      ASSERT_EQ(PutAsyncStr(db, k, "v1", &e1), PAPYRUSKV_SUCCESS);
      ASSERT_EQ(papyruskv_get_async(db, k.data(), k.size(), &value, &vallen,
                                    &e2),
                PAPYRUSKV_SUCCESS);
      ASSERT_EQ(PutAsyncStr(db, k, "v2", &e3), PAPYRUSKV_SUCCESS);

      ASSERT_EQ(papyruskv_wait(db, e1), PAPYRUSKV_SUCCESS);
      ASSERT_EQ(papyruskv_wait(db, e2), PAPYRUSKV_SUCCESS);
      EXPECT_EQ(std::string(value, vallen), "v1");
      EXPECT_EQ(papyruskv_free(db, value), PAPYRUSKV_SUCCESS);
      ASSERT_EQ(papyruskv_wait(db, e3), PAPYRUSKV_SUCCESS);
      fault::Registry::Instance().DisableAll();

      // The drop really forced a retry of frame 1...
      EXPECT_GT(
          fault::Registry::Instance().GetPoint("net.msg.drop").injected(),
          0u);
      // ...and the retried v1 did not clobber the later committed v2.
      std::string out;
      ASSERT_EQ(GetStr(db, k, &out), PAPYRUSKV_SUCCESS);
      EXPECT_EQ(out, "v2");
    }
    ctx.comm.Barrier();
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
  unsetenv("PAPYRUSKV_BATCH_WINDOW_US");
  unsetenv("PAPYRUSKV_TIMEOUT_MS");
}

TEST_F(AsyncApiTest, FenceRetiresCompletedPutEventsButNotGets) {
  RunKv(2, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("reapdb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    auto shard = papyrus::core::DbHandle(db);
    ctx.comm.Barrier();

    if (ctx.rank == 0) {
      // Evented puts completed in bulk by the fence (the quickstart
      // pattern): their events are consumed as if each had been waited,
      // so a long-running app leaks nothing.
      const auto keys = KeysOwnedBy(shard, 1, 4);
      std::vector<papyruskv_event_t> evs(keys.size());
      for (size_t i = 0; i < keys.size(); ++i) {
        ASSERT_EQ(PutAsyncStr(db, keys[i], "rv" + std::to_string(i),
                              &evs[i]),
                  PAPYRUSKV_SUCCESS);
      }
      // A get event must survive the fence — its value arrives at wait.
      char* value = nullptr;
      size_t vallen = 0;
      papyruskv_event_t gev = 0;
      ASSERT_EQ(papyruskv_get_async(db, keys[0].data(), keys[0].size(),
                                    &value, &vallen, &gev),
                PAPYRUSKV_SUCCESS);

      ASSERT_EQ(papyruskv_fence(db), PAPYRUSKV_SUCCESS);
      for (papyruskv_event_t ev : evs) {
        EXPECT_EQ(papyruskv_wait(db, ev), PAPYRUSKV_INVALID_EVENT);
      }
      ASSERT_EQ(papyruskv_wait(db, gev), PAPYRUSKV_SUCCESS);
      EXPECT_EQ(std::string(value, vallen), "rv0");
      EXPECT_EQ(papyruskv_free(db, value), PAPYRUSKV_SUCCESS);
    }
    ctx.comm.Barrier();
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(AsyncApiTest, SameDestinationSubmissionsCoalesceIntoOneFrame) {
  // A batching window holds the pipeline open long enough for the app
  // thread's burst to land in one cycle; consecutive same-destination puts
  // must then share frames instead of paying one round trip each.
  setenv("PAPYRUSKV_BATCH_WINDOW_US", "20000", 1);
  const int kOps = 48;
  RunKv(2, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("batchdb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    auto shard = papyrus::core::DbHandle(db);
    ctx.comm.Barrier();

    if (ctx.rank == 0) {
      auto& reg = papyrus::core::KvRuntime::Current()->metrics();
      const uint64_t frames_before = reg.GetCounter("async.frames").Value();

      const auto keys = KeysOwnedBy(shard, 1, kOps);
      std::vector<papyruskv_event_t> evs(keys.size());
      for (size_t i = 0; i < keys.size(); ++i) {
        ASSERT_EQ(PutAsyncStr(db, keys[i], "b" + std::to_string(i), &evs[i]),
                  PAPYRUSKV_SUCCESS);
      }
      for (papyruskv_event_t ev : evs) {
        ASSERT_EQ(papyruskv_wait(db, ev), PAPYRUSKV_SUCCESS);
      }

      const uint64_t frames = reg.GetCounter("async.frames").Value();
      // 48 ops submitted inside one 20ms window: massively fewer frames
      // than ops (exact count depends on when the first cycle opened).
      EXPECT_LT(frames - frames_before, static_cast<uint64_t>(kOps) / 4);
      // The batch-size histogram saw at least one genuinely merged frame.
      const obs::HistogramData h =
          reg.GetHistogram("async.batch_size").Snapshot();
      EXPECT_GE(h.max, 2u);
      EXPECT_EQ(h.sum, static_cast<uint64_t>(kOps));
    }
    ctx.comm.Barrier();
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
  unsetenv("PAPYRUSKV_BATCH_WINDOW_US");
}

TEST_F(AsyncApiTest, PartialBatchFailureSurfacesPerOpStatuses) {
  RunKv(2, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("faildb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    auto shard = papyrus::core::DbHandle(db);
    ctx.comm.Barrier();
    // The handler side (rank 1) fails exactly its first batched op; the
    // batch as a whole is still acked with one status per op.
    if (ctx.rank == 0) Arm("batch.op.fail=rank1@op1");
    ctx.comm.Barrier();

    if (ctx.rank == 0) {
      const auto keys = KeysOwnedBy(shard, 1, 4);
      std::vector<papyruskv_event_t> evs(keys.size());
      for (size_t i = 0; i < keys.size(); ++i) {
        ASSERT_EQ(PutAsyncStr(db, keys[i], "pf" + std::to_string(i), &evs[i]),
                  PAPYRUSKV_SUCCESS);
      }
      int failures = 0;
      for (size_t i = 0; i < evs.size(); ++i) {
        const int rc = papyruskv_wait(db, evs[i]);
        if (rc != PAPYRUSKV_SUCCESS) {
          EXPECT_EQ(rc, PAPYRUSKV_ERR);
          ++failures;
        }
      }
      // Exactly one op failed; its siblings in the same batch committed.
      EXPECT_EQ(failures, 1);
      fault::Registry::Instance().DisableAll();
      EXPECT_GT(papyrus::core::KvRuntime::Current()
                    ->metrics()
                    .GetCounter("async.op_errors")
                    .Value(),
                0u);
    }
    ctx.comm.Barrier();
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(AsyncApiTest, GetMultiMixesHitsMissesAndBothBufferModes) {
  // papyruskv_get_multi submits every key before finishing any, so the
  // remote lookups share get_multi frames; per-key results follow the
  // papyruskv_get buffer contract, and NOT_FOUND is a per-key status, not
  // a call failure.
  RunKv(2, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("multidb", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    auto shard = papyrus::core::DbHandle(db);
    ctx.comm.Barrier();

    if (ctx.rank == 0) {
      const auto remote = KeysOwnedBy(shard, 1, 2);
      const auto local = KeysOwnedBy(shard, 0, 1);
      ASSERT_EQ(papyruskv_put(db, remote[0].data(), remote[0].size(),
                              "far", 3),
                PAPYRUSKV_SUCCESS);
      ASSERT_EQ(papyruskv_put(db, local[0].data(), local[0].size(),
                              "near", 4),
                PAPYRUSKV_SUCCESS);

      // remote hit (pool buffer), local hit (caller buffer), remote miss.
      const std::string missing = "never-written";
      const char* keys[3] = {remote[0].data(), local[0].data(),
                             missing.data()};
      const size_t keylens[3] = {remote[0].size(), local[0].size(),
                                 missing.size()};
      char stack[16];
      char* values[3] = {nullptr, stack, nullptr};
      size_t vallens[3] = {0, sizeof(stack), 0};
      int statuses[3] = {-1, -1, -1};
      ASSERT_EQ(papyruskv_get_multi(db, 3, keys, keylens, values, vallens,
                                    statuses),
                PAPYRUSKV_SUCCESS);
      EXPECT_EQ(statuses[0], PAPYRUSKV_SUCCESS);
      ASSERT_NE(values[0], nullptr);
      EXPECT_EQ(std::string(values[0], vallens[0]), "far");
      ASSERT_EQ(papyruskv_free(db, values[0]), PAPYRUSKV_SUCCESS);
      EXPECT_EQ(statuses[1], PAPYRUSKV_SUCCESS);
      EXPECT_EQ(std::string(stack, vallens[1]), "near");
      EXPECT_EQ(statuses[2], PAPYRUSKV_NOT_FOUND);

      // A too-small caller buffer fails that key alone — and its code
      // becomes the call's return (first non-SUCCESS/NOT_FOUND status).
      char tiny[2];
      char* small_values[2] = {tiny, nullptr};
      size_t small_vallens[2] = {sizeof(tiny), 0};
      int small_statuses[2] = {-1, -1};
      const char* small_keys[2] = {remote[0].data(), local[0].data()};
      const size_t small_keylens[2] = {remote[0].size(), local[0].size()};
      EXPECT_EQ(papyruskv_get_multi(db, 2, small_keys, small_keylens,
                                    small_values, small_vallens,
                                    small_statuses),
                PAPYRUSKV_INVALID_ARG);
      EXPECT_EQ(small_statuses[0], PAPYRUSKV_INVALID_ARG);
      EXPECT_EQ(small_statuses[1], PAPYRUSKV_SUCCESS);
      ASSERT_NE(small_values[1], nullptr);
      EXPECT_EQ(std::string(small_values[1], small_vallens[1]), "near");
      ASSERT_EQ(papyruskv_free(db, small_values[1]), PAPYRUSKV_SUCCESS);

      EXPECT_EQ(papyruskv_get_multi(db, 1, nullptr, keylens, values,
                                    vallens, statuses),
                PAPYRUSKV_INVALID_ARG);
    }
    ctx.comm.Barrier();
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(AsyncApiTest, WaitRejectsUnknownAndNullArguments) {
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("argdb", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    EXPECT_EQ(papyruskv_wait(db, papyrus::core::kAsyncEventBase + 999),
              PAPYRUSKV_INVALID_EVENT);
    papyruskv_event_t ev = 0;
    EXPECT_EQ(papyruskv_put_async(db, nullptr, 0, "v", 1, &ev),
              PAPYRUSKV_INVALID_ARG);
    char* value = nullptr;
    size_t vallen = 0;
    // get_async requires an event — the value arrives at wait time.
    EXPECT_EQ(papyruskv_get_async(db, "k", 1, &value, &vallen, nullptr),
              PAPYRUSKV_INVALID_ARG);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

}  // namespace
}  // namespace papyrus::testutil
