// Versioned batch codec (core/wire.h, DESIGN.md §9): byte-for-byte pins of
// the v1 frame layouts, proof that the batch opcodes leave every legacy
// frame encoding untouched, round trips with and without a trace header,
// and negative decodes — truncation at every prefix length, an unknown
// version byte, trailing garbage, and a deterministic random-bytes fuzz
// that must reject (or cleanly accept) without crashing.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/coding.h"
#include "core/wire.h"

namespace papyrus::core {
namespace {

obs::TraceContext MakeCtx() {
  obs::TraceContext ctx;
  ctx.trace_id = 0x0001000000000011ull;
  ctx.span_id = 0x0001000000000013ull;
  ctx.sampled = true;
  return ctx;
}

std::vector<KvRecord> SampleRecords() {
  std::vector<KvRecord> records(3);
  records[0].key = "alpha";
  records[0].value = "value-a";
  records[1].key = "beta";
  records[1].value = "value-b";
  records[2].key = "gone";
  records[2].tombstone = true;
  return records;
}

// ---- Byte-for-byte pins ----------------------------------------------------
// Hand-built v1 frames, exactly what the encoders must write.  If any of
// these pins break, the wire format changed: bump kBatchVersion instead.

std::string PinnedPutBatch(uint32_t dbid, uint32_t resp_tag,
                           const std::vector<KvRecord>& records) {
  std::string out;
  out.push_back(1);  // kBatchVersion
  PutFixed32(&out, dbid);
  PutFixed32(&out, resp_tag);
  PutFixed32(&out, static_cast<uint32_t>(records.size()));
  for (const KvRecord& r : records) {
    PutLengthPrefixed(&out, r.key);
    PutLengthPrefixed(&out, r.value);
    out.push_back(r.tombstone ? 1 : 0);
  }
  return out;
}

TEST(BatchWireTest, PutBatchPinnedBytes) {
  const auto records = SampleRecords();
  EXPECT_EQ(EncodePutBatch(7, 120, records), PinnedPutBatch(7, 120, records));
}

TEST(BatchWireTest, PutBatchAckPinnedBytes) {
  const std::vector<int32_t> statuses = {PAPYRUSKV_SUCCESS, PAPYRUSKV_ERR,
                                         PAPYRUSKV_SUCCESS};
  std::string pinned;
  pinned.push_back(1);
  PutFixed32(&pinned, 3);
  for (int32_t s : statuses) PutFixed32(&pinned, static_cast<uint32_t>(s));
  EXPECT_EQ(EncodePutBatchAck(statuses), pinned);
}

TEST(BatchWireTest, GetMultiPinnedBytes) {
  std::vector<GetMultiOp> ops(2);
  ops[0].key = "k0";
  ops[1].key = "k1";
  ops[1].full_search = true;
  std::string pinned;
  pinned.push_back(1);
  PutFixed32(&pinned, 9);    // dbid
  PutFixed32(&pinned, 130);  // resp_tag
  PutFixed32(&pinned, 2);    // caller_group
  PutFixed32(&pinned, 2);    // count
  PutLengthPrefixed(&pinned, "k0");
  pinned.push_back(0);
  PutLengthPrefixed(&pinned, "k1");
  pinned.push_back(static_cast<char>(kGetFullSearch));
  EXPECT_EQ(EncodeGetMulti(9, 130, 2, ops), pinned);
}

TEST(BatchWireTest, GetMultiRespEmbedsLegacyGetRespBodies) {
  GetMultiResult hit;
  hit.resp.found = true;
  hit.resp.value = "payload";
  GetMultiResult miss;
  miss.status = PAPYRUSKV_NOT_FOUND;
  miss.resp.same_group = true;
  miss.resp.latest_ssid = 42;
  miss.resp.ssids = {42, 41};

  std::string pinned;
  pinned.push_back(1);
  PutFixed32(&pinned, 2);
  PutFixed32(&pinned, static_cast<uint32_t>(PAPYRUSKV_SUCCESS));
  // Each entry embeds the legacy single-op GetResp encoding verbatim.
  PutLengthPrefixed(&pinned, EncodeGetResp(hit.resp));
  PutFixed32(&pinned, static_cast<uint32_t>(PAPYRUSKV_NOT_FOUND));
  PutLengthPrefixed(&pinned, EncodeGetResp(miss.resp));
  EXPECT_EQ(EncodeGetMultiResp({hit, miss}), pinned);
}

// ---- Legacy frames untouched -----------------------------------------------

TEST(BatchWireTest, LegacyFrameEncodingsAreUnchangedByTheBatchCodec) {
  // The pre-batch frame kinds must still write their original bytes (no
  // version byte, no other prefix) and decode them unchanged — the batch
  // codec rides new opcodes, it does not re-key existing traffic.
  {
    std::string pinned;
    PutFixed32(&pinned, 3);    // dbid
    PutFixed32(&pinned, 200);  // resp_tag
    PutFixed32(&pinned, 1);    // count
    PutLengthPrefixed(&pinned, "k");
    PutLengthPrefixed(&pinned, "v");
    pinned.push_back(0);
    EXPECT_EQ(EncodeMigrateChunk(3, 200, {{"k", "v", false}}), pinned);
    uint32_t dbid = 0, resp_tag = 0;
    std::vector<KvRecord> records;
    ASSERT_TRUE(DecodeMigrateChunk(pinned, &dbid, &resp_tag, &records));
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].key, "k");
  }
  {
    std::string pinned;
    PutFixed32(&pinned, 5);
    PutFixed32(&pinned, 210);
    PutFixed32(&pinned, 0xffffffffu);
    PutLengthPrefixed(&pinned, "needle");
    EXPECT_EQ(EncodeGetReq(5, 210, 0xffffffffu, "needle"), pinned);
    uint32_t dbid = 0, resp_tag = 0, group = 0;
    std::string key;
    ASSERT_TRUE(DecodeGetReq(pinned, &dbid, &resp_tag, &group, &key));
    EXPECT_EQ(key, "needle");
  }
}

TEST(BatchWireTest, VersionByteCannotAliasLegacyFirstBytes) {
  // Batch frames start with 0x01 after the optional trace header; legacy
  // frames start with a dbid low byte or a found flag, and the trace header
  // starts with 0xff.  A batch frame can therefore never be misread as a
  // trace header, and a legacy decoder handed a batch frame fails cleanly.
  const std::string frame = EncodePutBatch(7, 120, SampleRecords());
  EXPECT_EQ(static_cast<uint8_t>(frame[0]), kBatchVersion);
  const std::string traced =
      EncodePutBatch(7, 120, SampleRecords(), MakeCtx());
  EXPECT_EQ(static_cast<uint8_t>(traced[0]), 0xffu);
}

// ---- Round trips -----------------------------------------------------------

TEST(BatchWireTest, PutBatchRoundTripsWithAndWithoutContext) {
  const auto records = SampleRecords();
  for (const bool with_ctx : {false, true}) {
    const std::string wire =
        with_ctx ? EncodePutBatch(7, 120, records, MakeCtx())
                 : EncodePutBatch(7, 120, records);
    uint32_t dbid = 0, resp_tag = 0;
    std::vector<KvRecord> out;
    obs::TraceContext got = MakeCtx();  // must be reset on the no-ctx path
    ASSERT_TRUE(DecodePutBatch(wire, &dbid, &resp_tag, &out, &got));
    EXPECT_EQ(dbid, 7u);
    EXPECT_EQ(resp_tag, 120u);
    ASSERT_EQ(out.size(), records.size());
    EXPECT_EQ(out[0].key, "alpha");
    EXPECT_EQ(out[0].value, "value-a");
    EXPECT_FALSE(out[0].tombstone);
    EXPECT_EQ(out[2].key, "gone");
    EXPECT_TRUE(out[2].tombstone);
    EXPECT_EQ(got.valid(), with_ctx);
  }
}

TEST(BatchWireTest, AckAndGetMultiRoundTrip) {
  const std::vector<int32_t> statuses = {PAPYRUSKV_SUCCESS, PAPYRUSKV_ERR,
                                         PAPYRUSKV_NOT_FOUND};
  std::vector<int32_t> got_statuses;
  ASSERT_TRUE(
      DecodePutBatchAck(EncodePutBatchAck(statuses, MakeCtx()),
                        &got_statuses));
  EXPECT_EQ(got_statuses, statuses);

  std::vector<GetMultiOp> ops(2);
  ops[0].key = "k0";
  ops[1].key = "k1";
  ops[1].full_search = true;
  uint32_t dbid = 0, resp_tag = 0, group = 0;
  std::vector<GetMultiOp> got_ops;
  ASSERT_TRUE(DecodeGetMulti(EncodeGetMulti(9, 130, 2, ops, MakeCtx()),
                             &dbid, &resp_tag, &group, &got_ops));
  EXPECT_EQ(dbid, 9u);
  EXPECT_EQ(group, 2u);
  ASSERT_EQ(got_ops.size(), 2u);
  EXPECT_FALSE(got_ops[0].full_search);
  EXPECT_TRUE(got_ops[1].full_search);

  GetMultiResult hit;
  hit.resp.found = true;
  hit.resp.value = "payload";
  GetMultiResult miss;
  miss.status = PAPYRUSKV_NOT_FOUND;
  miss.resp.same_group = true;
  miss.resp.ssids = {42, 41};
  std::vector<GetMultiResult> got_results;
  ASSERT_TRUE(DecodeGetMultiResp(EncodeGetMultiResp({hit, miss}, MakeCtx()),
                                 &got_results));
  ASSERT_EQ(got_results.size(), 2u);
  EXPECT_EQ(got_results[0].status, PAPYRUSKV_SUCCESS);
  EXPECT_EQ(got_results[0].resp.value, "payload");
  EXPECT_EQ(got_results[1].status, PAPYRUSKV_NOT_FOUND);
  EXPECT_TRUE(got_results[1].resp.same_group);
  EXPECT_EQ(got_results[1].resp.ssids, (std::vector<uint64_t>{42, 41}));
}

TEST(BatchWireTest, EmptyBatchesRoundTrip) {
  uint32_t dbid = 0, resp_tag = 0;
  std::vector<KvRecord> records;
  ASSERT_TRUE(
      DecodePutBatch(EncodePutBatch(1, 100, {}), &dbid, &resp_tag, &records));
  EXPECT_TRUE(records.empty());
  std::vector<int32_t> statuses;
  ASSERT_TRUE(DecodePutBatchAck(EncodePutBatchAck({}), &statuses));
  EXPECT_TRUE(statuses.empty());
}

// ---- Negative decodes ------------------------------------------------------

TEST(BatchWireTest, TruncationAtEveryLengthIsRejected) {
  // Every proper prefix of a valid frame must fail to decode — no prefix
  // may parse as a shorter valid frame (count precedes the records, so a
  // cut body can never masquerade as a complete smaller batch).
  const std::string wire = EncodePutBatch(7, 120, SampleRecords(), MakeCtx());
  for (size_t len = 0; len < wire.size(); ++len) {
    uint32_t dbid = 0, resp_tag = 0;
    std::vector<KvRecord> records;
    EXPECT_FALSE(DecodePutBatch(Slice(wire.data(), len), &dbid, &resp_tag,
                                &records))
        << "prefix length " << len;
  }
  const std::string resp = EncodeGetMultiResp(
      {GetMultiResult{}, GetMultiResult{}}, MakeCtx());
  for (size_t len = 0; len < resp.size(); ++len) {
    std::vector<GetMultiResult> results;
    EXPECT_FALSE(DecodeGetMultiResp(Slice(resp.data(), len), &results))
        << "prefix length " << len;
  }
}

TEST(BatchWireTest, UnknownVersionIsRejected) {
  std::string wire = EncodePutBatch(7, 120, SampleRecords());
  wire[0] = 2;  // a future version this decoder does not know
  uint32_t dbid = 0, resp_tag = 0;
  std::vector<KvRecord> records;
  EXPECT_FALSE(DecodePutBatch(wire, &dbid, &resp_tag, &records));
  std::string ack = EncodePutBatchAck({PAPYRUSKV_SUCCESS});
  ack[0] = 0;
  std::vector<int32_t> statuses;
  EXPECT_FALSE(DecodePutBatchAck(ack, &statuses));
}

TEST(BatchWireTest, TrailingGarbageIsRejected) {
  std::string wire = EncodePutBatch(7, 120, SampleRecords());
  wire += "x";
  uint32_t dbid = 0, resp_tag = 0;
  std::vector<KvRecord> records;
  EXPECT_FALSE(DecodePutBatch(wire, &dbid, &resp_tag, &records));
}

TEST(BatchWireTest, RandomBytesNeverCrashTheDecoders) {
  // Deterministic xorshift fuzz: decoders must reject (or, vanishingly
  // rarely, accept) arbitrary payloads without crashing or overreading.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 2000; ++round) {
    std::string noise;
    const size_t len = next() % 64;
    noise.reserve(len + 1);
    for (size_t i = 0; i < len; ++i) {
      noise.push_back(static_cast<char>(next() & 0xff));
    }
    // Half the rounds lead with a valid version byte so the field parsers
    // after the version check also see fuzzed input.
    if (round % 2 == 0) noise.insert(noise.begin(), 1);
    uint32_t a = 0, b = 0, c = 0;
    std::vector<KvRecord> records;
    std::vector<int32_t> statuses;
    std::vector<GetMultiOp> ops;
    std::vector<GetMultiResult> results;
    (void)DecodePutBatch(noise, &a, &b, &records);
    (void)DecodePutBatchAck(noise, &statuses);
    (void)DecodeGetMulti(noise, &a, &b, &c, &ops);
    (void)DecodeGetMultiResp(noise, &results);
  }
}

}  // namespace
}  // namespace papyrus::core
