#include "baseline/mdhim.h"

#include <gtest/gtest.h>

#include "../util/temp_dir.h"
#include "net/runtime.h"

namespace papyrus::baseline {
namespace {

using papyrus::testutil::TempDir;

TEST(MdhimTest, DistributedPutGet) {
  TempDir tmp;
  net::RunRanks(4, [&](net::RankContext& ctx) {
    std::unique_ptr<Mdhim> db;
    ASSERT_TRUE(Mdhim::Open(ctx, tmp.path(), MdhimOptions{}, &db).ok());
    // Every rank writes, synchronously (MDHIM semantics): immediately
    // visible to all ranks, no fence needed.
    for (int i = 0; i < 20; ++i) {
      const std::string k =
          "r" + std::to_string(ctx.rank) + "k" + std::to_string(i);
      ASSERT_TRUE(db->Put(k, "v_" + k).ok());
    }
    ctx.comm.Barrier();
    for (int r = 0; r < 4; ++r) {
      for (int i = 0; i < 20; ++i) {
        const std::string k =
            "r" + std::to_string(r) + "k" + std::to_string(i);
        std::string out;
        ASSERT_TRUE(db->Get(k, &out).ok()) << k;
        EXPECT_EQ(out, "v_" + k);
      }
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(MdhimTest, SequentialVisibilityPerOp) {
  TempDir tmp;
  net::RunRanks(2, [&](net::RankContext& ctx) {
    std::unique_ptr<Mdhim> db;
    ASSERT_TRUE(Mdhim::Open(ctx, tmp.path(), MdhimOptions{}, &db).ok());
    if (ctx.rank == 0) {
      ASSERT_TRUE(db->Put("sync", "now").ok());
      ctx.comm.Send(1, 1, Slice("go"));
    } else {
      ctx.comm.Recv(0, 1);
      std::string out;
      ASSERT_TRUE(db->Get("sync", &out).ok());
      EXPECT_EQ(out, "now");
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(MdhimTest, DeleteAndMiss) {
  TempDir tmp;
  net::RunRanks(3, [&](net::RankContext& ctx) {
    std::unique_ptr<Mdhim> db;
    ASSERT_TRUE(Mdhim::Open(ctx, tmp.path(), MdhimOptions{}, &db).ok());
    const std::string k = "shared_key";
    if (ctx.rank == 0) {
      ASSERT_TRUE(db->Put(k, "v").ok());
      ASSERT_TRUE(db->Delete(k).ok());
    }
    ctx.comm.Barrier();
    std::string out;
    EXPECT_TRUE(db->Get(k, &out).IsNotFound());
    EXPECT_TRUE(db->Get("never_written", &out).IsNotFound());
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(MdhimTest, StoresSpillToDiskUnderPressure) {
  TempDir tmp;
  net::RunRanks(2, [&](net::RankContext& ctx) {
    MdhimOptions opt;
    opt.store.memtable_bytes = 2048;
    std::unique_ptr<Mdhim> db;
    ASSERT_TRUE(Mdhim::Open(ctx, tmp.path(), opt, &db).ok());
    const std::string big(512, 'x');
    for (int i = 0; i < 40; ++i) {
      const std::string k =
          "big" + std::to_string(ctx.rank) + "_" + std::to_string(i);
      ASSERT_TRUE(db->Put(k, big).ok());
    }
    ctx.comm.Barrier();
    for (int i = 0; i < 40; ++i) {
      const std::string k =
          "big" + std::to_string(1 - ctx.rank) + "_" + std::to_string(i);
      std::string out;
      ASSERT_TRUE(db->Get(k, &out).ok()) << k;
      EXPECT_EQ(out, big);
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

}  // namespace
}  // namespace papyrus::baseline
