#include "baseline/dsm.h"

#include <gtest/gtest.h>

#include <atomic>

#include "net/runtime.h"

namespace papyrus::baseline {
namespace {

TEST(DsmTest, InsertQuietLookup) {
  net::RunRanks(4, [](net::RankContext& ctx) {
    std::unique_ptr<DsmHashTable> t;
    ASSERT_TRUE(DsmHashTable::Open(ctx, &t).ok());
    for (int i = 0; i < 25; ++i) {
      const std::string k =
          "r" + std::to_string(ctx.rank) + "i" + std::to_string(i);
      ASSERT_TRUE(t->Insert(k, "v_" + k).ok());
    }
    // One-sided stores complete at the target only after the fence.
    ASSERT_TRUE(t->Quiet().ok());
    ctx.comm.Barrier();
    for (int r = 0; r < 4; ++r) {
      for (int i = 0; i < 25; ++i) {
        const std::string k =
            "r" + std::to_string(r) + "i" + std::to_string(i);
        std::string out;
        ASSERT_TRUE(t->Lookup(k, &out).ok()) << k;
        EXPECT_EQ(out, "v_" + k);
      }
    }
    std::string out;
    EXPECT_TRUE(t->Lookup("missing", &out).IsNotFound());
    ASSERT_TRUE(t->Close().ok());
  });
}

TEST(DsmTest, RemoteAtomicCasClaimsExactlyOnce) {
  // All ranks race to claim the same keys; exactly one winner per key.
  std::atomic<int> total_wins{0};
  net::RunRanks(4, [&](net::RankContext& ctx) {
    std::unique_ptr<DsmHashTable> t;
    ASSERT_TRUE(DsmHashTable::Open(ctx, &t).ok());
    if (ctx.rank == 0) {
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(t->Insert("seed" + std::to_string(i), "x").ok());
      }
      ASSERT_TRUE(t->Quiet().ok());
    }
    ctx.comm.Barrier();
    int wins = 0;
    for (int i = 0; i < 10; ++i) {
      bool swapped = false;
      ASSERT_TRUE(
          t->CompareAndSwapFlag("seed" + std::to_string(i), 0, 1, &swapped)
              .ok());
      if (swapped) ++wins;
    }
    total_wins.fetch_add(wins);
    ctx.comm.Barrier();
    // CAS on an absent key reports NOT_FOUND.
    bool swapped;
    EXPECT_TRUE(t->CompareAndSwapFlag("ghost", 0, 1, &swapped).IsNotFound());
    ASSERT_TRUE(t->Close().ok());
  });
  EXPECT_EQ(total_wins.load(), 10);
}

TEST(DsmTest, InsertOverwrites) {
  net::RunRanks(2, [](net::RankContext& ctx) {
    std::unique_ptr<DsmHashTable> t;
    ASSERT_TRUE(DsmHashTable::Open(ctx, &t).ok());
    if (ctx.rank == 0) {
      ASSERT_TRUE(t->Insert("k", "old").ok());
      ASSERT_TRUE(t->Insert("k", "new").ok());
      ASSERT_TRUE(t->Quiet().ok());
    }
    ctx.comm.Barrier();
    std::string out;
    ASSERT_TRUE(t->Lookup("k", &out).ok());
    EXPECT_EQ(out, "new");
    ASSERT_TRUE(t->Close().ok());
  });
}

}  // namespace
}  // namespace papyrus::baseline
