#include "baseline/minidb.h"

#include <gtest/gtest.h>

#include <map>

#include "../util/temp_dir.h"
#include "common/random.h"

namespace papyrus::baseline {
namespace {

using papyrus::testutil::TempDir;

TEST(MiniDbTest, PutGetDelete) {
  TempDir tmp;
  std::unique_ptr<MiniDb> db;
  ASSERT_TRUE(MiniDb::Open(tmp.path(), MiniDbOptions{}, &db).ok());
  ASSERT_TRUE(db->Put("k", "v").ok());
  std::string out;
  ASSERT_TRUE(db->Get("k", &out).ok());
  EXPECT_EQ(out, "v");
  ASSERT_TRUE(db->Delete("k").ok());
  EXPECT_TRUE(db->Get("k", &out).IsNotFound());
  EXPECT_TRUE(db->Get("absent", &out).IsNotFound());
  EXPECT_EQ(db->Put("", "v").code(), PAPYRUSKV_INVALID_ARG);
}

TEST(MiniDbTest, WriteStallFlushesAtThreshold) {
  TempDir tmp;
  MiniDbOptions opt;
  opt.memtable_bytes = 1024;
  std::unique_ptr<MiniDb> db;
  ASSERT_TRUE(MiniDb::Open(tmp.path(), opt, &db).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        db->Put("key" + std::to_string(i), std::string(64, 'v')).ok());
  }
  EXPECT_GT(db->TableCount(), 0u);
  EXPECT_LT(db->MemTableBytes(), 1024u);
  // Everything still readable through the LSM.
  for (int i = 0; i < 100; ++i) {
    std::string out;
    ASSERT_TRUE(db->Get("key" + std::to_string(i), &out).ok()) << i;
    EXPECT_EQ(out, std::string(64, 'v'));
  }
}

TEST(MiniDbTest, PersistsAcrossReopen) {
  TempDir tmp;
  {
    std::unique_ptr<MiniDb> db;
    ASSERT_TRUE(MiniDb::Open(tmp.path(), MiniDbOptions{}, &db).ok());
    ASSERT_TRUE(db->Put("persist", "me").ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  std::unique_ptr<MiniDb> db;
  ASSERT_TRUE(MiniDb::Open(tmp.path(), MiniDbOptions{}, &db).ok());
  std::string out;
  ASSERT_TRUE(db->Get("persist", &out).ok());
  EXPECT_EQ(out, "me");
}

TEST(MiniDbTest, CompactionPreservesLatestState) {
  TempDir tmp;
  MiniDbOptions opt;
  opt.memtable_bytes = 512;
  opt.compaction_trigger = 2;
  std::unique_ptr<MiniDb> db;
  ASSERT_TRUE(MiniDb::Open(tmp.path(), opt, &db).ok());

  Rng rng(99);
  std::map<std::string, std::string> ref;
  for (int i = 0; i < 400; ++i) {
    const std::string k = "k" + std::to_string(rng.Uniform(50));
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE(db->Delete(k).ok());
      ref.erase(k);
    } else {
      const std::string v = PatternValue(rng.Next(), 32);
      ASSERT_TRUE(db->Put(k, v).ok());
      ref[k] = v;
    }
  }
  for (int i = 0; i < 50; ++i) {
    const std::string k = "k" + std::to_string(i);
    std::string out;
    const Status s = db->Get(k, &out);
    auto it = ref.find(k);
    if (it == ref.end()) {
      EXPECT_TRUE(s.IsNotFound()) << k;
    } else {
      ASSERT_TRUE(s.ok()) << k;
      EXPECT_EQ(out, it->second);
    }
  }
}

}  // namespace
}  // namespace papyrus::baseline
