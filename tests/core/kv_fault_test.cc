// Failure injection: on-NVM corruption and stray files must surface as
// clean errors (PAPYRUSKV_CORRUPTED / PAPYRUSKV_IO_ERROR), never as wrong
// data, and must not take the runtime down.
#include <gtest/gtest.h>

#include "core/db_shard.h"
#include "kv_test_util.h"
#include "store/format.h"

namespace papyrus::testutil {
namespace {

using Kv = KvTest;

// Key owned by rank 0 in a single-rank job: trivially any key.
constexpr const char* kKey = "victim_key";
constexpr const char* kValue = "precious payload that must not be mangled";

// Populates a single-rank db, flushes to SSTables, and returns the rank
// directory + the (single) live ssid.
void PopulateFlushed(papyruskv_db_t* db, std::string* dir, uint64_t* ssid) {
  ASSERT_EQ(papyruskv_open("fault", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR,
                           nullptr, db),
            PAPYRUSKV_SUCCESS);
  ASSERT_EQ(PutStr(*db, kKey, kValue), PAPYRUSKV_SUCCESS);
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(PutStr(*db, "filler" + std::to_string(i), "x"),
              PAPYRUSKV_SUCCESS);
  }
  ASSERT_EQ(papyruskv_barrier(*db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);
  auto shard = papyrus::core::DbHandle(*db);
  ASSERT_NE(shard, nullptr);
  *dir = shard->dir();
  const auto live = shard->manifest().LiveSsids();
  ASSERT_EQ(live.size(), 1u);
  *ssid = live[0];
}

void FlipByte(const std::string& path, size_t offset_from_end) {
  std::string raw;
  ASSERT_TRUE(sim::Storage::ReadFileToString(path, &raw).ok());
  ASSERT_GT(raw.size(), offset_from_end);
  raw[raw.size() - 1 - offset_from_end] ^= 0x55;
  ASSERT_TRUE(sim::Storage::WriteStringToFile(path, raw).ok());
}

TEST_F(Kv, CorruptedSSDataSurfacesAsErrorNotWrongData) {
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    std::string dir;
    uint64_t ssid;
    PopulateFlushed(&db, &dir, &ssid);

    // Flip a byte near the end of SSData (inside some record's payload).
    FlipByte(dir + "/" + store::SsDataName(ssid), 3);

    // Every key in the table either reads back intact or errors — a value
    // is never silently mangled.  ("victim_key" sorts last, so the flipped
    // tail byte lands in its record.)
    int corrupted = 0;
    std::vector<std::pair<std::string, std::string>> expect;
    for (int i = 0; i < 20; ++i) {
      expect.emplace_back("filler" + std::to_string(i), "x");
    }
    expect.emplace_back(kKey, kValue);
    for (const auto& [k, want] : expect) {
      char* v = nullptr;
      size_t n = 0;
      const int rc = papyruskv_get(db, k.data(), k.size(), &v, &n);
      if (rc == PAPYRUSKV_SUCCESS) {
        EXPECT_EQ(std::string(v, n), want) << k;
        EXPECT_EQ(papyruskv_free(db, v), PAPYRUSKV_SUCCESS);
      } else {
        EXPECT_EQ(rc, PAPYRUSKV_CORRUPTED) << k;
        ++corrupted;
      }
    }
    EXPECT_GE(corrupted, 1) << "the flipped byte was never detected";
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, CorruptedSSIndexDetected) {
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    std::string dir;
    uint64_t ssid;
    PopulateFlushed(&db, &dir, &ssid);
    FlipByte(dir + "/" + store::SsIndexName(ssid), 10);

    char* v = nullptr;
    size_t n = 0;
    EXPECT_EQ(papyruskv_get(db, kKey, strlen(kKey), &v, &n),
              PAPYRUSKV_CORRUPTED);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, CorruptedBloomDetected) {
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    std::string dir;
    uint64_t ssid;
    PopulateFlushed(&db, &dir, &ssid);
    FlipByte(dir + "/" + store::BloomName(ssid), 8);

    char* v = nullptr;
    size_t n = 0;
    EXPECT_EQ(papyruskv_get(db, kKey, strlen(kKey), &v, &n),
              PAPYRUSKV_CORRUPTED);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, MissingSSDataFileIsIoError) {
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    std::string dir;
    uint64_t ssid;
    PopulateFlushed(&db, &dir, &ssid);
    ASSERT_TRUE(
        sim::Storage::RemoveFile(dir + "/" + store::SsDataName(ssid)).ok());

    char* v = nullptr;
    size_t n = 0;
    EXPECT_EQ(papyruskv_get(db, kKey, strlen(kKey), &v, &n),
              PAPYRUSKV_IO_ERROR);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, StrayTmpFilesIgnoredOnReopen) {
  // A crash mid-flush leaves *.tmp files; recovery must skip them (only
  // published tables count) and the database must reopen cleanly.
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    std::string dir;
    uint64_t ssid;
    PopulateFlushed(&db, &dir, &ssid);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);

    // Simulate a torn flush: partial files with the next ssid.
    const uint64_t torn = ssid + 1;
    ASSERT_TRUE(sim::Storage::WriteStringToFile(
                    dir + "/" + store::SsDataName(torn) + ".tmp", "garbage")
                    .ok());
    ASSERT_TRUE(sim::Storage::WriteStringToFile(
                    dir + "/" + store::SsIndexName(torn) + ".tmp", "garbage")
                    .ok());

    papyruskv_db_t db2;
    ASSERT_EQ(papyruskv_open("fault", PAPYRUSKV_RDWR, nullptr, &db2),
              PAPYRUSKV_SUCCESS);
    std::string out;
    ASSERT_EQ(GetStr(db2, kKey, &out), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(out, kValue);
    // New writes allocate SSIDs above the recovered ones without touching
    // the stray temporaries.
    ASSERT_EQ(PutStr(db2, "post_crash", "ok"), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_close(db2), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, CorruptSnapshotMetaFailsRestart) {
  TempDir snap{"fault_snap"};
  RunKv(2, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("snapdb", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    if (ctx.rank == 0) {
      ASSERT_EQ(PutStr(db, "k", "v"), PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_checkpoint(db, snap.path().c_str(), nullptr),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);

    ctx.comm.Barrier();
    if (ctx.rank == 0) {
      ASSERT_TRUE(sim::Storage::WriteStringToFile(
                      snap.path() + "/snapdb/snapshot.meta", "not a meta")
                      .ok());
    }
    ctx.comm.Barrier();

    papyruskv_db_t db2;
    EXPECT_EQ(papyruskv_restart(snap.path().c_str(), "snapdb",
                                PAPYRUSKV_RDWR, nullptr, &db2, nullptr),
              PAPYRUSKV_CORRUPTED);
  });
}

TEST_F(Kv, CorruptionDoesNotPoisonOtherTables) {
  // A corrupt older table must not block reads served by newer tables.
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.compaction_trigger = 0;  // keep generations separate
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("gen", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(PutStr(db, "old_gen", "x"), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(PutStr(db, "new_gen", "y"), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);

    auto shard = papyrus::core::DbHandle(db);
    const auto live = shard->manifest().LiveSsids();  // descending
    ASSERT_EQ(live.size(), 2u);
    // Corrupt the OLDER table's index.
    FlipByte(shard->dir() + "/" + store::SsIndexName(live[1]), 6);

    // new_gen lives in the newer table: readable.
    std::string out;
    ASSERT_EQ(GetStr(db, "new_gen", &out), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(out, "y");
    // old_gen requires the corrupt table: a clean error.
    EXPECT_EQ(GetStr(db, "old_gen", &out), PAPYRUSKV_CORRUPTED);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

}  // namespace
}  // namespace papyrus::testutil
