// Shared fixture pieces for the PapyrusKV integration tests: a clean temp
// repository, scrubbed PAPYRUSKV_* environment, zero time-scale, and a
// helper that runs a rank function bracketed by init/finalize.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <string>

#include "../util/temp_dir.h"
#include "core/papyruskv.h"
#include "net/runtime.h"
#include "sim/device_model.h"

namespace papyrus::testutil {

inline void ScrubKvEnv() {
  // PAPYRUSKV_FAULTS is deliberately NOT scrubbed: the CI fault matrix
  // re-runs these suites under a canned failpoint profile, which must
  // reach the runtime.  The retry/seed knobs are scrubbed so individual
  // tests always see the documented defaults.
  for (const char* var :
       {"PAPYRUSKV_REPOSITORY", "PAPYRUSKV_GROUP_SIZE",
        "PAPYRUSKV_CONSISTENCY", "PAPYRUSKV_BIN_SEARCH",
        "PAPYRUSKV_CACHE_REMOTE", "PAPYRUSKV_FORCE_REDISTRIBUTE",
        "PAPYRUSKV_MEMTABLE_SIZE", "PAPYRUSKV_LUSTRE",
        "PAPYRUSKV_FAULT_SEED", "PAPYRUSKV_FAULT_DELAY_US",
        "PAPYRUSKV_TIMEOUT_MS", "PAPYRUSKV_RETRY_MAX",
        "PAPYRUSKV_BARRIER_TIMEOUT_MS", "PAPYRUSKV_BATCH_MAX",
        "PAPYRUSKV_BATCH_WINDOW_US", "PAPYRUSKV_REPLICAS",
        "PAPYRUSKV_READ_REPLICAS"}) {
    unsetenv(var);
  }
}

class KvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScrubKvEnv();
    sim::SetTimeScale(0.0);
  }
  void TearDown() override {
    ScrubKvEnv();
    sim::DeviceRegistry::Instance().Clear();
  }

  // Runs fn on nranks ranks with papyruskv_init/finalize around it.
  void RunKv(int nranks, const std::string& repo,
             const std::function<void(net::RankContext&)>& fn,
             int ranks_per_node = 0) {
    sim::Topology topo;
    topo.nranks = nranks;
    topo.ranks_per_node = ranks_per_node > 0 ? ranks_per_node : nranks;
    net::RunRanks(topo, [&](net::RankContext& ctx) {
      ASSERT_EQ(papyruskv_init(nullptr, nullptr, repo.c_str()),
                PAPYRUSKV_SUCCESS);
      fn(ctx);
      ASSERT_EQ(papyruskv_finalize(), PAPYRUSKV_SUCCESS);
    });
  }

  TempDir tmp_{"papyruskv_core"};
};

// put/get helpers over the C API.
inline int PutStr(papyruskv_db_t db, const std::string& k,
                  const std::string& v) {
  return papyruskv_put(db, k.data(), k.size(), v.data(), v.size());
}

inline int GetStr(papyruskv_db_t db, const std::string& k, std::string* out) {
  char* value = nullptr;
  size_t vallen = 0;
  const int rc = papyruskv_get(db, k.data(), k.size(), &value, &vallen);
  if (rc == PAPYRUSKV_SUCCESS) {
    out->assign(value, vallen);
    EXPECT_EQ(papyruskv_free(db, value), PAPYRUSKV_SUCCESS);
  }
  return rc;
}

}  // namespace papyrus::testutil
