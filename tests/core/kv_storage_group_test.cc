// Storage groups (§2.7): ranks sharing a storage target read each other's
// SSTables directly, eliminating value transfer over the interconnect.
#include <gtest/gtest.h>

#include "core/db_shard.h"
#include "kv_test_util.h"

namespace papyrus::testutil {
namespace {

using Kv = KvTest;

std::string KeyOwnedBy(int owner, int nranks, const std::string& prefix) {
  for (int i = 0;; ++i) {
    const std::string k = prefix + std::to_string(i);
    if (static_cast<int>(papyrus::BuiltinKeyHash(k.data(), k.size()) %
                         static_cast<uint64_t>(nranks)) == owner) {
      return k;
    }
  }
}

TEST_F(Kv, SharedNvmGetAvoidsValueTransfer) {
  // 4 ranks, all on one node → one storage group.  After the owner's data
  // is flushed to SSTables, a remote get by a group member must be served
  // from the shared NVM (foreign_sstable_hits), not by shipping the value.
  RunKv(4, tmp_.path(), [](net::RankContext& ctx) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("sg", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    const std::string key = KeyOwnedBy(0, 4, "sgkey");
    const std::string big_val(2000, 'S');
    if (ctx.rank == 0) {
      ASSERT_EQ(PutStr(db, key, big_val), PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);

    if (ctx.rank == 3) {
      std::string out;
      ASSERT_EQ(GetStr(db, key, &out), PAPYRUSKV_SUCCESS);
      EXPECT_EQ(out, big_val);
      const auto stats = papyrus::core::DbHandle(db)->StatsSnapshot();
      EXPECT_GE(stats.foreign_sstable_hits, 1u)
          << "value was not read from the shared SSTable";
      EXPECT_EQ(stats.remote_value_transfers, 0u)
          << "value crossed the network despite shared storage";
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, CrossGroupGetTransfersValue) {
  // 4 ranks on 2 nodes (2 per node) → two storage groups.  A get across
  // groups must ship the value over the interconnect.
  RunKv(
      4, tmp_.path(),
      [](net::RankContext& ctx) {
        papyruskv_db_t db;
        ASSERT_EQ(papyruskv_open("xg", PAPYRUSKV_CREATE, nullptr, &db),
                  PAPYRUSKV_SUCCESS);
        const std::string key = KeyOwnedBy(0, 4, "xgkey");  // node 0
        if (ctx.rank == 0) {
          ASSERT_EQ(PutStr(db, key, "crossgroup"), PAPYRUSKV_SUCCESS);
        }
        ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE),
                  PAPYRUSKV_SUCCESS);

        if (ctx.rank == 3) {  // node 1: different group
          std::string out;
          ASSERT_EQ(GetStr(db, key, &out), PAPYRUSKV_SUCCESS);
          EXPECT_EQ(out, "crossgroup");
          const auto stats = papyrus::core::DbHandle(db)->StatsSnapshot();
          EXPECT_EQ(stats.foreign_sstable_hits, 0u);
          EXPECT_GE(stats.remote_value_transfers, 1u);
        }
        ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE),
                  PAPYRUSKV_SUCCESS);
        ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
      },
      /*ranks_per_node=*/2);
}

TEST_F(Kv, GroupSizeEnvOverridesTopology) {
  // PAPYRUSKV_GROUP_SIZE=1 disables sharing even for co-located ranks
  // (artifact's "Def" configuration in Figure 8).
  setenv("PAPYRUSKV_GROUP_SIZE", "1", 1);
  RunKv(2, tmp_.path(), [](net::RankContext& ctx) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("nog", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    const std::string key = KeyOwnedBy(0, 2, "nogkey");
    if (ctx.rank == 0) {
      ASSERT_EQ(PutStr(db, key, "solo"), PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);
    if (ctx.rank == 1) {
      std::string out;
      ASSERT_EQ(GetStr(db, key, &out), PAPYRUSKV_SUCCESS);
      const auto stats = papyrus::core::DbHandle(db)->StatsSnapshot();
      EXPECT_EQ(stats.foreign_sstable_hits, 0u);
      EXPECT_GE(stats.remote_value_transfers, 1u);
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
  unsetenv("PAPYRUSKV_GROUP_SIZE");
}

TEST_F(Kv, SharedReadSeesDeletionsAndUpdates) {
  // Tombstones and newer versions in the owner's SSTables must be honored
  // by the foreign reader exactly as by the owner.
  RunKv(2, tmp_.path(), [](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.compaction_trigger = 0;  // keep every generation of SSTables
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("sgd", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    const std::string kept = KeyOwnedBy(0, 2, "sgd_keep");
    const std::string gone = KeyOwnedBy(0, 2, "sgd_gone");
    const std::string changed = KeyOwnedBy(0, 2, "sgd_chg");

    if (ctx.rank == 0) {
      ASSERT_EQ(PutStr(db, kept, "v1"), PAPYRUSKV_SUCCESS);
      ASSERT_EQ(PutStr(db, gone, "v1"), PAPYRUSKV_SUCCESS);
      ASSERT_EQ(PutStr(db, changed, "v1"), PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);
    if (ctx.rank == 0) {
      ASSERT_EQ(papyruskv_delete(db, gone.data(), gone.size()),
                PAPYRUSKV_SUCCESS);
      ASSERT_EQ(PutStr(db, changed, "v2"), PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);

    if (ctx.rank == 1) {
      std::string out;
      ASSERT_EQ(GetStr(db, kept, &out), PAPYRUSKV_SUCCESS);
      EXPECT_EQ(out, "v1");
      EXPECT_EQ(GetStr(db, gone, &out), PAPYRUSKV_NOT_FOUND);
      ASSERT_EQ(GetStr(db, changed, &out), PAPYRUSKV_SUCCESS);
      EXPECT_EQ(out, "v2");
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, SharedReadCorrectAfterOwnerCompaction) {
  // After the owner compacts (SSIDs collapse into a merged table), the
  // foreign search must still find everything — including via the
  // authoritative-retry fallback if the advertised tables vanished.
  RunKv(2, tmp_.path(), [](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.memtable_size = 1024;  // force many small flushes
    opt.compaction_trigger = 2;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("sgc", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    std::vector<std::string> keys;
    for (int i = 0; i < 40; ++i) {
      keys.push_back(KeyOwnedBy(0, 2, "sgc" + std::to_string(i) + "_"));
    }
    if (ctx.rank == 0) {
      for (const auto& k : keys) {
        ASSERT_EQ(PutStr(db, k, "val_" + k + std::string(100, 'p')),
                  PAPYRUSKV_SUCCESS);
      }
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);

    if (ctx.rank == 1) {
      for (const auto& k : keys) {
        std::string out;
        ASSERT_EQ(GetStr(db, k, &out), PAPYRUSKV_SUCCESS) << k;
        EXPECT_EQ(out, "val_" + k + std::string(100, 'p'));
      }
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

}  // namespace
}  // namespace papyrus::testutil
