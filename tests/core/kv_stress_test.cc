// Stress and interaction tests: many databases, many ranks, mode changes
// under load, signal fan-in/fan-out, repeated job lifecycles.
#include <gtest/gtest.h>

#include "core/db_shard.h"
#include "common/random.h"
#include "kv_test_util.h"

namespace papyrus::testutil {
namespace {

using Kv = KvTest;

TEST_F(Kv, ManyDatabasesConcurrently) {
  // §2.3: "Multiple databases can be opened in a single application at a
  // time, and they can have different properties."
  constexpr int kDbs = 6;
  RunKv(3, tmp_.path(), [](net::RankContext& ctx) {
    papyruskv_db_t dbs[kDbs];
    for (int d = 0; d < kDbs; ++d) {
      papyruskv_option_t opt;
      ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
      opt.consistency = d % 2 == 0 ? PAPYRUSKV_RELAXED : PAPYRUSKV_SEQUENTIAL;
      opt.memtable_size = d % 3 == 0 ? 2048 : 1 << 20;
      ASSERT_EQ(papyruskv_open(("multi" + std::to_string(d)).c_str(),
                               PAPYRUSKV_CREATE, &opt, &dbs[d]),
                PAPYRUSKV_SUCCESS);
    }
    // Interleaved writes across all databases.
    for (int i = 0; i < 30; ++i) {
      for (int d = 0; d < kDbs; ++d) {
        const std::string k = "r" + std::to_string(ctx.rank) + "_i" +
                              std::to_string(i);
        const std::string v = "db" + std::to_string(d);
        ASSERT_EQ(PutStr(dbs[d], k, v), PAPYRUSKV_SUCCESS);
      }
    }
    for (int d = 0; d < kDbs; ++d) {
      ASSERT_EQ(papyruskv_barrier(dbs[d], PAPYRUSKV_MEMTABLE),
                PAPYRUSKV_SUCCESS);
    }
    // Every database holds exactly its own values.
    for (int d = 0; d < kDbs; ++d) {
      for (int r = 0; r < ctx.size(); ++r) {
        const std::string k = "r" + std::to_string(r) + "_i7";
        std::string out;
        ASSERT_EQ(GetStr(dbs[d], k, &out), PAPYRUSKV_SUCCESS);
        EXPECT_EQ(out, "db" + std::to_string(d));
      }
    }
    for (int d = kDbs - 1; d >= 0; --d) {
      ASSERT_EQ(papyruskv_close(dbs[d]), PAPYRUSKV_SUCCESS);
    }
  });
}

TEST_F(Kv, SixteenRankSmoke) {
  // Oversubscribed rank count (threads ≫ cores): correctness must hold.
  constexpr int kRanks = 16;
  RunKv(
      kRanks, tmp_.path(),
      [](net::RankContext& ctx) {
        papyruskv_db_t db;
        ASSERT_EQ(papyruskv_open("wide", PAPYRUSKV_CREATE, nullptr, &db),
                  PAPYRUSKV_SUCCESS);
        for (int i = 0; i < 8; ++i) {
          ASSERT_EQ(PutStr(db, "w" + std::to_string(ctx.rank * 100 + i),
                           std::to_string(ctx.rank)),
                    PAPYRUSKV_SUCCESS);
        }
        ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE),
                  PAPYRUSKV_SUCCESS);
        // Spot-check a stride of everyone's keys.
        for (int r = 0; r < kRanks; r += 3) {
          std::string out;
          ASSERT_EQ(GetStr(db, "w" + std::to_string(r * 100 + 5), &out),
                    PAPYRUSKV_SUCCESS);
          EXPECT_EQ(out, std::to_string(r));
        }
        ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE),
                  PAPYRUSKV_SUCCESS);
        ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
      },
      /*ranks_per_node=*/4);
}

TEST_F(Kv, ModeSwitchesUnderLoad) {
  // Alternate consistency and protection through several write/read
  // phases; every phase's data must survive every later phase.
  RunKv(4, tmp_.path(), [](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.memtable_size = 4096;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("phases", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    for (int phase = 0; phase < 4; ++phase) {
      ASSERT_EQ(papyruskv_consistency(db, phase % 2 == 0
                                              ? PAPYRUSKV_RELAXED
                                              : PAPYRUSKV_SEQUENTIAL),
                PAPYRUSKV_SUCCESS);
      for (int i = 0; i < 20; ++i) {
        const std::string k = "p" + std::to_string(phase) + "_r" +
                              std::to_string(ctx.rank) + "_" +
                              std::to_string(i);
        ASSERT_EQ(PutStr(db, k, "v" + std::to_string(phase)),
                  PAPYRUSKV_SUCCESS);
      }
      ASSERT_EQ(papyruskv_barrier(db, phase % 2 == 0 ? PAPYRUSKV_MEMTABLE
                                                     : PAPYRUSKV_SSTABLE),
                PAPYRUSKV_SUCCESS);

      // Read-only review of ALL phases so far.
      ASSERT_EQ(papyruskv_protect(db, PAPYRUSKV_RDONLY), PAPYRUSKV_SUCCESS);
      for (int p = 0; p <= phase; ++p) {
        for (int r = 0; r < ctx.size(); ++r) {
          const std::string k = "p" + std::to_string(p) + "_r" +
                                std::to_string(r) + "_3";
          std::string out;
          ASSERT_EQ(GetStr(db, k, &out), PAPYRUSKV_SUCCESS)
              << "phase " << phase << " key " << k;
          EXPECT_EQ(out, "v" + std::to_string(p));
        }
      }
      ASSERT_EQ(papyruskv_protect(db, PAPYRUSKV_RDWR), PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, SignalFanInFanOut) {
  RunKv(5, tmp_.path(), [](net::RankContext& ctx) {
    const int n = ctx.size();
    std::vector<int> others;
    for (int r = 0; r < n; ++r) {
      if (r != ctx.rank) others.push_back(r);
    }
    // Everyone notifies everyone, then waits for everyone: a signal-built
    // all-to-all barrier.
    ASSERT_EQ(papyruskv_signal_notify(3, others.data(),
                                      static_cast<int>(others.size())),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_signal_wait(3, others.data(),
                                    static_cast<int>(others.size())),
              PAPYRUSKV_SUCCESS);
    // Distinct signal numbers do not cross: 5 would hang if matched by 3.
    int self[] = {ctx.rank};
    ASSERT_EQ(papyruskv_signal_notify(5, self, 1), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_signal_wait(5, self, 1), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, RepeatedJobLifecycles) {
  // Init/finalize several times in one process (sequential jobs sharing a
  // repository — the zero-copy chain across "applications").
  for (int job = 0; job < 3; ++job) {
    RunKv(2, tmp_.path(), [&](net::RankContext& ctx) {
      papyruskv_db_t db;
      ASSERT_EQ(papyruskv_open("chain", PAPYRUSKV_CREATE, nullptr, &db),
                PAPYRUSKV_SUCCESS);
      // Each job appends its own generation and sees all previous ones.
      if (ctx.rank == 0) {
        ASSERT_EQ(PutStr(db, "gen" + std::to_string(job), "present"),
                  PAPYRUSKV_SUCCESS);
      }
      ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE),
                PAPYRUSKV_SUCCESS);
      for (int g = 0; g <= job; ++g) {
        std::string out;
        ASSERT_EQ(GetStr(db, "gen" + std::to_string(g), &out),
                  PAPYRUSKV_SUCCESS)
            << "job " << job << " missing generation " << g;
      }
      ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
    });
  }
}

TEST_F(Kv, LargeValuesThroughEveryPath) {
  // 1 MB values through local puts, staged migration, flush, and remote
  // get — byte-exact end to end.
  RunKv(2, tmp_.path(), [](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.memtable_size = 3 << 20;  // forces a flush after ~3 values
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("big", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    const std::string big = papyrus::PatternValue(0xb16, 1 << 20);
    if (ctx.rank == 0) {
      for (int i = 0; i < 6; ++i) {
        ASSERT_EQ(PutStr(db, "big" + std::to_string(i), big),
                  PAPYRUSKV_SUCCESS);
      }
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);
    for (int i = 0; i < 6; ++i) {
      std::string out;
      ASSERT_EQ(GetStr(db, "big" + std::to_string(i), &out),
                PAPYRUSKV_SUCCESS);
      ASSERT_EQ(out.size(), big.size());
      EXPECT_EQ(out, big) << "value " << i << " mangled in transit";
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

}  // namespace
}  // namespace papyrus::testutil
