// Consistency features (§3): relaxed vs sequential modes, fence, barrier
// levels, signals, protection attributes and their cache effects.
#include <gtest/gtest.h>

#include "core/db_shard.h"
#include "kv_test_util.h"

namespace papyrus::testutil {
namespace {

using Kv = KvTest;

// Finds a key owned by `owner` under the built-in hash for `nranks`.
std::string KeyOwnedBy(int owner, int nranks, const std::string& prefix) {
  for (int i = 0;; ++i) {
    const std::string k = prefix + std::to_string(i);
    if (static_cast<int>(papyrus::BuiltinKeyHash(k.data(), k.size()) %
                         static_cast<uint64_t>(nranks)) == owner) {
      return k;
    }
  }
}

TEST_F(Kv, SequentialModeIsImmediatelyVisible) {
  // §3.1: in sequential mode every remote put is a synchronization point —
  // once rank A's put returns, rank B (the owner) must see the value with
  // no fence in between.  Signals order the two ranks.
  RunKv(2, tmp_.path(), [](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("seq", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);

    const std::string key = KeyOwnedBy(1, 2, "seqkey");
    int peer0[] = {0};
    int peer1[] = {1};
    if (ctx.rank == 0) {
      ASSERT_EQ(PutStr(db, key, "from_rank0"), PAPYRUSKV_SUCCESS);
      ASSERT_EQ(papyruskv_signal_notify(7, peer1, 1), PAPYRUSKV_SUCCESS);
    } else {
      ASSERT_EQ(papyruskv_signal_wait(7, peer0, 1), PAPYRUSKV_SUCCESS);
      std::string out;
      ASSERT_EQ(GetStr(db, key, &out), PAPYRUSKV_SUCCESS);
      EXPECT_EQ(out, "from_rank0");
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, RelaxedModeStagesUntilFence) {
  // §3.1: in relaxed mode a remote put stays in the writer's remote
  // MemTable; the owner sees it only after the writer's fence.
  RunKv(2, tmp_.path(), [](net::RankContext& ctx) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("rel", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);

    const std::string key = KeyOwnedBy(1, 2, "relkey");
    int peer0[] = {0};
    int peer1[] = {1};
    if (ctx.rank == 0) {
      ASSERT_EQ(PutStr(db, key, "staged"), PAPYRUSKV_SUCCESS);
      // Writer still sees its own staged value (read-your-writes via the
      // remote MemTable).
      std::string own;
      ASSERT_EQ(GetStr(db, key, &own), PAPYRUSKV_SUCCESS);
      EXPECT_EQ(own, "staged");
      ASSERT_EQ(papyruskv_signal_notify(1, peer1, 1), PAPYRUSKV_SUCCESS);
      // Phase 2: owner checked; now fence and signal again.
      ASSERT_EQ(papyruskv_signal_wait(2, peer1, 1), PAPYRUSKV_SUCCESS);
      ASSERT_EQ(papyruskv_fence(db), PAPYRUSKV_SUCCESS);
      ASSERT_EQ(papyruskv_signal_notify(3, peer1, 1), PAPYRUSKV_SUCCESS);
    } else {
      ASSERT_EQ(papyruskv_signal_wait(1, peer0, 1), PAPYRUSKV_SUCCESS);
      // Not fenced yet: the owner must not see the staged pair.
      std::string out;
      EXPECT_EQ(GetStr(db, key, &out), PAPYRUSKV_NOT_FOUND)
          << "staged put leaked before fence";
      ASSERT_EQ(papyruskv_signal_notify(2, peer0, 1), PAPYRUSKV_SUCCESS);
      ASSERT_EQ(papyruskv_signal_wait(3, peer0, 1), PAPYRUSKV_SUCCESS);
      ASSERT_EQ(GetStr(db, key, &out), PAPYRUSKV_SUCCESS);
      EXPECT_EQ(out, "staged");
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, BarrierMakesAllWritesVisibleEverywhere) {
  constexpr int kRanks = 4;
  RunKv(kRanks, tmp_.path(), [](net::RankContext& ctx) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("bar", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    for (int i = 0; i < 25; ++i) {
      ASSERT_EQ(PutStr(db, "w" + std::to_string(ctx.rank * 100 + i), "v"),
                PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);
    for (int r = 0; r < kRanks; ++r) {
      for (int i = 0; i < 25; ++i) {
        std::string out;
        ASSERT_EQ(GetStr(db, "w" + std::to_string(r * 100 + i), &out),
                  PAPYRUSKV_SUCCESS);
      }
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, BarrierSstableLevelFlushesEverything) {
  RunKv(3, tmp_.path(), [](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("barsst", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    for (int i = 0; i < 30; ++i) {
      ASSERT_EQ(PutStr(db, "sk" + std::to_string(i), "sv"),
                PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);
    auto shard = papyrus::core::DbHandle(db);
    ASSERT_NE(shard, nullptr);
    // §3.1: with PAPYRUSKV_SSTABLE, the whole db is flushed to SSTables —
    // nothing may remain in the mutable MemTables.
    EXPECT_EQ(shard->MemTableBytes(), 0u);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, DynamicConsistencySwitch) {
  RunKv(2, tmp_.path(), [](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("dyn", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    auto shard = papyrus::core::DbHandle(db);
    EXPECT_EQ(shard->consistency(), PAPYRUSKV_RELAXED);
    ASSERT_EQ(PutStr(db, "pre", "1"), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_consistency(db, PAPYRUSKV_SEQUENTIAL),
              PAPYRUSKV_SUCCESS);
    EXPECT_EQ(shard->consistency(), PAPYRUSKV_SEQUENTIAL);
    ASSERT_EQ(PutStr(db, "post", "2"), PAPYRUSKV_SUCCESS);
    std::string out;
    // The switch fences: the pre-switch staged put must be visible.
    ASSERT_EQ(GetStr(db, "pre", &out), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(GetStr(db, "post", &out), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(papyruskv_consistency(db, 99), PAPYRUSKV_INVALID_ARG);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, ProtectionRejectsMismatchedOps) {
  RunKv(2, tmp_.path(), [](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("prot", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(PutStr(db, "k", "v"), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);

    ASSERT_EQ(papyruskv_protect(db, PAPYRUSKV_RDONLY), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(PutStr(db, "k2", "v"), PAPYRUSKV_PROTECTED);
    EXPECT_EQ(papyruskv_delete(db, "k", 1), PAPYRUSKV_PROTECTED);
    std::string out;
    EXPECT_EQ(GetStr(db, "k", &out), PAPYRUSKV_SUCCESS);

    ASSERT_EQ(papyruskv_protect(db, PAPYRUSKV_WRONLY), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(GetStr(db, "k", &out), PAPYRUSKV_PROTECTED);
    EXPECT_EQ(PutStr(db, "k2", "v"), PAPYRUSKV_SUCCESS);

    ASSERT_EQ(papyruskv_protect(db, PAPYRUSKV_RDWR), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(GetStr(db, "k2", &out), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(papyruskv_protect(db, 1234), PAPYRUSKV_INVALID_ARG);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, RemoteCacheOnlyUnderReadOnly) {
  // §3.2: RDONLY enables the remote cache; repeated remote gets hit it.
  RunKv(2, tmp_.path(), [](net::RankContext& ctx) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("rcache", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    const std::string key = KeyOwnedBy(0, 2, "rckey");
    if (ctx.rank == 0) {
      ASSERT_EQ(PutStr(db, key, "owned_by_0"), PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_protect(db, PAPYRUSKV_RDONLY), PAPYRUSKV_SUCCESS);

    if (ctx.rank == 1) {
      auto shard = papyrus::core::DbHandle(db);
      std::string out;
      for (int i = 0; i < 5; ++i) {
        ASSERT_EQ(GetStr(db, key, &out), PAPYRUSKV_SUCCESS);
        EXPECT_EQ(out, "owned_by_0");
      }
      const auto stats = shard->StatsSnapshot();
      EXPECT_GE(stats.cache_remote_hits, 4u)
          << "remote cache not serving repeated gets";
    }
    ASSERT_EQ(papyruskv_protect(db, PAPYRUSKV_RDWR), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, SignalsPairwiseOrdering) {
  RunKv(3, tmp_.path(), [](net::RankContext& ctx) {
    // Ring: rank r notifies r+1, waits for r-1 (rank 0 starts).
    const int next = (ctx.rank + 1) % 3;
    const int prev = (ctx.rank + 2) % 3;
    int next_arr[] = {next};
    int prev_arr[] = {prev};
    if (ctx.rank == 0) {
      ASSERT_EQ(papyruskv_signal_notify(5, next_arr, 1), PAPYRUSKV_SUCCESS);
      ASSERT_EQ(papyruskv_signal_wait(5, prev_arr, 1), PAPYRUSKV_SUCCESS);
    } else {
      ASSERT_EQ(papyruskv_signal_wait(5, prev_arr, 1), PAPYRUSKV_SUCCESS);
      ASSERT_EQ(papyruskv_signal_notify(5, next_arr, 1), PAPYRUSKV_SUCCESS);
    }
    // Bad arguments.
    int bad[] = {99};
    EXPECT_EQ(papyruskv_signal_notify(5, bad, 1), PAPYRUSKV_INVALID_ARG);
    EXPECT_EQ(papyruskv_signal_wait(-1, next_arr, 1), PAPYRUSKV_INVALID_ARG);
  });
}

TEST_F(Kv, EnvConsistencyOverride) {
  setenv("PAPYRUSKV_CONSISTENCY", "1", 1);  // artifact: 1 = sequential
  RunKv(2, tmp_.path(), [](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("envc", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    EXPECT_EQ(papyrus::core::DbHandle(db)->consistency(),
              PAPYRUSKV_SEQUENTIAL);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
  unsetenv("PAPYRUSKV_CONSISTENCY");
}

TEST_F(Kv, DeleteOfRemoteKeyPropagates) {
  RunKv(2, tmp_.path(), [](net::RankContext& ctx) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("rdel", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    const std::string key = KeyOwnedBy(1, 2, "delkey");
    if (ctx.rank == 0) {
      ASSERT_EQ(PutStr(db, key, "doomed"), PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);
    if (ctx.rank == 0) {
      ASSERT_EQ(papyruskv_delete(db, key.data(), key.size()),
                PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);
    std::string out;
    EXPECT_EQ(GetStr(db, key, &out), PAPYRUSKV_NOT_FOUND) << "rank "
                                                          << ctx.rank;
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

}  // namespace
}  // namespace papyrus::testutil
