// Property-based tests: randomized multi-rank operation sequences checked
// against a deterministic reference model, across a sweep of configurations
// (consistency mode, MemTable size, compaction trigger, search mode).
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/db_shard.h"
#include "kv_test_util.h"

namespace papyrus::testutil {
namespace {

struct FuzzConfig {
  uint64_t seed;
  int nranks;
  int consistency;
  size_t memtable_bytes;
  uint64_t compaction_trigger;
  int bin_search;
  std::string label;
};

class KvFuzzTest : public KvTest,
                   public ::testing::WithParamInterface<FuzzConfig> {};

// Every rank applies a deterministic random op stream (same streams on all
// ranks' reference models, since each rank derives all ranks' streams from
// the shared seed).  After a barrier, every rank verifies the union.
TEST_P(KvFuzzTest, RandomOpsMatchReferenceModel) {
  const FuzzConfig cfg = GetParam();
  constexpr int kOpsPerRank = 150;
  constexpr int kKeySpace = 80;

  RunKv(cfg.nranks, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.consistency = cfg.consistency;
    opt.memtable_size = cfg.memtable_bytes;
    opt.compaction_trigger = cfg.compaction_trigger;
    opt.bin_search = cfg.bin_search;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("fuzz", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);

    // Phase structure: each round every rank mutates a *disjoint* slice of
    // the key space (avoids cross-rank write races, which relaxed mode
    // leaves unordered), then all barrier and verify everything.
    std::map<std::string, std::string> ref;  // the union, same on all ranks
    for (int round = 0; round < 3; ++round) {
      // Apply my own ops.
      for (int r = 0; r < ctx.size(); ++r) {
        Rng rng(cfg.seed * 1000003 +
                static_cast<uint64_t>(round) * 101 + static_cast<uint64_t>(r));
        for (int i = 0; i < kOpsPerRank; ++i) {
          // Rank r owns writes to keys ≡ r (mod nranks) this round.
          const uint64_t kid =
              rng.Uniform(kKeySpace / cfg.nranks) *
                  static_cast<uint64_t>(cfg.nranks) +
              static_cast<uint64_t>(r);
          const std::string key = "fz" + std::to_string(kid);
          const bool is_delete = rng.Bernoulli(0.25);
          const std::string value =
              PatternValue(rng.Next(), 20 + rng.Uniform(200));
          if (r == ctx.rank) {
            if (is_delete) {
              ASSERT_EQ(papyruskv_delete(db, key.data(), key.size()),
                        PAPYRUSKV_SUCCESS);
            } else {
              ASSERT_EQ(PutStr(db, key, value), PAPYRUSKV_SUCCESS);
            }
          }
          // Maintain the shared reference model for every rank's stream.
          if (is_delete) {
            ref.erase(key);
          } else {
            ref[key] = value;
          }
        }
      }

      const int level =
          round % 2 == 0 ? PAPYRUSKV_MEMTABLE : PAPYRUSKV_SSTABLE;
      ASSERT_EQ(papyruskv_barrier(db, level), PAPYRUSKV_SUCCESS);

      // Verify the full key space from this rank.
      for (int kid = 0; kid < kKeySpace; ++kid) {
        const std::string key = "fz" + std::to_string(kid);
        std::string out;
        const int rc = GetStr(db, key, &out);
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(rc, PAPYRUSKV_NOT_FOUND)
              << cfg.label << " round " << round << " key " << key;
        } else {
          ASSERT_EQ(rc, PAPYRUSKV_SUCCESS)
              << cfg.label << " round " << round << " key " << key;
          EXPECT_EQ(out, it->second) << cfg.label << " key " << key;
        }
      }
      ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE),
                PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, KvFuzzTest,
    ::testing::Values(
        FuzzConfig{1, 1, PAPYRUSKV_RELAXED, 1u << 20, 4, 1, "single_rank"},
        FuzzConfig{2, 4, PAPYRUSKV_RELAXED, 1u << 20, 4, 1, "relaxed4"},
        FuzzConfig{3, 4, PAPYRUSKV_SEQUENTIAL, 1u << 20, 4, 1, "seq4"},
        FuzzConfig{4, 3, PAPYRUSKV_RELAXED, 2048, 4, 1, "tiny_memtable"},
        FuzzConfig{5, 3, PAPYRUSKV_RELAXED, 2048, 2, 1, "heavy_compaction"},
        FuzzConfig{6, 3, PAPYRUSKV_RELAXED, 2048, 0, 1, "no_compaction"},
        FuzzConfig{7, 3, PAPYRUSKV_SEQUENTIAL, 2048, 3, 0, "linear_search"},
        FuzzConfig{8, 2, PAPYRUSKV_SEQUENTIAL, 4096, 2, 1, "seq_small"}),
    [](const auto& info) { return info.param.label; });

// The LSM shadowing property: a key overwritten N times and deleted M
// times, across flush boundaries, always resolves to its latest state.
TEST_F(KvTest, OverwriteStormAcrossFlushes) {
  RunKv(2, tmp_.path(), [](net::RankContext& ctx) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.memtable_size = 512;  // flush nearly every write
    opt.compaction_trigger = 3;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("storm", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    const std::string key = "contested_r" + std::to_string(ctx.rank);
    for (int i = 0; i < 100; ++i) {
      if (i % 10 == 9) {
        ASSERT_EQ(papyruskv_delete(db, key.data(), key.size()),
                  PAPYRUSKV_SUCCESS);
      } else {
        ASSERT_EQ(PutStr(db, key, "gen" + std::to_string(i)),
                  PAPYRUSKV_SUCCESS);
      }
      std::string out;
      const int rc = GetStr(db, key, &out);
      if (i % 10 == 9) {
        ASSERT_EQ(rc, PAPYRUSKV_NOT_FOUND) << i;
      } else {
        ASSERT_EQ(rc, PAPYRUSKV_SUCCESS) << i;
        ASSERT_EQ(out, "gen" + std::to_string(i)) << i;
      }
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

}  // namespace
}  // namespace papyrus::testutil
