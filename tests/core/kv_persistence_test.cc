// Persistence (§4): asynchronous checkpoint/restart, restart with
// redistribution, destroy, events.
#include <gtest/gtest.h>

#include "core/db_shard.h"
#include "kv_test_util.h"

namespace papyrus::testutil {
namespace {

using Kv = KvTest;

TEST_F(Kv, CheckpointThenRestartSameRanks) {
  TempDir ckpt{"papyruskv_ckpt"};
  constexpr int kRanks = 3;
  constexpr int kKeys = 60;

  // Job 1: populate + checkpoint.
  RunKv(kRanks, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("ck", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    for (int i = ctx.rank; i < kKeys; i += ctx.size()) {
      ASSERT_EQ(PutStr(db, "ckkey" + std::to_string(i),
                       "ckval" + std::to_string(i)),
                PAPYRUSKV_SUCCESS);
    }
    papyruskv_event_t ev;
    ASSERT_EQ(papyruskv_checkpoint(db, ckpt.path().c_str(), &ev),
              PAPYRUSKV_SUCCESS);
    // The application may keep updating while the transfer runs (§4.2).
    ASSERT_EQ(PutStr(db, "after_ckpt", "not_in_snapshot"),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_wait(db, ev), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_wait(db, ev), PAPYRUSKV_INVALID_EVENT);  // consumed
    ASSERT_EQ(papyruskv_destroy(db, nullptr), PAPYRUSKV_SUCCESS);
  });

  // Job 2 (fresh repository): restart from the snapshot.
  TempDir repo2{"papyruskv_repo2"};
  RunKv(kRanks, repo2.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    papyruskv_event_t ev;
    ASSERT_EQ(papyruskv_restart(ckpt.path().c_str(), "ck", PAPYRUSKV_RDWR,
                                nullptr, &db, &ev),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_wait(db, ev), PAPYRUSKV_SUCCESS);
    for (int i = 0; i < kKeys; ++i) {
      std::string out;
      ASSERT_EQ(GetStr(db, "ckkey" + std::to_string(i), &out),
                PAPYRUSKV_SUCCESS)
          << i;
      EXPECT_EQ(out, "ckval" + std::to_string(i));
    }
    // Post-checkpoint writes must not be in the snapshot.
    std::string out;
    EXPECT_EQ(GetStr(db, "after_ckpt", &out), PAPYRUSKV_NOT_FOUND);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, RestartWithDifferentRankCountRedistributes) {
  TempDir ckpt{"papyruskv_ckpt_rd"};
  constexpr int kKeys = 50;

  RunKv(4, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("rd", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    for (int i = ctx.rank; i < kKeys; i += ctx.size()) {
      ASSERT_EQ(PutStr(db, "rdkey" + std::to_string(i),
                       "rdval" + std::to_string(i)),
                PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_checkpoint(db, ckpt.path().c_str(), nullptr),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });

  // Restart on 3 ranks: the hash partition changes, so the runtime must
  // redistribute (Fig. 5c).
  TempDir repo2{"papyruskv_repo_rd2"};
  RunKv(3, repo2.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_restart(ckpt.path().c_str(), "rd", PAPYRUSKV_RDWR,
                                nullptr, &db, nullptr),
              PAPYRUSKV_SUCCESS);
    for (int i = 0; i < kKeys; ++i) {
      std::string out;
      ASSERT_EQ(GetStr(db, "rdkey" + std::to_string(i), &out),
                PAPYRUSKV_SUCCESS)
          << i;
      EXPECT_EQ(out, "rdval" + std::to_string(i));
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, ForcedRedistributionMatchesPlainRestart) {
  // The artifact's PAPYRUSKV_FORCE_REDISTRIBUTE=1 case: same rank count,
  // redistribution exercised anyway (Figure 10 "Restart-RD").
  TempDir ckpt{"papyruskv_ckpt_frd"};
  constexpr int kRanks = 2;

  RunKv(kRanks, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("frd", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    if (ctx.rank == 0) {
      for (int i = 0; i < 30; ++i) {
        ASSERT_EQ(PutStr(db, "fk" + std::to_string(i), "fv"),
                  PAPYRUSKV_SUCCESS);
      }
      // Include a deletion so tombstone replay is covered.
      ASSERT_EQ(PutStr(db, "doomed", "x"), PAPYRUSKV_SUCCESS);
      ASSERT_EQ(papyruskv_delete(db, "doomed", 6), PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_checkpoint(db, ckpt.path().c_str(), nullptr),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });

  setenv("PAPYRUSKV_FORCE_REDISTRIBUTE", "1", 1);
  TempDir repo2{"papyruskv_repo_frd2"};
  RunKv(kRanks, repo2.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    papyruskv_event_t ev;
    ASSERT_EQ(papyruskv_restart(ckpt.path().c_str(), "frd", PAPYRUSKV_RDWR,
                                nullptr, &db, &ev),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_wait(db, ev), PAPYRUSKV_SUCCESS);
    for (int i = 0; i < 30; ++i) {
      std::string out;
      ASSERT_EQ(GetStr(db, "fk" + std::to_string(i), &out),
                PAPYRUSKV_SUCCESS);
    }
    std::string out;
    EXPECT_EQ(GetStr(db, "doomed", &out), PAPYRUSKV_NOT_FOUND)
        << "tombstone lost in redistribution";
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
  unsetenv("PAPYRUSKV_FORCE_REDISTRIBUTE");
}

TEST_F(Kv, DestroyRemovesDataFromNvm) {
  RunKv(2, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("gone", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(PutStr(db, "k", "v"), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);
    const std::string dir = papyrus::core::DbHandle(db)->dir();
    EXPECT_TRUE(sim::Storage::FileExists(dir));

    papyruskv_event_t ev;
    ASSERT_EQ(papyruskv_destroy(db, &ev), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_wait(db, ev), PAPYRUSKV_SUCCESS);
    EXPECT_FALSE(sim::Storage::FileExists(dir));
    // Descriptor is dead.
    EXPECT_EQ(PutStr(db, "k", "v"), PAPYRUSKV_INVALID_DB);
  });
}

TEST_F(Kv, RestartFromMissingSnapshotFails) {
  RunKv(1, tmp_.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    EXPECT_EQ(papyruskv_restart("/nonexistent/path", "nodb", PAPYRUSKV_RDWR,
                                nullptr, &db, nullptr),
              PAPYRUSKV_IO_ERROR);
  });
}

TEST_F(Kv, CheckpointOfFlushedDataSurvivesMoreUpdates) {
  // Snapshot isolation: updates after the checkpoint barrier never leak
  // into the snapshot even while the copy is in flight.
  TempDir ckpt{"papyruskv_ckpt_iso"};
  RunKv(2, tmp_.path(), [&](net::RankContext& ctx) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("iso", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    if (ctx.rank == 0) {
      ASSERT_EQ(PutStr(db, "stable", "before"), PAPYRUSKV_SUCCESS);
    }
    papyruskv_event_t ev;
    ASSERT_EQ(papyruskv_checkpoint(db, ckpt.path().c_str(), &ev),
              PAPYRUSKV_SUCCESS);
    if (ctx.rank == 0) {
      ASSERT_EQ(PutStr(db, "stable", "after"), PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_wait(db, ev), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });

  TempDir repo2{"papyruskv_repo_iso2"};
  RunKv(2, repo2.path(), [&](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_restart(ckpt.path().c_str(), "iso", PAPYRUSKV_RDWR,
                                nullptr, &db, nullptr),
              PAPYRUSKV_SUCCESS);
    std::string out;
    ASSERT_EQ(GetStr(db, "stable", &out), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(out, "before");
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

}  // namespace
}  // namespace papyrus::testutil
