// Basic API behavior (Table 1 (a)-(b)): init/finalize, open/close,
// put/get/delete, memory pool, descriptor semantics, env handling.
#include <gtest/gtest.h>

#include "core/db_shard.h"
#include "kv_test_util.h"

namespace papyrus::testutil {
namespace {

using Kv = KvTest;

TEST_F(Kv, InitRequiresRepository) {
  net::RunRanks(1, [](net::RankContext&) {
    EXPECT_EQ(papyruskv_init(nullptr, nullptr, ""), PAPYRUSKV_INVALID_ARG);
  });
}

TEST_F(Kv, InitOutsideRankFails) {
  EXPECT_EQ(papyruskv_init(nullptr, nullptr, "/tmp/x"), PAPYRUSKV_ERR);
}

TEST_F(Kv, RepositoryFromEnv) {
  setenv("PAPYRUSKV_REPOSITORY", tmp_.path().c_str(), 1);
  net::RunRanks(1, [](net::RankContext&) {
    ASSERT_EQ(papyruskv_init(nullptr, nullptr, nullptr), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_finalize(), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, CallsBeforeInitReturnClosed) {
  net::RunRanks(1, [](net::RankContext&) {
    papyruskv_db_t db;
    EXPECT_EQ(papyruskv_open("d", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_CLOSED);
    EXPECT_EQ(papyruskv_finalize(), PAPYRUSKV_CLOSED);
  });
}

TEST_F(Kv, PutGetDeleteSingleRank) {
  RunKv(1, tmp_.path(), [](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("basic", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR,
                             nullptr, &db),
              PAPYRUSKV_SUCCESS);

    ASSERT_EQ(PutStr(db, "alpha", "one"), PAPYRUSKV_SUCCESS);
    std::string out;
    ASSERT_EQ(GetStr(db, "alpha", &out), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(out, "one");

    // Update in place.
    ASSERT_EQ(PutStr(db, "alpha", "two"), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(GetStr(db, "alpha", &out), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(out, "two");

    // Delete → NOT_FOUND.
    ASSERT_EQ(papyruskv_delete(db, "alpha", 5), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(GetStr(db, "alpha", &out), PAPYRUSKV_NOT_FOUND);

    // Absent key.
    EXPECT_EQ(GetStr(db, "never", &out), PAPYRUSKV_NOT_FOUND);

    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, MultiRankPutGetAllToAll) {
  constexpr int kRanks = 4;
  constexpr int kKeys = 40;
  RunKv(kRanks, tmp_.path(), [](net::RankContext& ctx) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("a2a", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    // Every rank writes its own key set (keys hash to arbitrary owners).
    for (int i = 0; i < kKeys; ++i) {
      const std::string k =
          "r" + std::to_string(ctx.rank) + "_k" + std::to_string(i);
      ASSERT_EQ(PutStr(db, k, "val_" + k), PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);
    // Every rank reads every rank's keys.
    for (int r = 0; r < kRanks; ++r) {
      for (int i = 0; i < kKeys; ++i) {
        const std::string k =
            "r" + std::to_string(r) + "_k" + std::to_string(i);
        std::string out;
        ASSERT_EQ(GetStr(db, k, &out), PAPYRUSKV_SUCCESS) << k;
        EXPECT_EQ(out, "val_" + k);
      }
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, ValuesSurviveFlushToSSTables) {
  // Tiny MemTable forces flushing through the whole LSM path.
  RunKv(2, tmp_.path(), [](net::RankContext&) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    opt.memtable_size = 2048;
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("flushy", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(PutStr(db, "key" + std::to_string(i),
                       "value" + std::to_string(i) + std::string(64, 'x')),
                PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);
    auto shard = papyrus::core::DbHandle(db);
    ASSERT_NE(shard, nullptr);
    EXPECT_GT(shard->manifest().TableCount(), 0u)
        << "puts never reached SSTables";
    for (int i = 0; i < 200; ++i) {
      std::string out;
      ASSERT_EQ(GetStr(db, "key" + std::to_string(i), &out),
                PAPYRUSKV_SUCCESS)
          << i;
      EXPECT_EQ(out, "value" + std::to_string(i) + std::string(64, 'x'));
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, CallerProvidedBufferAndPool) {
  RunKv(1, tmp_.path(), [](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("buf", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(PutStr(db, "k", "0123456789"), PAPYRUSKV_SUCCESS);

    // Pool allocation path.
    char* allocated = nullptr;
    size_t len = 0;
    ASSERT_EQ(papyruskv_get(db, "k", 1, &allocated, &len), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(std::string(allocated, len), "0123456789");
    EXPECT_EQ(papyruskv_free(db, allocated), PAPYRUSKV_SUCCESS);
    // Double free is rejected.
    EXPECT_EQ(papyruskv_free(db, allocated), PAPYRUSKV_INVALID_ARG);

    // Caller buffer path.
    char buf[16];
    char* bufp = buf;
    len = sizeof(buf);
    ASSERT_EQ(papyruskv_get(db, "k", 1, &bufp, &len), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(len, 10u);
    EXPECT_EQ(std::string(buf, 10), "0123456789");

    // Caller buffer too small.
    char tiny[4];
    char* tinyp = tiny;
    len = sizeof(tiny);
    EXPECT_EQ(papyruskv_get(db, "k", 1, &tinyp, &len), PAPYRUSKV_INVALID_ARG);

    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, InvalidArgumentsRejected) {
  RunKv(1, tmp_.path(), [](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("args", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    EXPECT_EQ(papyruskv_put(db, nullptr, 3, "v", 1), PAPYRUSKV_INVALID_ARG);
    EXPECT_EQ(papyruskv_put(db, "k", 0, "v", 1), PAPYRUSKV_INVALID_ARG);
    EXPECT_EQ(papyruskv_put(99, "k", 1, "v", 1), PAPYRUSKV_INVALID_DB);
    char* v = nullptr;
    size_t n = 0;
    EXPECT_EQ(papyruskv_get(db, "k", 1, nullptr, &n), PAPYRUSKV_INVALID_ARG);
    EXPECT_EQ(papyruskv_get(99, "k", 1, &v, &n), PAPYRUSKV_INVALID_DB);
    EXPECT_EQ(papyruskv_delete(99, "k", 1), PAPYRUSKV_INVALID_DB);
    EXPECT_EQ(papyruskv_barrier(db, 42), PAPYRUSKV_INVALID_ARG);
    EXPECT_EQ(papyruskv_close(99), PAPYRUSKV_INVALID_DB);
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, DescriptorsIdenticalAcrossRanks) {
  RunKv(3, tmp_.path(), [](net::RankContext& ctx) {
    papyruskv_db_t db1, db2;
    ASSERT_EQ(papyruskv_open("one", PAPYRUSKV_CREATE, nullptr, &db1),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_open("two", PAPYRUSKV_CREATE, nullptr, &db2),
              PAPYRUSKV_SUCCESS);
    // §2.3: every rank holds the identical descriptor.
    std::vector<std::string> all;
    const std::string mine =
        std::to_string(db1) + "," + std::to_string(db2);
    ctx.comm.Allgather(mine, &all);
    for (const auto& s : all) EXPECT_EQ(s, mine);
    ASSERT_EQ(papyruskv_close(db2), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_close(db1), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, TwoDatabasesAreIndependent) {
  RunKv(2, tmp_.path(), [](net::RankContext&) {
    papyruskv_db_t a, b;
    ASSERT_EQ(papyruskv_open("dba", PAPYRUSKV_CREATE, nullptr, &a),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_open("dbb", PAPYRUSKV_CREATE, nullptr, &b),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(PutStr(a, "k", "in_a"), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_barrier(a, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_barrier(b, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);
    std::string out;
    EXPECT_EQ(GetStr(b, "k", &out), PAPYRUSKV_NOT_FOUND);
    EXPECT_EQ(GetStr(a, "k", &out), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_close(a), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_close(b), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, ZeroCopyReopenWithinJob) {
  // §4.1 / Fig. 5(a): SSTables persist across close/open in one job; the
  // second "application" recomposes the database with no data movement.
  RunKv(2, tmp_.path(), [](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("wf", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    for (int i = 0; i < 50; ++i) {
      ASSERT_EQ(PutStr(db, "wfkey" + std::to_string(i), "wfval"),
                PAPYRUSKV_SUCCESS);
    }
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);  // flushes all

    papyruskv_db_t db2;
    ASSERT_EQ(papyruskv_open("wf", PAPYRUSKV_RDWR, nullptr, &db2),
              PAPYRUSKV_SUCCESS);
    for (int i = 0; i < 50; ++i) {
      std::string out;
      ASSERT_EQ(GetStr(db2, "wfkey" + std::to_string(i), &out),
                PAPYRUSKV_SUCCESS)
          << i;
      EXPECT_EQ(out, "wfval");
    }
    ASSERT_EQ(papyruskv_close(db2), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, CustomHashControlsPlacement) {
  // §2.4 load balancing: an application hash dictates owner affinity.
  RunKv(4, tmp_.path(), [](net::RankContext&) {
    papyruskv_option_t opt;
    ASSERT_EQ(papyruskv_option_init(&opt), PAPYRUSKV_SUCCESS);
    // All keys to rank 2.
    opt.hash = +[](const char*, size_t) -> uint64_t { return 2; };
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("hashy", PAPYRUSKV_CREATE, &opt, &db),
              PAPYRUSKV_SUCCESS);
    int owner = -1;
    ASSERT_EQ(papyruskv_hash(db, "anything", 8, &owner), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(owner, 2);

    ASSERT_EQ(PutStr(db, "k", "v"), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);
    std::string out;
    ASSERT_EQ(GetStr(db, "k", &out), PAPYRUSKV_SUCCESS);
    EXPECT_EQ(out, "v");
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

TEST_F(Kv, EmptyValueRoundTrips) {
  RunKv(2, tmp_.path(), [](net::RankContext&) {
    papyruskv_db_t db;
    ASSERT_EQ(papyruskv_open("empty", PAPYRUSKV_CREATE, nullptr, &db),
              PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_put(db, "nil", 3, nullptr, 0), PAPYRUSKV_SUCCESS);
    ASSERT_EQ(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);
    std::string out = "sentinel";
    ASSERT_EQ(GetStr(db, "nil", &out), PAPYRUSKV_SUCCESS);
    EXPECT_TRUE(out.empty());
    ASSERT_EQ(papyruskv_close(db), PAPYRUSKV_SUCCESS);
  });
}

}  // namespace
}  // namespace papyrus::testutil
