// Tests for the C++ RAII wrapper (core/kv.hpp).
#include "core/kv.hpp"

#include <gtest/gtest.h>

#include "kv_test_util.h"

namespace papyrus::testutil {
namespace {

using Kv = KvTest;
namespace pkv = papyrus::kv;

TEST_F(Kv, WrapperPutGetDelete) {
  net::RunRanks(2, [&](net::RankContext& ctx) {
    pkv::Runtime rt(tmp_.path());
    auto db = pkv::Database::Open("wrap");
    if (ctx.rank == 0) db.Put("alpha", "one");
    db.Barrier();
    auto v = db.Get("alpha");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "one");
    EXPECT_TRUE(db.Contains("alpha"));
    // A barrier separates the read phase from the delete: under relaxed
    // consistency a rank must not mutate shared keys while others may
    // still be reading them (the paper's synchronization-point contract).
    db.Barrier();
    if (ctx.rank == 0) db.Delete("alpha");
    db.Barrier();
    EXPECT_FALSE(db.Get("alpha").has_value());
    EXPECT_FALSE(db.Contains("alpha"));
    db.Close();
  });
}

TEST_F(Kv, WrapperRaiiClosesOnScopeExit) {
  net::RunRanks(2, [&](net::RankContext&) {
    pkv::Runtime rt(tmp_.path());
    {
      auto db = pkv::Database::Open("scoped");
      db.Put("k", "v");
    }  // destructor closes (collective on both ranks)
    // Zero-copy reopen proves the close flushed to SSTables.
    auto db = pkv::Database::Open("scoped", PAPYRUSKV_RDWR);
    auto v = db.Get("k");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "v");
  });
}

TEST_F(Kv, WrapperMoveSemantics) {
  net::RunRanks(1, [&](net::RankContext&) {
    pkv::Runtime rt(tmp_.path());
    auto db = pkv::Database::Open("mv");
    db.Put("k", "v");
    pkv::Database moved = std::move(db);
    EXPECT_TRUE(moved.Get("k").has_value());
    moved.Close();
  });
}

TEST_F(Kv, WrapperThrowsTypedErrors) {
  net::RunRanks(1, [&](net::RankContext&) {
    pkv::Runtime rt(tmp_.path());
    auto db = pkv::Database::Open("err");
    db.Protect(PAPYRUSKV_RDONLY);
    try {
      db.Put("k", "v");
      FAIL() << "expected Error";
    } catch (const pkv::Error& e) {
      EXPECT_EQ(e.code(), PAPYRUSKV_PROTECTED);
      EXPECT_NE(std::string(e.what()).find("PAPYRUSKV_PROTECTED"),
                std::string::npos);
    }
    db.Protect(PAPYRUSKV_RDWR);
    db.Close();
  });
}

TEST_F(Kv, WrapperCheckpointRestartRoundTrip) {
  TempDir snap{"wrapper_snap"};
  net::RunRanks(2, [&](net::RankContext& ctx) {
    pkv::Runtime rt(tmp_.path());
    {
      auto db = pkv::Database::Open("cw");
      if (ctx.rank == 0) db.Put("persisted", "yes");
      pkv::Event ev = db.Checkpoint(snap.path());
      ev.Wait();
      pkv::Event destroy = db.Destroy();
      destroy.Wait();
    }
    {
      auto [db, ev] = pkv::Database::Restart(snap.path(), "cw");
      ev.Wait();
      auto v = db.Get("persisted");
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, "yes");
      db.Destroy().Wait();
    }
  });
}

TEST_F(Kv, WrapperOwnerOf) {
  net::RunRanks(4, [&](net::RankContext&) {
    pkv::Runtime rt(tmp_.path());
    auto db = pkv::Database::Open("own");
    const int owner = db.OwnerOf("some-key");
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, 4);
    db.Close();
  });
}

TEST_F(Kv, WrapperUnwaitedEventDrainsInDtor) {
  TempDir snap{"wrapper_snap2"};
  net::RunRanks(2, [&](net::RankContext&) {
    pkv::Runtime rt(tmp_.path());
    auto db = pkv::Database::Open("ev");
    db.Put("k", "v");
    {
      pkv::Event ev = db.Checkpoint(snap.path());
      // Dropped without Wait(): the destructor must drain it so finalize
      // doesn't race the background copy.
    }
    db.Close();
  });
}

}  // namespace
}  // namespace papyrus::testutil
