#!/usr/bin/env bash
# The full correctness pipeline, in dependency order:
#
#   1. lint        tools/papyrus_lint.py self-test + repo-wide run
#   2. analyze     tools/analyzer/papyrus_analyze.py self-tests (intra-file
#                  + protocol family) + repo-wide run (guarded-by,
#                  status-discard, codec-symmetry, pipeline-blocking,
#                  proto-handler, proto-resp-tag, proto-deadlock,
#                  proto-spec-drift) + wire-version vs HEAD; findings are
#                  archived as build/analyze_findings.json; runs on the
#                  built-in text frontend, so it is never skipped — spec
#                  drift (PROTOCOL.json vs src/core/wire.h) fails here
#   3. build+test  default build, full ctest suite
#   4. fault       fault matrix: the whole ctest suite re-run under a
#                  canned correctness-neutral PAPYRUSKV_FAULTS profile
#                  (message delay + duplication) — every suite must still
#                  pass with the recovery paths doing real work; a red run
#                  prints the PAPYRUSKV_FAULT_SEED to reproduce it with.
#                  Both ctest stages run with PAPYRUSKV_FLIGHT set and the
#                  timeline sampler on (PAPYRUSKV_TIMELINE_MS=50, dumps
#                  next to the flight files), and a failure archives the
#                  flight-recorder post-mortems AND timeline series as
#                  build/flight_<stage>.tar.gz (next to
#                  build/analyze_findings.json)
#   5. tsa         Clang build with -Werror=thread-safety
#                  (skipped with a notice if clang++ is not installed)
#   6. clang-tidy  concurrency/bugprone checks (skipped if not installed)
#   7. sanitizers  TSan, ASan, UBSan builds re-running the
#                  concurrency-sensitive test subset (async_test and
#                  fault_test included, so the submission pipeline and the
#                  retry/recovery paths get the TSan treatment)
#   8. bench       micro_kv + fig06_basic + micro_kv_async + repl_failover
#                  smoke runs with the metrics hook:
#                  each writes an aggregate BENCH_<name>.json snapshot at
#                  the repo root (committed, so metric drift shows in
#                  review); micro_kv runs once with the timeline sampler
#                  on (overhead bound: E12c) and once traced (E12b, the
#                  committed snapshot); repl_failover runs 4 ranks with
#                  the sampler as its measurement and the merged series is
#                  re-rendered through papyrus_inspect --timeline, so the
#                  whole observe-merge-render path gates CI
#
# Any stage failing fails the script (set -e); the summary line at the end
# only prints on full success.  Stages skipped for missing toolchains are
# listed in the summary, and under CI=1 any skip fails the run (a CI
# builder without clang is a misconfigured builder, not a green one).
# scripts/check.sh remains the shorter developer loop (build + ctest + one
# sanitizer).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"
SAN_TESTS=(obs_test store_test core_test net_test mutex_test async_test fault_test)
# Correctness-neutral faults only: delay and duplication stress the retry
# and idempotence machinery without making any op legitimately fail (drops
# and crashes belong in tests/fault/, where the expected failures are
# asserted — here every suite must still pass verbatim).
FAULT_PROFILE="net.msg.delay=0.05,net.msg.dup=0.05"
FAULT_SEED="${PAPYRUSKV_FAULT_SEED:-1234}"
SKIPPED=()

# Flight-recorder post-mortems (obs/flight.h): the ctest stages run with
# PAPYRUSKV_FLIGHT pointed here so any rank that times out or crashes
# leaves a dump; on a red stage the dumps are archived next to
# build/analyze_findings.json for the same tooling to pick up.
FLIGHT_DIR="build/flight"
archive_flight() {
  local tag="$1"
  if compgen -G "${FLIGHT_DIR}/*" >/dev/null; then
    tar -czf "build/flight_${tag}.tar.gz" -C "${FLIGHT_DIR}" .
    echo "ci.sh: flight-recorder dumps archived -> build/flight_${tag}.tar.gz"
  else
    echo "ci.sh: no flight-recorder dumps were produced"
  fi
}

# Per-stage wall-clock accounting: `stage <name> <header>` closes the
# previous stage's timer and opens the next; the summary line at the end
# carries one <name>=<seconds>s entry per stage.
STAGE_SUMMARY=()
CUR_STAGE=""
CUR_T0=0
stage() {
  if [ -n "${CUR_STAGE}" ]; then
    STAGE_SUMMARY+=("${CUR_STAGE}=$((SECONDS - CUR_T0))s")
  fi
  CUR_STAGE="$1"
  CUR_T0=${SECONDS}
  if [ -n "$1" ]; then
    echo "== $2 =="
  fi
}

stage lint "[1/8] lint"
python3 tools/papyrus_lint.py --self-test
python3 tools/papyrus_lint.py

stage analyze "[2/8] analyze (semantic + protocol checks)"
python3 tools/analyzer/papyrus_analyze.py --self-test
python3 tools/analyzer/papyrus_analyze.py --self-test-protocol
# Tree-wide semantic run; wire-version discipline is diff-driven, so gate
# the working tree's edits against HEAD (no-op on a clean tree).  The
# machine-readable findings are archived even when the run fails, so a red
# stage still leaves build/analyze_findings.json for tooling to pick up.
mkdir -p build
python3 tools/analyzer/papyrus_analyze.py --diff-base HEAD \
  --json build/analyze_findings.json

stage build-test "[3/8] build + ctest"
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
rm -rf "${FLIGHT_DIR}" && mkdir -p "${FLIGHT_DIR}"
if ! PAPYRUSKV_FLIGHT="${FLIGHT_DIR}/ctest" \
    PAPYRUSKV_TIMELINE_MS=50 \
    PAPYRUSKV_TIMELINE="${FLIGHT_DIR}/timeline.json" \
    ctest --test-dir build --output-on-failure -j "${JOBS}"; then
  archive_flight build-test
  exit 1
fi

stage fault "[4/8] fault matrix (PAPYRUSKV_FAULTS=${FAULT_PROFILE})"
rm -rf "${FLIGHT_DIR}" && mkdir -p "${FLIGHT_DIR}"
if ! PAPYRUSKV_FAULTS="${FAULT_PROFILE}" PAPYRUSKV_FAULT_SEED="${FAULT_SEED}" \
    PAPYRUSKV_FLIGHT="${FLIGHT_DIR}/fault" \
    PAPYRUSKV_TIMELINE_MS=50 \
    PAPYRUSKV_TIMELINE="${FLIGHT_DIR}/timeline.json" \
    ctest --test-dir build --output-on-failure -j "${JOBS}"; then
  echo "ci.sh: fault matrix FAILED under seed ${FAULT_SEED} — reproduce with:"
  echo "  PAPYRUSKV_FAULTS=${FAULT_PROFILE} PAPYRUSKV_FAULT_SEED=${FAULT_SEED} \\"
  echo "    ctest --test-dir build --output-on-failure"
  archive_flight fault
  exit 1
fi

stage tsa "[5/8] clang thread-safety analysis"
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
        -DPAPYRUS_THREAD_SAFETY=ON >/dev/null
  cmake --build build-tsa -j "${JOBS}"
else
  echo "clang++ not installed — skipping (annotations are no-ops under GCC;"
  echo "install clang and rerun for the -Werror=thread-safety gate)"
  SKIPPED+=(thread-safety)
fi

stage clang-tidy "[6/8] clang-tidy"
if command -v clang-tidy >/dev/null 2>&1 && [ -f build-tsa/compile_commands.json ]; then
  find src tools -name '*.cc' -print0 |
    xargs -0 -n 8 -P "${JOBS}" clang-tidy -p build-tsa --quiet
else
  echo "clang-tidy (or its compilation database) not available — skipping"
  SKIPPED+=(clang-tidy)
fi

stage sanitizers "[7/8] sanitizers"
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
export ASAN_OPTIONS="halt_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1"
for san in thread address undefined; do
  echo "-- build (-fsanitize=${san}) --"
  cmake -B "build-${san}san" -S . -DPAPYRUS_SANITIZE="${san}" >/dev/null
  cmake --build "build-${san}san" -j "${JOBS}" --target "${SAN_TESTS[@]}"
  for t in "${SAN_TESTS[@]}"; do
    echo "--- ${san}: ${t} ---"
    "./build-${san}san/tests/${t}"
  done
done

stage bench "[8/8] bench snapshots (BENCH_*.json)"
BENCH_TMP="$(mktemp -d)"
trap 'rm -rf "${BENCH_TMP}"' EXIT
# Sampler-on micro_kv: the fast path with the 20ms timeline tick live —
# the E12c overhead guard's configuration (bound: <5%, EXPERIMENTS.md).
# Runs before the traced pass so the committed snapshot stays the traced
# one (last WriteBenchMetrics wins).
PAPYRUSKV_TIMELINE_MS=20 PAPYRUSKV_TIMELINE="${BENCH_TMP}/mkv_tl.json" \
  ./build/bench/micro_kv --ranks=2 --iters=20000 \
  --repo="${BENCH_TMP}/mkv_tl"
# Traced micro_kv: the hot path plus the causal-tracing layer end-to-end.
PAPYRUSKV_TRACE="${BENCH_TMP}/trace.json" \
  ./build/bench/micro_kv --ranks=2 --iters=20000 --repo="${BENCH_TMP}/mkv"
# Scaled-down fig06: the flush/get path across every storage model.
./build/bench/fig06_basic --ranks=2 --iters=4 --scale=0 \
  --repo="${BENCH_TMP}/fig06"
# Async pipeline: remote-put batching vs one-round-trip-per-op sync puts
# at 8 ranks (DESIGN.md §9); the snapshot carries the sync/async KRPS
# gauges so the batching speedup is part of the results trajectory.
./build/bench/micro_kv_async --ranks=8 --iters=1000 \
  --repo="${BENCH_TMP}/mka"
# Replication failover at 4 ranks, measured by the timeline sampler
# (DESIGN.md §12+§13); the snapshot carries before/dip/after KRPS plus
# the merged per-window series (bench.tl.*).  The per-rank dumps are then
# merged and rendered through papyrus_inspect --timeline so the full
# observe-merge-render path gates CI.  PAPYRUSKV_TIMEOUT_MS=250: on this
# single-core builder the promoted rank serves two partitions and the
# default 50ms ladder sits below its loaded service time (retry livelock).
PAPYRUSKV_TIMEOUT_MS=250 \
  PAPYRUSKV_TIMELINE="${BENCH_TMP}/rfo_tl.json" \
  PAPYRUSKV_FLIGHT="${BENCH_TMP}/rfo_flight.json" \
  ./build/bench/repl_failover --ranks=4 --iters=200 \
  --repo="${BENCH_TMP}/rfo"
./build/tools/papyrus_inspect --timeline "${BENCH_TMP}/rfo_tl.json" \
  --flight="${BENCH_TMP}/rfo_flight.json" > "${BENCH_TMP}/rfo_merged.txt"
head -12 "${BENCH_TMP}/rfo_merged.txt"
grep -q "crash" "${BENCH_TMP}/rfo_merged.txt"  # overlay reached the render
ls -l BENCH_micro_kv.json BENCH_fig06_basic.json BENCH_micro_kv_async.json \
  BENCH_repl_failover.json

stage "" ""
echo
echo "ci.sh: stage times: ${STAGE_SUMMARY[*]}"
if [ "${#SKIPPED[@]}" -gt 0 ]; then
  echo "ci.sh: OK (skipped: ${SKIPPED[*]})"
  if [ "${CI:-0}" = "1" ]; then
    echo "ci.sh: FAIL — CI=1 forbids skipped stages; install the missing"
    echo "clang/libclang toolchain so ${SKIPPED[*]} run(s) for real"
    exit 1
  fi
else
  echo "ci.sh: OK"
fi
