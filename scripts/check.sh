#!/usr/bin/env bash
# Correctness gate: a normal build + full ctest run, then a ThreadSanitizer
# build that re-runs the concurrency-sensitive suites (the obs/ metrics hot
# path, the store cache, and the multi-threaded core integration tests).
# The metrics registry is lock-free on the update path, so "TSan-clean"
# is part of its contract — this script is how that is checked.
#
#   scripts/check.sh                 # lint + build + ctest + TSan subset
#   PAPYRUS_SANITIZE=address scripts/check.sh    # ASan instead of TSan
#   PAPYRUS_SANITIZE=undefined scripts/check.sh  # UBSan instead of TSan
#
# scripts/ci.sh is the superset: every sanitizer, plus the Clang
# -Werror=thread-safety build and clang-tidy when clang is installed.
set -euo pipefail
cd "$(dirname "$0")/.."

SAN="${PAPYRUS_SANITIZE:-thread}"

echo "== lint =="
python3 tools/papyrus_lint.py

echo "== build (default) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

echo "== ctest (full suite) =="
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== build (-fsanitize=${SAN}) =="
cmake -B "build-${SAN}san" -S . -DPAPYRUS_SANITIZE="${SAN}" >/dev/null
cmake --build "build-${SAN}san" -j "$(nproc)" --target obs_test store_test \
      core_test net_test mutex_test

echo "== tests under ${SAN} sanitizer =="
# halt_on_error makes any report fail the run instead of just logging it.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
export ASAN_OPTIONS="halt_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1"
for t in obs_test store_test core_test net_test mutex_test; do
  echo "--- ${t} ---"
  "./build-${SAN}san/tests/${t}"
done

echo "check.sh: OK"
