#!/usr/bin/env bash
# Builds everything, runs the full test suite, all examples, and every
# figure/ablation bench, capturing outputs at the repo root — the
# reproduction equivalent of the paper artifact's experiment workflow
# (appendix A.4).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build -j "$(nproc)" 2>&1 | tee test_output.txt | tail -2

echo "== examples =="
for e in quickstart coupled_workflow checkpoint_restart kmer_analysis; do
  echo "--- $e ---"
  ./build/examples/"$e"
done

echo "== benches (figures + ablations + micro) =="
: > bench_output.txt
for b in fig06_basic fig07_consistency fig08_get_opt fig09_workload \
         fig10_checkpoint fig11_mdhim fig13_meraculous \
         abl_lsm_knobs abl_migration abl_custom_hash micro_store; do
  echo "===== build/bench/$b =====" | tee -a bench_output.txt
  ./build/bench/"$b" "$@" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

echo "done: see test_output.txt, bench_output.txt, EXPERIMENTS.md"
