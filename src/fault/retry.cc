#include "fault/retry.h"

#include <algorithm>

#include "common/env.h"

namespace papyrus::fault {

RetryPolicy RetryPolicy::FromEnv() {
  RetryPolicy p;
  if (auto v = EnvInt("PAPYRUSKV_RETRY_MAX"); v && *v > 0) {
    p.max_attempts = static_cast<int>(*v);
  }
  if (auto v = EnvInt("PAPYRUSKV_TIMEOUT_MS"); v && *v > 0) {
    p.reply_timeout_us = static_cast<uint64_t>(*v) * 1000;
  }
  if (auto v = EnvInt("PAPYRUSKV_BARRIER_TIMEOUT_MS"); v && *v > 0) {
    p.barrier_timeout_us = static_cast<uint64_t>(*v) * 1000;
  }
  return p;
}

uint64_t RetryPolicy::BackoffUs(int attempt) const {
  const int shift = std::min(std::max(attempt - 1, 0), 16);
  return std::min(backoff_cap_us, backoff_base_us << shift);
}

}  // namespace papyrus::fault
