// Failpoint fault-injection registry.
//
// PapyrusKV targets burst-buffer/NVM machines whose real failure modes —
// torn NVM writes, dropped or delayed interconnect messages, ranks dying
// mid-workload — never occur naturally inside the deterministic simulated
// substrate (src/sim/).  This registry lets tests and the CI fault matrix
// inject them on purpose, deterministically, at named *failpoints* compiled
// into the hot paths of sim/storage.cc, sim/interconnect.cc, net/comm.cc
// and core/runtime.cc.
//
// Configuration is a comma-separated spec, normally from PAPYRUSKV_FAULTS:
//
//   sstable.write.torn=0.01        fire with probability 0.01 (any rank)
//   net.msg.drop=rank1:0.05        probability 0.05, rank 1 only
//   rank.crash=rank2@op500         fire once, on rank 2's 500th hit
//   storage.write.enospc=@op10     fire once, on the 10th hit (any rank)
//
// Registered points (see DESIGN.md §8 for the full fault model):
//
//   sstable.write.torn      zero the tail of an SSTable file write (the
//                           record lands short; CRC catches it on read)
//   sstable.write.bitflip   flip one random bit in an SSTable file write
//   storage.write.enospc    fail the write with an injected ENOSPC
//   net.msg.drop            charge the interconnect but never deliver
//   net.msg.dup             deliver the message twice
//   net.msg.delay           add PAPYRUSKV_FAULT_DELAY_US to propagation
//   rank.crash              simulated rank death: volatile MemTables are
//                           discarded and the rank's API calls start
//                           failing (core/runtime.cc)
//   batch.op.fail           fail one op of a batched put on the handler
//                           side; the rest of the batch still applies and
//                           the per-op status travels back in the batch
//                           ack (core/db_shard.cc ApplyBatch)
//   repl.append.drop        swallow a replication append frame on the
//                           follower side before it is applied — no ack is
//                           sent, so the pipeline's frame retry redelivers
//                           and the follower's sequence check dedups
//                           (core/runtime.cc HandleReplAppend)
//   repl.promote.race       stretch the failover election window by 2ms so
//                           concurrent electors overlap; the deterministic
//                           scoring must still converge on one winner
//                           (core/db_shard.cc PromotedOwnerLocked)
//
// Determinism: every point draws from its own generator seeded with
// PAPYRUSKV_FAULT_SEED mixed with the point name, so a fixed seed and spec
// reproduce the same per-point firing sequence.  (Across ranks the
// interleaving of draws still follows thread scheduling — tests that need
// exact firing sites use rank/count triggers, which are scheduling-proof.)
//
// Hot-path cost with faults disabled: one relaxed load of a process-wide
// atomic bool (`Enabled()`), nothing else — the acceptance bar for keeping
// failpoints compiled into release builds.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"

namespace papyrus::fault {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

// True when any failpoint is configured.  Injection sites branch on this
// before touching their Point, so the disabled fast path stays one load.
inline bool Enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// Rank attribution for rank-scoped triggers.  Set by net::RunRanks for the
// application thread and by KvRuntime::AdoptObservability for the runtime's
// background threads; -1 (unknown) never matches a rank-scoped trigger.
void SetThreadRank(int rank);
int ThreadRank();

// Extra propagation delay charged when net.msg.delay fires
// (PAPYRUSKV_FAULT_DELAY_US, cached at Configure time).
uint64_t DelayMicros();

// One named failpoint.  Stable address for the process lifetime, so
// injection sites may cache `Registry::Instance().GetPoint(...)` in a
// function-local static reference.
class Point {
 public:
  explicit Point(std::string name);
  Point(const Point&) = delete;
  Point& operator=(const Point&) = delete;

  const std::string& name() const { return name_; }

  // True when the fault should be injected at this call site now.  Counts
  // hits (for @opN triggers), honors rank scoping against ThreadRank(), and
  // bumps the obs counter fault.injected.<name> on a hit.
  bool Fire();

  // Deterministic uniform draw in [0, n) from this point's stream — used by
  // injection sites that need a corruption offset/length to go with a hit.
  uint64_t Rand(uint64_t n);

  // Total injections since process start (not reset by Configure).
  uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;

  void Deactivate();
  void ActivateProb(int rank, double prob, uint64_t seed);
  void ActivateCount(int rank, uint64_t nth, uint64_t seed);

  const std::string name_;
  // Checked first in Fire so unconfigured points cost one relaxed load.
  std::atomic<bool> active_{false};
  std::atomic<uint64_t> injected_{0};

  // Leaf lock: guards the trigger state below; Fire never takes another
  // lock while holding it.
  Mutex mu_{"fault_point_mu"};
  int rank_ GUARDED_BY(mu_) = -1;       // -1 = any rank
  double prob_ GUARDED_BY(mu_) = 0.0;   // probability trigger
  uint64_t nth_ GUARDED_BY(mu_) = 0;    // >0: fire once on the nth hit
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  bool fired_once_ GUARDED_BY(mu_) = false;
  Rng rng_ GUARDED_BY(mu_) = Rng(0);
};

// Process-wide failpoint registry.
class Registry {
 public:
  static Registry& Instance();

  // Replaces the active configuration with `spec` (syntax above).  An empty
  // spec deactivates everything.  On a malformed spec, all points are
  // deactivated and INVALID_ARG is returned.
  Status Configure(const std::string& spec, uint64_t seed);

  // Configure from PAPYRUSKV_FAULTS / PAPYRUSKV_FAULT_SEED /
  // PAPYRUSKV_FAULT_DELAY_US.  Unset PAPYRUSKV_FAULTS deactivates.
  Status ConfigureFromEnv();

  void DisableAll();

  // Returns the (created-on-demand) point with this name.  The reference
  // stays valid for the process lifetime.
  Point& GetPoint(const std::string& name);

  // Active configuration, one "name=trigger" per entry (diagnostics).
  std::vector<std::string> Describe() const;

 private:
  Registry() = default;

  // Guards the point map; the Point objects themselves are stable
  // (unique_ptr) and internally synchronized.
  mutable Mutex mu_{"fault_registry_mu"};
  std::map<std::string, std::unique_ptr<Point>> points_ GUARDED_BY(mu_);
};

// First-papyruskv_init hook: configures from the environment exactly once
// per process (later inits return the cached status).  Tests bypass this
// and call Registry::Configure directly.
Status InitFromEnvOnce();

}  // namespace papyrus::fault
