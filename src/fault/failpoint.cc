#include "fault/failpoint.h"

#include <cstdlib>
#include <mutex>  // lint:allow-raw-mutex: std::call_once flag only, no locking
#include <sstream>

#include "common/env.h"
#include "common/hash.h"
#include "common/logging.h"
#include "obs/flight.h"
#include "obs/metrics.h"

namespace papyrus::fault {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

thread_local int tls_rank = -1;

// Cached at Configure time so injection sites never parse the environment.
std::atomic<uint64_t> g_delay_us{1000};

constexpr uint64_t kDefaultSeed = 0x5eed;

// Per-point stream: mix the global seed with the point name so distinct
// points never share a draw sequence.
uint64_t PointSeed(uint64_t seed, const std::string& name) {
  return Mix64(seed ^ Fnv1a64(name.data(), name.size()));
}

struct ParsedTrigger {
  int rank = -1;       // -1 = any
  double prob = 0.0;   // probability mode
  uint64_t nth = 0;    // >0: count mode (fire once on the nth hit)
};

// Trigger grammar: `<prob>` | `rank<R>:<prob>` | `rank<R>@op<N>` | `@op<N>`
// (the `op` prefix after `@` is optional).
bool ParseTrigger(const std::string& val, ParsedTrigger* out) {
  std::string rest = val;
  if (rest.rfind("rank", 0) == 0) {
    size_t i = 4;
    size_t end = rest.find_first_of(":@", i);
    if (end == std::string::npos || end == i) return false;
    const std::string num = rest.substr(i, end - i);
    char* p = nullptr;
    const long r = strtol(num.c_str(), &p, 10);
    if (!p || *p != '\0' || r < 0) return false;
    out->rank = static_cast<int>(r);
    rest = rest.substr(end);  // ":<prob>" or "@op<N>"
    if (rest[0] == ':') rest = rest.substr(1);
  }
  if (!rest.empty() && rest[0] == '@') {
    rest = rest.substr(1);
    if (rest.rfind("op", 0) == 0) rest = rest.substr(2);
    if (rest.empty()) return false;
    char* p = nullptr;
    const unsigned long long n = strtoull(rest.c_str(), &p, 10);
    if (!p || *p != '\0' || n == 0) return false;
    out->nth = n;
    return true;
  }
  if (rest.empty()) return false;
  char* p = nullptr;
  const double prob = strtod(rest.c_str(), &p);
  if (!p || *p != '\0' || prob < 0.0 || prob > 1.0) return false;
  out->prob = prob;
  return true;
}

}  // namespace

void SetThreadRank(int rank) { tls_rank = rank; }
int ThreadRank() { return tls_rank; }

uint64_t DelayMicros() {
  return g_delay_us.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Point
// ---------------------------------------------------------------------------

Point::Point(std::string name) : name_(std::move(name)) {}

void Point::Deactivate() {
  active_.store(false, std::memory_order_relaxed);
  MutexLock lock(&mu_);
  rank_ = -1;
  prob_ = 0.0;
  nth_ = 0;
  hits_ = 0;
  fired_once_ = false;
}

void Point::ActivateProb(int rank, double prob, uint64_t seed) {
  MutexLock lock(&mu_);
  rank_ = rank;
  prob_ = prob;
  nth_ = 0;
  hits_ = 0;
  fired_once_ = false;
  rng_ = Rng(PointSeed(seed, name_));
  active_.store(true, std::memory_order_relaxed);
}

void Point::ActivateCount(int rank, uint64_t nth, uint64_t seed) {
  MutexLock lock(&mu_);
  rank_ = rank;
  prob_ = 0.0;
  nth_ = nth;
  hits_ = 0;
  fired_once_ = false;
  rng_ = Rng(PointSeed(seed, name_));
  active_.store(true, std::memory_order_relaxed);
}

bool Point::Fire() {
  if (!active_.load(std::memory_order_relaxed)) return false;
  const int rank = ThreadRank();
  bool hit = false;
  {
    MutexLock lock(&mu_);
    if (rank_ >= 0 && rank != rank_) return false;
    if (nth_ > 0) {
      if (!fired_once_ && ++hits_ == nth_) {
        fired_once_ = true;
        hit = true;
      }
    } else {
      hit = rng_.Bernoulli(prob_);
    }
  }
  if (hit) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    obs::Current().GetCounter("fault.injected." + name_).Inc();
    // name_ is immutable after registration, so handing its c_str() to the
    // flight ring (which stores the pointer) is safe for the process life.
    if (auto* flight = obs::CurrentFlight()) {
      flight->Record(obs::FlightKind::kFailpoint, name_.c_str(), rank);
    }
  }
  return hit;
}

uint64_t Point::Rand(uint64_t n) {
  if (n == 0) return 0;
  MutexLock lock(&mu_);
  return rng_.Uniform(n);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::Instance() {
  static Registry* instance = new Registry();
  return *instance;
}

Point& Registry::GetPoint(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(name, std::make_unique<Point>(name)).first;
  }
  return *it->second;
}

void Registry::DisableAll() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
  MutexLock lock(&mu_);
  for (auto& [name, point] : points_) point->Deactivate();
}

Status Registry::Configure(const std::string& spec, uint64_t seed) {
  DisableAll();
  if (spec.empty()) return Status::OK();

  // Parse everything first so a malformed spec leaves nothing half-armed.
  std::vector<std::pair<std::string, ParsedTrigger>> entries;
  std::istringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    // Trim surrounding whitespace.
    const size_t b = item.find_first_not_of(" \t");
    const size_t e = item.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    item = item.substr(b, e - b + 1);
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArg("bad failpoint spec entry: " + item);
    }
    ParsedTrigger trig;
    if (!ParseTrigger(item.substr(eq + 1), &trig)) {
      return Status::InvalidArg("bad failpoint trigger: " + item);
    }
    entries.emplace_back(item.substr(0, eq), trig);
  }
  if (entries.empty()) return Status::OK();

  for (const auto& [name, trig] : entries) {
    Point& p = GetPoint(name);
    if (trig.nth > 0) {
      p.ActivateCount(trig.rank, trig.nth, seed);
    } else {
      p.ActivateProb(trig.rank, trig.prob, seed);
    }
  }
  detail::g_enabled.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status Registry::ConfigureFromEnv() {
  if (auto d = EnvInt("PAPYRUSKV_FAULT_DELAY_US"); d && *d >= 0) {
    g_delay_us.store(static_cast<uint64_t>(*d), std::memory_order_relaxed);
  }
  const uint64_t seed = static_cast<uint64_t>(
      EnvInt("PAPYRUSKV_FAULT_SEED").value_or(kDefaultSeed));
  return Configure(EnvString("PAPYRUSKV_FAULTS").value_or(""), seed);
}

std::vector<std::string> Registry::Describe() const {
  std::vector<std::string> out;
  MutexLock lock(&mu_);
  for (const auto& [name, point] : points_) {
    if (!point->active_.load(std::memory_order_relaxed)) continue;
    std::ostringstream os;
    os << name << "=";
    MutexLock plock(&point->mu_);
    if (point->rank_ >= 0) os << "rank" << point->rank_;
    if (point->nth_ > 0) {
      os << "@op" << point->nth_;
    } else {
      if (point->rank_ >= 0) os << ":";
      os << point->prob_;
    }
    out.push_back(os.str());
  }
  return out;
}

Status InitFromEnvOnce() {
  static std::once_flag once;
  static Status result = Status::OK();
  std::call_once(once, [] {
    result = Registry::Instance().ConfigureFromEnv();
    if (result.ok() && Enabled()) {
      for (const auto& entry : Registry::Instance().Describe()) {
        PLOG_INFO << "failpoint armed: " << entry;
      }
    }
  });
  return result;
}

}  // namespace papyrus::fault
