// Retry/backoff policy for remote request-reply traffic (DESIGN.md §8).
//
// Every remote Put/Get/migration chunk is a request that expects a reply.
// With the interconnect able to drop messages (fault injection today, real
// fabrics tomorrow), an unbounded blocking receive turns one lost message
// into a hung rank.  Policy instead: wait `reply_timeout_us` per attempt,
// re-send the (idempotent) request with exponential backoff between
// attempts, and after `max_attempts` give up with PAPYRUSKV_ERR_TIMEOUT and
// mark the peer suspect.  Collective barriers get a single, longer deadline
// (`barrier_timeout_us`) — they cannot be retried, only reported.
#pragma once

#include <cstdint>

namespace papyrus::fault {

struct RetryPolicy {
  int max_attempts = 4;                     // PAPYRUSKV_RETRY_MAX
  uint64_t reply_timeout_us = 10'000'000;   // PAPYRUSKV_TIMEOUT_MS
  uint64_t backoff_base_us = 1'000;
  uint64_t backoff_cap_us = 64'000;
  uint64_t barrier_timeout_us = 60'000'000; // PAPYRUSKV_BARRIER_TIMEOUT_MS

  // Reads the PAPYRUSKV_* overrides above; unset variables keep defaults.
  static RetryPolicy FromEnv();

  // Backoff before attempt `attempt`+1 (attempt is 1-based): exponential,
  // capped at backoff_cap_us.
  uint64_t BackoffUs(int attempt) const;
};

}  // namespace papyrus::fault
