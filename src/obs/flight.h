// Flight recorder: a per-rank lock-free ring of recent annotated events,
// dumped automatically when a fault path fires so every timeout, quarantine
// or simulated crash ships its own diagnosis.
//
// Unlike the trace buffer (which needs PAPYRUSKV_TRACE and records full
// spans), the flight recorder is always recording: each Record() is one
// atomic ticket claim plus a handful of relaxed stores, cheap enough for
// the RPC/retry/flush paths it annotates.  Nothing is written anywhere
// until TriggerDump() fires, which renders the surviving window as
// flight-v1 JSON:
//
//   { "papyruskv": "flight-v1", "rank": 2, "reason": "request timeout",
//     "events": [ { "seq": N, "ts_us": T, "kind": "retry",
//                   "what": "get_req", "a": 1, "b": 3, "trace": "0x..." },
//                 ... ] }
//
// `a`/`b` are per-kind integers (typically peer rank and opcode/attempt);
// `trace` links the event to the distributed trace when one was active.
// The dump destination is PAPYRUSKV_FLIGHT (per-rank suffixed like stats
// paths) or, when unset, flight.rank<k>.json next to the PAPYRUSKV_STATS
// file; with neither configured TriggerDump is a no-op.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace papyrus::obs {

enum class FlightKind : uint8_t {
  kOpBegin = 0,    // RPC issued: what=op name, a=peer, b=attempt budget
  kOpEnd,          // RPC acked: what=op name, a=peer
  kRetry,          // RPC attempt re-sent: a=peer, b=attempt number
  kTimeout,        // RPC abandoned after all retries: a=peer, b=attempts
  kSuspect,        // peer marked suspect: a=peer
  kFailpoint,      // failpoint fired: what=point name
  kFlush,          // MemTable flush on the compaction thread: a=db id
  kCompaction,     // merge compaction ran: a=db id, b=tables merged away
  kCrash,          // simulated rank crash (volatile state dropped)
  kQuarantine,     // SSTable quarantined after unrepairable corruption: a=ssid
  kReplResync,     // replication stream resynchronized: a=follower, b=epoch
  kDegraded,       // replication below quorum, acks proceed: a=db id, b=live
  kPromote,        // follower promoted for a dead primary: a=primary, b=seq
};

const char* FlightKindName(FlightKind kind);

class FlightRecorder {
 public:
  struct Event {
    uint64_t seq = 0;
    uint64_t ts_us = 0;
    FlightKind kind = FlightKind::kOpBegin;
    const char* what = "";  // static string (op/point name)
    int64_t a = 0;
    int64_t b = 0;
    uint64_t trace_id = 0;  // active TraceContext, 0 when none
  };

  explicit FlightRecorder(size_t capacity = 1024);

  // Lock-free, wait-free: claims the next ring ticket and publishes the
  // payload.  `what` must be a static string (it is stored by pointer).
  // A reader racing a wrap may observe a torn slot; Snapshot() detects and
  // skips it — acceptable for a diagnostic ring, never for correctness.
  void Record(FlightKind kind, const char* what, int64_t a = 0, int64_t b = 0,
              uint64_t trace_id = 0);

  // Where TriggerDump writes; empty path disables dumping.
  void ConfigureDump(std::string path, int rank);
  const std::string& dump_path() const { return dump_path_; }

  // Surviving events, oldest first, torn slots skipped.
  std::vector<Event> Snapshot() const;

  // Renders the current window as flight-v1 JSON at the configured path.
  // Rare-path (mutex-serialized against concurrent triggers); no-op
  // without a configured destination.
  Status TriggerDump(const char* reason);

  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    // seq 0 = never written.  The writer clears seq, stores the payload,
    // then publishes seq (release); the reader validates seq before/after
    // reading the payload.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> ts_us{0};
    std::atomic<uint8_t> kind{0};
    std::atomic<const char*> what{nullptr};
    std::atomic<int64_t> a{0};
    std::atomic<int64_t> b{0};
    std::atomic<uint64_t> trace_id{0};
  };

  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};

  // Dump-path state: set once at runtime construction, read by triggers.
  std::string dump_path_;
  int rank_ = 0;
  // Leaf lock: serializes rare TriggerDump calls only; never taken on the
  // Record path.
  Mutex dump_mu_{"flight_dump_mu"};
  uint64_t dumps_ GUARDED_BY(dump_mu_) = 0;
};

// The calling thread's flight recorder (installed per rank alongside the
// metrics registry); null outside a runtime.
FlightRecorder* CurrentFlight();
void SetCurrentFlight(FlightRecorder* f);

}  // namespace papyrus::obs
