#include "obs/metrics.h"

#include <algorithm>

namespace papyrus::obs {

// ---------------------------------------------------------------------------
// TickClock
// ---------------------------------------------------------------------------

double TickClock::Scale() {
#if defined(__x86_64__) || defined(__i386__)
  // One ~1ms spin per process against the monotonic clock pins the tick
  // rate to well under 1% error — plenty for log2-bucketed histograms.
  static const double scale = [] {
    const uint64_t t0 = NowMicros();
    const uint64_t c0 = __builtin_ia32_rdtsc();
    uint64_t t1, c1;
    do {
      t1 = NowMicros();
      c1 = __builtin_ia32_rdtsc();
    } while (t1 - t0 < 1000);
    return static_cast<double>(t1 - t0) / static_cast<double>(c1 - c0);
  }();
  return scale;
#else
  return 1.0;  // Now() already returns microseconds
#endif
}

// ---------------------------------------------------------------------------
// HistogramData
// ---------------------------------------------------------------------------

double HistogramData::Percentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest value with at least rank observations below
  // or at it.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(p / 100.0 * static_cast<double>(count) + 0.5));
  uint64_t cum = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (cum + buckets[b] >= rank) {
      const double lower =
          b == 0 ? 0 : static_cast<double>(HistogramBucketUpper(b - 1) + 1);
      const double upper = static_cast<double>(HistogramBucketUpper(b));
      const double frac = static_cast<double>(rank - cum) /
                          static_cast<double>(buckets[b]);
      const double v = lower + (upper - lower) * frac;
      // The true extremes are tracked exactly; never report beyond them.
      return std::clamp(v, static_cast<double>(min),
                        static_cast<double>(max));
    }
    cum += buckets[b];
  }
  return static_cast<double>(max);
}

void HistogramData::Merge(const HistogramData& other) {
  if (other.count == 0) return;
  min = count == 0 ? other.min : std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    buckets[b] += other.buckets[b];
  }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

HistogramData Histogram::Snapshot() const {
  HistogramData d;
  // Count derives from the buckets so percentile ranks always see an
  // internally consistent distribution, even under concurrent Record().
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    d.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    d.count += d.buckets[b];
  }
  d.sum = sum_.load(std::memory_order_relaxed);
  d.max = max_.load(std::memory_order_relaxed);
  const uint64_t mn = min_.load(std::memory_order_relaxed);
  d.min = d.count == 0 ? 0 : mn;
  return d;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Snapshot / Registry
// ---------------------------------------------------------------------------

void Snapshot::Merge(const Snapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) histograms[name].Merge(h);
}

Counter& Registry::GetCounter(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Snapshot Registry::TakeSnapshot() const {
  MutexLock lock(&mu_);
  Snapshot out;
  for (const auto& [name, c] : counters_) out.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = h->Snapshot();
  }
  return out;
}

void Registry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

Registry& Registry::Process() {
  static Registry* process = new Registry();  // leaked: outlives all threads
  return *process;
}

namespace {
thread_local Registry* tls_registry = nullptr;
}  // namespace

Registry& Current() {
  return tls_registry ? *tls_registry : Registry::Process();
}

void SetCurrentRegistry(Registry* r) { tls_registry = r; }

}  // namespace papyrus::obs
