// Low-overhead metrics registry: the observability substrate every layer
// reports into (see DESIGN.md "Observability").
//
// Design constraints, in order:
//   1. The put/get hot path must not serialize on a lock: counters are
//      relaxed atomics sharded across cache lines, histograms are arrays of
//      relaxed atomic buckets.  Snapshots are approximate under concurrent
//      mutation (counts may lag sums by in-flight operations), which is the
//      standard trade for lock-free telemetry.
//   2. Ranks are threads in this emulation, so metrics cannot live in
//      process globals: each rank's KvRuntime owns a Registry, published to
//      that rank's threads (app, compaction, dispatcher, handler) through a
//      thread-local pointer.  Code below core/ (store, sim, net) reports to
//      Current(), which falls back to a process-wide registry outside any
//      rank (unit tests, tools).
//   3. Metric objects are owned by the Registry and never deallocated while
//      it lives, so hot paths cache raw pointers resolved once by name.
//
// Histograms are log-bucketed (one bucket per power of two), which gives
// ~2x-relative-error percentiles over the full uint64 range in 65 words —
// the same scheme HdrHistogram-style recorders use for latency.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/timer.h"

namespace papyrus::obs {

// ---------------------------------------------------------------------------
// Counter: monotonic, relaxed, sharded to avoid cross-thread cache bouncing.
// ---------------------------------------------------------------------------
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  // Each thread keeps one shard for life; ranks have ~4 threads each, so 8
  // shards make same-counter collisions rare without bloating snapshots.
  static size_t ShardIndex() {
    static std::atomic<size_t> next{0};
    thread_local size_t idx = next.fetch_add(1, std::memory_order_relaxed);
    return idx % kShards;
  }
  Cell shards_[kShards];
};

// ---------------------------------------------------------------------------
// Gauge: a settable signed level (queue depths, occupancy bytes).
// ---------------------------------------------------------------------------
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

// ---------------------------------------------------------------------------
// Histogram: log2 buckets; bucket 0 holds zeros, bucket i (i >= 1) holds
// values in [2^(i-1), 2^i).
// ---------------------------------------------------------------------------
inline constexpr size_t kHistogramBuckets = 65;

// Index of the bucket containing v.
inline size_t HistogramBucketOf(uint64_t v) {
  size_t b = 0;
  while (v) {
    ++b;
    v >>= 1;
  }
  return b;  // 0 for v == 0, else floor(log2(v)) + 1
}

// Inclusive upper bound of bucket b (0 for the zero bucket).
inline uint64_t HistogramBucketUpper(size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return ~uint64_t{0};
  return (uint64_t{1} << b) - 1;
}

// A point-in-time (or merged) histogram state.  Plain data: merging and
// percentile extraction work the same on a live snapshot and on a dump
// parsed back from JSON.
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when count == 0
  uint64_t max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  double Mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0;
  }
  // Nearest-rank percentile with linear interpolation inside the winning
  // bucket, clamped to the observed [min, max].  p in [0, 100].
  double Percentile(double p) const;
  void Merge(const HistogramData& other);
};

class Histogram {
 public:
  void Record(uint64_t v) {
    buckets_[HistogramBucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    AtomicMin(min_, v);
    AtomicMax(max_, v);
  }
  HistogramData Snapshot() const;
  void Reset();

 private:
  static void AtomicMin(std::atomic<uint64_t>& a, uint64_t v) {
    uint64_t cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<uint64_t>& a, uint64_t v) {
    uint64_t cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
};

// ---------------------------------------------------------------------------
// TickClock
// ---------------------------------------------------------------------------

// Fast monotonic tick source for hot-path latency measurement.  On hosts
// without vDSO acceleration a clock_gettime syscall costs ~35ns; two of
// them per put/get is a measurable tax at ~2us/op.  rdtsc is a few ns and
// constant-rate on any post-2008 x86 (constant_tsc/nonstop_tsc), so ticks
// convert to microseconds with one multiply by a scale calibrated once per
// process.  Cross-core reads can disagree by a handful of cycles; that
// jitter is far below the histograms' 2x bucket granularity.
class TickClock {
 public:
  static uint64_t Now() {
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_ia32_rdtsc();
#else
    return NowMicros();
#endif
  }
  // Microseconds represented by a tick delta.
  static uint64_t ToMicros(uint64_t ticks) {
    return static_cast<uint64_t>(static_cast<double>(ticks) * Scale());
  }

 private:
  static double Scale();  // us per tick, calibrated on first use
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// Everything a registry holds, frozen.  Maps are sorted by name, which the
// exporters rely on for stable output.
struct Snapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  // Element-wise aggregation (counters/gauges sum, histograms merge) — the
  // rank-0 roll-up.
  void Merge(const Snapshot& other);
};

class Registry {
 public:
  // Touching the tick clock here front-loads its one-time calibration so
  // the first measured operation does not pay it.
  Registry() { TickClock::ToMicros(0); }
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Finds or creates; the returned reference stays valid for the life of
  // the registry.  Lock is taken only here, never on metric updates —
  // resolve once, cache the pointer.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  Snapshot TakeSnapshot() const;
  // Zeroes every metric (papyruskv_stats_reset).  Concurrent updates may
  // survive the sweep; that is acceptable for telemetry.
  void Reset();

  // The process-wide fallback registry (tools, unit tests, code running
  // outside any rank).
  static Registry& Process();

 private:
  // Leaf lock: guards only the name→metric maps (metric *values* are
  // lock-free atomics); held for map lookup/insert, never while calling out.
  mutable Mutex mu_{"obs_registry_mu"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
};

// The calling thread's registry: the one installed via SetCurrentRegistry
// (each rank's runtime installs its own on the rank's threads), else
// Registry::Process().
Registry& Current();
void SetCurrentRegistry(Registry* r);  // nullptr restores the process one

// RAII latency recorder: records microseconds from construction to
// destruction into the histogram.  A null histogram disables it.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* h)
      : h_(h), start_(h ? TickClock::Now() : 0) {}
  ~ScopedLatency() {
    if (h_) h_->Record(TickClock::ToMicros(TickClock::Now() - start_));
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* h_;
  uint64_t start_;
};

}  // namespace papyrus::obs
