// Lightweight trace-event recording (Chrome trace_event JSON format).
//
// Each rank's runtime owns one fixed-capacity ring of complete ("ph":"X")
// events covering the coarse background operations — flush, migration,
// compaction, checkpoint/restart — cheap enough to leave compiled in and
// gated at runtime by PAPYRUSKV_TRACE=path.  When the ring wraps, the
// oldest events are overwritten and counted as dropped; tracing never
// blocks or allocates on the recording path beyond the event's name.
//
// The output loads directly into chrome://tracing / Perfetto: one process
// per rank, one thread lane per recording thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/timer.h"

namespace papyrus::obs {

struct TraceEvent {
  std::string name;
  const char* cat = "";  // static string (category: store, net, kv)
  uint64_t ts_us = 0;    // span start, microseconds
  uint64_t dur_us = 0;
  uint64_t tid = 0;
};

class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 8192);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Records a complete span.  No-op while disabled.  Overwrites the oldest
  // event when full.
  void Add(std::string name, const char* cat, uint64_t ts_us,
           uint64_t dur_us);

  size_t size() const;
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Events in recording order (oldest first).
  std::vector<TraceEvent> Events() const;

  // Writes {"traceEvents": [...]} with pid = rank.  Timestamps are emitted
  // relative to the earliest recorded event.
  Status WriteChromeTrace(const std::string& path, int rank) const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  // Leaf lock: guards the ring only; capacity_ is set once in the
  // constructor and read-only afterwards.
  mutable Mutex mu_{"trace_mu"};
  size_t capacity_;
  size_t next_ GUARDED_BY(mu_) = 0;  // ring write cursor
  bool wrapped_ GUARDED_BY(mu_) = false;
  std::vector<TraceEvent> ring_ GUARDED_BY(mu_);
};

// The calling thread's trace buffer (installed per rank alongside the
// metrics registry); null when tracing is not set up.
TraceBuffer* CurrentTrace();
void SetCurrentTrace(TraceBuffer* t);

// RAII span: records [construction, destruction) into the buffer if the
// buffer exists and is enabled at construction time.
class TraceSpan {
 public:
  TraceSpan(TraceBuffer* buf, const char* cat, std::string name)
      : buf_(buf && buf->enabled() ? buf : nullptr) {
    if (buf_) {
      name_ = std::move(name);
      cat_ = cat;
      start_ = NowMicros();
    }
  }
  TraceSpan(const char* cat, std::string name)
      : TraceSpan(CurrentTrace(), cat, std::move(name)) {}
  ~TraceSpan() {
    if (buf_) buf_->Add(std::move(name_), cat_, start_, NowMicros() - start_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceBuffer* buf_;
  std::string name_;
  const char* cat_ = "";
  uint64_t start_ = 0;
};

}  // namespace papyrus::obs
