// Lightweight trace-event recording (Chrome trace_event JSON format) and
// the cross-rank causal-tracing layer on top of it.
//
// Each rank's runtime owns one fixed-capacity ring of complete ("ph":"X")
// events — flush, migration, compaction, checkpoint/restart, plus (when an
// operation context is active) per-operation request spans — cheap enough
// to leave compiled in and gated at runtime by PAPYRUSKV_TRACE=path.  When
// the ring wraps, the oldest events are overwritten and counted as dropped;
// tracing never blocks or allocates on the recording path beyond the
// event's name.
//
// Causal tracing: every public put/get/delete allocates a TraceContext
// (64-bit trace id + the id of the span currently on top of the calling
// thread).  The context rides the wire protocol (core/wire.h) so the
// owner-side handler records its service span as a *child* of the caller's
// RPC span, linked by Perfetto flow events ("ph":"s"/"f").  The per-rank
// files merge into one timeline with `papyrus_inspect --trace-merge`
// (timestamps are absolute NowMicros — one steady clock shared by all
// emulated ranks).
//
// The output loads directly into chrome://tracing / Perfetto: one process
// per rank, one named thread lane per recording thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/timer.h"

namespace papyrus::obs {

// The causal identity of one in-flight operation.  `span_id` names the
// span that is current on the owning thread; a child created under it (or a
// remote handler decoding it off the wire) records it as its parent.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool sampled = false;
  bool valid() const { return sampled && trace_id != 0; }
};

// The calling thread's active context (invalid when no OpSpan is open).
TraceContext CurrentTraceContext();

struct TraceEvent {
  std::string name;
  const char* cat = "";  // static string (category: store, net, kv)
  uint64_t ts_us = 0;    // span start, microseconds (absolute NowMicros)
  uint64_t dur_us = 0;
  uint64_t tid = 0;
  // Causal identity (0 = plain span outside any operation).
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  // Cross-rank flow link: kFlowOut on the caller's RPC span, kFlowIn on the
  // owner's handler span; both carry the caller span's id as flow_id.
  enum Flow : uint8_t { kFlowNone = 0, kFlowOut = 1, kFlowIn = 2 };
  uint8_t flow = kFlowNone;
  uint64_t flow_id = 0;
};

class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 8192);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Salts span/trace ids with the owning rank so ids allocated by different
  // ranks can never collide in a merged timeline.
  void SetRank(int rank) {
    rank_salt_.store((static_cast<uint64_t>(rank) + 1) << 48,
                     std::memory_order_relaxed);
  }
  // Process-unique id: rank salt | per-buffer counter.  Never returns 0.
  uint64_t NextSpanId() {
    return rank_salt_.load(std::memory_order_relaxed) |
           (id_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  }

  // Names the calling thread's lane in the exported trace ("app",
  // "dispatcher", "handler", ...).  Idempotent; cheap enough to call from
  // every thread adoption.
  void SetThreadName(const char* name);

  // Root-span sampling for the local fast path: a *root* OpSpan in the
  // "kv" category (a put/get/delete that is not already inside a trace) is
  // recorded once every `n` per thread.  Everything with a parent — and
  // every root in the net/store categories, i.e. every RPC, handler,
  // flush and compaction — is always recorded, so remote operations keep
  // their full causal chain while micro-second local hits don't pay a
  // ~0.3us recording tax 8192-ring slots' worth of times per wrap.
  // n <= 1 records everything (PAPYRUSKV_TRACE_SAMPLE=1).
  void SetKvSampleEvery(uint32_t n) {
    kv_sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  uint32_t kv_sample_every() const {
    return kv_sample_every_.load(std::memory_order_relaxed);
  }

  // Records a complete span.  No-op while disabled.  Overwrites the oldest
  // event when full.  Only src/obs/ may call this directly (lint rule
  // trace-add): everything else goes through TraceSpan / OpSpan so spans
  // carry contexts consistently.
  void Add(std::string name, const char* cat, uint64_t ts_us,
           uint64_t dur_us);
  // Full-fidelity variant used by OpSpan (tid is filled in here).
  void AddEvent(TraceEvent ev);

  size_t size() const;
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Events in recording order (oldest first).
  std::vector<TraceEvent> Events() const;

  // Writes {"traceEvents": [...]} with pid = rank: thread-name metadata
  // ("ph":"M"), the dropped-event count as a counter ("ph":"C"), every
  // recorded span ("ph":"X", absolute timestamps, trace/span/parent ids in
  // args), and flow start/finish events ("ph":"s"/"f") for cross-rank
  // links.
  Status WriteChromeTrace(const std::string& path, int rank) const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> rank_salt_{0};
  std::atomic<uint64_t> id_seq_{0};
  std::atomic<uint32_t> kv_sample_every_{1};
  // Leaf lock: guards the ring and the thread-name registry; capacity_ is
  // set once in the constructor and read-only afterwards.
  mutable Mutex mu_{"trace_mu"};
  size_t capacity_;
  size_t next_ GUARDED_BY(mu_) = 0;  // ring write cursor
  bool wrapped_ GUARDED_BY(mu_) = false;
  std::vector<TraceEvent> ring_ GUARDED_BY(mu_);
  std::map<uint64_t, std::string> thread_names_ GUARDED_BY(mu_);
};

// The calling thread's trace buffer (installed per rank alongside the
// metrics registry); null when tracing is not set up.
TraceBuffer* CurrentTrace();
void SetCurrentTrace(TraceBuffer* t);

// RAII span: records [construction, destruction) into the buffer if the
// buffer exists and is enabled at construction time.  Plain span — no
// context allocation; use OpSpan for anything that is part of an
// operation's causal chain.
class TraceSpan {
 public:
  TraceSpan(TraceBuffer* buf, const char* cat, std::string name)
      : buf_(buf && buf->enabled() ? buf : nullptr) {
    if (buf_) {
      name_ = std::move(name);
      cat_ = cat;
      start_ = NowMicros();
    }
  }
  TraceSpan(const char* cat, std::string name)
      : TraceSpan(CurrentTrace(), cat, std::move(name)) {}
  ~TraceSpan() {
    if (buf_) buf_->Add(std::move(name_), cat_, start_, NowMicros() - start_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceBuffer* buf_;
  std::string name_;
  const char* cat_ = "";
  uint64_t start_ = 0;
};

// RAII operation span: the unit of causal tracing.
//
//   * On a thread with no active context it starts a new trace (the
//     papyruskv_put/get entry points are such roots).
//   * On a thread with an active context it records a child span.
//   * The remote-parent constructor adopts a context decoded off the wire
//     (the owner-side handler) and draws the incoming flow arrow.
//   * MarkFlowOut() on a caller-side RPC span draws the outgoing arrow;
//     context() is what the caller encodes into the request.
//
// While an OpSpan is open it is the thread's CurrentTraceContext(); the
// previous context is restored on destruction.  Inert (one TLS load and a
// branch) when tracing is disabled.
class OpSpan {
 public:
  // kScoped installs the span as the thread's current context for its
  // lifetime (strictly nested spans).  kDetached records a child of the
  // current context without becoming current — for overlapping siblings
  // (e.g. the dispatcher's in-flight chunks) that end out of order.
  enum Mode { kScoped, kDetached };

  OpSpan(const char* cat, std::string name, Mode mode = kScoped);
  OpSpan(const char* cat, std::string name, const TraceContext& remote_parent);
  ~OpSpan();
  OpSpan(const OpSpan&) = delete;
  OpSpan& operator=(const OpSpan&) = delete;

  // Marks this span as the source of a cross-rank flow (call on the
  // caller's RPC span before sending the request carrying context()).
  void MarkFlowOut() {
    if (buf_) {
      flow_ = TraceEvent::kFlowOut;
      flow_id_ = ctx_.span_id;
    }
  }
  // The context a request should carry: this span as the remote parent.
  TraceContext context() const { return ctx_; }
  bool active() const { return buf_ != nullptr; }

 private:
  void Begin(const char* cat, std::string&& name,
             const TraceContext& remote_parent, bool has_remote, Mode mode);

  TraceBuffer* buf_ = nullptr;
  std::string name_;
  const char* cat_ = "";
  uint64_t start_ = 0;
  TraceContext ctx_;        // this span's identity while open
  TraceContext saved_;      // previous TLS context, restored in dtor
  uint64_t parent_span_ = 0;
  uint64_t flow_id_ = 0;
  uint8_t flow_ = TraceEvent::kFlowNone;
  bool scoped_ = true;
};

// Records an already-measured interval as a child of the calling thread's
// current context (e.g. a queue-wait computed from a message's delivery
// timestamp after the fact).  No-op without an enabled buffer.
void RecordSpan(const char* cat, std::string name, uint64_t ts_us,
                uint64_t dur_us);

}  // namespace papyrus::obs
