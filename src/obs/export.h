// Snapshot export: JSON dumps, the compact wire form used for the rank-0
// roll-up (allgather + merge), and a small JSON reader so tools and tests
// can consume the dumps without an external parser.
//
// Dump format (stats-v1):
//   {
//     "papyruskv": "stats-v1",
//     "rank": 0, "nranks": 4, "aggregated": false,
//     "counters":   { "kv.puts_local": 123, ... },
//     "gauges":     { "net.flush_queue_depth": 0, ... },
//     "histograms": {
//       "kv.put_us": { "count": N, "sum": S, "min": m, "max": M,
//                      "mean": x, "p50": x, "p95": x, "p99": x,
//                      "buckets": [[upper_bound, count], ...] }, ... }
//   }
// The buckets array carries only non-empty buckets, so a parsed dump can be
// re-merged or re-queried for other percentiles.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace papyrus::obs {

struct StatsMeta {
  int rank = 0;
  int nranks = 1;
  bool aggregated = false;
};

// ---- JSON dump -------------------------------------------------------------

std::string SnapshotToJson(const Snapshot& snap, const StatsMeta& meta);

// Per-rank dump path: inserts ".rank<k>" before a trailing ".json", else
// appends it ("/tmp/stats.json" -> "/tmp/stats.rank3.json").
std::string StatsPathForRank(const std::string& path, int rank);

// Writes `contents` to `path` with plain stdio.  Stats/trace dumps are
// host-side diagnostics, deliberately outside the simulated NVM.
Status WriteTextFile(const std::string& path, const std::string& contents);

// ---- Roll-up wire form -----------------------------------------------------

// Compact line-oriented serialization for shipping a snapshot through
// Allgather; lossless (full bucket vectors).
std::string SerializeSnapshot(const Snapshot& snap);
bool DeserializeSnapshot(const std::string& data, Snapshot* out);

// ---- Minimal JSON reader ---------------------------------------------------

// Just enough JSON to read back our own dumps (and Chrome trace files):
// objects, arrays, strings with escapes, doubles, bools, null.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

// Parses a complete JSON document (trailing whitespace allowed).
bool ParseJson(const std::string& text, JsonValue* out);

// Parses a stats-v1 dump back into a Snapshot (+ meta).  Fails on anything
// that is not a stats dump.
bool ParseStatsJson(const std::string& text, Snapshot* out, StatsMeta* meta);

}  // namespace papyrus::obs
