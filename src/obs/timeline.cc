#include "obs/timeline.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/timer.h"
#include "obs/export.h"

namespace papyrus::obs {

namespace {

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

void AppendNameArray(std::string* out, const char* key,
                     const std::vector<std::string>& names) {
  *out += "\"";
  *out += key;
  *out += "\": [";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i) *out += ", ";
    *out += "\"";
    AppendEscaped(out, names[i]);
    *out += "\"";
  }
  *out += "]";
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

bool ReadNames(const JsonValue* v, std::vector<std::string>* out) {
  if (!v || v->type != JsonValue::Type::kArray) return false;
  for (const JsonValue& e : v->array) {
    if (e.type != JsonValue::Type::kString) return false;
    out->push_back(e.str);
  }
  return true;
}

uint64_t NumU64(const JsonValue* v) {
  return v && v->type == JsonValue::Type::kNumber
             ? static_cast<uint64_t>(v->number)
             : 0;
}

int64_t NumI64(const JsonValue* v) {
  return v && v->type == JsonValue::Type::kNumber
             ? static_cast<int64_t>(v->number)
             : 0;
}

// The sample payload rendered inline in both the per-rank and the merged
// documents: "c"/"g"/"h" keyed series in schema order.
void AppendSampleBody(std::string* out, const TimelineSample& s) {
  *out += "\"t_us\": ";
  AppendU64(out, s.t_us);
  *out += ", \"dt_us\": ";
  AppendU64(out, s.dt_us);
  *out += ", \"c\": [";
  for (size_t i = 0; i < s.counters.size(); ++i) {
    if (i) *out += ", ";
    AppendU64(out, s.counters[i]);
  }
  *out += "], \"g\": [";
  for (size_t i = 0; i < s.gauges.size(); ++i) {
    if (i) *out += ", ";
    AppendI64(out, s.gauges[i]);
  }
  *out += "], \"h\": [";
  for (size_t i = 0; i < s.hists.size(); ++i) {
    if (i) *out += ", ";
    *out += "[";
    AppendU64(out, s.hists[i].count);
    *out += ", ";
    AppendU64(out, s.hists[i].p50);
    *out += ", ";
    AppendU64(out, s.hists[i].p99);
    *out += "]";
  }
  *out += "]";
}

bool ParseSampleBody(const JsonValue& v, TimelineSample* s) {
  s->t_us = NumU64(v.Find("t_us"));
  s->dt_us = NumU64(v.Find("dt_us"));
  const JsonValue* c = v.Find("c");
  const JsonValue* g = v.Find("g");
  const JsonValue* h = v.Find("h");
  if (!c || !g || !h) return false;
  for (const JsonValue& e : c->array) {
    s->counters.push_back(static_cast<uint64_t>(e.number));
  }
  for (const JsonValue& e : g->array) {
    s->gauges.push_back(static_cast<int64_t>(e.number));
  }
  for (const JsonValue& e : h->array) {
    if (e.array.size() != 3) return false;
    TimelineSample::HistWindow w;
    w.count = static_cast<uint64_t>(e.array[0].number);
    w.p50 = static_cast<uint64_t>(e.array[1].number);
    w.p99 = static_cast<uint64_t>(e.array[2].number);
    s->hists.push_back(w);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

TimelineSchema TimelineSchema::Default() {
  TimelineSchema s;
  s.counters = {
      "async.frames",     "async.op_errors", "fault.rank_crash",
      "net.peer.suspects", "net.req.retries", "net.req.timeouts",
      "repl.appends",     "repl.degraded",   "repl.resyncs",
  };
  s.gauges = {
      "async.inflight",          "async.queue_depth",
      "net.flush_queue_depth",   "net.migration_queue_depth",
      "repl.degraded_now",       "repl.lag_ops",
  };
  s.histograms = {
      "async.get_op_us", "async.put_op_us", "kv.delete_us",
      "kv.get_us",       "kv.put_us",       "net.handler_service_us",
  };
  return s;
}

int SeriesIndex(const std::vector<std::string>& names, std::string_view name) {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

// ---------------------------------------------------------------------------
// TimelineSampler
// ---------------------------------------------------------------------------

TimelineSampler::~TimelineSampler() { Stop(); }

void TimelineSampler::Configure(TimelineSchema schema, uint64_t interval_us,
                                size_t capacity) {
  schema_ = std::move(schema);
  interval_us_ = interval_us;
  capacity_ = std::max<size_t>(capacity, 2);
  counters_.clear();
  gauges_.clear();
  hists_.clear();
  for (const std::string& n : schema_.counters) {
    counters_.push_back(&reg_->GetCounter(n));
  }
  for (const std::string& n : schema_.gauges) {
    gauges_.push_back(&reg_->GetGauge(n));
  }
  for (const std::string& n : schema_.histograms) {
    hists_.push_back(&reg_->GetHistogram(n));
  }
  prev_counters_.assign(counters_.size(), 0);
  prev_hists_.assign(hists_.size(), HistogramData{});
  prev_t_us_ = NowMicros();
  stride_ = kSlotHeader + counters_.size() + gauges_.size() + 3 * hists_.size();
  ring_ = std::make_unique<std::atomic<uint64_t>[]>(capacity_ * stride_);
  next_.store(0, std::memory_order_relaxed);
}

void TimelineSampler::Start(std::function<void()> on_thread_start) {
  if (!enabled() || running_) return;
  on_thread_start_ = std::move(on_thread_start);
  {
    MutexLock lock(&mu_);
    stop_ = false;
  }
  prev_t_us_ = NowMicros();
  running_ = true;
  thread_ = std::thread([this] { SamplerLoop(); });
}

void TimelineSampler::Stop() {
  if (!running_) return;
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  thread_.join();
  running_ = false;
  // Tail flush: the partial window since the last tick carries the run's
  // final operations — without it a run shorter than one interval would
  // export an empty series.
  SampleOnce();
}

void TimelineSampler::SamplerLoop() {
  if (on_thread_start_) on_thread_start_();
  for (;;) {
    {
      MutexLock lock(&mu_);
      // Bounded wait only (CondVar::WaitForMicros): the analyzer walks
      // SampleOnce, and this loop holds mu_ solely for the interval wait —
      // never across a tick.
      if (!stop_) cv_.WaitForMicros(&mu_, interval_us_);
      if (stop_) return;
    }
    SampleOnce();
  }
}

void TimelineSampler::SampleOnce() {
  const uint64_t now = NowMicros();
  const uint64_t dt = now >= prev_t_us_ ? now - prev_t_us_ : 0;
  const uint64_t ticket = next_.load(std::memory_order_relaxed);
  std::atomic<uint64_t>* slot = &ring_[(ticket % capacity_) * stride_];
  slot[0].store(0, std::memory_order_release);  // invalidate for readers
  slot[1].store(now, std::memory_order_relaxed);
  slot[2].store(dt, std::memory_order_relaxed);
  size_t w = kSlotHeader;
  for (size_t i = 0; i < counters_.size(); ++i) {
    const uint64_t cur = counters_[i]->Value();
    const uint64_t prev = prev_counters_[i];
    // Monotone-safe against papyruskv_stats_reset: a counter observed
    // below its baseline was restarted at zero mid-window, so the delta
    // restarts too instead of underflowing into a 2^64 spike.
    slot[w++].store(cur >= prev ? cur - prev : cur,
                    std::memory_order_relaxed);
    prev_counters_[i] = cur;
  }
  for (size_t i = 0; i < gauges_.size(); ++i) {
    slot[w++].store(static_cast<uint64_t>(gauges_[i]->Value()),
                    std::memory_order_relaxed);
  }
  for (size_t i = 0; i < hists_.size(); ++i) {
    const HistogramData cur = hists_[i]->Snapshot();
    HistogramData& prev = prev_hists_[i];
    HistogramData win;
    size_t top = 0;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      const uint64_t d = cur.buckets[b] >= prev.buckets[b]
                             ? cur.buckets[b] - prev.buckets[b]
                             : cur.buckets[b];
      win.buckets[b] = d;
      win.count += d;
      if (d) top = b;
    }
    // The window min/max are not tracked exactly; bucket edges bound the
    // interpolation instead (min 0 disables the lower clamp).
    win.min = 0;
    win.max = HistogramBucketUpper(top);
    slot[w++].store(win.count, std::memory_order_relaxed);
    slot[w++].store(
        win.count ? static_cast<uint64_t>(win.Percentile(50)) : 0,
        std::memory_order_relaxed);
    slot[w++].store(
        win.count ? static_cast<uint64_t>(win.Percentile(99)) : 0,
        std::memory_order_relaxed);
    prev = cur;
  }
  prev_t_us_ = now;
  slot[0].store(ticket + 1, std::memory_order_release);  // publish
  next_.store(ticket + 1, std::memory_order_release);
}

bool TimelineSampler::ReadSlot(uint64_t ticket, TimelineSample* out) const {
  const std::atomic<uint64_t>* slot = &ring_[(ticket % capacity_) * stride_];
  if (slot[0].load(std::memory_order_acquire) != ticket + 1) return false;
  out->seq = ticket + 1;
  out->t_us = slot[1].load(std::memory_order_relaxed);
  out->dt_us = slot[2].load(std::memory_order_relaxed);
  size_t w = kSlotHeader;
  out->counters.resize(counters_.size());
  for (size_t i = 0; i < counters_.size(); ++i) {
    out->counters[i] = slot[w++].load(std::memory_order_relaxed);
  }
  out->gauges.resize(gauges_.size());
  for (size_t i = 0; i < gauges_.size(); ++i) {
    out->gauges[i] =
        static_cast<int64_t>(slot[w++].load(std::memory_order_relaxed));
  }
  out->hists.resize(hists_.size());
  for (size_t i = 0; i < hists_.size(); ++i) {
    out->hists[i].count = slot[w++].load(std::memory_order_relaxed);
    out->hists[i].p50 = slot[w++].load(std::memory_order_relaxed);
    out->hists[i].p99 = slot[w++].load(std::memory_order_relaxed);
  }
  // A wrap during the reads above rewrote the slot; the seq re-check
  // detects the tear (same protocol as the flight recorder).
  return slot[0].load(std::memory_order_acquire) == ticket + 1;
}

bool TimelineSampler::Latest(TimelineSample* out) const {
  const uint64_t next = next_.load(std::memory_order_acquire);
  if (next == 0 || !ring_) return false;
  return ReadSlot(next - 1, out);
}

std::vector<TimelineSample> TimelineSampler::Samples() const {
  std::vector<TimelineSample> out;
  if (!ring_) return out;
  const uint64_t next = next_.load(std::memory_order_acquire);
  const uint64_t first = next > capacity_ ? next - capacity_ : 0;
  for (uint64_t t = first; t < next; ++t) {
    TimelineSample s;
    if (ReadSlot(t, &s)) out.push_back(std::move(s));
  }
  return out;
}

TimelineDoc TimelineSampler::Doc(int rank, int nranks) const {
  TimelineDoc d;
  d.rank = rank;
  d.nranks = nranks;
  d.interval_us = interval_us_;
  d.samples_taken = samples_taken();
  d.dropped = d.samples_taken > capacity_ ? d.samples_taken - capacity_ : 0;
  d.schema = schema_;
  d.samples = Samples();
  return d;
}

// ---------------------------------------------------------------------------
// timeline-v1 JSON
// ---------------------------------------------------------------------------

std::string TimelineDocToJson(const TimelineDoc& doc) {
  std::string out;
  out.reserve(256 + doc.samples.size() * (16 * doc.schema.TotalSeries() + 64));
  char buf[160];
  snprintf(buf, sizeof(buf),
           "{\"papyruskv\": \"timeline-v1\", \"rank\": %d, \"nranks\": %d,\n"
           " \"interval_us\": %" PRIu64 ", \"samples_taken\": %" PRIu64
           ", \"dropped\": %" PRIu64 ",\n ",
           doc.rank, doc.nranks, doc.interval_us, doc.samples_taken,
           doc.dropped);
  out += buf;
  AppendNameArray(&out, "counters", doc.schema.counters);
  out += ",\n ";
  AppendNameArray(&out, "gauges", doc.schema.gauges);
  out += ",\n ";
  AppendNameArray(&out, "histograms", doc.schema.histograms);
  out += ",\n \"samples\": [";
  for (size_t i = 0; i < doc.samples.size(); ++i) {
    out += i ? ",\n  {" : "\n  {";
    AppendSampleBody(&out, doc.samples[i]);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool ParseTimelineJson(const std::string& text, TimelineDoc* out) {
  JsonValue v;
  if (!ParseJson(text, &v)) return false;
  const JsonValue* magic = v.Find("papyruskv");
  if (!magic || magic->str != "timeline-v1") return false;
  out->rank = static_cast<int>(NumI64(v.Find("rank")));
  out->nranks = static_cast<int>(NumI64(v.Find("nranks")));
  out->interval_us = NumU64(v.Find("interval_us"));
  out->samples_taken = NumU64(v.Find("samples_taken"));
  out->dropped = NumU64(v.Find("dropped"));
  if (!ReadNames(v.Find("counters"), &out->schema.counters) ||
      !ReadNames(v.Find("gauges"), &out->schema.gauges) ||
      !ReadNames(v.Find("histograms"), &out->schema.histograms)) {
    return false;
  }
  const JsonValue* samples = v.Find("samples");
  if (!samples || samples->type != JsonValue::Type::kArray) return false;
  uint64_t seq = 0;
  for (const JsonValue& e : samples->array) {
    TimelineSample s;
    if (!ParseSampleBody(e, &s)) return false;
    if (s.counters.size() != out->schema.counters.size() ||
        s.gauges.size() != out->schema.gauges.size() ||
        s.hists.size() != out->schema.histograms.size()) {
      return false;
    }
    s.seq = ++seq;
    out->samples.push_back(std::move(s));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Flight overlay
// ---------------------------------------------------------------------------

bool ParseFlightEvents(const std::string& text,
                       std::vector<TimelineEvent>* out) {
  JsonValue v;
  if (!ParseJson(text, &v)) return false;
  const JsonValue* magic = v.Find("papyruskv");
  if (!magic || magic->str != "flight-v1") return false;
  const int rank = static_cast<int>(NumI64(v.Find("rank")));
  const JsonValue* events = v.Find("events");
  if (!events || events->type != JsonValue::Type::kArray) return false;
  for (const JsonValue& e : events->array) {
    TimelineEvent ev;
    ev.rank = rank;
    ev.ts_us = NumU64(e.Find("ts_us"));
    const JsonValue* kind = e.Find("kind");
    const JsonValue* what = e.Find("what");
    ev.kind = kind ? kind->str : "";
    ev.what = what ? what->str : "";
    ev.a = NumI64(e.Find("a"));
    ev.b = NumI64(e.Find("b"));
    out->push_back(std::move(ev));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

namespace {

bool SchemaEquals(const TimelineSchema& a, const TimelineSchema& b) {
  return a.counters == b.counters && a.gauges == b.gauges &&
         a.histograms == b.histograms;
}

// Two samples landing in one grid window (drifted sampler): deltas sum,
// the later sample's gauge levels win, histogram percentiles combine
// count-weighted.
void CombineCells(TimelineSample* a, const TimelineSample& b) {
  const bool b_later = b.t_us >= a->t_us;
  for (size_t i = 0; i < a->counters.size() && i < b.counters.size(); ++i) {
    a->counters[i] += b.counters[i];
  }
  if (b_later) a->gauges = b.gauges;
  for (size_t i = 0; i < a->hists.size() && i < b.hists.size(); ++i) {
    TimelineSample::HistWindow& ha = a->hists[i];
    const TimelineSample::HistWindow& hb = b.hists[i];
    const uint64_t total = ha.count + hb.count;
    if (total) {
      ha.p50 = (ha.p50 * ha.count + hb.p50 * hb.count) / total;
      ha.p99 = (ha.p99 * ha.count + hb.p99 * hb.count) / total;
    }
    ha.count = total;
  }
  a->dt_us += b.dt_us;
  a->t_us = std::max(a->t_us, b.t_us);
}

// The lanes table plots op throughput: the kv.* histogram windows when the
// schema has them, every histogram otherwise.
std::vector<size_t> RateHistIndices(const TimelineSchema& schema) {
  std::vector<size_t> idx;
  for (size_t i = 0; i < schema.histograms.size(); ++i) {
    if (schema.histograms[i].rfind("kv.", 0) == 0) idx.push_back(i);
  }
  if (idx.empty()) {
    for (size_t i = 0; i < schema.histograms.size(); ++i) idx.push_back(i);
  }
  return idx;
}

}  // namespace

MergedTimeline MergeTimelines(const std::vector<TimelineDoc>& docs,
                              std::vector<TimelineEvent> events) {
  MergedTimeline m;
  std::sort(events.begin(), events.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              return a.ts_us != b.ts_us ? a.ts_us < b.ts_us
                                        : a.rank < b.rank;
            });
  m.events = std::move(events);
  if (docs.empty()) return m;
  m.schema = docs[0].schema;

  uint64_t t0 = ~uint64_t{0};
  uint64_t w = 0;
  for (const TimelineDoc& d : docs) {
    if (!SchemaEquals(d.schema, m.schema)) continue;
    w = std::max(w, d.interval_us);
    for (const TimelineSample& s : d.samples) {
      t0 = std::min(t0, s.t_us >= s.dt_us ? s.t_us - s.dt_us : 0);
    }
  }
  if (t0 == ~uint64_t{0}) t0 = 0;
  if (w == 0) w = 1;
  m.t0_us = t0;
  m.window_us = w;

  for (const TimelineDoc& d : docs) {
    if (!SchemaEquals(d.schema, m.schema)) continue;  // mismatched run
    MergedTimeline::Lane lane;
    lane.rank = d.rank;
    for (const TimelineSample& s : d.samples) {
      // Windows are keyed by the sample's midpoint so jitter around a
      // boundary does not shift a full window of ops into its neighbor.
      const uint64_t mid = s.t_us - s.dt_us / 2;
      const size_t win = mid > t0 ? static_cast<size_t>((mid - t0) / w) : 0;
      if (win >= lane.cells.size()) {
        lane.cells.resize(win + 1);
        lane.present.resize(win + 1, 0);
      }
      if (lane.present[win]) {
        CombineCells(&lane.cells[win], s);
      } else {
        lane.cells[win] = s;
        lane.present[win] = 1;
      }
    }
    m.windows = std::max(m.windows, lane.cells.size());
    m.lanes.push_back(std::move(lane));
  }
  for (MergedTimeline::Lane& lane : m.lanes) {
    lane.cells.resize(m.windows);
    lane.present.resize(m.windows, 0);
  }
  std::sort(m.lanes.begin(), m.lanes.end(),
            [](const MergedTimeline::Lane& a, const MergedTimeline::Lane& b) {
              return a.rank < b.rank;
            });
  return m;
}

std::string MergedTimelineToJson(const MergedTimeline& m) {
  std::string out;
  char buf[160];
  snprintf(buf, sizeof(buf),
           "{\"papyruskv\": \"timeline-merged-v1\", \"nranks\": %zu,\n"
           " \"t0_us\": %" PRIu64 ", \"window_us\": %" PRIu64
           ", \"windows\": %zu,\n ",
           m.lanes.size(), m.t0_us, m.window_us, m.windows);
  out += buf;
  AppendNameArray(&out, "counters", m.schema.counters);
  out += ",\n ";
  AppendNameArray(&out, "gauges", m.schema.gauges);
  out += ",\n ";
  AppendNameArray(&out, "histograms", m.schema.histograms);
  out += ",\n \"lanes\": [";
  for (size_t li = 0; li < m.lanes.size(); ++li) {
    const MergedTimeline::Lane& lane = m.lanes[li];
    out += li ? ",\n  {" : "\n  {";
    snprintf(buf, sizeof(buf), "\"rank\": %d, \"samples\": [", lane.rank);
    out += buf;
    bool first = true;
    for (size_t wi = 0; wi < lane.cells.size(); ++wi) {
      if (!lane.present[wi]) continue;
      out += first ? "\n   {" : ",\n   {";
      first = false;
      snprintf(buf, sizeof(buf), "\"w\": %zu, ", wi);
      out += buf;
      AppendSampleBody(&out, lane.cells[wi]);
      out += "}";
    }
    out += first ? "]}" : "\n  ]}";
  }
  out += "\n ],\n \"events\": [";
  for (size_t i = 0; i < m.events.size(); ++i) {
    const TimelineEvent& e = m.events[i];
    const uint64_t win =
        e.ts_us > m.t0_us ? (e.ts_us - m.t0_us) / m.window_us : 0;
    out += i ? ",\n  {" : "\n  {";
    snprintf(buf, sizeof(buf),
             "\"w\": %" PRIu64 ", \"rank\": %d, \"ts_us\": %" PRIu64
             ", \"kind\": \"",
             win, e.rank, e.ts_us);
    out += buf;
    AppendEscaped(&out, e.kind);
    out += "\", \"what\": \"";
    AppendEscaped(&out, e.what);
    out += "\", \"a\": ";
    AppendI64(&out, e.a);
    out += ", \"b\": ";
    AppendI64(&out, e.b);
    out += "}";
  }
  out += m.events.empty() ? "]}\n" : "\n ]}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::vector<double> WindowOpsPerSec(const MergedTimeline& m) {
  std::vector<double> rates(m.windows, 0.0);
  const std::vector<size_t> idx = RateHistIndices(m.schema);
  for (const MergedTimeline::Lane& lane : m.lanes) {
    for (size_t w = 0; w < m.windows; ++w) {
      if (!lane.present[w] || lane.cells[w].dt_us == 0) continue;
      uint64_t ops = 0;
      for (size_t i : idx) ops += lane.cells[w].hists[i].count;
      rates[w] += static_cast<double>(ops) * 1e6 /
                  static_cast<double>(lane.cells[w].dt_us);
    }
  }
  return rates;
}

std::string RenderTimelineTables(const MergedTimeline& m) {
  std::string out;
  char buf[256];
  snprintf(buf, sizeof(buf),
           "merged timeline: %zu rank(s), %.1f ms windows x %zu\n",
           m.lanes.size(), static_cast<double>(m.window_us) / 1e3, m.windows);
  out += buf;
  if (m.windows == 0 || m.lanes.empty()) {
    out += "(no samples — was PAPYRUSKV_TIMELINE_MS set?)\n";
    return out;
  }
  const std::vector<size_t> idx = RateHistIndices(m.schema);

  // Events bucketed into windows (clamped to the grid).
  std::vector<std::string> win_events(m.windows);
  for (const TimelineEvent& e : m.events) {
    uint64_t w = e.ts_us > m.t0_us ? (e.ts_us - m.t0_us) / m.window_us : 0;
    if (w >= m.windows) w = m.windows - 1;
    std::string& dst = win_events[w];
    if (!dst.empty()) dst += " ";
    snprintf(buf, sizeof(buf), "r%d:%s", e.rank, e.kind.c_str());
    dst += buf;
    if (e.b != 0) {
      snprintf(buf, sizeof(buf), "(%lld,%lld)", static_cast<long long>(e.a),
               static_cast<long long>(e.b));
      dst += buf;
    } else if (e.a != 0) {
      snprintf(buf, sizeof(buf), "(%lld)", static_cast<long long>(e.a));
      dst += buf;
    }
  }

  // Lane table: per-rank kop/s over the rate histograms, aggregate
  // percentiles count-weighted across ranks (approximate: the ring stores
  // per-window percentiles, not buckets).
  out += "\n  win    t(ms)";
  for (const MergedTimeline::Lane& lane : m.lanes) {
    snprintf(buf, sizeof(buf), "  r%-2d kop/s", lane.rank);
    out += buf;
  }
  out += "      total   ~p50us   ~p99us  events\n";
  for (size_t w = 0; w < m.windows; ++w) {
    snprintf(buf, sizeof(buf), "%5zu %8.1f",
             w, static_cast<double>(w * m.window_us) / 1e3);
    out += buf;
    double total = 0;
    uint64_t ops_total = 0;
    double p50_acc = 0, p99_acc = 0;
    for (const MergedTimeline::Lane& lane : m.lanes) {
      if (!lane.present[w] || lane.cells[w].dt_us == 0) {
        snprintf(buf, sizeof(buf), "  %9s", "-");
        out += buf;
        continue;
      }
      uint64_t ops = 0;
      for (size_t i : idx) {
        const TimelineSample::HistWindow& h = lane.cells[w].hists[i];
        ops += h.count;
        p50_acc += static_cast<double>(h.p50) * static_cast<double>(h.count);
        p99_acc += static_cast<double>(h.p99) * static_cast<double>(h.count);
      }
      ops_total += ops;
      const double rate = static_cast<double>(ops) * 1e6 /
                          static_cast<double>(lane.cells[w].dt_us) / 1e3;
      total += rate;
      snprintf(buf, sizeof(buf), "  %9.1f", rate);
      out += buf;
    }
    const double denom = ops_total ? static_cast<double>(ops_total) : 1;
    snprintf(buf, sizeof(buf), "  %9.1f %8.0f %8.0f  %s\n", total,
             p50_acc / denom, p99_acc / denom, win_events[w].c_str());
    out += buf;
  }

  // Transient summary per series: total movement, worst window, where —
  // the numbers a bench asserts a bound on.
  bool header = false;
  for (size_t ci = 0; ci < m.schema.counters.size(); ++ci) {
    uint64_t total = 0, worst = 0;
    size_t worst_w = 0;
    for (size_t w = 0; w < m.windows; ++w) {
      uint64_t win = 0;
      for (const MergedTimeline::Lane& lane : m.lanes) {
        if (lane.present[w]) win += lane.cells[w].counters[ci];
      }
      total += win;
      if (win > worst) {
        worst = win;
        worst_w = w;
      }
    }
    if (!total) continue;
    if (!header) {
      out += "\n  counter deltas (summed over ranks)      total    max/win"
             "   at win\n";
      header = true;
    }
    snprintf(buf, sizeof(buf), "  %-38s %7" PRIu64 " %10" PRIu64 " %8zu\n",
             m.schema.counters[ci].c_str(), total, worst, worst_w);
    out += buf;
  }
  header = false;
  for (size_t gi = 0; gi < m.schema.gauges.size(); ++gi) {
    int64_t peak = 0;
    size_t peak_w = 0;
    bool any = false;
    for (size_t w = 0; w < m.windows; ++w) {
      for (const MergedTimeline::Lane& lane : m.lanes) {
        if (!lane.present[w]) continue;
        const int64_t v = lane.cells[w].gauges[gi];
        if (v != 0) any = true;
        if (v > peak) {
          peak = v;
          peak_w = w;
        }
      }
    }
    if (!any) continue;
    if (!header) {
      out += "\n  gauge peaks (max over ranks)                      peak"
             "   at win\n";
      header = true;
    }
    snprintf(buf, sizeof(buf), "  %-38s %14lld %8zu\n",
             m.schema.gauges[gi].c_str(), static_cast<long long>(peak),
             peak_w);
    out += buf;
  }

  if (!m.events.empty()) {
    out += "\n  events:\n";
    for (const TimelineEvent& e : m.events) {
      snprintf(buf, sizeof(buf),
               "  %+10.1fms  r%d %-10s %-14s a=%lld b=%lld\n",
               (static_cast<double>(e.ts_us) -
                static_cast<double>(m.t0_us)) / 1e3,
               e.rank, e.kind.c_str(), e.what.c_str(),
               static_cast<long long>(e.a), static_cast<long long>(e.b));
      out += buf;
    }
  }
  return out;
}

}  // namespace papyrus::obs
