// Continuous time-series telemetry (DESIGN.md §13): a per-rank background
// sampler that turns the cumulative metrics registry into windowed series —
// counter deltas, gauge levels, and per-window log2-histogram percentiles —
// published into a lock-free ring and exported as timeline-v1 JSON next to
// the PAPYRUSKV_STATS dumps.
//
// Design constraints, in order:
//   1. The sampling tick (SampleOnce) must be lock-free: every tracked
//      metric is resolved to its raw pointer once, in Configure/Start (the
//      only place the registry mutex is touched), and a tick reads only
//      relaxed atomics and writes only ring-slot atomics.  papyrus_analyze
//      walks the call graph from SampleOnce and rejects anything blocking
//      or lock-holding on the path, the same way it polices ProcessCycle.
//   2. Deltas must be monotone-safe against papyruskv_stats_reset: a
//      counter observed below its previous value restarts the baseline at
//      zero (delta = current) instead of underflowing into a 2^64 spike;
//      histogram windows clamp per bucket the same way.
//   3. Ranks are emulated as threads sharing one steady clock (NowMicros),
//      so per-rank timelines merge into aligned lanes without rebasing —
//      the same property --trace-merge exploits.
//
// The ring reuses the flight recorder's seq-validation slot protocol
// (obs/flight.h): the writer clears seq, stores the payload, then publishes
// seq with release order; a reader racing a wrap sees the mismatch and
// skips the torn slot.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace papyrus::obs {

// ---------------------------------------------------------------------------
// Schema: which metrics a sampler tracks.  Fixed at Configure() time so
// every ring slot has the same shape and the exported series align.
// ---------------------------------------------------------------------------
struct TimelineSchema {
  std::vector<std::string> counters;    // exported as per-window deltas
  std::vector<std::string> gauges;      // exported as point-in-time levels
  std::vector<std::string> histograms;  // exported as (count, p50, p99)

  // The store-wide default set: op latency, pipeline depth/backpressure,
  // replication lag/degraded, and the fault-path counters — the signals
  // the failover and (future) elastic-membership benches bound.
  static TimelineSchema Default();

  size_t TotalSeries() const {
    return counters.size() + gauges.size() + histograms.size();
  }
};

// Index of `name` in `names`, or -1.
int SeriesIndex(const std::vector<std::string>& names, std::string_view name);

// One sampled window, decoded from a ring slot.
struct TimelineSample {
  uint64_t seq = 0;    // 1-based sample ticket
  uint64_t t_us = 0;   // window END on the shared steady clock
  uint64_t dt_us = 0;  // window length (t_us - previous sample's t_us)
  struct HistWindow {
    uint64_t count = 0;  // recordings inside the window
    uint64_t p50 = 0;    // percentile of the window's bucket deltas, us
    uint64_t p99 = 0;
  };
  std::vector<uint64_t> counters;  // deltas, schema.counters order
  std::vector<int64_t> gauges;     // levels, schema.gauges order
  std::vector<HistWindow> hists;   // schema.histograms order
};

// A parsed (or about-to-be-rendered) timeline-v1 document.
struct TimelineDoc {
  int rank = 0;
  int nranks = 1;
  uint64_t interval_us = 0;
  uint64_t samples_taken = 0;  // total ever sampled (incl. overwritten)
  uint64_t dropped = 0;        // overwritten by ring wrap
  TimelineSchema schema;
  std::vector<TimelineSample> samples;  // oldest first
};

std::string TimelineDocToJson(const TimelineDoc& doc);
// Fails on anything that is not a timeline-v1 document.
bool ParseTimelineJson(const std::string& text, TimelineDoc* out);

// ---------------------------------------------------------------------------
// TimelineSampler
// ---------------------------------------------------------------------------
class TimelineSampler {
 public:
  explicit TimelineSampler(Registry* reg) : reg_(reg) {}
  ~TimelineSampler();
  TimelineSampler(const TimelineSampler&) = delete;
  TimelineSampler& operator=(const TimelineSampler&) = delete;

  // Resolves every tracked metric to its raw pointer (creating it if
  // needed) and sizes the ring.  Must be called before Start, from a
  // single thread.  interval_us == 0 leaves the sampler disabled.
  void Configure(TimelineSchema schema, uint64_t interval_us,
                 size_t capacity = kDefaultCapacity);

  // Launches the sampler thread (no-op when disabled).  on_thread_start
  // runs first on the new thread — the runtime uses it to adopt the rank's
  // observability context.
  void Start(std::function<void()> on_thread_start = nullptr);
  // Takes one final sample (so short runs still export a tail window) and
  // joins the thread.  Idempotent.
  void Stop();

  bool enabled() const { return interval_us_ > 0; }
  uint64_t interval_us() const { return interval_us_; }
  const TimelineSchema& schema() const { return schema_; }
  uint64_t samples_taken() const {
    return next_.load(std::memory_order_relaxed);
  }

  // Most recent published sample; false when none yet.  Lock-free.
  bool Latest(TimelineSample* out) const;
  // Surviving window, oldest first, torn slots skipped.  Lock-free.
  std::vector<TimelineSample> Samples() const;
  // The full document for this rank (live: callable while sampling).
  TimelineDoc Doc(int rank, int nranks) const;

  static constexpr size_t kDefaultCapacity = 4096;

 private:
  void SamplerLoop();
  // One tick: read every tracked metric, compute monotone-safe deltas
  // against prev_*, publish one ring slot.  Lock-free by construction —
  // enforced by papyrus_analyze (pipeline-blocking, SAMPLER_ROOTS).
  void SampleOnce();
  bool ReadSlot(uint64_t ticket, TimelineSample* out) const;

  Registry* reg_;
  TimelineSchema schema_;
  uint64_t interval_us_ = 0;
  size_t capacity_ = 0;

  // Resolved once in Configure; the registry never deallocates metrics.
  std::vector<Counter*> counters_;
  std::vector<Gauge*> gauges_;
  std::vector<Histogram*> hists_;

  // Sampler-thread-only delta baselines (also touched by Stop after the
  // join, and by Configure before Start — never concurrently).
  std::vector<uint64_t> prev_counters_;
  std::vector<HistogramData> prev_hists_;
  uint64_t prev_t_us_ = 0;

  // Ring: capacity_ slots of kSlotHeader + TotalSeries-dependent payload
  // words, all atomics.  Slot word 0 is the seq (0 = never written).
  static constexpr size_t kSlotHeader = 3;  // seq, t_us, dt_us
  size_t stride_ = 0;                       // words per slot
  std::unique_ptr<std::atomic<uint64_t>[]> ring_;
  std::atomic<uint64_t> next_{0};  // sample tickets claimed

  std::function<void()> on_thread_start_;
  std::thread thread_;
  Mutex mu_{"timeline_mu"};
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  bool running_ = false;  // Start/Stop caller-side state, single-threaded
};

// ---------------------------------------------------------------------------
// Merging: per-rank documents -> aligned lanes on the shared steady clock.
// ---------------------------------------------------------------------------

// A flight-recorder event lifted onto the timeline (the overlay).
struct TimelineEvent {
  int rank = 0;
  uint64_t ts_us = 0;
  std::string kind;  // "crash", "promote", "degraded", ...
  std::string what;
  int64_t a = 0;
  int64_t b = 0;
};

// Pulls the events out of a flight-v1 dump.  Kinds worth overlaying are
// the caller's policy (see kOverlayKinds in timeline.cc).
bool ParseFlightEvents(const std::string& text, std::vector<TimelineEvent>* out);

struct MergedTimeline {
  uint64_t t0_us = 0;      // left edge of window 0 (min over all samples)
  uint64_t window_us = 0;  // grid width (max sampler interval)
  size_t windows = 0;
  TimelineSchema schema;
  struct Lane {
    int rank = 0;
    // One cell per grid window; present[w] == 0 marks a gap (rank idle,
    // dead, or its sampler missed the window).
    std::vector<TimelineSample> cells;
    std::vector<char> present;
  };
  std::vector<Lane> lanes;            // sorted by rank
  std::vector<TimelineEvent> events;  // ts-sorted, possibly empty
};

// Aligns every document's samples onto one grid.  Documents whose schema
// differs from docs[0] are skipped (mismatched runs cannot merge).  Events
// outside [t0, end) clamp to the nearest window at render time.
MergedTimeline MergeTimelines(const std::vector<TimelineDoc>& docs,
                              std::vector<TimelineEvent> events = {});

// Versioned machine-readable merge (timeline-merged-v1) — byte-stable for
// a given input (golden-tested).
std::string MergedTimelineToJson(const MergedTimeline& m);

// Human tables: per-rank throughput lanes (kop/s over the kv.* histogram
// windows) with total, approximate aggregate p50/p99, and the flight-event
// overlay, followed by a per-series window table for counters/gauges that
// moved.  Returned as text so benches and tests can bound a transient on
// the same rendering the CLI prints.
std::string RenderTimelineTables(const MergedTimeline& m);

// Per-window total ops/s summed over `m`'s kv.* histogram lanes (the
// series the lanes table plots); empty when the schema has none.
std::vector<double> WindowOpsPerSec(const MergedTimeline& m);

}  // namespace papyrus::obs
