#include "obs/flight.h"

#include <algorithm>
#include <cstdio>

#include "common/timer.h"
#include "obs/trace.h"

namespace papyrus::obs {

namespace {
thread_local FlightRecorder* tls_flight = nullptr;
}  // namespace

const char* FlightKindName(FlightKind kind) {
  switch (kind) {
    case FlightKind::kOpBegin: return "op_begin";
    case FlightKind::kOpEnd: return "op_end";
    case FlightKind::kRetry: return "retry";
    case FlightKind::kTimeout: return "timeout";
    case FlightKind::kSuspect: return "suspect";
    case FlightKind::kFailpoint: return "failpoint";
    case FlightKind::kFlush: return "flush";
    case FlightKind::kCompaction: return "compaction";
    case FlightKind::kCrash: return "crash";
    case FlightKind::kQuarantine: return "quarantine";
    case FlightKind::kReplResync: return "repl_resync";
    case FlightKind::kDegraded: return "degraded";
    case FlightKind::kPromote: return "promote";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(std::max<size_t>(8, capacity)),
      slots_(new Slot[std::max<size_t>(8, capacity)]) {}

void FlightRecorder::Record(FlightKind kind, const char* what, int64_t a,
                            int64_t b, uint64_t trace_id) {
  if (trace_id == 0) trace_id = CurrentTraceContext().trace_id;
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& s = slots_[seq % capacity_];
  // Invalidate, publish payload, then re-publish seq: a reader that sees a
  // stable nonzero seq across its payload read got a consistent slot.
  s.seq.store(0, std::memory_order_release);
  s.ts_us.store(NowMicros(), std::memory_order_relaxed);
  s.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  s.what.store(what ? what : "", std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.trace_id.store(trace_id, std::memory_order_relaxed);
  s.seq.store(seq, std::memory_order_release);
}

void FlightRecorder::ConfigureDump(std::string path, int rank) {
  dump_path_ = std::move(path);
  rank_ = rank;
}

std::vector<FlightRecorder::Event> FlightRecorder::Snapshot() const {
  std::vector<Event> out;
  const uint64_t hi = next_.load(std::memory_order_acquire);
  const uint64_t lo = hi > capacity_ ? hi - capacity_ + 1 : 1;
  out.reserve(hi - lo + 1);
  for (uint64_t seq = lo; seq <= hi; ++seq) {
    const Slot& s = slots_[seq % capacity_];
    if (s.seq.load(std::memory_order_acquire) != seq) continue;
    Event ev;
    ev.seq = seq;
    ev.ts_us = s.ts_us.load(std::memory_order_relaxed);
    ev.kind = static_cast<FlightKind>(s.kind.load(std::memory_order_relaxed));
    const char* what = s.what.load(std::memory_order_relaxed);
    ev.what = what ? what : "";
    ev.a = s.a.load(std::memory_order_relaxed);
    ev.b = s.b.load(std::memory_order_relaxed);
    ev.trace_id = s.trace_id.load(std::memory_order_relaxed);
    // A writer may have lapped us mid-read; only keep stable slots.
    if (s.seq.load(std::memory_order_acquire) != seq) continue;
    out.push_back(ev);
  }
  return out;
}

Status FlightRecorder::TriggerDump(const char* reason) {
  if (dump_path_.empty()) return Status::OK();
  const std::vector<Event> events = Snapshot();

  std::string out;
  out.reserve(events.size() * 128 + 256);
  char buf[256];
  snprintf(buf, sizeof(buf),
           "{\"papyruskv\": \"flight-v1\", \"rank\": %d, \"reason\": \"%s\","
           "\n \"events\": [",
           rank_, reason ? reason : "");
  out += buf;
  bool first = true;
  for (const Event& ev : events) {
    if (!first) out += ",";
    first = false;
    snprintf(buf, sizeof(buf),
             "\n  {\"seq\": %llu, \"ts_us\": %llu, \"kind\": \"%s\", "
             "\"what\": \"%s\", \"a\": %lld, \"b\": %lld, "
             "\"trace\": \"0x%llx\"}",
             static_cast<unsigned long long>(ev.seq),
             static_cast<unsigned long long>(ev.ts_us),
             FlightKindName(ev.kind), ev.what, static_cast<long long>(ev.a),
             static_cast<long long>(ev.b),
             static_cast<unsigned long long>(ev.trace_id));
    out += buf;
  }
  out += "\n]}\n";

  MutexLock lock(&dump_mu_);
  ++dumps_;
  // Plain stdio: like stats/trace files, flight dumps are host-side
  // diagnostics outside the simulated NVM.
  FILE* f = fopen(dump_path_.c_str(), "w");
  if (!f) return Status::IOError("flight: cannot open " + dump_path_);
  const size_t n = fwrite(out.data(), 1, out.size(), f);
  fclose(f);
  if (n != out.size()) {
    return Status::IOError("flight: short write " + dump_path_);
  }
  return Status::OK();
}

FlightRecorder* CurrentFlight() { return tls_flight; }
void SetCurrentFlight(FlightRecorder* f) { tls_flight = f; }

}  // namespace papyrus::obs
