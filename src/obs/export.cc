#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace papyrus::obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string Num(double v) {
  char buf[64];
  // Integral values print without a fraction so counters stay exact.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// JSON dump
// ---------------------------------------------------------------------------

std::string SnapshotToJson(const Snapshot& snap, const StatsMeta& meta) {
  std::string out;
  out.reserve(4096);
  out += "{\n";
  out += "  \"papyruskv\": \"stats-v1\",\n";
  out += "  \"rank\": " + std::to_string(meta.rank) + ",\n";
  out += "  \"nranks\": " + std::to_string(meta.nranks) + ",\n";
  out += std::string("  \"aggregated\": ") +
         (meta.aggregated ? "true" : "false") + ",\n";

  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendEscaped(&out, name);
    out += ": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendEscaped(&out, name);
    out += ": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendEscaped(&out, name);
    out += ": { \"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + std::to_string(h.sum);
    out += ", \"min\": " + std::to_string(h.min);
    out += ", \"max\": " + std::to_string(h.max);
    out += ", \"mean\": " + Num(h.Mean());
    out += ", \"p50\": " + Num(h.Percentile(50));
    out += ", \"p95\": " + Num(h.Percentile(95));
    out += ", \"p99\": " + Num(h.Percentile(99));
    out += ", \"buckets\": [";
    bool bfirst = true;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!bfirst) out += ", ";
      bfirst = false;
      out += "[" + std::to_string(HistogramBucketUpper(b)) + ", " +
             std::to_string(h.buckets[b]) + "]";
    }
    out += "] }";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string StatsPathForRank(const std::string& path, int rank) {
  const std::string suffix = ".rank" + std::to_string(rank);
  const size_t dot = path.rfind(".json");
  if (dot != std::string::npos && dot == path.size() - 5) {
    return path.substr(0, dot) + suffix + ".json";
  }
  return path + suffix;
}

Status WriteTextFile(const std::string& path, const std::string& contents) {
  FILE* f = fopen(path.c_str(), "w");
  if (!f) return Status::IOError("stats: cannot open " + path);
  const size_t n = fwrite(contents.data(), 1, contents.size(), f);
  fclose(f);
  if (n != contents.size()) {
    return Status::IOError("stats: short write " + path);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Roll-up wire form
// ---------------------------------------------------------------------------

std::string SerializeSnapshot(const Snapshot& snap) {
  std::ostringstream ss;
  for (const auto& [name, v] : snap.counters) {
    ss << "C " << name << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    ss << "G " << name << " " << v << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    ss << "H " << name << " " << h.sum << " " << h.min << " " << h.max;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      ss << " " << b << ":" << h.buckets[b];
    }
    ss << "\n";
  }
  return ss.str();
}

bool DeserializeSnapshot(const std::string& data, Snapshot* out) {
  *out = Snapshot();
  std::istringstream ss(data);
  std::string line;
  while (std::getline(ss, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind, name;
    if (!(ls >> kind >> name)) return false;
    if (kind == "C") {
      uint64_t v;
      if (!(ls >> v)) return false;
      out->counters[name] = v;
    } else if (kind == "G") {
      int64_t v;
      if (!(ls >> v)) return false;
      out->gauges[name] = v;
    } else if (kind == "H") {
      HistogramData h;
      if (!(ls >> h.sum >> h.min >> h.max)) return false;
      std::string pair;
      while (ls >> pair) {
        const size_t colon = pair.find(':');
        if (colon == std::string::npos) return false;
        const size_t b = strtoull(pair.c_str(), nullptr, 10);
        const uint64_t n = strtoull(pair.c_str() + colon + 1, nullptr, 10);
        if (b >= kHistogramBuckets) return false;
        h.buckets[b] = n;
        h.count += n;
      }
      if (h.count == 0) h.min = 0;
      out->histograms[name] = h;
    } else {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out) {
    if (!Value(out)) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    const size_t n = strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool Value(JsonValue* out) {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object(out);
      case '[': return Array(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return String(&out->str);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default: return Number(out);
    }
  }

  bool Object(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!String(&key)) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JsonValue v;
      if (!Value(&v)) return false;
      out->object.emplace(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue v;
      if (!Value(&v)) return false;
      out->array.push_back(std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          const unsigned code =
              strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // Dumps only escape control characters; anything else is kept as
          // a replacement byte rather than full UTF-8 encoding.
          out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  bool Number(JsonValue* out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out->number = strtod(start, &end);
    if (end == start) return false;
    out->type = JsonValue::Type::kNumber;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out) {
  *out = JsonValue();
  return JsonParser(text).Parse(out);
}

bool ParseStatsJson(const std::string& text, Snapshot* out, StatsMeta* meta) {
  JsonValue root;
  if (!ParseJson(text, &root) || root.type != JsonValue::Type::kObject) {
    return false;
  }
  const JsonValue* magic = root.Find("papyruskv");
  if (!magic || magic->str != "stats-v1") return false;

  if (meta) {
    if (const JsonValue* v = root.Find("rank")) {
      meta->rank = static_cast<int>(v->number);
    }
    if (const JsonValue* v = root.Find("nranks")) {
      meta->nranks = static_cast<int>(v->number);
    }
    if (const JsonValue* v = root.Find("aggregated")) {
      meta->aggregated = v->boolean;
    }
  }
  if (!out) return true;

  *out = Snapshot();
  if (const JsonValue* c = root.Find("counters")) {
    for (const auto& [name, v] : c->object) {
      out->counters[name] = static_cast<uint64_t>(v.number);
    }
  }
  if (const JsonValue* g = root.Find("gauges")) {
    for (const auto& [name, v] : g->object) {
      out->gauges[name] = static_cast<int64_t>(v.number);
    }
  }
  if (const JsonValue* hs = root.Find("histograms")) {
    for (const auto& [name, hv] : hs->object) {
      HistogramData h;
      if (const JsonValue* v = hv.Find("sum")) {
        h.sum = static_cast<uint64_t>(v->number);
      }
      if (const JsonValue* v = hv.Find("min")) {
        h.min = static_cast<uint64_t>(v->number);
      }
      if (const JsonValue* v = hv.Find("max")) {
        h.max = static_cast<uint64_t>(v->number);
      }
      if (const JsonValue* v = hv.Find("buckets")) {
        for (const JsonValue& pair : v->array) {
          if (pair.array.size() != 2) return false;
          // The top bucket's bound is 2^64-1, which round-trips through
          // double as 2^64 — clamp before the cast.
          const double u = pair.array[0].number;
          const uint64_t upper =
              u >= 1.8e19 ? ~uint64_t{0} : static_cast<uint64_t>(u);
          const uint64_t n = static_cast<uint64_t>(pair.array[1].number);
          h.buckets[HistogramBucketOf(upper)] += n;
          h.count += n;
        }
      }
      out->histograms[name] = h;
    }
  }
  return true;
}

}  // namespace papyrus::obs
