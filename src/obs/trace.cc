#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>

namespace papyrus::obs {

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void TraceBuffer::Add(std::string name, const char* cat, uint64_t ts_us,
                      uint64_t dur_us) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = cat;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffff;
  MutexLock lock(&mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[next_] = std::move(ev);
    wrapped_ = true;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  next_ = (next_ + 1) % capacity_;
}

size_t TraceBuffer::size() const {
  MutexLock lock(&mu_);
  return ring_.size();
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  MutexLock lock(&mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    // Oldest-first: the slot at next_ holds the oldest surviving event.
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
  } else {
    out = ring_;
  }
  return out;
}

Status TraceBuffer::WriteChromeTrace(const std::string& path,
                                     int rank) const {
  const std::vector<TraceEvent> events = Events();
  uint64_t t0 = ~uint64_t{0};
  for (const auto& ev : events) t0 = std::min(t0, ev.ts_us);
  if (events.empty()) t0 = 0;

  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"traceEvents\": [";
  bool first = true;
  for (const auto& ev : events) {
    if (!first) out += ",";
    first = false;
    char buf[192];
    snprintf(buf, sizeof(buf),
             "\n{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
             "\"ts\": %llu, \"dur\": %llu, \"pid\": %d, \"tid\": %llu}",
             ev.name.c_str(), ev.cat,
             static_cast<unsigned long long>(ev.ts_us - t0),
             static_cast<unsigned long long>(ev.dur_us), rank,
             static_cast<unsigned long long>(ev.tid));
    out += buf;
  }
  out += "\n]}\n";
  // Plain stdio on purpose: trace files are host-side diagnostics, not part
  // of the simulated NVM (and obs must stay below sim in the layering).
  FILE* f = fopen(path.c_str(), "w");
  if (!f) return Status::IOError("trace: cannot open " + path);
  const size_t n = fwrite(out.data(), 1, out.size(), f);
  fclose(f);
  if (n != out.size()) return Status::IOError("trace: short write " + path);
  return Status::OK();
}

namespace {
thread_local TraceBuffer* tls_trace = nullptr;
}  // namespace

TraceBuffer* CurrentTrace() { return tls_trace; }
void SetCurrentTrace(TraceBuffer* t) { tls_trace = t; }

}  // namespace papyrus::obs
