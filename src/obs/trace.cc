#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>

namespace papyrus::obs {

namespace {

thread_local TraceBuffer* tls_trace = nullptr;
thread_local TraceContext tls_ctx;
thread_local uint32_t tls_kv_ticks = 0;  // root-sampling counter

uint64_t SelfTid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffff;
}

void AppendHexId(std::string* out, uint64_t id) {
  char buf[24];
  snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(id));
  *out += buf;
}

}  // namespace

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void TraceBuffer::SetThreadName(const char* name) {
  if (!name) return;
  const uint64_t tid = SelfTid();
  MutexLock lock(&mu_);
  thread_names_[tid] = name;
}

void TraceBuffer::Add(std::string name, const char* cat, uint64_t ts_us,
                      uint64_t dur_us) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = cat;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  // Spans recorded through the plain path still belong to whatever
  // operation is active on this thread, so the merged timeline can nest
  // them (flush/compaction spans usually have no context — that is fine).
  const TraceContext& ctx = tls_ctx;
  if (ctx.valid()) {
    ev.trace_id = ctx.trace_id;
    ev.parent_span_id = ctx.span_id;
  }
  AddEvent(std::move(ev));
}

void TraceBuffer::AddEvent(TraceEvent ev) {
  if (!enabled()) return;
  ev.tid = SelfTid();
  MutexLock lock(&mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[next_] = std::move(ev);
    wrapped_ = true;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  next_ = (next_ + 1) % capacity_;
}

size_t TraceBuffer::size() const {
  MutexLock lock(&mu_);
  return ring_.size();
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  MutexLock lock(&mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    // Oldest-first: the slot at next_ holds the oldest surviving event.
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
  } else {
    out = ring_;
  }
  return out;
}

Status TraceBuffer::WriteChromeTrace(const std::string& path,
                                     int rank) const {
  const std::vector<TraceEvent> events = Events();
  std::map<uint64_t, std::string> names;
  {
    MutexLock lock(&mu_);
    names = thread_names_;
  }

  std::string out;
  out.reserve(events.size() * 160 + 512);
  out += "{\"traceEvents\": [";
  bool first = true;
  auto emit = [&](const char* text) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += text;
  };
  char buf[320];

  // Lane metadata: the process is the rank, each recording thread gets its
  // role name instead of a raw tid hash.
  snprintf(buf, sizeof(buf),
           "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, "
           "\"args\": {\"name\": \"rank %d\"}}",
           rank, rank);
  emit(buf);
  for (const auto& [tid, tname] : names) {
    snprintf(buf, sizeof(buf),
             "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, "
             "\"tid\": %llu, \"args\": {\"name\": \"%s\"}}",
             rank, static_cast<unsigned long long>(tid), tname.c_str());
    emit(buf);
  }

  // Timestamps are absolute NowMicros: every emulated rank shares one
  // steady clock, so per-rank files concatenate into one consistent
  // timeline (papyrus_inspect --trace-merge relies on this).
  uint64_t last_ts = 0;
  for (const auto& ev : events) {
    last_ts = std::max(last_ts, ev.ts_us + ev.dur_us);
    std::string line;
    snprintf(buf, sizeof(buf),
             "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
             "\"ts\": %llu, \"dur\": %llu, \"pid\": %d, \"tid\": %llu",
             ev.name.c_str(), ev.cat,
             static_cast<unsigned long long>(ev.ts_us),
             static_cast<unsigned long long>(ev.dur_us), rank,
             static_cast<unsigned long long>(ev.tid));
    line = buf;
    if (ev.trace_id != 0) {
      line += ", \"args\": {\"trace\": \"";
      AppendHexId(&line, ev.trace_id);
      line += "\", \"span\": \"";
      AppendHexId(&line, ev.span_id);
      line += "\", \"parent\": \"";
      AppendHexId(&line, ev.parent_span_id);
      line += "\"}";
    }
    line += "}";
    emit(line.c_str());

    if (ev.flow != TraceEvent::kFlowNone && ev.flow_id != 0) {
      // Flow arrow: "s" inside the caller's RPC span, "f" (bp:"e") binding
      // to the owner's handler span.  Same cat/name/id joins the pair.
      std::string id;
      AppendHexId(&id, ev.flow_id);
      snprintf(buf, sizeof(buf),
               "{\"name\": \"rpc\", \"cat\": \"flow\", \"ph\": \"%s\", "
               "%s\"ts\": %llu, \"pid\": %d, \"tid\": %llu, \"id\": \"%s\"}",
               ev.flow == TraceEvent::kFlowOut ? "s" : "f",
               ev.flow == TraceEvent::kFlowOut ? "" : "\"bp\": \"e\", ",
               static_cast<unsigned long long>(ev.ts_us), rank,
               static_cast<unsigned long long>(ev.tid), id.c_str());
      emit(buf);
    }
  }

  // Surface the ring's loss instead of silently truncating history.
  snprintf(buf, sizeof(buf),
           "{\"name\": \"trace.dropped\", \"ph\": \"C\", \"ts\": %llu, "
           "\"pid\": %d, \"tid\": 0, \"args\": {\"events\": %llu}}",
           static_cast<unsigned long long>(last_ts), rank,
           static_cast<unsigned long long>(dropped()));
  emit(buf);

  out += "\n]}\n";
  // Plain stdio on purpose: trace files are host-side diagnostics, not part
  // of the simulated NVM (and obs must stay below sim in the layering).
  FILE* f = fopen(path.c_str(), "w");
  if (!f) return Status::IOError("trace: cannot open " + path);
  const size_t n = fwrite(out.data(), 1, out.size(), f);
  fclose(f);
  if (n != out.size()) return Status::IOError("trace: short write " + path);
  return Status::OK();
}

TraceBuffer* CurrentTrace() { return tls_trace; }
void SetCurrentTrace(TraceBuffer* t) { tls_trace = t; }

TraceContext CurrentTraceContext() { return tls_ctx; }

// ---------------------------------------------------------------------------
// OpSpan
// ---------------------------------------------------------------------------

OpSpan::OpSpan(const char* cat, std::string name, Mode mode) {
  Begin(cat, std::move(name), TraceContext(), /*has_remote=*/false, mode);
}

OpSpan::OpSpan(const char* cat, std::string name,
               const TraceContext& remote_parent) {
  Begin(cat, std::move(name), remote_parent, /*has_remote=*/true, kScoped);
}

void OpSpan::Begin(const char* cat, std::string&& name,
                   const TraceContext& remote_parent, bool has_remote,
                   Mode mode) {
  TraceBuffer* buf = tls_trace;
  if (!buf || !buf->enabled()) return;
  const bool is_root =
      !(has_remote && remote_parent.valid()) && !tls_ctx.valid();
  if (is_root && cat[0] == 'k' && cat[1] == 'v' && cat[2] == '\0') {
    // Local kv fast path: record one root in kv_sample_every (children of
    // a skipped root see no context and fall through to their own rules,
    // so RPC spans under an unsampled put/get still record as net roots).
    const uint32_t every = buf->kv_sample_every();
    if (every > 1 && ++tls_kv_ticks % every != 0) return;
  }
  buf_ = buf;
  name_ = std::move(name);
  cat_ = cat;
  scoped_ = mode == kScoped;
  saved_ = tls_ctx;
  if (has_remote && remote_parent.valid()) {
    // Owner-side handler span: child of the caller's RPC span, with the
    // incoming flow arrow drawn from it.
    ctx_.trace_id = remote_parent.trace_id;
    parent_span_ = remote_parent.span_id;
    flow_ = TraceEvent::kFlowIn;
    flow_id_ = remote_parent.span_id;
  } else if (saved_.valid()) {
    ctx_.trace_id = saved_.trace_id;
    parent_span_ = saved_.span_id;
  } else {
    ctx_.trace_id = buf->NextSpanId();  // new root: fresh trace
  }
  ctx_.span_id = buf->NextSpanId();
  ctx_.sampled = true;
  // Detached siblings (dispatcher chunks in flight) end out of order, so
  // they read their parent off the thread but never become it.
  if (scoped_) tls_ctx = ctx_;
  start_ = NowMicros();
}

OpSpan::~OpSpan() {
  if (!buf_) return;
  if (scoped_) tls_ctx = saved_;
  TraceEvent ev;
  ev.name = std::move(name_);
  ev.cat = cat_;
  ev.ts_us = start_;
  ev.dur_us = NowMicros() - start_;
  ev.trace_id = ctx_.trace_id;
  ev.span_id = ctx_.span_id;
  ev.parent_span_id = parent_span_;
  ev.flow = flow_;
  ev.flow_id = flow_id_;
  buf_->AddEvent(std::move(ev));
}

void RecordSpan(const char* cat, std::string name, uint64_t ts_us,
                uint64_t dur_us) {
  TraceBuffer* buf = tls_trace;
  if (!buf || !buf->enabled()) return;
  buf->Add(std::move(name), cat, ts_us, dur_us);
}

}  // namespace papyrus::obs
