// DbShard: one rank's view of one PapyrusKV database.
//
// Structure per the paper (§2.3, Figures 2–3).  Each rank holds:
//   * a mutable *local MemTable* — pairs this rank owns;
//   * *immutable local MemTables* — sealed tables queued for flushing by
//     the compaction thread;
//   * a mutable *remote MemTable* — pairs owned by other ranks, staged in
//     relaxed consistency mode, each entry tagged with its owner rank;
//   * *immutable remote MemTables* — sealed tables queued for migration by
//     the message dispatcher;
//   * a *local cache* — LRU over pairs fetched from this rank's SSTables;
//   * a *remote cache* — LRU over pairs fetched from other ranks, active
//     only while the database is read-only (§3.2);
//   * a set of *SSTables* on (simulated) NVM, catalogued by the Manifest.
//
// Ownership: a key's owner rank is hash(key) % nranks (§2.4), with an
// application-supplied hash honored when configured.
//
// Threading contract: one application thread per rank drives Put/Get/
// Delete/Fence/Barrier (MPI style).  The runtime's handler thread calls
// ApplyRecords/HandleRemoteGet concurrently; the compaction thread calls
// FlushImmutable; the dispatcher calls TakeOwnerChunks/MigrationFinished.
// Internal state is guarded accordingly.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "async/pipeline.h"
#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "core/options.h"
#include "core/wire.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "store/cache.h"
#include "store/manifest.h"
#include "store/memtable.h"

namespace papyrus::repl {
class Replicator;
}  // namespace papyrus::repl

namespace papyrus::core {

class KvRuntime;

// Observable per-database counters (used by tests and the bench harness to
// verify *mechanisms*, e.g. that storage-group gets bypass value transfer).
// Since the obs/ rework this is a *view* materialized from the rank's
// metrics registry (StatsSnapshot reads the db-scoped counters back).
struct DbStats {
  uint64_t puts_local = 0;
  uint64_t puts_remote_staged = 0;   // relaxed-mode remote puts
  uint64_t puts_remote_sync = 0;     // sequential-mode remote puts
  uint64_t gets_local = 0;
  uint64_t gets_remote = 0;
  uint64_t memtable_hits = 0;
  uint64_t cache_local_hits = 0;
  uint64_t cache_remote_hits = 0;
  uint64_t sstable_hits = 0;
  uint64_t bloom_negatives = 0;      // tables skipped via bloom filter
  uint64_t foreign_sstable_hits = 0; // storage-group shared reads (§2.7)
  uint64_t remote_value_transfers = 0;  // values that crossed the network
  uint64_t flushes = 0;
  uint64_t migrations = 0;
  uint64_t compactions = 0;
};

class DbShard : public std::enable_shared_from_this<DbShard> {
 public:
  DbShard(KvRuntime& rt, uint32_t id, std::string name, Options opt);
  ~DbShard();  // out-of-line: repl::Replicator is incomplete here

  // Recovers/creates on-NVM state.  Zero-copy reopen (§4.1): any SSTables
  // already present in this rank's directory are adopted as-is.
  Status Open();

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  const Options& options() const { return opt_; }
  const std::string& dir() const { return manifest_.dir(); }
  store::Manifest& manifest() { return manifest_; }

  // ---- Basic operations (application thread) ----
  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  // On success fills *value.  NOT_FOUND for absent or tombstoned keys.
  Status Get(const Slice& key, std::string* value);

  // ---- Async submissions (DESIGN.md §9) ----
  // Submit without waiting.  Local and relaxed-staged puts resolve inline
  // (the returned handle is already complete); sequential remote puts ride
  // the pipeline and complete when the owner's batched ack lands.
  // tombstone=true is papyruskv_delete_async.
  async::OpHandle PutAsync(const Slice& key, const Slice& value,
                           bool tombstone);
  // Gets decided from local memory resolve inline; only the network leg is
  // asynchronous.  Complete with FinishGet.
  async::OpHandle GetAsync(const Slice& key);
  // Completes a GetAsync: waits, runs §2.7 post-processing (cache fills,
  // foreign-SSTable search, fallback re-query), fills *value.
  Status FinishGet(const Slice& key, const async::OpHandle& h,
                   std::string* value);

  // ---- Consistency (§3) ----
  // Migrates the remote MemTable and queued immutable remote MemTables to
  // their owners immediately; returns when every record has been applied
  // at its owner (acked).
  Status Fence();
  // Collective fence; level PAPYRUSKV_SSTABLE additionally flushes all
  // MemTables to SSTables on every rank.
  Status Barrier(int level);
  Status SetConsistency(int mode);  // collective
  Status SetProtection(int prot);   // collective
  int consistency() const { return consistency_.load(); }
  int protection() const { return protection_.load(); }

  // Fence + flush everything (used by close / checkpoint / destroy).
  Status FlushAll();

  // ---- Handler-side entry points (runtime handler thread) ----
  // Applies migrated records to the local MemTable (paper: the handler
  // "extracts the keys and their values from the messages and inserts them
  // into the local MemTable").
  Status ApplyRecords(const std::vector<KvRecord>& records);
  // Batched variant for kOpPutBatch: applies every record, continuing past
  // failures, and returns one PAPYRUSKV_* code per record in order (the
  // per-op statuses of the batched ack).  The batch.op.fail failpoint
  // injects per-op failures here for partial-batch testing.
  std::vector<int32_t> ApplyBatch(const std::vector<KvRecord>& records);
  // Serves a remote get request (§2.6–2.7).
  GetResp HandleRemoteGet(const Slice& key, uint32_t caller_group);

  // ---- Compaction-thread entry point ----
  // Flushes a sealed local MemTable to a fresh SSTable.  Must only be
  // called from the compaction thread: SSID allocation relies on flushes
  // and merges being serialized there.
  Status FlushImmutable(const store::MemTablePtr& mem);

  // ---- Dispatcher entry points ----
  // Sorts a sealed remote MemTable's records per owner rank (§2.4: "it
  // sorts the key-value pairs in the MemTable by the owner rank number ...
  // accumulates the key-value pairs per rank").
  std::map<int, std::vector<KvRecord>> CollectOwnerChunks(
      const store::MemTable& mem) const;
  void MigrationFinished(const store::MemTablePtr& mem);

  // Owner rank of a key: hash % nranks.
  int OwnerOf(const Slice& key) const;

  // ---- Replication / failover (DESIGN.md §12) ----
  // Null when the effective replica count is 1.
  repl::Replicator* replicator() { return repl_.get(); }
  // Handler-side promotion entry point (kOpReplQuery promote=1): this rank
  // takes over serving `primary`'s hash slot — replays the shadow log tail
  // into its own local MemTable and adopts the dead rank's SSTables.
  // Idempotent per primary.
  Status PromoteSelf(int primary);
  // True once PromoteSelf succeeded for `primary`.  Election probes use it
  // to report an already-promoted rank as maximally caught-up (its shadow
  // was consumed by the takeover), so every elector converges on it.
  bool HasPromoted(int primary);

  // Simulated power loss (rank.crash failpoint): discards all volatile
  // state — mutable and sealed MemTables, both caches.  The NVM image
  // (SSTables + manifest) survives, exactly like the §4.2 failure model.
  void DropVolatile();

  DbStats StatsSnapshot() const;
  // Bytes in the mutable local + remote MemTables (diagnostics).
  size_t MemTableBytes() const;

 private:
  // The local put path shared by the app thread (local puts) and the
  // handler thread (migrated records).
  Status LocalPut(const Slice& key, const Slice& value, bool tombstone);
  // Stages a remote put in the remote MemTable (relaxed mode).
  Status StageRemotePut(const Slice& key, const Slice& value, bool tombstone,
                        int owner);
  // Sends a single synchronous put to the owner (sequential mode).
  Status SyncRemotePut(const Slice& key, const Slice& value, bool tombstone,
                       int owner);

  // Seals the mutable local MemTable and hands it to the compaction
  // thread.  Caller holds local_rotate_mu_ and local_mu_; the table lock
  // is released inside, before the possibly-blocking queue push.
  void RotateLocalLocked() REQUIRES(local_rotate_mu_) RELEASE(local_mu_);
  void RotateRemoteLocked() REQUIRES(remote_rotate_mu_) RELEASE(remote_mu_);

  // Memory-resident part of the local search: mutable MemTable, queued
  // immutable MemTables, local cache.  Returns true when the key's fate is
  // decided (found or tombstoned).
  bool SearchLocalMemory(const Slice& key, std::string* value,
                         bool* tombstone);
  // SSTable part of the local search; fills *found.
  Status SearchOwnSSTables(const Slice& key, std::string* value,
                           bool* tombstone, bool* found);
  // One SSTable probe with corruption recovery (DESIGN.md §8): on a
  // checksum failure the table is restored from the latest checkpoint copy
  // (when one exists) and re-read once; an unrepairable table is
  // quarantined so every later read fails fast instead of re-parsing
  // corrupt blocks.  NOT_FOUND = table compacted away concurrently.
  Status SearchOneTable(uint64_t ssid, const Slice& key,
                        store::SearchMode mode, std::string* value,
                        bool* tombstone, bool* found);
  // Storage-group shared read of another rank's SSTables (§2.7), limited
  // to the owner-advertised live SSID list.
  Status SearchForeignSSTables(int owner, const std::vector<uint64_t>& ssids,
                               const Slice& key, std::string* value,
                               bool* tombstone, bool* found);

  // Local-owner read path: memory search then own SSTables.
  Status LocalGet(const Slice& key, std::string* value);
  Status RemoteGet(const Slice& key, std::string* value);
  // Memory-resident part of the remote search (remote MemTable, queued
  // immutable remote MemTables, remote cache).  True when decided.
  bool SearchRemoteMemory(const Slice& key, std::string* value,
                          bool* tombstone);
  // Post-RPC half of a remote get: consumes the owner's GetResp (cache
  // fills, §2.7 shared read + fallback re-query through the pipeline).
  Status FinishRemoteGet(const Slice& key, GetResp resp, std::string* value);

  void WaitFlushesDrained();
  void WaitMigrationsDrained();

  // ---- Failover routing (DESIGN.md §12) ----
  // Resolves the rank that currently serves `owner`'s hash slot: `owner`
  // itself while it is healthy, else the promoted replica elected by
  // PromotedOwnerLocked.  Returns `owner` unchanged when replication is off
  // or no replica could be promoted.
  int RouteOwner(int owner);
  // Elects and (if needed) triggers promotion of the most-caught-up in-sync
  // follower for dead rank `dead`; caches the winner.  -1 when no candidate
  // answered.
  int PromotedOwnerLocked(int dead) REQUIRES(promo_mu_);
  Status PromoteSelfLocked(int primary) REQUIRES(promo_mu_);
  // Searches the SSTables adopted from promoted-away primaries.
  Status SearchPromotedSSTables(const Slice& key, std::string* value,
                                bool* tombstone, bool* found);
  // Read-from-replica (PAPYRUSKV_READ_REPLICAS): round-robins the get over
  // the owner's replica set.  True when the replica answered
  // authoritatively (*out filled); false = fall through to the owner path.
  bool TryReplicaRead(const Slice& key, int owner, std::string* value,
                      Status* out);

  KvRuntime& rt_;
  const uint32_t id_;
  const std::string name_;
  Options opt_;

  std::atomic<int> consistency_;
  std::atomic<int> protection_;

  store::Manifest manifest_;

  // Mutable tables + sealed-table registries.  imm_* are ordered newest
  // first (search order §2.6).  The *_rotate_mu_ mutexes serialize
  // seal+enqueue so queue order always matches seal order.  Canonical
  // order: rotate mutex -> table mutex -> drain mutex; never the reverse.
  Mutex local_rotate_mu_{"db_local_rotate_mu"};
  mutable Mutex local_mu_{"db_local_mu"};
  store::MemTablePtr local_ GUARDED_BY(local_mu_);
  std::deque<store::MemTablePtr> imm_local_ GUARDED_BY(local_mu_);

  Mutex remote_rotate_mu_{"db_remote_rotate_mu"};
  mutable Mutex remote_mu_{"db_remote_mu"};
  store::MemTablePtr remote_ GUARDED_BY(remote_mu_);
  std::deque<store::MemTablePtr> imm_remote_ GUARDED_BY(remote_mu_);

  store::LruCache cache_local_;
  store::LruCache cache_remote_;

  // Cached batch.op.fail failpoint (per-op failure injection in ApplyBatch).
  fault::Point* batch_fail_point_;

  // Incremented by every LocalPut.  An SSTable search captures it on entry
  // and only fills the local cache if no mutation intervened — otherwise a
  // slow reader could insert a value that a concurrent put/delete had
  // already superseded (and, once the tombstone is compacted away, nothing
  // would ever evict the stale entry).
  std::atomic<uint64_t> mutation_epoch_{0};

  // Readers for other group members' SSTables, keyed by (rank, ssid).
  // Leaf lock: held only for map lookup/insert, never across file I/O.
  Mutex foreign_mu_{"db_foreign_mu"};
  std::map<std::pair<int, uint64_t>, store::SSTablePtr> foreign_readers_
      GUARDED_BY(foreign_mu_);

  // Intra-group replication engine (null when the effective replica count
  // is 1).  Lock order: promo_mu_ -> local_mu_ -> the replicator's mu_;
  // promo_mu_ additionally serializes elections so one rank never promotes
  // two different replicas for the same dead primary.
  std::unique_ptr<repl::Replicator> repl_;
  Mutex promo_mu_{"db_promo_mu"};
  std::map<int, int> promoted_owner_ GUARDED_BY(promo_mu_);   // dead -> serving
  std::set<int> promoted_sources_ GUARDED_BY(promo_mu_);      // primaries taken over
  std::map<int, std::vector<uint64_t>> promoted_sstables_
      GUARDED_BY(promo_mu_);  // dead rank -> adopted SSIDs (descending)
  std::atomic<bool> promoted_any_{false};
  std::atomic<uint64_t> replica_rr_{0};  // read-from-replica round robin

  // Outstanding background work counters.  drain_mu_ is last in the
  // canonical order: it is taken while no other shard lock is held.
  Mutex drain_mu_{"db_drain_mu"};
  CondVar drain_cv_;
  int pending_flushes_ GUARDED_BY(drain_mu_) = 0;
  int pending_migrations_ GUARDED_BY(drain_mu_) = 0;

  // Cached registry metrics, resolved once in the constructor so hot-path
  // updates are lock-free relaxed atomics (obs/metrics.h).  The db-scoped
  // counters ("db.<name>.*") are reset there too, preserving the old
  // fresh-DbStats-per-shard semantics across close/reopen.
  struct Metrics {
    obs::Counter* puts_local;
    obs::Counter* puts_remote_staged;
    obs::Counter* puts_remote_sync;
    obs::Counter* gets_local;
    obs::Counter* gets_remote;
    obs::Counter* deletes;
    obs::Counter* memtable_hits;
    obs::Counter* cache_local_hits;
    obs::Counter* cache_local_misses;
    obs::Counter* cache_remote_hits;
    obs::Counter* cache_remote_misses;
    obs::Counter* sstable_hits;
    obs::Counter* bloom_checks;
    obs::Counter* bloom_negatives;
    obs::Counter* foreign_sstable_hits;
    obs::Counter* remote_value_transfers;
    obs::Counter* flushes;
    obs::Counter* migrations;
    obs::Counter* compactions;
    obs::Counter* replica_read_hits;  // repl.replica_read_hits (rank-wide)
    obs::Counter* promotions;         // repl.promotions (rank-wide)
    obs::Gauge* memtable_local_bytes;
    obs::Gauge* memtable_remote_bytes;
    // Rank-wide operation latencies (shared across this rank's databases).
    obs::Histogram* put_us;
    obs::Histogram* get_us;
    obs::Histogram* delete_us;
    obs::Histogram* fence_us;
    obs::Histogram* barrier_us;
    // Async submission cost only (enqueue / inline resolution) — the wire
    // leg's submit→completion latency lands in async.put_op_us/get_op_us
    // at ack time, so kv.put_us/get_us are never skewed by enqueue-only
    // timings.
    obs::Histogram* put_submit_us;
    obs::Histogram* get_submit_us;
    obs::Histogram* delete_submit_us;
  };
  Metrics m_;
};

using DbShardPtr = std::shared_ptr<DbShard>;

}  // namespace papyrus::core
