// PapyrusKV public API — the functions of Table 1 in the paper.
//
// An embedded, parallel key-value store for distributed (simulated) NVM
// architectures.  Every rank of the emulated SPMD job links this library;
// calls marked "collective" below must be made by all ranks, in the same
// order (MPI collective contract).  Every function returns a 32-bit error
// code: PAPYRUSKV_SUCCESS (0) or a negative PAPYRUSKV_* code (common/
// status.h).  All entry points are [[nodiscard]] — an ignored return code
// hides failures; cast to (void) only with a comment saying why.
//
// Typical use (see examples/quickstart.cpp):
//
//   papyrus::net::RunRanks(8, [](papyrus::net::RankContext&) {
//     papyruskv_init(nullptr, nullptr, "nvme:/tmp/repo");
//     papyruskv_db_t db;
//     papyruskv_open("mydb", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR, nullptr, &db);
//     papyruskv_put(db, key, keylen, val, vallen);
//     papyruskv_barrier(db, PAPYRUSKV_SSTABLE);
//     char* out = nullptr; size_t outlen = 0;
//     papyruskv_get(db, key, keylen, &out, &outlen);
//     papyruskv_free(db, out);
//     papyruskv_close(db);
//     papyruskv_finalize();
//   });
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/status.h"  // error codes
#include "core/options.h"   // flags, consistency modes, barrier levels

extern "C" {

typedef int papyruskv_db_t;
typedef int papyruskv_event_t;

// Per-database options passed to papyruskv_open / papyruskv_restart.
// Initialize with papyruskv_option_init, then override fields.
typedef struct papyruskv_option_struct {
  size_t keylen;    // expected key length (hint; 0 = unknown)
  size_t vallen;    // expected value length (hint)
  uint64_t (*hash)(const char* key, size_t keylen);  // custom owner hash
  int consistency;            // PAPYRUSKV_SEQUENTIAL / PAPYRUSKV_RELAXED
  int protection;             // PAPYRUSKV_RDWR / _WRONLY / _RDONLY
  size_t memtable_size;       // MemTable capacity limit in bytes
  size_t queue_depth;         // flushing/migration queue slots (unused: v1
                              // uses the runtime-wide queues)
  int cache_local;            // local cache on/off
  size_t cache_local_size;    // bytes
  size_t cache_remote_size;   // bytes (active under PAPYRUSKV_RDONLY)
  uint64_t compaction_trigger;  // merge every N SSTables (<=1 disables)
  int bloom_bits_per_key;
  int bin_search;             // 1 = SSData binary search, 0 = linear scan
  int group_size;             // storage-group size in ranks (-1 = derive)
  // Intra-group replication (DESIGN.md §12).  New fields append at the end:
  // existing callers that memset+init the struct keep working unchanged.
  int replicas;               // copies of each pair inside the storage
                              // group, primary included (1 = off)
  int read_from_replica;      // 1 = round-robin gets over in-sync replicas
} papyruskv_option_t;

// Fills *opt with the library defaults.
[[nodiscard]] int papyruskv_option_init(papyruskv_option_t* opt);

// ---- (a) Environment -------------------------------------------------------

// Initializes the per-rank execution environment using the repository path
// (nullptr/"" = $PAPYRUSKV_REPOSITORY).  The spec may carry a device-class
// prefix: "nvme:", "ssd:", "bb:", "lustre:" (see core/layout.h).
// Collective.
[[nodiscard]] int papyruskv_init(int* argc, char*** argv, const char* repository);
// Terminates the environment, closing any open databases.  Collective.
[[nodiscard]] int papyruskv_finalize();

// ---- (b) Basic -------------------------------------------------------------

// Opens or creates database `name`.  Collective; all ranks receive the same
// descriptor.  opt == nullptr uses defaults (+PAPYRUSKV_* env overrides).
[[nodiscard]] int papyruskv_open(const char* name, int flags, papyruskv_option_t* opt,
                   papyruskv_db_t* db);
// Flushes all MemTables to SSTables and closes.  Collective.
[[nodiscard]] int papyruskv_close(papyruskv_db_t db);

// Inserts or updates one pair.  Local puts land in the local MemTable;
// remote puts stage in the remote MemTable (relaxed) or migrate
// synchronously (sequential).
[[nodiscard]] int papyruskv_put(papyruskv_db_t db, const char* key, size_t keylen,
                  const char* value, size_t vallen);

// Retrieves the value for key.  If *value is NULL, a buffer is allocated
// from the PapyrusKV memory pool (release with papyruskv_free); otherwise
// *vallen must hold the caller buffer's capacity and the data is copied in.
// On return *vallen is the value's actual length.
[[nodiscard]] int papyruskv_get(papyruskv_db_t db, const char* key, size_t keylen,
                  char** value, size_t* vallen);

// Deletes the pair (internally: a put of a zero-length value with the
// tombstone bit set).
[[nodiscard]] int papyruskv_delete(papyruskv_db_t db, const char* key, size_t keylen);

// Releases a buffer allocated by papyruskv_get from the memory pool.
[[nodiscard]] int papyruskv_free(papyruskv_db_t db, char* val);

// ---- (b') Asynchronous basic ops -------------------------------------------
//
// The *_async variants submit the operation to the per-rank submission
// pipeline and return immediately with an event handle.  Ops bound for the
// same destination rank are coalesced into one batched wire message, so a
// burst of N remote puts costs one round trip instead of N.  Completion is
// observed with papyruskv_wait(db, event), which returns the operation's
// own status (per-op statuses survive partially failed batches), or in
// bulk with papyruskv_fence / papyruskv_barrier, which drain the pipeline.
// Per-key ordering follows submission order per destination (SDCB).
//
// Quickstart:
//
//   papyruskv_event_t ev[N];
//   for (int i = 0; i < N; i++)
//     papyruskv_put_async(db, key[i], keylen, val[i], vallen, &ev[i]);
//   papyruskv_fence(db);                  // or: papyruskv_wait(db, ev[i])
//
// Wait and fence are alternatives, not a sequence: the fence *consumes*
// every completed put/delete event (as if each had been waited — nothing
// accumulates across a long run), returning the first failed op's status;
// waiting such an event after the fence reports PAPYRUSKV_INVALID_EVENT.
// Get events are not consumed by a fence — a get's value is delivered only
// by its papyruskv_wait, which must eventually be called.
//
// Key and value are copied at submission time; the caller's buffers may be
// reused as soon as the call returns.

// Asynchronous papyruskv_put.  event may be NULL (fire-and-forget: errors
// are only observable through async.op_errors metrics and the fence).
[[nodiscard]] int papyruskv_put_async(papyruskv_db_t db, const char* key,
                                      size_t keylen, const char* value,
                                      size_t vallen, papyruskv_event_t* event);

// Asynchronous papyruskv_get.  value/vallen follow the papyruskv_get buffer
// contract but are filled in by papyruskv_wait, not before; they must stay
// valid until the wait returns.  event is required.
[[nodiscard]] int papyruskv_get_async(papyruskv_db_t db, const char* key,
                                      size_t keylen, char** value,
                                      size_t* vallen, papyruskv_event_t* event);

// Asynchronous papyruskv_delete.  event may be NULL as for put_async.
[[nodiscard]] int papyruskv_delete_async(papyruskv_db_t db, const char* key,
                                         size_t keylen,
                                         papyruskv_event_t* event);

// Batched get: looks up nkeys keys in one call.  Submits every key through
// the pipeline first and only then completes them, so keys owned by the
// same remote rank coalesce into one get_multi wire round trip (the same
// frames N separate get_asyncs would produce, without the event
// bookkeeping).  values[i]/vallens[i] follow the papyruskv_get buffer
// contract per key.  statuses is required and receives one PAPYRUSKV_*
// code per key (PAPYRUSKV_NOT_FOUND is a per-key result, not a call
// failure).  Returns PAPYRUSKV_SUCCESS when every status is SUCCESS or
// NOT_FOUND, else the first other per-key failure.
[[nodiscard]] int papyruskv_get_multi(papyruskv_db_t db, int nkeys,
                                      const char* const* keys,
                                      const size_t* keylens, char** values,
                                      size_t* vallens, int* statuses);

// ---- (c) Consistency -------------------------------------------------------

// Sends signal `signum` to each listed rank / waits for it from each.
[[nodiscard]] int papyruskv_signal_notify(int signum, int* ranks, int count);
[[nodiscard]] int papyruskv_signal_wait(int signum, int* ranks, int count);

// Migrates this rank's remote MemTable (and queued immutable remote
// MemTables) to the owner ranks immediately; returns once applied there.
// Also a completion fence for the async API: drains this rank's submission
// pipeline and retires every completed put/delete event (see §b' above),
// returning the first failed op's status.
[[nodiscard]] int papyruskv_fence(papyruskv_db_t db);

// Collective fence.  level PAPYRUSKV_MEMTABLE: all ranks see the same
// latest data; PAPYRUSKV_SSTABLE: additionally every MemTable is flushed
// to SSTables.
[[nodiscard]] int papyruskv_barrier(papyruskv_db_t db, int level);

// Sets the memory consistency mode (PAPYRUSKV_SEQUENTIAL / _RELAXED).
// Collective.
[[nodiscard]] int papyruskv_consistency(papyruskv_db_t db, int mode);

// Sets the protection attribute (PAPYRUSKV_RDWR / _WRONLY / _RDONLY).
// Collective.  WRONLY disables the local cache; RDONLY enables the remote
// cache (§3.2).
[[nodiscard]] int papyruskv_protect(papyruskv_db_t db, int prot);

// ---- (d) Persistence -------------------------------------------------------

// Creates a snapshot of db under `path` (may carry a device-class prefix,
// e.g. "lustre:/scratch/ckpt").  Asynchronous if event != NULL; wait with
// papyruskv_wait.  Collective.
[[nodiscard]] int papyruskv_checkpoint(papyruskv_db_t db, const char* path,
                         papyruskv_event_t* event);

// Reverts database `name` from the snapshot in `path`.  If the snapshot's
// rank count differs from the current job's (or
// PAPYRUSKV_FORCE_REDISTRIBUTE=1), the pairs are redistributed across the
// running ranks by replaying puts in parallel.  Asynchronous if event !=
// NULL.  Collective.
[[nodiscard]] int papyruskv_restart(const char* path, const char* name, int flags,
                      papyruskv_option_t* opt, papyruskv_db_t* db,
                      papyruskv_event_t* event);

// Removes db and all of its data from NVM.  Asynchronous if event != NULL.
// Collective.
[[nodiscard]] int papyruskv_destroy(papyruskv_db_t db, papyruskv_event_t* event);

// Waits for an asynchronous operation to complete.
[[nodiscard]] int papyruskv_wait(papyruskv_db_t db, papyruskv_event_t event);

// ---- Extensions (not in Table 1, used by benches/tests) --------------------

// Owner rank for a key under db's hash (diagnostics, workload setup).
[[nodiscard]] int papyruskv_hash(papyruskv_db_t db, const char* key, size_t keylen,
                   int* rank);

// ---- Observability (src/obs/) ----------------------------------------------

// Renders the calling rank's live metrics (operation latency histograms,
// per-database counters, network and simulated-device I/O) as a stats-v1
// JSON document.  `db` is accepted for API symmetry and validated when >= 0;
// pass -1 for the rank-wide view regardless of open databases.
//
// Buffer contract: on entry *len holds the capacity of buf; on return it
// holds the document size (without the NUL terminator).  buf == NULL
// queries the required size (returns SUCCESS).  A too-small buffer returns
// PAPYRUSKV_INVALID_ARG with *len set to the required size.
[[nodiscard]] int papyruskv_stats(papyruskv_db_t db, char* buf, size_t* len);

// Zeroes every metric of the calling rank's registry.
[[nodiscard]] int papyruskv_stats_reset();

// Live per-rank health snapshot, filled without stopping the store (atomic
// reads plus two brief leaf-lock peeks; no collectives, no I/O).  Works on
// a crashed rank — health is exactly what you ask a sick rank for.
//
// put/get rates and p99s cover the last PAPYRUSKV_TIMELINE_MS sampler
// window when the timeline sampler is on (timeline_samples > 0), else the
// whole run; window_us reports which interval the rates describe.
typedef struct papyruskv_health_struct {
  int rank;
  int nranks;
  int crashed;            /* 1 = simulated fail-stop fired              */
  int degraded;           /* 1 = replication below quorum on any db     */
  int suspect_peers;      /* peers that exhausted their retry budgets   */
  long long pipeline_queue_depth;   /* async submission backlog         */
  long long flush_queue_depth;      /* MemTables awaiting compaction    */
  long long migration_queue_depth;  /* MemTables awaiting dispatch      */
  long long repl_lag_ops;           /* primary-to-follower append lag   */
  unsigned long long uptime_us;
  unsigned long long window_us;        /* interval the rates cover      */
  unsigned long long timeline_samples; /* 0 = sampler off               */
  double put_rate;        /* puts/s over window_us                      */
  double get_rate;
  double put_p99_us;
  double get_p99_us;
} papyruskv_health_t;

[[nodiscard]] int papyruskv_health(papyruskv_health_t* health);

}  // extern "C"

namespace papyrus::core {
class DbShard;
// The C++ shard behind a descriptor (tests and benches read stats through
// it).  Null if the descriptor is invalid.
std::shared_ptr<DbShard> DbHandle(papyruskv_db_t db);
}  // namespace papyrus::core
