// Event handles for asynchronous operations.
//
// Paper §4.2: papyruskv_checkpoint / restart / destroy return a
// papyruskv_event_t identifying the pending background operation;
// papyruskv_wait blocks until it completes.  Events are per-rank (each rank
// waits on its own share of the collective operation).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/mutex.h"
#include "common/status.h"

namespace papyrus::core {

class EventState {
 public:
  void Complete(Status s) {
    {
      MutexLock lock(&mu_);
      status_ = std::move(s);
      done_ = true;
    }
    cv_.NotifyAll();
  }

  // Blocks until Complete(); returns the operation's status.
  Status Wait() {
    MutexLock lock(&mu_);
    while (!done_) cv_.Wait(&mu_);
    return status_;
  }

  bool done() const {
    MutexLock lock(&mu_);
    return done_;
  }

 private:
  // Leaf lock: guards one event's completion state only.
  mutable Mutex mu_{"event_mu"};
  CondVar cv_;
  bool done_ GUARDED_BY(mu_) = false;
  Status status_ GUARDED_BY(mu_);
};

using EventPtr = std::shared_ptr<EventState>;

// Allocates integer handles for EventStates (the C API's papyruskv_event_t).
class EventRegistry {
 public:
  int Create(EventPtr* out) {
    MutexLock lock(&mu_);
    const int id = next_id_++;
    auto ev = std::make_shared<EventState>();
    events_[id] = ev;
    *out = ev;
    return id;
  }

  EventPtr Find(int id) {
    MutexLock lock(&mu_);
    auto it = events_.find(id);
    return it == events_.end() ? nullptr : it->second;
  }

  // Waits and releases the handle.
  Status WaitAndErase(int id) {
    EventPtr ev;
    {
      MutexLock lock(&mu_);
      auto it = events_.find(id);
      if (it == events_.end()) return Status(PAPYRUSKV_INVALID_EVENT);
      ev = it->second;
    }
    // Block on the event with the registry lock released (event_mu is
    // acquired after event_registry_mu never the other way around).
    Status s = ev->Wait();
    {
      MutexLock lock(&mu_);
      events_.erase(id);
    }
    return s;
  }

 private:
  // Guards the handle table; released before blocking on any event.
  Mutex mu_{"event_registry_mu"};
  int next_id_ GUARDED_BY(mu_) = 1;
  std::unordered_map<int, EventPtr> events_ GUARDED_BY(mu_);
};

}  // namespace papyrus::core
