// Event handles for asynchronous operations.
//
// Paper §4.2: papyruskv_checkpoint / restart / destroy return a
// papyruskv_event_t identifying the pending background operation;
// papyruskv_wait blocks until it completes.  Events are per-rank (each rank
// waits on its own share of the collective operation).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/status.h"

namespace papyrus::core {

class EventState {
 public:
  void Complete(Status s) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      status_ = std::move(s);
      done_ = true;
    }
    cv_.notify_all();
  }

  // Blocks until Complete(); returns the operation's status.
  Status Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return done_; });
    return status_;
  }

  bool done() const {
    std::lock_guard<std::mutex> lock(mu_);
    return done_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  Status status_;
};

using EventPtr = std::shared_ptr<EventState>;

// Allocates integer handles for EventStates (the C API's papyruskv_event_t).
class EventRegistry {
 public:
  int Create(EventPtr* out) {
    std::lock_guard<std::mutex> lock(mu_);
    const int id = next_id_++;
    auto ev = std::make_shared<EventState>();
    events_[id] = ev;
    *out = ev;
    return id;
  }

  EventPtr Find(int id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = events_.find(id);
    return it == events_.end() ? nullptr : it->second;
  }

  // Waits and releases the handle.
  Status WaitAndErase(int id) {
    EventPtr ev;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = events_.find(id);
      if (it == events_.end()) return Status(PAPYRUSKV_INVALID_EVENT);
      ev = it->second;
    }
    Status s = ev->Wait();
    {
      std::lock_guard<std::mutex> lock(mu_);
      events_.erase(id);
    }
    return s;
  }

 private:
  std::mutex mu_;
  int next_id_ = 1;
  std::unordered_map<int, EventPtr> events_;
};

}  // namespace papyrus::core
