// Public constants and per-database options.
//
// Mirrors the paper's API surface (Table 1): open flags, consistency modes
// (§3.1), protection attributes (§3.2), barrier flush levels, plus the
// tunables the paper calls out as application-configurable (§2.3:
// "Programmers can configure the database properties (e.g., MemTable
// capacity, cache on/off, cache capacity, memory consistency mode,
// protection attribute, and custom hash function)").
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/hash.h"

// ---- Public constants (shared by the C API) -------------------------------

// papyruskv_open flags.
enum : int {
  PAPYRUSKV_CREATE = 0x1,  // create if absent
  PAPYRUSKV_RDWR = 0x6,    // read-write (default)
  PAPYRUSKV_WRONLY = 0x2,  // write-only phase: local cache disabled
  PAPYRUSKV_RDONLY = 0x4,  // read-only phase: remote cache enabled
};

// Memory consistency modes (papyruskv_consistency).  Values match the
// artifact appendix: PAPYRUSKV_CONSISTENCY=1 selects sequential, 2 relaxed.
enum : int {
  PAPYRUSKV_SEQUENTIAL = 1,
  PAPYRUSKV_RELAXED = 2,
};

// papyruskv_barrier levels.
enum : int {
  PAPYRUSKV_MEMTABLE = 1,  // all migrations delivered; data in MemTables
  PAPYRUSKV_SSTABLE = 2,   // additionally flush every MemTable to SSTables
};

namespace papyrus::core {

// C++-side option block.  The C struct papyruskv_option_t converts to this.
struct Options {
  // --- paper-named options ---
  size_t keylen_hint = 0;           // expected key length (0 = unknown)
  size_t vallen_hint = 0;           // expected value length
  KeyHashFn hash = nullptr;         // custom hash; null = built-in FNV-1a
  int consistency = PAPYRUSKV_RELAXED;
  int protection = PAPYRUSKV_RDWR;

  // --- capacity / structure tunables ---
  size_t memtable_bytes = 4u << 20;      // MemTable capacity limit
  size_t queue_depth = 8;                // flushing/migration queue slots
  bool cache_local_enabled = true;
  size_t cache_local_bytes = 8u << 20;
  size_t cache_remote_bytes = 8u << 20;  // active only under RDONLY
  uint64_t compaction_trigger = 4;       // merge when ssid % trigger == 0
  int bloom_bits_per_key = 10;
  bool sstable_binary_search = true;     // Fig. 8 "B" optimization
  // Storage-group size in ranks; -1 = derive from topology (ranks/node) or
  // PAPYRUSKV_GROUP_SIZE.
  int group_size = -1;

  // --- intra-group replication (DESIGN.md §12) ---
  // Copies of each rank's partition inside its storage group, counting the
  // primary: 1 = no replication (today's behavior).  Clamped to the group
  // size; PAPYRUSKV_REPLICAS overrides.
  int replicas = 1;
  // Allow gets on a replicated slot to be served from an in-sync follower's
  // shadow MemTable (round-robin); PAPYRUSKV_READ_REPLICAS=1 overrides.
  bool read_from_replica = false;
};

}  // namespace papyrus::core
