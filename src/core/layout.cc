#include "core/layout.h"

#include "common/env.h"
#include "sim/storage.h"

namespace papyrus::core {

void ParseRepositorySpec(const std::string& spec, sim::DeviceClass* cls,
                         std::string* path) {
  const size_t colon = spec.find(':');
  // A one-letter "class" is more likely a Windows-style path; and an
  // unknown class name falls back to DRAM with the full spec as path.
  if (colon != std::string::npos && colon >= 2) {
    const std::string head = spec.substr(0, colon);
    if (head == "nvme" || head == "ssd" || head == "bb" ||
        head == "burstbuffer" || head == "lustre" || head == "dram") {
      *cls = sim::ParseDeviceClass(head);
      *path = spec.substr(colon + 1);
      return;
    }
  }
  *cls = sim::DeviceClass::kDram;
  *path = spec;
}

StorageLayout::StorageLayout(const std::string& repository_spec,
                             const sim::Topology& topo, int group_size) {
  ParseRepositorySpec(repository_spec, &dev_class_, &repo_);
  if (group_size > 0) {
    group_size_ = group_size;
  } else if (auto env = EnvInt("PAPYRUSKV_GROUP_SIZE"); env && *env > 0) {
    group_size_ = static_cast<int>(*env);
  } else if (dev_class_ == sim::DeviceClass::kBurstBuffer ||
             dev_class_ == sim::DeviceClass::kLustre) {
    // Dedicated NVM architecture: all ranks form one storage group (§2.7).
    group_size_ = topo.nranks;
  } else {
    // Local NVM architecture: ranks on one node form a group.
    group_size_ = topo.ranks_per_node;
  }
  if (group_size_ < 1) group_size_ = 1;
  if (group_size_ > topo.nranks) group_size_ = topo.nranks;
}

std::string StorageLayout::GroupRoot(int group) const {
  return repo_ + "/group" + std::to_string(group);
}

std::string StorageLayout::RankDir(const std::string& db_name,
                                   int rank) const {
  return GroupRoot(GroupOf(rank)) + "/" + db_name + "/rank" +
         std::to_string(rank);
}

Status StorageLayout::Prepare(int nranks) {
  for (int g = 0; g < NumGroups(nranks); ++g) {
    const std::string root = GroupRoot(g);
    Status s = sim::Storage::CreateDirs(root);
    if (!s.ok()) return s;
    sim::DeviceRegistry::Instance().GetOrCreate(root, dev_class_);
  }
  return Status::OK();
}

}  // namespace papyrus::core
