#include "core/wire.h"

namespace papyrus::core {

namespace {
constexpr uint8_t kTraceFlagSampled = 0x01;
// [u32 magic][u64 trace][u64 span][u8 flags]
constexpr size_t kTraceHdrBytes = 4 + 8 + 8 + 1;
}  // namespace

void PutTraceCtx(std::string* out, const obs::TraceContext& ctx) {
  if (!ctx.valid()) return;  // legacy encoding, byte-identical to pre-trace
  PutFixed32(out, kTraceMagic);
  PutFixed64(out, ctx.trace_id);
  PutFixed64(out, ctx.span_id);
  out->push_back(static_cast<char>(kTraceFlagSampled));
}

bool GetTraceCtx(Slice* in, obs::TraceContext* ctx) {
  if (ctx) *ctx = obs::TraceContext();
  if (in->size() < 4) return true;  // too short for a header: legacy body
  Slice peek = *in;
  uint32_t magic = 0;
  if (!GetFixed32(&peek, &magic) || magic != kTraceMagic) return true;
  if (in->size() < kTraceHdrBytes) return false;  // truncated header
  in->remove_prefix(4);
  obs::TraceContext decoded;
  if (!GetFixed64(in, &decoded.trace_id) ||
      !GetFixed64(in, &decoded.span_id) || in->empty()) {
    return false;
  }
  decoded.sampled = ((*in)[0] & kTraceFlagSampled) != 0;
  in->remove_prefix(1);
  if (ctx) *ctx = decoded;
  return true;
}

std::string EncodeMigrateChunk(uint32_t dbid, uint32_t resp_tag,
                               const std::vector<KvRecord>& records,
                               const obs::TraceContext& trace_ctx) {
  std::string out;
  PutTraceCtx(&out, trace_ctx);
  PutFixed32(&out, dbid);
  PutFixed32(&out, resp_tag);
  PutFixed32(&out, static_cast<uint32_t>(records.size()));
  for (const KvRecord& r : records) {
    PutLengthPrefixed(&out, r.key);
    PutLengthPrefixed(&out, r.value);
    out.push_back(r.tombstone ? 1 : 0);
  }
  return out;
}

bool DecodeMigrateChunk(const Slice& payload, uint32_t* dbid,
                        uint32_t* resp_tag, std::vector<KvRecord>* records,
                        obs::TraceContext* trace_ctx) {
  Slice in = payload;
  if (!GetTraceCtx(&in, trace_ctx)) return false;
  uint32_t count = 0;
  if (!GetFixed32(&in, dbid) || !GetFixed32(&in, resp_tag) ||
      !GetFixed32(&in, &count)) {
    return false;
  }
  records->clear();
  records->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Slice key, value;
    if (!GetLengthPrefixed(&in, &key) || !GetLengthPrefixed(&in, &value) ||
        in.empty()) {
      return false;
    }
    KvRecord r;
    r.key = key.ToString();
    r.value = value.ToString();
    r.tombstone = in[0] != 0;
    in.remove_prefix(1);
    records->push_back(std::move(r));
  }
  return in.empty();
}

std::string EncodeGetReq(uint32_t dbid, uint32_t resp_tag,
                         uint32_t caller_group, const Slice& key,
                         const obs::TraceContext& trace_ctx) {
  std::string out;
  PutTraceCtx(&out, trace_ctx);
  PutFixed32(&out, dbid);
  PutFixed32(&out, resp_tag);
  PutFixed32(&out, caller_group);
  PutLengthPrefixed(&out, key);
  return out;
}

bool DecodeGetReq(const Slice& payload, uint32_t* dbid, uint32_t* resp_tag,
                  uint32_t* caller_group, std::string* key,
                  obs::TraceContext* trace_ctx) {
  Slice in = payload;
  Slice k;
  if (!GetTraceCtx(&in, trace_ctx)) return false;
  if (!GetFixed32(&in, dbid) || !GetFixed32(&in, resp_tag) ||
      !GetFixed32(&in, caller_group) || !GetLengthPrefixed(&in, &k)) {
    return false;
  }
  *key = k.ToString();
  return in.empty();
}

std::string EncodeGetResp(const GetResp& r,
                          const obs::TraceContext& trace_ctx) {
  std::string out;
  PutTraceCtx(&out, trace_ctx);
  out.push_back(r.found ? 1 : 0);
  out.push_back(r.tombstone ? 1 : 0);
  out.push_back(r.same_group ? 1 : 0);
  PutFixed64(&out, r.latest_ssid);
  PutFixed32(&out, static_cast<uint32_t>(r.ssids.size()));
  for (uint64_t ssid : r.ssids) PutFixed64(&out, ssid);
  PutLengthPrefixed(&out, r.value);
  return out;
}

bool DecodeGetResp(const Slice& payload, GetResp* r,
                   obs::TraceContext* trace_ctx) {
  Slice in = payload;
  if (!GetTraceCtx(&in, trace_ctx)) return false;
  if (in.size() < 3) return false;
  r->found = in[0] != 0;
  r->tombstone = in[1] != 0;
  r->same_group = in[2] != 0;
  in.remove_prefix(3);
  uint32_t nssids = 0;
  if (!GetFixed64(&in, &r->latest_ssid) || !GetFixed32(&in, &nssids)) {
    return false;
  }
  r->ssids.resize(nssids);
  for (uint32_t i = 0; i < nssids; ++i) {
    if (!GetFixed64(&in, &r->ssids[i])) return false;
  }
  Slice value;
  if (!GetLengthPrefixed(&in, &value)) return false;
  r->value = value.ToString();
  return in.empty();
}

}  // namespace papyrus::core
