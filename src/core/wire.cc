#include "core/wire.h"

namespace papyrus::core {

std::string EncodeMigrateChunk(uint32_t dbid, uint32_t resp_tag,
                               const std::vector<KvRecord>& records) {
  std::string out;
  PutFixed32(&out, dbid);
  PutFixed32(&out, resp_tag);
  PutFixed32(&out, static_cast<uint32_t>(records.size()));
  for (const KvRecord& r : records) {
    PutLengthPrefixed(&out, r.key);
    PutLengthPrefixed(&out, r.value);
    out.push_back(r.tombstone ? 1 : 0);
  }
  return out;
}

bool DecodeMigrateChunk(const Slice& payload, uint32_t* dbid,
                        uint32_t* resp_tag, std::vector<KvRecord>* records) {
  Slice in = payload;
  uint32_t count = 0;
  if (!GetFixed32(&in, dbid) || !GetFixed32(&in, resp_tag) ||
      !GetFixed32(&in, &count)) {
    return false;
  }
  records->clear();
  records->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Slice key, value;
    if (!GetLengthPrefixed(&in, &key) || !GetLengthPrefixed(&in, &value) ||
        in.empty()) {
      return false;
    }
    KvRecord r;
    r.key = key.ToString();
    r.value = value.ToString();
    r.tombstone = in[0] != 0;
    in.remove_prefix(1);
    records->push_back(std::move(r));
  }
  return in.empty();
}

std::string EncodeGetReq(uint32_t dbid, uint32_t resp_tag,
                         uint32_t caller_group, const Slice& key) {
  std::string out;
  PutFixed32(&out, dbid);
  PutFixed32(&out, resp_tag);
  PutFixed32(&out, caller_group);
  PutLengthPrefixed(&out, key);
  return out;
}

bool DecodeGetReq(const Slice& payload, uint32_t* dbid, uint32_t* resp_tag,
                  uint32_t* caller_group, std::string* key) {
  Slice in = payload;
  Slice k;
  if (!GetFixed32(&in, dbid) || !GetFixed32(&in, resp_tag) ||
      !GetFixed32(&in, caller_group) || !GetLengthPrefixed(&in, &k)) {
    return false;
  }
  *key = k.ToString();
  return in.empty();
}

std::string EncodeGetResp(const GetResp& r) {
  std::string out;
  out.push_back(r.found ? 1 : 0);
  out.push_back(r.tombstone ? 1 : 0);
  out.push_back(r.same_group ? 1 : 0);
  PutFixed64(&out, r.latest_ssid);
  PutFixed32(&out, static_cast<uint32_t>(r.ssids.size()));
  for (uint64_t ssid : r.ssids) PutFixed64(&out, ssid);
  PutLengthPrefixed(&out, r.value);
  return out;
}

bool DecodeGetResp(const Slice& payload, GetResp* r) {
  Slice in = payload;
  if (in.size() < 3) return false;
  r->found = in[0] != 0;
  r->tombstone = in[1] != 0;
  r->same_group = in[2] != 0;
  in.remove_prefix(3);
  uint32_t nssids = 0;
  if (!GetFixed64(&in, &r->latest_ssid) || !GetFixed32(&in, &nssids)) {
    return false;
  }
  r->ssids.resize(nssids);
  for (uint32_t i = 0; i < nssids; ++i) {
    if (!GetFixed64(&in, &r->ssids[i])) return false;
  }
  Slice value;
  if (!GetLengthPrefixed(&in, &value)) return false;
  r->value = value.ToString();
  return in.empty();
}

}  // namespace papyrus::core
