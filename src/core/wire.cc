#include "core/wire.h"

namespace papyrus::core {

namespace {
constexpr uint8_t kTraceFlagSampled = 0x01;
// [u32 magic][u64 trace][u64 span][u8 flags]
constexpr size_t kTraceHdrBytes = 4 + 8 + 8 + 1;

// reserve() bound for a decoded count field: the count is untrusted wire
// data, so cap the pre-allocation by what the remaining payload could
// possibly hold (`per` = minimum encoded bytes per element).  A lying count
// then fails in the element loop instead of throwing bad_alloc up front.
size_t ReserveBound(uint32_t count, const Slice& in, size_t per) {
  const size_t plausible = in.size() / per + 1;
  return count < plausible ? count : plausible;
}
}  // namespace

void PutTraceCtx(std::string* out, const obs::TraceContext& ctx) {
  if (!ctx.valid()) return;  // legacy encoding, byte-identical to pre-trace
  PutFixed32(out, kTraceMagic);
  PutFixed64(out, ctx.trace_id);
  PutFixed64(out, ctx.span_id);
  out->push_back(static_cast<char>(kTraceFlagSampled));
}

bool GetTraceCtx(Slice* in, obs::TraceContext* ctx) {
  if (ctx) *ctx = obs::TraceContext();
  if (in->size() < 4) return true;  // too short for a header: legacy body
  Slice peek = *in;
  uint32_t magic = 0;
  if (!GetFixed32(&peek, &magic) || magic != kTraceMagic) return true;
  if (in->size() < kTraceHdrBytes) return false;  // truncated header
  in->remove_prefix(4);
  obs::TraceContext decoded;
  if (!GetFixed64(in, &decoded.trace_id) ||
      !GetFixed64(in, &decoded.span_id) || in->empty()) {
    return false;
  }
  decoded.sampled = ((*in)[0] & kTraceFlagSampled) != 0;
  in->remove_prefix(1);
  if (ctx) *ctx = decoded;
  return true;
}

std::string EncodeMigrateChunk(uint32_t dbid, uint32_t resp_tag,
                               const std::vector<KvRecord>& records,
                               const obs::TraceContext& trace_ctx) {
  std::string out;
  PutTraceCtx(&out, trace_ctx);
  PutFixed32(&out, dbid);
  PutFixed32(&out, resp_tag);
  PutFixed32(&out, static_cast<uint32_t>(records.size()));
  for (const KvRecord& r : records) {
    PutLengthPrefixed(&out, r.key);
    PutLengthPrefixed(&out, r.value);
    out.push_back(r.tombstone ? 1 : 0);
  }
  return out;
}

bool DecodeMigrateChunk(const Slice& payload, uint32_t* dbid,
                        uint32_t* resp_tag, std::vector<KvRecord>* records,
                        obs::TraceContext* trace_ctx) {
  Slice in = payload;
  if (!GetTraceCtx(&in, trace_ctx)) return false;
  uint32_t count = 0;
  if (!GetFixed32(&in, dbid) || !GetFixed32(&in, resp_tag) ||
      !GetFixed32(&in, &count)) {
    return false;
  }
  records->clear();
  records->reserve(ReserveBound(count, in, 3));
  for (uint32_t i = 0; i < count; ++i) {
    Slice key, value;
    if (!GetLengthPrefixed(&in, &key) || !GetLengthPrefixed(&in, &value) ||
        in.empty()) {
      return false;
    }
    KvRecord r;
    r.key = key.ToString();
    r.value = value.ToString();
    r.tombstone = in[0] != 0;
    in.remove_prefix(1);
    records->push_back(std::move(r));
  }
  return in.empty();
}

std::string EncodeGetReq(uint32_t dbid, uint32_t resp_tag,
                         uint32_t caller_group, const Slice& key,
                         const obs::TraceContext& trace_ctx) {
  std::string out;
  PutTraceCtx(&out, trace_ctx);
  PutFixed32(&out, dbid);
  PutFixed32(&out, resp_tag);
  PutFixed32(&out, caller_group);
  PutLengthPrefixed(&out, key);
  return out;
}

bool DecodeGetReq(const Slice& payload, uint32_t* dbid, uint32_t* resp_tag,
                  uint32_t* caller_group, std::string* key,
                  obs::TraceContext* trace_ctx) {
  Slice in = payload;
  Slice k;
  if (!GetTraceCtx(&in, trace_ctx)) return false;
  if (!GetFixed32(&in, dbid) || !GetFixed32(&in, resp_tag) ||
      !GetFixed32(&in, caller_group) || !GetLengthPrefixed(&in, &k)) {
    return false;
  }
  *key = k.ToString();
  return in.empty();
}

std::string EncodeGetResp(const GetResp& r,
                          const obs::TraceContext& trace_ctx) {
  std::string out;
  PutTraceCtx(&out, trace_ctx);
  out.push_back(r.found ? 1 : 0);
  out.push_back(r.tombstone ? 1 : 0);
  out.push_back(r.same_group ? 1 : 0);
  PutFixed64(&out, r.latest_ssid);
  PutFixed32(&out, static_cast<uint32_t>(r.ssids.size()));
  for (uint64_t ssid : r.ssids) PutFixed64(&out, ssid);
  PutLengthPrefixed(&out, r.value);
  return out;
}

bool DecodeGetResp(const Slice& payload, GetResp* r,
                   obs::TraceContext* trace_ctx) {
  Slice in = payload;
  if (!GetTraceCtx(&in, trace_ctx)) return false;
  if (in.size() < 3) return false;
  r->found = in[0] != 0;
  r->tombstone = in[1] != 0;
  r->same_group = in[2] != 0;
  in.remove_prefix(3);
  uint32_t nssids = 0;
  if (!GetFixed64(&in, &r->latest_ssid) || !GetFixed32(&in, &nssids)) {
    return false;
  }
  // Cap the pre-allocation: nssids came off the wire, and a lying count
  // must fail in the element loop below, not as a bad_alloc here.
  r->ssids.reserve(ReserveBound(nssids, in, 8));
  for (uint32_t i = 0; i < nssids; ++i) {
    uint64_t ssid = 0;
    if (!GetFixed64(&in, &ssid)) return false;
    r->ssids.push_back(ssid);
  }
  Slice value;
  if (!GetLengthPrefixed(&in, &value)) return false;
  r->value = value.ToString();
  return in.empty();
}

namespace {
// Consumes the batch version byte; false on empty input or unknown version.
bool GetBatchVersion(Slice* in) {
  if (in->empty() || static_cast<uint8_t>((*in)[0]) != kBatchVersion) {
    return false;
  }
  in->remove_prefix(1);
  return true;
}
}  // namespace

std::string EncodePutBatch(uint32_t dbid, uint32_t resp_tag,
                           const std::vector<KvRecord>& records,
                           const obs::TraceContext& trace_ctx) {
  std::string out;
  PutTraceCtx(&out, trace_ctx);
  out.push_back(static_cast<char>(kBatchVersion));
  PutFixed32(&out, dbid);
  PutFixed32(&out, resp_tag);
  PutFixed32(&out, static_cast<uint32_t>(records.size()));
  for (const KvRecord& r : records) {
    PutLengthPrefixed(&out, r.key);
    PutLengthPrefixed(&out, r.value);
    out.push_back(r.tombstone ? 1 : 0);
  }
  return out;
}

bool DecodePutBatch(const Slice& payload, uint32_t* dbid, uint32_t* resp_tag,
                    std::vector<KvRecord>* records,
                    obs::TraceContext* trace_ctx) {
  Slice in = payload;
  if (!GetTraceCtx(&in, trace_ctx)) return false;
  if (!GetBatchVersion(&in)) return false;
  uint32_t count = 0;
  if (!GetFixed32(&in, dbid) || !GetFixed32(&in, resp_tag) ||
      !GetFixed32(&in, &count)) {
    return false;
  }
  records->clear();
  records->reserve(ReserveBound(count, in, 3));
  for (uint32_t i = 0; i < count; ++i) {
    Slice key, value;
    if (!GetLengthPrefixed(&in, &key) || !GetLengthPrefixed(&in, &value) ||
        in.empty()) {
      return false;
    }
    KvRecord r;
    r.key = key.ToString();
    r.value = value.ToString();
    r.tombstone = in[0] != 0;
    in.remove_prefix(1);
    records->push_back(std::move(r));
  }
  return in.empty();
}

std::string EncodePutBatchAck(const std::vector<int32_t>& statuses,
                              const obs::TraceContext& trace_ctx) {
  std::string out;
  PutTraceCtx(&out, trace_ctx);
  out.push_back(static_cast<char>(kBatchVersion));
  PutFixed32(&out, static_cast<uint32_t>(statuses.size()));
  for (int32_t s : statuses) PutFixed32(&out, static_cast<uint32_t>(s));
  return out;
}

bool DecodePutBatchAck(const Slice& payload, std::vector<int32_t>* statuses,
                       obs::TraceContext* trace_ctx) {
  Slice in = payload;
  if (!GetTraceCtx(&in, trace_ctx)) return false;
  if (!GetBatchVersion(&in)) return false;
  uint32_t count = 0;
  if (!GetFixed32(&in, &count)) return false;
  statuses->clear();
  statuses->reserve(ReserveBound(count, in, 4));
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t s = 0;
    if (!GetFixed32(&in, &s)) return false;
    statuses->push_back(static_cast<int32_t>(s));
  }
  return in.empty();
}

std::string EncodeGetMulti(uint32_t dbid, uint32_t resp_tag,
                           uint32_t caller_group,
                           const std::vector<GetMultiOp>& ops,
                           const obs::TraceContext& trace_ctx) {
  std::string out;
  PutTraceCtx(&out, trace_ctx);
  out.push_back(static_cast<char>(kBatchVersion));
  PutFixed32(&out, dbid);
  PutFixed32(&out, resp_tag);
  PutFixed32(&out, caller_group);
  PutFixed32(&out, static_cast<uint32_t>(ops.size()));
  for (const GetMultiOp& op : ops) {
    PutLengthPrefixed(&out, op.key);
    out.push_back(op.full_search ? static_cast<char>(kGetFullSearch) : 0);
  }
  return out;
}

bool DecodeGetMulti(const Slice& payload, uint32_t* dbid, uint32_t* resp_tag,
                    uint32_t* caller_group, std::vector<GetMultiOp>* ops,
                    obs::TraceContext* trace_ctx) {
  Slice in = payload;
  if (!GetTraceCtx(&in, trace_ctx)) return false;
  if (!GetBatchVersion(&in)) return false;
  uint32_t count = 0;
  if (!GetFixed32(&in, dbid) || !GetFixed32(&in, resp_tag) ||
      !GetFixed32(&in, caller_group) || !GetFixed32(&in, &count)) {
    return false;
  }
  ops->clear();
  ops->reserve(ReserveBound(count, in, 2));
  for (uint32_t i = 0; i < count; ++i) {
    Slice key;
    if (!GetLengthPrefixed(&in, &key) || in.empty()) return false;
    GetMultiOp op;
    op.key = key.ToString();
    op.full_search = (in[0] & kGetFullSearch) != 0;
    in.remove_prefix(1);
    ops->push_back(std::move(op));
  }
  return in.empty();
}

std::string EncodeGetMultiResp(const std::vector<GetMultiResult>& results,
                               const obs::TraceContext& trace_ctx) {
  std::string out;
  PutTraceCtx(&out, trace_ctx);
  out.push_back(static_cast<char>(kBatchVersion));
  PutFixed32(&out, static_cast<uint32_t>(results.size()));
  for (const GetMultiResult& r : results) {
    PutFixed32(&out, static_cast<uint32_t>(r.status));
    // Embed the legacy GetResp body (no nested trace header) so per-key
    // payloads stay byte-identical between the single-op and batched paths.
    PutLengthPrefixed(&out, EncodeGetResp(r.resp));
  }
  return out;
}

bool DecodeGetMultiResp(const Slice& payload,
                        std::vector<GetMultiResult>* results,
                        obs::TraceContext* trace_ctx) {
  Slice in = payload;
  if (!GetTraceCtx(&in, trace_ctx)) return false;
  if (!GetBatchVersion(&in)) return false;
  uint32_t count = 0;
  if (!GetFixed32(&in, &count)) return false;
  results->clear();
  results->reserve(ReserveBound(count, in, 5));
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t status = 0;
    Slice body;
    if (!GetFixed32(&in, &status) || !GetLengthPrefixed(&in, &body)) {
      return false;
    }
    GetMultiResult r;
    r.status = static_cast<int32_t>(status);
    if (!DecodeGetResp(body, &r.resp)) return false;
    results->push_back(std::move(r));
  }
  return in.empty();
}

std::string EncodeReplAppend(uint32_t dbid, uint32_t resp_tag,
                             const ReplAppendMeta& meta,
                             const std::vector<KvRecord>& records,
                             const obs::TraceContext& trace_ctx) {
  std::string out;
  PutTraceCtx(&out, trace_ctx);
  out.push_back(static_cast<char>(kBatchVersion));
  PutFixed32(&out, dbid);
  PutFixed32(&out, resp_tag);
  PutFixed32(&out, meta.primary);
  PutFixed64(&out, meta.epoch);
  PutFixed64(&out, meta.first_seq);
  PutFixed64(&out, meta.flushed_through);
  out.push_back(meta.reset ? 1 : 0);
  PutFixed32(&out, static_cast<uint32_t>(records.size()));
  for (const KvRecord& r : records) {
    PutLengthPrefixed(&out, r.key);
    PutLengthPrefixed(&out, r.value);
    out.push_back(r.tombstone ? 1 : 0);
  }
  return out;
}

bool DecodeReplAppend(const Slice& payload, uint32_t* dbid,
                      uint32_t* resp_tag, ReplAppendMeta* meta,
                      std::vector<KvRecord>* records,
                      obs::TraceContext* trace_ctx) {
  Slice in = payload;
  if (!GetTraceCtx(&in, trace_ctx)) return false;
  if (!GetBatchVersion(&in)) return false;
  if (!GetFixed32(&in, dbid) || !GetFixed32(&in, resp_tag) ||
      !GetFixed32(&in, &meta->primary) || !GetFixed64(&in, &meta->epoch) ||
      !GetFixed64(&in, &meta->first_seq) ||
      !GetFixed64(&in, &meta->flushed_through) || in.empty()) {
    return false;
  }
  meta->reset = in[0] != 0;
  in.remove_prefix(1);
  uint32_t count = 0;
  if (!GetFixed32(&in, &count)) return false;
  records->clear();
  records->reserve(ReserveBound(count, in, 3));
  for (uint32_t i = 0; i < count; ++i) {
    Slice key, value;
    if (!GetLengthPrefixed(&in, &key) || !GetLengthPrefixed(&in, &value) ||
        in.empty()) {
      return false;
    }
    KvRecord r;
    r.key = key.ToString();
    r.value = value.ToString();
    r.tombstone = in[0] != 0;
    in.remove_prefix(1);
    records->push_back(std::move(r));
  }
  return in.empty();
}

std::string EncodeReplAppendAck(uint64_t epoch, uint64_t acked_seq, bool ok,
                                const obs::TraceContext& trace_ctx) {
  std::string out;
  PutTraceCtx(&out, trace_ctx);
  out.push_back(static_cast<char>(kBatchVersion));
  PutFixed64(&out, epoch);
  PutFixed64(&out, acked_seq);
  out.push_back(ok ? 1 : 0);
  return out;
}

bool DecodeReplAppendAck(const Slice& payload, uint64_t* epoch,
                         uint64_t* acked_seq, bool* ok,
                         obs::TraceContext* trace_ctx) {
  Slice in = payload;
  if (!GetTraceCtx(&in, trace_ctx)) return false;
  if (!GetBatchVersion(&in)) return false;
  if (!GetFixed64(&in, epoch) || !GetFixed64(&in, acked_seq) || in.empty()) {
    return false;
  }
  *ok = in[0] != 0;
  in.remove_prefix(1);
  return in.empty();
}

std::string EncodeReplQuery(uint32_t dbid, uint32_t resp_tag,
                            uint32_t primary, bool promote,
                            const obs::TraceContext& trace_ctx) {
  std::string out;
  PutTraceCtx(&out, trace_ctx);
  out.push_back(static_cast<char>(kBatchVersion));
  PutFixed32(&out, dbid);
  PutFixed32(&out, resp_tag);
  PutFixed32(&out, primary);
  out.push_back(promote ? 1 : 0);
  return out;
}

bool DecodeReplQuery(const Slice& payload, uint32_t* dbid,
                     uint32_t* resp_tag, uint32_t* primary, bool* promote,
                     obs::TraceContext* trace_ctx) {
  Slice in = payload;
  if (!GetTraceCtx(&in, trace_ctx)) return false;
  if (!GetBatchVersion(&in)) return false;
  if (!GetFixed32(&in, dbid) || !GetFixed32(&in, resp_tag) ||
      !GetFixed32(&in, primary) || in.empty()) {
    return false;
  }
  *promote = in[0] != 0;
  in.remove_prefix(1);
  return in.empty();
}

std::string EncodeReplQueryResp(uint64_t epoch, uint64_t last_seq,
                                bool in_sync,
                                const obs::TraceContext& trace_ctx) {
  std::string out;
  PutTraceCtx(&out, trace_ctx);
  out.push_back(static_cast<char>(kBatchVersion));
  PutFixed64(&out, epoch);
  PutFixed64(&out, last_seq);
  out.push_back(in_sync ? 1 : 0);
  return out;
}

bool DecodeReplQueryResp(const Slice& payload, uint64_t* epoch,
                         uint64_t* last_seq, bool* in_sync,
                         obs::TraceContext* trace_ctx) {
  Slice in = payload;
  if (!GetTraceCtx(&in, trace_ctx)) return false;
  if (!GetBatchVersion(&in)) return false;
  if (!GetFixed64(&in, epoch) || !GetFixed64(&in, last_seq) || in.empty()) {
    return false;
  }
  *in_sync = in[0] != 0;
  in.remove_prefix(1);
  return in.empty();
}

std::string EncodeReplRead(uint32_t dbid, uint32_t resp_tag,
                           uint32_t primary, const Slice& key,
                           const obs::TraceContext& trace_ctx) {
  std::string out;
  PutTraceCtx(&out, trace_ctx);
  out.push_back(static_cast<char>(kBatchVersion));
  PutFixed32(&out, dbid);
  PutFixed32(&out, resp_tag);
  PutFixed32(&out, primary);
  PutLengthPrefixed(&out, key);
  return out;
}

bool DecodeReplRead(const Slice& payload, uint32_t* dbid, uint32_t* resp_tag,
                    uint32_t* primary, std::string* key,
                    obs::TraceContext* trace_ctx) {
  Slice in = payload;
  Slice k;
  if (!GetTraceCtx(&in, trace_ctx)) return false;
  if (!GetBatchVersion(&in)) return false;
  if (!GetFixed32(&in, dbid) || !GetFixed32(&in, resp_tag) ||
      !GetFixed32(&in, primary) || !GetLengthPrefixed(&in, &k)) {
    return false;
  }
  *key = k.ToString();
  return in.empty();
}

std::string EncodeReplReadResp(bool ok, bool found, bool tombstone,
                               const Slice& value,
                               const obs::TraceContext& trace_ctx) {
  std::string out;
  PutTraceCtx(&out, trace_ctx);
  out.push_back(static_cast<char>(kBatchVersion));
  out.push_back(ok ? 1 : 0);
  out.push_back(found ? 1 : 0);
  out.push_back(tombstone ? 1 : 0);
  PutLengthPrefixed(&out, value);
  return out;
}

bool DecodeReplReadResp(const Slice& payload, bool* ok, bool* found,
                        bool* tombstone, std::string* value,
                        obs::TraceContext* trace_ctx) {
  Slice in = payload;
  if (!GetTraceCtx(&in, trace_ctx)) return false;
  if (!GetBatchVersion(&in)) return false;
  if (in.size() < 3) return false;
  *ok = in[0] != 0;
  *found = in[1] != 0;
  *tombstone = in[2] != 0;
  in.remove_prefix(3);
  Slice v;
  if (!GetLengthPrefixed(&in, &v)) return false;
  *value = v.ToString();
  return in.empty();
}

}  // namespace papyrus::core
