#include "core/runtime.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/env.h"
#include "common/logging.h"
#include "common/timer.h"
#include "obs/export.h"
#include "repl/replicator.h"

namespace papyrus::core {

namespace {
thread_local KvRuntime* tls_runtime = nullptr;
constexpr size_t kDefaultQueueDepth = 8;

// Metric name for request traffic of opcode `op` ("" suffix = messages).
const char* OpName(int op) {
  switch (op) {
    case kOpMigrateChunk: return "migrate_chunk";
    case kOpPutSync: return "put_sync";
    case kOpGetReq: return "get_req";
    case kOpShutdown: return "shutdown";
    case kOpPutBatch: return "put_batch";
    case kOpGetMulti: return "get_multi";
    case kOpReplAppend: return "repl_append";
    case kOpReplQuery: return "repl_query";
    case kOpReplRead: return "repl_read";
  }
  return "other";
}

// Retroactively records how long `m` sat serviceable in the mailbox before
// the handler picked it up.  Called with the handler's OpSpan current, so
// the wait shows up as a child of the service span in the merged timeline.
void RecordQueueWait(const net::Message& m) {
  const uint64_t ready = std::max(m.delivered_at_us, m.visible_at_us);
  const uint64_t now = NowMicros();
  if (ready != 0 && now > ready) {
    obs::RecordSpan("net", "queue.wait", ready, now - ready);
  }
}

// Fire-and-log flight dump for fault paths (a failed dump must never turn a
// diagnosed timeout into a different error).
void DumpFlight(obs::FlightRecorder& flight, const char* reason) {
  Status s = flight.TriggerDump(reason);
  if (!s.ok()) {
    PLOG_WARN << "flight dump (" << reason << ") failed: " << s.ToString();
  }
}
}  // namespace

KvRuntime* KvRuntime::Current() { return tls_runtime; }

Status KvRuntime::Init(const std::string& repository) {
  if (tls_runtime) return Status(PAPYRUSKV_ERR, "already initialized");
  net::RankContext* ctx = net::CurrentRankContext();
  if (!ctx) {
    return Status(PAPYRUSKV_ERR,
                  "papyruskv_init must run inside an emulated rank "
                  "(net::RunRanks)");
  }
  std::string repo = repository;
  if (repo.empty()) {
    repo = EnvString("PAPYRUSKV_REPOSITORY").value_or("");
  }
  if (repo.empty()) return Status::InvalidArg("no repository configured");

  // Arm PAPYRUSKV_FAULTS (once per process) before any runtime traffic.
  Status fs = fault::InitFromEnvOnce();
  if (!fs.ok()) return fs;

  auto* rt = new KvRuntime(*ctx, repo);
  Status s = rt->layout_.Prepare(ctx->size());
  if (!s.ok()) {
    delete rt;
    return s;
  }
  rt->StartThreads();
  tls_runtime = rt;
  rt->AdoptObservability();
  // Collective: nobody proceeds until every rank's runtime is up (its
  // handler must be able to serve incoming requests).
  ctx->comm.Barrier();
  return Status::OK();
}

Status KvRuntime::Finalize() {
  KvRuntime* rt = tls_runtime;
  if (!rt) return Status(PAPYRUSKV_CLOSED, "not initialized");
  // Close any databases left open (collective-consistent since every rank
  // holds the same descriptor set).
  std::vector<int> open_ids;
  {
    MutexLock lock(&rt->dbs_mu_);
    for (const auto& [id, db] : rt->dbs_) open_ids.push_back(id);
  }
  for (int id : open_ids) {
    Status cs = rt->Close(id);
    if (!cs.ok()) {
      PLOG_WARN << "finalize: closing db " << id << " failed: "
                << cs.ToString();
    }
  }
  rt->ctx_.comm.Barrier();
  rt->StopThreads();
  // After StopThreads every thread reporting into metrics_ is joined, so
  // the snapshot below is final.  Collective (allgather) when stats are on.
  rt->ExportObservability();
  rt->ctx_.comm.Barrier();
  delete rt;
  tls_runtime = nullptr;
  obs::SetCurrentRegistry(nullptr);
  obs::SetCurrentTrace(nullptr);
  obs::SetCurrentFlight(nullptr);
  return Status::OK();
}

KvRuntime::KvRuntime(net::RankContext& ctx, const std::string& repository)
    : ctx_(ctx),
      layout_(repository, ctx.topo, /*group_size=*/-1),
      req_comm_(ctx.comm.Dup()),
      resp_comm_(ctx.comm.Dup()),
      barrier_comm_(ctx.comm.Dup()),
      restart_comm_(ctx.comm.Dup()),
      signal_comm_(ctx.comm.Dup()),
      flush_queue_(kDefaultQueueDepth),
      migration_queue_(kDefaultQueueDepth),
      retry_(fault::RetryPolicy::FromEnv()),
      crash_point_(&fault::Registry::Instance().GetPoint("rank.crash")),
      repl_drop_point_(
          &fault::Registry::Instance().GetPoint("repl.append.drop")) {
  // Resolve the runtime's hot-path metrics once; updates are then lock-free.
  g_flush_q_ = &metrics_.GetGauge("net.flush_queue_depth");
  g_mig_q_ = &metrics_.GetGauge("net.migration_queue_depth");
  h_handler_us_ = &metrics_.GetHistogram("net.handler_service_us");
  h_migration_us_ = &metrics_.GetHistogram("store.migration_us");
  for (int op = 0; op <= kOpMax; ++op) {
    const std::string base = std::string("net.req.") + OpName(op);
    c_req_msgs_[op] = &metrics_.GetCounter(base + ".msgs");
    c_req_bytes_[op] = &metrics_.GetCounter(base + ".bytes");
  }
  c_resp_msgs_ = &metrics_.GetCounter("net.resp.msgs");
  c_resp_bytes_ = &metrics_.GetCounter("net.resp.bytes");
  c_req_retries_ = &metrics_.GetCounter("net.req.retries");
  c_req_timeouts_ = &metrics_.GetCounter("net.req.timeouts");
  c_suspects_ = &metrics_.GetCounter("net.peer.suspects");
  g_async_depth_ = &metrics_.GetGauge("async.queue_depth");
  g_repl_lag_ = &metrics_.GetGauge("repl.lag_ops");
  h_kv_put_us_ = &metrics_.GetHistogram("kv.put_us");
  h_kv_get_us_ = &metrics_.GetHistogram("kv.get_us");
  // Timeline sampler (DESIGN.md §13): PAPYRUSKV_TIMELINE_MS sets the
  // window; 0/unset leaves it off.  Configure resolves the tracked-series
  // pointers now so the sampling tick itself never touches the registry
  // lock (enforced by papyrus_analyze's sampler-path walk).
  const int64_t timeline_ms = EnvInt("PAPYRUSKV_TIMELINE_MS").value_or(0);
  if (timeline_ms > 0) {
    timeline_.Configure(obs::TimelineSchema::Default(),
                        static_cast<uint64_t>(timeline_ms) * 1000);
  }
  if (EnvString("PAPYRUSKV_TRACE")) trace_.set_enabled(true);
  trace_.SetRank(ctx.rank);
  // Local kv root spans are sampled (default 1 in 64) so always-on tracing
  // stays inside the E12 overhead budget; RPC/handler/store spans are
  // never sampled.  PAPYRUSKV_TRACE_SAMPLE=1 records every operation.
  trace_.SetKvSampleEvery(static_cast<uint32_t>(
      EnvInt("PAPYRUSKV_TRACE_SAMPLE").value_or(64)));
  // Flight-recorder dump destination: PAPYRUSKV_FLIGHT wins; otherwise
  // drop flight.rank<k>.json next to the PAPYRUSKV_STATS file; with
  // neither set the recorder still records but never dumps.
  const auto flight_path = EnvString("PAPYRUSKV_FLIGHT");
  const auto stats_path = EnvString("PAPYRUSKV_STATS");
  if (flight_path && !flight_path->empty()) {
    flight_.ConfigureDump(obs::StatsPathForRank(*flight_path, ctx.rank),
                          ctx.rank);
  } else if (stats_path && !stats_path->empty()) {
    const auto slash = stats_path->find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "" : stats_path->substr(0, slash + 1);
    flight_.ConfigureDump(
        obs::StatsPathForRank(dir + "flight.json", ctx.rank), ctx.rank);
  }
}

KvRuntime::~KvRuntime() {
  MutexLock lock(&pool_mu_);
  for (char* p : pool_allocs_) free(p);
}

void KvRuntime::StartThreads() {
  compaction_thread_ = std::thread([this] { CompactionLoop(); });
  dispatcher_thread_ = std::thread([this] { DispatcherLoop(); });
  handler_thread_ = std::thread([this] { HandlerLoop(); });
  pipeline_.Start();
  // No-op unless PAPYRUSKV_TIMELINE_MS configured it; the sampler only
  // reads metrics, so it starts last and stops first.
  timeline_.Start([this] { AdoptObservability("sampler"); });
}

void KvRuntime::StopThreads() {
  // The sampler goes first (it only observes); Stop takes the tail-window
  // sample so short runs still export a series.
  timeline_.Stop();
  // Auxiliary (restart) tasks may still need the dispatcher/handler/
  // compaction threads; join them before tearing those down.
  std::vector<std::thread> aux;
  {
    MutexLock lock(&aux_mu_);
    aux.swap(aux_threads_);
  }
  for (auto& t : aux) t.join();

  // The pipeline stops first: it drains any straggling submissions while
  // every peer's handler is still up (Finalize barriers before this).
  pipeline_.Stop();

  CompactionJob stop_flush;
  stop_flush.shutdown = true;
  flush_queue_.Push(std::move(stop_flush));
  MigrationJob stop_mig;
  stop_mig.shutdown = true;
  migration_queue_.Push(std::move(stop_mig));
  // The handler exits on a self-addressed shutdown request.
  req_comm_.Send(ctx_.rank, kOpShutdown, Slice());  // lint:allow-direct-send
  compaction_thread_.join();
  dispatcher_thread_.join();
  handler_thread_.join();
}

void KvRuntime::RunAsync(std::function<void()> task) {
  MutexLock lock(&aux_mu_);
  // The aux thread works on behalf of this rank: route its metrics here.
  aux_threads_.emplace_back([this, task = std::move(task)] {
    AdoptObservability("aux");
    task();
  });
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

void KvRuntime::AdoptObservability(const char* thread_name) {
  obs::SetCurrentRegistry(&metrics_);
  obs::SetCurrentTrace(&trace_);
  obs::SetCurrentFlight(&flight_);
  trace_.SetThreadName(thread_name);
  // Rank attribution for rank-scoped failpoint triggers on this thread.
  fault::SetThreadRank(ctx_.rank);
}

std::string KvRuntime::StatsJson() const {
  obs::StatsMeta meta;
  meta.rank = ctx_.rank;
  meta.nranks = ctx_.size();
  return obs::SnapshotToJson(metrics_.TakeSnapshot(), meta);
}

std::string KvRuntime::TimelineJson() const {
  return obs::TimelineDocToJson(timeline_.Doc(ctx_.rank, ctx_.size()));
}

HealthSnapshot KvRuntime::Health() {
  HealthSnapshot h;
  h.rank = ctx_.rank;
  h.nranks = ctx_.size();
  h.crashed = crashed();
  {
    MutexLock lock(&suspect_mu_);
    h.suspect_peers = static_cast<int>(suspects_.size());
  }
  {
    MutexLock lock(&dbs_mu_);
    for (const auto& [id, db] : dbs_) {
      repl::Replicator* r = db->replicator();
      if (r && r->Degraded()) h.degraded = true;
    }
  }
  h.pipeline_queue_depth = g_async_depth_->Value();
  h.flush_queue_depth = g_flush_q_->Value();
  h.migration_queue_depth = g_mig_q_->Value();
  h.repl_lag_ops = g_repl_lag_->Value();
  const uint64_t now = NowMicros();
  h.uptime_us = now >= start_us_ ? now - start_us_ : 0;
  h.timeline_samples = timeline_.samples_taken();

  obs::TimelineSample last;
  if (timeline_.enabled() && timeline_.Latest(&last) && last.dt_us > 0) {
    // Live rates over the sampler's last window.
    h.window_us = last.dt_us;
    const auto& hists = timeline_.schema().histograms;
    const int pi = obs::SeriesIndex(hists, "kv.put_us");
    const int gi = obs::SeriesIndex(hists, "kv.get_us");
    const double secs = static_cast<double>(last.dt_us) / 1e6;
    if (pi >= 0) {
      h.put_rate = static_cast<double>(last.hists[pi].count) / secs;
      h.put_p99_us = static_cast<double>(last.hists[pi].p99);
    }
    if (gi >= 0) {
      h.get_rate = static_cast<double>(last.hists[gi].count) / secs;
      h.get_p99_us = static_cast<double>(last.hists[gi].p99);
    }
  } else {
    // Sampler off: whole-run averages from the cumulative histograms.
    h.window_us = h.uptime_us;
    const double secs =
        h.uptime_us ? static_cast<double>(h.uptime_us) / 1e6 : 1;
    const obs::HistogramData put = h_kv_put_us_->Snapshot();
    const obs::HistogramData get = h_kv_get_us_->Snapshot();
    h.put_rate = static_cast<double>(put.count) / secs;
    h.get_rate = static_cast<double>(get.count) / secs;
    h.put_p99_us = put.Percentile(99);
    h.get_p99_us = get.Percentile(99);
  }
  return h;
}

void KvRuntime::ExportObservability() {
  const auto stats_path = EnvString("PAPYRUSKV_STATS");
  if (stats_path && !stats_path->empty()) {
    obs::Snapshot snap = metrics_.TakeSnapshot();
    obs::StatsMeta meta;
    meta.rank = ctx_.rank;
    meta.nranks = ctx_.size();
    const std::string path = obs::StatsPathForRank(*stats_path, ctx_.rank);
    Status s = obs::WriteTextFile(path, obs::SnapshotToJson(snap, meta));
    if (!s.ok()) PLOG_WARN << "stats dump failed: " << s.ToString();

    // Rank-0 roll-up: every rank contributes its snapshot, rank 0 writes
    // the merged aggregate to the exact PAPYRUSKV_STATS path.
    std::vector<std::string> all;
    barrier_comm_.Allgather(obs::SerializeSnapshot(snap), &all);
    if (ctx_.rank == 0) {
      obs::Snapshot agg;
      for (const auto& wire : all) {
        obs::Snapshot part;
        if (obs::DeserializeSnapshot(wire, &part)) agg.Merge(part);
      }
      obs::StatsMeta agg_meta;
      agg_meta.rank = 0;
      agg_meta.nranks = ctx_.size();
      agg_meta.aggregated = true;
      s = obs::WriteTextFile(*stats_path, obs::SnapshotToJson(agg, agg_meta));
      if (!s.ok()) PLOG_WARN << "aggregate stats dump failed: " << s.ToString();
    }
  }
  const auto trace_path = EnvString("PAPYRUSKV_TRACE");
  if (trace_path && !trace_path->empty() && trace_.size() > 0) {
    const std::string path = obs::StatsPathForRank(*trace_path, ctx_.rank);
    Status s = trace_.WriteChromeTrace(path, ctx_.rank);
    if (!s.ok()) PLOG_WARN << "trace dump failed: " << s.ToString();
  }
  // An explicitly requested flight destination always gets a final window
  // (fault paths dump earlier, on their own, the moment they fire).
  const auto flight_path = EnvString("PAPYRUSKV_FLIGHT");
  if (flight_path && !flight_path->empty()) {
    Status s = flight_.TriggerDump("finalize");
    if (!s.ok()) PLOG_WARN << "flight dump failed: " << s.ToString();
  }
  // Timeline series (DESIGN.md §13): PAPYRUSKV_TIMELINE wins; otherwise
  // timeline.rank<k>.json next to the PAPYRUSKV_STATS file.  Only written
  // when the sampler actually ran (PAPYRUSKV_TIMELINE_MS > 0).
  if (timeline_.enabled()) {
    std::string base;
    const auto tl_path = EnvString("PAPYRUSKV_TIMELINE");
    if (tl_path && !tl_path->empty()) {
      base = *tl_path;
    } else if (stats_path && !stats_path->empty()) {
      const auto slash = stats_path->find_last_of('/');
      const std::string dir =
          slash == std::string::npos ? "" : stats_path->substr(0, slash + 1);
      base = dir + "timeline.json";
    }
    if (!base.empty()) {
      Status s = obs::WriteTextFile(obs::StatsPathForRank(base, ctx_.rank),
                                    TimelineJson());
      if (!s.ok()) PLOG_WARN << "timeline dump failed: " << s.ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Background threads
// ---------------------------------------------------------------------------

void KvRuntime::CompactionLoop() {
  AdoptObservability("compaction");
  for (;;) {
    CompactionJob job = flush_queue_.Pop();
    if (job.shutdown) return;
    g_flush_q_->Add(-1);
    if (job.task) {
      job.task();
      continue;
    }
    if (job.db && job.mem) {
      flight_.Record(obs::FlightKind::kFlush, "flush_immutable",
                     job.db->id());
      Status s = job.db->FlushImmutable(job.mem);
      if (!s.ok()) {
        PLOG_ERROR << "flush failed: " << s.ToString();
      }
    }
  }
}

void KvRuntime::DispatcherLoop() {
  AdoptObservability("dispatcher");
  for (;;) {
    MigrationJob job = migration_queue_.Pop();
    if (job.shutdown) return;
    g_mig_q_->Add(-1);
    if (!job.db || !job.mem) continue;

    obs::ScopedLatency lat(h_migration_us_);
    // Root span for the whole migration; each chunk gets its own detached
    // child below (chunks overlap and ack out of order, so they must not
    // stack on the thread's context).
    obs::OpSpan span("net", "migration");
    // §2.4 migration: sort by owner, accumulate per rank, send one chunk
    // per owner, then wait for the acks confirming application.
    auto chunks = job.db->CollectOwnerChunks(*job.mem);
    if (crashed()) {
      // A crashed rank emits no traffic; drop the payload but keep the
      // drain bookkeeping so a fence on this rank cannot hang.
      job.db->MigrationFinished(job.mem);
      continue;
    }
    struct Pending {
      int owner;
      std::string payload;
      int tag;
      std::unique_ptr<obs::OpSpan> rpc;  // open until the chunk is acked
    };
    std::vector<Pending> pending;
    pending.reserve(chunks.size());
    for (auto& [owner, records] : chunks) {
      assert(owner != ctx_.rank &&
             "remote MemTable must not hold self-owned pairs");
      const int tag = AllocRespTag();
      auto rpc = std::make_unique<obs::OpSpan>(
          "net", "migrate_chunk.rpc", obs::OpSpan::kDetached);
      rpc->MarkFlowOut();
      Pending p;
      p.owner = owner;
      p.payload = EncodeMigrateChunk(job.db->id(), static_cast<uint32_t>(tag),
                                     records, rpc->context());
      p.tag = tag;
      p.rpc = std::move(rpc);
      pending.push_back(std::move(p));
    }
    for (const auto& p : pending) {
      flight_.Record(obs::FlightKind::kOpBegin, "migrate_chunk", p.owner,
                     retry_.max_attempts);
      SendRequest(p.owner, kOpMigrateChunk, p.payload);
    }
    for (auto& p : pending) {
      // Bounded re-send on a lost chunk or ack.  Re-applying a chunk is
      // idempotent (the handler replays the same records in order), and the
      // dispatcher holds this migration until acked, so no later chunk from
      // this rank can interleave with the retry.
      net::Message ack;
      bool acked =
          resp_comm_.RecvFor(p.owner, p.tag, retry_.reply_timeout_us, &ack);
      for (int attempt = 1; attempt < retry_.max_attempts && !acked;
           ++attempt) {
        c_req_retries_->Inc();
        flight_.Record(obs::FlightKind::kRetry, "migrate_chunk", p.owner,
                       attempt);
        PreciseSleepMicros(retry_.BackoffUs(attempt));
        SendRequest(p.owner, kOpMigrateChunk, p.payload);
        acked =
            resp_comm_.RecvFor(p.owner, p.tag, retry_.reply_timeout_us, &ack);
      }
      p.rpc.reset();  // close the chunk's RPC span at ack (or give-up) time
      if (!acked) {
        // The fence must still complete: surface the peer as suspect and
        // move on rather than wedging every thread behind this migration.
        c_req_timeouts_->Inc();
        flight_.Record(obs::FlightKind::kTimeout, "migrate_chunk", p.owner,
                       retry_.max_attempts);
        MarkSuspect(p.owner);
        PLOG_ERROR << "migration chunk to rank " << p.owner
                   << " unacknowledged after " << retry_.max_attempts
                   << " attempts";
        DumpFlight(flight_, "migration unacked");
      } else {
        flight_.Record(obs::FlightKind::kOpEnd, "migrate_chunk", p.owner);
      }
    }
    job.db->MigrationFinished(job.mem);
  }
}

void KvRuntime::HandlerLoop() {
  AdoptObservability("handler");
  for (;;) {
    // The handler parks on the request stream by design: shutdown arrives
    // as a self-addressed kOpShutdown message (never dropped — loopback is
    // exempt from fault injection), not as a deadline.
    // analyze:allow-proto-deadlock: shutdown is delivered as a loopback
    // kOpShutdown message that cannot be lost, so this wait always ends
    net::Message m = req_comm_.Recv();
    // Fail-stop (§4.2): a crashed rank must not answer requests — a reply
    // served from its emptied store would read as an authoritative miss and
    // mask the failover path.  Only the loopback shutdown is still honored;
    // peers see silence and drive their own retry/suspect/promotion logic.
    if (crashed() && m.tag != kOpShutdown) continue;
    // Service time only (the Recv wait above is idle time, not load).
    obs::ScopedLatency lat(h_handler_us_);
    switch (m.tag) {
      case kOpMigrateChunk:
        HandleMigrateChunk(m, /*sync_put=*/false);
        break;
        // analyze:allow-proto-handler: legacy single-op kind — new code sends
      // kOpPutBatch, but mixed-version peers may still send this
      case kOpPutSync:
        HandleMigrateChunk(m, /*sync_put=*/true);
        break;
      // analyze:allow-proto-handler: legacy single-op kind — new code sends
      // kOpGetMulti, but mixed-version peers may still send this
      case kOpGetReq:
        HandleGetReq(m);
        break;
      case kOpPutBatch:
        HandlePutBatch(m);
        break;
      case kOpGetMulti:
        HandleGetMulti(m);
        break;
      case kOpReplAppend:
        HandleReplAppend(m);
        break;
      case kOpReplQuery:
        HandleReplQuery(m);
        break;
      case kOpReplRead:
        HandleReplRead(m);
        break;
      case kOpShutdown:
        return;
      default:
        PLOG_WARN << "handler: unknown opcode " << m.tag;
        break;
    }
  }
}

void KvRuntime::HandleMigrateChunk(const net::Message& m, bool sync_put) {
  uint32_t dbid = 0, resp_tag = 0;
  std::vector<KvRecord> records;
  obs::TraceContext ctx;
  if (!DecodeMigrateChunk(m.payload, &dbid, &resp_tag, &records, &ctx)) {
    PLOG_ERROR << "handler: malformed migrate chunk from rank " << m.src;
    return;
  }
  // Child of the caller's RPC span (flow-linked across ranks).
  obs::OpSpan span("net",
                   sync_put ? "handle.put_sync" : "handle.migrate_chunk",
                   ctx);
  RecordQueueWait(m);
  DbShardPtr db = Find(static_cast<int>(dbid));
  if (db) {
    Status s = db->ApplyRecords(records);
    if (!s.ok()) {
      PLOG_ERROR << "handler: apply failed: " << s.ToString();
    }
  } else {
    PLOG_WARN << "handler: " << (sync_put ? "put" : "migration")
              << " for unknown db " << dbid;
  }
  // Ack after application — fences rely on this ordering.  Under
  // replication the ack additionally waits for the applied ops to reach
  // quorum (DESIGN.md §12); the deferred closure fires from the pipeline
  // thread when the append acks land, so the handler never blocks here.
  if (db) {
    if (repl::Replicator* r = db->replicator()) {
      const int src = m.src;
      const int tag = static_cast<int>(resp_tag);
      r->AckWhenDurable(r->last_seq(),
                        [this, src, tag] { SendResponse(src, tag, Slice()); });
      return;
    }
  }
  SendResponse(m.src, static_cast<int>(resp_tag), Slice());
}

void KvRuntime::HandleGetReq(const net::Message& m) {
  uint32_t dbid = 0, resp_tag = 0, caller_group = 0;
  std::string key;
  obs::TraceContext ctx;
  if (!DecodeGetReq(m.payload, &dbid, &resp_tag, &caller_group, &key, &ctx)) {
    PLOG_ERROR << "handler: malformed get request from rank " << m.src;
    return;
  }
  // Child of the caller's RPC span; its own context rides the response so
  // the reply carries the service span's identity back to the caller.
  obs::OpSpan span("net", "handle.get_req", ctx);
  RecordQueueWait(m);
  GetResp resp;
  DbShardPtr db = Find(static_cast<int>(dbid));
  if (db) resp = db->HandleRemoteGet(key, caller_group);
  SendResponse(m.src, static_cast<int>(resp_tag),
               EncodeGetResp(resp, span.context()));
}

void KvRuntime::HandlePutBatch(const net::Message& m) {
  uint32_t dbid = 0, resp_tag = 0;
  std::vector<KvRecord> records;
  obs::TraceContext ctx;
  if (!DecodePutBatch(m.payload, &dbid, &resp_tag, &records, &ctx)) {
    PLOG_ERROR << "handler: malformed put batch from rank " << m.src;
    return;
  }
  // Child of the pipeline's put_batch.rpc span (flow-linked across ranks):
  // the entire batch is serviced under one handler wakeup.
  obs::OpSpan span("net", "handle.put_batch", ctx);
  RecordQueueWait(m);
  std::vector<int32_t> statuses;
  DbShardPtr db = Find(static_cast<int>(dbid));
  if (db) {
    statuses = db->ApplyBatch(records);
  } else {
    statuses.assign(records.size(), PAPYRUSKV_INVALID_DB);
    PLOG_WARN << "handler: put batch for unknown db " << dbid;
  }
  // One batched ack, sent after application (fences rely on this ordering),
  // carrying one status per op so partial failures surface per op.  Under
  // replication the ack is deferred until every op of the batch reached
  // quorum (DESIGN.md §12): the writer's fenced event completes only once
  // the data survives this rank's death.
  std::string ack = EncodePutBatchAck(statuses, span.context());
  if (db) {
    if (repl::Replicator* r = db->replicator()) {
      const int src = m.src;
      const int tag = static_cast<int>(resp_tag);
      r->AckWhenDurable(r->last_seq(),
                        [this, src, tag, ack = std::move(ack)] {
                          SendResponse(src, tag, ack);
                        });
      return;
    }
  }
  SendResponse(m.src, static_cast<int>(resp_tag), ack);
}

void KvRuntime::HandleGetMulti(const net::Message& m) {
  uint32_t dbid = 0, resp_tag = 0, caller_group = 0;
  std::vector<GetMultiOp> ops;
  obs::TraceContext ctx;
  if (!DecodeGetMulti(m.payload, &dbid, &resp_tag, &caller_group, &ops,
                      &ctx)) {
    PLOG_ERROR << "handler: malformed get multi from rank " << m.src;
    return;
  }
  obs::OpSpan span("net", "handle.get_multi", ctx);
  RecordQueueWait(m);
  std::vector<GetMultiResult> results(ops.size());
  DbShardPtr db = Find(static_cast<int>(dbid));
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!db) {
      results[i].status = PAPYRUSKV_INVALID_DB;
      continue;
    }
    // The full-search flag replaces the legacy caller_group=0xffffffff
    // convention per op (§2.7 fallback after a failed shared read).
    results[i].resp = db->HandleRemoteGet(
        ops[i].key, ops[i].full_search ? 0xffffffffu : caller_group);
  }
  SendResponse(m.src, static_cast<int>(resp_tag),
               EncodeGetMultiResp(results, span.context()));
}

void KvRuntime::HandleReplAppend(const net::Message& m) {
  uint32_t dbid = 0, resp_tag = 0;
  ReplAppendMeta meta;
  std::vector<KvRecord> records;
  obs::TraceContext ctx;
  if (!DecodeReplAppend(m.payload, &dbid, &resp_tag, &meta, &records, &ctx)) {
    PLOG_ERROR << "handler: malformed repl append from rank " << m.src;
    return;
  }
  obs::OpSpan span("net", "handle.repl_append", ctx);
  RecordQueueWait(m);
  if (fault::Enabled() && repl_drop_point_->Fire()) {
    // Injected stream loss: no ack, so the primary's frame retry redelivers
    // and the follower's sequence check deduplicates the replay.
    flight_.Record(obs::FlightKind::kFailpoint, "repl.append.drop", m.src);
    return;
  }
  repl::Replicator::ApplyResult r;
  DbShardPtr db = Find(static_cast<int>(dbid));
  if (db && db->replicator()) {
    r = db->replicator()->ApplyReplAppend(meta, records);
  } else {
    // Replication not configured on this rank (mixed options).  NACK with
    // epoch 0 — never a live stream epoch, so the primary ignores it rather
    // than entering a resync loop; this follower simply never acks.
    r.ok = false;
    r.epoch = 0;
    r.acked_seq = 0;
  }
  SendResponse(m.src, static_cast<int>(resp_tag),
               EncodeReplAppendAck(r.epoch, r.acked_seq, r.ok,
                                   span.context()));
}

void KvRuntime::HandleReplQuery(const net::Message& m) {
  uint32_t dbid = 0, resp_tag = 0, primary = 0;
  bool promote = false;
  obs::TraceContext ctx;
  if (!DecodeReplQuery(m.payload, &dbid, &resp_tag, &primary, &promote,
                       &ctx)) {
    PLOG_ERROR << "handler: malformed repl query from rank " << m.src;
    return;
  }
  obs::OpSpan span("net", "handle.repl_query", ctx);
  RecordQueueWait(m);
  uint64_t epoch = 0, last_seq = 0;
  bool in_sync = false;
  DbShardPtr db = Find(static_cast<int>(dbid));
  if (db && db->replicator()) {
    // Report the shadow's pre-promotion progress: promotion consumes the
    // shadow log, so the probe result must be captured first.
    db->replicator()->QueryShadow(static_cast<int>(primary), &epoch,
                                  &last_seq, &in_sync);
    if (db->HasPromoted(static_cast<int>(primary))) {
      // Already serving this partition (the takeover emptied the shadow the
      // probe just scored).  Report maximal progress so every later elector
      // converges here instead of promoting a second, diverging replica.
      epoch = UINT64_MAX;
      in_sync = true;
    }
    if (promote) {
      Status s = db->PromoteSelf(static_cast<int>(primary));
      if (!s.ok()) {
        PLOG_ERROR << "promotion for dead rank " << primary
                   << " failed: " << s.ToString();
        in_sync = false;  // the elector treats the reply as a refusal
      }
    }
  }
  SendResponse(m.src, static_cast<int>(resp_tag),
               EncodeReplQueryResp(epoch, last_seq, in_sync, span.context()));
}

void KvRuntime::HandleReplRead(const net::Message& m) {
  uint32_t dbid = 0, resp_tag = 0, primary = 0;
  std::string key;
  obs::TraceContext ctx;
  if (!DecodeReplRead(m.payload, &dbid, &resp_tag, &primary, &key, &ctx)) {
    PLOG_ERROR << "handler: malformed repl read from rank " << m.src;
    return;
  }
  obs::OpSpan span("net", "handle.repl_read", ctx);
  RecordQueueWait(m);
  // A shadow hit (including a tombstone) is authoritative for the volatile
  // tail; a miss is NOT a not-found — the shadow only covers the stream
  // since the last reset — so ok=0 sends the caller back to the owner.
  bool ok = false, tombstone = false;
  std::string value;
  DbShardPtr db = Find(static_cast<int>(dbid));
  if (db && db->replicator()) {
    ok = db->replicator()->ShadowGet(static_cast<int>(primary), key, &value,
                                     &tombstone);
  }
  SendResponse(m.src, static_cast<int>(resp_tag),
               EncodeReplReadResp(ok, /*found=*/ok, tombstone, value,
                                  span.context()));
}

// ---------------------------------------------------------------------------
// Transport helpers
// ---------------------------------------------------------------------------

void KvRuntime::SendRequest(int dst, int op, const Slice& payload) {
  const int slot = (op >= 1 && op <= kOpMax) ? op : 0;
  c_req_msgs_[slot]->Inc();
  c_req_bytes_[slot]->Inc(payload.size());
  req_comm_.Send(dst, op, payload);  // lint:allow-direct-send
}

void KvRuntime::SendResponse(int dst, int tag, const Slice& payload) {
  c_resp_msgs_->Inc();
  c_resp_bytes_->Inc(payload.size());
  resp_comm_.Send(dst, tag, payload);  // lint:allow-direct-send
}

net::Message KvRuntime::RecvResponse(int src, int tag) {
  // Fixed-tag reply paths (restart redistribution) run single-file with no
  // retry, so a lost reply here would wedge — which is why every path that
  // can see message loss uses RequestReply instead.
  // analyze:allow-proto-deadlock: only the single-file restart task calls
  // this, after fault injection is disabled — its reply cannot be lost
  return resp_comm_.Recv(src, tag);
}

Status KvRuntime::RequestReply(int dst, int op, const Slice& payload,
                               int resp_tag, net::Message* reply) {
  flight_.Record(obs::FlightKind::kOpBegin, OpName(op), dst,
                 retry_.max_attempts);
  for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    if (attempt > 1) {
      c_req_retries_->Inc();
      flight_.Record(obs::FlightKind::kRetry, OpName(op), dst, attempt);
      PreciseSleepMicros(retry_.BackoffUs(attempt - 1));
    }
    SendRequest(dst, op, payload);
    if (resp_comm_.RecvFor(dst, resp_tag, retry_.reply_timeout_us, reply)) {
      flight_.Record(obs::FlightKind::kOpEnd, OpName(op), dst);
      return Status::OK();
    }
  }
  c_req_timeouts_->Inc();
  flight_.Record(obs::FlightKind::kTimeout, OpName(op), dst,
                 retry_.max_attempts);
  MarkSuspect(dst);
  // Post-mortem: the ring now ends with the begin/retry/timeout story of
  // the op that failed and the peer that failed it.
  DumpFlight(flight_, "request timeout");
  return Status::Timeout("no reply from rank " + std::to_string(dst) +
                         " for op " + std::to_string(op) + " after " +
                         std::to_string(retry_.max_attempts) + " attempts");
}

Status KvRuntime::CollectiveBarrier() {
  if (barrier_comm_.BarrierFor(retry_.barrier_timeout_us)) return Status::OK();
  return Status::Timeout("collective barrier timed out");
}

Status KvRuntime::RestartBarrier() {
  if (restart_comm_.BarrierFor(retry_.barrier_timeout_us)) return Status::OK();
  return Status::Timeout("restart barrier timed out");
}

// ---------------------------------------------------------------------------
// Simulated rank failure
// ---------------------------------------------------------------------------

Status KvRuntime::CheckAlive() {
  if (crashed_.load(std::memory_order_acquire)) {
    return Status(PAPYRUSKV_ERR, "rank crashed (simulated)");
  }
  if (fault::Enabled() && crash_point_->Fire()) {
    TriggerCrash();
    return Status(PAPYRUSKV_ERR, "rank crashed (simulated)");
  }
  return Status::OK();
}

void KvRuntime::TriggerCrash() {
  bool expected = false;
  if (!crashed_.compare_exchange_strong(expected, true)) return;
  PLOG_WARN << "simulated crash: rank " << ctx_.rank
            << " dropping volatile state";
  metrics_.GetCounter("fault.rank_crash").Inc();
  flight_.Record(obs::FlightKind::kCrash, "rank", ctx_.rank);
  std::vector<DbShardPtr> dbs;
  {
    MutexLock lock(&dbs_mu_);
    for (const auto& [id, db] : dbs_) dbs.push_back(db);
  }
  // The NVM image (SSTables already flushed) survives, exactly like a real
  // power loss; everything in DRAM is gone.
  for (const auto& db : dbs) db->DropVolatile();
  // The last act of a dying rank: persist the window that explains it.
  DumpFlight(flight_, "simulated crash");
}

void KvRuntime::MarkSuspect(int rank) {
  {
    MutexLock lock(&suspect_mu_);
    if (!suspects_.insert(rank).second) return;  // already suspect
  }
  c_suspects_->Inc();
  flight_.Record(obs::FlightKind::kSuspect, "peer", rank);
}

bool KvRuntime::IsSuspect(int rank) {
  MutexLock lock(&suspect_mu_);
  return suspects_.count(rank) > 0;
}

void KvRuntime::ClearFaultState() {
  crashed_.store(false, std::memory_order_release);
  MutexLock lock(&suspect_mu_);
  suspects_.clear();
}

// ---------------------------------------------------------------------------
// Database lifecycle
// ---------------------------------------------------------------------------

Status KvRuntime::Open(const std::string& name, int flags, const Options& opt,
                       int* db_out) {
  if (name.empty() || !db_out) return Status::InvalidArg("open");
  (void)flags;  // creation is implicit; flags carry protection hints below

  Options effective = opt;
  // RDWR is WRONLY|RDONLY, so match the masked value exactly.
  switch (flags & PAPYRUSKV_RDWR) {
    case PAPYRUSKV_RDONLY:
      effective.protection = PAPYRUSKV_RDONLY;
      break;
    case PAPYRUSKV_WRONLY:
      effective.protection = PAPYRUSKV_WRONLY;
      break;
    case PAPYRUSKV_RDWR:
      effective.protection = PAPYRUSKV_RDWR;
      break;
    default:
      break;  // no protection bits: keep the option block's setting
  }

  int id;
  DbShardPtr db;
  {
    MutexLock lock(&dbs_mu_);
    id = next_db_id_++;
    db = std::make_shared<DbShard>(*this, static_cast<uint32_t>(id), name,
                                   effective);
    dbs_.emplace(id, db);
  }
  Status s = db->Open();
  if (!s.ok()) {
    MutexLock lock(&dbs_mu_);
    dbs_.erase(id);
    return s;
  }
  // Collective: every rank allocates ids in open order, so descriptors are
  // identical across ranks (§2.3), and nobody touches the database before
  // all ranks have it registered (remote requests would find no shard).
  s = CollectiveBarrier();
  if (!s.ok()) return s;
  *db_out = id;
  return Status::OK();
}

Status KvRuntime::Close(int id) {
  DbShardPtr db = Find(id);
  if (!db) return Status(PAPYRUSKV_INVALID_DB);
  // Collective.  Flush everything so the SSTables on NVM form a complete
  // image — this is what the zero-copy workflow (§4.1) reopens.
  Status s = db->FlushAll();
  {
    MutexLock lock(&dbs_mu_);
    dbs_.erase(id);
  }
  Status bs = CollectiveBarrier();
  return s.ok() ? bs : s;
}

DbShardPtr KvRuntime::Find(int id) {
  MutexLock lock(&dbs_mu_);
  auto it = dbs_.find(id);
  return it == dbs_.end() ? nullptr : it->second;
}

// ---------------------------------------------------------------------------
// Signals (§3.1)
// ---------------------------------------------------------------------------

Status KvRuntime::SignalNotify(int signum, const int* ranks, int count) {
  if (signum < 0 || (count > 0 && !ranks)) {
    return Status::InvalidArg("signal_notify");
  }
  for (int i = 0; i < count; ++i) {
    if (ranks[i] < 0 || ranks[i] >= size()) {
      return Status::InvalidArg("signal_notify: bad rank");
    }
    signal_comm_.Send(ranks[i], signum, Slice());  // lint:allow-direct-send
  }
  return Status::OK();
}

Status KvRuntime::SignalWait(int signum, const int* ranks, int count) {
  if (signum < 0 || (count > 0 && !ranks)) {
    return Status::InvalidArg("signal_wait");
  }
  for (int i = 0; i < count; ++i) {
    if (ranks[i] < 0 || ranks[i] >= size()) {
      return Status::InvalidArg("signal_wait: bad rank");
    }
    net::Message m;
    if (!signal_comm_.RecvFor(ranks[i], signum, retry_.barrier_timeout_us,
                              &m)) {
      return Status::Timeout("signal wait exceeded its deadline");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Value pool
// ---------------------------------------------------------------------------

char* KvRuntime::AllocValue(size_t n) {
  char* p = static_cast<char*>(malloc(n ? n : 1));
  if (!p) return nullptr;
  MutexLock lock(&pool_mu_);
  pool_allocs_.insert(p);
  return p;
}

Status KvRuntime::FreeValue(char* p) {
  if (!p) return Status::OK();
  MutexLock lock(&pool_mu_);
  auto it = pool_allocs_.find(p);
  if (it == pool_allocs_.end()) {
    return Status::InvalidArg("papyruskv_free: pointer not from pool");
  }
  pool_allocs_.erase(it);
  free(p);
  return Status::OK();
}

Status KvRuntime::WaitEvent(int event) { return events_.WaitAndErase(event); }

// ---------------------------------------------------------------------------
// Async-op handles (papyruskv_*_async / papyruskv_wait)
// ---------------------------------------------------------------------------

int KvRuntime::RegisterAsyncOp(AsyncOp op) {
  MutexLock lock(&async_mu_);
  // The id sequence wraps within [kAsyncEventBase, INT_MAX) instead of
  // overflowing (signed UB) into the EventRegistry's range below
  // kAsyncEventBase; after a wrap, ids still outstanding are skipped.
  for (;;) {
    const int id = next_async_id_;
    next_async_id_ = id >= std::numeric_limits<int>::max() - 1
                         ? kAsyncEventBase
                         : id + 1;
    // try_emplace: `op` is moved only when the id was actually free.
    if (async_ops_.try_emplace(id, std::move(op)).second) return id;
  }
}

Status KvRuntime::ReapAsyncOps() {
  std::vector<AsyncOp> reaped;
  {
    MutexLock lock(&async_mu_);
    for (auto it = async_ops_.begin(); it != async_ops_.end();) {
      if (!it->second.is_get && it->second.handle->done()) {
        reaped.push_back(std::move(it->second));
        it = async_ops_.erase(it);
      } else {
        ++it;
      }
    }
  }
  Status first = Status::OK();
  for (const AsyncOp& op : reaped) {
    Status s = op.handle->Wait();  // done: returns without blocking
    if (!s.ok() && first.ok()) first = std::move(s);
  }
  return first;
}

Status KvRuntime::WaitAsyncOp(int id) {
  AsyncOp op;
  {
    MutexLock lock(&async_mu_);
    auto it = async_ops_.find(id);
    if (it == async_ops_.end()) return Status(PAPYRUSKV_INVALID_EVENT);
    op = std::move(it->second);
    async_ops_.erase(it);
  }
  if (!op.is_get) return op.handle->Wait();
  // Get completion: §2.7 post-processing (cache fills, foreign-SSTable
  // search, fallback re-query) runs here on the waiting thread, then the
  // value lands under the same buffer contract as papyruskv_get.
  std::string out;
  Status s = op.db->FinishGet(op.key, op.handle, &out);
  if (!s.ok()) return s;
  if (*op.value == nullptr) {
    char* buf = AllocValue(out.size());
    if (!buf) return Status(PAPYRUSKV_OUT_OF_MEMORY);
    memcpy(buf, out.data(), out.size());
    *op.value = buf;
  } else {
    if (*op.vallen < out.size()) {
      *op.vallen = out.size();
      return Status::InvalidArg("value buffer too small");
    }
    memcpy(*op.value, out.data(), out.size());
  }
  *op.vallen = out.size();
  return Status::OK();
}

}  // namespace papyrus::core
