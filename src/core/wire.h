// Wire protocol between rank runtimes.
//
// Paper §2.4/§2.6: the message dispatcher (sender side) and message handler
// (receiver side) exchange request/response messages over communicators
// private to the PapyrusKV runtime.  The message kinds:
//
//   kOpMigrateChunk — relaxed-mode migration: a batch of key-value pairs
//       accumulated per owner from an immutable remote MemTable.  The
//       handler applies the batch to its local MemTable, then acks (the ack
//       is what lets fence/barrier know all data has *landed*, not merely
//       been sent).
//   kOpPutSync — sequential-mode put/delete: a single pair, applied
//       synchronously; the caller blocks until the ack (§3.1).
//   kOpGetReq / GetResp — remote get.  The request carries the caller's
//       storage-group id; when it matches the owner's, the owner searches
//       only its in-memory structures and returns `same_group` plus its
//       latest flushed SSID so the caller can search the shared SSTables
//       itself (§2.7).
//   kOpShutdown — runtime teardown for the handler loop.
//
// Requests travel on the request communicator with tag = opcode; responses
// on the response communicator with the tag the requester wrote into the
// request header, so concurrent requesting threads (app thread, dispatcher,
// restart task) never steal each other's replies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"
#include "obs/trace.h"

namespace papyrus::core {

// ---- Trace-context header (versioned, optional) ----------------------------
// When the sender has an active sampled trace (obs::OpSpan), every message
// kind below is prefixed with
//
//   [u32 kTraceMagic][u64 trace_id][u64 span_id][u8 flags]
//
// ahead of its legacy body.  The magic's low byte (the first byte on the
// wire, little-endian) is 0xff, which no legacy payload can start with:
// MigrateChunk/GetReq begin with a small sequential dbid and GetResp with a
// 0/1 `found` byte.  Decoders peek the first word — absent magic means a
// legacy payload, so old-format messages round-trip unchanged through new
// code and new no-context messages are byte-identical to the old encoding.
// `flags` bit 0 = sampled; other bits reserved for future versions.
inline constexpr uint32_t kTraceMagic = 0x54524cffu;  // "\xffLRT" on the wire

// Appends the trace header to `out` when `ctx` is a live sampled context.
void PutTraceCtx(std::string* out, const obs::TraceContext& ctx);
// Consumes a leading trace header from `in` if present; fills `ctx` (left
// invalid when the payload is legacy-format or ctx is null).  Returns false
// only on a malformed (truncated) header.
bool GetTraceCtx(Slice* in, obs::TraceContext* ctx);

enum WireOp : int {
  kOpMigrateChunk = 1,
  kOpPutSync = 2,
  kOpGetReq = 3,
  kOpShutdown = 4,
  // Batched submission/completion pipeline (src/async/, DESIGN.md §9):
  //   kOpPutBatch — N coalesced puts/deletes for one destination, acked by
  //       a single batched ack carrying one status per op;
  //   kOpGetMulti — N coalesced get requests for one destination, answered
  //       by one response carrying a full GetResp per key.
  // The legacy single-op kinds above remain decodable (and kOpPutSync
  // remains serviceable) so mixed-version traffic degrades gracefully.
  kOpPutBatch = 5,
  kOpGetMulti = 6,
  // Intra-group k-way replication (src/repl/, DESIGN.md §12):
  //   kOpReplAppend — a primary streams a run of committed ops (epoch +
  //       contiguous sequence numbers) to one follower, which applies them
  //       to its shadow MemTable and acks by (epoch, seq);
  //   kOpReplQuery — failover election: ask a follower how caught-up its
  //       shadow log is; with the promote flag set, tell the winning
  //       follower to replay its shadow tail and take over the primary's
  //       hash slots;
  //   kOpReplRead — read-from-replica: serve a get from the follower's
  //       shadow MemTable (PAPYRUSKV_READ_REPLICAS=1), falling back to the
  //       owner on a shadow miss.
  kOpReplAppend = 7,
  kOpReplQuery = 8,
  kOpReplRead = 9,
};

// Highest opcode value — sizing bound for per-opcode metric arrays.
inline constexpr int kOpMax = kOpReplRead;

// Response-communicator tags, one per requester role within a rank.
//
// With retry-on-timeout (DESIGN.md §8) a fixed per-role tag is no longer
// enough: a retried request's reply could be satisfied by the *original*
// attempt's late reply, and the original's reply would then alias the next
// request from the same role.  Requests that may be retried therefore carry
// a unique tag from KvRuntime::AllocRespTag() (>= kDynamicRespTagBase);
// stale replies to abandoned tags sit harmlessly in the mailbox.  The fixed
// tags below remain for the restart task, which runs single-file.
//
// Fixed tags live strictly between the opcode space and the dynamic-tag
// floor (kOpMax < tag < kDynamicRespTagBase), so a response tag can never
// be mistaken for an opcode or collide with an AllocRespTag() value — the
// static_asserts below pin the partition.
enum RespTag : int {
  kTagGetResp = 16,     // application thread gets
  kTagPutAck = 17,      // application thread sequential puts
  kTagMigrateAck = 18,  // dispatcher chunk acks
  kTagRedistAck = 19,   // restart-with-redistribution task
};

// First tag handed out by KvRuntime::AllocRespTag(); fixed RespTag values
// stay below it.
inline constexpr int kDynamicRespTagBase = 100;

// Tag-space partition: opcodes < fixed response tags < dynamic tags.
static_assert(kOpMax < kTagGetResp && kOpMax < kTagPutAck &&
                  kOpMax < kTagMigrateAck && kOpMax < kTagRedistAck,
              "fixed RespTag values must sit above the opcode space");
static_assert(kTagGetResp < kDynamicRespTagBase &&
                  kTagPutAck < kDynamicRespTagBase &&
                  kTagMigrateAck < kDynamicRespTagBase &&
                  kTagRedistAck < kDynamicRespTagBase,
              "fixed RespTag values must sit below the dynamic-tag floor");
static_assert(kOpMax < kDynamicRespTagBase,
              "opcode space must stay below the response-tag floor");

struct KvRecord {
  std::string key;
  std::string value;
  bool tombstone = false;
};

// ---- MigrateChunk / PutSync ------------------------------------------------
// [trace hdr?][u32 dbid][u32 resp_tag][u32 count]
//   count × ([lp key][lp value][u8 tomb])
std::string EncodeMigrateChunk(uint32_t dbid, uint32_t resp_tag,
                               const std::vector<KvRecord>& records,
                               const obs::TraceContext& trace_ctx = {});
bool DecodeMigrateChunk(const Slice& payload, uint32_t* dbid,
                        uint32_t* resp_tag, std::vector<KvRecord>* records,
                        obs::TraceContext* trace_ctx = nullptr);

// ---- GetReq ----------------------------------------------------------------
// [trace hdr?][u32 dbid][u32 resp_tag][u32 caller_group][lp key]
std::string EncodeGetReq(uint32_t dbid, uint32_t resp_tag,
                         uint32_t caller_group, const Slice& key,
                         const obs::TraceContext& trace_ctx = {});
bool DecodeGetReq(const Slice& payload, uint32_t* dbid, uint32_t* resp_tag,
                  uint32_t* caller_group, std::string* key,
                  obs::TraceContext* trace_ctx = nullptr);

// ---- GetResp ---------------------------------------------------------------
// [trace hdr?][u8 found][u8 tombstone][u8 same_group][u64 latest_ssid]
// [u32 nssids][u64 ...][lp value]
//
// `ssids` is the owner's exact live SSTable list (newest first) at response
// time, filled on a same-group memory miss.  The caller searches only these
// tables on the shared NVM: a stale reader cached from before an owner
// compaction can never be consulted, so purged tombstones cannot resurrect.
struct GetResp {
  bool found = false;
  bool tombstone = false;
  bool same_group = false;
  uint64_t latest_ssid = 0;
  std::vector<uint64_t> ssids;
  std::string value;
};
std::string EncodeGetResp(const GetResp& r,
                          const obs::TraceContext& trace_ctx = {});
bool DecodeGetResp(const Slice& payload, GetResp* r,
                   obs::TraceContext* trace_ctx = nullptr);

// ---- Batched submission/completion codec (versioned) -----------------------
// Every batch frame starts (after the optional trace header) with a one-byte
// format version so the wire protocol can evolve without re-keying opcodes.
// Decoders reject frames whose version they do not know; v1 is the only
// version today.  The version byte (0x01) can never alias the trace magic
// (first wire byte 0xff) nor a legacy body (those begin with a small dbid /
// found byte and are carried under different opcodes anyway).
inline constexpr uint8_t kBatchVersion = 1;

// ---- PutBatch --------------------------------------------------------------
// [trace hdr?][u8 ver][u32 dbid][u32 resp_tag][u32 count]
//   count × ([lp key][lp value][u8 tomb])
std::string EncodePutBatch(uint32_t dbid, uint32_t resp_tag,
                           const std::vector<KvRecord>& records,
                           const obs::TraceContext& trace_ctx = {});
bool DecodePutBatch(const Slice& payload, uint32_t* dbid, uint32_t* resp_tag,
                    std::vector<KvRecord>* records,
                    obs::TraceContext* trace_ctx = nullptr);

// ---- PutBatchAck -----------------------------------------------------------
// [trace hdr?][u8 ver][u32 count] count × [i32 status]
//
// One PAPYRUSKV_* code per op, in submission order: a partially failed
// batch surfaces exactly which ops failed (the batch as a whole is still
// acked — retry/timeout semantics are per batch, per-op errors per op).
std::string EncodePutBatchAck(const std::vector<int32_t>& statuses,
                              const obs::TraceContext& trace_ctx = {});
bool DecodePutBatchAck(const Slice& payload, std::vector<int32_t>* statuses,
                       obs::TraceContext* trace_ctx = nullptr);

// ---- GetMulti --------------------------------------------------------------
// [trace hdr?][u8 ver][u32 dbid][u32 resp_tag][u32 caller_group][u32 count]
//   count × ([lp key][u8 flags])
//
// flags bit 0 (kGetFullSearch): search the owner's SSTables even when the
// caller is in the owner's storage group — used by the caller's fallback
// re-query after a failed shared read (§2.7), replacing the sync path's
// caller_group=0xffffffff convention on a per-op basis.
inline constexpr uint8_t kGetFullSearch = 0x01;
struct GetMultiOp {
  std::string key;
  bool full_search = false;
};
std::string EncodeGetMulti(uint32_t dbid, uint32_t resp_tag,
                           uint32_t caller_group,
                           const std::vector<GetMultiOp>& ops,
                           const obs::TraceContext& trace_ctx = {});
bool DecodeGetMulti(const Slice& payload, uint32_t* dbid, uint32_t* resp_tag,
                    uint32_t* caller_group, std::vector<GetMultiOp>* ops,
                    obs::TraceContext* trace_ctx = nullptr);

// ---- GetMultiResp ----------------------------------------------------------
// [trace hdr?][u8 ver][u32 count] count × ([i32 status][lp GetResp-body])
//
// Each entry embeds one length-prefixed GetResp body (the legacy encoding,
// no nested trace header), so the single-op and batched response carry
// byte-identical per-key payloads.
struct GetMultiResult {
  int32_t status = PAPYRUSKV_SUCCESS;
  GetResp resp;
};
std::string EncodeGetMultiResp(const std::vector<GetMultiResult>& results,
                               const obs::TraceContext& trace_ctx = {});
bool DecodeGetMultiResp(const Slice& payload,
                        std::vector<GetMultiResult>* results,
                        obs::TraceContext* trace_ctx = nullptr);

// ---- ReplAppend ------------------------------------------------------------
// [trace hdr?][u8 ver][u32 dbid][u32 resp_tag][u32 primary][u64 epoch]
// [u64 first_seq][u64 flushed_through][u8 reset][u32 count]
//   count × ([lp key][lp value][u8 tomb])
//
// A primary's replication stream to one follower: `count` committed ops with
// contiguous sequence numbers first_seq..first_seq+count-1 under `epoch`.
// `reset` marks the first frame of a (re)synchronization: the follower
// discards its shadow state for (dbid, primary), adopts the frame's epoch,
// and applies from first_seq.  `flushed_through` is the primary's flush
// watermark — everything at or below it is on shared NVM, so the follower
// may trim its shadow log to entries above it.
struct ReplAppendMeta {
  uint32_t primary = 0;
  uint64_t epoch = 0;
  uint64_t first_seq = 0;
  uint64_t flushed_through = 0;
  bool reset = false;
};
std::string EncodeReplAppend(uint32_t dbid, uint32_t resp_tag,
                             const ReplAppendMeta& meta,
                             const std::vector<KvRecord>& records,
                             const obs::TraceContext& trace_ctx = {});
bool DecodeReplAppend(const Slice& payload, uint32_t* dbid,
                      uint32_t* resp_tag, ReplAppendMeta* meta,
                      std::vector<KvRecord>* records,
                      obs::TraceContext* trace_ctx = nullptr);

// ---- ReplAppendAck ---------------------------------------------------------
// [trace hdr?][u8 ver][u64 epoch][u64 acked_seq][u8 ok]
//
// ok=1: the follower has applied every op up to and including acked_seq
// under `epoch`.  ok=0 is a NACK — epoch mismatch or sequence gap; `epoch`
// then reports the follower's current epoch and acked_seq its applied
// high-water mark, and the primary must resynchronize with a reset frame
// under a bumped epoch.
std::string EncodeReplAppendAck(uint64_t epoch, uint64_t acked_seq, bool ok,
                                const obs::TraceContext& trace_ctx = {});
bool DecodeReplAppendAck(const Slice& payload, uint64_t* epoch,
                         uint64_t* acked_seq, bool* ok,
                         obs::TraceContext* trace_ctx = nullptr);

// ---- ReplQuery -------------------------------------------------------------
// [trace hdr?][u8 ver][u32 dbid][u32 resp_tag][u32 primary][u8 promote]
//
// Failover election probe for `primary`'s partition.  promote=0 asks the
// follower to report its shadow progress; promote=1 tells the elected
// follower to replay its shadow log tail into its own store and start
// serving the dead primary's hash slots (idempotent).
std::string EncodeReplQuery(uint32_t dbid, uint32_t resp_tag,
                            uint32_t primary, bool promote,
                            const obs::TraceContext& trace_ctx = {});
bool DecodeReplQuery(const Slice& payload, uint32_t* dbid,
                     uint32_t* resp_tag, uint32_t* primary, bool* promote,
                     obs::TraceContext* trace_ctx = nullptr);

// ---- ReplQueryResp ---------------------------------------------------------
// [trace hdr?][u8 ver][u64 epoch][u64 last_seq][u8 in_sync]
//
// The follower's shadow progress for the queried primary: highest applied
// (epoch, seq) and whether it believes its shadow is a gap-free copy of the
// primary's stream (it has never NACKed without a later reset).
std::string EncodeReplQueryResp(uint64_t epoch, uint64_t last_seq,
                                bool in_sync,
                                const obs::TraceContext& trace_ctx = {});
bool DecodeReplQueryResp(const Slice& payload, uint64_t* epoch,
                         uint64_t* last_seq, bool* in_sync,
                         obs::TraceContext* trace_ctx = nullptr);

// ---- ReplRead --------------------------------------------------------------
// [trace hdr?][u8 ver][u32 dbid][u32 resp_tag][u32 primary][lp key]
//
// Read-from-replica: look `key` up in the follower's shadow MemTable for
// `primary`'s partition.  A shadow miss is not NOT_FOUND — the shadow only
// covers the stream since the last reset — so the response distinguishes
// "not served here" (ok=0, caller falls back to the owner) from an
// authoritative hit (ok=1, found/tombstone as usual).
std::string EncodeReplRead(uint32_t dbid, uint32_t resp_tag,
                           uint32_t primary, const Slice& key,
                           const obs::TraceContext& trace_ctx = {});
bool DecodeReplRead(const Slice& payload, uint32_t* dbid, uint32_t* resp_tag,
                    uint32_t* primary, std::string* key,
                    obs::TraceContext* trace_ctx = nullptr);

// ---- ReplReadResp ----------------------------------------------------------
// [trace hdr?][u8 ver][u8 ok][u8 found][u8 tombstone][lp value]
std::string EncodeReplReadResp(bool ok, bool found, bool tombstone,
                               const Slice& value,
                               const obs::TraceContext& trace_ctx = {});
bool DecodeReplReadResp(const Slice& payload, bool* ok, bool* found,
                        bool* tombstone, std::string* value,
                        obs::TraceContext* trace_ctx = nullptr);

}  // namespace papyrus::core
