// Storage layout: where each rank's SSTables live, and which ranks share a
// storage group.
//
// Paper §2.7: a storage group is a set of ranks that share NVM storage and
// can read each other's SSTables directly.  On local-NVM machines
// (Summitdev, Stampede) the group is the node; on dedicated-NVM machines
// (Cori's burst buffer) it is the whole job.  The artifact appendix controls
// this with PAPYRUSKV_GROUP_SIZE.
//
// In this reproduction a group g owns the directory <repository>/group<g>,
// registered with the device model as one simulated device, so co-located
// ranks really do contend for — and can read from — the same storage target.
// Rank r's database directory is  <group root>/<db name>/rank<r>.
//
// The repository string may carry a device-class prefix, mirroring how the
// artifact switches NVM vs Lustre by changing PAPYRUSKV_REPOSITORY:
//     "nvme:/tmp/repo"   → local NVMe model
//     "ssd:/tmp/repo"    → local SATA SSD model
//     "bb:/tmp/repo"     → burst-buffer model (striped, network-attached)
//     "lustre:/tmp/repo" → Lustre model
// No prefix = no injected delays (plain directory).
#pragma once

#include <string>

#include "common/status.h"
#include "sim/device_model.h"
#include "sim/interconnect.h"

namespace papyrus::core {

class StorageLayout {
 public:
  // Parses the repository spec and fixes group size.  group_size <= 0
  // derives it: PAPYRUSKV_GROUP_SIZE env if set, else ranks-per-node for
  // local device classes, else all ranks for dedicated classes (bb/lustre).
  StorageLayout(const std::string& repository_spec, const sim::Topology& topo,
                int group_size);

  const std::string& repository() const { return repo_; }
  sim::DeviceClass device_class() const { return dev_class_; }
  int group_size() const { return group_size_; }

  int GroupOf(int rank) const { return rank / group_size_; }
  bool SameGroup(int a, int b) const { return GroupOf(a) == GroupOf(b); }
  int NumGroups(int nranks) const {
    return (nranks + group_size_ - 1) / group_size_;
  }

  // Root directory of a group's storage target (registered as one device).
  std::string GroupRoot(int group) const;

  // Directory holding rank `rank`'s SSTables for database `db_name`.
  std::string RankDir(const std::string& db_name, int rank) const;

  // Creates group roots and registers their devices.  Collective-safe:
  // idempotent, every rank may call it.
  Status Prepare(int nranks);

 private:
  std::string repo_;
  sim::DeviceClass dev_class_ = sim::DeviceClass::kDram;
  int group_size_ = 1;
};

// Splits "class:path" into device class and path ("" class = kDram).
void ParseRepositorySpec(const std::string& spec, sim::DeviceClass* cls,
                         std::string* path);

}  // namespace papyrus::core
