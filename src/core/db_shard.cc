#include "core/db_shard.h"

#include <algorithm>
#include <cassert>

#include "common/env.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/runtime.h"
#include "repl/replicator.h"
#include "store/compactor.h"

namespace papyrus::core {

namespace {

// Layers the artifact appendix's PAPYRUSKV_* environment variables under
// the programmatic options (env wins, matching how the paper's experiment
// scripts drive configuration).
Options ApplyEnvOverrides(Options opt) {
  if (auto v = EnvInt("PAPYRUSKV_CONSISTENCY")) {
    if (*v == PAPYRUSKV_SEQUENTIAL || *v == PAPYRUSKV_RELAXED) {
      opt.consistency = static_cast<int>(*v);
    }
  }
  // Artifact convention: PAPYRUSKV_BIN_SEARCH=1 → linear, 2 → binary.
  if (auto v = EnvInt("PAPYRUSKV_BIN_SEARCH")) {
    opt.sstable_binary_search = (*v >= 2);
  }
  if (auto v = EnvInt("PAPYRUSKV_MEMTABLE_SIZE"); v && *v > 0) {
    opt.memtable_bytes = static_cast<size_t>(*v);
  }
  if (auto v = EnvInt("PAPYRUSKV_REPLICAS"); v && *v >= 1) {
    opt.replicas = static_cast<int>(*v);
  }
  if (auto v = EnvBool("PAPYRUSKV_READ_REPLICAS")) {
    opt.read_from_replica = *v;
  }
  return opt;
}

bool RemoteCacheForcedByEnv() {
  return EnvBool("PAPYRUSKV_CACHE_REMOTE").value_or(false);
}

}  // namespace

DbShard::DbShard(KvRuntime& rt, uint32_t id, std::string name, Options opt)
    : rt_(rt),
      id_(id),
      name_(std::move(name)),
      opt_(ApplyEnvOverrides(std::move(opt))),
      consistency_(opt_.consistency),
      protection_(opt_.protection),
      manifest_(rt.layout().RankDir(name_, rt.rank())),
      local_(std::make_shared<store::MemTable>(store::MemTable::Kind::kLocal,
                                               opt_.memtable_bytes)),
      remote_(std::make_shared<store::MemTable>(store::MemTable::Kind::kRemote,
                                                opt_.memtable_bytes)),
      cache_local_(opt_.cache_local_bytes,
                   opt_.cache_local_enabled &&
                       opt_.protection != PAPYRUSKV_WRONLY),
      cache_remote_(opt_.cache_remote_bytes,
                    opt_.protection == PAPYRUSKV_RDONLY ||
                        RemoteCacheForcedByEnv()),
      batch_fail_point_(
          &fault::Registry::Instance().GetPoint("batch.op.fail")) {
  // Resolve this shard's metrics once; hot paths then update lock-free.
  // Db-scoped counters are reset so every shard lifetime starts from zero
  // (the old DbStats was a fresh struct per DbShard — tests rely on that).
  obs::Registry& reg = rt_.metrics();
  const std::string p = "db." + name_ + ".";
  auto counter = [&](const char* n) {
    obs::Counter* c = &reg.GetCounter(p + n);
    c->Reset();
    return c;
  };
  m_.puts_local = counter("puts_local");
  m_.puts_remote_staged = counter("puts_remote_staged");
  m_.puts_remote_sync = counter("puts_remote_sync");
  m_.gets_local = counter("gets_local");
  m_.gets_remote = counter("gets_remote");
  m_.deletes = counter("deletes");
  m_.memtable_hits = counter("memtable_hits");
  m_.cache_local_hits = counter("cache_local.hits");
  m_.cache_local_misses = counter("cache_local.misses");
  m_.cache_remote_hits = counter("cache_remote.hits");
  m_.cache_remote_misses = counter("cache_remote.misses");
  m_.sstable_hits = counter("sstable_hits");
  m_.bloom_checks = counter("bloom_checks");
  m_.bloom_negatives = counter("bloom_negatives");
  m_.foreign_sstable_hits = counter("foreign_sstable_hits");
  m_.remote_value_transfers = counter("remote_value_transfers");
  m_.flushes = counter("flushes");
  m_.migrations = counter("migrations");
  m_.compactions = counter("compactions");
  // Rank-wide replication counters (not db-scoped, never reset here).
  m_.replica_read_hits = &reg.GetCounter("repl.replica_read_hits");
  m_.promotions = &reg.GetCounter("repl.promotions");
  m_.memtable_local_bytes = &reg.GetGauge(p + "memtable_local_bytes");
  m_.memtable_local_bytes->Reset();
  m_.memtable_remote_bytes = &reg.GetGauge(p + "memtable_remote_bytes");
  m_.memtable_remote_bytes->Reset();
  // Operation latencies are rank-wide (not db-scoped, never reset here):
  // they accumulate across every database this rank touches.
  m_.put_us = &reg.GetHistogram("kv.put_us");
  m_.get_us = &reg.GetHistogram("kv.get_us");
  m_.delete_us = &reg.GetHistogram("kv.delete_us");
  m_.fence_us = &reg.GetHistogram("kv.fence_us");
  m_.barrier_us = &reg.GetHistogram("kv.barrier_us");
  m_.put_submit_us = &reg.GetHistogram("kv.put_submit_us");
  m_.get_submit_us = &reg.GetHistogram("kv.get_submit_us");
  m_.delete_submit_us = &reg.GetHistogram("kv.delete_submit_us");
  cache_local_.BindCounters(m_.cache_local_hits, m_.cache_local_misses);
  cache_remote_.BindCounters(m_.cache_remote_hits, m_.cache_remote_misses);
  // Intra-group replication (DESIGN.md §12): stream this rank's partition to
  // the next replicas−1 ranks of its storage group.  Null (off) when the
  // effective replica set is just this rank.
  const std::vector<int> followers = repl::FollowersOf(
      rt_.rank(), rt_.size(), rt_.layout().group_size(), opt_.replicas);
  if (!followers.empty()) {
    repl_ = std::make_unique<repl::Replicator>(&rt_, id_, followers);
  }
}

DbShard::~DbShard() = default;

Status DbShard::Open() { return manifest_.Open(); }

int DbShard::OwnerOf(const Slice& key) const {
  const uint64_t h = opt_.hash ? opt_.hash(key.data(), key.size())
                               : BuiltinKeyHash(key.data(), key.size());
  return static_cast<int>(h % static_cast<uint64_t>(rt_.size()));
}

// ---------------------------------------------------------------------------
// Put / Delete
// ---------------------------------------------------------------------------

Status DbShard::Put(const Slice& key, const Slice& value) {
  if (key.empty()) return Status::InvalidArg("empty key");
  Status alive = rt_.CheckAlive();
  if (!alive.ok()) return alive;
  if (protection_.load() == PAPYRUSKV_RDONLY) {
    return Status::Protected("db is read-only");
  }
  obs::ScopedLatency lat(m_.put_us);
  // Trace root: this put (and everything it triggers, up to the remote
  // handler on the owner rank) is one causal chain.
  obs::OpSpan op("kv", "put");
  const int hash_owner = OwnerOf(key);
  const int owner = RouteOwner(hash_owner);
  if (owner == rt_.rank()) {
    m_.puts_local->Inc();
    return LocalPut(key, value, /*tombstone=*/false);
  }
  if (consistency_.load() == PAPYRUSKV_SEQUENTIAL) {
    Status s = SyncRemotePut(key, value, false, owner);
    if (s.code() == PAPYRUSKV_ERR_TIMEOUT && repl_ && owner == hash_owner &&
        rt_.IsSuspect(hash_owner)) {
      // The owner died under this put: re-route once through failover
      // promotion and retry against whichever replica took over.
      const int routed = RouteOwner(hash_owner);
      if (routed != hash_owner) {
        if (routed == rt_.rank()) {
          m_.puts_local->Inc();
          return LocalPut(key, value, /*tombstone=*/false);
        }
        return SyncRemotePut(key, value, false, routed);
      }
    }
    return s;
  }
  return StageRemotePut(key, value, false, owner);
}

Status DbShard::Delete(const Slice& key) {
  // §2.5: a delete is a put with a zero-length value and the tombstone set.
  if (key.empty()) return Status::InvalidArg("empty key");
  Status alive = rt_.CheckAlive();
  if (!alive.ok()) return alive;
  if (protection_.load() == PAPYRUSKV_RDONLY) {
    return Status::Protected("db is read-only");
  }
  obs::ScopedLatency lat(m_.delete_us);
  obs::OpSpan op("kv", "delete");
  m_.deletes->Inc();
  const int hash_owner = OwnerOf(key);
  const int owner = RouteOwner(hash_owner);
  if (owner == rt_.rank()) return LocalPut(key, Slice(), true);
  if (consistency_.load() == PAPYRUSKV_SEQUENTIAL) {
    Status s = SyncRemotePut(key, Slice(), true, owner);
    if (s.code() == PAPYRUSKV_ERR_TIMEOUT && repl_ && owner == hash_owner &&
        rt_.IsSuspect(hash_owner)) {
      const int routed = RouteOwner(hash_owner);
      if (routed != hash_owner) {
        if (routed == rt_.rank()) return LocalPut(key, Slice(), true);
        return SyncRemotePut(key, Slice(), true, routed);
      }
    }
    return s;
  }
  return StageRemotePut(key, Slice(), true, owner);
}

async::OpHandle DbShard::PutAsync(const Slice& key, const Slice& value,
                                  bool tombstone) {
  if (key.empty()) {
    return async::CompletedOp(Status::InvalidArg("empty key"));
  }
  Status alive = rt_.CheckAlive();
  if (!alive.ok()) return async::CompletedOp(alive);
  if (protection_.load() == PAPYRUSKV_RDONLY) {
    return async::CompletedOp(Status::Protected("db is read-only"));
  }
  if (tombstone) m_.deletes->Inc();
  const int owner = RouteOwner(OwnerOf(key));
  if (owner == rt_.rank()) {
    // Inline resolution: the submission call is the whole operation, so
    // the sync-path latency histograms stay accurate here.
    obs::ScopedLatency lat(tombstone ? m_.delete_us : m_.put_us);
    obs::OpSpan op("kv", tombstone ? "delete" : "put");
    if (!tombstone) m_.puts_local->Inc();
    return async::CompletedOp(LocalPut(key, value, tombstone));
  }
  if (consistency_.load() == PAPYRUSKV_SEQUENTIAL) {
    // The only genuinely asynchronous put path: the op rides the pipeline
    // and completes when the owner's batched ack lands.  Only the enqueue
    // happens in this scope, so it records as a *submit* metric/span; the
    // operation's real latency (submit → ack) lands in async.put_op_us at
    // completion — kv.put_us must not be skewed low by enqueue timings.
    obs::ScopedLatency lat(tombstone ? m_.delete_submit_us
                                     : m_.put_submit_us);
    obs::OpSpan op("kv", tombstone ? "delete.submit" : "put.submit");
    m_.puts_remote_sync->Inc();
    cache_remote_.Erase(key);
    return rt_.pipeline().SubmitPut(owner, id_, key, value, tombstone);
  }
  // Relaxed mode already is asynchronous: staging in the remote MemTable
  // completes immediately; delivery is governed by fence/barrier.
  obs::ScopedLatency lat(tombstone ? m_.delete_us : m_.put_us);
  obs::OpSpan op("kv", tombstone ? "delete" : "put");
  return async::CompletedOp(StageRemotePut(key, value, tombstone, owner));
}

async::OpHandle DbShard::GetAsync(const Slice& key) {
  if (key.empty()) {
    return async::CompletedValueOp(Status::InvalidArg("empty key"), {});
  }
  Status alive = rt_.CheckAlive();
  if (!alive.ok()) return async::CompletedValueOp(std::move(alive), {});
  if (protection_.load() == PAPYRUSKV_WRONLY) {
    return async::CompletedValueOp(Status::Protected("db is write-only"), {});
  }
  const int owner = RouteOwner(OwnerOf(key));
  if (owner == rt_.rank()) {
    // Inline resolution: the submission call is the whole operation.
    obs::ScopedLatency lat(m_.get_us);
    obs::OpSpan op("kv", "get");
    m_.gets_local->Inc();
    std::string value;
    Status s = LocalGet(key, &value);
    return async::CompletedValueOp(std::move(s), std::move(value));
  }
  // Remote path: this scope covers only the local-memory probe plus (on a
  // miss) the enqueue, so it records as a *submit* metric/span; the wire
  // leg's latency lands in async.get_op_us at completion.
  obs::ScopedLatency lat(m_.get_submit_us);
  obs::OpSpan op("kv", "get.submit");
  m_.gets_remote->Inc();
  std::string value;
  bool tombstone = false;
  if (SearchRemoteMemory(key, &value, &tombstone)) {
    if (tombstone) return async::CompletedValueOp(Status::NotFound(), {});
    return async::CompletedValueOp(Status::OK(), std::move(value));
  }
  // Only the network leg is asynchronous; FinishGet runs the §2.7
  // post-processing on the waiting thread.
  return rt_.pipeline().SubmitGet(owner, id_, key, /*full_search=*/false);
}

Status DbShard::FinishGet(const Slice& key, const async::OpHandle& h,
                          std::string* value) {
  Status s = h->Wait();
  if (!s.ok()) return s;
  if (h->result() == async::OpState::Result::kValue) {
    *value = h->value();
    return s;
  }
  return FinishRemoteGet(key, h->TakeResp(), value);
}

Status DbShard::LocalPut(const Slice& key, const Slice& value,
                         bool tombstone) {
  bool need_rotate = false;
  {
    MutexLock lock(&local_mu_);
    mutation_epoch_.fetch_add(1, std::memory_order_release);
    if (!local_->Put(key, value, tombstone, rt_.rank())) {
      // Rotation seals under local_mu_, which we hold — a sealed mutable
      // MemTable here is a broken invariant, not a caller error.
      return Status::Corrupted("mutable local MemTable rejected put");
    }
    // §2.4: a stale cache entry with this key is evicted from the local
    // cache.
    cache_local_.Erase(key);
    // Replication (DESIGN.md §12): the op gets its sequence number under
    // local_mu_, so the stream order matches MemTable apply order exactly.
    if (repl_) repl_->Append(key, value, tombstone);
    m_.memtable_local_bytes->Set(
        static_cast<int64_t>(local_->ApproxBytes()));
    need_rotate = local_->Full();
  }
  if (need_rotate) {
    MutexLock rotate(&local_rotate_mu_);
    local_mu_.Lock();
    if (local_->Full()) {
      RotateLocalLocked();
    } else {
      local_mu_.Unlock();  // another thread already rotated
    }
  }
  return Status::OK();
}

void DbShard::RotateLocalLocked() {
  // Caller holds local_rotate_mu_ (serializing rotations so flush-queue
  // order matches seal order) and local_mu_, which is released below.
  store::MemTablePtr sealed = local_;
  sealed->Seal();
  imm_local_.push_front(sealed);
  // Mark the seal point in the replication stream (still under local_mu_,
  // so no append can land between the seal and the mark).
  if (repl_) repl_->NoteSeal(sealed.get());
  local_ = std::make_shared<store::MemTable>(store::MemTable::Kind::kLocal,
                                             opt_.memtable_bytes);
  m_.memtable_local_bytes->Set(0);
  local_mu_.Unlock();  // gets may proceed; the queue push below can block

  {
    MutexLock d(&drain_mu_);
    ++pending_flushes_;
  }
  CompactionJob job;
  job.db = shared_from_this();
  job.mem = sealed;
  rt_.EnqueueFlush(std::move(job));  // blocks while the queue is full (§2.4)
}

Status DbShard::StageRemotePut(const Slice& key, const Slice& value,
                               bool tombstone, int owner) {
  m_.puts_remote_staged->Inc();
  cache_remote_.Erase(key);
  bool need_rotate = false;
  {
    MutexLock lock(&remote_mu_);
    if (!remote_->Put(key, value, tombstone, owner)) {
      // Same invariant as LocalPut: sealing happens under remote_mu_,
      // which we hold, so the staging MemTable can never be sealed here.
      return Status::Corrupted("staging remote MemTable rejected put");
    }
    m_.memtable_remote_bytes->Set(
        static_cast<int64_t>(remote_->ApproxBytes()));
    need_rotate = remote_->Full();
  }
  if (need_rotate) {
    MutexLock rotate(&remote_rotate_mu_);
    remote_mu_.Lock();
    if (remote_->Full()) {
      RotateRemoteLocked();
    } else {
      remote_mu_.Unlock();  // another thread already rotated
    }
  }
  return Status::OK();
}

void DbShard::RotateRemoteLocked() {
  store::MemTablePtr sealed = remote_;
  sealed->Seal();
  imm_remote_.push_front(sealed);
  remote_ = std::make_shared<store::MemTable>(store::MemTable::Kind::kRemote,
                                              opt_.memtable_bytes);
  m_.memtable_remote_bytes->Set(0);
  remote_mu_.Unlock();

  {
    MutexLock d(&drain_mu_);
    ++pending_migrations_;
  }
  MigrationJob job;
  job.db = shared_from_this();
  job.mem = sealed;
  rt_.EnqueueMigration(std::move(job));
}

Status DbShard::SyncRemotePut(const Slice& key, const Slice& value,
                              bool tombstone, int owner) {
  // §3.1 sequential mode: the pair is migrated to the owner immediately and
  // synchronously.  Submit+wait through the async pipeline (DESIGN.md §9),
  // so the sync and async paths share one batching/retry/timeout machine —
  // a dead owner still surfaces as PAPYRUSKV_ERR_TIMEOUT, delivered via the
  // completion handle instead of an inline RequestReply.
  m_.puts_remote_sync->Inc();
  cache_remote_.Erase(key);
  return rt_.pipeline().SubmitPut(owner, id_, key, value, tombstone)->Wait();
}

// ---------------------------------------------------------------------------
// Get
// ---------------------------------------------------------------------------

Status DbShard::Get(const Slice& key, std::string* value) {
  if (key.empty()) return Status::InvalidArg("empty key");
  Status alive = rt_.CheckAlive();
  if (!alive.ok()) return alive;
  if (protection_.load() == PAPYRUSKV_WRONLY) {
    return Status::Protected("db is write-only");
  }
  obs::ScopedLatency lat(m_.get_us);
  obs::OpSpan op("kv", "get");
  const int hash_owner = OwnerOf(key);
  const int owner = RouteOwner(hash_owner);
  if (owner == rt_.rank()) {
    m_.gets_local->Inc();
    return LocalGet(key, value);
  }
  m_.gets_remote->Inc();
  if (opt_.read_from_replica && repl_ && owner == hash_owner) {
    // Read scaling: round-robin this get over the owner's replica set; a
    // shadow miss falls through to the authoritative owner query below.
    Status rs;
    if (TryReplicaRead(key, hash_owner, value, &rs)) return rs;
  }
  Status s = RemoteGet(key, value);
  if (s.code() == PAPYRUSKV_ERR_TIMEOUT && repl_ && owner == hash_owner &&
      rt_.IsSuspect(hash_owner)) {
    // The owner died under this get: re-route once through failover
    // promotion and retry against whichever replica took over.
    const int routed = RouteOwner(hash_owner);
    if (routed != hash_owner) {
      if (routed == rt_.rank()) {
        m_.gets_local->Inc();
        return LocalGet(key, value);
      }
      return RemoteGet(key, value);
    }
  }
  return s;
}

Status DbShard::LocalGet(const Slice& key, std::string* value) {
  bool tombstone = false;
  if (SearchLocalMemory(key, value, &tombstone)) {
    return tombstone ? Status::NotFound() : Status::OK();
  }
  bool found = false;
  Status s = SearchOwnSSTables(key, value, &tombstone, &found);
  if (!s.ok()) return s;
  if (found) return tombstone ? Status::NotFound() : Status::OK();
  if (promoted_any_.load(std::memory_order_acquire)) {
    // This rank took over a dead primary's hash slot: its volatile tail was
    // replayed into our MemTable (searched above); its flushed data lives
    // in the adopted SSTables on shared NVM.
    s = SearchPromotedSSTables(key, value, &tombstone, &found);
    if (!s.ok()) return s;
    if (found) return tombstone ? Status::NotFound() : Status::OK();
  }
  return Status::NotFound();
}

bool DbShard::SearchLocalMemory(const Slice& key, std::string* value,
                                bool* tombstone) {
  // Search order per Figure 3: mutable local MemTable, then the immutable
  // local MemTables newest first, then the local cache.
  {
    MutexLock lock(&local_mu_);
    if (local_->Get(key, value, tombstone)) {
      m_.memtable_hits->Inc();
      return true;
    }
    for (const auto& imm : imm_local_) {
      if (imm->Get(key, value, tombstone)) {
        m_.memtable_hits->Inc();
        return true;
      }
    }
  }
  // Hit/miss accounting happens inside the cache (BindCounters).
  return cache_local_.Get(key, value, tombstone);
}

Status DbShard::SearchOwnSSTables(const Slice& key, std::string* value,
                                  bool* tombstone, bool* found) {
  *found = false;
  const uint64_t epoch_at_start =
      mutation_epoch_.load(std::memory_order_acquire);
  const store::SearchMode mode = opt_.sstable_binary_search
                                     ? store::SearchMode::kBinary
                                     : store::SearchMode::kLinear;
  // Highest SSID first: more recent pairs live in higher-numbered tables.
  for (uint64_t ssid : manifest_.LiveSsids()) {
    Status s = SearchOneTable(ssid, key, mode, value, tombstone, found);
    if (s.IsNotFound()) continue;  // compacted away concurrently
    if (!s.ok()) return s;
    if (*found) {
      m_.sstable_hits->Inc();
      // §2.6: a pair found in an SSData file is inserted into the local
      // cache (tombstones cached too — a known-deleted key should not
      // walk every table again).  Skipped if any put/delete landed while
      // we searched: our find may already be stale, and the writer's
      // cache eviction may already have happened.
      if (mutation_epoch_.load(std::memory_order_acquire) ==
          epoch_at_start) {
        cache_local_.Put(key, *value, *tombstone);
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

Status DbShard::SearchOneTable(uint64_t ssid, const Slice& key,
                               store::SearchMode mode, std::string* value,
                               bool* tombstone, bool* found) {
  *found = false;
  for (int attempt = 0; attempt < 2; ++attempt) {
    store::SSTablePtr reader;
    Status s = manifest_.GetReader(ssid, &reader);
    if (s.ok()) {
      if (opt_.bloom_bits_per_key > 0) {
        m_.bloom_checks->Inc();
        if (!reader->MayContain(key)) {
          m_.bloom_negatives->Inc();
          return Status::OK();
        }
      }
      s = reader->Get(key, mode, value, tombstone, found);
      if (s.ok()) return Status::OK();
    }
    if (s.IsNotFound()) return s;
    if (s.code() != PAPYRUSKV_CORRUPTED || attempt > 0) {
      if (s.code() == PAPYRUSKV_CORRUPTED) manifest_.Quarantine(ssid);
      return s;
    }
    // First corruption sighting on this table: restore it from the latest
    // checkpoint image (if this database has one) and re-read once.
    PLOG_WARN << "sstable " << ssid << " corrupted (" << s.ToString()
              << "); attempting repair";
    Status rs = manifest_.RepairTable(ssid);
    if (!rs.ok()) {
      PLOG_ERROR << "sstable " << ssid << " unrepairable (" << rs.ToString()
                 << "); quarantined";
      manifest_.Quarantine(ssid);
      return s;
    }
  }
  return Status::OK();  // unreachable: attempt 1 always returns above
}

bool DbShard::SearchRemoteMemory(const Slice& key, std::string* value,
                                 bool* tombstone) {
  // Figure 3 remote path prefix: remote MemTable, immutable remote
  // MemTables in the migration queue (newest first), remote cache.
  {
    MutexLock lock(&remote_mu_);
    if (remote_->Get(key, value, tombstone)) return true;
    for (const auto& imm : imm_remote_) {
      if (imm->Get(key, value, tombstone)) return true;
    }
  }
  return cache_remote_.Get(key, value, tombstone);
}

Status DbShard::RemoteGet(const Slice& key, std::string* value) {
  bool tombstone = false;
  if (SearchRemoteMemory(key, value, &tombstone)) {
    return tombstone ? Status::NotFound() : Status::OK();
  }
  // Network leg through the pipeline (coalesced with any other outstanding
  // gets for the same owner into one get_multi round trip).  Routed through
  // failover promotion: deterministic here and in FinishRemoteGet because
  // the promoted-owner cache pins the election result.
  async::OpHandle h = rt_.pipeline().SubmitGet(RouteOwner(OwnerOf(key)), id_,
                                               key, /*full_search=*/false);
  Status s = h->Wait();
  if (!s.ok()) return s;  // PAPYRUSKV_ERR_TIMEOUT: owner unresponsive
  return FinishRemoteGet(key, h->TakeResp(), value);
}

Status DbShard::FinishRemoteGet(const Slice& key, GetResp resp,
                                std::string* value) {
  bool tombstone = false;
  if (resp.found) {
    if (resp.tombstone) {
      cache_remote_.Put(key, Slice(), true);
      return Status::NotFound();
    }
    m_.remote_value_transfers->Inc();
    cache_remote_.Put(key, resp.value, false);
    *value = std::move(resp.value);
    return Status::OK();
  }

  if (resp.same_group && !resp.ssids.empty()) {
    const int owner = RouteOwner(OwnerOf(key));
    // §2.7: the pair is not in the owner's memory, but may be in its
    // SSTables on the shared NVM — read them directly, no value transfer.
    bool found = false;
    Status s = SearchForeignSSTables(owner, resp.ssids, key, value,
                                     &tombstone, &found);
    if (!s.ok()) {
      // Shared reads are an optimization; any failure (e.g. races with the
      // owner's compaction) falls back to the authoritative owner query.
      PLOG_DEBUG << "foreign sstable search failed: " << s.ToString();
      found = false;
    }
    if (found) {
      cache_remote_.Put(key, tombstone ? Slice() : Slice(*value), tombstone);
      return tombstone ? Status::NotFound() : Status::OK();
    }
    // The owner may have compacted the advertised tables away between its
    // response and our shared read; fall back to a full search at the
    // owner to keep the result authoritative (the full_search flag replaces
    // the legacy caller_group=0xffffffff convention per op).
    async::OpHandle h2 =
        rt_.pipeline().SubmitGet(owner, id_, key, /*full_search=*/true);
    Status rs = h2->Wait();
    if (!rs.ok()) return rs;
    GetResp r2 = h2->TakeResp();
    if (r2.found && !r2.tombstone) {
      m_.remote_value_transfers->Inc();
      cache_remote_.Put(key, r2.value, false);
      *value = std::move(r2.value);
      return Status::OK();
    }
    cache_remote_.Put(key, Slice(), true);
    return Status::NotFound();
  }

  cache_remote_.Put(key, Slice(), true);
  return Status::NotFound();
}

Status DbShard::SearchForeignSSTables(int owner,
                                      const std::vector<uint64_t>& ssids,
                                      const Slice& key, std::string* value,
                                      bool* tombstone, bool* found) {
  *found = false;
  const std::string dir = rt_.layout().RankDir(name_, owner);
  const store::SearchMode mode = opt_.sstable_binary_search
                                     ? store::SearchMode::kBinary
                                     : store::SearchMode::kLinear;
  // Only the owner-advertised live list is consulted (newest first): a
  // reader cached from a table the owner has since compacted away must
  // never serve purged data.
  for (uint64_t ssid : ssids) {
    store::SSTablePtr reader;
    {
      MutexLock lock(&foreign_mu_);
      auto it = foreign_readers_.find({owner, ssid});
      if (it != foreign_readers_.end()) reader = it->second;
    }
    if (!reader) {
      Status s = store::Manifest::OpenForeign(dir, ssid, &reader);
      // Every advertised SSID was live at response time, so a missing file
      // means the owner compacted while this read was in flight — and the
      // compaction may have purged a tombstone (or newer version) that this
      // very table held.  Skipping the gap and reading on could then find a
      // *stale* version in an older table that is still readable (e.g. via
      // a cached reader), resurrecting deleted keys.  The whole snapshot is
      // broken: abort so FinishRemoteGet re-queries the owner.
      if (s.IsNotFound()) return s;
      if (!s.ok()) return s;
      MutexLock lock(&foreign_mu_);
      foreign_readers_[{owner, ssid}] = reader;
    }
    if (opt_.bloom_bits_per_key > 0) {
      m_.bloom_checks->Inc();
      if (!reader->MayContain(key)) {
        m_.bloom_negatives->Inc();
        continue;
      }
    }
    Status s = reader->Get(key, mode, value, tombstone, found);
    if (!s.ok()) return s;
    if (*found) {
      m_.foreign_sstable_hits->Inc();
      return Status::OK();
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Replication / failover (DESIGN.md §12)
// ---------------------------------------------------------------------------

int DbShard::RouteOwner(int owner) {
  if (!repl_ || owner == rt_.rank()) return owner;
  if (!rt_.IsSuspect(owner)) return owner;
  MutexLock lock(&promo_mu_);
  const int promoted = PromotedOwnerLocked(owner);
  return promoted < 0 ? owner : promoted;
}

int DbShard::PromotedOwnerLocked(int dead) {
  auto cached = promoted_owner_.find(dead);
  if (cached != promoted_owner_.end()) return cached->second;
  // repl.promote.race widens the election window under test: two ranks
  // electing concurrently must still converge, which the deterministic
  // scoring below guarantees (same probes -> same winner).
  if (fault::Enabled() &&
      fault::Registry::Instance().GetPoint("repl.promote.race").Fire()) {
    PreciseSleepMicros(2000);
  }
  const std::vector<int> candidates = repl::FollowersOf(
      dead, rt_.size(), rt_.layout().group_size(), opt_.replicas);
  // Most-caught-up wins: in-sync beats stale, then highest epoch, then
  // highest applied sequence, then lowest rank as the deterministic
  // tie-break every elector computes identically.
  int best = -1;
  uint64_t best_epoch = 0, best_seq = 0;
  bool best_in_sync = false;
  for (int c : candidates) {
    uint64_t epoch = 0, seq = 0;
    bool in_sync = false;
    if (c == rt_.rank()) {
      repl_->QueryShadow(dead, &epoch, &seq, &in_sync);
    } else {
      if (rt_.IsSuspect(c)) continue;
      const uint32_t tag = rt_.AllocRespTag();
      std::string req =
          EncodeReplQuery(id_, tag, static_cast<uint32_t>(dead),
                          /*promote=*/false);
      net::Message reply;
      Status s =
          rt_.RequestReply(c, kOpReplQuery, req, static_cast<int>(tag),
                           &reply);
      if (!s.ok()) continue;
      if (!DecodeReplQueryResp(reply.payload, &epoch, &seq, &in_sync)) {
        continue;
      }
    }
    const bool better = best < 0 || (in_sync != best_in_sync ? in_sync
                                     : epoch != best_epoch   ? epoch > best_epoch
                                     : seq != best_seq       ? seq > best_seq
                                                             : c < best);
    if (better) {
      best = c;
      best_epoch = epoch;
      best_seq = seq;
      best_in_sync = in_sync;
    }
  }
  if (best < 0) return -1;  // nobody answered; not cached, re-elect later
  if (best == rt_.rank()) {
    if (!PromoteSelfLocked(dead).ok()) return -1;
  } else {
    const uint32_t tag = rt_.AllocRespTag();
    std::string req = EncodeReplQuery(id_, tag, static_cast<uint32_t>(dead),
                                      /*promote=*/true);
    net::Message reply;
    Status s = rt_.RequestReply(best, kOpReplQuery, req,
                                static_cast<int>(tag), &reply);
    if (!s.ok()) return -1;
    uint64_t e = 0, q = 0;
    bool promoted_ok = false;
    if (!DecodeReplQueryResp(reply.payload, &e, &q, &promoted_ok) ||
        !promoted_ok) {
      return -1;
    }
  }
  promoted_owner_[dead] = best;
  PLOG_WARN << "failover: rank " << best << " promoted for dead rank "
            << dead << " (epoch " << best_epoch << ", seq " << best_seq
            << ")";
  return best;
}

Status DbShard::PromoteSelf(int primary) {
  MutexLock lock(&promo_mu_);
  return PromoteSelfLocked(primary);
}

bool DbShard::HasPromoted(int primary) {
  MutexLock lock(&promo_mu_);
  return promoted_sources_.count(primary) > 0;
}

Status DbShard::PromoteSelfLocked(int primary) {
  if (!repl_) return Status::InvalidArg("replication is off");
  if (promoted_sources_.count(primary) > 0) return Status::OK();
  // Zero-data-loss takeover: replay the shadow log tail (the dead primary's
  // volatile ops above its flush watermark) into our own partition — these
  // re-replicate through our own stream — then adopt its SSTables from
  // shared NVM (§2.7 makes them directly readable; a dead rank can no
  // longer compact them away).
  uint64_t shadow_seq = 0;
  const std::vector<KvRecord> tail =
      repl_->TakeShadowLog(primary, &shadow_seq);
  for (const KvRecord& r : tail) {
    Status s = LocalPut(r.key, r.value, r.tombstone);
    if (!s.ok()) return s;
  }
  std::vector<uint64_t> ssids;
  Status s =
      store::Manifest::ListSsids(rt_.layout().RankDir(name_, primary), &ssids);
  if (!s.ok()) return s;
  promoted_sstables_[primary] = std::move(ssids);
  promoted_sources_.insert(primary);
  // Routing shortcut + convergence: this rank now serves the partition, so
  // its own elections resolve here without probing, and HasPromoted lets
  // remote electors' probes converge on this rank even after TakeShadowLog
  // emptied the shadow they would otherwise score.
  promoted_owner_[primary] = rt_.rank();
  promoted_any_.store(true, std::memory_order_release);
  m_.promotions->Inc();
  rt_.flight().Record(obs::FlightKind::kPromote, "takeover", primary,
                      static_cast<int64_t>(shadow_seq));
  PLOG_WARN << "promoted: serving rank " << primary << "'s partition ("
            << tail.size() << " volatile ops replayed, shadow seq "
            << shadow_seq << ")";
  return Status::OK();
}

Status DbShard::SearchPromotedSSTables(const Slice& key, std::string* value,
                                       bool* tombstone, bool* found) {
  *found = false;
  std::map<int, std::vector<uint64_t>> adopted;
  {
    MutexLock lock(&promo_mu_);
    adopted = promoted_sstables_;
  }
  for (const auto& [dead, ssids] : adopted) {
    Status s = SearchForeignSSTables(dead, ssids, key, value, tombstone,
                                     found);
    // Unlike live §2.7 shared reads, the dead rank cannot compact these
    // tables concurrently, so a vanished table is not a consistency hazard
    // for the remaining ones — keep searching the other adopted sets.
    if (!s.ok() && !s.IsNotFound()) return s;
    if (*found) return Status::OK();
  }
  return Status::OK();
}

bool DbShard::TryReplicaRead(const Slice& key, int owner, std::string* value,
                             Status* out) {
  const std::vector<int> followers = repl::FollowersOf(
      owner, rt_.size(), rt_.layout().group_size(), opt_.replicas);
  if (followers.empty()) return false;
  // Round-robin over {owner} ∪ followers; slot 0 falls through so the
  // owner keeps taking its share of the reads.
  const size_t n = followers.size() + 1;
  const size_t pick =
      replica_rr_.fetch_add(1, std::memory_order_relaxed) % n;
  if (pick == 0) return false;
  const int replica = followers[pick - 1];
  bool ok = false, found = false, tombstone = false;
  if (replica == rt_.rank()) {
    // This rank backs the owner itself: serve straight from its own shadow.
    if (!repl_->ShadowGet(owner, key, value, &tombstone)) return false;
    found = true;
  } else {
    if (rt_.IsSuspect(replica)) return false;
    const uint32_t tag = rt_.AllocRespTag();
    std::string req =
        EncodeReplRead(id_, tag, static_cast<uint32_t>(owner), key);
    net::Message reply;
    Status s = rt_.RequestReply(replica, kOpReplRead, req,
                                static_cast<int>(tag), &reply);
    if (!s.ok()) return false;
    if (!DecodeReplReadResp(reply.payload, &ok, &found, &tombstone, value)) {
      return false;
    }
    if (!ok) return false;  // shadow miss: not authoritative, use the owner
  }
  m_.replica_read_hits->Inc();
  *out = (!found || tombstone) ? Status::NotFound() : Status::OK();
  return true;
}

// ---------------------------------------------------------------------------
// Handler-side entry points
// ---------------------------------------------------------------------------

Status DbShard::ApplyRecords(const std::vector<KvRecord>& records) {
  for (const KvRecord& r : records) {
    Status s = LocalPut(r.key, r.value, r.tombstone);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

std::vector<int32_t> DbShard::ApplyBatch(const std::vector<KvRecord>& records) {
  std::vector<int32_t> statuses;
  statuses.reserve(records.size());
  for (const KvRecord& r : records) {
    // Unlike ApplyRecords, a failed op does not abort the batch: every
    // record gets its own status, so the submitter can surface exactly
    // which ops of a partially failed batch went wrong.
    if (fault::Enabled() && batch_fail_point_->Fire()) {
      statuses.push_back(PAPYRUSKV_ERR);
      continue;
    }
    statuses.push_back(LocalPut(r.key, r.value, r.tombstone).code());
  }
  return statuses;
}

GetResp DbShard::HandleRemoteGet(const Slice& key, uint32_t caller_group) {
  GetResp resp;
  // A promoted rank serves data the advertised SSID list cannot cover (the
  // adopted dead-rank tables), so §2.7 shared reads are disabled and every
  // same-group caller takes the authoritative full-search path here.
  resp.same_group =
      caller_group ==
          static_cast<uint32_t>(rt_.layout().GroupOf(rt_.rank())) &&
      !promoted_any_.load(std::memory_order_acquire);

  std::string value;
  bool tombstone = false;
  bool in_memory;
  {
    // Child spans of the handler's handle.get_req: the merge tool's
    // critical path splits service time into memory vs SSTable search.
    obs::TraceSpan sp("store", "search.memory");
    in_memory = SearchLocalMemory(key, &value, &tombstone);
  }
  if (in_memory) {
    resp.found = true;
    resp.tombstone = tombstone;
    if (!tombstone) resp.value = std::move(value);
    resp.latest_ssid = manifest_.LatestSsid();
    return resp;
  }

  if (resp.same_group) {
    // §2.7: stop here; the caller reads our SSTables from shared storage.
    // Advertise the exact live set so the caller cannot consult a table a
    // concurrent compaction retires.
    resp.ssids = manifest_.LiveSsids();
    resp.latest_ssid = resp.ssids.empty() ? 0 : resp.ssids.front();
    return resp;
  }

  bool found = false;
  Status s;
  {
    obs::TraceSpan sp("store", "search.sstable");
    s = SearchOwnSSTables(key, &value, &tombstone, &found);
  }
  if (s.ok() && !found && promoted_any_.load(std::memory_order_acquire)) {
    obs::TraceSpan sp("store", "search.promoted");
    s = SearchPromotedSSTables(key, &value, &tombstone, &found);
  }
  if (s.ok() && found) {
    resp.found = true;
    resp.tombstone = tombstone;
    if (!tombstone) resp.value = std::move(value);
  }
  resp.latest_ssid = manifest_.LatestSsid();
  return resp;
}

// ---------------------------------------------------------------------------
// Background-thread entry points
// ---------------------------------------------------------------------------

Status DbShard::FlushImmutable(const store::MemTablePtr& mem) {
  if (rt_.crashed()) {
    // A crashed rank's volatile MemTables are gone; drop the job but keep
    // the drain bookkeeping so a fence waiting on this flush cannot hang.
    {
      MutexLock lock(&local_mu_);
      auto it = std::find(imm_local_.begin(), imm_local_.end(), mem);
      if (it != imm_local_.end()) imm_local_.erase(it);
    }
    {
      MutexLock d(&drain_mu_);
      --pending_flushes_;
    }
    drain_cv_.NotifyAll();
    return Status::OK();
  }
  // The SSID is allocated here, on the compaction thread: flushes and
  // compaction merges are serialized on this thread and the flush queue
  // preserves seal order (the rotate mutex), so on-NVM SSID order always
  // matches data recency — including relative to merged outputs.
  const uint64_t ssid = manifest_.NextSsid();
  Status s = Status::OK();
  if (mem->Count() > 0) {
    s = store::FlushMemTable(manifest_.dir(), ssid, *mem,
                             std::max(1, opt_.bloom_bits_per_key));
    if (s.ok()) {
      manifest_.AddTable(ssid);
      m_.flushes->Inc();
    }
  }
  if (s.ok()) {
    // Retire from the in-memory registry, so gets stop consulting a table
    // that is now on NVM (or was empty).  After a FAILED flush (e.g.
    // injected ENOSPC) the sealed table deliberately stays in imm_local_:
    // it remains searchable in memory, so no acknowledged write is
    // silently lost just because the device rejected it.
    MutexLock lock(&local_mu_);
    auto it = std::find(imm_local_.begin(), imm_local_.end(), mem);
    if (it != imm_local_.end()) imm_local_.erase(it);
  } else if (mem->Count() > 0) {
    PLOG_ERROR << "flush of sstable " << ssid << " failed (" << s.ToString()
               << "); keeping " << mem->Count()
               << " records searchable in memory";
  }
  // Replication watermark: this MemTable's ops are on shared NVM now, so
  // followers may trim their shadow logs (a failed flush keeps the log).
  if (repl_ && s.ok()) repl_->NoteFlushed(mem.get());
  if (s.ok()) {
    store::CompactionStats cstats;
    const size_t before = manifest_.TableCount();
    s = store::MaybeCompact(manifest_, ssid, opt_.compaction_trigger,
                            std::max(1, opt_.bloom_bits_per_key), &cstats);
    if (s.ok() && manifest_.TableCount() < before) {
      m_.compactions->Inc();
      rt_.flight().Record(
          obs::FlightKind::kCompaction, "maybe_compact", id_,
          static_cast<int64_t>(before - manifest_.TableCount()));
    }
  }
  {
    MutexLock d(&drain_mu_);
    --pending_flushes_;
  }
  drain_cv_.NotifyAll();
  return s;
}

std::map<int, std::vector<KvRecord>> DbShard::CollectOwnerChunks(
    const store::MemTable& mem) const {
  std::map<int, std::vector<KvRecord>> chunks;
  mem.ForEachSorted([&](const Slice& key, const store::MemTable::Entry& e) {
    KvRecord r;
    r.key = key.ToString();
    r.value = e.value;
    r.tombstone = e.tombstone;
    chunks[e.owner].push_back(std::move(r));
  });
  return chunks;
}

void DbShard::DropVolatile() {
  {
    MutexLock rotate(&local_rotate_mu_);
    MutexLock lock(&local_mu_);
    mutation_epoch_.fetch_add(1, std::memory_order_release);
    local_ = std::make_shared<store::MemTable>(store::MemTable::Kind::kLocal,
                                               opt_.memtable_bytes);
    imm_local_.clear();
    m_.memtable_local_bytes->Set(0);
  }
  {
    MutexLock rotate(&remote_rotate_mu_);
    MutexLock lock(&remote_mu_);
    remote_ = std::make_shared<store::MemTable>(store::MemTable::Kind::kRemote,
                                                opt_.memtable_bytes);
    imm_remote_.clear();
    m_.memtable_remote_bytes->Set(0);
  }
  cache_local_.Clear();
  cache_remote_.Clear();
  // Fail-stop: the crashed rank's replication stream dies with its volatile
  // state; followers NACK the gap on any later restart and resync.
  if (repl_) repl_->Reset();
}

void DbShard::MigrationFinished(const store::MemTablePtr& mem) {
  {
    MutexLock lock(&remote_mu_);
    auto it = std::find(imm_remote_.begin(), imm_remote_.end(), mem);
    if (it != imm_remote_.end()) imm_remote_.erase(it);
  }
  m_.migrations->Inc();
  {
    MutexLock d(&drain_mu_);
    --pending_migrations_;
  }
  drain_cv_.NotifyAll();
}

// ---------------------------------------------------------------------------
// Consistency / synchronization
// ---------------------------------------------------------------------------

Status DbShard::Fence() {
  obs::ScopedLatency lat(m_.fence_us);
  // A crashed rank has no staged data left and must not emit traffic; the
  // pipeline already completed every queued op with an error, so only the
  // event-handle reap runs (crash semantics: the fence itself reports OK).
  if (rt_.crashed()) {
    Status reap = rt_.ReapAsyncOps();
    if (!reap.ok()) {
      // Expected: the pipeline completed every queued op with "rank
      // crashed"; those errors were observable per-event and must not turn
      // the fence's crash semantics (report OK) into a failure.  Logged so
      // a *different* reap failure is still visible.
      PLOG_WARN << "crashed-rank fence: reap reported " << reap.ToString();
    }
    return Status::OK();
  }
  // Async completion fence: every papyruskv_*_async op submitted before
  // this fence has been applied (and acked) at its owner once Drain
  // returns — the batched acks are sent after application, exactly like
  // migration-chunk acks.
  rt_.pipeline().Drain();
  // Retire evented put/delete submissions that were never waited
  // individually (the quickstart's bulk-completion pattern) so async_ops_
  // cannot grow without bound; the first failure among them becomes the
  // fence's status, keeping those errors observable.
  Status reap = rt_.ReapAsyncOps();
  {
    MutexLock rotate(&remote_rotate_mu_);
    remote_mu_.Lock();
    if (remote_->Count() > 0) {
      RotateRemoteLocked();
    } else {
      remote_mu_.Unlock();
    }
  }
  WaitMigrationsDrained();
  // Replication commit rule (DESIGN.md §12): a fenced put is durable on
  // ⌊k/2⌋+1 replicas before the fence completes.  Remote puts already gated
  // through the owners' deferred batch/migration acks; this waits out the
  // quorum for this rank's *own* local puts.
  if (repl_) repl_->WaitLocalDurable();
  return reap;
}

Status DbShard::Barrier(int level) {
  obs::ScopedLatency lat(m_.barrier_us);
  if (rt_.crashed()) {
    // A crashed rank contributes no data, but it still pairs up with the
    // survivors' collectives so their barriers complete: one for the
    // MEMTABLE-level point, and a second matching the survivors'
    // SSTABLE-level flush barrier.  A timeout here is expected if the
    // survivors have already given up, so failures are logged, not
    // returned (crash semantics: the barrier itself reports OK).
    Status mb = rt_.CollectiveBarrier();
    if (!mb.ok()) {
      PLOG_WARN << "crashed-rank barrier (memtable point): "
                << mb.ToString();
    }
    if (level == PAPYRUSKV_SSTABLE) {
      Status sb = rt_.CollectiveBarrier();
      if (!sb.ok()) {
        PLOG_WARN << "crashed-rank barrier (sstable point): "
                  << sb.ToString();
      }
    }
    return Status::OK();
  }
  Status s = Fence();
  if (!s.ok()) return s;
  // After every rank's fence, all migrated records have been *applied* at
  // their owners (migration chunks are acked after application), so this
  // collective point establishes the paper's guarantee: all ranks now see
  // the same latest data.
  s = rt_.CollectiveBarrier();
  if (!s.ok()) return s;
  if (level == PAPYRUSKV_SSTABLE) {
    {
      MutexLock rotate(&local_rotate_mu_);
      local_mu_.Lock();
      if (local_->Count() > 0) {
        RotateLocalLocked();
      } else {
        local_mu_.Unlock();
      }
    }
    WaitFlushesDrained();
    s = rt_.CollectiveBarrier();
  }
  return s;
}

Status DbShard::SetConsistency(int mode) {
  if (mode != PAPYRUSKV_SEQUENTIAL && mode != PAPYRUSKV_RELAXED) {
    return Status::InvalidArg("bad consistency mode");
  }
  // Collective (§3.1).  Drain staged remote data first so the mode switch
  // is a clean synchronization point.
  Status s = Fence();
  if (!s.ok()) return s;
  s = rt_.CollectiveBarrier();
  if (!s.ok()) return s;
  consistency_.store(mode);
  return Status::OK();
}

Status DbShard::SetProtection(int prot) {
  if (prot != PAPYRUSKV_RDWR && prot != PAPYRUSKV_WRONLY &&
      prot != PAPYRUSKV_RDONLY) {
    return Status::InvalidArg("bad protection attribute");
  }
  protection_.store(prot);
  // §3.2: WRONLY invalidates and disables the local cache; RDONLY enables
  // the remote cache; leaving RDONLY evicts and disables it.
  cache_local_.set_enabled(opt_.cache_local_enabled &&
                           prot != PAPYRUSKV_WRONLY);
  cache_remote_.set_enabled(prot == PAPYRUSKV_RDONLY ||
                            RemoteCacheForcedByEnv());
  return rt_.CollectiveBarrier();
}

Status DbShard::FlushAll() { return Barrier(PAPYRUSKV_SSTABLE); }

void DbShard::WaitFlushesDrained() {
  MutexLock lock(&drain_mu_);
  while (pending_flushes_ != 0) drain_cv_.Wait(&drain_mu_);
}

void DbShard::WaitMigrationsDrained() {
  MutexLock lock(&drain_mu_);
  while (pending_migrations_ != 0) drain_cv_.Wait(&drain_mu_);
}

DbStats DbShard::StatsSnapshot() const {
  // Materialized from the registry counters (approximate under concurrent
  // mutation, like any lock-free telemetry read).
  DbStats s;
  s.puts_local = m_.puts_local->Value();
  s.puts_remote_staged = m_.puts_remote_staged->Value();
  s.puts_remote_sync = m_.puts_remote_sync->Value();
  s.gets_local = m_.gets_local->Value();
  s.gets_remote = m_.gets_remote->Value();
  s.memtable_hits = m_.memtable_hits->Value();
  s.cache_local_hits = m_.cache_local_hits->Value();
  s.cache_remote_hits = m_.cache_remote_hits->Value();
  s.sstable_hits = m_.sstable_hits->Value();
  s.bloom_negatives = m_.bloom_negatives->Value();
  s.foreign_sstable_hits = m_.foreign_sstable_hits->Value();
  s.remote_value_transfers = m_.remote_value_transfers->Value();
  s.flushes = m_.flushes->Value();
  s.migrations = m_.migrations->Value();
  s.compactions = m_.compactions->Value();
  return s;
}

size_t DbShard::MemTableBytes() const {
  size_t total = 0;
  {
    MutexLock lock(&local_mu_);
    total += local_->ApproxBytes();
  }
  {
    MutexLock lock(&remote_mu_);
    total += remote_->ApproxBytes();
  }
  return total;
}

}  // namespace papyrus::core
