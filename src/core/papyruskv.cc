#include "core/papyruskv.h"

#include <cstring>

#include "core/runtime.h"

using papyrus::Status;
using papyrus::core::DbShardPtr;
using papyrus::core::KvRuntime;
using papyrus::core::Options;

namespace {

int Code(const Status& s) { return s.code(); }

KvRuntime* Rt() { return KvRuntime::Current(); }

Options ToOptions(const papyruskv_option_t* opt) {
  Options o;
  if (!opt) return o;
  o.keylen_hint = opt->keylen;
  o.vallen_hint = opt->vallen;
  o.hash = opt->hash;
  if (opt->consistency == PAPYRUSKV_SEQUENTIAL ||
      opt->consistency == PAPYRUSKV_RELAXED) {
    o.consistency = opt->consistency;
  }
  if (opt->protection == PAPYRUSKV_RDWR ||
      opt->protection == PAPYRUSKV_WRONLY ||
      opt->protection == PAPYRUSKV_RDONLY) {
    o.protection = opt->protection;
  }
  if (opt->memtable_size > 0) o.memtable_bytes = opt->memtable_size;
  if (opt->queue_depth > 0) o.queue_depth = opt->queue_depth;
  o.cache_local_enabled = opt->cache_local != 0;
  if (opt->cache_local_size > 0) o.cache_local_bytes = opt->cache_local_size;
  if (opt->cache_remote_size > 0) {
    o.cache_remote_bytes = opt->cache_remote_size;
  }
  o.compaction_trigger = opt->compaction_trigger;
  if (opt->bloom_bits_per_key > 0) {
    o.bloom_bits_per_key = opt->bloom_bits_per_key;
  }
  o.sstable_binary_search = opt->bin_search != 0;
  o.group_size = opt->group_size;
  if (opt->replicas >= 1) o.replicas = opt->replicas;
  o.read_from_replica = opt->read_from_replica != 0;
  return o;
}

}  // namespace

extern "C" {

int papyruskv_option_init(papyruskv_option_t* opt) {
  if (!opt) return PAPYRUSKV_INVALID_ARG;
  const Options d;
  memset(opt, 0, sizeof(*opt));
  opt->hash = nullptr;
  opt->consistency = d.consistency;
  opt->protection = d.protection;
  opt->memtable_size = d.memtable_bytes;
  opt->queue_depth = d.queue_depth;
  opt->cache_local = d.cache_local_enabled ? 1 : 0;
  opt->cache_local_size = d.cache_local_bytes;
  opt->cache_remote_size = d.cache_remote_bytes;
  opt->compaction_trigger = d.compaction_trigger;
  opt->bloom_bits_per_key = d.bloom_bits_per_key;
  opt->bin_search = d.sstable_binary_search ? 1 : 0;
  opt->group_size = d.group_size;
  opt->replicas = d.replicas;
  opt->read_from_replica = d.read_from_replica ? 1 : 0;
  return PAPYRUSKV_SUCCESS;
}

int papyruskv_init(int* argc, char*** argv, const char* repository) {
  // MPI-style signature (Table 1); the simulated runtime takes no args.
  (void)argc;
  (void)argv;  // as above
  return Code(KvRuntime::Init(repository ? repository : ""));
}

int papyruskv_finalize() { return Code(KvRuntime::Finalize()); }

int papyruskv_open(const char* name, int flags, papyruskv_option_t* opt,
                   papyruskv_db_t* db) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  if (!name || !db) return PAPYRUSKV_INVALID_ARG;
  return Code(rt->Open(name, flags, ToOptions(opt), db));
}

int papyruskv_close(papyruskv_db_t db) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  return Code(rt->Close(db));
}

int papyruskv_put(papyruskv_db_t db, const char* key, size_t keylen,
                  const char* value, size_t vallen) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  if (!key || (vallen > 0 && !value)) return PAPYRUSKV_INVALID_ARG;
  DbShardPtr shard = rt->Find(db);
  if (!shard) return PAPYRUSKV_INVALID_DB;
  return Code(shard->Put(papyrus::Slice(key, keylen),
                         papyrus::Slice(value, vallen)));
}

int papyruskv_get(papyruskv_db_t db, const char* key, size_t keylen,
                  char** value, size_t* vallen) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  if (!key || !value || !vallen) return PAPYRUSKV_INVALID_ARG;
  DbShardPtr shard = rt->Find(db);
  if (!shard) return PAPYRUSKV_INVALID_DB;

  std::string out;
  Status s = shard->Get(papyrus::Slice(key, keylen), &out);
  if (!s.ok()) return Code(s);

  if (*value == nullptr) {
    // Table 1: allocate from the PapyrusKV memory pool.
    char* buf = rt->AllocValue(out.size());
    if (!buf) return PAPYRUSKV_OUT_OF_MEMORY;
    memcpy(buf, out.data(), out.size());
    *value = buf;
  } else {
    if (*vallen < out.size()) return PAPYRUSKV_INVALID_ARG;
    memcpy(*value, out.data(), out.size());
  }
  *vallen = out.size();
  return PAPYRUSKV_SUCCESS;
}

int papyruskv_delete(papyruskv_db_t db, const char* key, size_t keylen) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  if (!key) return PAPYRUSKV_INVALID_ARG;
  DbShardPtr shard = rt->Find(db);
  if (!shard) return PAPYRUSKV_INVALID_DB;
  return Code(shard->Delete(papyrus::Slice(key, keylen)));
}

int papyruskv_free(papyruskv_db_t db, char* val) {
  (void)db;  // the value pool is rank-wide; db kept for API symmetry
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  return Code(rt->FreeValue(val));
}

int papyruskv_put_async(papyruskv_db_t db, const char* key, size_t keylen,
                        const char* value, size_t vallen,
                        papyruskv_event_t* event) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  if (!key || (vallen > 0 && !value)) return PAPYRUSKV_INVALID_ARG;
  DbShardPtr shard = rt->Find(db);
  if (!shard) return PAPYRUSKV_INVALID_DB;
  papyrus::async::OpHandle h =
      shard->PutAsync(papyrus::Slice(key, keylen),
                      papyrus::Slice(value, vallen), /*tombstone=*/false);
  if (!event) {
    // Fire-and-forget: surface an already-known failure, drop the rest.
    return h->done() ? h->Wait().code() : PAPYRUSKV_SUCCESS;
  }
  papyrus::core::AsyncOp op;
  op.handle = std::move(h);
  *event = rt->RegisterAsyncOp(std::move(op));
  return PAPYRUSKV_SUCCESS;
}

int papyruskv_get_async(papyruskv_db_t db, const char* key, size_t keylen,
                        char** value, size_t* vallen,
                        papyruskv_event_t* event) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  if (!key || !value || !vallen || !event) return PAPYRUSKV_INVALID_ARG;
  DbShardPtr shard = rt->Find(db);
  if (!shard) return PAPYRUSKV_INVALID_DB;
  papyrus::core::AsyncOp op;
  op.handle = shard->GetAsync(papyrus::Slice(key, keylen));
  op.db = shard;
  op.key.assign(key, keylen);
  op.value = value;
  op.vallen = vallen;
  op.is_get = true;
  *event = rt->RegisterAsyncOp(std::move(op));
  return PAPYRUSKV_SUCCESS;
}

int papyruskv_delete_async(papyruskv_db_t db, const char* key, size_t keylen,
                           papyruskv_event_t* event) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  if (!key) return PAPYRUSKV_INVALID_ARG;
  DbShardPtr shard = rt->Find(db);
  if (!shard) return PAPYRUSKV_INVALID_DB;
  papyrus::async::OpHandle h =
      shard->PutAsync(papyrus::Slice(key, keylen), papyrus::Slice(),
                      /*tombstone=*/true);
  if (!event) {
    return h->done() ? h->Wait().code() : PAPYRUSKV_SUCCESS;
  }
  papyrus::core::AsyncOp op;
  op.handle = std::move(h);
  *event = rt->RegisterAsyncOp(std::move(op));
  return PAPYRUSKV_SUCCESS;
}

int papyruskv_get_multi(papyruskv_db_t db, int nkeys, const char* const* keys,
                        const size_t* keylens, char** values, size_t* vallens,
                        int* statuses) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  if (nkeys < 0 || !keys || !keylens || !values || !vallens || !statuses) {
    return PAPYRUSKV_INVALID_ARG;
  }
  DbShardPtr shard = rt->Find(db);
  if (!shard) return PAPYRUSKV_INVALID_DB;
  // Submit everything first: outstanding gets for one owner coalesce into a
  // single get_multi frame when the pipeline thread drains the queues.
  std::vector<papyrus::async::OpHandle> handles;
  handles.reserve(static_cast<size_t>(nkeys));
  for (int i = 0; i < nkeys; ++i) {
    if (!keys[i]) {
      handles.push_back(
          papyrus::async::CompletedOp(Status::InvalidArg("null key")));
      continue;
    }
    handles.push_back(shard->GetAsync(papyrus::Slice(keys[i], keylens[i])));
  }
  int rc = PAPYRUSKV_SUCCESS;
  for (int i = 0; i < nkeys; ++i) {
    std::string out;
    const papyrus::Slice key(keys[i] ? keys[i] : "",
                             keys[i] ? keylens[i] : 0);
    Status s = shard->FinishGet(key, handles[static_cast<size_t>(i)], &out);
    int code = s.code();
    if (s.ok()) {
      // Per-key delivery under the papyruskv_get buffer contract.
      if (values[i] == nullptr) {
        char* buf = rt->AllocValue(out.size());
        if (!buf) {
          code = PAPYRUSKV_OUT_OF_MEMORY;
        } else {
          memcpy(buf, out.data(), out.size());
          values[i] = buf;
          vallens[i] = out.size();
        }
      } else if (vallens[i] < out.size()) {
        code = PAPYRUSKV_INVALID_ARG;
      } else {
        memcpy(values[i], out.data(), out.size());
        vallens[i] = out.size();
      }
    }
    statuses[i] = code;
    if (code != PAPYRUSKV_SUCCESS && code != PAPYRUSKV_NOT_FOUND &&
        rc == PAPYRUSKV_SUCCESS) {
      rc = code;
    }
  }
  return rc;
}

int papyruskv_signal_notify(int signum, int* ranks, int count) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  return Code(rt->SignalNotify(signum, ranks, count));
}

int papyruskv_signal_wait(int signum, int* ranks, int count) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  return Code(rt->SignalWait(signum, ranks, count));
}

int papyruskv_fence(papyruskv_db_t db) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  DbShardPtr shard = rt->Find(db);
  if (!shard) return PAPYRUSKV_INVALID_DB;
  return Code(shard->Fence());
}

int papyruskv_barrier(papyruskv_db_t db, int level) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  DbShardPtr shard = rt->Find(db);
  if (!shard) return PAPYRUSKV_INVALID_DB;
  if (level != PAPYRUSKV_MEMTABLE && level != PAPYRUSKV_SSTABLE) {
    return PAPYRUSKV_INVALID_ARG;
  }
  return Code(shard->Barrier(level));
}

int papyruskv_consistency(papyruskv_db_t db, int mode) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  DbShardPtr shard = rt->Find(db);
  if (!shard) return PAPYRUSKV_INVALID_DB;
  return Code(shard->SetConsistency(mode));
}

int papyruskv_protect(papyruskv_db_t db, int prot) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  DbShardPtr shard = rt->Find(db);
  if (!shard) return PAPYRUSKV_INVALID_DB;
  return Code(shard->SetProtection(prot));
}

int papyruskv_checkpoint(papyruskv_db_t db, const char* path,
                         papyruskv_event_t* event) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  if (!path) return PAPYRUSKV_INVALID_ARG;
  return Code(rt->Checkpoint(db, path, event));
}

int papyruskv_restart(const char* path, const char* name, int flags,
                      papyruskv_option_t* opt, papyruskv_db_t* db,
                      papyruskv_event_t* event) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  if (!path || !name || !db) return PAPYRUSKV_INVALID_ARG;
  return Code(rt->Restart(path, name, flags, ToOptions(opt), db, event));
}

int papyruskv_destroy(papyruskv_db_t db, papyruskv_event_t* event) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  return Code(rt->Destroy(db, event));
}

int papyruskv_wait(papyruskv_db_t db, papyruskv_event_t event) {
  (void)db;  // event ids are rank-wide; db kept for API symmetry
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  // The event space is partitioned: ids >= kAsyncEventBase are pipeline
  // ops (put/get/delete_async), below are runtime events (checkpoint &c).
  if (event >= papyrus::core::kAsyncEventBase) {
    return Code(rt->WaitAsyncOp(event));
  }
  return Code(rt->WaitEvent(event));
}

int papyruskv_stats(papyruskv_db_t db, char* buf, size_t* len) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  if (!len) return PAPYRUSKV_INVALID_ARG;
  if (db >= 0 && !rt->Find(db)) return PAPYRUSKV_INVALID_DB;
  const std::string json = rt->StatsJson();
  if (!buf) {
    *len = json.size();
    return PAPYRUSKV_SUCCESS;
  }
  if (*len < json.size()) {
    *len = json.size();
    return PAPYRUSKV_INVALID_ARG;
  }
  memcpy(buf, json.data(), json.size());
  *len = json.size();
  return PAPYRUSKV_SUCCESS;
}

int papyruskv_stats_reset() {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  rt->metrics().Reset();
  return PAPYRUSKV_SUCCESS;
}

int papyruskv_health(papyruskv_health_t* health) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  if (!health) return PAPYRUSKV_INVALID_ARG;
  // Deliberately no CheckAlive: a crashed rank still reports (that is the
  // point of a health probe).
  const papyrus::core::HealthSnapshot h = rt->Health();
  health->rank = h.rank;
  health->nranks = h.nranks;
  health->crashed = h.crashed ? 1 : 0;
  health->degraded = h.degraded ? 1 : 0;
  health->suspect_peers = h.suspect_peers;
  health->pipeline_queue_depth = h.pipeline_queue_depth;
  health->flush_queue_depth = h.flush_queue_depth;
  health->migration_queue_depth = h.migration_queue_depth;
  health->repl_lag_ops = h.repl_lag_ops;
  health->uptime_us = h.uptime_us;
  health->window_us = h.window_us;
  health->timeline_samples = h.timeline_samples;
  health->put_rate = h.put_rate;
  health->get_rate = h.get_rate;
  health->put_p99_us = h.put_p99_us;
  health->get_p99_us = h.get_p99_us;
  return PAPYRUSKV_SUCCESS;
}

int papyruskv_hash(papyruskv_db_t db, const char* key, size_t keylen,
                   int* rank) {
  KvRuntime* rt = Rt();
  if (!rt) return PAPYRUSKV_CLOSED;
  if (!key || !rank) return PAPYRUSKV_INVALID_ARG;
  DbShardPtr shard = rt->Find(db);
  if (!shard) return PAPYRUSKV_INVALID_DB;
  *rank = shard->OwnerOf(papyrus::Slice(key, keylen));
  return PAPYRUSKV_SUCCESS;
}

}  // extern "C"

namespace papyrus::core {

std::shared_ptr<DbShard> DbHandle(papyruskv_db_t db) {
  KvRuntime* rt = KvRuntime::Current();
  return rt ? rt->Find(db) : nullptr;
}

}  // namespace papyrus::core
