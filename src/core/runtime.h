// KvRuntime: the per-rank PapyrusKV runtime.
//
// One instance lives in each rank between papyruskv_init and
// papyruskv_finalize.  It owns (paper §2.4):
//   * the *compaction thread* — drains the flushing queue (immutable local
//     MemTables → SSTables), runs merge compaction, and executes
//     checkpoint/restart file transfers (§4.2: "the compaction thread in
//     each rank starts to transfer the SSTables");
//   * the *message dispatcher* — drains the migration queue, sorting and
//     batching records per owner and sending them over the interconnect;
//   * the *message handler* — receives requests from other ranks and
//     applies/serves them;
//   * the flushing and migration queues themselves — lock-free, fixed
//     size, FIFO; producers block while full (back-pressure, §2.4);
//   * communicators dup'ed from the application's (§2.4: "the runtime
//     creates new independent MPI communicators"), so runtime traffic can
//     never interfere with application messages;
//   * the database registry, event registry, signal endpoint, and the
//     value memory pool backing papyruskv_get allocations.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>

#include "async/pipeline.h"
#include "common/mutex.h"
#include "common/ring_queue.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/db_shard.h"
#include "core/events.h"
#include "core/layout.h"
#include "core/options.h"
#include "core/wire.h"
#include "fault/failpoint.h"
#include "fault/retry.h"
#include "net/runtime.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace papyrus::core {

// Work item for the compaction thread: either an immutable local MemTable
// to flush, or a deferred task (checkpoint/restart transfer).
struct CompactionJob {
  DbShardPtr db;
  store::MemTablePtr mem;
  std::function<void()> task;
  bool shutdown = false;
};

// Work item for the message dispatcher: an immutable remote MemTable to
// migrate.
struct MigrationJob {
  DbShardPtr db;
  store::MemTablePtr mem;
  bool shutdown = false;
};

// Live per-rank health snapshot (papyruskv_health): read from the running
// store without stopping it — atomics, two leaf-mutex peeks, no
// collectives.  Rates/percentiles come from the timeline sampler's last
// window when PAPYRUSKV_TIMELINE_MS is on, else from the whole-run
// cumulative histograms (window_us tells the caller which).
struct HealthSnapshot {
  int rank = 0;
  int nranks = 0;
  bool crashed = false;   // simulated fail-stop (rank.crash fired)
  bool degraded = false;  // any open db's replication below quorum
  int suspect_peers = 0;
  int64_t pipeline_queue_depth = 0;   // async.queue_depth
  int64_t flush_queue_depth = 0;      // net.flush_queue_depth
  int64_t migration_queue_depth = 0;  // net.migration_queue_depth
  int64_t repl_lag_ops = 0;           // repl.lag_ops
  uint64_t uptime_us = 0;
  uint64_t window_us = 0;         // the window the rates cover
  uint64_t timeline_samples = 0;  // 0 = sampler off
  double put_rate = 0;            // puts/s over window_us
  double get_rate = 0;
  double put_p99_us = 0;
  double get_p99_us = 0;
};

// First handle value for papyruskv_*_async events.  Async-op handles and
// EventRegistry ids (checkpoint/restart/destroy) share the C API's
// papyruskv_event_t space; the registry allocates upward from 1 and can
// never reach this, so papyruskv_wait dispatches on the value alone.
inline constexpr int kAsyncEventBase = 1 << 30;

// One outstanding papyruskv_*_async operation.  Gets keep the caller's
// output pointers (which must stay valid until papyruskv_wait) plus the
// context for §2.7 post-processing at wait time.
struct AsyncOp {
  async::OpHandle handle;
  DbShardPtr db;         // gets only
  std::string key;       // gets only
  char** value = nullptr;
  size_t* vallen = nullptr;
  bool is_get = false;
};

class KvRuntime {
 public:
  // The calling rank-thread's runtime (null before Init/after Finalize).
  static KvRuntime* Current();

  // Collective: every rank calls Init with the same repository spec (empty
  // = $PAPYRUSKV_REPOSITORY).  Must run inside net::RunRanks.
  static Status Init(const std::string& repository);
  static Status Finalize();

  net::RankContext& ctx() { return ctx_; }
  int rank() const { return ctx_.rank; }
  int size() const { return ctx_.size(); }
  const StorageLayout& layout() const { return layout_; }
  EventRegistry& events() { return events_; }

  // ---- Observability (src/obs/) ----
  // This rank's metrics registry.  Installed as obs::Current() on the app
  // thread and every runtime thread, so all layers below report here.
  obs::Registry& metrics() { return metrics_; }
  obs::TraceBuffer& trace() { return trace_; }
  obs::FlightRecorder& flight() { return flight_; }
  // The continuous time-series sampler (DESIGN.md §13), enabled by
  // PAPYRUSKV_TIMELINE_MS; its thread starts/stops with the runtime's.
  obs::TimelineSampler& timeline() { return timeline_; }
  // Renders this rank's metrics as a stats-v1 JSON document
  // (papyruskv_stats).
  std::string StatsJson() const;
  // Renders this rank's timeline ring as a timeline-v1 JSON document; safe
  // while the sampler is running (benches gather it mid-run).
  std::string TimelineJson() const;
  // Fills a live health snapshot (papyruskv_health); works on a crashed
  // rank (health is exactly what you ask a sick rank for).
  HealthSnapshot Health();
  // Installs this runtime's registry/trace/flight recorder on the calling
  // thread (every thread that executes on behalf of this rank must call it
  // once); `thread_name` labels the thread's lane in exported traces.
  void AdoptObservability(const char* thread_name = "app");

  // ---- Database lifecycle (collective) ----
  Status Open(const std::string& name, int flags, const Options& opt,
              int* db_out);
  Status Close(int db);
  DbShardPtr Find(int db);

  // ---- Queues (called from DbShard; block while full) ----
  // The depth gauges count queued items; consumers decrement after Pop, so
  // the gauge reflects back-pressure the producers feel.
  void EnqueueFlush(CompactionJob job) {
    g_flush_q_->Add(1);
    flush_queue_.Push(std::move(job));
  }
  void EnqueueMigration(MigrationJob job) {
    g_mig_q_->Add(1);
    migration_queue_.Push(std::move(job));
  }
  // Runs `task` on the compaction thread after currently queued jobs
  // (checkpoint transfers: never enqueue flush work from inside).
  void EnqueueTask(std::function<void()> task) {
    CompactionJob job;
    job.task = std::move(task);
    EnqueueFlush(std::move(job));
  }
  // Runs `task` on a dedicated auxiliary thread (restart/redistribution:
  // these replay puts, which may themselves enqueue flush jobs — running
  // them on the compaction thread would deadlock against a full queue).
  void RunAsync(std::function<void()> task);

  // ---- Transport helpers ----
  void SendRequest(int dst, int op, const Slice& payload);
  void SendResponse(int dst, int tag, const Slice& payload);
  net::Message RecvResponse(int src, int tag);
  // Deadline receive on the response communicator (the pipeline's ack
  // collection); false on timeout.
  bool RecvResponseFor(int src, int tag, uint64_t timeout_us,
                       net::Message* out) {
    return resp_comm_.RecvFor(src, tag, timeout_us, out);
  }

  // ---- Async submission/completion pipeline (src/async/) ----
  async::AsyncPipeline& pipeline() { return pipeline_; }
  // Registers an outstanding papyruskv_*_async op; returns its event handle
  // (>= kAsyncEventBase).
  int RegisterAsyncOp(AsyncOp op);
  // papyruskv_wait for an async-op handle: waits for completion, runs get
  // post-processing, fills the caller's output buffer, releases the handle.
  Status WaitAsyncOp(int id);
  // Retires completed put/delete events that were never waited on — the
  // documented bulk-completion pattern (submit N evented ops, then fence)
  // must not leak one async_ops_ entry per op.  Called from DbShard::Fence
  // after the pipeline drain; a retired event is consumed exactly as if it
  // had been waited (a later papyruskv_wait returns PAPYRUSKV_INVALID_EVENT).
  // Get events stay registered: their value delivery happens at wait time.
  // Returns the first failed status among the reaped ops, so the fence
  // surfaces errors that would otherwise vanish with the handles.
  Status ReapAsyncOps();

  // Unique tag for a reply that may be retried (see wire.h: a retried
  // request must never match a previous attempt's late reply onto the next
  // request).
  int AllocRespTag() {
    return resp_tag_seq_.fetch_add(1, std::memory_order_relaxed);
  }

  // Request/reply with bounded retry (DESIGN.md §8): sends (dst, op,
  // payload) and waits up to retry().reply_timeout_us for the reply tagged
  // resp_tag; on timeout re-sends (runtime requests are idempotent) with
  // exponential backoff.  After retry().max_attempts attempts, marks dst
  // suspect and returns PAPYRUSKV_ERR_TIMEOUT.
  Status RequestReply(int dst, int op, const Slice& payload, int resp_tag,
                      net::Message* reply);

  const fault::RetryPolicy& retry() const { return retry_; }

  // ---- Simulated rank failure (rank.crash failpoint; DESIGN.md §8) ----
  // True once this rank has "crashed": volatile state is gone and public
  // API calls fail until checkpoint restart.
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  // Fails once this rank has crashed; each call is also one firing
  // opportunity for the rank.crash failpoint (public KV ops call this, so
  // `rank.crash=rank2@op500` kills rank 2 on its 500th operation).
  Status CheckAlive();
  // Peer-health bookkeeping: a peer that exhausted its retries is suspect.
  void MarkSuspect(int rank);
  bool IsSuspect(int rank);
  // Restart (§4.2): the rank rejoins service — clear the simulated-crash
  // flag and forget suspects.  Called from the collective restart path, so
  // every rank's view resets together.
  void ClearFaultState();

  // Collective barrier for application-thread collectives (papyruskv
  // barrier/consistency/protect/open/close).  PAPYRUSKV_ERR_TIMEOUT when a
  // peer fails to arrive within retry().barrier_timeout_us.
  Status CollectiveBarrier();
  // Collective barrier usable from compaction-thread tasks (restart).
  Status RestartBarrier();
  net::Communicator& barrier_comm() { return barrier_comm_; }

  // ---- Signals (§3.1) ----
  Status SignalNotify(int signum, const int* ranks, int count);
  Status SignalWait(int signum, const int* ranks, int count);

  // ---- Persistence (§4; implemented in checkpoint.cc) ----
  Status Checkpoint(int db, const std::string& path, int* event_out);
  Status Restart(const std::string& path, const std::string& name, int flags,
                 const Options& opt, int* db_out, int* event_out);
  Status Destroy(int db, int* event_out);
  Status WaitEvent(int event);

  // ---- Value pool (papyruskv_get allocations / papyruskv_free) ----
  char* AllocValue(size_t n);
  Status FreeValue(char* p);

 private:
  KvRuntime(net::RankContext& ctx, const std::string& repository);
  ~KvRuntime();

  void StartThreads();
  void StopThreads();

  void CompactionLoop();
  void DispatcherLoop();
  void HandlerLoop();

  void HandleMigrateChunk(const net::Message& m, bool sync_put);
  void HandleGetReq(const net::Message& m);
  void HandlePutBatch(const net::Message& m);
  void HandleGetMulti(const net::Message& m);
  void HandleReplAppend(const net::Message& m);
  void HandleReplQuery(const net::Message& m);
  void HandleReplRead(const net::Message& m);

  // Flips crashed_ (once) and discards all shards' volatile state — the
  // simulated power loss of §4.2's failure model.
  void TriggerCrash();

  // Writes the per-rank stats JSON (PAPYRUSKV_STATS), the rank-0 aggregate
  // roll-up (allgather + merge), and the per-rank Chrome trace
  // (PAPYRUSKV_TRACE).  Collective when PAPYRUSKV_STATS is set.
  void ExportObservability();

  net::RankContext& ctx_;
  StorageLayout layout_;
  EventRegistry events_;

  net::Communicator req_comm_;      // requests → handler threads
  net::Communicator resp_comm_;     // handler → requester threads
  net::Communicator barrier_comm_;  // app-thread collectives
  net::Communicator restart_comm_;  // compaction-thread collectives
  net::Communicator signal_comm_;   // papyruskv_signal_*

  BlockingRingQueue<CompactionJob> flush_queue_;
  BlockingRingQueue<MigrationJob> migration_queue_;

  std::thread compaction_thread_;
  std::thread dispatcher_thread_;
  std::thread handler_thread_;
  // Leaf locks: each guards exactly the fields named below and is never
  // held while acquiring another lock.
  Mutex aux_mu_{"rt_aux_mu"};
  std::vector<std::thread> aux_threads_ GUARDED_BY(aux_mu_);

  Mutex dbs_mu_{"rt_dbs_mu"};
  std::map<int, DbShardPtr> dbs_ GUARDED_BY(dbs_mu_);
  int next_db_id_ GUARDED_BY(dbs_mu_) = 1;

  Mutex pool_mu_{"rt_pool_mu"};
  std::unordered_set<char*> pool_allocs_ GUARDED_BY(pool_mu_);

  // Outstanding papyruskv_*_async ops, keyed by event handle.  Leaf lock:
  // released before blocking on any op.
  Mutex async_mu_{"rt_async_mu"};
  std::map<int, AsyncOp> async_ops_ GUARDED_BY(async_mu_);
  int next_async_id_ GUARDED_BY(async_mu_) = kAsyncEventBase;

  // Fault/recovery state (DESIGN.md §8).
  fault::RetryPolicy retry_;
  std::atomic<bool> crashed_{false};
  std::atomic<int> resp_tag_seq_{kDynamicRespTagBase};
  fault::Point* crash_point_;      // cached rank.crash failpoint
  fault::Point* repl_drop_point_;  // cached repl.append.drop failpoint

  Mutex suspect_mu_{"rt_suspect_mu"};
  std::set<int> suspects_ GUARDED_BY(suspect_mu_);

  // Declared before the cached metric pointers below, which are resolved
  // from it in the constructor.
  obs::Registry metrics_;
  obs::TraceBuffer trace_;
  obs::FlightRecorder flight_;
  obs::Gauge* g_flush_q_;            // net.flush_queue_depth
  obs::Gauge* g_mig_q_;              // net.migration_queue_depth
  obs::Histogram* h_handler_us_;     // net.handler_service_us
  obs::Histogram* h_migration_us_;   // store.migration_us
  // Request traffic split by opcode (kOpMigrateChunk..kOpMax) plus a
  // slot 0 catch-all; responses are a single bucket.
  obs::Counter* c_req_msgs_[kOpMax + 1];
  obs::Counter* c_req_bytes_[kOpMax + 1];
  obs::Counter* c_resp_msgs_;
  obs::Counter* c_resp_bytes_;
  obs::Counter* c_req_retries_;      // net.req.retries
  obs::Counter* c_req_timeouts_;     // net.req.timeouts
  obs::Counter* c_suspects_;         // net.peer.suspects
  // Resolved for Health(): the gauges/histograms other layers own.
  obs::Gauge* g_async_depth_;        // async.queue_depth
  obs::Gauge* g_repl_lag_;           // repl.lag_ops
  obs::Histogram* h_kv_put_us_;      // kv.put_us
  obs::Histogram* h_kv_get_us_;      // kv.get_us

  // Timeline sampler (DESIGN.md §13): configured from PAPYRUSKV_TIMELINE_MS
  // in the constructor, started/stopped with the runtime threads.  Declared
  // after metrics_ (it resolves tracked metrics from it).
  obs::TimelineSampler timeline_{&metrics_};
  const uint64_t start_us_ = NowMicros();

  // Declared last: its constructor resolves metrics from metrics_ above,
  // and Start/Stop bracket the other runtime threads (StartThreads/
  // StopThreads).
  async::AsyncPipeline pipeline_{*this};
};

}  // namespace papyrus::core
