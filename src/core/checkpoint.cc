// Persistence support (paper §4): asynchronous checkpoint, restart, restart
// with redistribution, and destroy.
//
// Checkpoint: barrier(SSTABLE) creates a snapshot image on NVM — a complete
// set of SSTables.  The compaction thread then copies those files to the
// parallel-filesystem target in the background, while the application is
// free to keep updating (updates never touch existing SSTables).
//
// Restart: the compaction thread copies the snapshot's files back to NVM
// and the database is re-composed from them.  If the rank count differs
// from the snapshot's — or redistribution is forced — every rank replays a
// partition of the snapshot through normal put operations, in parallel, so
// the hash re-partitions the data (§4.2 "Restart with redistribution").
//
// Snapshot layout under <path>/<db name>/:
//   snapshot.meta          "papyruskv-snapshot v2\nnranks <N>\ncrc <hex>\n"
//                          (replaced atomically; the previous meta survives
//                          as snapshot.meta.bak and is the fallback when the
//                          primary is torn or corrupt — DESIGN.md §8)
//   rank<k>/sst_<ssid>.*   rank k's SSTable files
#include <cstdio>
#include <sstream>

#include "common/crc32.h"
#include "common/env.h"
#include "common/logging.h"
#include "core/runtime.h"
#include "sim/storage.h"
#include "store/format.h"

namespace papyrus::core {

namespace {

std::string SnapshotDbDir(const std::string& root, const std::string& name) {
  return root + "/" + name;
}

Status WriteSnapshotMeta(const std::string& db_dir, int nranks) {
  std::ostringstream ss;
  ss << "papyruskv-snapshot v2\nnranks " << nranks << "\n";
  const std::string body = ss.str();
  char crc_hex[16];
  snprintf(crc_hex, sizeof(crc_hex), "%08x", Crc32c(body.data(), body.size()));
  const std::string text = body + "crc " + crc_hex + "\n";

  // Replace atomically, keeping the previous meta as .bak: a crash at any
  // point leaves either the old or the new meta parseable — a torn write
  // can corrupt the primary, but never both.
  const std::string path = db_dir + "/snapshot.meta";
  const std::string tmp = path + ".tmp";
  if (sim::Storage::FileExists(path)) {
    Status s = sim::Storage::RenameFile(path, path + ".bak");
    if (!s.ok()) return s;
  }
  Status s = sim::Storage::WriteStringToFile(tmp, text);
  if (!s.ok()) return s;
  return sim::Storage::RenameFile(tmp, path);
}

// Parses and verifies one snapshot.meta image.  v2 carries a trailing
// "crc <hex>" line over everything before it, so a truncated or partially
// written meta is *detected* instead of silently accepted; v1 (no footer)
// is still accepted for snapshots written before the CRC existed.
Status ParseSnapshotMeta(const std::string& text, int* nranks) {
  std::istringstream ss(text);
  std::string magic, version, key;
  int value = 0;
  ss >> magic >> version >> key >> value;
  if (magic != "papyruskv-snapshot" || key != "nranks" || value <= 0) {
    return Status::Corrupted("bad snapshot meta");
  }
  if (version != "v1") {
    const size_t pos = text.rfind("\ncrc ");
    if (pos == std::string::npos) {
      return Status::Corrupted("snapshot meta missing crc footer");
    }
    const std::string body = text.substr(0, pos + 1);
    const uint32_t want = static_cast<uint32_t>(
        strtoul(text.substr(pos + 5).c_str(), nullptr, 16));
    if (Crc32c(body.data(), body.size()) != want) {
      return Status::Corrupted("snapshot meta crc mismatch (torn write?)");
    }
  }
  *nranks = value;
  return Status::OK();
}

Status ReadSnapshotMeta(const std::string& db_dir, int* nranks) {
  const std::string path = db_dir + "/snapshot.meta";
  std::string text;
  Status s = sim::Storage::ReadFileToString(path, &text);
  if (s.ok()) s = ParseSnapshotMeta(text, nranks);
  if (s.ok()) return s;
  // Torn, corrupt, or missing primary: fall back to the previous
  // checkpoint's meta, preserved as .bak by WriteSnapshotMeta.
  std::string bak;
  if (sim::Storage::ReadFileToString(path + ".bak", &bak).ok()) {
    Status bs = ParseSnapshotMeta(bak, nranks);
    if (bs.ok()) {
      PLOG_WARN << "snapshot.meta unusable (" << s.ToString()
                << "); falling back to previous consistent snapshot meta";
      return bs;
    }
  }
  return s;
}

// SSIDs present in a snapshot rank directory, ascending.
Status ScanSnapshotSsids(const std::string& dir, std::vector<uint64_t>* out) {
  out->clear();
  std::vector<std::string> entries;
  Status s = sim::Storage::ListDir(dir, &entries);
  if (!s.ok()) return s;
  for (const auto& name : entries) {
    if (name.rfind("sst_", 0) == 0 && name.size() > 9 &&
        name.compare(name.size() - 5, 5, ".data") == 0) {
      const uint64_t ssid =
          strtoull(name.substr(4, name.size() - 9).c_str(), nullptr, 10);
      if (ssid > 0) out->push_back(ssid);
    }
  }
  std::sort(out->begin(), out->end());
  return Status::OK();
}

Status CopySstableFiles(const std::string& from_dir,
                        const std::string& to_dir, uint64_t ssid) {
  for (const auto& name : {store::SsDataName(ssid), store::SsIndexName(ssid),
                           store::BloomName(ssid)}) {
    Status s = sim::Storage::CopyFile(from_dir + "/" + name,
                                      to_dir + "/" + name);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace

Status KvRuntime::Checkpoint(int dbid, const std::string& path,
                             int* event_out) {
  DbShardPtr db = Find(dbid);
  if (!db) return Status(PAPYRUSKV_INVALID_DB);
  if (path.empty()) return Status::InvalidArg("checkpoint path");

  // Register the target's device model (the artifact points this at
  // Lustre); "lustre:/scratch/ckpt" style specs are honored like the
  // repository spec.
  sim::DeviceClass cls;
  std::string root;
  ParseRepositorySpec(path, &cls, &root);
  sim::DeviceRegistry::Instance().GetOrCreate(root, cls);

  // §4.2: checkpoint internally performs barrier(SSTABLE), creating the
  // snapshot image on NVM.
  Status s = db->Barrier(PAPYRUSKV_SSTABLE);
  if (!s.ok()) return s;

  const std::string db_dir = SnapshotDbDir(root, db->name());
  const std::string dst_dir = db_dir + "/rank" + std::to_string(rank());
  s = sim::Storage::CreateDirs(dst_dir);
  if (!s.ok()) return s;
  if (rank() == 0) {
    s = WriteSnapshotMeta(db_dir, size());
    if (!s.ok()) return s;
  }

  // Snapshot the live table list *now*: the transfer job runs FIFO on the
  // compaction thread, so no compaction can delete these files before the
  // copies complete, and later updates only add higher SSIDs.
  std::vector<uint64_t> ssids = db->manifest().LiveSsids();
  const std::string src_dir = db->dir();

  EventPtr ev;
  const int event_id = events_.Create(&ev);
  // Latency spans the full operation: barrier start to transfer complete.
  const uint64_t start_us = NowMicros();
  KvRuntime* rt = this;
  EnqueueTask([src_dir, dst_dir, ssids, ev, rt, db, start_us] {
    Status ts = Status::OK();
    {
      obs::TraceSpan span("kv", "checkpoint");
      for (uint64_t ssid : ssids) {
        ts = CopySstableFiles(src_dir, dst_dir, ssid);
        if (!ts.ok()) break;
      }
    }
    // The fresh snapshot doubles as the repair source for corrupted live
    // SSTables (DESIGN.md §8): every checkpointed ssid can be restored
    // from dst_dir on a checksum failure.
    if (ts.ok()) db->manifest().SetRepairDir(dst_dir);
    rt->metrics()
        .GetHistogram("kv.checkpoint_us")
        .Record(NowMicros() - start_us);
    ev->Complete(ts);
  });

  if (event_out) {
    *event_out = event_id;
    return Status::OK();
  }
  // No event handle requested: the call degrades to synchronous (§4.2 —
  // asynchronous "if event is not NULL").
  return WaitEvent(event_id);
}

Status KvRuntime::Restart(const std::string& path, const std::string& name,
                          int flags, const Options& opt, int* db_out,
                          int* event_out) {
  if (!db_out) return Status::InvalidArg("restart");
  // The restart collective is the §4.2 rejoin point: a rank that crashed
  // (fail-stop) comes back through here, so its crashed flag lifts and every
  // rank's stale suspicions reset — peers re-probe instead of permanently
  // routing around a rank that has recovered.
  ClearFaultState();
  sim::DeviceClass cls;
  std::string root;
  ParseRepositorySpec(path, &cls, &root);
  sim::DeviceRegistry::Instance().GetOrCreate(root, cls);

  const std::string db_dir = SnapshotDbDir(root, name);
  int snap_nranks = 0;
  Status s = ReadSnapshotMeta(db_dir, &snap_nranks);
  if (!s.ok()) return s;

  const bool force_rd =
      EnvBool("PAPYRUSKV_FORCE_REDISTRIBUTE").value_or(false);
  const bool redistribute = force_rd || snap_nranks != size();

  // Start from a clean slate on NVM, then open the (empty) database; the
  // restore job repopulates it.
  const std::string rank_dir = layout().RankDir(name, rank());
  s = sim::Storage::RemoveDirRecursive(rank_dir);
  if (!s.ok()) return s;
  int dbid = 0;
  s = Open(name, flags | PAPYRUSKV_CREATE, opt, &dbid);
  if (!s.ok()) return s;
  DbShardPtr db = Find(dbid);

  EventPtr ev;
  const int event_id = events_.Create(&ev);
  const int my_rank = rank();
  const int nranks = size();
  KvRuntime* rt = this;
  const uint64_t start_us = NowMicros();

  if (!redistribute) {
    // Same rank count: SSTables are reused as they are (§4.2, Fig. 5b).
    RunAsync([db_dir, my_rank, db, rt, ev, start_us] {
      obs::TraceSpan span("kv", "restart");
      const std::string src = db_dir + "/rank" + std::to_string(my_rank);
      std::vector<uint64_t> ssids;
      Status ts = ScanSnapshotSsids(src, &ssids);
      if (ts.ok()) {
        for (uint64_t ssid : ssids) {
          ts = CopySstableFiles(src, db->dir(), ssid);
          if (!ts.ok()) break;
        }
      }
      if (ts.ok()) ts = db->manifest().Open();  // adopt the copied tables
      // The snapshot we just restored from is a valid repair source for
      // the adopted tables (DESIGN.md §8).
      if (ts.ok()) db->manifest().SetRepairDir(src);
      // All ranks must finish restoring before any rank's event completes:
      // a remote get may hit any rank immediately after wait().
      Status bs = rt->RestartBarrier();
      if (ts.ok()) ts = bs;
      rt->metrics()
          .GetHistogram("kv.restart_us")
          .Record(NowMicros() - start_us);
      ev->Complete(ts);
    });
  } else {
    // Redistribution: each running rank replays a partition of the
    // snapshot ranks through normal puts; the workload is partitioned
    // across all ranks and executed in parallel (§4.2).
    RunAsync([db_dir, my_rank, nranks, snap_nranks, db, rt, ev, start_us] {
      obs::TraceSpan span("kv", "restart_redistribute");
      Status ts = Status::OK();
      for (int sr = my_rank; sr < snap_nranks && ts.ok(); sr += nranks) {
        const std::string src = db_dir + "/rank" + std::to_string(sr);
        std::vector<uint64_t> ssids;
        ts = ScanSnapshotSsids(src, &ssids);
        if (!ts.ok()) break;
        // Ascending SSIDs: replaying older tables first means newer
        // versions of a key overwrite older ones, ending in the correct
        // final state.
        for (uint64_t ssid : ssids) {
          store::SSTablePtr reader;
          ts = store::Manifest::OpenForeign(src, ssid, &reader);
          if (!ts.ok()) break;
          std::string key, value;
          uint8_t rec_flags = 0;
          for (size_t i = 0; i < reader->count() && ts.ok(); ++i) {
            ts = reader->ReadEntry(i, &key, &value, &rec_flags);
            if (!ts.ok()) break;
            if (rec_flags & store::kFlagTombstone) {
              ts = db->Delete(key);
            } else {
              ts = db->Put(key, value);
            }
          }
          if (!ts.ok()) break;
        }
      }
      if (ts.ok()) ts = db->Fence();  // push staged pairs to their owners
      // Every rank done replaying + fencing.
      Status bs = rt->RestartBarrier();
      if (ts.ok()) ts = bs;
      rt->metrics()
          .GetHistogram("kv.restart_us")
          .Record(NowMicros() - start_us);
      ev->Complete(ts);
    });
  }

  *db_out = dbid;
  if (event_out) {
    *event_out = event_id;
    return Status::OK();
  }
  return WaitEvent(event_id);
}

Status KvRuntime::Destroy(int dbid, int* event_out) {
  DbShardPtr db = Find(dbid);
  if (!db) return Status(PAPYRUSKV_INVALID_DB);
  // Collective: quiesce background work for this database, then unregister
  // it and remove its data from NVM.
  Status s = db->Barrier(PAPYRUSKV_MEMTABLE);
  if (!s.ok()) return s;
  {
    MutexLock lock(&dbs_mu_);
    dbs_.erase(dbid);
  }
  s = CollectiveBarrier();
  if (!s.ok()) return s;

  const std::string rank_dir = db->dir();
  EventPtr ev;
  const int event_id = events_.Create(&ev);
  EnqueueTask([rank_dir, ev] {
    ev->Complete(sim::Storage::RemoveDirRecursive(rank_dir));
  });
  if (event_out) {
    *event_out = event_id;
    return Status::OK();
  }
  return WaitEvent(event_id);
}

}  // namespace papyrus::core
