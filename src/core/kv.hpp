// Modern C++ wrapper over the PapyrusKV C API.
//
// The paper's interface (Table 1) is C, matching MPI-era HPC codebases.
// This header layers zero-cost RAII types over it for C++ applications:
//
//   papyrus::kv::Runtime rt("nvme:/tmp/repo");            // init/finalize
//   auto db = papyrus::kv::Database::Open("mydb");        // open/close
//   db.Put("key", "value");
//   if (auto v = db.Get("key")) use(*v);                  // optional<string>
//   db.Barrier(PAPYRUSKV_SSTABLE);
//
// Properties:
//   * Runtime and Database release their resources in reverse order of
//     acquisition; both are move-only.
//   * Get returns std::optional — absent/tombstoned keys are nullopt, real
//     errors throw papyrus::kv::Error (code preserved).
//   * All collective-call requirements of the C API carry over unchanged.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "core/papyruskv.h"

namespace papyrus::kv {

// Exception carrying a PAPYRUSKV_* error code.
class Error : public std::runtime_error {
 public:
  Error(int code, const std::string& what)
      : std::runtime_error(what + ": " + ErrorName(code)), code_(code) {}
  int code() const { return code_; }

 private:
  int code_;
};

inline void Check(int rc, const char* what) {
  if (rc != PAPYRUSKV_SUCCESS) throw Error(rc, what);
}

// RAII handle for an asynchronous checkpoint/restart/destroy operation.
class Event {
 public:
  Event() = default;
  Event(papyruskv_db_t db, papyruskv_event_t ev) : db_(db), ev_(ev) {}
  Event(Event&& o) noexcept { *this = std::move(o); }
  Event& operator=(Event&& o) noexcept {
    std::swap(db_, o.db_);
    std::swap(ev_, o.ev_);
    return *this;
  }
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  ~Event() {
    // An unwaited event is drained silently: the operation still ran; the
    // caller just never observed its completion code.
    if (ev_ >= 0) (void)papyruskv_wait(db_, ev_);
  }

  // Blocks until the operation completes; throws on failure.  Idempotent.
  void Wait() {
    if (ev_ < 0) return;
    const int rc = papyruskv_wait(db_, ev_);
    ev_ = -1;
    Check(rc, "papyruskv_wait");
  }

  bool valid() const { return ev_ >= 0; }

 private:
  papyruskv_db_t db_ = -1;
  papyruskv_event_t ev_ = -1;
};

// Per-rank runtime scope: papyruskv_init on construction,
// papyruskv_finalize on destruction.  Collective.
class Runtime {
 public:
  explicit Runtime(const std::string& repository) {
    Check(papyruskv_init(nullptr, nullptr, repository.c_str()),
          "papyruskv_init");
  }
  // Best-effort: a destructor cannot surface the finalize status.
  ~Runtime() { (void)papyruskv_finalize(); }
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;
};

// A database handle; closes on destruction.  Move-only.  Collective
// operations are marked in comments.
class Database {
 public:
  // Collective.  opt may be customized via papyruskv_option_init first.
  static Database Open(const std::string& name,
                       int flags = PAPYRUSKV_CREATE | PAPYRUSKV_RDWR,
                       papyruskv_option_t* opt = nullptr) {
    papyruskv_db_t db = -1;
    Check(papyruskv_open(name.c_str(), flags, opt, &db), "papyruskv_open");
    return Database(db);
  }

  // Collective: reverts `name` from a snapshot at `path`; the returned
  // event completes when the data is restored (and redistributed if the
  // rank count changed).
  static std::pair<Database, Event> Restart(
      const std::string& path, const std::string& name,
      int flags = PAPYRUSKV_RDWR, papyruskv_option_t* opt = nullptr) {
    papyruskv_db_t db = -1;
    papyruskv_event_t ev = -1;
    Check(papyruskv_restart(path.c_str(), name.c_str(), flags, opt, &db, &ev),
          "papyruskv_restart");
    return {Database(db), Event(db, ev)};
  }

  Database(Database&& o) noexcept : db_(o.db_) { o.db_ = -1; }
  Database& operator=(Database&& o) noexcept {
    std::swap(db_, o.db_);
    return *this;
  }
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  ~Database() {
    // Best-effort: a destructor cannot surface the close status.
    if (db_ >= 0) (void)papyruskv_close(db_);
  }

  // Collective.  Explicit close (flushes all MemTables to SSTables).
  void Close() {
    if (db_ >= 0) {
      const int id = db_;
      db_ = -1;
      Check(papyruskv_close(id), "papyruskv_close");
    }
  }

  void Put(std::string_view key, std::string_view value) {
    Check(papyruskv_put(db_, key.data(), key.size(), value.data(),
                        value.size()),
          "papyruskv_put");
  }

  // nullopt when absent or deleted; throws on real errors.
  std::optional<std::string> Get(std::string_view key) {
    char* value = nullptr;
    size_t vallen = 0;
    const int rc = papyruskv_get(db_, key.data(), key.size(), &value,
                                 &vallen);
    if (rc == PAPYRUSKV_NOT_FOUND) return std::nullopt;
    Check(rc, "papyruskv_get");
    std::string out(value, vallen);
    Check(papyruskv_free(db_, value), "papyruskv_free");
    return out;
  }

  // True if the key had a live value.
  bool Contains(std::string_view key) { return Get(key).has_value(); }

  void Delete(std::string_view key) {
    Check(papyruskv_delete(db_, key.data(), key.size()), "papyruskv_delete");
  }

  // Migrates this rank's staged remote writes to their owners.
  void Fence() { Check(papyruskv_fence(db_), "papyruskv_fence"); }

  // Collective (level: PAPYRUSKV_MEMTABLE or PAPYRUSKV_SSTABLE).
  void Barrier(int level = PAPYRUSKV_MEMTABLE) {
    Check(papyruskv_barrier(db_, level), "papyruskv_barrier");
  }

  // Collective.
  void SetConsistency(int mode) {
    Check(papyruskv_consistency(db_, mode), "papyruskv_consistency");
  }
  // Collective.
  void Protect(int prot) {
    Check(papyruskv_protect(db_, prot), "papyruskv_protect");
  }

  // Collective.  Asynchronous snapshot to `path`.
  Event Checkpoint(const std::string& path) {
    papyruskv_event_t ev = -1;
    Check(papyruskv_checkpoint(db_, path.c_str(), &ev),
          "papyruskv_checkpoint");
    return Event(db_, ev);
  }

  // Collective.  Removes the database and its NVM data; invalidates this
  // handle.
  Event Destroy() {
    papyruskv_event_t ev = -1;
    const int id = db_;
    db_ = -1;
    Check(papyruskv_destroy(id, &ev), "papyruskv_destroy");
    return Event(id, ev);
  }

  // Owner rank of `key` under this database's hash.
  int OwnerOf(std::string_view key) const {
    int rank = -1;
    Check(papyruskv_hash(db_, key.data(), key.size(), &rank),
          "papyruskv_hash");
    return rank;
  }

  papyruskv_db_t handle() const { return db_; }

 private:
  explicit Database(papyruskv_db_t db) : db_(db) {}
  papyruskv_db_t db_ = -1;
};

}  // namespace papyrus::kv
