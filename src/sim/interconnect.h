// Simulated interconnection network.
//
// Substitutes for the machines' fabrics (Summitdev: EDR InfiniBand,
// Stampede: Omni-Path, Cori: Aries Dragonfly).  The rank runtime charges
// every message against this model before delivery.
//
// What the model must capture for the paper's results to hold their shape:
//   * a synchronous remote put in sequential mode pays a full round trip
//     per operation, while relaxed-mode migration batches many pairs per
//     message (Fig. 7: Rel ≫ Seq for puts);
//   * all-to-all bursts (papyruskv_barrier) congest: each node's NIC is a
//     serial resource, so a flood of simultaneous messages queues on it
//     (Fig. 7: Rel+B loses its advantage because the big deferred migration
//     happens all at once);
//   * intra-node transfers are much cheaper than inter-node ones (storage
//     groups, Fig. 8).
//
// Like the device model, all delays scale with the global TimeScale(); at
// scale 0 the interconnect is free (functional tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace papyrus::sim {

// Maps ranks onto simulated nodes: ranks [k*ranks_per_node, ...) share node
// k, its storage, and its NIC.
struct Topology {
  int nranks = 1;
  int ranks_per_node = 1;

  int NumNodes() const {
    return (nranks + ranks_per_node - 1) / ranks_per_node;
  }
  int NodeOf(int rank) const { return rank / ranks_per_node; }
  bool SameNode(int a, int b) const { return NodeOf(a) == NodeOf(b); }
};

struct LinkPerf {
  double latency_us = 0;    // one-way propagation latency (delivery delay)
  double bw_mbps = 0;       // per-NIC bandwidth
  double injection_us = 0;  // sender-side per-message injection overhead
};

class Interconnect {
 public:
  // Defaults calibrated to a 2017 EDR-class fabric: ~1.5us one-way latency,
  // ~10 GB/s per NIC, ~0.3us injection; intra-node via shared memory:
  // ~0.3us latency, ~20 GB/s, ~0.1us injection.
  Interconnect(const Topology& topo,
               LinkPerf inter = {1.5, 10000, 0.3},
               LinkPerf intra = {0.3, 20000, 0.1});

  // Charges the transfer of `bytes` from rank src to rank dst.  The SENDER
  // sleeps for its share — injection overhead plus NIC occupancy (queued
  // behind concurrent transfers) — exactly like a fire-and-forget one-sided
  // store: the call returns when the payload has left the NIC.  The
  // returned value is the additional *delivery* delay (propagation
  // latency) the receiver must wait before the message becomes visible, in
  // microseconds; round trips therefore pay 2x latency at the receivers.
  uint64_t Charge(int src, int dst, uint64_t bytes);

  uint64_t messages() const { return messages_.load(); }
  uint64_t bytes() const { return bytes_.load(); }
  void ResetCounters();

 private:
  Topology topo_;
  LinkPerf inter_, intra_;
  // One serial channel per node NIC; inter-node transfers reserve time on
  // both endpoints' NICs, which is what produces all-to-all congestion.
  std::vector<std::atomic<uint64_t>> nic_busy_until_;
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> bytes_{0};
};

}  // namespace papyrus::sim
