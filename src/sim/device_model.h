// Simulated storage device performance model.
//
// The paper evaluates on real NVM hardware: node-local NVMe (Summitdev),
// node-local SATA SSD (Stampede), dedicated burst-buffer SSD nodes (Cori),
// and a Lustre parallel filesystem as the conventional alternative.  None of
// those are available here, so this module substitutes a *performance model
// layered over real POSIX files*: every byte still round-trips through the
// filesystem (the real SSTable format, real checksums), and each operation
// additionally pays a calibrated delay for latency and bandwidth of the
// modelled device class.
//
// What the calibration must preserve (the relations the paper's figures
// depend on, see DESIGN.md §1):
//   * NVM ≫ Lustre for small random reads (Fig. 6 get, Fig. 11): local NVM
//     has microsecond-scale latency, Lustre pays a network + OST round trip.
//   * Lustre and the burst buffer stripe files over many OSTs / BB nodes, so
//     their *aggregate* large-transfer bandwidth rivals or beats a single
//     local SSD (Fig. 6 barrier at large value sizes).
//   * The burst buffer is network-attached (higher latency than local NVM)
//     but striped (high bandwidth).
//
// Concurrency: a Device is shared by all ranks using that storage target.
// Latency is paid in parallel (devices pipeline submissions), while
// bandwidth is a contended resource: each transfer reserves time on one of
// `stripes` channels, so concurrent writers share (stripes × channel_bw).
//
// All delays scale with a global time-scale (PAPYRUS_TIMESCALE); tests run
// with 0 (no delays), benches with a small factor so runs take seconds.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace papyrus::sim {

enum class DeviceClass {
  kDram,         // no injected delay (MemTable operations)
  kNvme,         // Summitdev: node-local 800 GB NVMe
  kSataSsd,      // Stampede: node-local 112 GB SSD
  kBurstBuffer,  // Cori: dedicated burst-buffer nodes, striped
  kLustre,       // parallel filesystem, striped over OSTs
};

const char* DeviceClassName(DeviceClass c);
// Parses "nvme", "ssd", "bb", "lustre", "dram"; returns kDram on mismatch.
DeviceClass ParseDeviceClass(const std::string& name);

struct DevicePerf {
  double read_latency_us = 0;   // fixed per-read submission cost
  double write_latency_us = 0;  // fixed per-write submission cost
  double read_bw_mbps = 0;      // per-channel sequential read bandwidth
  double write_bw_mbps = 0;     // per-channel sequential write bandwidth
  int stripes = 1;              // parallel channels (OSTs / BB nodes)
};

// Calibrated per-class parameters (values ≈ published device specs circa
// 2017; see DESIGN.md).
DevicePerf PerfFor(DeviceClass c);

// Global delay multiplier.  0 disables all injected delays.  Initialized
// from PAPYRUS_TIMESCALE (default 0: tests and functional runs are not
// slowed; benches set an explicit scale).
double TimeScale();
void SetTimeScale(double s);

// One simulated device instance.  All ranks mounting the same storage root
// share one Device, so they contend for its bandwidth.
class Device {
 public:
  explicit Device(DeviceClass cls);

  DeviceClass cls() const { return cls_; }
  const DevicePerf& perf() const { return perf_; }

  // Charges a read of `bytes` and sleeps for the modelled duration.
  void ChargeRead(uint64_t bytes);
  // Charges a write of `bytes` and sleeps for the modelled duration.
  void ChargeWrite(uint64_t bytes);

  // Counters for reporting.
  uint64_t bytes_read() const { return bytes_read_.load(); }
  uint64_t bytes_written() const { return bytes_written_.load(); }
  uint64_t read_ops() const { return read_ops_.load(); }
  uint64_t write_ops() const { return write_ops_.load(); }
  void ResetCounters();

 private:
  void Charge(uint64_t bytes, bool is_write);

  DeviceClass cls_;
  DevicePerf perf_;
  // Per-class metric names, precomputed so the per-I/O registry lookups
  // need no string building (obs/metrics.h; the registry consulted is the
  // *calling rank's* — a shared device reports into each user's metrics).
  std::string m_ops_[2], m_bytes_[2], m_us_[2];  // [0]=read, [1]=write
  // busy-until timestamp (in microseconds of NowMicros) per stripe channel.
  std::vector<std::atomic<uint64_t>> channel_busy_until_;
  std::atomic<uint64_t> next_channel_{0};
  std::atomic<uint64_t> bytes_read_{0}, bytes_written_{0};
  std::atomic<uint64_t> read_ops_{0}, write_ops_{0};
};

// Process-wide registry mapping a storage root directory to its shared
// Device.  Two ranks opening files under the same root hit the same Device
// and therefore contend, exactly like two ranks sharing a node-local SSD.
class DeviceRegistry {
 public:
  static DeviceRegistry& Instance();

  // Returns the device for `root`, creating it with class `cls` on first
  // use.  A later call with a different class keeps the original (first
  // mount wins) — mirrors a mounted filesystem.
  std::shared_ptr<Device> GetOrCreate(const std::string& root,
                                      DeviceClass cls);

  // Device for `root` if registered, else a DRAM (no-delay) device.
  std::shared_ptr<Device> Lookup(const std::string& root);

  void Clear();

 private:
  DeviceRegistry();
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace papyrus::sim
