#include "sim/storage.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string_view>

#include "fault/failpoint.h"

namespace papyrus::sim {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status(PAPYRUSKV_IO_ERROR,
                what + " " + path + ": " + strerror(errno));
}

// SSTable data/index/bloom files (including .tmp staging names) are the
// corruption targets for the sstable.* failpoints.
bool IsSstablePath(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string_view base =
      slash == std::string::npos
          ? std::string_view(path)
          : std::string_view(path).substr(slash + 1);
  return base.find("sst_") != std::string_view::npos;
}

}  // namespace

WritableFile::~WritableFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status WritableFile::Append(const Slice& data) {
  Slice out = data;
  std::string mangled;
  if (fault::Enabled()) {
    static fault::Point& enospc =
        fault::Registry::Instance().GetPoint("storage.write.enospc");
    if (enospc.Fire()) {
      return Status::IOError("injected ENOSPC writing " + path_);
    }
    if (!data.empty() && IsSstablePath(path_)) {
      static fault::Point& torn =
          fault::Registry::Instance().GetPoint("sstable.write.torn");
      static fault::Point& flip =
          fault::Registry::Instance().GetPoint("sstable.write.bitflip");
      if (torn.Fire()) {
        // Torn write: the tail of this write lands as zeros.  Length and
        // file offsets are preserved, so nothing but checksum verification
        // can detect it — the silent-corruption model for NVM power loss.
        mangled.assign(data.data(), data.size());
        const size_t from = static_cast<size_t>(torn.Rand(data.size()));
        std::fill(mangled.begin() + static_cast<ptrdiff_t>(from),
                  mangled.end(), '\0');
        out = Slice(mangled);
      } else if (flip.Fire()) {
        mangled.assign(data.data(), data.size());
        const uint64_t bit = flip.Rand(mangled.size() * 8);
        mangled[bit / 8] ^= static_cast<char>(1u << (bit % 8));
        out = Slice(mangled);
      }
    }
  }
  const char* p = out.data();
  size_t left = out.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path_);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  offset_ += out.size();
  dev_->ChargeWrite(out.size());
  return Status::OK();
}

Status WritableFile::Sync() {
  // Durability barrier: the device pays one additional write-latency hit.
  if (::fdatasync(fd_) != 0 && errno != EINVAL && errno != ENOTSUP) {
    return Errno("fdatasync", "");
  }
  dev_->ChargeWrite(0);
  return Status::OK();
}

Status WritableFile::Close() {
  if (fd_ >= 0) {
    if (::close(fd_) != 0) {
      fd_ = -1;
      return Errno("close", "");
    }
    fd_ = -1;
  }
  return Status::OK();
}

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status RandomAccessFile::Read(uint64_t offset, size_t n, char* scratch,
                              Slice* out) const {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::pread(fd_, scratch + got, n - got,
                        static_cast<off_t>(offset + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("pread", "");
    }
    if (r == 0) break;  // EOF
    got += static_cast<size_t>(r);
  }
  *out = Slice(scratch, got);
  dev_->ChargeRead(got);
  return Status::OK();
}

Status Storage::NewWritableFile(const std::string& path,
                                std::unique_ptr<WritableFile>* out) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open(w)", path);
  out->reset(
      new WritableFile(fd, path, DeviceRegistry::Instance().Lookup(path)));
  return Status::OK();
}

Status Storage::NewRandomAccessFile(const std::string& path,
                                    std::unique_ptr<RandomAccessFile>* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open(r)", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errno("fstat", path);
  }
  out->reset(new RandomAccessFile(fd, static_cast<uint64_t>(st.st_size),
                                  DeviceRegistry::Instance().Lookup(path)));
  return Status::OK();
}

Status Storage::ReadFileToString(const std::string& path, std::string* out) {
  std::unique_ptr<RandomAccessFile> f;
  Status s = NewRandomAccessFile(path, &f);
  if (!s.ok()) return s;
  out->resize(f->size());
  Slice result;
  s = f->Read(0, f->size(), out->data(), &result);
  if (!s.ok()) return s;
  if (result.size() != f->size()) return Status::IOError("short read " + path);
  return Status::OK();
}

Status Storage::WriteStringToFile(const std::string& path, const Slice& data) {
  std::unique_ptr<WritableFile> f;
  Status s = NewWritableFile(path, &f);
  if (!s.ok()) return s;
  s = f->Append(data);
  if (!s.ok()) return s;
  return f->Close();
}

bool Storage::FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

Status Storage::GetFileSize(const std::string& path, uint64_t* size) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
  *size = static_cast<uint64_t>(st.st_size);
  return Status::OK();
}

Status Storage::ListDir(const std::string& dir, std::vector<std::string>* out) {
  out->clear();
  DIR* d = ::opendir(dir.c_str());
  if (!d) return Errno("opendir", dir);
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    out->push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(out->begin(), out->end());
  return Status::OK();
}

Status Storage::RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
  return Status::OK();
}

Status Storage::RemoveDirRecursive(const std::string& dir) {
  std::vector<std::string> entries;
  if (!FileExists(dir)) return Status::OK();
  Status s = ListDir(dir, &entries);
  if (!s.ok()) return s;
  for (const auto& name : entries) {
    std::string path = dir + "/" + name;
    struct stat st;
    if (::lstat(path.c_str(), &st) != 0) return Errno("lstat", path);
    if (S_ISDIR(st.st_mode)) {
      s = RemoveDirRecursive(path);
      if (!s.ok()) return s;
    } else {
      if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
    }
  }
  if (::rmdir(dir.c_str()) != 0) return Errno("rmdir", dir);
  return Status::OK();
}

Status Storage::CreateDirs(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArg("empty dir");
  std::string partial;
  size_t i = 0;
  if (dir[0] == '/') partial = "/";
  while (i < dir.size()) {
    size_t j = dir.find('/', i);
    if (j == std::string::npos) j = dir.size();
    if (j > i) {
      if (!partial.empty() && partial.back() != '/') partial += '/';
      partial += dir.substr(i, j - i);
      if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return Errno("mkdir", partial);
      }
    }
    i = j + 1;
  }
  return Status::OK();
}

Status Storage::RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
  return Status::OK();
}

Status Storage::CopyFile(const std::string& from, const std::string& to) {
  std::unique_ptr<RandomAccessFile> src;
  Status s = NewRandomAccessFile(from, &src);
  if (!s.ok()) return s;
  std::unique_ptr<WritableFile> dst;
  s = NewWritableFile(to, &dst);
  if (!s.ok()) return s;
  constexpr size_t kChunk = 1 << 20;
  std::string buf(kChunk, '\0');
  uint64_t off = 0;
  while (off < src->size()) {
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(kChunk, src->size() - off));
    Slice got;
    s = src->Read(off, n, buf.data(), &got);
    if (!s.ok()) return s;
    if (got.size() != n) return Status::IOError("short read copying " + from);
    s = dst->Append(got);
    if (!s.ok()) return s;
    off += n;
  }
  return dst->Close();
}

}  // namespace papyrus::sim
