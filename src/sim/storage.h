// POSIX file access with simulated NVM device timing.
//
// The paper (§2.3): "The PapyrusKV runtime accesses the NVM storages through
// the standard POSIX file system interface."  This layer is that interface:
// real files via open/pread/write — plus a charge to the DeviceRegistry
// entry that covers the file's path, which injects the modelled latency and
// bandwidth of the underlying device class (see device_model.h).
//
// File handles capture their device at open time, so per-I/O cost is one
// registry lookup at open, not per call.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "sim/device_model.h"

namespace papyrus::sim {

// Append-only file (SSTable writers, checkpoint images).
class WritableFile {
 public:
  ~WritableFile();
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  // Writes data, first applying any armed storage failpoints (injected
  // ENOSPC; torn-write/bit-flip corruption on SSTable files) — see
  // src/fault/failpoint.h.
  Status Append(const Slice& data);
  // Flushes to the OS; charges the device's write latency once.
  Status Sync();
  Status Close();
  uint64_t bytes_written() const { return offset_; }

 private:
  friend class Storage;
  WritableFile(int fd, std::string path, std::shared_ptr<Device> dev)
      : fd_(fd), path_(std::move(path)), dev_(std::move(dev)) {}
  int fd_;
  std::string path_;
  uint64_t offset_ = 0;
  std::shared_ptr<Device> dev_;
};

// Positional reads (SSTable random access — the NVM fast path).
class RandomAccessFile {
 public:
  ~RandomAccessFile();
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  // Reads up to n bytes at offset into scratch; *out views scratch.
  Status Read(uint64_t offset, size_t n, char* scratch, Slice* out) const;
  uint64_t size() const { return size_; }

 private:
  friend class Storage;
  RandomAccessFile(int fd, uint64_t size, std::shared_ptr<Device> dev)
      : fd_(fd), size_(size), dev_(std::move(dev)) {}
  int fd_;
  uint64_t size_;
  std::shared_ptr<Device> dev_;
};

// Static facade over the filesystem.  All paths are plain POSIX paths; the
// device model is resolved per path prefix via DeviceRegistry.
class Storage {
 public:
  static Status NewWritableFile(const std::string& path,
                                std::unique_ptr<WritableFile>* out);
  static Status NewRandomAccessFile(const std::string& path,
                                    std::unique_ptr<RandomAccessFile>* out);

  // Whole-file convenience wrappers (bloom filters, SSIndex, manifests).
  static Status ReadFileToString(const std::string& path, std::string* out);
  static Status WriteStringToFile(const std::string& path, const Slice& data);

  static bool FileExists(const std::string& path);
  static Status GetFileSize(const std::string& path, uint64_t* size);
  // Lists entry names (not full paths) in dir, sorted; skips "." and "..".
  static Status ListDir(const std::string& dir, std::vector<std::string>* out);
  static Status RemoveFile(const std::string& path);
  static Status RemoveDirRecursive(const std::string& dir);
  static Status CreateDirs(const std::string& dir);  // mkdir -p
  static Status RenameFile(const std::string& from, const std::string& to);
  // Byte copy, charging reads on src's device and writes on dst's (the
  // checkpoint NVM→Lustre transfer path).
  static Status CopyFile(const std::string& from, const std::string& to);
};

}  // namespace papyrus::sim
