#include "sim/interconnect.h"

#include <algorithm>

#include "common/timer.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "sim/device_model.h"

namespace papyrus::sim {

Interconnect::Interconnect(const Topology& topo, LinkPerf inter,
                           LinkPerf intra)
    : topo_(topo),
      inter_(inter),
      intra_(intra),
      nic_busy_until_(static_cast<size_t>(std::max(1, topo.NumNodes()))) {
  for (auto& n : nic_busy_until_) n.store(0);
}

namespace {

// Reserves xfer_us on the serial channel `busy` and returns the completion
// timestamp.
uint64_t Reserve(std::atomic<uint64_t>& busy, uint64_t now, uint64_t xfer_us) {
  uint64_t prev = busy.load(std::memory_order_relaxed);
  uint64_t start, done;
  do {
    start = std::max(now, prev);
    done = start + xfer_us;
  } while (!busy.compare_exchange_weak(prev, done,
                                       std::memory_order_relaxed));
  return done;
}

}  // namespace

uint64_t Interconnect::Charge(int src, int dst, uint64_t bytes) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  // Charge runs on the sending rank's thread, so these land in the sender's
  // per-rank registry.
  {
    obs::Registry& reg = obs::Current();
    reg.GetCounter("sim.net.messages").Inc();
    reg.GetCounter("sim.net.bytes").Inc(bytes);
  }

  // net.msg.delay adds propagation delay even at TimeScale 0, so delay
  // faults work in the tests' zero-latency configuration.
  uint64_t fault_delay_us = 0;
  if (fault::Enabled() && src != dst) {
    static fault::Point& delay =
        fault::Registry::Instance().GetPoint("net.msg.delay");
    if (delay.Fire()) fault_delay_us = fault::DelayMicros();
  }

  const double scale = TimeScale();
  if (scale <= 0 || src == dst) return fault_delay_us;

  const bool same_node = topo_.SameNode(src, dst);
  const LinkPerf& link = same_node ? intra_ : inter_;
  const uint64_t lat_us = static_cast<uint64_t>(link.latency_us * scale);
  const uint64_t inj_us = static_cast<uint64_t>(link.injection_us * scale);
  const uint64_t xfer_us = static_cast<uint64_t>(
      link.bw_mbps > 0 ? (static_cast<double>(bytes) / link.bw_mbps) * scale
                       : 0);

  uint64_t send_done;
  const uint64_t now = NowMicros();
  if (same_node) {
    // Shared-memory copy: no NIC involvement; the sender performs the copy.
    send_done = now + inj_us + xfer_us;
  } else {
    // The payload must pass through both endpoints' NICs; congestion on
    // either serializes.  The sender blocks until its payload has cleared
    // both (occupancy), but NOT for the propagation latency.
    const size_t sn = static_cast<size_t>(topo_.NodeOf(src));
    const size_t dn = static_cast<size_t>(topo_.NodeOf(dst));
    const uint64_t d1 = Reserve(nic_busy_until_[sn], now, xfer_us);
    const uint64_t d2 = Reserve(nic_busy_until_[dn], now, xfer_us);
    send_done = std::max(d1, d2) + inj_us;
  }
  if (send_done > now) PreciseSleepMicros(send_done - now);
  return lat_us + fault_delay_us;
}

void Interconnect::ResetCounters() {
  messages_ = 0;
  bytes_ = 0;
}

}  // namespace papyrus::sim
