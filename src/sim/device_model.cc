#include "sim/device_model.h"

#include <algorithm>
#include <map>

#include "common/env.h"
#include "common/mutex.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace papyrus::sim {

const char* DeviceClassName(DeviceClass c) {
  switch (c) {
    case DeviceClass::kDram: return "dram";
    case DeviceClass::kNvme: return "nvme";
    case DeviceClass::kSataSsd: return "ssd";
    case DeviceClass::kBurstBuffer: return "bb";
    case DeviceClass::kLustre: return "lustre";
  }
  return "dram";
}

DeviceClass ParseDeviceClass(const std::string& name) {
  if (name == "nvme") return DeviceClass::kNvme;
  if (name == "ssd") return DeviceClass::kSataSsd;
  if (name == "bb" || name == "burstbuffer") return DeviceClass::kBurstBuffer;
  if (name == "lustre") return DeviceClass::kLustre;
  return DeviceClass::kDram;
}

DevicePerf PerfFor(DeviceClass c) {
  // Latencies in microseconds, bandwidths in MB/s per channel.  Calibrated
  // to 2017-era devices: enterprise NVMe (~10us read latency, 2+ GB/s),
  // SATA SSD (~80us, ~500 MB/s), Cray DataWarp burst buffer (network hop +
  // striping over BB nodes), Lustre (client→OSS round trip ~ms, striped
  // OSTs giving high aggregate bandwidth but poor small random reads).
  switch (c) {
    case DeviceClass::kDram:
      return DevicePerf{0, 0, 0, 0, 1};
    case DeviceClass::kNvme:
      return DevicePerf{10, 15, 2400, 1200, 1};
    case DeviceClass::kSataSsd:
      return DevicePerf{80, 90, 500, 400, 1};
    case DeviceClass::kBurstBuffer:
      return DevicePerf{250, 250, 1400, 1400, 8};
    case DeviceClass::kLustre:
      return DevicePerf{1500, 900, 550, 550, 8};
  }
  return DevicePerf{};
}

namespace {
std::atomic<double> g_time_scale{-1.0};
}

double TimeScale() {
  double s = g_time_scale.load(std::memory_order_relaxed);
  if (s < 0) {
    auto env = EnvString("PAPYRUS_TIMESCALE");
    s = env ? strtod(env->c_str(), nullptr) : 0.0;
    g_time_scale.store(s, std::memory_order_relaxed);
  }
  return s;
}

void SetTimeScale(double s) {
  g_time_scale.store(s, std::memory_order_relaxed);
}

Device::Device(DeviceClass cls)
    : cls_(cls),
      perf_(PerfFor(cls)),
      channel_busy_until_(static_cast<size_t>(std::max(1, perf_.stripes))) {
  for (auto& c : channel_busy_until_) c.store(0);
  const std::string prefix = std::string("sim.dev.") + DeviceClassName(cls);
  m_ops_[0] = prefix + ".read_ops";
  m_ops_[1] = prefix + ".write_ops";
  m_bytes_[0] = prefix + ".bytes_read";
  m_bytes_[1] = prefix + ".bytes_written";
  m_us_[0] = prefix + ".read_us";
  m_us_[1] = prefix + ".write_us";
}

void Device::ChargeRead(uint64_t bytes) {
  read_ops_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  obs::Registry& reg = obs::Current();
  reg.GetCounter(m_ops_[0]).Inc();
  reg.GetCounter(m_bytes_[0]).Inc(bytes);
  Charge(bytes, /*is_write=*/false);
}

void Device::ChargeWrite(uint64_t bytes) {
  write_ops_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  obs::Registry& reg = obs::Current();
  reg.GetCounter(m_ops_[1]).Inc();
  reg.GetCounter(m_bytes_[1]).Inc(bytes);
  Charge(bytes, /*is_write=*/true);
}

void Device::Charge(uint64_t bytes, bool is_write) {
  const double scale = TimeScale();
  if (scale <= 0 || cls_ == DeviceClass::kDram) return;

  const double lat_us =
      (is_write ? perf_.write_latency_us : perf_.read_latency_us) * scale;
  const double bw = is_write ? perf_.write_bw_mbps : perf_.read_bw_mbps;
  // Transfer time on one channel, scaled.  bw is MB/s => bytes/us = bw.
  const double xfer_us = bw > 0 ? (static_cast<double>(bytes) / bw) * scale : 0;

  // Reserve time on a channel: transfers on the same channel serialize,
  // channels run in parallel (striping).
  const size_t ch =
      next_channel_.fetch_add(1, std::memory_order_relaxed) %
      channel_busy_until_.size();
  const uint64_t now = NowMicros();
  uint64_t prev = channel_busy_until_[ch].load(std::memory_order_relaxed);
  uint64_t start, done;
  do {
    start = std::max(now, prev);
    done = start + static_cast<uint64_t>(xfer_us);
  } while (!channel_busy_until_[ch].compare_exchange_weak(
      prev, done, std::memory_order_relaxed));

  // The caller experiences submission latency plus its queued transfer.
  const uint64_t completion =
      std::max(done, now + static_cast<uint64_t>(lat_us));
  obs::Current().GetHistogram(m_us_[is_write ? 1 : 0])
      .Record(completion > now ? completion - now : 0);
  if (completion > now) PreciseSleepMicros(completion - now);
}

void Device::ResetCounters() {
  bytes_read_ = 0;
  bytes_written_ = 0;
  read_ops_ = 0;
  write_ops_ = 0;
}

struct DeviceRegistry::Impl {
  // Leaf lock: guards the mount→device map; Device counters are atomics.
  Mutex mu{"device_registry_mu"};
  std::map<std::string, std::shared_ptr<Device>> devices GUARDED_BY(mu);
};

DeviceRegistry::DeviceRegistry() : impl_(std::make_shared<Impl>()) {}

DeviceRegistry& DeviceRegistry::Instance() {
  static DeviceRegistry reg;
  return reg;
}

std::shared_ptr<Device> DeviceRegistry::GetOrCreate(const std::string& root,
                                                    DeviceClass cls) {
  MutexLock lock(&impl_->mu);
  auto it = impl_->devices.find(root);
  if (it != impl_->devices.end()) return it->second;
  auto dev = std::make_shared<Device>(cls);
  impl_->devices.emplace(root, dev);
  return dev;
}

std::shared_ptr<Device> DeviceRegistry::Lookup(const std::string& root) {
  MutexLock lock(&impl_->mu);
  // Longest-prefix match so a file path under a mounted root finds its
  // device.
  std::shared_ptr<Device> best;
  size_t best_len = 0;
  for (const auto& [mount, dev] : impl_->devices) {
    if (root.rfind(mount, 0) == 0 && mount.size() >= best_len) {
      best = dev;
      best_len = mount.size();
    }
  }
  if (best) return best;
  static std::shared_ptr<Device> dram =
      std::make_shared<Device>(DeviceClass::kDram);
  return dram;
}

void DeviceRegistry::Clear() {
  MutexLock lock(&impl_->mu);
  impl_->devices.clear();
}

}  // namespace papyrus::sim
