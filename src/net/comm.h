// In-process multi-rank message passing — the substitution for MPI.
//
// The paper's runtime is "a user-level library using MPI" needing
// MPI_THREAD_MULTIPLE and *independent communicators* for its internal
// dispatcher/handler traffic (§2.4: "the runtime creates new independent MPI
// communicators and uses them in the message dispatcher and message
// handler").  This module reproduces exactly the slice of MPI semantics that
// PapyrusKV requires:
//
//   * N ranks = N threads (launched by net/runtime.h), each with a mailbox
//     per communicator;
//   * tagged point-to-point Send/Recv with MPI matching rules: receive by
//     (source | ANY_SOURCE, tag | ANY_TAG), non-overtaking per (src, tag);
//   * Dup() to derive independent communicators — messages on one can never
//     match receives on another (the interoperability guarantee that lets
//     the KVS runtime share the network with the application);
//   * the collectives the KVS needs: Barrier, Bcast, Allgather, Allreduce.
//
// Every Send is charged against the simulated interconnect (sim/), so
// message timing reflects the modelled fabric.  All operations are
// thread-safe: a rank's main thread, dispatcher, and handler may use their
// communicators concurrently (MPI_THREAD_MULTIPLE).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "sim/interconnect.h"

namespace papyrus::net {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int src = -1;
  int tag = 0;
  std::string payload;
  // Simulated propagation: the message may be matched by receives only
  // once NowMicros() >= visible_at_us (0 = immediately).  The sender's own
  // cost (injection + NIC occupancy) was already paid in Send.
  uint64_t visible_at_us = 0;
  // When the message landed in the destination mailbox (stamped by
  // Deliver).  Receivers use max(delivered_at_us, visible_at_us) as the
  // moment the message became serviceable, e.g. to trace handler queue
  // wait.
  uint64_t delivered_at_us = 0;
};

// One rank's receive queue on one communicator.  FIFO per (src, tag);
// receives take the earliest matching *visible* message.
class Mailbox {
 public:
  void Deliver(Message msg);
  // Blocks until a message matching (src, tag) is available and visible.
  Message Recv(int src, int tag);
  // Non-blocking variant; returns false if nothing matches (a matching
  // but not-yet-visible message counts as absent).
  bool TryRecv(int src, int tag, Message* out);
  // Deadline variant: waits at most timeout_us for a visible match; false on
  // timeout.  The recovery primitive for lost messages — see DESIGN.md §8.
  bool RecvFor(int src, int tag, uint64_t timeout_us, Message* out);

 private:
  bool Matches(const Message& m, int src, int tag) const {
    return (src == kAnySource || m.src == src) &&
           (tag == kAnyTag || m.tag == tag);
  }
  // Leaf lock: guards one mailbox's queue; Deliver/Recv never take another
  // lock while holding it.
  Mutex mu_{"mailbox_mu"};
  CondVar cv_;
  std::deque<Message> queue_ GUARDED_BY(mu_);
};

class World;

// A per-rank handle onto one communicator.  Cheap to copy; safe to use from
// any thread belonging to the owning rank.
class Communicator {
 public:
  Communicator() = default;

  int rank() const { return rank_; }
  int size() const;

  // Sends payload to dst with tag (tag must be >= 0; negative tags are
  // reserved for collectives).  Charges the interconnect model, then
  // delivers — the emulated eager protocol, like MPI_Send of a buffered
  // message.
  void Send(int dst, int tag, const Slice& payload) const;

  // Blocking receive with MPI matching rules.  Prefer RecvFor on any path
  // where the expected message can be lost (the lint gate rejects new naked
  // Recv call sites outside this module).
  Message Recv(int src = kAnySource, int tag = kAnyTag) const;
  // Non-blocking probe+receive.
  bool TryRecv(int src, int tag, Message* out) const;
  // Deadline receive; false on timeout.
  bool RecvFor(int src, int tag, uint64_t timeout_us, Message* out) const;

  // Collective: returns a new communicator with the same group but a
  // disjoint message-matching space.  Must be called by all ranks in the
  // same order (standard MPI collective contract).
  Communicator Dup() const;

  // Collectives (all ranks must call; implemented over internal tags so
  // they never interfere with user point-to-point traffic).
  void Barrier() const;
  // Barrier with a deadline covering the whole collective; false on timeout
  // (a peer failed to arrive — e.g. it crashed or wedged).  All ranks must
  // still call it; a timeout on one rank implies the barrier cannot
  // complete anywhere.
  bool BarrierFor(uint64_t timeout_us) const;
  void Bcast(std::string* data, int root) const;
  // Gathers each rank's contribution into out (indexed by rank) on all
  // ranks.
  void Allgather(const Slice& mine, std::vector<std::string>* out) const;
  uint64_t AllreduceSum(uint64_t v) const;
  uint64_t AllreduceMax(uint64_t v) const;

  World* world() const { return world_; }
  bool valid() const { return world_ != nullptr; }

 private:
  friend class World;
  Communicator(World* world, uint64_t comm_id, int rank)
      : world_(world), comm_id_(comm_id), rank_(rank) {}

  void SendInternal(int dst, int tag, const Slice& payload) const;
  Message RecvInternal(int src, int tag) const;
  bool RecvInternalFor(int src, int tag, uint64_t timeout_us,
                       Message* out) const;

  World* world_ = nullptr;
  uint64_t comm_id_ = 0;
  int rank_ = 0;
  // Per-rank count of Dup() calls on this communicator: SPMD programs call
  // collectives in the same order everywhere, so this sequence number is
  // identical across ranks and names the derived communicator uniquely.
  mutable std::shared_ptr<uint64_t> dup_seq_ = std::make_shared<uint64_t>(0);
};

// The shared state of one emulated job: topology, interconnect model, and
// mailboxes for every (communicator, rank).
class World {
 public:
  explicit World(const sim::Topology& topo);

  const sim::Topology& topology() const { return topo_; }
  sim::Interconnect& interconnect() { return net_; }
  int size() const { return topo_.nranks; }

  // The primordial communicator (MPI_COMM_WORLD analogue) for `rank`.
  Communicator world_comm(int rank);

 private:
  friend class Communicator;

  // Mailbox for (comm, rank), channel 0 = user, 1 = collectives.
  Mailbox& mailbox(uint64_t comm_id, int rank, int channel);
  // Registers/looks up the communicator derived from (parent, seq).
  uint64_t DerivedComm(uint64_t parent, uint64_t seq);

  sim::Topology topo_;
  sim::Interconnect net_;

  // Guards the registries below; the Mailbox objects themselves are stable
  // once created (unique_ptr), so a returned reference outlives the lock.
  Mutex mu_{"world_mu"};
  // comm_id -> per-rank mailboxes (two channels each).
  std::map<uint64_t, std::vector<std::unique_ptr<Mailbox>>> mailboxes_
      GUARDED_BY(mu_);
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> derived_ GUARDED_BY(mu_);
  uint64_t next_comm_id_ GUARDED_BY(mu_) = 1;
};

}  // namespace papyrus::net
