#include "net/comm.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"
#include "common/timer.h"
#include "fault/failpoint.h"

namespace papyrus::net {

namespace {
// Internal collective tags (channel 1 only, so they can never collide with
// user traffic even though values overlap).
constexpr int kTagBarrierIn = 1;
constexpr int kTagBarrierOut = 2;
constexpr int kTagGather = 3;
constexpr int kTagBcast = 4;
}  // namespace

void Mailbox::Deliver(Message msg) {
  msg.delivered_at_us = NowMicros();
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.NotifyAll();
}

Message Mailbox::Recv(int src, int tag) {
  MutexLock lock(&mu_);
  for (;;) {
    const uint64_t now = NowMicros();
    uint64_t next_visible = UINT64_MAX;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (!Matches(*it, src, tag)) continue;
      if (it->visible_at_us > now) {
        // In flight (simulated propagation): wait for it below unless a
        // later, already-visible match exists — non-overtaking per
        // (src, tag) means no later match from the same source can be
        // visible earlier, so stopping at the first match is correct.
        next_visible = std::min(next_visible, it->visible_at_us);
        continue;
      }
      Message out = std::move(*it);
      queue_.erase(it);
      return out;
    }
    if (next_visible != UINT64_MAX) {
      cv_.WaitForMicros(&mu_, next_visible - now);
    } else {
      cv_.Wait(&mu_);
    }
  }
}

bool Mailbox::RecvFor(int src, int tag, uint64_t timeout_us, Message* out) {
  const uint64_t deadline = NowMicros() + timeout_us;
  MutexLock lock(&mu_);
  for (;;) {
    const uint64_t now = NowMicros();
    uint64_t next_visible = UINT64_MAX;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (!Matches(*it, src, tag)) continue;
      if (it->visible_at_us > now) {
        next_visible = std::min(next_visible, it->visible_at_us);
        continue;
      }
      *out = std::move(*it);
      queue_.erase(it);
      return true;
    }
    if (now >= deadline) return false;
    // Wake at whichever comes first: an in-flight match turning visible or
    // the deadline.  A Deliver also notifies.
    cv_.WaitForMicros(&mu_, std::min(next_visible, deadline) - now);
  }
}

bool Mailbox::TryRecv(int src, int tag, Message* out) {
  MutexLock lock(&mu_);
  const uint64_t now = NowMicros();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (Matches(*it, src, tag) && it->visible_at_us <= now) {
      *out = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

World::World(const sim::Topology& topo) : topo_(topo), net_(topo) {}

Communicator World::world_comm(int rank) {
  return Communicator(this, /*comm_id=*/0, rank);
}

Mailbox& World::mailbox(uint64_t comm_id, int rank, int channel) {
  MutexLock lock(&mu_);
  auto& boxes = mailboxes_[comm_id];
  if (boxes.empty()) {
    boxes.resize(static_cast<size_t>(topo_.nranks) * 2);
    for (auto& b : boxes) b = std::make_unique<Mailbox>();
  }
  return *boxes[static_cast<size_t>(rank) * 2 + static_cast<size_t>(channel)];
}

uint64_t World::DerivedComm(uint64_t parent, uint64_t seq) {
  MutexLock lock(&mu_);
  auto key = std::make_pair(parent, seq);
  auto it = derived_.find(key);
  if (it != derived_.end()) return it->second;
  uint64_t id = next_comm_id_++;
  derived_.emplace(key, id);
  return id;
}

int Communicator::size() const { return world_->size(); }

void Communicator::Send(int dst, int tag, const Slice& payload) const {
  assert(tag >= 0 && "negative tags are reserved");
  assert(dst >= 0 && dst < world_->size());
  const uint64_t delay =
      world_->interconnect().Charge(rank_, dst, payload.size());
  Message msg{rank_, tag, payload.ToString(), delay ? NowMicros() + delay : 0};
  // Drop/dup faults model the fabric, so they apply only to user
  // point-to-point traffic that actually crosses it: loopback sends never
  // leave the rank, and collective traffic (SendInternal, channel 1) is
  // exempt so a dropped token cannot wedge a barrier — the recovery story
  // for collectives is the deadline in BarrierFor, not retransmission.
  if (fault::Enabled() && dst != rank_) {
    static fault::Point& drop =
        fault::Registry::Instance().GetPoint("net.msg.drop");
    static fault::Point& dup =
        fault::Registry::Instance().GetPoint("net.msg.dup");
    if (drop.Fire()) return;  // charged to the interconnect, never delivered
    if (dup.Fire()) world_->mailbox(comm_id_, dst, /*channel=*/0).Deliver(msg);
  }
  world_->mailbox(comm_id_, dst, /*channel=*/0).Deliver(std::move(msg));
}

Message Communicator::Recv(int src, int tag) const {
  return world_->mailbox(comm_id_, rank_, 0).Recv(src, tag);
}

bool Communicator::TryRecv(int src, int tag, Message* out) const {
  return world_->mailbox(comm_id_, rank_, 0).TryRecv(src, tag, out);
}

bool Communicator::RecvFor(int src, int tag, uint64_t timeout_us,
                           Message* out) const {
  return world_->mailbox(comm_id_, rank_, 0).RecvFor(src, tag, timeout_us,
                                                     out);
}

void Communicator::SendInternal(int dst, int tag, const Slice& payload) const {
  const uint64_t delay =
      world_->interconnect().Charge(rank_, dst, payload.size());
  world_->mailbox(comm_id_, dst, /*channel=*/1)
      .Deliver(Message{rank_, tag, payload.ToString(),
                       delay ? NowMicros() + delay : 0});
}

Message Communicator::RecvInternal(int src, int tag) const {
  return world_->mailbox(comm_id_, rank_, 1).Recv(src, tag);
}

bool Communicator::RecvInternalFor(int src, int tag, uint64_t timeout_us,
                                   Message* out) const {
  return world_->mailbox(comm_id_, rank_, 1).RecvFor(src, tag, timeout_us,
                                                     out);
}

Communicator Communicator::Dup() const {
  const uint64_t seq = (*dup_seq_)++;
  const uint64_t id = world_->DerivedComm(comm_id_, seq);
  return Communicator(world_, id, rank_);
}

void Communicator::Barrier() const {
  const int n = size();
  if (n == 1) return;
  if (rank_ == 0) {
    for (int r = 1; r < n; ++r) RecvInternal(kAnySource, kTagBarrierIn);
    for (int r = 1; r < n; ++r) SendInternal(r, kTagBarrierOut, Slice());
  } else {
    SendInternal(0, kTagBarrierIn, Slice());
    RecvInternal(0, kTagBarrierOut);
  }
}

bool Communicator::BarrierFor(uint64_t timeout_us) const {
  const int n = size();
  if (n == 1) return true;
  const uint64_t deadline = NowMicros() + timeout_us;
  auto remaining = [deadline]() -> uint64_t {
    const uint64_t now = NowMicros();
    return deadline > now ? deadline - now : 0;
  };
  Message m;
  if (rank_ == 0) {
    for (int r = 1; r < n; ++r) {
      if (!RecvInternalFor(kAnySource, kTagBarrierIn, remaining(), &m)) {
        return false;
      }
    }
    for (int r = 1; r < n; ++r) SendInternal(r, kTagBarrierOut, Slice());
  } else {
    SendInternal(0, kTagBarrierIn, Slice());
    if (!RecvInternalFor(0, kTagBarrierOut, remaining(), &m)) return false;
  }
  return true;
}

void Communicator::Allgather(const Slice& mine,
                             std::vector<std::string>* out) const {
  const int n = size();
  out->assign(static_cast<size_t>(n), {});
  if (n == 1) {
    (*out)[0] = mine.ToString();
    return;
  }
  if (rank_ == 0) {
    (*out)[0] = mine.ToString();
    for (int i = 1; i < n; ++i) {
      Message m = RecvInternal(kAnySource, kTagGather);
      (*out)[static_cast<size_t>(m.src)] = std::move(m.payload);
    }
    // Serialize all contributions and broadcast.
    std::string packed;
    for (const auto& s : *out) PutLengthPrefixed(&packed, s);
    for (int r = 1; r < n; ++r) SendInternal(r, kTagBcast, packed);
  } else {
    SendInternal(0, kTagGather, mine);
    Message m = RecvInternal(0, kTagBcast);
    Slice in(m.payload);
    for (int i = 0; i < n; ++i) {
      Slice part;
      bool ok = GetLengthPrefixed(&in, &part);
      assert(ok);
      (void)ok;  // root encoded exactly n parts into the bcast payload
      (*out)[static_cast<size_t>(i)] = part.ToString();
    }
  }
}

void Communicator::Bcast(std::string* data, int root) const {
  const int n = size();
  if (n == 1) return;
  if (rank_ == root) {
    for (int r = 0; r < n; ++r) {
      if (r != root) SendInternal(r, kTagBcast, *data);
    }
  } else {
    Message m = RecvInternal(root, kTagBcast);
    *data = std::move(m.payload);
  }
}

uint64_t Communicator::AllreduceSum(uint64_t v) const {
  char buf[8];
  EncodeFixed64(buf, v);
  std::vector<std::string> all;
  Allgather(Slice(buf, 8), &all);
  uint64_t sum = 0;
  for (const auto& s : all) sum += DecodeFixed64(s.data());
  return sum;
}

uint64_t Communicator::AllreduceMax(uint64_t v) const {
  char buf[8];
  EncodeFixed64(buf, v);
  std::vector<std::string> all;
  Allgather(Slice(buf, 8), &all);
  uint64_t mx = 0;
  for (const auto& s : all) {
    uint64_t x = DecodeFixed64(s.data());
    if (x > mx) mx = x;
  }
  return mx;
}

}  // namespace papyrus::net
