#include "net/runtime.h"

#include <exception>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "fault/failpoint.h"

namespace papyrus::net {

namespace {
thread_local RankContext* tls_ctx = nullptr;
}

RankContext* CurrentRankContext() { return tls_ctx; }
void SetCurrentRankContext(RankContext* ctx) {
  tls_ctx = ctx;
  SetLogRank(ctx ? ctx->rank : -1);
}

void RunRanks(const sim::Topology& topo,
              const std::function<void(RankContext&)>& fn) {
  World world(topo);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(topo.nranks));

  Mutex err_mu("rank_err_mu");
  std::exception_ptr first_error;  // guarded by err_mu until the join below

  for (int r = 0; r < topo.nranks; ++r) {
    threads.emplace_back([&, r] {
      RankContext ctx;
      ctx.rank = r;
      ctx.topo = topo;
      ctx.world = &world;
      ctx.comm = world.world_comm(r);
      SetCurrentRankContext(&ctx);
      fault::SetThreadRank(r);
      try {
        fn(ctx);
      } catch (...) {
        MutexLock lock(&err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      fault::SetThreadRank(-1);
      SetCurrentRankContext(nullptr);
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void RunRanks(int nranks, const std::function<void(RankContext&)>& fn) {
  sim::Topology topo;
  topo.nranks = nranks;
  topo.ranks_per_node = nranks;
  RunRanks(topo, fn);
}

}  // namespace papyrus::net
