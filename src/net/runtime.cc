#include "net/runtime.h"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace papyrus {
// Defined in common/logging.cc; tags log lines with the emulated rank.
extern thread_local int tls_log_rank;
}  // namespace papyrus

namespace papyrus::net {

namespace {
thread_local RankContext* tls_ctx = nullptr;
}

RankContext* CurrentRankContext() { return tls_ctx; }
void SetCurrentRankContext(RankContext* ctx) {
  tls_ctx = ctx;
  tls_log_rank = ctx ? ctx->rank : -1;
}

void RunRanks(const sim::Topology& topo,
              const std::function<void(RankContext&)>& fn) {
  World world(topo);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(topo.nranks));

  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < topo.nranks; ++r) {
    threads.emplace_back([&, r] {
      RankContext ctx;
      ctx.rank = r;
      ctx.topo = topo;
      ctx.world = &world;
      ctx.comm = world.world_comm(r);
      SetCurrentRankContext(&ctx);
      try {
        fn(ctx);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      SetCurrentRankContext(nullptr);
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void RunRanks(int nranks, const std::function<void(RankContext&)>& fn) {
  sim::Topology topo;
  topo.nranks = nranks;
  topo.ranks_per_node = nranks;
  RunRanks(topo, fn);
}

}  // namespace papyrus::net
