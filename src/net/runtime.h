// The emulated SPMD job launcher.
//
// RunRanks(topo, fn) plays the role of mpirun: it creates one World (the
// job), spawns one thread per rank, runs fn in every rank with that rank's
// context, and joins.  An exception in any rank aborts the job and is
// rethrown to the caller (first one wins), so test failures inside ranks
// surface in gtest.
//
// A thread_local current-context pointer makes the rank context reachable
// from the flat C API (core/papyruskv.h) exactly as MPI rank state is
// implicitly ambient in a real MPI process.
#pragma once

#include <functional>
#include <string>

#include "net/comm.h"
#include "sim/interconnect.h"

namespace papyrus::net {

struct RankContext {
  int rank = 0;
  sim::Topology topo;
  World* world = nullptr;
  Communicator comm;  // MPI_COMM_WORLD analogue

  int size() const { return topo.nranks; }
  int node() const { return topo.NodeOf(rank); }
};

// The calling thread's rank context; null outside RunRanks.  Background
// threads spawned inside a rank (compaction, dispatcher, handler) can adopt
// the parent's context via SetCurrentRankContext.
RankContext* CurrentRankContext();
void SetCurrentRankContext(RankContext* ctx);

// Runs fn on nranks emulated ranks (threads).  Blocks until all ranks
// return.  Rethrows the first rank exception, if any.
void RunRanks(const sim::Topology& topo,
              const std::function<void(RankContext&)>& fn);

// Convenience overload: flat rank count, all ranks on one node.
void RunRanks(int nranks, const std::function<void(RankContext&)>& fn);

}  // namespace papyrus::net
