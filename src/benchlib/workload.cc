#include "benchlib/workload.h"

#include <map>
#include <stdexcept>

#include "common/mutex.h"
#include "common/random.h"
#include "common/timer.h"

namespace papyrus::bench {

namespace {
void Check(int rc, const char* what) {
  if (rc != PAPYRUSKV_SUCCESS && rc != PAPYRUSKV_NOT_FOUND) {
    throw std::runtime_error(std::string(what) + " failed: " +
                             ErrorName(rc));
  }
}
}  // namespace

std::vector<std::string> MakeKeys(int rank, size_t count, size_t keylen,
                                  uint64_t seed) {
  Rng rng(seed * 1000003 + static_cast<uint64_t>(rank));
  std::vector<std::string> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) keys.push_back(RandomKey(rng, keylen));
  return keys;
}

const std::string& ValueBlob(size_t vallen) {
  static Mutex mu("bench_blob_mu");
  static std::map<size_t, std::string> blobs;
  MutexLock lock(&mu);
  auto it = blobs.find(vallen);
  if (it == blobs.end()) {
    it = blobs.emplace(vallen, PatternValue(vallen, vallen)).first;
  }
  return it->second;
}

BasicResult RunBasic(papyruskv_db_t db, int rank, size_t keylen,
                     size_t vallen, int iters) {
  BasicResult out;
  out.ops = static_cast<uint64_t>(iters);
  out.value_bytes = out.ops * vallen;
  const auto keys = MakeKeys(rank, static_cast<size_t>(iters), keylen);
  const std::string& value = ValueBlob(vallen);

  Stopwatch put_sw;
  for (const auto& k : keys) {
    Check(papyruskv_put(db, k.data(), k.size(), value.data(), value.size()),
          "put");
  }
  out.put_seconds = put_sw.ElapsedSeconds();

  Stopwatch bar_sw;
  Check(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), "barrier");
  out.barrier_seconds = bar_sw.ElapsedSeconds();

  Stopwatch get_sw;
  for (const auto& k : keys) {
    char* v = nullptr;
    size_t n = 0;
    const int rc = papyruskv_get(db, k.data(), k.size(), &v, &n);
    Check(rc, "get");
    if (rc == PAPYRUSKV_SUCCESS) Check(papyruskv_free(db, v), "free");
  }
  out.get_seconds = get_sw.ElapsedSeconds();
  return out;
}

WorkloadResult RunWorkload(papyruskv_db_t db, int rank, size_t keylen,
                           size_t vallen, int iters, int update_pct) {
  WorkloadResult out;
  const auto keys = MakeKeys(rank, static_cast<size_t>(iters), keylen);
  const std::string& value = ValueBlob(vallen);

  Stopwatch init_sw;
  for (const auto& k : keys) {
    Check(papyruskv_put(db, k.data(), k.size(), value.data(), value.size()),
          "init put");
  }
  Check(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), "init barrier");
  out.init_seconds = init_sw.ElapsedSeconds();

  Rng rng(0xbadc0de + static_cast<uint64_t>(rank));
  Stopwatch phase_sw;
  for (int i = 0; i < iters; ++i) {
    const std::string& k = keys[rng.Uniform(keys.size())];
    if (static_cast<int>(rng.Uniform(100)) < update_pct) {
      Check(papyruskv_put(db, k.data(), k.size(), value.data(),
                          value.size()),
            "update");
    } else {
      char* v = nullptr;
      size_t n = 0;
      const int rc = papyruskv_get(db, k.data(), k.size(), &v, &n);
      Check(rc, "read");
      if (rc == PAPYRUSKV_SUCCESS) Check(papyruskv_free(db, v), "free");
    }
    ++out.phase_ops;
  }
  out.phase_seconds = phase_sw.ElapsedSeconds();
  return out;
}

}  // namespace papyrus::bench
