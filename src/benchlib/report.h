// Reporting helpers for the figure-reproduction benches.
//
// The paper's artifact reports "the average, minimum, and maximum of total
// execution times for all MPI ranks"; its figures plot KRPS (kilo requests
// per second) and MBPS (megabytes per second).  This module computes those
// aggregates across emulated ranks and prints aligned tables, one bench
// binary per paper figure (see bench/).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/comm.h"

namespace papyrus::bench {

// avg/min/max of a per-rank scalar, identical result on every rank.
struct RankStats {
  double avg = 0;
  double min = 0;
  double max = 0;
};
RankStats GatherStats(const net::Communicator& comm, double mine);

// Figure metrics.  Throughput uses the *maximum* rank time (the paper
// measures total execution time of the parallel phase — the slowest rank
// defines it).
inline double Krps(uint64_t total_ops, double seconds) {
  return seconds > 0 ? static_cast<double>(total_ops) / seconds / 1e3 : 0;
}
inline double Mbps(uint64_t total_bytes, double seconds) {
  return seconds > 0 ? static_cast<double>(total_bytes) / seconds / 1e6 : 0;
}

// Pretty size for row labels: "256B", "128KB", "1MB".
std::string HumanSize(uint64_t bytes);

// Folds the calling rank's metrics registry (obs/) into the bench output:
// allgathers every rank's snapshot, merges them, and has rank 0 write the
// aggregate as stats-v1 JSON to BENCH_<name>.json (next to the bench's
// stdout tables, for the results trajectory).  Collective; call once at
// the end of the measured phase, before papyruskv_finalize.
void WriteBenchMetrics(const net::Communicator& comm,
                       const std::string& bench_name);

// Minimal fixed-width table printer (rank 0 only prints).
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);
  void AddRow(const std::vector<std::string>& cells);
  // Renders to stdout.
  void Print() const;

  // Cell formatting helpers.
  static std::string Num(double v, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace papyrus::bench
