// Workload drivers replicating the paper's three microbenchmark
// applications (artifact appendix A.4):
//
//   basic    — N puts of (keylen, vallen) random pairs, a barrier with the
//              PAPYRUSKV_SSTABLE level, then N gets of the same keys.
//              Used by Figures 6, 7, 8.
//   workload — an initialization phase of N puts followed by a read/update
//              phase of N ops with a given update percentage, in sequential
//              consistency mode.  Used by Figures 9 and 11.
//   cr       — N puts, then checkpoint / restart / restart-with-
//              redistribution against a parallel-filesystem target.
//              Used by Figure 10.
//
// Every driver runs inside one emulated rank and reports per-phase wall
// times; the bench binaries aggregate them across ranks (report.h) into the
// figures' KRPS/MBPS series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/papyruskv.h"
#include "net/runtime.h"

namespace papyrus::bench {

// Deterministic per-rank key set (16 B alphanumeric by default, the
// paper's format).
std::vector<std::string> MakeKeys(int rank, size_t count, size_t keylen,
                                  uint64_t seed = 0x5eed);

struct BasicResult {
  double put_seconds = 0;
  double barrier_seconds = 0;
  double get_seconds = 0;
  uint64_t ops = 0;          // per phase, this rank
  uint64_t value_bytes = 0;  // vallen * ops
};

// The `basic` app body for one rank: put → barrier(SSTABLE) → get.
// `db` must be open; keys are the rank's deterministic set.
BasicResult RunBasic(papyruskv_db_t db, int rank, size_t keylen,
                     size_t vallen, int iters);

struct WorkloadResult {
  double init_seconds = 0;
  double phase_seconds = 0;
  uint64_t phase_ops = 0;
};

// The `workload` app body: init puts, barrier, then a read/update phase
// where each op updates with probability update_pct/100 and reads
// otherwise (keys drawn uniformly from the init set).
WorkloadResult RunWorkload(papyruskv_db_t db, int rank, size_t keylen,
                           size_t vallen, int iters, int update_pct);

// Shared value payload (constant content keeps the focus on data-path
// cost, as in the artifact's apps).
const std::string& ValueBlob(size_t vallen);

}  // namespace papyrus::bench
