// Tiny command-line flag parsing for the bench binaries.
//
// Every figure bench accepts the same core knobs so sweeps can be resized
// to the host machine:
//   --ranks=N        max emulated ranks (default 8)
//   --iters=N        operations per rank per phase (default: per bench)
//   --keylen=N       key size in bytes (default 16, the paper's)
//   --vallen=N       value size in bytes (where the bench doesn't sweep it)
//   --scale=F        device/interconnect time scale (default: per bench)
//   --repo=PATH      scratch directory (default /tmp/papyrus_bench)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace papyrus::bench {

struct Flags {
  int ranks = 8;
  int iters = 0;  // 0 = bench default
  size_t keylen = 16;
  size_t vallen = 0;  // 0 = bench default
  double scale = -1;  // <0 = bench default
  std::string repo = "/tmp/papyrus_bench";

  static Flags Parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      auto val = [&](const char* prefix) -> const char* {
        const size_t n = strlen(prefix);
        return strncmp(a, prefix, n) == 0 ? a + n : nullptr;
      };
      if (const char* v = val("--ranks=")) {
        f.ranks = atoi(v);
      } else if (const char* v = val("--iters=")) {
        f.iters = atoi(v);
      } else if (const char* v = val("--keylen=")) {
        f.keylen = static_cast<size_t>(atoll(v));
      } else if (const char* v = val("--vallen=")) {
        f.vallen = static_cast<size_t>(atoll(v));
      } else if (const char* v = val("--scale=")) {
        f.scale = atof(v);
      } else if (const char* v = val("--repo=")) {
        f.repo = v;
      } else if (strcmp(a, "--help") == 0) {
        fprintf(stderr,
                "flags: --ranks=N --iters=N --keylen=N --vallen=N "
                "--scale=F --repo=PATH\n");
        exit(0);
      } else {
        fprintf(stderr, "unknown flag: %s\n", a);
        exit(2);
      }
    }
    return f;
  }
};

}  // namespace papyrus::bench
