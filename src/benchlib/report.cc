#include "benchlib/report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/coding.h"
#include "common/logging.h"
#include "obs/export.h"

namespace papyrus::bench {

RankStats GatherStats(const net::Communicator& comm, double mine) {
  char buf[8];
  EncodeFixed64(buf, *reinterpret_cast<const uint64_t*>(&mine));
  std::vector<std::string> all;
  comm.Allgather(Slice(buf, 8), &all);
  RankStats out;
  out.min = 1e300;
  out.max = -1e300;
  double sum = 0;
  for (const auto& s : all) {
    const uint64_t bits = DecodeFixed64(s.data());
    double v;
    memcpy(&v, &bits, sizeof(v));
    sum += v;
    out.min = std::min(out.min, v);
    out.max = std::max(out.max, v);
  }
  out.avg = sum / static_cast<double>(all.size());
  return out;
}

void WriteBenchMetrics(const net::Communicator& comm,
                       const std::string& bench_name) {
  // Current() is the rank's registry while the runtime is up (the bench
  // calls this between the measured phase and papyruskv_finalize).
  obs::Snapshot mine = obs::Current().TakeSnapshot();
  std::vector<std::string> all;
  comm.Allgather(obs::SerializeSnapshot(mine), &all);
  if (comm.rank() != 0) return;
  obs::Snapshot agg;
  for (const auto& wire : all) {
    obs::Snapshot part;
    if (obs::DeserializeSnapshot(wire, &part)) agg.Merge(part);
  }
  obs::StatsMeta meta;
  meta.nranks = comm.size();
  meta.aggregated = true;
  const std::string path = "BENCH_" + bench_name + ".json";
  Status s = obs::WriteTextFile(path, obs::SnapshotToJson(agg, meta));
  if (s.ok()) {
    printf("[metrics] wrote %s\n", path.c_str());
  } else {
    PLOG_WARN << "bench metrics dump failed: " << s.ToString();
  }
}

std::string HumanSize(uint64_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20) && bytes % (1u << 20) == 0) {
    snprintf(buf, sizeof(buf), "%" PRIu64 "MB", bytes >> 20);
  } else if (bytes >= (1u << 10) && bytes % (1u << 10) == 0) {
    snprintf(buf, sizeof(buf), "%" PRIu64 "KB", bytes >> 10);
  } else {
    snprintf(buf, sizeof(buf), "%" PRIu64 "B", bytes);
  }
  return buf;
}

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  printf("\n== %s ==\n", title_.c_str());
  for (size_t c = 0; c < headers_.size(); ++c) {
    printf("%-*s  ", static_cast<int>(widths[c]), headers_[c].c_str());
  }
  printf("\n");
  for (size_t c = 0; c < headers_.size(); ++c) {
    printf("%s  ", std::string(widths[c], '-').c_str());
  }
  printf("\n");
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    printf("\n");
  }
  fflush(stdout);
}

}  // namespace papyrus::bench
