#include "repl/replicator.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "async/pipeline.h"
#include "common/logging.h"
#include "core/runtime.h"
#include "obs/flight.h"
#include "obs/metrics.h"

namespace papyrus::repl {

namespace {
// The shadow MemTable is never sealed or rotated: it mirrors the primary's
// stream since the last reset and is bounded by the primary's partition
// size, so capacity-based sealing must never trip.
constexpr size_t kShadowCapacity = std::numeric_limits<size_t>::max() / 2;
}  // namespace

std::vector<int> FollowersOf(int rank, int nranks, int group_size,
                             int replicas) {
  std::vector<int> out;
  if (group_size <= 0 || replicas <= 1) return out;
  const int gstart = (rank / group_size) * group_size;
  const int gend = std::min(gstart + group_size, nranks);
  const int span = gend - gstart;
  const int k = std::min(replicas, span);
  out.reserve(static_cast<size_t>(k > 0 ? k - 1 : 0));
  for (int i = 1; i < k; ++i) {
    out.push_back(gstart + (rank - gstart + i) % span);
  }
  return out;
}

Replicator::Replicator(core::KvRuntime* rt, uint32_t dbid,
                       std::vector<int> followers)
    : rt_(rt), dbid_(dbid), follower_ranks_(std::move(followers)) {
  // Set-once before any other thread can see this object; the counters
  // themselves are thread-safe, so the pointers need no lock.
  obs::Registry& reg = rt_->metrics();
  c_appends_ = &reg.GetCounter("repl.appends");
  c_resyncs_ = &reg.GetCounter("repl.resyncs");
  c_degraded_ = &reg.GetCounter("repl.degraded");
  c_shadow_applies_ = &reg.GetCounter("repl.shadow_applies");
  g_lag_ = &reg.GetGauge("repl.lag_ops");
  g_degraded_now_ = &reg.GetGauge("repl.degraded_now");

  MutexLock lock(&mu_);
  followers_.reserve(follower_ranks_.size());
  for (int r : follower_ranks_) {
    FollowerState f;
    f.rank = r;
    followers_.push_back(f);
  }
}

Replicator::~Replicator() {
  // Safety net: by teardown every append has been acked or failed (the
  // pipeline drains before it stops), so matured waiters have fired; any
  // stragglers fire here so no writer can hang on a lost ack.
  std::vector<Waiter> leftovers;
  {
    MutexLock lock(&mu_);
    leftovers.swap(waiters_);
  }
  Fire(&leftovers);
}

void Replicator::Fire(std::vector<Waiter>* waiters) {
  for (Waiter& w : *waiters) {
    if (w.fn) w.fn();
  }
  waiters->clear();
}

void Replicator::PumpLocked(FollowerState& f) {
  if (log_.empty()) return;
  if (f.need_reset) f.next_seq = log_.front().seq;
  if (f.next_seq > last_seq_) return;
  // Entries are contiguous in the retained log: index of seq S is
  // S - front.seq.
  const uint64_t front_seq = log_.front().seq;
  bool reset = f.need_reset;
  for (uint64_t seq = std::max(f.next_seq, front_seq); seq <= last_seq_;
       ++seq) {
    const LogEntry& e = log_[static_cast<size_t>(seq - front_seq)];
    rt_->pipeline().SubmitReplAppend(f.rank, dbid_,
                                     static_cast<uint32_t>(rt_->rank()),
                                     f.epoch, seq, reset, flushed_through_,
                                     e.rec.key, e.rec.value, e.rec.tombstone);
    reset = false;
  }
  f.need_reset = false;
  f.next_seq = last_seq_ + 1;
}

void Replicator::Append(const Slice& key, const Slice& value,
                        bool tombstone) {
  MutexLock lock(&mu_);
  ++last_seq_;
  LogEntry e;
  e.seq = last_seq_;
  e.rec.key = key.ToString();
  e.rec.value = value.ToString();
  e.rec.tombstone = tombstone;
  log_.push_back(std::move(e));
  c_appends_->Inc();
  for (FollowerState& f : followers_) {
    if (f.down) continue;
    if (rt_->IsSuspect(f.rank)) {
      // Some other traffic already gave up on this peer; don't queue more
      // frames at a dead letter box — the quorum accounting drops it now
      // and OnAppendFailed-style degradation applies immediately.
      f.down = true;
      continue;
    }
    PumpLocked(f);
  }
  UpdateLagLocked();
}

void Replicator::NoteSeal(const void* mem) {
  MutexLock lock(&mu_);
  SealMark m;
  m.mem = mem;
  m.seq = last_seq_;
  seals_.push_back(m);
}

void Replicator::NoteFlushed(const void* mem) {
  MutexLock lock(&mu_);
  for (SealMark& m : seals_) {
    if (m.mem == mem) {
      m.flushed = true;
      break;
    }
  }
  // Flushes can complete out of order; the watermark only advances over the
  // contiguous flushed prefix of the seal order, because an entry is safe to
  // trim only when *every* MemTable holding it or an earlier entry is on NVM.
  while (!seals_.empty() && seals_.front().flushed) {
    flushed_through_ = std::max(flushed_through_, seals_.front().seq);
    seals_.pop_front();
  }
  while (!log_.empty() && log_.front().seq <= flushed_through_) {
    log_.pop_front();
  }
}

uint64_t Replicator::last_seq() const {
  MutexLock lock(&mu_);
  return last_seq_;
}

uint64_t Replicator::QuorumSeqLocked() {
  const size_t need = static_cast<size_t>(k()) / 2 + 1;
  std::vector<uint64_t> acked;
  acked.reserve(followers_.size() + 1);
  acked.push_back(last_seq_);  // the primary holds everything it assigned
  for (const FollowerState& f : followers_) {
    if (!f.down) acked.push_back(f.acked_seq);
  }
  if (acked.size() < need) {
    if (!degraded_) {
      degraded_ = true;
      c_degraded_->Inc();
      g_degraded_now_->Set(1);
      if (obs::FlightRecorder* fl = obs::CurrentFlight()) {
        fl->Record(obs::FlightKind::kDegraded, "repl_quorum",
                   static_cast<int64_t>(dbid_),
                   static_cast<int64_t>(acked.size()));
      }
      PLOG_WARN << "replication degraded: " << acked.size() << " of "
                << k() << " replicas live; acks proceed on survivors";
    }
    return last_seq_;
  }
  std::sort(acked.begin(), acked.end(), std::greater<uint64_t>());
  return acked[need - 1];
}

void Replicator::CollectMaturedLocked(std::vector<Waiter>* out) {
  if (waiters_.empty()) return;
  const uint64_t q = QuorumSeqLocked();
  auto it = waiters_.begin();
  while (it != waiters_.end()) {
    if (it->seq <= q) {
      out->push_back(std::move(*it));
      it = waiters_.erase(it);
    } else {
      ++it;
    }
  }
}

void Replicator::UpdateLagLocked() {
  uint64_t min_acked = last_seq_;
  for (const FollowerState& f : followers_) {
    if (!f.down) min_acked = std::min(min_acked, f.acked_seq);
  }
  g_lag_->Set(static_cast<int64_t>(last_seq_ - min_acked));
}

void Replicator::AckWhenDurable(uint64_t seq, std::function<void()> fn) {
  {
    MutexLock lock(&mu_);
    if (seq > QuorumSeqLocked()) {
      Waiter w;
      w.seq = seq;
      w.fn = std::move(fn);
      waiters_.push_back(std::move(w));
      return;
    }
  }
  fn();
}

void Replicator::WaitLocalDurable() {
  struct Latch {
    Mutex mu{"repl_latch_mu"};
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
  };
  auto latch = std::make_shared<Latch>();
  AckWhenDurable(last_seq(), [latch] {
    MutexLock lock(&latch->mu);
    latch->done = true;
    latch->cv.NotifyAll();
  });
  MutexLock lock(&latch->mu);
  while (!latch->done) latch->cv.Wait(&latch->mu);
}

void Replicator::OnAppendAck(int follower, uint64_t epoch,
                             uint64_t acked_seq, bool ok) {
  std::vector<Waiter> fire;
  {
    MutexLock lock(&mu_);
    FollowerState* f = nullptr;
    for (FollowerState& c : followers_) {
      if (c.rank == follower) f = &c;
    }
    if (f == nullptr) return;
    if (ok) {
      if (epoch == f->epoch && acked_seq > f->acked_seq) {
        f->acked_seq = acked_seq;
      }
    } else if (epoch == f->epoch && !f->down) {
      // A NACK about the *current* stream: the follower gapped (lost frame,
      // fresh restart).  Bump the epoch — stale in-flight frames keep
      // echoing the old one and are ignored here — and replay the whole
      // retained log under a reset frame.
      ++f->epoch;
      f->need_reset = true;
      f->acked_seq = 0;
      c_resyncs_->Inc();
      if (obs::FlightRecorder* fl = obs::CurrentFlight()) {
        fl->Record(obs::FlightKind::kReplResync, "follower", follower,
                   static_cast<int64_t>(f->epoch));
      }
      PumpLocked(*f);
    }
    CollectMaturedLocked(&fire);
    UpdateLagLocked();
  }
  Fire(&fire);
}

void Replicator::OnAppendFailed(int follower) {
  std::vector<Waiter> fire;
  {
    MutexLock lock(&mu_);
    for (FollowerState& f : followers_) {
      if (f.rank == follower) f.down = true;
    }
    CollectMaturedLocked(&fire);
    UpdateLagLocked();
  }
  Fire(&fire);
}

bool Replicator::Degraded() const {
  MutexLock lock(&mu_);
  return degraded_;
}

Replicator::ApplyResult Replicator::ApplyReplAppend(
    const core::ReplAppendMeta& meta,
    const std::vector<core::KvRecord>& records) {
  MutexLock lock(&shadow_mu_);
  ShadowState& s = shadows_[static_cast<int>(meta.primary)];
  if (meta.reset) {
    s = ShadowState();
    s.epoch = meta.epoch;
    s.next_seq = meta.first_seq;
    s.flushed_through = meta.flushed_through;
    s.in_sync = true;
    s.shadow = std::make_shared<store::MemTable>(
        store::MemTable::Kind::kLocal, kShadowCapacity);
  }
  ApplyResult r;
  r.epoch = meta.epoch;  // echo: lets the primary match NACKs to streams
  if (!s.in_sync || meta.epoch != s.epoch || meta.first_seq > s.next_seq) {
    if (meta.epoch == s.epoch && meta.first_seq > s.next_seq) {
      // A gap on the live stream: stop acking until the primary resets.
      s.in_sync = false;
    }
    r.ok = false;
    r.acked_seq = s.next_seq - 1;
    return r;
  }
  uint64_t seq = meta.first_seq;
  for (const core::KvRecord& rec : records) {
    if (seq >= s.next_seq) {  // else: duplicate prefix from a frame retry
      s.shadow->Put(rec.key, rec.value, rec.tombstone,
                    static_cast<int>(meta.primary));
      s.log.emplace_back(seq, rec);
      s.next_seq = seq + 1;
      c_shadow_applies_->Inc();
    }
    ++seq;
  }
  if (meta.flushed_through > s.flushed_through) {
    s.flushed_through = meta.flushed_through;
    while (!s.log.empty() && s.log.front().first <= s.flushed_through) {
      s.log.pop_front();
    }
  }
  r.ok = true;
  r.acked_seq = s.next_seq - 1;
  return r;
}

void Replicator::QueryShadow(int primary, uint64_t* epoch,
                             uint64_t* last_seq, bool* in_sync) {
  MutexLock lock(&shadow_mu_);
  auto it = shadows_.find(primary);
  if (it == shadows_.end()) {
    *epoch = 0;
    *last_seq = 0;
    *in_sync = false;
    return;
  }
  *epoch = it->second.epoch;
  *last_seq = it->second.next_seq - 1;
  *in_sync = it->second.in_sync;
}

bool Replicator::ShadowGet(int primary, const Slice& key, std::string* value,
                           bool* tombstone) {
  MutexLock lock(&shadow_mu_);
  auto it = shadows_.find(primary);
  if (it == shadows_.end() || !it->second.in_sync || !it->second.shadow) {
    return false;
  }
  return it->second.shadow->Get(key, value, tombstone);
}

std::vector<core::KvRecord> Replicator::TakeShadowLog(int primary,
                                                      uint64_t* last_seq) {
  MutexLock lock(&shadow_mu_);
  std::vector<core::KvRecord> out;
  auto it = shadows_.find(primary);
  if (it == shadows_.end()) {
    *last_seq = 0;
    return out;
  }
  out.reserve(it->second.log.size());
  for (auto& [seq, rec] : it->second.log) out.push_back(std::move(rec));
  *last_seq = it->second.next_seq - 1;
  // The primary is gone and this follower is being promoted: the shadow has
  // served its purpose, and the replay below re-replicates through the
  // promoted rank's own stream.
  shadows_.erase(it);
  return out;
}

void Replicator::Reset() {
  {
    MutexLock lock(&mu_);
    log_.clear();
    seals_.clear();
    waiters_.clear();  // fail-stop: a crashed rank acks nothing
    last_seq_ = 0;
    flushed_through_ = 0;
    degraded_ = false;
    g_degraded_now_->Set(0);
    for (FollowerState& f : followers_) {
      ++f.epoch;
      f.next_seq = 1;
      f.acked_seq = 0;
      f.need_reset = true;
      f.down = false;
    }
  }
  MutexLock lock(&shadow_mu_);
  shadows_.clear();
}

}  // namespace papyrus::repl
