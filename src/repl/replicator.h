// Intra-group k-way replication (DESIGN.md §12).
//
// Each rank's partition is replicated onto the next k−1 ranks of its
// storage group (paper §2.7): co-located ranks already share NVM, so only
// the *volatile* tail of the partition — MemTable ops not yet flushed to an
// SSTable — has to move.  The primary assigns every committed local op a
// monotonically increasing sequence number, retains the unflushed suffix of
// that sequence in a replication log, and streams it to each follower
// through the async pipeline as versioned kOpReplAppend frames.  Followers
// apply the stream into a shadow MemTable keyed by (db, primary) and ack by
// (epoch, seq).
//
// Commit rule: an op is durable once ⌊k/2⌋+1 replicas (primary included)
// hold it.  The put_batch/migrate handlers defer their acks through
// AckWhenDurable(), so a remote writer's event completes only after quorum;
// the primary's own fence drains the pipeline, which processes every
// outstanding append ack.  When fewer than ⌊k/2⌋+1 replicas are live the
// group degrades explicitly: acks proceed on the survivors, a kDegraded
// flight event fires and repl.degraded counts the transition — durability
// is then only as good as the survivor set, never silently worse.
//
// Epoch/sequence rules: sequence numbers are per-primary and never reused;
// epochs are per-(primary, follower) stream incarnations.  A follower acks
// only contiguous extensions of its stream.  On a gap or epoch mismatch it
// NACKs (echoing the frame's epoch), and the primary resynchronizes: bump
// the follower's epoch and replay the whole retained log under a reset
// frame, which tells the follower to discard its shadow state and adopt
// the new epoch.  Stale in-flight frames from the previous epoch keep
// NACKing but echo the old epoch, so the primary ignores them.  The
// replication log is trimmed to the flush watermark (entries at or below
// it are on shared NVM); the watermark rides every append frame so
// followers bound their shadow logs the same way.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "core/wire.h"
#include "store/memtable.h"

namespace papyrus::core {
class KvRuntime;
}  // namespace papyrus::core

namespace papyrus::obs {
class Counter;
class Gauge;
}  // namespace papyrus::obs

namespace papyrus::repl {

// The replica set for `rank`'s partition: the next replicas−1 ranks of its
// storage group (wrapping inside the group, clamped to the group span).
// Empty when replication is off or the group has a single member.
std::vector<int> FollowersOf(int rank, int nranks, int group_size,
                             int replicas);

// Per-shard replication engine: primary-side stream state for this rank's
// own partition plus follower-side shadow state for the primaries it backs.
// Owned by DbShard; null when the effective replica count is 1.
class Replicator {
 public:
  Replicator(core::KvRuntime* rt, uint32_t dbid, std::vector<int> followers);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  // Replicas counting the primary.
  int k() const { return static_cast<int>(followers_.size()) + 1; }

  // ---- primary side -------------------------------------------------------
  // Called under DbShard::local_mu_, immediately after the local MemTable
  // apply: assigns the op its sequence number and enqueues one pipeline
  // submission per live follower.
  void Append(const Slice& key, const Slice& value, bool tombstone);

  // RotateLocalLocked: the active MemTable sealed at the current sequence.
  void NoteSeal(const void* mem);
  // FlushImmutable success: `mem` is on NVM; advance the flush watermark
  // over the contiguous flushed prefix and trim the log to entries above it.
  void NoteFlushed(const void* mem);

  // Highest assigned sequence number.
  uint64_t last_seq() const;

  // Runs `fn` once every op up to `seq` is durable at quorum (possibly
  // inline, on this thread).  Used by the runtime's apply handlers to defer
  // their acks; `fn` must be safe to call from the pipeline thread.
  void AckWhenDurable(uint64_t seq, std::function<void()> fn);

  // Blocks the calling (rank) thread until every op assigned so far is
  // durable at quorum.  Fence's replication gate for the primary's own
  // local puts; bounded because unresponsive followers eventually fail via
  // OnAppendFailed and drop out of the quorum calculation.
  void WaitLocalDurable();

  // Pipeline-thread callbacks, one per acked/failed kOpReplAppend frame.
  // `epoch` is the frame's epoch as echoed by the follower.
  void OnAppendAck(int follower, uint64_t epoch, uint64_t acked_seq, bool ok);
  void OnAppendFailed(int follower);

  // True when fewer than ⌊k/2⌋+1 replicas are live (fence-time check; the
  // transition itself was already recorded when it happened).
  bool Degraded() const;

  // ---- follower side ------------------------------------------------------
  struct ApplyResult {
    bool ok = false;          // false = NACK (epoch mismatch / gap)
    uint64_t epoch = 0;       // echoed frame epoch
    uint64_t acked_seq = 0;   // applied high-water mark
  };
  ApplyResult ApplyReplAppend(const core::ReplAppendMeta& meta,
                              const std::vector<core::KvRecord>& records);

  // Election probe: shadow progress for `primary`'s stream.
  void QueryShadow(int primary, uint64_t* epoch, uint64_t* last_seq,
                   bool* in_sync);

  // Read-from-replica: true when the shadow authoritatively serves `key`
  // (including a tombstone hit); false = not served here, caller falls
  // back to the owner.
  bool ShadowGet(int primary, const Slice& key, std::string* value,
                 bool* tombstone);

  // Promotion: removes and returns the shadow log tail for `primary` in
  // sequence order (entries above the primary's flush watermark; everything
  // below it is on shared NVM).  `last_seq` reports the stream's applied
  // high-water mark.
  std::vector<core::KvRecord> TakeShadowLog(int primary, uint64_t* last_seq);

  // DropVolatile / crash: forget everything — primary log, follower
  // shadows, pending waiters (writers observe timeouts, per fail-stop).
  void Reset();

 private:
  struct FollowerState {
    int rank = -1;
    uint64_t epoch = 1;
    uint64_t next_seq = 1;   // next sequence number to enqueue
    uint64_t acked_seq = 0;
    bool need_reset = true;  // next pumped frame starts a (re)sync
    bool down = false;
  };

  struct LogEntry {
    uint64_t seq = 0;
    core::KvRecord rec;
  };

  struct ShadowState {
    uint64_t epoch = 0;
    uint64_t next_seq = 1;  // next expected sequence number
    uint64_t flushed_through = 0;
    bool in_sync = false;   // false until a reset adopts the stream
    std::shared_ptr<store::MemTable> shadow;
    std::deque<std::pair<uint64_t, core::KvRecord>> log;
  };

  struct Waiter {
    uint64_t seq = 0;
    std::function<void()> fn;
  };

  // Enqueues every retained log entry from f.next_seq on, with the reset
  // flag on the first frame of a (re)sync.
  void PumpLocked(FollowerState& f) REQUIRES(mu_);
  // Sequence durable at ⌊k/2⌋+1 replicas; last_seq_ when degraded.
  uint64_t QuorumSeqLocked() REQUIRES(mu_);
  void CollectMaturedLocked(std::vector<Waiter>* out) REQUIRES(mu_);
  void UpdateLagLocked() REQUIRES(mu_);
  static void Fire(std::vector<Waiter>* waiters);

  core::KvRuntime* const rt_;
  const uint32_t dbid_;
  const std::vector<int> follower_ranks_;

  mutable Mutex mu_{"repl_mu"};
  std::vector<FollowerState> followers_ GUARDED_BY(mu_);
  uint64_t last_seq_ GUARDED_BY(mu_) = 0;
  uint64_t flushed_through_ GUARDED_BY(mu_) = 0;
  std::deque<LogEntry> log_ GUARDED_BY(mu_);
  // Seal-order (MemTable, sequence-at-seal) marks; a flush completion may
  // finish out of order, so the watermark only advances over the contiguous
  // flushed prefix.
  struct SealMark {
    const void* mem = nullptr;
    uint64_t seq = 0;
    bool flushed = false;
  };
  std::deque<SealMark> seals_ GUARDED_BY(mu_);
  std::vector<Waiter> waiters_ GUARDED_BY(mu_);
  bool degraded_ GUARDED_BY(mu_) = false;

  // Leaf lock for the follower-side shadow map (handler thread vs
  // promotion/read paths); never held together with mu_.
  mutable Mutex shadow_mu_{"repl_shadow_mu"};
  std::map<int, ShadowState> shadows_ GUARDED_BY(shadow_mu_);

  obs::Counter* c_appends_ = nullptr;
  obs::Counter* c_resyncs_ = nullptr;
  obs::Counter* c_degraded_ = nullptr;
  obs::Counter* c_shadow_applies_ = nullptr;
  obs::Gauge* g_lag_ = nullptr;
  // 0/1 level mirror of degraded_, so the timeline sampler (obs/timeline.h)
  // can window the degraded interval without taking mu_.
  obs::Gauge* g_degraded_now_ = nullptr;
};

}  // namespace papyrus::repl
