#include "baseline/dsm.h"

#include "common/coding.h"
#include "common/hash.h"
#include "common/timer.h"
#include "sim/device_model.h"

namespace papyrus::baseline {

DsmHashTable::DsmHashTable(net::RankContext& ctx)
    : ctx_(ctx), shard_(std::make_shared<Shard>()) {}

Status DsmHashTable::Open(net::RankContext& ctx,
                          std::unique_ptr<DsmHashTable>* out) {
  std::unique_ptr<DsmHashTable> t(new DsmHashTable(ctx));
  // Memory registration handshake: every rank publishes its shard address
  // so peers can access it one-sidedly (UPC's shared-array setup).  The
  // emulated ranks share one address space, so the "address" is literal.
  char buf[8];
  EncodeFixed64(buf, reinterpret_cast<uint64_t>(t->shard_.get()));
  std::vector<std::string> all;
  ctx.comm.Allgather(Slice(buf, 8), &all);
  t->peers_.resize(all.size());
  for (size_t r = 0; r < all.size(); ++r) {
    t->peers_[r] = reinterpret_cast<Shard*>(DecodeFixed64(all[r].data()));
  }
  *out = std::move(t);
  return Status::OK();
}

DsmHashTable::~DsmHashTable() {
  // Best-effort: a destructor cannot surface the close status.
  if (!closed_) Close().IgnoreError();
}

int DsmHashTable::OwnerOf(const Slice& key) const {
  return static_cast<int>(Fnv1a64(key) % static_cast<uint64_t>(ctx_.size()));
}

size_t DsmHashTable::LocalShardSize() const {
  MutexLock lock(&shard_->mu);
  return shard_->map.size();
}

void DsmHashTable::ChargeOneSided(int owner, uint64_t bytes,
                                  bool round_trip) const {
  // The initiator pays injection + occupancy via the normal charge; a
  // round trip (remote read / atomic) additionally blocks for 2x the
  // propagation latency — RDMA read semantics.
  const uint64_t one_way =
      ctx_.world->interconnect().Charge(ctx_.rank, owner, bytes);
  if (round_trip && one_way > 0) PreciseSleepMicros(2 * one_way);
}

Status DsmHashTable::Insert(const Slice& key, const Slice& value) {
  if (key.empty()) return Status::InvalidArg("empty key");
  const int owner = OwnerOf(key);
  if (owner != ctx_.rank) {
    ChargeOneSided(owner, key.size() + value.size(), /*round_trip=*/false);
  }
  Shard& shard = TargetShard(owner);
  MutexLock lock(&shard.mu);
  auto [it, fresh] = shard.map.try_emplace(key.ToString());
  it->second.value = value.ToString();
  (void)fresh;  // insert-or-overwrite: the assignment above covers both
  return Status::OK();
}

Status DsmHashTable::Quiet() {
  // Remote stores are applied synchronously by the initiating thread in
  // this emulation (the propagation-delay shortcut is conservative in
  // UPC's favor by at most one latency), so the fence has nothing to
  // drain.  It remains in the API because callers must order their code
  // as if stores were asynchronous — matching real UPC programs.
  return Status::OK();
}

Status DsmHashTable::Lookup(const Slice& key, std::string* value) {
  if (key.empty()) return Status::InvalidArg("empty key");
  const int owner = OwnerOf(key);
  if (owner != ctx_.rank) {
    ChargeOneSided(owner, key.size() + 64, /*round_trip=*/true);
  }
  Shard& shard = TargetShard(owner);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key.ToString());
  if (it == shard.map.end()) return Status::NotFound();
  *value = it->second.value;
  return Status::OK();
}

Status DsmHashTable::CompareAndSwapFlag(const Slice& key, uint64_t expected,
                                        uint64_t desired, bool* swapped) {
  if (key.empty()) return Status::InvalidArg("empty key");
  const int owner = OwnerOf(key);
  if (owner != ctx_.rank) {
    ChargeOneSided(owner, key.size() + 16, /*round_trip=*/true);
  }
  Shard& shard = TargetShard(owner);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key.ToString());
  if (it == shard.map.end()) return Status::NotFound();
  if (it->second.flag == expected) {
    it->second.flag = desired;
    *swapped = true;
  } else {
    *swapped = false;
  }
  return Status::OK();
}

Status DsmHashTable::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  // Quiesce: no peer may touch the shard after its owner leaves.
  ctx_.comm.Barrier();
  peers_.clear();
  ctx_.comm.Barrier();
  return Status::OK();
}

}  // namespace papyrus::baseline
