#include "baseline/mdhim.h"

#include "common/coding.h"
#include "common/hash.h"
#include "core/layout.h"
#include "sim/storage.h"

namespace papyrus::baseline {

namespace {

enum MdhimOp : int {
  kMdhimPut = 1,
  kMdhimDelete = 2,
  kMdhimGet = 3,
  kMdhimShutdown = 4,
};

constexpr int kMdhimRespTag = 1;

// Request: [lp key][lp value]; response: [u8 ok][lp value].
std::string EncodeReq(const Slice& key, const Slice& value) {
  std::string out;
  PutLengthPrefixed(&out, key);
  PutLengthPrefixed(&out, value);
  return out;
}

bool DecodeReq(const Slice& payload, std::string* key, std::string* value) {
  Slice in = payload;
  Slice k, v;
  if (!GetLengthPrefixed(&in, &k) || !GetLengthPrefixed(&in, &v)) {
    return false;
  }
  // The unmarshal copy: the range server owns fresh allocations — layer
  // boundary cost the paper describes.
  *key = k.ToString();
  *value = v.ToString();
  return in.empty();
}

std::string EncodeResp(bool ok, const Slice& value) {
  std::string out;
  out.push_back(ok ? 1 : 0);
  PutLengthPrefixed(&out, value);
  return out;
}

bool DecodeResp(const Slice& payload, bool* ok, std::string* value) {
  Slice in = payload;
  if (in.empty()) return false;
  *ok = in[0] != 0;
  in.remove_prefix(1);
  Slice v;
  if (!GetLengthPrefixed(&in, &v)) return false;
  *value = v.ToString();
  return in.empty();
}

}  // namespace

Mdhim::Mdhim(net::RankContext& ctx)
    : ctx_(ctx), req_comm_(ctx.comm.Dup()), resp_comm_(ctx.comm.Dup()) {}

Status Mdhim::Open(net::RankContext& ctx, const std::string& dir_spec,
                   const MdhimOptions& opt, std::unique_ptr<Mdhim>* out) {
  sim::DeviceClass cls;
  std::string root;
  core::ParseRepositorySpec(dir_spec, &cls, &root);
  sim::DeviceRegistry::Instance().GetOrCreate(root, cls);

  std::unique_ptr<Mdhim> db(new Mdhim(ctx));
  const std::string dir = root + "/mdhim/rank" + std::to_string(ctx.rank);
  Status s = sim::Storage::CreateDirs(dir);
  if (!s.ok()) return s;
  s = MiniDb::Open(dir, opt.store, &db->store_);
  if (!s.ok()) return s;
  db->server_ = std::thread([raw = db.get()] { raw->RangeServerLoop(); });
  ctx.comm.Barrier();  // all range servers up before anyone operates
  *out = std::move(db);
  return Status::OK();
}

Mdhim::~Mdhim() {
  // Best-effort: a destructor cannot surface the close status.
  if (!closed_) Close().IgnoreError();
}

int Mdhim::OwnerOf(const Slice& key) const {
  return static_cast<int>(Fnv1a64(key) %
                          static_cast<uint64_t>(ctx_.size()));
}

void Mdhim::RangeServerLoop() {
  for (;;) {
    // Baseline model, not production: the server loop ends via a
    // self-addressed shutdown message, so this receive cannot orphan.
    // analyze:allow-proto-deadlock: baseline runs with no fault injection;
    // shutdown arrives as a loopback message that cannot be lost
    net::Message m = req_comm_.Recv(net::kAnySource, net::kAnyTag);
    if (m.tag == kMdhimShutdown) return;
    std::string key, value;
    if (!DecodeReq(m.payload, &key, &value)) continue;
    switch (m.tag) {
      case kMdhimPut: {
        const Status s = store_->Put(key, value);
        resp_comm_.Send(m.src, kMdhimRespTag, EncodeResp(s.ok(), Slice()));
        break;
      }
      case kMdhimDelete: {
        const Status s = store_->Delete(key);
        resp_comm_.Send(m.src, kMdhimRespTag, EncodeResp(s.ok(), Slice()));
        break;
      }
      case kMdhimGet: {
        std::string result;
        const Status s = store_->Get(key, &result);
        resp_comm_.Send(m.src, kMdhimRespTag, EncodeResp(s.ok(), result));
        break;
      }
      default:
        break;
    }
  }
}

Status Mdhim::RoundTrip(int owner, int op, const Slice& key,
                        const Slice& value, std::string* result) {
  // Marshal into the comm layer's buffer even for self-addressed requests —
  // the layered design always pays this copy.
  req_comm_.Send(owner, op, EncodeReq(key, value));
  // Baseline model: mdhim's reference semantics are a blocking RPC; its
  // server thread lives for the whole run, so the reply always arrives.
  // analyze:allow-proto-deadlock: baseline runs with no fault injection
  // and the server thread outlives every client request
  net::Message resp = resp_comm_.Recv(owner, kMdhimRespTag);
  bool ok = false;
  std::string payload;
  if (!DecodeResp(resp.payload, &ok, &payload)) {
    return Status::Corrupted("mdhim: bad response");
  }
  if (result) *result = std::move(payload);
  return ok ? Status::OK() : Status::NotFound();
}

Status Mdhim::Put(const Slice& key, const Slice& value) {
  if (key.empty()) return Status::InvalidArg("empty key");
  return RoundTrip(OwnerOf(key), kMdhimPut, key, value, nullptr);
}

Status Mdhim::Delete(const Slice& key) {
  if (key.empty()) return Status::InvalidArg("empty key");
  return RoundTrip(OwnerOf(key), kMdhimDelete, key, Slice(), nullptr);
}

Status Mdhim::Get(const Slice& key, std::string* value) {
  if (key.empty()) return Status::InvalidArg("empty key");
  return RoundTrip(OwnerOf(key), kMdhimGet, key, Slice(), value);
}

Status Mdhim::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  ctx_.comm.Barrier();  // no in-flight requests anywhere
  req_comm_.Send(ctx_.rank, kMdhimShutdown, Slice());
  server_.join();
  Status s = store_->Flush();
  ctx_.comm.Barrier();
  return s;
}

}  // namespace papyrus::baseline
