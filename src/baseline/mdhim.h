// MDHIM-style baseline: a communication/distribution layer stacked on a
// per-rank local store (MiniDb ≈ LevelDB).
//
// Models the comparator of paper §5.2 / Figure 11 (Greenberg et al.,
// HotStorage '15): an embedded, serverless, parallel KVS where each rank
// doubles as a *range server* for its hash partition.  The properties the
// paper attributes MDHIM's slowdown to are reproduced structurally:
//
//   * two discrete layers: the comm layer marshals every record into its
//     own buffers, the range server unmarshals into fresh allocations, and
//     the local store copies again into its MemTable — "duplicated memory
//     allocation and data transfer between the two layers";
//   * every put and get is a synchronous request/response round trip (no
//     relaxed staging, no migration batching);
//   * one LevelDB instance per rank with no sharing: co-located ranks
//     cannot read each other's SSTables ("MDHIM cannot share the SSTables
//     between multiple independent LevelDB instances").
//
// Local operations short-circuit the network but still cross the layer
// boundary (marshal → unmarshal → store), as in the real stack.
#pragma once

#include <memory>
#include <string>
#include <thread>

#include "baseline/minidb.h"
#include "common/slice.h"
#include "common/status.h"
#include "net/runtime.h"

namespace papyrus::baseline {

struct MdhimOptions {
  MiniDbOptions store;
};

class Mdhim {
 public:
  // Collective: every rank opens, spinning up its embedded range server.
  // `dir_spec` may carry a device-class prefix ("nvme:/tmp/x").
  static Status Open(net::RankContext& ctx, const std::string& dir_spec,
                     const MdhimOptions& opt, std::unique_ptr<Mdhim>* out);

  ~Mdhim();

  // Synchronous single-record operations (mdhim_put / mdhim_get flavor).
  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  Status Get(const Slice& key, std::string* value);

  // Collective close: flush, stop the range server.
  Status Close();

  int OwnerOf(const Slice& key) const;

 private:
  Mdhim(net::RankContext& ctx);

  void RangeServerLoop();
  Status RoundTrip(int owner, int op, const Slice& key, const Slice& value,
                   std::string* result);

  net::RankContext& ctx_;
  net::Communicator req_comm_;
  net::Communicator resp_comm_;
  std::unique_ptr<MiniDb> store_;
  std::thread server_;
  bool closed_ = false;
};

}  // namespace papyrus::baseline
