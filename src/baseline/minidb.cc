#include "baseline/minidb.h"

#include "store/compactor.h"
#include "store/format.h"
#include "store/sstable.h"

namespace papyrus::baseline {

MiniDb::MiniDb(const std::string& dir, const MiniDbOptions& opt)
    : opt_(opt), manifest_(dir) {}

Status MiniDb::Open(const std::string& dir, const MiniDbOptions& opt,
                    std::unique_ptr<MiniDb>* out) {
  std::unique_ptr<MiniDb> db(new MiniDb(dir, opt));
  Status s = db->manifest_.Open();
  if (!s.ok()) return s;
  *out = std::move(db);
  return Status::OK();
}

Status MiniDb::Put(const Slice& key, const Slice& value) {
  return PutInternal(key, value, false);
}

Status MiniDb::Delete(const Slice& key) {
  return PutInternal(key, Slice(), true);
}

Status MiniDb::PutInternal(const Slice& key, const Slice& value,
                           bool tombstone) {
  if (key.empty()) return Status::InvalidArg("empty key");
  MutexLock lock(&mu_);
  auto it = mem_.find(key.ToString());
  if (it != mem_.end()) {
    mem_bytes_ -= it->first.size() + it->second.value.size();
    it->second.value = value.ToString();
    it->second.tombstone = tombstone;
  } else {
    mem_.emplace(key.ToString(), Entry{value.ToString(), tombstone});
  }
  mem_bytes_ += key.size() + value.size();
  if (mem_bytes_ >= opt_.memtable_bytes) {
    // LevelDB-style write stall: flush on the writer's thread.
    return FlushLocked();
  }
  return Status::OK();
}

Status MiniDb::Get(const Slice& key, std::string* value) {
  {
    MutexLock lock(&mu_);
    auto it = mem_.find(key.ToString());
    if (it != mem_.end()) {
      if (it->second.tombstone) return Status::NotFound();
      *value = it->second.value;
      return Status::OK();
    }
  }
  for (uint64_t ssid : manifest_.LiveSsids()) {
    store::SSTablePtr reader;
    Status s = manifest_.GetReader(ssid, &reader);
    if (s.IsNotFound()) continue;
    if (!s.ok()) return s;
    if (!reader->MayContain(key)) continue;
    bool tombstone = false, found = false;
    s = reader->Get(key, store::SearchMode::kBinary, value, &tombstone,
                    &found);
    if (!s.ok()) return s;
    if (found) return tombstone ? Status::NotFound() : Status::OK();
  }
  return Status::NotFound();
}

Status MiniDb::Flush() {
  MutexLock lock(&mu_);
  return FlushLocked();
}

Status MiniDb::FlushLocked() {
  if (mem_.empty()) return Status::OK();
  const uint64_t ssid = manifest_.NextSsid();
  store::SSTableBuilder builder(manifest_.dir(), ssid, mem_.size(),
                                opt_.bloom_bits_per_key);
  for (const auto& [k, e] : mem_) {
    Status s =
        builder.Add(k, e.value, e.tombstone ? store::kFlagTombstone : 0);
    if (!s.ok()) return s;
  }
  Status s = builder.Finish();
  if (!s.ok()) return s;
  manifest_.AddTable(ssid);
  mem_.clear();
  mem_bytes_ = 0;
  return store::MaybeCompact(manifest_, ssid, opt_.compaction_trigger,
                             opt_.bloom_bits_per_key);
}

size_t MiniDb::MemTableBytes() const {
  MutexLock lock(&mu_);
  return mem_bytes_;
}

}  // namespace papyrus::baseline
