// A UPC-style distributed shared-memory hash table.
//
// The Meraculous comparison (paper §5.2, Figures 12–13) pits PapyrusKV
// against the original UPC implementation, whose de Bruijn graph is "a
// distributed hash table ... leverag[ing] the one-sided communication in
// UPC" plus "built-in remote atomic operations during the graph traversal".
//
// This baseline reproduces that substrate with *true one-sided* semantics:
// each rank hosts a shard of the table in DRAM, and remote operations are
// performed directly by the initiating thread against the target shard —
// no target-side thread is involved, exactly like RDMA (the NIC performs
// the access).  Costs are charged to the interconnect model:
//   * Insert (remote store): fire-and-forget — the sender pays injection +
//     NIC occupancy and returns; upc_fence (Quiet) orders them;
//   * Lookup (remote read) and CompareAndSwapFlag (remote atomic): the
//     initiator blocks for the full round trip (2x propagation latency).
//
// There is no staging, batching, persistence, or storage I/O — which is
// why UPC outruns PapyrusKV on this workload (Fig. 13), and why it offers
// none of the KVS's capacity or fault-tolerance properties.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "net/runtime.h"

namespace papyrus::baseline {

class DsmHashTable {
 public:
  // Collective: exchanges shard addresses (the "registered memory"
  // handshake) so every rank can address every shard one-sidedly.
  static Status Open(net::RankContext& ctx,
                     std::unique_ptr<DsmHashTable>* out);
  ~DsmHashTable();

  // One-sided put: returns after injection; ordered by Quiet().
  Status Insert(const Slice& key, const Slice& value);
  // Completion fence for this rank's outstanding Inserts (upc_fence).
  Status Quiet();
  // One-sided get; blocks for the round trip.  NOT_FOUND when absent.
  Status Lookup(const Slice& key, std::string* value);
  // Remote atomic on the entry's flag word: if flag == expected, set to
  // desired; *swapped reports success.  NOT_FOUND when the key is absent.
  Status CompareAndSwapFlag(const Slice& key, uint64_t expected,
                            uint64_t desired, bool* swapped);

  // Collective close (quiesces and unregisters the shard).
  Status Close();

  int OwnerOf(const Slice& key) const;
  size_t LocalShardSize() const;

 private:
  explicit DsmHashTable(net::RankContext& ctx);

  struct Entry {
    std::string value;
    uint64_t flag = 0;
  };

  // The local shard, directly accessed by remote initiator threads.
  struct Shard {
    // Leaf lock: one shard's table; never held across network charges.
    mutable Mutex mu{"dsm_shard_mu"};
    std::unordered_map<std::string, Entry> map GUARDED_BY(mu);
  };

  Shard& TargetShard(int owner) const { return *peers_[size_t(owner)]; }
  // Charges a one-sided transfer toward `owner`; `round_trip` makes the
  // initiator also wait out 2x the propagation latency.
  void ChargeOneSided(int owner, uint64_t bytes, bool round_trip) const;

  net::RankContext& ctx_;
  std::shared_ptr<Shard> shard_;
  std::vector<Shard*> peers_;  // shard address table, indexed by rank
  bool closed_ = false;
};

}  // namespace papyrus::baseline
