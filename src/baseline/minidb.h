// MiniDB: a single-node LSM key-value store in the LevelDB mold.
//
// This is the "local data store" layer of the MDHIM baseline (paper §5.2,
// Figure 11: "We used LevelDB as the local data store of MDHIM").  It is a
// deliberately *separate* implementation from the PapyrusKV store: MDHIM's
// measured disadvantage comes from maintaining "two discrete memory data
// structures in the communication/distribution layer (MDHIM) and local data
// storage layer (LevelDB)", so the baseline must actually have its own
// MemTable and its own buffering, with data copied across the layer
// boundary.
//
// Like LevelDB (and unlike PapyrusKV), MiniDB flushes synchronously on the
// writer's thread when the MemTable fills — a write stall instead of
// PapyrusKV's background compaction thread.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "store/manifest.h"

namespace papyrus::baseline {

struct MiniDbOptions {
  size_t memtable_bytes = 4u << 20;
  uint64_t compaction_trigger = 4;
  int bloom_bits_per_key = 10;
};

class MiniDb {
 public:
  static Status Open(const std::string& dir, const MiniDbOptions& opt,
                     std::unique_ptr<MiniDb>* out);

  // Inserts or updates.  May stall to flush the MemTable and compact.
  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  // NOT_FOUND for absent/deleted keys.
  Status Get(const Slice& key, std::string* value);

  // Flushes the MemTable to an SSTable (no-op when empty).
  Status Flush();

  size_t MemTableBytes() const;
  size_t TableCount() const { return manifest_.TableCount(); }

 private:
  MiniDb(const std::string& dir, const MiniDbOptions& opt);

  struct Entry {
    std::string value;
    bool tombstone = false;
  };

  Status PutInternal(const Slice& key, const Slice& value, bool tombstone);
  Status FlushLocked() REQUIRES(mu_);

  MiniDbOptions opt_;
  store::Manifest manifest_;
  mutable Mutex mu_{"minidb_mu"};
  std::map<std::string, Entry> mem_ GUARDED_BY(mu_);
  size_t mem_bytes_ GUARDED_BY(mu_) = 0;
};

}  // namespace papyrus::baseline
