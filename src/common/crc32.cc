#include "common/crc32.h"

#include <array>

namespace papyrus {
namespace {

// Reflected CRC-32C polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t init) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = init ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace papyrus
